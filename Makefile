GO ?= go

# Repetitions of the race-soak suite; CI trims this for wall time.
RACE_SOAK_COUNT ?= 3

.PHONY: check vet lint lint-concurrency test race race-soak fuzz chaos bench bench-transport bench-scale bench-obs bench-dataplane telemetry-guard codec-guard

# The gate used before every commit: static checks (determinism and
# concurrency lint suites), the full suite under the race detector (the
# parallel figure harness and the live stack make -race meaningful), the
# telemetry and codec zero-overhead guards (alloc counts need a non-race
# run), and a short coverage-guided fuzz of the chaos schedule decoder +
# oracles.
check: vet lint lint-concurrency race telemetry-guard codec-guard fuzz

vet:
	$(GO) vet ./...

# Project-specific determinism and ownership checks (see DESIGN.md §9).
# Machine-readable findings: go run ./cmd/mdrcheck -json ./...
lint:
	$(GO) run ./cmd/mdrcheck ./...

# The concurrency-safety suite on its own (see DESIGN.md §13): lock
# ordering, goroutine lifecycles, atomic/plain access mixing, and channel
# close ownership. `make lint` already runs these as part of the full
# analyzer set; this target is the fast loop while working on concurrent
# code.
lint-concurrency:
	$(GO) run ./cmd/mdrcheck -checks lockorder,goroutine-lifecycle,atomicmix,chanown ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Concurrency soak: the packages that own goroutines (transport ARQ and
# mesh, node sessions, simpool workers, telemetry sinks) repeated under
# the race detector with elevated parallelism and allocator stress.
# GOMAXPROCS=16 widens the interleaving space beyond the default runner
# cores; GOGC=5 forces frequent collections so freed-then-reused memory
# surfaces use-after-close bugs; clobberfree poisons freed blocks to turn
# silent stale reads into loud crashes. Every test in these packages is
# leaktest-armed, so the soak also hunts teardown leaks across -count
# repetitions (goroutine IDs are never reused, making repeat runs an
# accumulating leak trap).
race-soak:
	GOMAXPROCS=16 GOGC=5 GODEBUG=clobberfree=1 $(GO) test -race -count=$(RACE_SOAK_COUNT) -timeout 10m ./internal/transport/... ./internal/node ./internal/simpool ./internal/telemetry ./internal/despart ./internal/obs ./internal/dataplane

# Telemetry-overhead guard: with instrumentation disabled (no probes), the
# DES packet hot loop and all sink methods must cost zero allocations, and
# the live ARQ stats callbacks must stay allocation-free even with
# instruments enabled (they write through precomputed atomic handles). Runs
# without -race because AllocsPerRun is unreliable under the race detector.
telemetry-guard:
	$(GO) test -count=1 -run 'TestTelemetryDisabledZeroAlloc|TestDisabledProbesZeroAlloc|TestNilSinksAreSafe' ./internal/des ./internal/telemetry
	$(GO) test -count=1 -run 'TestARQStatsDisabledNil|TestARQStatsEnabledZeroAlloc' ./internal/node

# Codec-overhead guard: frame encode into a reused buffer and scratch
# decode must stay at 0 allocs/op (Decode itself <=1 for the returned
# frame) — the live transport's per-frame budget. Non-race for the same
# reason as telemetry-guard.
codec-guard:
	$(GO) test -count=1 -run TestCodecAllocBudget ./internal/wire

# Ten seconds of coverage-guided fuzzing over random chaos schedules with
# every invariant oracle armed, plus ten over the wire-format decoder (the
# live transport's parse boundary); the checked-in corpora replay
# regardless.
fuzz:
	$(GO) test -run FuzzChaosSchedule -fuzz FuzzChaosSchedule -fuzztime 10s ./internal/chaos
	$(GO) test -run FuzzFrameRoundTrip -fuzz FuzzFrameRoundTrip -fuzztime 10s ./internal/wire
	$(GO) test -run FuzzShardSchedule -fuzz FuzzShardSchedule -fuzztime 10s ./internal/despart
	$(GO) test -run FuzzDataFrame -fuzz FuzzDataFrame -fuzztime 10s ./internal/wire

# Longer randomized sweep: 200 seed-derived scenarios through both runners.
chaos:
	$(GO) run ./cmd/mdrfuzz -n 200 -des

# Hot-path micro-benchmarks (event queue, link pipeline) plus the figure
# regeneration benchmarks. Compare against BENCH_parallel.json.
bench:
	$(GO) test -run xxx -bench 'PushPop|Cancel|PortThroughput|LinkPipeline' -benchmem ./internal/eventq/ ./internal/des/
	$(GO) test -run xxx -bench Fig -benchtime 1x .

# Live-path micro-benchmarks: frame codec ns/op and transport msgs/sec
# (in-memory pipe, TCP loopback, UDP+ARQ loopback). Compare against
# BENCH_transport.json.
bench-transport:
	$(GO) test -run xxx -bench 'Encode|Decode' -benchmem ./internal/wire/
	$(GO) test -run xxx -bench Throughput -benchmem ./internal/transport/

# Sharded single-sim scaling: wall time and events/sec vs shard count on a
# 240-router scale-free topology, oracles armed (loop-free + byte-identical
# report vs serial). Overwrites the checked-in snapshot; SCALE_ARGS adds or
# overrides flags (CI smoke passes a tiny topology, see check.yml).
bench-scale:
	$(GO) run ./cmd/mdrscale -out BENCH_scale.json $(SCALE_ARGS)

# Observability-plane benchmarks: endpoint scrape latency against a live
# converged mesh, the Prometheus exposition encode path, and the atomic
# instrument write costs. Overwrites the checked-in snapshot; compare
# against BENCH_obs.json. CI runs the same driver to a scratch path as a
# smoke (see check.yml).
bench-obs:
	$(GO) run ./cmd/mdrwatch -bench -out BENCH_obs.json

# Data-plane benchmarks: forwarding-table lookup/compile/rebalance micro
# costs, the data-frame codec path, end-to-end packet rates through real
# forwarders on the in-memory fabric, and the worst-case bucket
# quantization error of the weighted splitter. Overwrites the checked-in
# snapshot; compare against BENCH_dataplane.json. CI runs the same driver
# to a scratch path as a smoke (see check.yml).
bench-dataplane:
	$(GO) run ./cmd/mdrwatch -bench-dataplane -out BENCH_dataplane.json
