GO ?= go

.PHONY: check vet lint test race bench

# The gate used before every commit: static checks plus the full suite under
# the race detector (the parallel figure harness makes -race meaningful).
check: vet lint race

vet:
	$(GO) vet ./...

# Project-specific determinism and ownership checks (see DESIGN.md §9).
# Machine-readable findings: go run ./cmd/mdrcheck -json ./...
lint:
	$(GO) run ./cmd/mdrcheck ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path micro-benchmarks (event queue, link pipeline) plus the figure
# regeneration benchmarks. Compare against BENCH_parallel.json.
bench:
	$(GO) test -run xxx -bench 'PushPop|Cancel|PortThroughput|LinkPipeline' -benchmem ./internal/eventq/ ./internal/des/
	$(GO) test -run xxx -bench Fig -benchtime 1x .
