GO ?= go

.PHONY: check vet test race bench

# The gate used before every commit: static checks plus the full suite under
# the race detector (the parallel figure harness makes -race meaningful).
check: vet race

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path micro-benchmarks (event queue, link pipeline) plus the figure
# regeneration benchmarks. Compare against BENCH_parallel.json.
bench:
	$(GO) test -run xxx -bench 'PushPop|Cancel|PortThroughput|LinkPipeline' -benchmem ./internal/eventq/ ./internal/des/
	$(GO) test -run xxx -bench Fig -benchtime 1x .
