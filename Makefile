GO ?= go

.PHONY: check vet lint test race fuzz chaos bench bench-transport telemetry-guard codec-guard

# The gate used before every commit: static checks, the full suite under the
# race detector (the parallel figure harness makes -race meaningful), the
# telemetry and codec zero-overhead guards (alloc counts need a non-race
# run), and a short coverage-guided fuzz of the chaos schedule decoder +
# oracles.
check: vet lint race telemetry-guard codec-guard fuzz

vet:
	$(GO) vet ./...

# Project-specific determinism and ownership checks (see DESIGN.md §9).
# Machine-readable findings: go run ./cmd/mdrcheck -json ./...
lint:
	$(GO) run ./cmd/mdrcheck ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry-overhead guard: with instrumentation disabled (no probes), the
# DES packet hot loop and all sink methods must cost zero allocations. Runs
# without -race because AllocsPerRun is unreliable under the race detector.
telemetry-guard:
	$(GO) test -count=1 -run 'TestTelemetryDisabledZeroAlloc|TestDisabledProbesZeroAlloc|TestNilSinksAreSafe' ./internal/des ./internal/telemetry

# Codec-overhead guard: frame encode into a reused buffer and scratch
# decode must stay at 0 allocs/op (Decode itself <=1 for the returned
# frame) — the live transport's per-frame budget. Non-race for the same
# reason as telemetry-guard.
codec-guard:
	$(GO) test -count=1 -run TestCodecAllocBudget ./internal/wire

# Ten seconds of coverage-guided fuzzing over random chaos schedules with
# every invariant oracle armed, plus ten over the wire-format decoder (the
# live transport's parse boundary); the checked-in corpora replay
# regardless.
fuzz:
	$(GO) test -run FuzzChaosSchedule -fuzz FuzzChaosSchedule -fuzztime 10s ./internal/chaos
	$(GO) test -run FuzzFrameRoundTrip -fuzz FuzzFrameRoundTrip -fuzztime 10s ./internal/wire

# Longer randomized sweep: 200 seed-derived scenarios through both runners.
chaos:
	$(GO) run ./cmd/mdrfuzz -n 200 -des

# Hot-path micro-benchmarks (event queue, link pipeline) plus the figure
# regeneration benchmarks. Compare against BENCH_parallel.json.
bench:
	$(GO) test -run xxx -bench 'PushPop|Cancel|PortThroughput|LinkPipeline' -benchmem ./internal/eventq/ ./internal/des/
	$(GO) test -run xxx -bench Fig -benchtime 1x .

# Live-path micro-benchmarks: frame codec ns/op and transport msgs/sec
# (in-memory pipe, TCP loopback, UDP+ARQ loopback). Compare against
# BENCH_transport.json.
bench-transport:
	$(GO) test -run xxx -bench 'Encode|Decode' -benchmem ./internal/wire/
	$(GO) test -run xxx -bench Throughput -benchmem ./internal/transport/
