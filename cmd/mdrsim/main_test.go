package main

import (
	"os"
	"path/filepath"
	"testing"

	"minroute/internal/experiments"
)

const tinyScenario = `# triangle with one two-path flow
link a b 10Mbps 0.5ms
link b c 10Mbps 0.5ms
link a c 5Mbps 1ms
flow a c 3Mbps
`

// TestRunScenarioTelemetryExport exercises the -scenario path with a
// telemetry directory: the three artifacts must land under the documented
// scenario_<mode>_s<seed> prefix, and the run must still succeed without
// telemetry (the flag is strictly additive).
func TestRunScenarioTelemetryExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	if err := os.WriteFile(path, []byte(tinyScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	set := experiments.Settings{Warmup: 2, Duration: 2, Seed: 7}

	telDir := filepath.Join(dir, "tel")
	if err := os.MkdirAll(telDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := runScenario(path, "mp", set, telDir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"scenario_mp_s7.events.jsonl",
		"scenario_mp_s7.trace.json",
		"scenario_mp_s7.metrics.txt",
	} {
		st, err := os.Stat(filepath.Join(telDir, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		if st.Size() == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}

	if err := runScenario(path, "mp", set, ""); err != nil {
		t.Fatalf("telemetry-off run: %v", err)
	}
}

// TestRunChaosTelemetryExport exercises the -chaos path with telemetry: one
// export per runner under the <name>_<runner> prefix, including the sharded
// DES replay when -shards is set.
func TestRunChaosTelemetryExport(t *testing.T) {
	telDir := t.TempDir()
	if err := runChaos("link-flap", telDir, 2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"link-flap_proto.events.jsonl",
		"link-flap_proto.trace.json",
		"link-flap_proto.metrics.txt",
		"link-flap_des.events.jsonl",
		"link-flap_des.trace.json",
		"link-flap_des.metrics.txt",
		"link-flap_des-sharded2.events.jsonl",
		"link-flap_des-sharded2.trace.json",
		"link-flap_des-sharded2.metrics.txt",
	} {
		if _, err := os.Stat(filepath.Join(telDir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
}
