// Command mdrsim regenerates the paper's evaluation figures and runs
// user-supplied scenarios.
//
// Usage:
//
//	mdrsim -fig fig9            # one figure at full (paper-quality) scale
//	mdrsim -all -quick          # every figure at quick scale
//	mdrsim -fig fig12 -csv      # machine-readable output
//	mdrsim -fig fig11 -chart    # ASCII bar chart
//	mdrsim -list                # available figures
//
//	mdrsim -scenario net.txt               # simulate a custom network (MP)
//	mdrsim -scenario net.txt -mode sp      # ... with single-path routing
//
// Scenario files use the internal/topo.Parse format: node/link/flow lines.
// Figures are produced by internal/experiments; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for reference results.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"minroute/internal/chaos"
	"minroute/internal/core"
	"minroute/internal/experiments"
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/simpool"
	"minroute/internal/telemetry"
	"minroute/internal/topo"
	"minroute/internal/trace"
)

func main() {
	var (
		figID = flag.String("fig", "", "figure to regenerate (fig9..fig16)")
		all   = flag.Bool("all", false, "regenerate every figure")
		quick = flag.Bool("quick", false, "quick settings (shorter warmup/measurement)")
		csv   = flag.Bool("csv", false, "emit CSV instead of a table")
		chart = flag.Bool("chart", false, "emit an ASCII chart after the table")
		list  = flag.Bool("list", false, "list available figures")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		runs  = flag.Int("runs", 0, "average each scheme over this many seeds (0 = setting default)")

		scenario = flag.String("scenario", "", "simulate a custom network from a topo.Parse file")
		mode     = flag.String("mode", "mp", "routing mode for -scenario: mp, sp, or ecmp")
		compare  = flag.Bool("compare", false, "with -scenario: compare OPT, MP, SP and ECMP")
		svgDir   = flag.String("svg", "", "also write each figure as an SVG chart into this directory")

		chaosArg = flag.String("chaos", "", "replay a chaos scenario: a registry name (see -chaos list) or a JSON file")

		telemetryDir = flag.String("telemetry", "", "export telemetry artifacts (events JSONL, Chrome trace, metrics) into this directory")

		shards     = flag.Int("shards", 0, "partition each simulation's routers across this many event-engine shards (0/1 = serial)")
		workers    = flag.Int("workers", 0, "max simulations running concurrently (0 = GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	simpool.SetWorkers(*workers)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mdrsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mdrsim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mdrsim: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return
	}

	if *telemetryDir != "" {
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mdrsim: -telemetry: %v\n", err)
			os.Exit(1)
		}
	}

	set := experiments.Full
	if *quick {
		set = experiments.Quick
	}
	set.Seed = *seed
	if *runs > 0 {
		set.Runs = *runs
	}
	set.TelemetryDir = *telemetryDir
	set.Shards = *shards

	if *chaosArg != "" {
		if err := runChaos(*chaosArg, *telemetryDir, *shards); err != nil {
			fmt.Fprintf(os.Stderr, "mdrsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scenario != "" {
		var err error
		if *compare {
			err = compareScenario(*scenario, set, *csv)
		} else {
			err = runScenario(*scenario, *mode, set, *telemetryDir)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs
	case *figID != "":
		if experiments.All[*figID] == nil {
			fmt.Fprintf(os.Stderr, "mdrsim: unknown figure %q (try -list)\n", *figID)
			os.Exit(2)
		}
		ids = []string{*figID}
	default:
		flag.Usage()
		os.Exit(2)
	}

	// Generate every requested figure concurrently: each figure is a cheap
	// coordinator goroutine whose individual simulations are bounded by the
	// process-wide simpool semaphore (-workers). Output is printed in the
	// requested order once all figures are in, so it is byte-identical to
	// the serial harness's.
	type figResult struct {
		fig  *report.Figure
		err  error
		wall time.Duration
	}
	results := make([]figResult, len(ids))
	//lint:nowall-ok operator-facing progress timing, never enters figures
	wallStart := time.Now()
	g := simpool.Coordinator()
	for i, id := range ids {
		i, id := i, id
		g.Go(func() error {
			start := time.Now() //lint:nowall-ok operator-facing progress timing, never enters figures
			fig, err := experiments.All[id](set)
			//lint:nowall-ok operator-facing progress timing, never enters figures
			results[i] = figResult{fig: fig, err: err, wall: time.Since(start)}
			return err
		})
	}
	g.Wait() // errors surface per-figure below, in presentation order

	for i, id := range ids {
		res := results[i]
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "mdrsim: %s: %v\n", id, res.err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(res.fig.CSV())
		} else {
			fmt.Print(res.fig.Table())
			if *chart {
				fmt.Print(res.fig.Chart(60))
			}
			fmt.Printf("  (%.1fs wall)\n\n", res.wall.Seconds())
		}
		if *svgDir != "" {
			path := filepath.Join(*svgDir, id+".svg")
			if err := os.WriteFile(path, []byte(res.fig.SVG(0, 0)), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mdrsim: write %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
	if len(ids) > 1 && !*csv {
		fmt.Printf("total: %d figures in %.1fs wall (%d workers)\n",
			//lint:nowall-ok operator-facing progress timing, never enters figures
			len(ids), time.Since(wallStart).Seconds(), simpool.Workers())
	}
}

// warnTraceDrops reports ring-buffer evictions so a truncated event log is
// never mistaken for a complete one. Nil-safe on both counters.
func warnTraceDrops(label string, tel *telemetry.Capture, rec *trace.Recorder) {
	if n := tel.Trace.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "mdrsim: warning: %s: telemetry ring dropped %d events (raise ring capacity for a complete log)\n", label, n)
	}
	if rec != nil && rec.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "mdrsim: warning: %s: path recorder evicted %d traces\n", label, rec.Dropped())
	}
}

// runChaos replays a chaos scenario — by registry name or from a JSON file —
// through both runners with every invariant oracle armed, and reports the
// per-oracle counts and trace hashes. `mdrsim -chaos list` prints the
// registry. A violation makes the replay fail. With -telemetry, each
// runner's full event timeline is exported as <name>_<runner>.*. With
// -shards N (N > 1) a third, sharded DES replay runs as well: its oracles
// fire at conservative-window barriers rather than per event, so its trace
// hash is its own golden (identical across shard counts, not vs serial).
func runChaos(arg, telemetryDir string, shards int) error {
	if arg == "list" {
		for _, name := range experiments.ChaosNames() {
			fmt.Println(name)
		}
		return nil
	}
	s, err := experiments.ChaosScenario(arg)
	if err != nil {
		if _, statErr := os.Stat(arg); statErr != nil {
			return err // neither a registry name nor a readable file
		}
		if s, err = chaos.Load(arg); err != nil {
			return err
		}
	}
	tn, err := s.Network()
	if err != nil {
		return err
	}
	type runner struct {
		name string
		fn   func(*chaos.Scenario, *telemetry.Capture) (*chaos.Result, error)
	}
	runners := []runner{{"proto", chaos.RunProtoWith}, {"des", chaos.RunDESWith}}
	if shards > 1 {
		runners = append(runners, runner{
			fmt.Sprintf("des-sharded%d", shards),
			func(s *chaos.Scenario, tel *telemetry.Capture) (*chaos.Result, error) {
				return chaos.RunDESShardedWith(s, shards, tel)
			},
		})
	}
	failed := false
	for _, r := range runners {
		var tel *telemetry.Capture
		if telemetryDir != "" {
			tel = telemetry.NewCapture(tn.Graph.NumNodes())
		}
		res, err := r.fn(s, tel)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		if tel != nil {
			prefix := fmt.Sprintf("%s_%s", s.Name, r.name)
			if err := tel.Export(telemetryDir, prefix); err != nil {
				return fmt.Errorf("%s: telemetry export: %w", r.name, err)
			}
			warnTraceDrops(prefix, tel, nil)
		}
		fmt.Printf("%s %s: %d events, trace sha256 %s\n", s.Name, r.name, res.Events, res.TraceHash)
		for _, c := range res.Log.Counts() {
			fmt.Printf("  oracle %-22s ran %d times\n", c.Check, c.Count)
		}
		for _, v := range res.Log.Violations {
			failed = true
			fmt.Printf("  VIOLATION %s\n", v)
		}
	}
	if failed {
		return fmt.Errorf("chaos scenario %s violated invariants", s.Name)
	}
	fmt.Println("all invariants held")
	return nil
}

// runScenario simulates one custom network at the given settings. With
// -telemetry, the run's artifacts are exported as scenario_<mode>_s<seed>.*.
func runScenario(path, mode string, set experiments.Settings, telemetryDir string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	net, err := topo.Parse(f)
	if err != nil {
		return err
	}
	opt := core.DefaultOptions()
	switch mode {
	case "mp":
		opt.Router.Mode = router.ModeMP
	case "sp":
		opt.Router.Mode = router.ModeSP
		opt.Router.Ts = opt.Router.Tl
	case "ecmp":
		opt.Router.Mode = router.ModeECMP
	default:
		return fmt.Errorf("unknown mode %q (mp, sp, ecmp)", mode)
	}
	opt.Seed = set.Seed
	opt.Warmup = set.Warmup
	opt.Duration = set.Duration
	opt.Shards = set.Shards
	if telemetryDir != "" {
		opt.Telemetry = telemetry.NewCapture(net.Graph.NumNodes())
	}
	sim := core.Build(net, opt)
	rep := sim.Run()
	if err := sim.CheckLoopFree(); err != nil {
		return err
	}
	if telemetryDir != "" {
		prefix := fmt.Sprintf("scenario_%s_s%d", mode, set.Seed)
		if err := sim.ExportTelemetry(telemetryDir, prefix); err != nil {
			return fmt.Errorf("telemetry export: %w", err)
		}
		warnTraceDrops(prefix, sim.Telemetry(), sim.Tracer)
	}
	fmt.Printf("%s on %s (%d nodes, %d links, %d flows):\n",
		opt.Router.Mode, path, net.Graph.NumNodes(), net.Graph.NumLinks(), len(net.Flows))
	fmt.Print(rep)
	fmt.Printf("mean over flows: %.3f ms, loss: %.5f, LSUs: %d\n",
		rep.AvgMeanDelayMs(), rep.LossRate(), rep.ControlMessages)
	return nil
}

// compareScenario runs the full scheme spectrum on a custom network.
func compareScenario(path string, set experiments.Settings, asCSV bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	net, err := topo.Parse(f)
	if err != nil {
		return err
	}
	fig, err := experiments.CustomComparison(net, set)
	if err != nil {
		return err
	}
	if asCSV {
		fmt.Print(fig.CSV())
	} else {
		fmt.Print(fig.Table())
	}
	return nil
}
