package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"minroute/internal/dataplane"
	"minroute/internal/graph"
	"minroute/internal/node"
	"minroute/internal/telemetry"
	"minroute/internal/transport"
	"minroute/internal/wire"
)

// benchDataDescription heads the BENCH_dataplane.json report.
const benchDataDescription = "Benchmark snapshot for the live data plane: the lock-free " +
	"forwarding-table path (consistent-hash lookup, compile, rebalance), the data-frame " +
	"codec, the end-to-end packet rate through real forwarders over the in-memory " +
	"datagram fabric, and the worst-case bucket-quantization error of the weighted " +
	"splitter. Units: ns_per_op / B_per_op / allocs_per_op for micro-benchmarks, " +
	"packets/s for the forwarding pipelines."

// benchDataReport is the BENCH_dataplane.json document.
type benchDataReport struct {
	Description string `json:"description"`
	Environment struct {
		Go    string `json:"go"`
		Cores int    `json:"cores"`
		Note  string `json:"note"`
	} `json:"environment"`
	Table         map[string]microStats `json:"table"`
	Codec         map[string]microStats `json:"codec"`
	Forwarding    map[string]pipeStats  `json:"forwarding"`
	SplitErrorMax float64               `json:"split_error_max"`
	SplitNote     string                `json:"split_note"`
}

// pipeStats is one end-to-end forwarding measurement.
type pipeStats struct {
	Packets     int     `json:"packets"`
	PacketsPerS float64 `json:"packets_per_s"`
	NSPerPacket float64 `json:"ns_per_packet"`
	Note        string  `json:"note,omitempty"`
}

// runBenchData measures the data plane and writes the report.
func runBenchData(outPath string) error {
	report := benchDataReport{Description: benchDataDescription}
	report.Environment.Go = runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH
	report.Environment.Cores = runtime.NumCPU()
	report.Environment.Note = "Forwarding pipelines run real Forwarder goroutines over the " +
		"in-memory datagram fabric; rates include encode, fabric copy, decode, and " +
		"delivery accounting, measured with the OS clock (bench mode's sanctioned wall reads)."

	report.Table = benchTable()
	report.Codec = benchCodec()
	fwd, err := benchForwarding()
	if err != nil {
		return err
	}
	report.Forwarding = fwd
	report.SplitErrorMax = splitErrorMax()
	report.SplitNote = "max |bucket share - phi weight| over a sweep of 1-4 way splits; " +
		"bounded by 1/256 per hop by largest-remainder apportionment over 256 buckets."

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// benchEntries is a NET1-node-shaped table: nine destinations, a mix of
// single- and dual-path routes.
func benchEntries() []dataplane.Entry {
	var entries []dataplane.Entry
	for d := 1; d < 10; d++ {
		e := dataplane.Entry{Dst: graph.NodeID(d), Hops: []graph.NodeID{graph.NodeID(d % 4)}, Weights: []float64{0.6}}
		if d%2 == 0 {
			e.Hops = append(e.Hops, graph.NodeID(d%4+1))
			e.Weights = append(e.Weights, 0.4)
		} else {
			e.Weights = []float64{1}
		}
		entries = append(entries, e)
	}
	return entries
}

// benchTable isolates the forwarding-table paths.
func benchTable() map[string]microStats {
	entries := benchEntries()
	tbl := dataplane.Compile(entries, nil)
	return map[string]microStats{
		"Lookup": micro(
			"per-packet next-hop choice: one flow hash plus one bucket read on the live table",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, ok := tbl.Lookup(graph.NodeID(i%9+1), uint64(i)); !ok {
						b.Fatal("lookup missed")
					}
				}
			}),
		"Compile": micro(
			"full table build for a NET1-sized node (9 destinations, mixed 1- and 2-way splits)",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if dataplane.Compile(entries, nil) == nil {
						b.Fatal("nil table")
					}
				}
			}),
		"Recompile": micro(
			"same build against the previous table: the minimal-movement rebalance path Publish takes",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if dataplane.Compile(entries, tbl) == nil {
						b.Fatal("nil table")
					}
				}
			}),
	}
}

// benchCodec isolates the data-frame wire path.
func benchCodec() map[string]microStats {
	pkt := &wire.DataPacket{Src: 3, Dst: 7, TTL: 32, FlowID: 0xdeadbeef, SentAt: 1.5, SizeBits: 8192}
	frame, err := wire.NewData(pkt)
	if err != nil {
		panic(err)
	}
	blob, err := frame.Encode()
	if err != nil {
		panic(err)
	}
	return map[string]microStats{
		"Encode": micro(
			"data frame encode: header pack plus checksum",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := frame.Encode(); err != nil {
						b.Fatal(err)
					}
				}
			}),
		"DecodeParse": micro(
			"frame decode plus data-header parse: the per-packet receive path",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					f, err := wire.Decode(blob)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := wire.DataPacketOf(f); err != nil {
						b.Fatal(err)
					}
				}
			}),
	}
}

// benchForwarding measures real packet rates through Forwarder
// goroutines on the in-memory fabric: a one-hop sink pipeline and a
// three-node relay line.
func benchForwarding() (map[string]pipeStats, error) {
	out := make(map[string]pipeStats, 2)
	for _, bench := range []struct {
		name, note string
		hops       int
	}{
		{"one_hop", "origin -> sink: one Send, one fabric copy, one delivery", 2},
		{"relay_line", "origin -> relay -> sink: adds the full receive-decide-reencode relay path", 3},
	} {
		st, err := pipelineRate(bench.hops)
		if err != nil {
			return nil, err
		}
		st.Note = bench.note
		out[bench.name] = st
	}
	return out, nil
}

// pipelineRate blasts packets down an n-node line and reports the
// steady-state delivery rate.
func pipelineRate(n int) (pipeStats, error) {
	net := transport.NewMemNet()
	clk := node.NewWallClock()
	fwds := make([]*dataplane.Forwarder, n)
	done := make(chan struct{})
	dst := graph.NodeID(n - 1)
	const packets = 200_000
	var delivered atomic.Int64
	for i := range fwds {
		cfg := dataplane.Config{
			Self:    graph.NodeID(i),
			Nodes:   n,
			Conn:    net.Bind(),
			Clock:   clk,
			Metrics: telemetry.NewRegistry(0),
			LatencyOf: func(graph.NodeID, uint32) float64 {
				return 1e-3
			},
		}
		if i == n-1 {
			cfg.OnDeliver = func(*wire.DataPacket, float64) {
				if delivered.Add(1) == packets {
					close(done)
				}
			}
		}
		fwds[i] = dataplane.New(cfg)
	}
	defer func() {
		for _, f := range fwds {
			f.Close()
		}
	}()
	for i := 0; i+1 < n; i++ {
		fwds[i].SetPeer(graph.NodeID(i+1), fwds[i+1].LocalAddr(), nil)
		fwds[i].Publish([]dataplane.Entry{{Dst: dst, Hops: []graph.NodeID{graph.NodeID(i + 1)}, Weights: []float64{1}}})
	}

	// Window the sender below the fabric's ring capacity: the in-memory
	// ports drop silently when a tight producer outruns the receive
	// loops, and a bench must measure throughput, not loss.
	const window = 2048
	start := time.Now() //lint:nowall-ok bench mode times real cross-goroutine forwarding, which no transport.Clock covers
	for i := 0; i < packets; i++ {
		for int64(i)-delivered.Load() >= window {
			runtime.Gosched()
		}
		if err := fwds[0].Send(dst, uint64(i), 8192); err != nil {
			return pipeStats{}, err
		}
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		return pipeStats{}, fmt.Errorf("pipeline stalled: %d/%d delivered", delivered.Load(), packets)
	}
	elapsed := time.Since(start) //lint:nowall-ok bench mode times real cross-goroutine forwarding, which no transport.Clock covers
	return pipeStats{
		Packets:     packets,
		PacketsPerS: float64(packets) / elapsed.Seconds(),
		NSPerPacket: float64(elapsed.Nanoseconds()) / float64(packets),
	}, nil
}

// splitErrorMax sweeps split shapes and reports the worst bucket-share
// deviation from the requested weights.
func splitErrorMax() float64 {
	worst := 0.0
	for _, ws := range [][]float64{
		{1},
		{0.5, 0.5},
		{0.75, 0.25},
		{0.9, 0.1},
		{0.5, 0.3, 0.2},
		{0.4, 0.3, 0.2, 0.1},
	} {
		hops := make([]graph.NodeID, len(ws))
		for i := range hops {
			hops[i] = graph.NodeID(i + 1)
		}
		tbl := dataplane.Compile([]dataplane.Entry{{Dst: 9, Hops: hops, Weights: ws}}, nil)
		shares := tbl.BucketShares(9)
		for i, h := range hops {
			if d := math.Abs(shares[h] - ws[i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
