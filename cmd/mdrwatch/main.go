// mdrwatch scrapes a live mesh's observability plane and reports cluster
// convergence: it polls every node's /readyz and /peers endpoints until
// the whole mesh is ready (exit 0) or the deadline passes (exit 1), then
// renders a per-node health table. Point it at the manifest an mdrnode
// process writes:
//
//	mdrnode -topo net1 -fabric udp -loss 0.2 -http 127.0.0.1:0 \
//	        -obs-manifest obs.txt -linger 10 &
//	mdrwatch -manifest obs.txt -timeout 30
//
// or list the base URLs directly:
//
//	mdrwatch -targets http://127.0.0.1:40001,http://127.0.0.1:40002
//
// Bench mode boots its own in-process mesh and measures the plane's
// cost — scrape latency, exposition encode allocations, instrument
// overhead — writing a JSON report in the BENCH_*.json idiom:
//
//	mdrwatch -bench -out BENCH_obs.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"minroute/internal/obs"
)

func main() {
	var (
		manifest = flag.String("manifest", "", "file with one observability base URL per line (written by mdrnode -obs-manifest)")
		targets  = flag.String("targets", "", "comma-separated observability base URLs (alternative to -manifest)")
		interval = flag.Float64("interval", 0.1, "poll period, seconds")
		timeout  = flag.Float64("timeout", 30, "give up after this many seconds (counted in polls)")
		bench    = flag.Bool("bench", false, "benchmark the observability plane against an in-process mesh instead of watching")
		benchDP  = flag.Bool("bench-dataplane", false, "benchmark the data plane (table compile/lookup, codec, end-to-end forwarding) instead of watching")
		out      = flag.String("out", "BENCH_obs.json", "bench mode: report output path")
	)
	flag.Parse()

	var err error
	switch {
	case *bench && *benchDP:
		err = fmt.Errorf("-bench and -bench-dataplane are mutually exclusive")
	case *bench:
		err = runBench(*out)
	case *benchDP:
		if *out == "BENCH_obs.json" {
			*out = "BENCH_dataplane.json"
		}
		err = runBenchData(*out)
	default:
		var urls []string
		urls, err = resolveTargets(*manifest, *targets)
		if err == nil {
			err = runWatch(os.Stdout, urls, *interval, *timeout)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrwatch: %v\n", err)
		os.Exit(1)
	}
}

// resolveTargets turns the -manifest/-targets flags into the list of base
// URLs to scrape.
func resolveTargets(manifest, targets string) ([]string, error) {
	var urls []string
	if manifest != "" {
		raw, err := os.ReadFile(manifest)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(raw), "\n") {
			// A data-plane mesh writes "<url> <data-addr>" lines; the
			// observability URL is always the first column.
			if fields := strings.Fields(line); len(fields) > 0 {
				urls = append(urls, fields[0])
			}
		}
	}
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, t)
		}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("no targets: pass -manifest or -targets (see -help)")
	}
	return urls, nil
}

// row is one node's scrape result for a poll round.
type row struct {
	url   string
	ready obs.Readiness
	peers obs.PeersDoc
	// flows is the node's data-plane snapshot, nil when the node runs
	// without a forwarder (/flows answers 404 there).
	flows *obs.FlowsDoc
	err   error
}

// retransmits sums the node's per-link ARQ retransmit counters.
func (r row) retransmits() float64 {
	var total float64
	for _, p := range r.peers.Peers {
		total += p.Retransmits
	}
	return total
}

// maxRTO is the node's worst current retransmission timeout.
func (r row) maxRTO() float64 {
	var worst float64
	for _, p := range r.peers.Peers {
		if p.RTO > worst {
			worst = p.RTO
		}
	}
	return worst
}

// probe scrapes one node's /readyz, /peers, and (when present) /flows.
func probe(c *http.Client, url string) row {
	r := row{url: url}
	if r.err = fetchJSON(c, url+"/readyz", &r.ready); r.err != nil {
		return r
	}
	if r.err = fetchJSON(c, url+"/peers", &r.peers); r.err != nil {
		return r
	}
	var fd obs.FlowsDoc
	if status, err := fetchJSONStatus(c, url+"/flows", &fd); err == nil && status == http.StatusOK {
		r.flows = &fd
	}
	return r
}

// fetchJSON GETs url and decodes the JSON body. A non-2xx status is not
// an error here: /readyz deliberately answers 503 while converging, and
// its body still carries the document.
func fetchJSON(c *http.Client, url string, v any) error {
	_, err := fetchJSONStatus(c, url, v)
	return err
}

// fetchJSONStatus is fetchJSON exposing the status code, for endpoints
// like /flows where 404 is a meaningful "feature not enabled" answer.
func fetchJSONStatus(c *http.Client, url string, v any) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, json.Unmarshal(body, v)
}

// runWatch polls every target until the whole mesh reports ready or the
// poll-counted deadline passes, then renders the final table. The
// deadline is counted in polls, not wall timestamps, keeping the watcher
// off time.Now (see the nowall lint check).
func runWatch(w io.Writer, urls []string, interval, timeout float64) error {
	if interval <= 0 {
		interval = 0.1
	}
	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer c.CloseIdleConnections()

	maxPolls := int(timeout / interval)
	if maxPolls < 1 {
		maxPolls = 1
	}
	rows := make([]row, len(urls))
	lastReady := -1
	for poll := 0; ; poll++ {
		ready := 0
		for i, u := range urls {
			rows[i] = probe(c, u)
			if rows[i].err == nil && rows[i].ready.Ready {
				ready++
			}
		}
		if ready != lastReady {
			fmt.Fprintf(w, "poll %d: %d/%d nodes ready\n", poll, ready, len(urls))
			lastReady = ready
		}
		if ready == len(urls) {
			render(w, rows)
			return nil
		}
		if poll >= maxPolls {
			render(w, rows)
			return fmt.Errorf("mesh not converged after %d polls (%gs): %d/%d nodes ready", poll, timeout, ready, len(urls))
		}
		time.Sleep(time.Duration(interval * float64(time.Second)))
	}
}

// render writes the per-node health table: readiness, phase, peering,
// drained windows, stability streak, ARQ health, and the node's own
// state hash (each node hashes its own routing table, so rows differ).
func render(w io.Writer, rows []row) {
	sorted := append([]row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].peers.ID < sorted[j].peers.ID })
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tREADY\tPASSIVE\tPEERS\tOUT\tSTREAK\tRETX\tRTOMAX\tHASH")
	for _, r := range sorted {
		if r.err != nil {
			fmt.Fprintf(tw, "?\t-\t-\t-\t-\t-\t-\t-\t%s: %v\n", r.url, r.err)
			continue
		}
		hash := r.ready.Hash
		if len(hash) > 8 {
			hash = hash[:8]
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d/%d\t%d\t%d/%d\t%g\t%.4f\t%s\n",
			r.peers.ID, yn(r.ready.Ready), yn(r.ready.Passive),
			r.ready.Peers, r.ready.MinPeers, r.ready.Outstanding,
			r.ready.Streak, r.ready.StablePolls,
			r.retransmits(), r.maxRTO(), hash)
	}
	tw.Flush()
	renderData(w, sorted)
}

// renderData writes the data-plane tables for nodes exposing /flows: the
// per-node forwarding counters and the live weighted-split table — the
// observed next-hop fraction of each destination's traffic against the
// phi weight the node's table wants.
func renderData(w io.Writer, sorted []row) {
	any := false
	for _, r := range sorted {
		if r.flows != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "\nNODE\tORIGIN\tFWD\tDELIV\tLOOPED\tTTLX\tNOROUTE\tFLOWS")
	for _, r := range sorted {
		if r.flows == nil {
			continue
		}
		d := r.flows.Data
		fmt.Fprintf(tw, "%d\t%g\t%g\t%g\t%g\t%g\t%g\t%d\n",
			r.flows.ID, d.Origin, d.Forwarded, d.Delivered,
			d.Looped, d.TTLExpired, d.DropNoRoute, len(d.Flows))
	}
	tw.Flush()
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "\nNODE\tDST\tVIA\tPKTS\tGOT\tWANT")
	for _, r := range sorted {
		if r.flows == nil {
			continue
		}
		for _, s := range r.flows.Data.Splits {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.4f\t%.4f\n",
				r.flows.ID, s.Dst, s.Hop, s.Packets, s.Got, s.Want)
		}
	}
	tw.Flush()
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
