package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"minroute/internal/graph"
	"minroute/internal/node"
	"minroute/internal/obs"
	"minroute/internal/telemetry"
	"minroute/internal/topo"
	"minroute/internal/transport"
)

// benchDescription heads the BENCH_obs.json report.
const benchDescription = "Benchmark snapshot for the observability plane: end-to-end scrape " +
	"latency of every endpoint against a live converged 3-node UDP mesh (HTTP loopback, " +
	"handler takes the node lock for a consistent sample), the Prometheus exposition " +
	"encode path in isolation, and the per-event cost of the atomic instruments the ARQ " +
	"and session hot paths write through. Units: ns_per_op / B_per_op / allocs_per_op " +
	"for micro-benchmarks, mean/p50/p99 ns for scrape latency."

// protoCost mirrors the shared live/sim cost model (the mdrnode idiom).
func protoCost(l *graph.Link) float64 { return l.PropDelay + 1e-4 }

// wallLatency times fn against the OS clock. Scrape latency is a
// property of the real HTTP round trip, which no transport.Clock covers,
// so bench mode is a sanctioned wall-clock reader (see DESIGN.md §15).
func wallLatency(fn func()) time.Duration {
	start := time.Now() //lint:nowall-ok bench mode times the real HTTP scrape path, which no transport.Clock covers
	fn()
	return time.Since(start) //lint:nowall-ok bench mode times the real HTTP scrape path, which no transport.Clock covers
}

// latencyStats is one endpoint's scrape-latency summary.
type latencyStats struct {
	MeanNS  float64 `json:"mean_ns"`
	P50NS   float64 `json:"p50_ns"`
	P99NS   float64 `json:"p99_ns"`
	Samples int     `json:"samples"`
}

func summarize(samples []time.Duration) latencyStats {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	n := len(sorted)
	return latencyStats{
		MeanNS:  float64(sum.Nanoseconds()) / float64(n),
		P50NS:   float64(sorted[n/2].Nanoseconds()),
		P99NS:   float64(sorted[min(n-1, n*99/100)].Nanoseconds()),
		Samples: n,
	}
}

// microStats is one testing.Benchmark result in the BENCH_*.json idiom.
type microStats struct {
	NSPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"B_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

func micro(note string, fn func(b *testing.B)) microStats {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return microStats{
		NSPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BPerOp:      r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Note:        note,
	}
}

// benchReport is the BENCH_obs.json document.
type benchReport struct {
	Description string `json:"description"`
	Environment struct {
		Go    string `json:"go"`
		Cores int    `json:"cores"`
		Note  string `json:"note"`
	} `json:"environment"`
	ScrapeLatency map[string]latencyStats `json:"scrape_latency"`
	ScrapeNote    string                  `json:"scrape_note"`
	Exposition    map[string]microStats   `json:"exposition"`
	Instruments   map[string]microStats   `json:"instruments"`
}

// runBench boots an in-process observable mesh, measures the plane, and
// writes the report.
func runBench(outPath string) error {
	report := benchReport{Description: benchDescription}
	report.Environment.Go = runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH
	report.Environment.Cores = runtime.NumCPU()
	report.Environment.Note = "Scrape latency includes the handler's node-lock acquisition, " +
		"JSON or Prometheus encoding, and the loopback HTTP round trip; on a loaded " +
		"container the tail reflects scheduler jitter, not the handler."

	scrape, err := benchScrape()
	if err != nil {
		return err
	}
	report.ScrapeLatency = scrape
	report.ScrapeNote = "GET against node 0 of a converged lossless 3-ring over UDP+ARQ, " +
		"keep-alive connections, measured with the OS clock (the module's sanctioned " +
		"bench-mode wall reads; see the nowall lint check)."
	report.Exposition = benchExposition()
	report.Instruments = benchInstruments()

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// benchScrape converges a UDP 3-ring with the plane on and samples every
// endpoint's GET latency.
func benchScrape() (map[string]latencyStats, error) {
	m, err := node.NewMesh(topo.Ring(3, 1.5*topo.Mb, 0.01), node.MeshConfig{
		Fabric:         node.FabricUDP,
		Clock:          node.NewWallClock(),
		CostOf:         protoCost,
		Fault:          transport.Fault{Seed: 1},
		ARQ:            transport.ARQConfig{RTO: 0.05, MaxRTO: 0.5},
		HeartbeatEvery: 0.25,
		DeadAfter:      60,
		ObsAddr:        "127.0.0.1:0",
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if err := m.AwaitConverged(25, 3000, func() { time.Sleep(10 * time.Millisecond) }); err != nil {
		return nil, err
	}

	c := &http.Client{}
	defer c.CloseIdleConnections()
	base := m.ObsURLs()[0]
	const warmup, samples = 20, 300
	out := make(map[string]latencyStats, 4)
	for _, path := range []string{"/metrics", "/healthz", "/readyz", "/routes", "/peers"} {
		get := func() {
			resp, err := c.Get(base + path)
			if err == nil {
				var sink bytes.Buffer
				sink.ReadFrom(resp.Body)
				resp.Body.Close()
			}
		}
		for i := 0; i < warmup; i++ {
			get()
		}
		lat := make([]time.Duration, samples)
		for i := range lat {
			lat[i] = wallLatency(get)
		}
		out[path] = summarize(lat)
	}
	return out, nil
}

// benchRegistry builds a registry shaped like one live node's: session
// instruments, per-link ARQ families for a degree-4 node, the mirrored
// event-bus counters, and one histogram.
func benchRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry(0.01)
	for _, name := range []string{
		"session.peer_ups", "session.peer_downs", "session.lsus_sent",
		"session.lsus_received", "telemetry.events.emitted", "telemetry.events.dropped",
	} {
		reg.Counter(name).Add(12345)
	}
	reg.Gauge("session.peers").Set(4)
	for _, link := range []string{"0-1", "0-2", "0-3", "0-4"} {
		reg.Counter("arq.retransmits." + link).Add(17)
		reg.Gauge("arq.window." + link).Set(3)
	}
	h := reg.Histogram("lsu.batch")
	for i := 0; i < 64; i++ {
		h.Observe(float64(i)*0.01, float64(i%7))
	}
	return reg
}

// benchExposition isolates the /metrics encode path: the Gather snapshot
// and the Prometheus text rendering, no HTTP.
func benchExposition() map[string]microStats {
	reg := benchRegistry()
	labels := map[string]string{"node": "0"}
	ms := reg.Gather()
	var buf bytes.Buffer
	return map[string]microStats{
		"telemetry/Gather": micro(
			"stable-order snapshot of a 15-instrument node registry; allocates the metric slice and sorted name lists",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if len(reg.Gather()) == 0 {
						b.Fatal("empty gather")
					}
				}
			}),
		"obs/WritePrometheus": micro(
			"text exposition of the gathered snapshot into a reused buffer, const node label merged per sample",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					buf.Reset()
					if err := obs.WritePrometheus(&buf, ms, labels); err != nil {
						b.Fatal(err)
					}
				}
			}),
	}
}

// benchInstruments measures the per-event instrument writes the hot
// paths issue: the enabled atomic CAS/store and the disabled nil no-op
// that TestARQStatsEnabledZeroAlloc pins at 0 allocs.
func benchInstruments() map[string]microStats {
	reg := telemetry.NewRegistry(0)
	ctr := reg.Counter("bench.counter")
	g := reg.Gauge("bench.gauge")
	var nilCtr *telemetry.Counter
	return map[string]microStats{
		"Counter.Inc_enabled": micro(
			"one CAS loop iteration per event under no contention; the ARQ retransmit callback's cost",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ctr.Inc()
				}
			}),
		"Counter.Inc_disabled": micro(
			"nil receiver: the single branch a mesh without metrics pays per probe site",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					nilCtr.Inc()
				}
			}),
		"Gauge.Set": micro(
			"one atomic store; the ARQ window callback's cost",
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g.Set(float64(i & 7))
				}
			}),
	}
}
