package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"minroute/internal/leaktest"
	"minroute/internal/node"
	"minroute/internal/obs"
	"minroute/internal/topo"
	"minroute/internal/transport"
)

func TestResolveTargets(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "obs.txt")
	if err := os.WriteFile(manifest, []byte("http://a:1\n\n  http://b:2  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	urls, err := resolveTargets(manifest, " http://c:3 ,, http://d:4")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	if len(urls) != len(want) {
		t.Fatalf("got %v, want %v", urls, want)
	}
	for i := range want {
		if urls[i] != want[i] {
			t.Fatalf("got %v, want %v", urls, want)
		}
	}

	if _, err := resolveTargets("", ""); err == nil {
		t.Fatal("no targets should be an error")
	}
	if _, err := resolveTargets(filepath.Join(dir, "missing.txt"), ""); err == nil {
		t.Fatal("missing manifest should be an error")
	}
}

// fakeObs serves /readyz and /peers like a node's obs server, turning
// ready after the given number of /readyz polls.
func fakeObs(t *testing.T, id, readyAfter int) *httptest.Server {
	t.Helper()
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		n := polls.Add(1)
		rd := obs.Readiness{
			Ready: n > int64(readyAfter), Passive: true,
			Peers: 2, MinPeers: 2, Streak: 10, StablePolls: 10,
			Hash: "deadbeefcafe",
		}
		code := http.StatusOK
		if !rd.Ready {
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(rd)
	})
	mux.HandleFunc("/peers", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(obs.PeersDoc{
			ID: id, MinPeers: 2,
			Peers: []obs.Peer{
				{ID: (id + 1) % 3, Cost: 1, RTO: 0.05, Retransmits: 2, Window: 1},
				{ID: (id + 2) % 3, Cost: 1, RTO: 0.01, Retransmits: 3},
			},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRunWatchConverges drives the watcher against fake nodes that turn
// ready after a few polls and checks the rendered table.
func TestRunWatchConverges(t *testing.T) {
	leaktest.Check(t)
	var urls []string
	for id := 0; id < 3; id++ {
		urls = append(urls, fakeObs(t, id, 2).URL)
	}
	var out strings.Builder
	if err := runWatch(&out, urls, 0.005, 10); err != nil {
		t.Fatalf("runWatch: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"NODE", "READY",
		"poll 0: 0/3 nodes ready",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Row content (tabwriter pads, so match fields, not raw tabs).
	for _, line := range strings.Split(got, "\n") {
		if !strings.HasPrefix(line, "0 ") {
			continue
		}
		f := strings.Fields(line)
		want := []string{"0", "yes", "yes", "2/2", "0", "10/10", "5", "0.0500", "deadbeef"}
		if fmt.Sprint(f) != fmt.Sprint(want) {
			t.Errorf("node 0 row = %v, want %v", f, want)
		}
	}
}

// TestRunWatchDeadline pins the failure mode: a node that never turns
// ready must make the watcher exit nonzero after the poll-counted
// deadline, still rendering the table for diagnosis.
func TestRunWatchDeadline(t *testing.T) {
	leaktest.Check(t)
	urls := []string{fakeObs(t, 0, 1<<30).URL}
	var out strings.Builder
	err := runWatch(&out, urls, 0.002, 0.02)
	if err == nil || !strings.Contains(err.Error(), "not converged") {
		t.Fatalf("want deadline error, got %v", err)
	}
	if !strings.Contains(out.String(), "no") {
		t.Errorf("failure table should show a not-ready node:\n%s", out.String())
	}
}

// TestRunWatchUnreachable: a dead target renders an error row and fails
// the watch.
func TestRunWatchUnreachable(t *testing.T) {
	leaktest.Check(t)
	srv := fakeObs(t, 0, 0)
	url := srv.URL
	srv.Close()
	var out strings.Builder
	if err := runWatch(&out, []string{url}, 0.002, 0.01); err == nil {
		t.Fatal("watching a dead target should fail")
	}
	if !strings.Contains(out.String(), url) {
		t.Errorf("error row should name the target:\n%s", out.String())
	}
}

// TestWatchLiveMesh is the end-to-end path: a lossy UDP ring with the
// observability plane on, watched to convergence exactly as CI does.
func TestWatchLiveMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live UDP mesh; not a -short test")
	}
	leaktest.Check(t)
	m, err := node.NewMesh(topo.Ring(3, 1.5*topo.Mb, 0.01), node.MeshConfig{
		Fabric:         node.FabricUDP,
		Clock:          node.NewWallClock(),
		CostOf:         protoCost,
		Fault:          transport.Fault{Seed: 1, LossProb: 0.02},
		ARQ:            transport.ARQConfig{RTO: 0.01, MaxRTO: 0.2},
		HeartbeatEvery: 0.2,
		DeadAfter:      60,
		ObsAddr:        "127.0.0.1:0",
		ObsPollEvery:   0.005,
		ObsStablePolls: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out strings.Builder
	if err := runWatch(&out, m.ObsURLs(), 0.02, 30); err != nil {
		t.Fatalf("runWatch: %v\noutput:\n%s", err, out.String())
	}
	// Three converged rows: ready, passive, fully peered, each carrying
	// its own (per-node) state hash.
	converged := 0
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		f := strings.Fields(line)
		if len(f) != 9 || f[0] == "NODE" {
			continue
		}
		if f[1] == "yes" && f[2] == "yes" && f[3] == "2/2" && len(f[8]) == 8 {
			converged++
		}
	}
	if converged != 3 {
		t.Errorf("want 3 converged rows, got %d:\n%s", converged, out.String())
	}
}

// TestSummarize pins the latency reducer on a known distribution.
func TestSummarize(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Microsecond
	}
	s := summarize(samples)
	if s.Samples != 100 || s.MeanNS != 50500 || s.P50NS != 51000 || s.P99NS != 100000 {
		t.Fatalf("summarize = %+v", s)
	}
}

// TestBenchRegistryShape keeps the synthetic exposition workload honest:
// it must gather the same instrument mix a live node exports.
func TestBenchRegistryShape(t *testing.T) {
	ms := benchRegistry().Gather()
	var counters, gauges, hists int
	for _, m := range ms {
		switch m.Inst.String() {
		case "counter":
			counters++
		case "gauge":
			gauges++
		case "hist":
			hists++
		}
	}
	if counters != 10 || gauges != 5 || hists != 1 {
		t.Fatalf("benchRegistry gathered %d counters, %d gauges, %d hists; want 10/5/1",
			counters, gauges, hists)
	}
}
