// Command mdrcheck runs the repository's determinism and ownership lint
// suite (internal/lint) over Go packages. It is part of the commit gate:
// `make lint` runs it over ./... and any finding fails the build.
//
// Usage:
//
//	mdrcheck [-json] [-checks maporder,norand,...] [-list] [packages]
//
// With no packages, ./... is checked. -list prints the roster grouped by
// category: the determinism suite (seed-purity and ownership, DESIGN.md
// §9) and the concurrency suite (lock order, goroutine lifecycle, atomic
// discipline, channel ownership — DESIGN.md §13). Exit status: 0 clean,
// 1 findings, 2 usage or load error (including packages that do not
// compile).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"minroute/internal/lint"
)

// jsonDiag is the -json wire form of one finding, stable for CI consumers.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	checks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdrcheck [-json] [-checks list] [packages]\n\n")
		printChecks(os.Stderr, "  ")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		printChecks(os.Stdout, "")
		return
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrcheck:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	loader, err := lint.NewLoader(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrcheck:", err)
		os.Exit(2)
	}

	var diags []lint.Diag
	for _, path := range loader.Targets() {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdrcheck:", err)
			os.Exit(2)
		}
		diags = append(diags, lint.RunPackage(pkg, analyzers)...)
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: relPath(d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column,
				Check: d.Check, Message: d.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mdrcheck:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Msg)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// printChecks writes the analyzer roster grouped by category, in the
// categories' display order (determinism first, then concurrency), so the
// help output mirrors the two suites documented in DESIGN.md §9 and §13.
// Only the first line of each Doc is shown; the full rationale lives in
// the analyzer source and DESIGN.md.
func printChecks(w io.Writer, indent string) {
	for _, cat := range lint.Categories() {
		fmt.Fprintf(w, "%s%s checks:\n", indent, cat)
		for _, a := range lint.All {
			if a.Category != cat {
				continue
			}
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(w, "%s  %-19s %s\n", indent, a.Name, doc)
		}
		fmt.Fprintln(w)
	}
}

// relPath shortens an absolute filename to be relative to the working
// directory when possible, keeping output stable across checkouts.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return name
}
