// Command mdrtopo inspects the paper's topologies (Fig. 8): node and link
// counts, degrees, diameter, the configured flows, and the full link list.
// It also generates large synthetic topologies (scale-free or grid, hundreds
// of routers) in the scenario text format, which feed the sharded-execution
// scaling benchmarks (make bench-scale) and mdrsim -topo-file.
//
// Usage:
//
//	mdrtopo -topo cairn
//	mdrtopo -topo net1 -links
//	mdrtopo -topo cairn -svg cairn.svg   # force-directed diagram
//	mdrtopo -gen scalefree -n 200 -flows 64 -out big.topo
//	mdrtopo -gen grid -n 400 -flows 100 -out grid.topo
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"minroute/internal/netsvg"
	"minroute/internal/topo"
)

func main() {
	var (
		topoName = flag.String("topo", "cairn", "topology: cairn or net1")
		links    = flag.Bool("links", false, "print the full link list")
		svgOut   = flag.String("svg", "", "write a force-directed SVG diagram to this file")

		gen     = flag.String("gen", "", "generate a synthetic topology: scalefree or grid")
		n       = flag.Int("n", 200, "generated router count (200-1000 is the scaling-benchmark range)")
		m       = flag.Int("m", 2, "scalefree: links each new router attaches with")
		seed    = flag.Uint64("seed", 1, "generator seed")
		flows   = flag.Int("flows", 64, "generated flow count")
		rate    = flag.Float64("rate", 1.0, "mean flow rate in Mb/s (drawn from [0.5x, 1.5x])")
		capMbps = flag.Float64("cap", 10, "generated link capacity in Mb/s")
		maxProp = flag.Float64("maxprop", 2e-3, "maximum propagation delay in seconds")
		out     = flag.String("out", "", "write the generated network in scenario format to this file (default stdout)")
	)
	flag.Parse()

	var net *topo.Network
	generated := *gen != ""
	switch {
	case !generated && *topoName == "cairn":
		net = topo.CAIRN()
	case !generated && *topoName == "net1":
		net = topo.NET1()
	case generated:
		var err error
		if net, err = generate(*gen, *seed, *n, *m, *flows, *rate*topo.Mb, *capMbps*topo.Mb, *maxProp); err != nil {
			fmt.Fprintf(os.Stderr, "mdrtopo: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "mdrtopo: unknown topology %q\n", *topoName)
		os.Exit(2)
	}

	if generated {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mdrtopo: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := topo.Format(w, net); err != nil {
			fmt.Fprintf(os.Stderr, "mdrtopo: %v\n", err)
			os.Exit(1)
		}
		g := net.Graph
		fmt.Fprintf(os.Stderr, "%s: %d nodes, %d directed links, %d flows\n",
			*gen, g.NumNodes(), g.NumLinks(), len(net.Flows))
		return
	}

	g := net.Graph
	fmt.Printf("%s: %d nodes, %d directed links, diameter %d\n",
		*topoName, g.NumNodes(), g.NumLinks(), g.Diameter())

	minDeg, maxDeg := 1<<30, 0
	for _, id := range g.Nodes() {
		d := g.Degree(id)
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("degrees: %d..%d\n\n", minDeg, maxDeg)

	fmt.Println("flows:")
	total := 0.0
	for _, f := range net.Flows {
		fmt.Printf("  %-18s %.1f Mb/s\n", f.Name, f.Rate/1e6)
		total += f.Rate
	}
	fmt.Printf("  total offered: %.1f Mb/s\n", total/1e6)

	if *links {
		fmt.Println()
		fmt.Print(g.String())
	}

	if *svgOut != "" {
		doc := netsvg.Render(g, netsvg.Options{})
		if err := os.WriteFile(*svgOut, []byte(doc), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mdrtopo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}

// generate builds a synthetic network with seed-derived demands.
func generate(kind string, seed uint64, n, m, flows int, rate, capacity, maxProp float64) (*topo.Network, error) {
	net := &topo.Network{}
	switch kind {
	case "scalefree":
		net.Graph = topo.ScaleFree(seed, n, m, capacity, maxProp)
	case "grid":
		rows := int(math.Sqrt(float64(n)))
		if rows < 1 {
			rows = 1
		}
		cols := (n + rows - 1) / rows
		net.Graph = topo.Grid(rows, cols, capacity, maxProp)
	default:
		return nil, fmt.Errorf("unknown generator %q (want scalefree or grid)", kind)
	}
	net.Flows = topo.SynthFlows(seed, net.Graph, flows, 0.5*rate, 1.5*rate)
	return net, nil
}
