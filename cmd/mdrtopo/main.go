// Command mdrtopo inspects the paper's topologies (Fig. 8): node and link
// counts, degrees, diameter, the configured flows, and the full link list.
//
// Usage:
//
//	mdrtopo -topo cairn
//	mdrtopo -topo net1 -links
//	mdrtopo -topo cairn -svg cairn.svg   # force-directed diagram
package main

import (
	"flag"
	"fmt"
	"os"

	"minroute/internal/netsvg"
	"minroute/internal/topo"
)

func main() {
	var (
		topoName = flag.String("topo", "cairn", "topology: cairn or net1")
		links    = flag.Bool("links", false, "print the full link list")
		svgOut   = flag.String("svg", "", "write a force-directed SVG diagram to this file")
	)
	flag.Parse()

	var net *topo.Network
	switch *topoName {
	case "cairn":
		net = topo.CAIRN()
	case "net1":
		net = topo.NET1()
	default:
		fmt.Fprintf(os.Stderr, "mdrtopo: unknown topology %q\n", *topoName)
		os.Exit(2)
	}
	g := net.Graph
	fmt.Printf("%s: %d nodes, %d directed links, diameter %d\n",
		*topoName, g.NumNodes(), g.NumLinks(), g.Diameter())

	minDeg, maxDeg := 1<<30, 0
	for _, id := range g.Nodes() {
		d := g.Degree(id)
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("degrees: %d..%d\n\n", minDeg, maxDeg)

	fmt.Println("flows:")
	total := 0.0
	for _, f := range net.Flows {
		fmt.Printf("  %-18s %.1f Mb/s\n", f.Name, f.Rate/1e6)
		total += f.Rate
	}
	fmt.Printf("  total offered: %.1f Mb/s\n", total/1e6)

	if *links {
		fmt.Println()
		fmt.Print(g.String())
	}

	if *svgOut != "" {
		doc := netsvg.Render(g, netsvg.Options{})
		if err := os.WriteFile(*svgOut, []byte(doc), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mdrtopo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}
