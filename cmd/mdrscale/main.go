// Command mdrscale benchmarks sharded single-simulation execution
// (internal/despart) on a large synthetic topology and emits a JSON
// snapshot in the BENCH_scale.json format.
//
// For each requested shard count it builds the same network, runs the
// same warmup+measurement schedule, and records wall time and events/sec
// — with the oracles armed: every run must pass the loop-free check, and
// every run's report must be byte-identical to the serial (shards=1)
// run's, so a speedup that came from diverging behaviour is impossible
// to miss.
//
// Usage:
//
//	mdrscale -out BENCH_scale.json             # default 240-router scale-free
//	mdrscale -n 600 -shards 1,2,4,8 -iters 3
//	mdrscale -topo big.topo -dur 5             # pre-generated (mdrtopo -gen)
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"minroute/internal/core"
	"minroute/internal/topo"
)

type benchEnv struct {
	Go         string `json:"go"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note,omitempty"`
}

type benchTopo struct {
	Kind          string `json:"kind"`
	Routers       int    `json:"routers"`
	DirectedLinks int    `json:"directed_links"`
	Flows         int    `json:"flows"`
	Seed          uint64 `json:"seed"`
}

type benchRun struct {
	Shards          int     `json:"shards"`
	WallSeconds     float64 `json:"wall_seconds"`
	Events          int64   `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	LoopFree        bool    `json:"loop_free"`
	MatchesSerial   bool    `json:"matches_serial_report"`
}

type benchReport struct {
	Description string     `json:"description"`
	Environment benchEnv   `json:"environment"`
	Topology    benchTopo  `json:"topology"`
	WarmupS     float64    `json:"warmup_s"`
	DurationS   float64    `json:"duration_s"`
	Iterations  int        `json:"iterations"`
	Runs        []benchRun `json:"runs"`
}

func main() {
	var (
		n        = flag.Int("n", 240, "generated router count (scale-free)")
		m        = flag.Int("m", 2, "scale-free attachment links per new router")
		flows    = flag.Int("flows", 96, "generated flow count")
		rate     = flag.Float64("rate", 0.5, "mean flow rate in Mb/s (drawn from [0.5x, 1.5x])")
		capMbps  = flag.Float64("cap", 10, "generated link capacity in Mb/s")
		maxProp  = flag.Float64("maxprop", 2e-3, "maximum propagation delay in seconds")
		seed     = flag.Uint64("seed", 1, "topology and simulation seed")
		topoFile = flag.String("topo", "", "benchmark a pre-generated scenario file instead (mdrtopo -gen)")
		warmup   = flag.Float64("warmup", 2, "settling time in simulated seconds")
		dur      = flag.Float64("dur", 8, "measurement period in simulated seconds")
		shardArg = flag.String("shards", "1,2,4,8", "comma-separated shard counts")
		iters    = flag.Int("iters", 1, "repetitions per shard count (best wall time is reported)")
		out      = flag.String("out", "", "write the JSON snapshot to this file (default stdout)")
	)
	flag.Parse()

	shardCounts, err := parseShards(*shardArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrscale: -shards: %v\n", err)
		os.Exit(2)
	}

	var net *topo.Network
	kind := "scalefree"
	if *topoFile != "" {
		kind = *topoFile
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrscale: %v\n", err)
			os.Exit(1)
		}
		net, err = topo.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdrscale: %s: %v\n", *topoFile, err)
			os.Exit(1)
		}
	} else {
		net = &topo.Network{Graph: topo.ScaleFree(*seed, *n, *m, *capMbps*topo.Mb, *maxProp)}
		net.Flows = topo.SynthFlows(*seed, net.Graph, *flows, 0.5**rate*topo.Mb, 1.5**rate*topo.Mb)
	}

	rep := benchReport{
		Description: "Sharded single-simulation scaling (internal/despart): wall time and events/sec vs shard count on one large topology, oracles armed (loop-free + byte-identical report vs the serial run).",
		Environment: benchEnv{
			Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			Cores:      runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Topology: benchTopo{
			Kind:          kind,
			Routers:       net.Graph.NumNodes(),
			DirectedLinks: net.Graph.NumLinks(),
			Flows:         len(net.Flows),
			Seed:          *seed,
		},
		WarmupS:    *warmup,
		DurationS:  *dur,
		Iterations: *iters,
	}
	if rep.Environment.Cores == 1 {
		rep.Environment.Note = "Single-CPU container: shard workers serialize onto one core, so wall time cannot improve here and the events/sec column measures coordination overhead only. The multi-core speedup path is exercised for correctness (not speed) by the determinism matrix and despart tests; re-run this benchmark on a multi-core host for real scaling numbers."
	}

	var serialHash string
	for _, shards := range shardCounts {
		run := benchRun{Shards: shards, WallSeconds: -1}
		for it := 0; it < *iters; it++ {
			opt := core.DefaultOptions()
			opt.Seed = *seed
			opt.Warmup = *warmup
			opt.Duration = *dur
			opt.Shards = shards
			sim := core.Build(net, opt)
			start := time.Now() //lint:nowall-ok benchmark wall-clock measurement, never enters the simulation
			r := sim.Run()
			//lint:nowall-ok benchmark wall-clock measurement, never enters the simulation
			wall := time.Since(start).Seconds()

			var events int64
			for _, e := range sim.Engines() {
				events += e.EventsFired()
			}
			run.LoopFree = sim.CheckLoopFree() == nil
			sum := sha256.Sum256([]byte(r.String()))
			hash := hex.EncodeToString(sum[:])
			if serialHash == "" {
				serialHash = hash
			}
			run.MatchesSerial = hash == serialHash
			run.Events = events
			if run.WallSeconds < 0 || wall < run.WallSeconds {
				run.WallSeconds = wall
			}
		}
		run.EventsPerSec = float64(run.Events) / run.WallSeconds
		rep.Runs = append(rep.Runs, run)
		fmt.Fprintf(os.Stderr, "mdrscale: shards=%d wall=%.2fs events=%d (%.0f events/sec) loop-free=%v matches-serial=%v\n",
			run.Shards, run.WallSeconds, run.Events, run.EventsPerSec, run.LoopFree, run.MatchesSerial)
	}
	for i := range rep.Runs {
		rep.Runs[i].SpeedupVsSerial = rep.Runs[0].WallSeconds / rep.Runs[i].WallSeconds
	}

	failed := false
	for _, r := range rep.Runs {
		if !r.LoopFree || !r.MatchesSerial {
			failed = true
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrscale: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mdrscale: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "mdrscale: ORACLE VIOLATION: a sharded run diverged from the serial run")
		os.Exit(1)
	}
}

// parseShards parses "1,2,4,8" into sorted-as-given shard counts; the first
// entry is the serial baseline every other run is compared against.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
