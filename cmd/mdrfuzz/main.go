// Command mdrfuzz hunts for invariant violations with randomized chaos
// scenarios: seed-derived fault schedules over the paper's topologies run
// against the protocol-level harness (and optionally the packet simulator)
// with every oracle armed. A violating scenario is shrunk to a minimal
// reproducer and written as JSON for deterministic replay with
// `mdrsim -chaos <file>`.
//
// Usage:
//
//	mdrfuzz -n 200                    # 200 scenarios from seeds 1..200
//	mdrfuzz -n 50 -seed 1000 -des     # seeds 1000..1049, both runners
//	mdrfuzz -n 500 -out repro.json    # write the shrunk reproducer here
//	mdrfuzz -corpus dir               # also emit fuzz-corpus seed inputs
//
// Exit status 1 when any violation was found, 0 on a clean sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"minroute/internal/chaos"
	"minroute/internal/simpool"
	"minroute/internal/telemetry"
)

func main() {
	var (
		n       = flag.Int("n", 200, "number of scenarios to run")
		seed    = flag.Uint64("seed", 1, "first scenario seed (seeds seed..seed+n-1)")
		des     = flag.Bool("des", false, "also run each scenario in the packet simulator")
		out     = flag.String("out", "mdrfuzz-repro.json", "path for the shrunk reproducer of the first violation")
		corpus  = flag.String("corpus", "", "write each scenario as a Go fuzz corpus input into this directory")
		workers = flag.Int("workers", 0, "max scenarios running concurrently (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print every scenario result")
	)
	flag.Parse()
	simpool.SetWorkers(*workers)

	type outcome struct {
		seed   uint64
		runner string
		res    *chaos.Result
		err    error
	}
	results := make([]outcome, 0, 2*(*n))
	var mu sync.Mutex
	g := simpool.Coordinator()
	for i := 0; i < *n; i++ {
		s := *seed + uint64(i)
		g.Go(func() error {
			sc := chaos.Generate(s)
			res, err := chaos.RunProto(sc)
			mu.Lock()
			results = append(results, outcome{s, "proto", res, err})
			mu.Unlock()
			if *des {
				res, err = chaos.RunDES(sc)
				mu.Lock()
				results = append(results, outcome{s, "des", res, err})
				mu.Unlock()
			}
			return nil
		})
	}
	g.Wait()
	sort.Slice(results, func(i, j int) bool {
		if results[i].seed != results[j].seed {
			return results[i].seed < results[j].seed
		}
		return results[i].runner < results[j].runner
	})

	if *corpus != "" {
		if err := writeCorpus(*corpus, *seed, *n); err != nil {
			fmt.Fprintf(os.Stderr, "mdrfuzz: corpus: %v\n", err)
			os.Exit(1)
		}
	}

	counts := make(map[string]int64)
	var events int64
	failures := 0
	var firstBad uint64
	for _, o := range results {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "mdrfuzz: seed %d (%s): %v\n", o.seed, o.runner, o.err)
			os.Exit(1)
		}
		events += o.res.Events
		for _, c := range o.res.Log.Counts() {
			counts[c.Check] += c.Count
		}
		if o.res.Failed() {
			if failures == 0 {
				firstBad = o.seed
			}
			failures++
			fmt.Printf("seed %d (%s): VIOLATION %s\n", o.seed, o.runner, o.res.Log.Violations[0])
		} else if *verbose {
			fmt.Printf("seed %d (%s): ok, %d events, hash %.12s\n", o.seed, o.runner, o.res.Events, o.res.TraceHash)
		}
	}

	names := make([]string, 0, len(counts))
	//lint:maporder-ok keys are sorted before printing
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%d scenarios, %d events\n", *n, events)
	for _, name := range names {
		fmt.Printf("  oracle %-22s ran %d times\n", name, counts[name])
	}

	if failures == 0 {
		fmt.Println("no violations")
		return
	}
	fmt.Printf("%d violating runs; shrinking seed %d\n", failures, firstBad)
	min := chaos.Shrink(chaos.Generate(firstBad), func(c *chaos.Scenario) bool {
		res, err := chaos.RunProto(c)
		return err == nil && res.Failed()
	})
	if err := min.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "mdrfuzz: save reproducer: %v\n", err)
	} else {
		fmt.Printf("minimal reproducer (%d actions) written to %s — replay with: mdrsim -chaos %s\n",
			len(min.Actions), *out, *out)
	}
	if err := writeRepoEvents(min, *out); err != nil {
		fmt.Fprintf(os.Stderr, "mdrfuzz: reproducer telemetry: %v\n", err)
	}
	os.Exit(1)
}

// writeRepoEvents replays the shrunk reproducer once more with telemetry
// capture and writes its full event timeline next to the JSON as
// <out>.events.jsonl, so the violating schedule can be inspected (or
// diffed against a fixed build with mdrtrace) without rerunning anything.
func writeRepoEvents(min *chaos.Scenario, out string) error {
	tn, err := min.Network()
	if err != nil {
		return err
	}
	tel := telemetry.NewCapture(tn.Graph.NumNodes())
	if _, err := chaos.RunProtoWith(min, tel); err != nil {
		return err
	}
	f, err := os.Create(out + ".events.jsonl")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := telemetry.WriteJSONL(f, tel.Trace.Events()); err != nil {
		return err
	}
	fmt.Printf("reproducer event log written to %s.events.jsonl\n", out)
	return nil
}

// writeCorpus emits each generated scenario as a `go test fuzz v1` input so
// interesting schedules can seed FuzzChaosSchedule.
func writeCorpus(dir string, seed uint64, n int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s := seed + uint64(i)
		data := chaos.Encode(chaos.Generate(s))
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		path := filepath.Join(dir, fmt.Sprintf("gen-%d", s))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
