// Command mdropt runs Gallager's minimum-delay routing solver (OPT) on one
// of the paper's topologies and prints the converged solution: total delay
// D_T, per-flow expected delays, link utilizations, and the multipath
// splits at every router.
//
// Usage:
//
//	mdropt -topo cairn
//	mdropt -topo net1 -splits
//	mdropt -topo net1 -scale 1.2     # scale all offered loads
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"minroute/internal/fluid"
	"minroute/internal/gallager"
	"minroute/internal/graph"
	"minroute/internal/topo"
)

func main() {
	var (
		topoName = flag.String("topo", "cairn", "topology: cairn or net1")
		splits   = flag.Bool("splits", false, "print multipath splits at every router")
		scale    = flag.Float64("scale", 1.0, "scale factor applied to all flow rates")
		maxIters = flag.Int("iters", 2000, "maximum solver iterations")
	)
	flag.Parse()

	var net *topo.Network
	switch *topoName {
	case "cairn":
		net = topo.CAIRN()
	case "net1":
		net = topo.NET1()
	default:
		fmt.Fprintf(os.Stderr, "mdropt: unknown topology %q\n", *topoName)
		os.Exit(2)
	}
	net.Flows = topo.ScaleFlows(net.Flows, *scale)

	sol, err := gallager.Solve(net.Graph, net.Flows, gallager.Options{
		MeanPacketBits: 8000,
		MaxIters:       *maxIters,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdropt: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("OPT on %s: D_T=%.6f, %d iterations, converged=%v\n",
		*topoName, sol.TotalDelay, sol.Iterations, sol.Converged)

	cfg := fluid.Config{Graph: net.Graph, Flows: net.Flows, MeanPacketBits: 8000}
	res, err := fluid.Solve(cfg, sol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdropt: evaluate: %v\n", err)
		os.Exit(1)
	}
	d, err := fluid.Delays(cfg, sol, res)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdropt: delays: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("max link utilization: %.3f\n\n", d.MaxUtilization)

	fmt.Println("per-flow expected delays:")
	for x, f := range net.Flows {
		fmt.Printf("  %-18s %8.3f ms  (%.1f Mb/s)\n", f.Name, d.FlowDelay[x]*1e3, f.Rate/1e6)
	}

	fmt.Println("\nbusiest links:")
	type lu struct {
		from, to graph.NodeID
		util     float64
	}
	var lus []lu
	for _, l := range net.Graph.Links() {
		u := res.Flow(l.From, l.To) / l.Capacity
		if u > 0 {
			lus = append(lus, lu{l.From, l.To, u})
		}
	}
	sort.Slice(lus, func(i, j int) bool { return lus[i].util > lus[j].util })
	for i, x := range lus {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-10s -> %-10s %.3f\n", net.Graph.Name(x.from), net.Graph.Name(x.to), x.util)
	}

	if *splits {
		fmt.Println("\nmultipath splits (router -> destination: successor=fraction):")
		for j := range sol.Phi {
			for i := range sol.Phi[j] {
				phi := sol.Phi[j][i]
				if len(phi) < 2 {
					continue
				}
				line := fmt.Sprintf("  %-10s -> %-10s:", net.Graph.Name(graph.NodeID(i)), net.Graph.Name(graph.NodeID(j)))
				for _, k := range phi.Keys() {
					if phi[k] > 0.001 {
						line += fmt.Sprintf(" %s=%.2f", net.Graph.Name(k), phi[k])
					}
				}
				fmt.Println(line)
			}
		}
	}
}
