package main

import (
	"fmt"
	"sort"
	"strings"

	"minroute/internal/graph"
	"minroute/internal/telemetry"
)

// filter is the composed event predicate built from the command-line flags.
// The zero value keeps everything.
type filter struct {
	kinds  map[telemetry.Kind]bool // nil = all kinds
	router graph.NodeID            // -2 = any
	flow   int32                   // -2 = any
	since  float64
	until  float64 // negative = unbounded
}

// parseFilter validates the flag values and builds the predicate. Kind names
// must match the telemetry taxonomy exactly; a typo lists the valid names.
func parseFilter(kinds string, router, flow int, since, until float64) (filter, error) {
	f := filter{router: graph.NodeID(router), flow: int32(flow), since: since, until: until}
	if kinds == "" {
		return f, nil
	}
	f.kinds = make(map[telemetry.Kind]bool)
	for _, name := range strings.Split(kinds, ",") {
		k, ok := telemetry.KindByName(strings.TrimSpace(name))
		if !ok {
			return f, fmt.Errorf("unknown event kind %q (run -kinds for the list)", name)
		}
		f.kinds[k] = true
	}
	return f, nil
}

func (f filter) keep(ev telemetry.Event) bool {
	if f.kinds != nil && !f.kinds[ev.Kind] {
		return false
	}
	if f.router != -2 && ev.Router != f.router {
		return false
	}
	if f.flow != -2 && ev.Flow != f.flow {
		return false
	}
	if ev.T < f.since {
		return false
	}
	if f.until >= 0 && ev.T > f.until {
		return false
	}
	return true
}

// filterEvents returns the events passing f, preserving order.
func filterEvents(events []telemetry.Event, f filter) []telemetry.Event {
	out := make([]telemetry.Event, 0, len(events))
	for _, ev := range events {
		if f.keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// summarize renders per-kind and per-router counts plus the covered time
// span, in deterministic order.
func summarize(events []telemetry.Event) string {
	var b strings.Builder
	if len(events) == 0 {
		b.WriteString("0 events\n")
		return b.String()
	}
	tMin, tMax := events[0].T, events[0].T
	kindCount := make(map[telemetry.Kind]int)
	routerCount := make(map[graph.NodeID]int)
	for _, ev := range events {
		if ev.T < tMin {
			tMin = ev.T
		}
		if ev.T > tMax {
			tMax = ev.T
		}
		kindCount[ev.Kind]++
		routerCount[ev.Router]++
	}
	fmt.Fprintf(&b, "%d events over t=[%g, %g]\n", len(events), tMin, tMax)
	for k := 0; k < telemetry.NumKinds(); k++ {
		if n := kindCount[telemetry.Kind(k)]; n > 0 {
			fmt.Fprintf(&b, "  kind %-14s %d\n", telemetry.Kind(k), n)
		}
	}
	routers := make([]graph.NodeID, 0, len(routerCount))
	//lint:maporder-ok keys are sorted before printing
	for r := range routerCount {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	for _, r := range routers {
		label := fmt.Sprintf("router %d", r)
		if r < 0 {
			label = "network"
		}
		fmt.Fprintf(&b, "  %-19s %d\n", label, routerCount[r])
	}
	return b.String()
}

// diffEvents compares two event streams and reports the first divergence:
// the index, both events rendered as JSONL, and the length delta. Sequence
// numbers participate in the comparison deliberately — two logs of the same
// run must match exactly, emission order included.
func diffEvents(a, b []telemetry.Event) (string, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			var buf []byte
			out := fmt.Sprintf("logs diverge at event %d:\n", i)
			buf = telemetry.AppendJSONL(buf[:0], a[i])
			out += "  a: " + strings.TrimSuffix(string(buf), "\n") + "\n"
			buf = telemetry.AppendJSONL(buf[:0], b[i])
			out += "  b: " + strings.TrimSuffix(string(buf), "\n") + "\n"
			return out, false
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("logs share %d events, then lengths diverge: a has %d, b has %d\n",
			n, len(a), len(b)), false
	}
	return fmt.Sprintf("logs identical: %d events\n", n), true
}
