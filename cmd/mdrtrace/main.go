// Command mdrtrace inspects telemetry event logs exported by mdrsim,
// mdrfuzz, and the experiment harness (the *.events.jsonl artifacts).
//
// Usage:
//
//	mdrtrace run.events.jsonl                      # print the log (filtered)
//	mdrtrace -kind lsu_send,lsu_recv run.events.jsonl
//	mdrtrace -router 3 -since 1.5 -until 2.5 run.events.jsonl
//	mdrtrace -summary run.events.jsonl             # per-kind / per-router counts
//	mdrtrace -diff a.events.jsonl b.events.jsonl   # first divergence between logs
//	mdrtrace -chrome run.events.jsonl > trace.json # convert for chrome://tracing
//	mdrtrace -flood -flood-hops run.events.jsonl   # LSU flood propagation trees
//
// Filters compose: -summary, -diff, and -chrome all operate on the
// filtered view. Exit status 1 when -diff finds a divergence.
package main

import (
	"flag"
	"fmt"
	"os"

	"minroute/internal/telemetry"
)

func main() {
	var (
		kinds   = flag.String("kind", "", "comma-separated event kinds to keep (see -kinds)")
		listK   = flag.Bool("kinds", false, "list the event kinds and exit")
		router  = flag.Int("router", -2, "keep only events for this router (-1 = network scope)")
		flowID  = flag.Int("flow", -2, "keep only events for this flow ID")
		since   = flag.Float64("since", 0, "keep only events at sim time >= this")
		until   = flag.Float64("until", -1, "keep only events at sim time <= this (negative = no bound)")
		summary = flag.Bool("summary", false, "print per-kind and per-router counts instead of events")
		diff    = flag.Bool("diff", false, "compare two logs and report the first divergence")
		chrome  = flag.Bool("chrome", false, "emit Chrome trace-viewer JSON instead of JSONL")
		flood   = flag.Bool("flood", false, "reconstruct per-LSU flood propagation trees from lsu_send/lsu_recv pairs")
		floodW  = flag.Float64("flood-window", 0, "flood mode: max seconds between an arrival and the sends it caused (0 = same sim instant)")
		floodH  = flag.Bool("flood-hops", false, "flood mode: print every hop with its per-hop latency")
	)
	flag.Parse()

	if *listK {
		for k := 0; k < telemetry.NumKinds(); k++ {
			fmt.Println(telemetry.Kind(k))
		}
		return
	}

	f, err := parseFilter(*kinds, *router, *flowID, *since, *until)
	if err != nil {
		fatal(err)
	}

	if *diff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff wants exactly two log files"))
		}
		a, err := loadEvents(flag.Arg(0), f)
		if err != nil {
			fatal(err)
		}
		b, err := loadEvents(flag.Arg(1), f)
		if err != nil {
			fatal(err)
		}
		report, same := diffEvents(a, b)
		fmt.Print(report)
		if !same {
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	events, err := loadEvents(flag.Arg(0), f)
	if err != nil {
		fatal(err)
	}
	switch {
	case *flood:
		fmt.Print(renderFlood(buildFlood(events, *floodW), *floodH))
	case *summary:
		fmt.Print(summarize(events))
	case *chrome:
		if err := telemetry.WriteChromeTrace(os.Stdout, events); err != nil {
			fatal(err)
		}
	default:
		if err := telemetry.WriteJSONL(os.Stdout, events); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mdrtrace: %v\n", err)
	os.Exit(1)
}

func loadEvents(path string, f filter) ([]telemetry.Event, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	events, err := telemetry.ReadJSONL(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return filterEvents(events, f), nil
}
