package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minroute/internal/chaos"
	"minroute/internal/graph"
	"minroute/internal/telemetry"
)

// lsuEv builds one LSU event for the synthetic tests.
func lsuEv(seq uint64, t float64, k telemetry.Kind, router, peer int) telemetry.Event {
	e := telemetry.NewEvent(t, k, graph.NodeID(router))
	e.Seq = seq
	e.Peer = graph.NodeID(peer)
	return e
}

// TestBuildFloodSynthetic walks one hand-built flood through every
// reconstruction rule: same-instant root fan-out grouped into one tree,
// relay sends attached through the arrival that caused them, FIFO
// matching per directed link, fan-in counted as a dup, an orphan arrival,
// and an unmatched (lost) send.
func TestBuildFloodSynthetic(t *testing.T) {
	send, recv := telemetry.KindLSUSend, telemetry.KindLSURecv
	events := []telemetry.Event{
		// Origin 0 floods both neighbors at t=1: one tree, fan-out 2.
		lsuEv(1, 1.0, send, 0, 1),
		lsuEv(2, 1.0, send, 0, 2),
		// Arrivals; node 1 relays to 2 at the same instant (depth 2).
		lsuEv(3, 1.1, recv, 1, 0),
		lsuEv(4, 1.1, send, 1, 2),
		lsuEv(5, 1.2, recv, 2, 0),  // reaches 2 first via the direct hop
		lsuEv(6, 1.3, recv, 2, 1),  // fan-in: 2 already reached -> dup
		lsuEv(7, 1.3, send, 2, 3),  // relay onward, depth 3
		lsuEv(8, 1.35, recv, 3, 2), // deepest arrival
		lsuEv(9, 2.0, recv, 5, 4),  // orphan: no matching send on 4->5
		lsuEv(10, 3.0, send, 3, 0), // a second, separate flood from 3...
		lsuEv(11, 3.0, send, 3, 2), // ...same instant, same tree
		lsuEv(12, 3.1, recv, 0, 3), // one arrival; the 3->2 send is lost
	}
	rep := buildFlood(events, 0)
	if len(rep.Trees) != 2 {
		t.Fatalf("want 2 trees, got %d: %s", len(rep.Trees), renderFlood(rep, true))
	}
	t0 := rep.Trees[0]
	if t0.Origin != 0 || t0.Sends != 4 || t0.Arrivals != 4 || t0.Dups != 1 ||
		t0.Reached != 3 || t0.MaxDepth != 3 || t0.Start != 1.0 || t0.End != 1.35 {
		t.Errorf("tree 0 = %+v", t0)
	}
	t1 := rep.Trees[1]
	if t1.Origin != 3 || t1.Sends != 2 || t1.Arrivals != 1 || t1.Reached != 1 || t1.MaxDepth != 1 {
		t.Errorf("tree 1 = %+v", t1)
	}
	if rep.OrphanRecvs != 1 || rep.UnmatchedSends != 1 {
		t.Errorf("orphans=%d unmatched=%d, want 1 and 1", rep.OrphanRecvs, rep.UnmatchedSends)
	}

	// Per-hop latency of the deepest hop survives into the rendering.
	out := renderFlood(rep, true)
	for _, want := range []string{
		"2 flood trees, 1 orphan arrivals, 1 unmatched sends",
		"tree 0: origin 0 t=[1.000000,1.350000] sends=4 arrivals=4 dups=1 reached=3 depth=3",
		"  d3 2->3 send=1.300000 recv=1.350000 lat=0.050000",
		"tree 1: origin 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestBuildFloodWindow pins the attachment window: with window 0 a
// delayed relay roots its own tree; widening the window attaches it to
// the arrival that caused it.
func TestBuildFloodWindow(t *testing.T) {
	send, recv := telemetry.KindLSUSend, telemetry.KindLSURecv
	events := []telemetry.Event{
		lsuEv(1, 1.0, send, 0, 1),
		lsuEv(2, 1.1, recv, 1, 0),
		lsuEv(3, 1.15, send, 1, 2), // relays 50 ms after the arrival
		lsuEv(4, 1.2, recv, 2, 1),
	}
	if rep := buildFlood(events, 0); len(rep.Trees) != 2 {
		t.Errorf("window 0: want the delayed relay to root its own tree, got %d trees", len(rep.Trees))
	}
	rep := buildFlood(events, 0.1)
	if len(rep.Trees) != 1 {
		t.Fatalf("window 0.1: want 1 tree, got %d", len(rep.Trees))
	}
	if tr := rep.Trees[0]; tr.MaxDepth != 2 || tr.Reached != 2 {
		t.Errorf("window 0.1: tree = %+v", tr)
	}
}

// TestFloodGoldenDES pins the reconstruction end to end: replay the
// checked-in chaos regression fixture through the DES runner with
// telemetry on (the checked-in .events.jsonl golden comes from the
// protocol runner, which emits no lsu_send, so the DES run is generated
// here), rebuild the flood trees, and compare the rendering byte for
// byte.
//
// Regenerate after an intentional behavioral change with:
//
//	TRACE_UPDATE=1 go test -run TestFloodGoldenDES ./cmd/mdrtrace
func TestFloodGoldenDES(t *testing.T) {
	s, err := chaos.Load(filepath.Join("..", "..", "internal", "chaos", "testdata", "regress-dup-ack-credit.json"))
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Network()
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.NewCapture(tn.Graph.NumNodes())
	res, err := chaos.RunDESWith(s, tel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("fixture violates invariants: %v", res.Log.Violations)
	}
	events := tel.Trace.Events()
	rep := buildFlood(events, 0)
	if len(rep.Trees) == 0 {
		t.Fatal("DES run reconstructed no flood trees")
	}
	got := []byte(renderFlood(rep, true))

	golden := filepath.Join("testdata", "flood_regress-dup-ack-credit.txt")
	if os.Getenv("TRACE_UPDATE") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with TRACE_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("flood reconstruction drifted from golden %s (got %d bytes, want %d); rerun with TRACE_UPDATE=1 if intentional",
			golden, len(got), len(want))
	}
}
