package main

import (
	"strings"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/telemetry"
)

func ev(t float64, k telemetry.Kind, router graph.NodeID, flow int32) telemetry.Event {
	e := telemetry.NewEvent(t, k, router)
	e.Flow = flow
	return e
}

func sampleEvents() []telemetry.Event {
	return []telemetry.Event{
		ev(0.5, telemetry.KindLSUSend, 0, -1),
		ev(1.0, telemetry.KindPktEnqueue, 1, 2),
		ev(1.5, telemetry.KindPktDeliver, 2, 2),
		ev(2.0, telemetry.KindLSUSend, 1, -1),
		ev(3.0, telemetry.KindFaultStart, graph.None, -1),
	}
}

func TestParseFilterRejectsUnknownKind(t *testing.T) {
	if _, err := parseFilter("lsu_send,bogus", -2, -2, 0, -1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestFilterCompose(t *testing.T) {
	events := sampleEvents()
	cases := []struct {
		name         string
		kinds        string
		router, flow int
		since, until float64
		wantSeqTimes []float64
	}{
		{"all", "", -2, -2, 0, -1, []float64{0.5, 1.0, 1.5, 2.0, 3.0}},
		{"kind", "lsu_send", -2, -2, 0, -1, []float64{0.5, 2.0}},
		{"kinds", "pkt_enqueue,pkt_deliver", -2, -2, 0, -1, []float64{1.0, 1.5}},
		{"router", "", 1, -2, 0, -1, []float64{1.0, 2.0}},
		{"network-scope", "", -1, -2, 0, -1, []float64{3.0}},
		{"flow", "", -2, 2, 0, -1, []float64{1.0, 1.5}},
		{"window", "", -2, -2, 1.0, 2.0, []float64{1.0, 1.5, 2.0}},
		{"compose", "lsu_send", 1, -2, 1.0, -1, []float64{2.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := parseFilter(tc.kinds, tc.router, tc.flow, tc.since, tc.until)
			if err != nil {
				t.Fatal(err)
			}
			got := filterEvents(events, f)
			if len(got) != len(tc.wantSeqTimes) {
				t.Fatalf("got %d events, want %d", len(got), len(tc.wantSeqTimes))
			}
			for i, e := range got {
				if e.T != tc.wantSeqTimes[i] {
					t.Errorf("event %d at t=%g, want t=%g", i, e.T, tc.wantSeqTimes[i])
				}
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	got := summarize(sampleEvents())
	for _, want := range []string{
		"5 events over t=[0.5, 3]",
		"kind lsu_send       2",
		"kind pkt_deliver    1",
		"router 1            2",
		"network             1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if got := summarize(nil); got != "0 events\n" {
		t.Errorf("empty summary = %q", got)
	}
}

func TestDiffEvents(t *testing.T) {
	a := sampleEvents()
	if report, same := diffEvents(a, sampleEvents()); !same {
		t.Fatalf("identical logs reported different: %s", report)
	}

	b := sampleEvents()
	b[2].Value = 99
	report, same := diffEvents(a, b)
	if same {
		t.Fatal("modified log reported identical")
	}
	if !strings.Contains(report, "diverge at event 2") {
		t.Errorf("diff report missing divergence index: %s", report)
	}
	if !strings.Contains(report, `"value":99`) {
		t.Errorf("diff report missing modified event: %s", report)
	}

	report, same = diffEvents(a, a[:3])
	if same || !strings.Contains(report, "a has 5, b has 3") {
		t.Errorf("length divergence not reported: %s", report)
	}
}
