package main

import (
	"fmt"
	"sort"
	"strings"

	"minroute/internal/graph"
	"minroute/internal/telemetry"
)

// Flood tracing reconstructs per-LSU propagation trees from the
// lsu_send/lsu_recv pairs in an event log. Matching is FIFO per directed
// link: the simulator's control band is a reliable in-order channel, so
// the k-th send on link a->b pairs with the k-th recv at b from a.
// Causality across hops uses the attachment window: a send from router r
// at time t belongs to the tree of the last LSU r received no more than
// window seconds earlier (default 0 — the same simulation instant, which
// is exactly how the DES relays floods: HandleControl runs the router and
// its resulting sends fire before time advances). A send with no such
// arrival roots a new tree; same-instant root sends from one router are
// one flood (the initial fan-out to every neighbor).

// floodHop is one matched send->recv edge of a tree.
type floodHop struct {
	From, To     graph.NodeID
	SendT, RecvT float64
	Depth        int // links from the origin (root hops are depth 1)
}

// floodTree is one reconstructed propagation tree.
type floodTree struct {
	Origin   graph.NodeID
	Start    float64 // first send time
	End      float64 // last matched arrival (or send) time
	Sends    int     // lsu_send events attributed to the tree
	Arrivals int     // matched lsu_recv events
	Dups     int     // fan-in: arrivals at routers the flood already reached
	Reached  int     // distinct routers reached, origin excluded
	MaxDepth int
	Hops     []floodHop

	seen map[graph.NodeID]bool
}

// floodReport is the whole log's reconstruction.
type floodReport struct {
	Trees []*floodTree
	// OrphanRecvs are arrivals with no prior unmatched send on their
	// link: the send predates the log (ring-wrapped) or was filtered out.
	OrphanRecvs int
	// UnmatchedSends never arrived inside the log: lost in flight at the
	// end of the run, or the arrival fell off the ring.
	UnmatchedSends int
}

// pendingSend is an in-flight LSU awaiting its arrival.
type pendingSend struct {
	tree  *floodTree
	depth int
	t     float64
}

// lastArrival remembers a router's most recent matched LSU arrival, the
// causal parent for sends it issues within the attachment window.
type lastArrival struct {
	t     float64
	tree  *floodTree
	depth int
}

// buildFlood reconstructs the trees. Events are processed in (T, Seq)
// order — the order Tracer.Events emits — so sends enqueue before the
// arrivals they cause.
func buildFlood(events []telemetry.Event, window float64) floodReport {
	ordered := append([]telemetry.Event(nil), events...)
	sort.SliceStable(ordered, func(i, j int) bool {
		//lint:floateq-ok sort comparators need a strict weak order; tolerant equality is not transitive
		if ordered[i].T != ordered[j].T {
			return ordered[i].T < ordered[j].T
		}
		return ordered[i].Seq < ordered[j].Seq
	})

	var rep floodReport
	queues := make(map[[2]graph.NodeID][]pendingSend)
	last := make(map[graph.NodeID]lastArrival)
	roots := make(map[graph.NodeID]*floodTree) // last tree rooted at a router

	for _, ev := range ordered {
		switch ev.Kind { //lint:exhaustive-ok flood tracing reads only the LSU traffic pair; every other kind is deliberately skipped
		case telemetry.KindLSUSend:
			r, to, t := ev.Router, ev.Peer, ev.T
			var tree *floodTree
			depth := 1
			if la, ok := last[r]; ok && t-la.t <= window {
				tree, depth = la.tree, la.depth+1
			} else if rt, ok := roots[r]; ok && t-rt.Start <= window {
				// Another root send of the same flood's initial fan-out.
				tree = rt
			} else {
				tree = &floodTree{Origin: r, Start: t, End: t, seen: map[graph.NodeID]bool{r: true}}
				rep.Trees = append(rep.Trees, tree)
				roots[r] = tree
			}
			tree.Sends++
			if t > tree.End {
				tree.End = t
			}
			key := [2]graph.NodeID{r, to}
			queues[key] = append(queues[key], pendingSend{tree: tree, depth: depth, t: t})
		case telemetry.KindLSURecv:
			r, from, t := ev.Router, ev.Peer, ev.T
			key := [2]graph.NodeID{from, r}
			q := queues[key]
			if len(q) == 0 {
				rep.OrphanRecvs++
				continue
			}
			s := q[0]
			queues[key] = q[1:]
			tree := s.tree
			tree.Arrivals++
			tree.Hops = append(tree.Hops, floodHop{From: from, To: r, SendT: s.t, RecvT: t, Depth: s.depth})
			if t > tree.End {
				tree.End = t
			}
			if s.depth > tree.MaxDepth {
				tree.MaxDepth = s.depth
			}
			if tree.seen[r] {
				tree.Dups++
			} else {
				tree.seen[r] = true
				tree.Reached++
			}
			last[r] = lastArrival{t: t, tree: tree, depth: s.depth}
		}
	}
	for _, q := range queues { //lint:maporder-ok summing queue lengths commutes
		rep.UnmatchedSends += len(q)
	}
	return rep
}

// renderFlood prints the report: one line per tree in start-time order
// (the construction order), optionally followed by the per-hop detail.
func renderFlood(rep floodReport, hops bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d flood trees, %d orphan arrivals, %d unmatched sends\n",
		len(rep.Trees), rep.OrphanRecvs, rep.UnmatchedSends)
	for i, tr := range rep.Trees {
		fmt.Fprintf(&b, "tree %d: origin %d t=[%.6f,%.6f] sends=%d arrivals=%d dups=%d reached=%d depth=%d\n",
			i, tr.Origin, tr.Start, tr.End, tr.Sends, tr.Arrivals, tr.Dups, tr.Reached, tr.MaxDepth)
		if !hops {
			continue
		}
		for _, h := range tr.Hops {
			fmt.Fprintf(&b, "  d%d %d->%d send=%.6f recv=%.6f lat=%.6f\n",
				h.Depth, h.From, h.To, h.SendT, h.RecvT, h.RecvT-h.SendT)
		}
	}
	return b.String()
}
