package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"minroute/internal/node"
)

// TestMain lets the test binary stand in for the mdrnode executable: when
// re-exec'd with MDRNODE_CHILD=1 it runs main() instead of the tests, so
// the two-process smoke test needs no separately built binary.
func TestMain(m *testing.M) {
	if os.Getenv("MDRNODE_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// child starts this test binary as an mdrnode process with the given
// flags, wiring stderr through for diagnosis.
func child(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MDRNODE_CHILD=1")
	cmd.Stderr = os.Stderr
	return cmd
}

// decodeNodeOutput scans a node-mode child's stdout for the JSON document
// (skipping the LISTEN line) and decodes it.
func decodeNodeOutput(t *testing.T, raw []byte) output {
	t.Helper()
	s := string(raw)
	if i := strings.Index(s, "{"); i >= 0 {
		s = s[i:]
	}
	var out output
	if err := json.Unmarshal([]byte(s), &out); err != nil {
		t.Fatalf("bad child JSON: %v\nstdout:\n%s", err, raw)
	}
	return out
}

// wantDest asserts one destination row of a router state.
func wantDest(t *testing.T, st node.State, dst int, dist float64, succ []int) {
	t.Helper()
	for _, d := range st.Dests {
		if int(d.Dst) != dst {
			continue
		}
		if d.Dist != dist {
			t.Errorf("router %d: dist to %d = %g, want %g", st.ID, dst, d.Dist, dist)
		}
		if len(d.Successors) != len(succ) {
			t.Errorf("router %d: successors to %d = %v, want %v", st.ID, dst, d.Successors, succ)
			return
		}
		for i, s := range succ {
			if int(d.Successors[i]) != s {
				t.Errorf("router %d: successors to %d = %v, want %v", st.ID, dst, d.Successors, succ)
			}
		}
		return
	}
	t.Errorf("router %d: no state for destination %d", st.ID, dst)
}

// TestTwoProcessTCP is the live smoke test from the issue: two mdrnode OS
// processes peer over localhost TCP, converge, and report mirror-image
// routing state. The listener binds port 0; the test scrapes the LISTEN
// line to point the dialer at it.
func TestTwoProcessTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes; not a -short test")
	}

	listener := child(t, "-node", "0", "-nodes", "2",
		"-listen", "127.0.0.1:0", "-await-peers", "1", "-cost", "2.5",
		"-timeout", "30")
	lout, err := listener.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := listener.Start(); err != nil {
		t.Fatal(err)
	}
	defer listener.Process.Kill()

	// First stdout line is "LISTEN <addr>" with the kernel-chosen port.
	r := bufio.NewReader(lout)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading LISTEN line: %v", err)
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "LISTEN ")
	if !ok {
		t.Fatalf("expected LISTEN line, got %q", line)
	}

	dialer := child(t, "-node", "1", "-nodes", "2",
		"-peer", "0@"+addr+"@2.5", "-timeout", "30")
	dialerOut, err := dialer.Output()
	if err != nil {
		t.Fatalf("dialer process: %v", err)
	}

	var listenerRaw strings.Builder
	if _, err := r.WriteTo(&listenerRaw); err != nil {
		t.Fatal(err)
	}
	if err := listener.Wait(); err != nil {
		t.Fatalf("listener process: %v", err)
	}

	st0 := decodeNodeOutput(t, []byte(listenerRaw.String()))
	st1 := decodeNodeOutput(t, dialerOut)
	if len(st0.Routers) != 1 || len(st1.Routers) != 1 {
		t.Fatalf("want one router per process, got %d and %d", len(st0.Routers), len(st1.Routers))
	}
	r0, r1 := st0.Routers[0], st1.Routers[0]
	if int(r0.ID) != 0 || int(r1.ID) != 1 {
		t.Fatalf("router IDs: got %d and %d, want 0 and 1", r0.ID, r1.ID)
	}
	wantDest(t, r0, 0, 0, nil)
	wantDest(t, r0, 1, 2.5, []int{1})
	wantDest(t, r1, 1, 0, nil)
	wantDest(t, r1, 0, 2.5, []int{0})
}

// TestMeshModeObservability runs mesh mode with the observability plane
// on: the child prints one scrapable OBS line per node and writes the
// manifest, and the endpoints answer while the converged mesh lingers.
func TestMeshModeObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns an OS process; not a -short test")
	}
	manifest := filepath.Join(t.TempDir(), "obs.txt")
	cmd := child(t, "-topo", "ring:3", "-fabric", "inmem", "-timeout", "30",
		"-http", "127.0.0.1:0", "-obs-manifest", manifest, "-linger", "5")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first three stdout lines are "OBS <url>", printed before
	// convergence begins.
	r := bufio.NewReader(stdout)
	var urls []string
	for len(urls) < 3 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading OBS lines: %v", err)
		}
		u, ok := strings.CutPrefix(strings.TrimSpace(line), "OBS ")
		if !ok {
			t.Fatalf("expected OBS line, got %q", line)
		}
		urls = append(urls, u)
	}

	// The manifest mirrors the OBS lines.
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	if got := strings.Fields(string(raw)); len(got) != 3 || got[0] != urls[0] {
		t.Fatalf("manifest = %q, want the OBS urls %v", raw, urls)
	}

	// Scrape the live child: /healthz answers on every node while the
	// mesh converges and lingers.
	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer c.CloseIdleConnections()
	for _, u := range urls {
		resp, err := c.Get(u + "/healthz")
		if err != nil {
			t.Fatalf("GET %s/healthz: %v", u, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s/healthz: status %d", u, resp.StatusCode)
		}
	}

	var rest strings.Builder
	if _, err := r.WriteTo(&rest); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("mesh process: %v", err)
	}
	out := decodeNodeOutput(t, []byte(rest.String()))
	if out.Mode != "mesh" || len(out.Routers) != 3 {
		t.Fatalf("unexpected mesh output: mode=%q routers=%d", out.Mode, len(out.Routers))
	}
}

// TestMeshModeJSON runs mesh mode in a child process and sanity-checks
// the document shape.
func TestMeshModeJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns an OS process; not a -short test")
	}
	raw, err := child(t, "-topo", "ring:4", "-fabric", "inmem", "-timeout", "30").Output()
	if err != nil {
		t.Fatalf("mesh process: %v", err)
	}
	var out output
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad mesh JSON: %v\nstdout:\n%s", err, raw)
	}
	if out.Mode != "mesh" || out.Topo != "ring:4" || len(out.Routers) != 4 || out.Hash == "" {
		t.Fatalf("unexpected mesh output: mode=%q topo=%q routers=%d hash=%q",
			out.Mode, out.Topo, len(out.Routers), out.Hash)
	}
}

// TestMeshModeDataplaneTraffic is the CI gate in miniature: a UDP NET1
// mesh with 10% control-plane loss converges, carries CBR traffic on its
// live data plane, and must deliver >= 99% with zero forwarding loops.
// The obs manifest gains a second column with each node's data-port
// address, and /flows answers while the run is live.
func TestMeshModeDataplaneTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns an OS process; not a -short test")
	}
	manifest := filepath.Join(t.TempDir(), "obs.txt")
	cmd := child(t, "-topo", "net1", "-fabric", "udp", "-loss", "0.1", "-dup", "0.1",
		"-dataplane", "-traffic", "cbr", "-traffic-rate", "1e6", "-traffic-secs", "0.5",
		"-min-deliv", "99", "-timeout", "60", "-linger", "0",
		"-http", "127.0.0.1:0", "-obs-manifest", manifest)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	r := bufio.NewReader(stdout)
	var urls []string
	for len(urls) < 10 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading OBS lines: %v", err)
		}
		u, ok := strings.CutPrefix(strings.TrimSpace(line), "OBS ")
		if !ok {
			t.Fatalf("expected OBS line, got %q", line)
		}
		urls = append(urls, u)
	}

	// Manifest: one "<url> <data-addr>" line per node.
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 10 {
		t.Fatalf("manifest has %d lines, want 10:\n%s", len(lines), raw)
	}
	for _, l := range lines {
		cols := strings.Fields(l)
		if len(cols) != 2 || !strings.HasPrefix(cols[0], "http://") || !strings.Contains(cols[1], ":") {
			t.Fatalf("manifest line %q: want \"<url> <host:port>\"", l)
		}
	}

	// /flows answers (with an empty snapshot this early) on a node with
	// a data plane.
	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer c.CloseIdleConnections()
	resp, err := c.Get(urls[0] + "/flows")
	if err != nil {
		t.Fatalf("GET /flows: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /flows: status %d", resp.StatusCode)
	}

	var rest strings.Builder
	if _, err := r.WriteTo(&rest); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("mesh process failed its gates: %v", err)
	}
	out := decodeNodeOutput(t, []byte(rest.String()))
	if out.Traffic == nil || out.Drops == nil {
		t.Fatalf("mesh output missing traffic/drops sections:\n%s", rest.String())
	}
	if out.Traffic.DelivPct < 99 {
		t.Fatalf("delivery %.2f%%, want >= 99%%", out.Traffic.DelivPct)
	}
	if out.Drops.Looped != 0 || out.Drops.TTLExpired != 0 {
		t.Fatalf("forwarding drops: %+v", out.Drops)
	}
	if len(out.Traffic.Commodities) != 10 {
		t.Fatalf("traffic report covers %d commodities, want 10", len(out.Traffic.Commodities))
	}
}
