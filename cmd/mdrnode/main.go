// mdrnode runs live MPDA routers over real transports and dumps the
// converged routing state as JSON.
//
// Mesh mode hosts a full topology in one process, one live node per
// router, peered over the chosen fabric:
//
//	mdrnode -topo net1 -fabric udp -loss 0.2 -dup 0.2 -reorder 0.2
//	mdrnode -topo cairn -fabric tcp -telemetry out/
//
// Node mode hosts a single router that peers with other OS processes
// over localhost (or LAN) TCP:
//
//	mdrnode -node 0 -nodes 2 -listen 127.0.0.1:9000 -await-peers 1
//	mdrnode -node 1 -nodes 2 -peer 0@127.0.0.1:9000@2.5
//
// In node mode the process prints "LISTEN <addr>" once its listener is
// bound (so a port of :0 can be scraped by a harness), converges, prints
// its state JSON, sends BYE to its peers, and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"minroute/internal/graph"
	"minroute/internal/node"
	"minroute/internal/telemetry"
	"minroute/internal/topo"
	"minroute/internal/transport"
)

// pollEvery is the convergence-poll period. Deadlines are counted in
// polls, not wall timestamps, so the binary stays off time.Now (see the
// nowall lint check).
const pollEvery = 10 * time.Millisecond

// stablePolls is how many consecutive identical-state polls declare
// convergence.
const stablePolls = 25

func main() {
	var (
		topoName     = flag.String("topo", "", "mesh mode: topology (cairn, net1, ring:<n>)")
		fabric       = flag.String("fabric", "inmem", "mesh mode: transport fabric (inmem, tcp, udp)")
		loss         = flag.Float64("loss", 0, "mesh mode, udp fabric: per-datagram loss probability")
		dup          = flag.Float64("dup", 0, "mesh mode, udp fabric: per-datagram duplication probability")
		reorder      = flag.Float64("reorder", 0, "mesh mode, udp fabric: per-datagram reorder probability")
		seed         = flag.Uint64("seed", 1, "fault-injection seed")
		nodeID       = flag.Int("node", -1, "node mode: this router's ID")
		nodes        = flag.Int("nodes", 0, "node mode: ID-space size")
		listen       = flag.String("listen", "", "node mode: TCP listen address for inbound peers")
		cost         = flag.Float64("cost", 1, "node mode: link cost for accepted peers")
		await        = flag.Int("await-peers", -1, "node mode: sessions to wait for (default: number of -peer flags)")
		timeout      = flag.Float64("timeout", 60, "give up after this many seconds")
		linger       = flag.Float64("linger", 2, "keep the converged process alive this many seconds (node mode: so slower peers finish; mesh mode: so a watcher can scrape)")
		httpAddr     = flag.String("http", "", "serve per-node observability HTTP on this address (mesh mode requires port :0 — one listener per node)")
		obsManifest  = flag.String("obs-manifest", "", "write the observability base URLs to this file, one per line, as soon as the servers are up")
		telemetryDir = flag.String("telemetry", "", "export telemetry artifacts into this directory")
		hb           = flag.Float64("heartbeat", 0.25, "session heartbeat period, seconds")
		dead         = flag.Float64("dead-after", 5, "declare a silent peer down after this many seconds")

		dataplane  = flag.Bool("dataplane", false, "mesh mode: give every node a live UDP data plane fed by its phi tables")
		dataLoss   = flag.Float64("data-loss", 0, "mesh mode: per-datagram loss probability on the data plane (requires -dataplane)")
		dataDup    = flag.Float64("data-dup", 0, "mesh mode: per-datagram duplication probability on the data plane")
		traffic    = flag.String("traffic", "", "mesh mode: drive the topology's flows through the data plane with this model (cbr, poisson, onoff, adversary)")
		trafSecs   = flag.Float64("traffic-secs", 1, "mesh mode: traffic run length, seconds")
		trafRate   = flag.Float64("traffic-rate", 0, "mesh mode: override every commodity's rate, bits/s (0 keeps the topology's rates)")
		subflows   = flag.Int("subflows", 16, "mesh mode: sticky subflows per commodity")
		packetBits = flag.Float64("packet-bits", 8192, "mesh mode: data packet size, bits")
		minDeliv   = flag.Float64("min-deliv", -1, "mesh mode: fail unless at least this percentage of offered packets is delivered")
	)
	var peerFlags peerList
	flag.Var(&peerFlags, "peer", "node mode: peer as <id>@<host:port>@<cost>; repeatable")
	flag.Parse()

	var err error
	switch {
	case *topoName != "" && *nodeID >= 0:
		err = fmt.Errorf("-topo (mesh mode) and -node (node mode) are mutually exclusive")
	case *topoName != "":
		dp := dataOpts{
			enabled:  *dataplane,
			loss:     *dataLoss,
			dup:      *dataDup,
			model:    *traffic,
			secs:     *trafSecs,
			rate:     *trafRate,
			subflows: *subflows,
			bits:     *packetBits,
			minDeliv: *minDeliv,
		}
		err = runMesh(*topoName, *fabric, *loss, *dup, *reorder, *seed, *timeout, *linger, *hb, *dead, *telemetryDir, *httpAddr, *obsManifest, dp)
	case *nodeID >= 0:
		err = runNode(*nodeID, *nodes, *listen, *cost, *await, *timeout, *linger, *hb, *dead, *telemetryDir, *httpAddr, *obsManifest, peerFlags)
	default:
		err = fmt.Errorf("pick a mode: -topo <name> (mesh) or -node <id> (single node); see -help")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdrnode: %v\n", err)
		os.Exit(1)
	}
}

// peerSpec is one parsed -peer flag.
type peerSpec struct {
	id   graph.NodeID
	addr string
	cost float64
}

type peerList []peerSpec

func (p *peerList) String() string { return fmt.Sprintf("%d peers", len(*p)) }

func (p *peerList) Set(s string) error {
	parts := strings.Split(s, "@")
	if len(parts) != 3 {
		return fmt.Errorf("peer %q: want <id>@<host:port>@<cost>", s)
	}
	id, err := strconv.Atoi(parts[0])
	if err != nil || id < 0 {
		return fmt.Errorf("peer %q: bad id", s)
	}
	c, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || c <= 0 {
		return fmt.Errorf("peer %q: bad cost", s)
	}
	*p = append(*p, peerSpec{id: graph.NodeID(id), addr: parts[1], cost: c})
	return nil
}

// output is the JSON document both modes print.
type output struct {
	Mode    string              `json:"mode"`
	Topo    string              `json:"topo,omitempty"`
	Fabric  string              `json:"fabric,omitempty"`
	Hash    string              `json:"hash"`
	Routers []node.State        `json:"routers"`
	Traffic *node.TrafficReport `json:"traffic,omitempty"`
	Drops   *dataDrops          `json:"data_drops,omitempty"`
}

// dataDrops aggregates the mesh's forwarding-drop counters — the live
// loop-freedom evidence next to the lfi audit.
type dataDrops struct {
	Looped     float64 `json:"looped"`
	TTLExpired float64 `json:"ttl_expired"`
}

// dataOpts carries the mesh-mode data-plane and traffic flags.
type dataOpts struct {
	enabled    bool
	loss, dup  float64
	model      string
	secs, rate float64
	subflows   int
	bits       float64
	minDeliv   float64
}

// resolveTopo maps a -topo value to its network (graph plus any traffic
// matrix the topology defines).
func resolveTopo(name string) (*topo.Network, error) {
	switch {
	case name == "cairn":
		return topo.CAIRN(), nil
	case name == "net1":
		return topo.NET1(), nil
	case strings.HasPrefix(name, "ring:"):
		n, err := strconv.Atoi(name[len("ring:"):])
		if err != nil || n < 3 {
			return nil, fmt.Errorf("bad ring size in %q", name)
		}
		return &topo.Network{Graph: topo.Ring(n, 1.5*topo.Mb, 0.01)}, nil
	}
	return nil, fmt.Errorf("unknown topology %q (want cairn, net1, or ring:<n>)", name)
}

// protoCost is the shared live/sim cost model: propagation delay plus a
// small hop bias (the internal/chaos idiom).
func protoCost(l *graph.Link) float64 { return l.PropDelay + 1e-4 }

// newCapture builds the telemetry capture and its Trace front when an
// export directory was requested.
func newCapture(dir string, numRouters int) (*telemetry.Capture, *node.Trace, error) {
	if dir == "" {
		return nil, nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	capt := telemetry.NewCapture(numRouters)
	return capt, node.NewTrace(capt.Trace), nil
}

// runMesh hosts the whole topology in-process and prints the converged
// state of every router.
func runMesh(topoName, fabric string, loss, dup, reorder float64, seed uint64, timeout, linger, hb, dead float64, telemetryDir, httpAddr, obsManifest string, dp dataOpts) error {
	net, err := resolveTopo(topoName)
	if err != nil {
		return err
	}
	g := net.Graph
	if dp.model != "" && !dp.enabled {
		return fmt.Errorf("-traffic requires -dataplane")
	}
	if (dp.loss > 0 || dp.dup > 0) && !dp.enabled {
		return fmt.Errorf("-data-loss/-data-dup require -dataplane")
	}
	capt, trace, err := newCapture(telemetryDir, g.NumNodes())
	if err != nil {
		return err
	}
	mc := node.MeshConfig{
		Fabric:         node.Fabric(fabric),
		Clock:          node.NewWallClock(),
		CostOf:         protoCost,
		Fault:          transport.Fault{Seed: seed, LossProb: loss, DupProb: dup, ReorderProb: reorder},
		ARQ:            transport.ARQConfig{RTO: 0.01, MaxRTO: 0.2},
		HeartbeatEvery: hb, DeadAfter: dead,
		Trace:     trace,
		ObsAddr:   httpAddr,
		Data:      dp.enabled,
		DataFault: transport.Fault{Seed: seed + 1, LossProb: dp.loss, DupProb: dp.dup},
	}
	if capt != nil {
		mc.Metrics = capt.Metrics
	}
	m, err := node.NewMesh(g, mc)
	if err != nil {
		return err
	}
	defer m.Close()
	// Publish the observability endpoints before convergence: a watcher
	// wants to follow the mesh turning ready, not just confirm it after
	// the fact. With the data plane up, each manifest line carries the
	// node's data-port address in a second column.
	var dataAddrs []string
	if dp.enabled {
		for _, n := range m.Nodes {
			dataAddrs = append(dataAddrs, n.DataPlane().LocalAddr())
		}
	}
	if err := announceObs(m.ObsURLs(), dataAddrs, obsManifest); err != nil {
		return err
	}
	maxPolls := int(timeout / pollEvery.Seconds())
	if err := m.AwaitConverged(stablePolls, maxPolls, func() { time.Sleep(pollEvery) }); err != nil {
		return err
	}
	out := output{Mode: "mesh", Topo: topoName, Fabric: fabric, Hash: m.Hash()}
	for _, n := range m.Nodes {
		out.Routers = append(out.Routers, n.State())
	}
	if dp.enabled {
		// The loop-freedom oracle audits the converged successor graph;
		// the per-forwarder counters below are its runtime shadow.
		if err := m.CheckLoopFree(); err != nil {
			return fmt.Errorf("loop-freedom audit: %w", err)
		}
	}
	if dp.model != "" {
		rep, err := runMeshTraffic(m, net, dp)
		if err != nil {
			return err
		}
		out.Traffic = rep
	}
	if dp.enabled {
		var drops dataDrops
		for _, n := range m.Nodes {
			s := n.DataPlane().Snapshot()
			drops.Looped += s.Looped
			drops.TTLExpired += s.TTLExpired
		}
		out.Drops = &drops
	}
	if err := printJSON(out); err != nil {
		return err
	}
	// Gates run after the report prints, so a failing run still leaves
	// its evidence on stdout for the harness to archive.
	if out.Drops != nil && (out.Drops.Looped > 0 || out.Drops.TTLExpired > 0) {
		return fmt.Errorf("forwarding drops: %g looped, %g ttl-expired packets", out.Drops.Looped, out.Drops.TTLExpired)
	}
	if out.Traffic != nil && dp.minDeliv >= 0 && out.Traffic.DelivPct < dp.minDeliv {
		return fmt.Errorf("delivery %.2f%% (%d/%d) below the -min-deliv %.2f%% gate",
			out.Traffic.DelivPct, out.Traffic.Delivered, out.Traffic.Offered, dp.minDeliv)
	}
	// Linger with the mesh alive when observability is on: readiness
	// streaks fill a few polls after convergence, and an external watcher
	// needs live endpoints to scrape. Counted in polls, like every other
	// deadline here.
	if httpAddr != "" {
		for poll := 0; poll < int(linger/pollEvery.Seconds()); poll++ {
			time.Sleep(pollEvery)
		}
	}
	// Tear the mesh down before exporting: ARQ retransmit timers keep
	// emitting telemetry for as long as the mesh is up, and the exporter
	// reads the tracer unsynchronized (Close is idempotent, so the defer
	// above is harmless).
	m.Close()
	return exportCapture(capt, telemetryDir, "mdrnode_mesh")
}

// runMeshTraffic replays the topology's traffic matrix through the live
// data plane for the configured run length and reports delivery.
func runMeshTraffic(m *node.Mesh, net *topo.Network, dp dataOpts) (*node.TrafficReport, error) {
	flows := append([]topo.Flow(nil), net.Flows...)
	if len(flows) == 0 {
		return nil, fmt.Errorf("-traffic: topology defines no flows")
	}
	if dp.rate > 0 {
		for i := range flows {
			flows[i].Rate = dp.rate
		}
	}
	gen, err := node.NewTrafficGen(m, node.TrafficConfig{
		Model:      node.TrafficModel(dp.model),
		Flows:      flows,
		Subflows:   dp.subflows,
		PacketBits: dp.bits,
		Seed:       1,
	})
	if err != nil {
		return nil, err
	}
	gen.Start()
	for poll := 0; poll < int(dp.secs/pollEvery.Seconds()); poll++ {
		time.Sleep(pollEvery)
	}
	gen.Stop()
	// Drain in-flight packets before reading the sinks.
	for poll := 0; poll < 10; poll++ {
		time.Sleep(pollEvery)
	}
	rep := gen.Report()
	return &rep, nil
}

// announceObs writes the manifest file and prints one "OBS <url>" line
// per node (harness-scrapable, like the LISTEN line). The file is
// written first so a harness that saw an OBS line can rely on the
// manifest already being on disk. With a live data plane, each manifest
// line is "<url> <data-addr>"; consumers split on whitespace and take
// the first column for the observability URL.
func announceObs(urls, dataAddrs []string, manifest string) error {
	lines := append([]string(nil), urls...)
	if len(dataAddrs) == len(lines) {
		for i, a := range dataAddrs {
			lines[i] += " " + a
		}
	}
	if manifest != "" {
		if len(lines) == 0 {
			return fmt.Errorf("-obs-manifest needs -http")
		}
		if err := os.WriteFile(manifest, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			return err
		}
	}
	for _, u := range urls {
		fmt.Printf("OBS %s\n", u)
	}
	return nil
}

// runNode hosts a single live router peering over TCP with other
// processes.
func runNode(id, nodes int, listen string, acceptCost float64, await int, timeout, linger, hb, dead float64, telemetryDir, httpAddr, obsManifest string, peers peerList) error {
	if nodes <= 1 {
		return fmt.Errorf("-nodes must cover the whole ID space (got %d)", nodes)
	}
	if await < 0 {
		await = len(peers)
	}
	if await <= 0 {
		return fmt.Errorf("node mode needs -peer flags or a positive -await-peers")
	}
	capt, trace, err := newCapture(telemetryDir, nodes)
	if err != nil {
		return err
	}
	cfg := node.Config{
		ID: graph.NodeID(id), Nodes: nodes, Clock: node.NewWallClock(),
		HeartbeatEvery: hb, DeadAfter: dead, Trace: trace,
	}
	if httpAddr != "" {
		cfg.Metrics = telemetry.NewRegistry(0)
		cfg.ObsAddr = httpAddr
		cfg.ExpectPeers = await
	}
	n, err := node.New(cfg)
	if err != nil {
		return err
	}
	defer n.Close()
	if httpAddr != "" {
		if err := announceObs([]string{n.ObsURL()}, nil, obsManifest); err != nil {
			return err
		}
	}

	if listen != "" {
		l, err := transport.ListenTCP(listen)
		if err != nil {
			return err
		}
		defer l.Close()
		// Scrapable by a harness that started us with port :0.
		fmt.Printf("LISTEN %s\n", l.Addr())
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				n.AddPeer(c, func(graph.NodeID) (float64, bool) { return acceptCost, true })
			}
		}()
	}
	for _, p := range peers {
		c, err := transport.DialTCP(p.addr)
		if err != nil {
			return fmt.Errorf("dial peer %d: %w", p.id, err)
		}
		want, wantCost := p.id, p.cost
		n.AddPeer(c, func(got graph.NodeID) (float64, bool) { return wantCost, got == want })
	}

	// Converge: enough peers, PASSIVE, drained windows, stable state.
	maxPolls := int(timeout / pollEvery.Seconds())
	stable, prev := 0, ""
	for poll := 0; ; poll++ {
		if poll >= maxPolls {
			return fmt.Errorf("node %d did not converge within %gs", id, timeout)
		}
		if n.PeerCount() >= await && n.Passive() && n.Outstanding() == 0 {
			if s := n.Summary(); s == prev {
				stable++
			} else {
				stable, prev = 1, s
			}
			if stable >= stablePolls {
				break
			}
		} else {
			stable, prev = 0, ""
		}
		time.Sleep(pollEvery)
	}

	out := output{Mode: "node", Hash: node.HashState(n.Summary()), Routers: []node.State{n.State()}}
	if err := printJSON(out); err != nil {
		return err
	}
	if err := exportCapture(capt, telemetryDir, fmt.Sprintf("mdrnode_%d", id)); err != nil {
		return err
	}
	// Linger before the deferred Close sends BYE: peers poll for stability
	// on their own schedule, and tearing the session down the instant we
	// converge would yank the link out from under a peer a few polls
	// behind us. A peer that closes first drops our session; once they are
	// all gone there is nobody left to wait for.
	for poll := 0; poll < int(linger/pollEvery.Seconds()); poll++ {
		if n.PeerCount() == 0 {
			break
		}
		time.Sleep(pollEvery)
	}
	return nil
}

func printJSON(out output) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func exportCapture(capt *telemetry.Capture, dir, prefix string) error {
	if capt == nil {
		return nil
	}
	return capt.Export(dir, prefix)
}
