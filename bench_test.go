// Package minroute_test holds the benchmark harness: one benchmark per
// table/figure of the paper's evaluation. Each benchmark regenerates its
// figure end-to-end (OPT solve where applicable, packet simulations for
// every scheme) and reports the per-scheme mean delays as benchmark
// metrics, so `go test -bench` output carries the reproduced numbers.
//
// Benchmarks use experiments.Quick; run cmd/mdrsim -full for paper-quality
// settings.
package minroute_test

import (
	"testing"

	"minroute/internal/experiments"
	"minroute/internal/gallager"
	"minroute/internal/report"
	"minroute/internal/topo"
)

// benchFigure runs one figure generator b.N times, reporting each column's
// mean delay (ms) as a named metric and logging the full table once.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	gen := experiments.All[id]
	if gen == nil {
		b.Fatalf("unknown figure %s", id)
	}
	var fig *report.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = gen(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for c, col := range fig.Columns {
		b.ReportMetric(fig.ColumnMean(c), "ms_"+sanitize(col))
	}
	b.Log("\n" + fig.Table())
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig09_CAIRN_OPTvsMP regenerates Fig. 9: per-flow delays of OPT
// and MP-TL-10-TS-2 in CAIRN (paper: MP within the OPT+5% envelope).
func BenchmarkFig09_CAIRN_OPTvsMP(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10_NET1_OPTvsMP regenerates Fig. 10: OPT vs MP in NET1
// (paper: MP within the OPT+8% envelope).
func BenchmarkFig10_NET1_OPTvsMP(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11_CAIRN_MPvsSP regenerates Fig. 11: OPT, MP-TL-10-TS-10,
// MP-TL-10-TS-2 and SP-TL-10 in CAIRN (paper: SP 2-4x MP on some flows).
func BenchmarkFig11_CAIRN_MPvsSP(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkFig12_NET1_MPvsSP regenerates Fig. 12: the same comparison in
// NET1 (paper: SP up to 5-6x MP thanks to NET1's higher connectivity).
func BenchmarkFig12_NET1_MPvsSP(b *testing.B) { benchFigure(b, "fig12") }

// BenchmarkFig13_CAIRN_TlSweep regenerates Fig. 13: the effect of raising
// Tl from 10 to 20 seconds in CAIRN (paper: SP delays more than double,
// MP stays put).
func BenchmarkFig13_CAIRN_TlSweep(b *testing.B) { benchFigure(b, "fig13") }

// BenchmarkFig14_NET1_TlSweep regenerates Fig. 14: the Tl sweep in NET1.
func BenchmarkFig14_NET1_TlSweep(b *testing.B) { benchFigure(b, "fig14") }

// BenchmarkFig14_Telemetry regenerates Fig. 14 with full telemetry capture
// and artifact export enabled for every simulation — the enabled-path
// counterpart of BenchmarkFig14_NET1_TlSweep. The delta between the two is
// the telemetry layer's end-to-end overhead; see BENCH_telemetry.json.
func BenchmarkFig14_Telemetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := experiments.Quick
		set.TelemetryDir = b.TempDir()
		if _, err := experiments.Fig14(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15_CAIRN_Dynamic regenerates the reconstructed dynamic
// (bursty on-off traffic) experiment on CAIRN.
func BenchmarkFig15_CAIRN_Dynamic(b *testing.B) { benchFigure(b, "fig15") }

// BenchmarkFig16_NET1_Dynamic regenerates the reconstructed dynamic
// experiment on NET1.
func BenchmarkFig16_NET1_Dynamic(b *testing.B) { benchFigure(b, "fig16") }

// BenchmarkFig08_Topologies rebuilds the Fig. 8 topologies and reports
// their structural statistics (nodes, directed links, diameter).
func BenchmarkFig08_Topologies(b *testing.B) {
	var cairn, net1 *topo.Network
	for i := 0; i < b.N; i++ {
		cairn = topo.CAIRN()
		net1 = topo.NET1()
	}
	b.ReportMetric(float64(cairn.Graph.NumNodes()), "cairn_nodes")
	b.ReportMetric(float64(cairn.Graph.NumLinks()), "cairn_links")
	b.ReportMetric(float64(cairn.Graph.Diameter()), "cairn_diam")
	b.ReportMetric(float64(net1.Graph.NumNodes()), "net1_nodes")
	b.ReportMetric(float64(net1.Graph.Diameter()), "net1_diam")
}

// BenchmarkOPTSolver measures the Gallager iteration alone (the fluid-model
// lower-bound solve used by Figs. 9-12).
func BenchmarkOPTSolver(b *testing.B) {
	net := topo.CAIRN()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gallager.Solve(net.Graph, net.Flows, gallager.Options{MeanPacketBits: 8000}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices DESIGN.md §6 calls out) ---

// BenchmarkAblationAH compares the damped AH rule (production default)
// against the literal Fig. 7 rule and no AH at all.
func BenchmarkAblationAH(b *testing.B) { benchFigure(b, "abl-ah") }

// BenchmarkAblationBaselines measures the full baseline spectrum on NET1:
// OPT, MP, OSPF-style ECMP, SP.
func BenchmarkAblationBaselines(b *testing.B) { benchFigure(b, "abl-base") }

// BenchmarkAblationEstimator compares the closed-form M/M/1 marginal with
// the online (perturbation-analysis-role) estimator.
func BenchmarkAblationEstimator(b *testing.B) { benchFigure(b, "abl-est") }

// BenchmarkLoadSweep traces the MP-vs-SP gap across offered-load scales
// (the paper: no advantage at light load, large gaps under heavy load).
func BenchmarkLoadSweep(b *testing.B) { benchFigure(b, "loadsweep") }

// BenchmarkConnectivitySweep traces the MP-vs-SP gap as topology richness
// grows (paper: MP needs alternate paths to win; at tree connectivity the
// schemes coincide).
func BenchmarkConnectivitySweep(b *testing.B) { benchFigure(b, "connsweep") }

// BenchmarkFailover measures the bridge failure/recovery timeline on NET1
// for MP and SP.
func BenchmarkFailover(b *testing.B) { benchFigure(b, "failover") }

// BenchmarkJitter compares per-flow delay standard deviation between MP
// and SP (paper: MP's plots are "less jagged").
func BenchmarkJitter(b *testing.B) { benchFigure(b, "jitter") }

// BenchmarkAblationAdaptive compares static against congestion-adaptive
// Ts/Tl timers under bursty sources (a paper-suggested extension).
func BenchmarkAblationAdaptive(b *testing.B) { benchFigure(b, "abl-adapt") }

// BenchmarkOverhead traces MP's delay against its control bandwidth across
// Tl (paper: longer Tl saves update bandwidth at negligible delay cost).
func BenchmarkOverhead(b *testing.B) { benchFigure(b, "overhead") }
