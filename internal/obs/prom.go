package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"minroute/internal/telemetry"
)

// Prometheus text exposition (version 0.0.4) of a telemetry registry.
//
// Mangling rules, applied to the registry's dotted names:
//
//   - dots (and any other character outside [a-zA-Z0-9_:]) become '_',
//     and every family gets the module prefix: "control.msgs" →
//     "mdr_control_msgs".
//   - a trailing ".<a>-<b>" directed-link segment is lifted into a
//     link="<a>-<b>" label instead of exploding the family per link:
//     "arq.retransmits.0-1" → mdr_arq_retransmits_total{link="0-1"}.
//   - counters get the conventional "_total" suffix.
//   - histograms expose their all-time summary as three series:
//     <fam>_count and <fam>_sum (counters) and <fam>_max (a gauge).
//     The per-window time buckets are a simulation-side artifact
//     (windows of sim time, not value-domain buckets) and stay in the
//     plain-text snapshot.
//
// Families render contiguously with one # TYPE header each; Gather's
// stable ordering makes the whole page deterministic for a given set of
// instrument values, which the scrape-latency benchmark relies on.

// linkSuffix matches a trailing ".<a>-<b>" directed-link name segment.
var linkSuffix = regexp.MustCompile(`\.([0-9]+-[0-9]+)$`)

// WritePrometheus renders gathered metrics in Prometheus text format.
// constLabels are attached to every series.
func WritePrometheus(w io.Writer, ms []telemetry.Metric, constLabels map[string]string) error {
	lastHeader := ""
	for _, m := range ms {
		name, labels := splitLink(m.Name)
		switch m.Inst {
		case telemetry.InstCounter:
			fam := name + "_total"
			if err := writeHeader(w, &lastHeader, fam, "counter"); err != nil {
				return err
			}
			if err := writeSample(w, fam, labels, constLabels, m.Value); err != nil {
				return err
			}
		case telemetry.InstGauge:
			if err := writeHeader(w, &lastHeader, name, "gauge"); err != nil {
				return err
			}
			if err := writeSample(w, name, labels, constLabels, m.Value); err != nil {
				return err
			}
		case telemetry.InstHistogram:
			for _, part := range []struct {
				suffix, typ string
				value       float64
			}{
				{"_count", "counter", float64(m.Count)},
				{"_sum", "counter", m.Sum},
				{"_max", "gauge", m.Max},
			} {
				fam := name + part.suffix
				if err := writeHeader(w, &lastHeader, fam, part.typ); err != nil {
					return err
				}
				if err := writeSample(w, fam, labels, constLabels, part.value); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// splitLink mangles a registry name into its Prometheus family name and
// any link label lifted out of a trailing "<a>-<b>" segment.
func splitLink(name string) (string, map[string]string) {
	var labels map[string]string
	if m := linkSuffix.FindStringSubmatch(name); m != nil {
		labels = map[string]string{"link": m[1]}
		name = name[:len(name)-len(m[0])]
	}
	return "mdr_" + sanitizeName(name), labels
}

// sanitizeName maps every character outside the Prometheus metric-name
// alphabet to '_'.
func sanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeHeader emits the # TYPE line when the family changes. Families
// arrive contiguously because Gather sorts names within each instrument
// kind, so one string of last-seen state suffices.
func writeHeader(w io.Writer, last *string, fam, typ string) error {
	if *last == fam {
		return nil
	}
	*last = fam
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
	return err
}

// writeSample emits one series line with merged, key-sorted labels.
func writeSample(w io.Writer, fam string, labels, constLabels map[string]string, v float64) error {
	merged := make(map[string]string, len(labels)+len(constLabels))
	//lint:maporder-ok distinct-key inserts into a map commute
	for k, val := range constLabels {
		merged[k] = val
	}
	//lint:maporder-ok per-series labels override const labels key-by-key; inserts commute
	for k, val := range labels {
		merged[k] = val
	}
	var b strings.Builder
	b.WriteString(fam)
	if len(merged) > 0 {
		keys := make([]string, 0, len(merged))
		//lint:maporder-ok keys are collected and sorted before use
		for k := range merged {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(sanitizeName(k))
			b.WriteString(`="`)
			b.WriteString(escapeLabel(merged[k]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
