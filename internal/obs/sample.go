package obs

// Sample is one consistent snapshot of a node's live state, produced
// under the node's own lock. The obs package defines the types (rather
// than importing the node package) so the dependency points from the
// runtime to the observability plane, never back.
type Sample struct {
	// ID is the node's router ID.
	ID int
	// Passive reports the router's PASSIVE phase.
	Passive bool
	// Outstanding sums unacknowledged transport windows across peers.
	Outstanding int
	// MinPeers is how many peer sessions readiness requires (the node's
	// expected degree).
	MinPeers int
	// Peers are the live peer sessions in ascending ID order.
	Peers []Peer
	// Routes are the reachable destinations in ascending ID order.
	Routes []Route
	// Summary is the canonical routing-state rendering
	// (node.RouterSummary); readiness hashes it for stability.
	Summary string
	// Data is the data-plane snapshot (nil when the node runs without a
	// forwarder). It backs the /flows endpoint and the data.* metrics.
	Data *DataSample
}

// Eligible reports whether the sample satisfies the instantaneous part
// of the readiness condition — PASSIVE, fully peered, windows drained.
// Readiness additionally demands a stable state-hash streak across
// polls.
func (s Sample) Eligible() bool {
	return s.Passive && s.Outstanding == 0 && len(s.Peers) >= s.MinPeers
}

// Peer is one live peer session, including its ARQ instruments when the
// link runs over the reliable-UDP transport.
type Peer struct {
	ID   int     `json:"id"`
	Cost float64 `json:"cost"`
	// Outstanding is the peer link's unacknowledged send window.
	Outstanding int `json:"outstanding"`
	// RTO is the link's current retransmission timeout in seconds (0 on
	// transports without one).
	RTO float64 `json:"rto,omitempty"`
	// Retransmits and Window mirror the link's ARQ instruments
	// (arq.retransmits.<a>-<b> and arq.window.<a>-<b>); both are zero on
	// fabrics without ARQ.
	Retransmits float64 `json:"retransmits"`
	Window      float64 `json:"window"`
	// Queue is the writer-queue depth toward this peer: frames the router
	// has emitted that the writer goroutine has not yet handed to the
	// transport.
	Queue int `json:"queue"`
}

// Route is one destination row of the live phi table: the distance, the
// feasible distance FD_j (the loop-freedom invariant's anchor), the
// successor set, and the minimum-distance next hop. FD is -1 while not
// yet established (+Inf has no JSON encoding).
type Route struct {
	Dst  int     `json:"dst"`
	Dist float64 `json:"dist"`
	FD   float64 `json:"fd"`
	// Successors is S_j ascending; Best is the successor with the least
	// reported distance (the next hop a pure shortest-path forwarder
	// would take). -1 means none.
	Successors []int `json:"successors"`
	Best       int   `json:"best"`
}

// Health is the /healthz document: liveness only — the process is up and
// the node answered its state snapshot. Convergence lives in /readyz.
type Health struct {
	Status string  `json:"status"`
	ID     int     `json:"id"`
	Uptime float64 `json:"uptime_seconds"`
	Peers  int     `json:"peers"`
}

// Readiness is the /readyz document. Ready mirrors
// node.Mesh.AwaitConverged per node: eligible (PASSIVE, fully peered,
// drained) with a state hash stable for StablePolls consecutive polls.
type Readiness struct {
	Ready       bool   `json:"ready"`
	Passive     bool   `json:"passive"`
	Peers       int    `json:"peers"`
	MinPeers    int    `json:"min_peers"`
	Outstanding int    `json:"outstanding"`
	Streak      int    `json:"streak"`
	StablePolls int    `json:"stable_polls"`
	Hash        string `json:"hash"`
}

// RoutesDoc is the /routes document.
type RoutesDoc struct {
	ID     int     `json:"id"`
	Routes []Route `json:"routes"`
}

// PeersDoc is the /peers document.
type PeersDoc struct {
	ID       int    `json:"id"`
	MinPeers int    `json:"min_peers"`
	Peers    []Peer `json:"peers"`
}

// DataSample is one node's data-plane snapshot: forwarding counters, the
// per-(destination, next-hop) split table, and the flows sinking here.
// The obs package defines the shape (like Sample) so the dependency stays
// runtime → observability.
type DataSample struct {
	// Addr is the node's data-port address.
	Addr string `json:"addr"`
	// Counter totals, mirroring the data.* instruments.
	Origin      float64 `json:"origin"`
	Forwarded   float64 `json:"forwarded"`
	Delivered   float64 `json:"delivered"`
	DropNoRoute float64 `json:"drop_noroute"`
	DropNoAddr  float64 `json:"drop_noaddr"`
	TTLExpired  float64 `json:"ttl_expired"`
	Looped      float64 `json:"looped"`
	RecvErrors  float64 `json:"recv_errors"`
	// Splits is the live split table: observed vs desired (phi) share per
	// next hop, grouped by destination ascending, hops ascending.
	Splits []SplitEntry `json:"splits,omitempty"`
	// Flows are the flows terminating at this node, ascending by ID.
	Flows []FlowSample `json:"flows,omitempty"`
}

// SplitEntry is one (destination, next hop) row of the split table.
type SplitEntry struct {
	Dst     int   `json:"dst"`
	Hop     int   `json:"hop"`
	Packets int64 `json:"packets"`
	// Got is the observed fraction of this node's packets toward Dst that
	// left via Hop; Want is the phi weight the table aims for.
	Got  float64 `json:"got"`
	Want float64 `json:"want"`
}

// FlowSample is one flow observed at its sink.
type FlowSample struct {
	FlowID  uint64 `json:"flow_id"`
	Src     int    `json:"src"`
	Packets int64  `json:"packets"`
	Bits    int64  `json:"bits"`
	// MeanDelayMs and MaxDelayMs are end-to-end delays in milliseconds:
	// the emulated per-hop link time accumulated in the packet plus real
	// stack transit.
	MeanDelayMs float64 `json:"mean_delay_ms"`
	MaxDelayMs  float64 `json:"max_delay_ms"`
}

// FlowsDoc is the /flows document.
type FlowsDoc struct {
	ID   int         `json:"id"`
	Data *DataSample `json:"data"`
}
