package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"minroute/internal/leaktest"
	"minroute/internal/node"
	"minroute/internal/obs"
	"minroute/internal/telemetry"
)

// fakeNode is a concurrency-safe stand-in for a live node's Sample
// closure: tests mutate its fields and the obs server snapshots them
// from poll ticks and HTTP handlers.
type fakeNode struct {
	mu     sync.Mutex
	sample obs.Sample
}

func (f *fakeNode) Sample() obs.Sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.sample
	s.Peers = append([]obs.Peer(nil), f.sample.Peers...)
	s.Routes = append([]obs.Route(nil), f.sample.Routes...)
	return s
}

func (f *fakeNode) set(mut func(*obs.Sample)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mut(&f.sample)
}

// client returns an HTTP client whose idle connections are reaped at
// test end, keeping the leaktest window clean.
func client(t *testing.T) *http.Client {
	t.Helper()
	tr := &http.Transport{DisableKeepAlives: true}
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr}
}

func get(t *testing.T, c *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func newTestServer(t *testing.T, clk *node.VirtualClock, fn *fakeNode, reg *telemetry.Registry, refresh func()) *obs.Server {
	t.Helper()
	s, err := obs.NewServer(obs.Config{
		Addr:        "127.0.0.1:0",
		Clock:       clk,
		Sample:      fn.Sample,
		Registry:    reg,
		Refresh:     refresh,
		ConstLabels: map[string]string{"node": "7"},
		PollEvery:   0.02,
		StablePolls: 3,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestConfigValidation(t *testing.T) {
	leaktest.Check(t)
	if _, err := obs.NewServer(obs.Config{Addr: "127.0.0.1:0", Sample: func() obs.Sample { return obs.Sample{} }}); err == nil {
		t.Fatal("want error without Clock")
	}
	if _, err := obs.NewServer(obs.Config{Addr: "127.0.0.1:0", Clock: node.NewVirtualClock()}); err == nil {
		t.Fatal("want error without Sample")
	}
	if _, err := obs.NewServer(obs.Config{Addr: "256.0.0.1:bogus", Clock: node.NewVirtualClock(), Sample: func() obs.Sample { return obs.Sample{} }}); err == nil {
		t.Fatal("want error for unbindable address")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	reg := telemetry.NewRegistry(1)
	reg.Counter("control.msgs").Set(42)
	reg.Counter("arq.retransmits.0-1").Set(3)
	reg.Gauge("arq.window.0-1").Set(5)
	reg.Histogram("lsu.batch").Observe(0.5, 2)
	var refreshed atomic.Bool
	fn := &fakeNode{sample: obs.Sample{ID: 7}}
	s := newTestServer(t, clk, fn, reg, func() {
		refreshed.Store(true)
		reg.Counter("telemetry.events.dropped").Set(9)
	})

	code, body := get(t, client(t), s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !refreshed.Load() {
		t.Fatal("/metrics did not invoke Refresh")
	}
	for _, want := range []string{
		"# TYPE mdr_control_msgs_total counter\n",
		`mdr_control_msgs_total{node="7"} 42` + "\n",
		`mdr_arq_retransmits_total{link="0-1",node="7"} 3` + "\n",
		"# TYPE mdr_arq_window gauge\n",
		`mdr_arq_window{link="0-1",node="7"} 5` + "\n",
		`mdr_lsu_batch_count{node="7"} 1` + "\n",
		`mdr_lsu_batch_sum{node="7"} 2` + "\n",
		`mdr_lsu_batch_max{node="7"} 2` + "\n",
		`mdr_telemetry_events_dropped_total{node="7"} 9` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestHealthAndStateEndpoints(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	fn := &fakeNode{sample: obs.Sample{
		ID:       3,
		MinPeers: 2,
		Peers: []obs.Peer{
			{ID: 1, Cost: 2.5, Outstanding: 1, RTO: 0.01, Retransmits: 4, Window: 2},
			{ID: 2, Cost: 1.5},
		},
		Routes: []obs.Route{
			{Dst: 0, Dist: 1.25, FD: 1.25, Successors: []int{1, 2}, Best: 1},
		},
	}}
	s := newTestServer(t, clk, fn, nil, nil)
	c := client(t)

	clk.Advance(0.5)
	code, body := get(t, c, s.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: status %d", code)
	}
	var h obs.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if h.Status != "ok" || h.ID != 3 || h.Peers != 2 || h.Uptime != 0.5 {
		t.Fatalf("/healthz: got %+v", h)
	}

	code, body = get(t, c, s.URL()+"/routes")
	if code != http.StatusOK {
		t.Fatalf("/routes: status %d", code)
	}
	var rd obs.RoutesDoc
	if err := json.Unmarshal([]byte(body), &rd); err != nil {
		t.Fatalf("/routes: %v", err)
	}
	if rd.ID != 3 || len(rd.Routes) != 1 || rd.Routes[0].Best != 1 || len(rd.Routes[0].Successors) != 2 {
		t.Fatalf("/routes: got %+v", rd)
	}

	code, body = get(t, c, s.URL()+"/peers")
	if code != http.StatusOK {
		t.Fatalf("/peers: status %d", code)
	}
	var pd obs.PeersDoc
	if err := json.Unmarshal([]byte(body), &pd); err != nil {
		t.Fatalf("/peers: %v", err)
	}
	if pd.ID != 3 || pd.MinPeers != 2 || len(pd.Peers) != 2 || pd.Peers[0].Retransmits != 4 {
		t.Fatalf("/peers: got %+v", pd)
	}

	if code, _ := get(t, c, s.URL()+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: status %d", code)
	}
}

func TestReadinessStreak(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	fn := &fakeNode{sample: obs.Sample{ID: 0, MinPeers: 1, Summary: "router 0\n"}}
	s := newTestServer(t, clk, fn, nil, nil)
	c := client(t)

	readyz := func() obs.Readiness {
		code, body := get(t, c, s.URL()+"/readyz")
		var r obs.Readiness
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatalf("/readyz: %v", err)
		}
		if r.Ready != (code == http.StatusOK) {
			t.Fatalf("/readyz: ready=%v but status %d", r.Ready, code)
		}
		return r
	}

	// Not eligible: no peers yet.
	clk.Advance(0.1)
	if r := readyz(); r.Ready || r.Streak != 0 {
		t.Fatalf("ineligible node reported %+v", r)
	}

	// Eligible with a stable summary: streak accumulates to ready.
	fn.set(func(s *obs.Sample) {
		s.Passive = true
		s.Peers = []obs.Peer{{ID: 1, Cost: 1}}
	})
	clk.Advance(0.1) // 5 polls at 0.02 ≥ StablePolls=3
	r := readyz()
	if !r.Ready || r.Streak < 3 || r.Hash == "" {
		t.Fatalf("stable node not ready: %+v", r)
	}
	if !s.Ready() {
		t.Fatal("Server.Ready disagrees with /readyz")
	}

	// A state change resets the streak...
	fn.set(func(s *obs.Sample) { s.Summary = "router 0 CHANGED\n" })
	clk.Advance(0.02)
	if r := readyz(); r.Ready || r.Streak != 1 {
		t.Fatalf("changed state should reset streak: %+v", r)
	}
	// ...as does losing eligibility mid-streak.
	fn.set(func(s *obs.Sample) { s.Outstanding = 2 })
	clk.Advance(0.02)
	if r := readyz(); r.Ready || r.Streak != 0 {
		t.Fatalf("ineligible node should zero the streak: %+v", r)
	}
}

func TestCloseIdempotentAndStopsPolling(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	var calls int
	var mu sync.Mutex
	s, err := obs.NewServer(obs.Config{
		Addr:  "127.0.0.1:0",
		Clock: clk,
		Sample: func() obs.Sample {
			mu.Lock()
			calls++
			mu.Unlock()
			return obs.Sample{}
		},
		PollEvery: 0.02,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	clk.Advance(0.1)
	s.Close()
	s.Close() // idempotent
	mu.Lock()
	before := calls
	mu.Unlock()
	clk.Advance(1)
	mu.Lock()
	after := calls
	mu.Unlock()
	if after != before {
		t.Fatalf("poller still sampling after Close: %d -> %d", before, after)
	}
	if _, err := client(t).Get(s.URL() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestConcurrentScrape hammers every endpoint while poll ticks advance,
// under -race the usual way this package's locking discipline is proven.
func TestConcurrentScrape(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	reg := telemetry.NewRegistry(1)
	ctr := reg.Counter("arq.retransmits.0-1")
	fn := &fakeNode{sample: obs.Sample{ID: 0, Passive: true, Summary: "router 0\n"}}
	s := newTestServer(t, clk, fn, reg, nil)
	c := client(t)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths := []string{"/metrics", "/healthz", "/readyz", "/routes", "/peers"}
			for j := 0; j < 20; j++ {
				ctr.Inc()
				resp, err := c.Get(s.URL() + paths[(i+j)%len(paths)])
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for {
		select {
		case <-done:
			if got := ctr.Value(); got != 80 {
				t.Fatalf("atomic counter lost updates: %v", got)
			}
			return
		default:
			clk.Advance(0.02)
		}
	}
}

func ExampleWritePrometheus() {
	reg := telemetry.NewRegistry(1)
	reg.Counter("control.msgs").Set(12)
	reg.Gauge("arq.window.0-1").Set(3)
	_ = obs.WritePrometheus(stdout{}, reg.Gather(), map[string]string{"node": "0"})
	// Output:
	// # TYPE mdr_control_msgs_total counter
	// mdr_control_msgs_total{node="0"} 12
	// # TYPE mdr_arq_window gauge
	// mdr_arq_window{link="0-1",node="0"} 3
}

type stdout struct{}

func (stdout) Write(p []byte) (int, error) { return fmt.Print(string(p)) }
