package obs

import (
	"strings"
	"testing"

	"minroute/internal/telemetry"
)

func TestSanitizeName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"control.msgs", "control_msgs"},
		{"already_fine:ok", "already_fine:ok"},
		{"weird name+x", "weird_name_x"},
		{"9lead", "_9lead"},
		{"", ""},
	} {
		if got := sanitizeName(tc.in); got != tc.want {
			t.Errorf("sanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSplitLink(t *testing.T) {
	for _, tc := range []struct {
		in, fam, link string
	}{
		{"arq.retransmits.0-1", "mdr_arq_retransmits", "0-1"},
		{"arq.window.12-3", "mdr_arq_window", "12-3"},
		{"control.msgs", "mdr_control_msgs", ""},
		// A non-numeric trailing segment is part of the name, not a link.
		{"session.peer-ups", "mdr_session_peer_ups", ""},
	} {
		fam, labels := splitLink(tc.in)
		if fam != tc.fam {
			t.Errorf("splitLink(%q) family = %q, want %q", tc.in, fam, tc.fam)
		}
		if got := labels["link"]; got != tc.link {
			t.Errorf("splitLink(%q) link = %q, want %q", tc.in, got, tc.link)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
	} {
		if got := escapeLabel(tc.in); got != tc.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestWritePrometheusGolden pins the full exposition of a representative
// registry: family grouping, TYPE lines, link labels, histogram summary
// series, and sorted label rendering.
func TestWritePrometheusGolden(t *testing.T) {
	reg := telemetry.NewRegistry(1)
	reg.Counter("arq.retransmits.0-1").Set(2)
	reg.Counter("arq.retransmits.1-0").Set(5)
	reg.Counter("control.msgs").Set(10)
	reg.Gauge("arq.window.0-1").Set(3)
	h := reg.Histogram("phase.active")
	h.Observe(0.1, 0.5)
	h.Observe(1.2, 1.5)

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Gather(), map[string]string{"node": "0"}); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE mdr_arq_retransmits_total counter
mdr_arq_retransmits_total{link="0-1",node="0"} 2
mdr_arq_retransmits_total{link="1-0",node="0"} 5
# TYPE mdr_control_msgs_total counter
mdr_control_msgs_total{node="0"} 10
# TYPE mdr_arq_window gauge
mdr_arq_window{link="0-1",node="0"} 3
# TYPE mdr_phase_active_count counter
mdr_phase_active_count{node="0"} 2
# TYPE mdr_phase_active_sum counter
mdr_phase_active_sum{node="0"} 2
# TYPE mdr_phase_active_max gauge
mdr_phase_active_max{node="0"} 1.5
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWritePrometheusNoLabels(t *testing.T) {
	reg := telemetry.NewRegistry(1)
	reg.Counter("control.msgs").Set(1)
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Gather(), nil); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE mdr_control_msgs_total counter\nmdr_control_msgs_total 1\n"
	if b.String() != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}
