// Package obs is the live stack's observability plane: a per-node HTTP
// introspection server exposing Prometheus-format metrics, health and
// readiness probes, and JSON dumps of live routing state and peer
// sessions.
//
// The server is deliberately passive: it owns no protocol state. The
// hosting node hands it a Sample closure (a consistent snapshot of
// routing and session state taken under the node's own lock) and a
// telemetry.Registry whose instruments the node's goroutines write
// through atomic counters and gauges. Scraping therefore never blocks
// the data path, and the data path never knows the server exists.
//
// Readiness mirrors node.Mesh.AwaitConverged per node: the server polls
// the sample on the node's transport.Clock and declares the node ready
// once it is PASSIVE with all expected peers up, drained transport
// windows, and a canonical-state hash that has held stable for a
// configured streak of polls. /readyz turning 200 on every node of a
// mesh is the distributed analogue of AwaitConverged returning nil.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"minroute/internal/telemetry"
	"minroute/internal/transport"
)

// Config parameterizes one introspection server.
type Config struct {
	// Addr is the TCP listen address (host:port; port 0 binds ephemeral).
	Addr string
	// Clock drives the readiness poll — the hosting node's clock, so
	// virtual-clock tests can step the poller deterministically.
	Clock transport.Clock
	// Sample returns a consistent snapshot of the node's live state
	// (required). It is called from poll ticks and HTTP handlers
	// concurrently, so it must take whatever lock makes it consistent.
	Sample func() Sample
	// Registry backs /metrics. Instruments must be created before the
	// server starts (the registry's maps are not locked); values may keep
	// changing — counter and gauge reads are atomic.
	Registry *telemetry.Registry
	// Refresh, when non-nil, runs before every /metrics gather — the hook
	// a node uses to mirror externally maintained totals (event-bus drop
	// counts) into registry instruments right before exposition.
	Refresh func()
	// ConstLabels are attached to every exposed series (e.g. node="3").
	ConstLabels map[string]string
	// PollEvery is the readiness-poll period in seconds (default 0.02).
	PollEvery float64
	// StablePolls is how many consecutive eligible polls with an
	// unchanged state hash flip /readyz to 200 (default 10).
	StablePolls int
}

func (c Config) withDefaults() Config {
	if c.PollEvery <= 0 {
		c.PollEvery = 0.02
	}
	if c.StablePolls <= 0 {
		c.StablePolls = 10
	}
	return c
}

// Server is one node's live introspection endpoint.
type Server struct {
	cfg   Config
	ln    net.Listener
	srv   *http.Server
	done  chan struct{}
	start float64

	mu       sync.Mutex
	closed   bool
	timer    transport.Timer
	streak   int
	lastHash string
}

// NewServer binds cfg.Addr, starts serving, and arms the readiness
// poller. The caller owns the server and must Close it.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Clock == nil {
		return nil, fmt.Errorf("obs: Config.Clock is required")
	}
	if cfg.Sample == nil {
		return nil, fmt.Errorf("obs: Config.Sample is required")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		done:  make(chan struct{}),
		start: cfg.Clock.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/routes", s.handleRoutes)
	mux.HandleFunc("/peers", s.handlePeers)
	mux.HandleFunc("/flows", s.handleFlows)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	// Serve exits once Close tears the listener down; the handler
	// goroutines it spawns die with their connections, which Close also
	// force-closes.
	go func() {
		_ = s.srv.Serve(ln)
		close(s.done)
	}()
	s.mu.Lock()
	s.armPollLocked()
	s.mu.Unlock()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the poller, force-closes the listener and every live
// connection, and waits for the serve loop to exit. Idempotent. Callers
// must not hold the lock that Sample takes (the node releases its own
// mutex before closing its obs server).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
	}
	s.mu.Unlock()
	_ = s.srv.Close()
	<-s.done
}

// armPollLocked schedules the next readiness poll; each tick re-arms.
func (s *Server) armPollLocked() {
	s.timer = s.cfg.Clock.AfterFunc(s.cfg.PollEvery, s.pollTick)
}

// pollTick advances the hash-stability streak. The sample is taken
// before the server lock so a tick blocked on the node's mutex can never
// deadlock against Close.
func (s *Server) pollTick() {
	sample := s.cfg.Sample()
	h := hashSummary(sample.Summary)
	eligible := sample.Eligible()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	switch {
	case !eligible:
		s.streak, s.lastHash = 0, ""
	case h == s.lastHash:
		s.streak++
	default:
		s.streak, s.lastHash = 1, h
	}
	s.armPollLocked()
}

// streakNow returns the current stability streak and hash.
func (s *Server) streakNow() (int, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streak, s.lastHash
}

// Ready reports whether the node currently satisfies the readiness
// condition (exposed for in-process callers; /readyz is the HTTP view).
func (s *Server) Ready() bool {
	streak, _ := s.streakNow()
	return streak >= s.cfg.StablePolls && s.cfg.Sample().Eligible()
}

func hashSummary(summary string) string {
	h := sha256.Sum256([]byte(summary))
	return hex.EncodeToString(h[:])
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Refresh != nil {
		s.cfg.Refresh()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, s.cfg.Registry.Gather(), s.cfg.ConstLabels)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	sample := s.cfg.Sample()
	writeJSON(w, http.StatusOK, Health{
		Status: "ok",
		ID:     sample.ID,
		Uptime: s.cfg.Clock.Now() - s.start,
		Peers:  len(sample.Peers),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	sample := s.cfg.Sample()
	streak, hash := s.streakNow()
	r := Readiness{
		Ready:       streak >= s.cfg.StablePolls && sample.Eligible(),
		Passive:     sample.Passive,
		Peers:       len(sample.Peers),
		MinPeers:    sample.MinPeers,
		Outstanding: sample.Outstanding,
		Streak:      streak,
		StablePolls: s.cfg.StablePolls,
		Hash:        hash,
	}
	code := http.StatusOK
	if !r.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, r)
}

func (s *Server) handleRoutes(w http.ResponseWriter, _ *http.Request) {
	sample := s.cfg.Sample()
	writeJSON(w, http.StatusOK, RoutesDoc{ID: sample.ID, Routes: sample.Routes})
}

func (s *Server) handlePeers(w http.ResponseWriter, _ *http.Request) {
	sample := s.cfg.Sample()
	writeJSON(w, http.StatusOK, PeersDoc{ID: sample.ID, MinPeers: sample.MinPeers, Peers: sample.Peers})
}

// handleFlows serves the data-plane snapshot: split table and sink
// flows. 404 on nodes running without a data plane, so watchers can
// distinguish "no forwarder" from "no traffic yet".
func (s *Server) handleFlows(w http.ResponseWriter, _ *http.Request) {
	sample := s.cfg.Sample()
	if sample.Data == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no data plane"})
		return
	}
	writeJSON(w, http.StatusOK, FlowsDoc{ID: sample.ID, Data: sample.Data})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
