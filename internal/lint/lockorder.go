package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder builds the package's mutex-acquisition graph and flags the
// three deadlock shapes a review is most likely to miss.
var LockOrder = &Analyzer{
	Name:     "lockorder",
	Category: CategoryConcurrency,
	Doc: `flag lock-order cycles, locks held across blocking ops, and unbalanced Lock/Unlock paths

Tracks sync.Mutex/RWMutex acquisition spans through each function and the
in-package calls it makes while holding a lock. Lock identity is the
declaration: a struct field names the same lock role across all instances
(an ordering discipline is about roles, not addresses), a package or local
variable names itself. Reports: (1) every edge of a cycle in the
acquired-while-held graph, (2) re-acquiring a lock already held (self
deadlock; RLock counts — sync.RWMutex readers block behind queued
writers), (3) blocking channel operations or WaitGroup.Wait while a lock
is held (select with default is non-blocking and exempt; sync.Cond.Wait is
the sanctioned park-while-locked and exempt), and (4) any return path or
function end reached with a lock still held and no deferred unlock.
Conditionally-held locks (the "lock, maybe unlock, return locked" idiom)
need a suppression explaining the contract.`,
	Run: runLockOrder,
}

// heldLock is one acquired lock in the walker's held set. The set is an
// ordered slice: order is acquisition order (needed for edge direction)
// and keeps diagnostics deterministic without sorting map keys.
type heldLock struct {
	obj types.Object
	n   int // recursion depth; >1 only transiently, reported on entry
}

// lockEdge is one "acquired b while holding a" observation.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
}

type lockOrderState struct {
	p      *Pass
	bodies map[*types.Func]*ast.FuncDecl
	// mayAcquire lists, per in-package function, the lock identities its
	// body (excluding nested func literals) may acquire, directly or via
	// in-package callees. Ordered, deduplicated.
	mayAcquire map[*types.Func][]types.Object
	edges      []lockEdge
}

func runLockOrder(p *Pass) {
	st := &lockOrderState{p: p, bodies: funcBodies(p)}
	st.buildMayAcquire()

	// Walk every function declaration and every func literal as an
	// independent entry point with an empty held set: a literal's body runs
	// under whatever locks hold at its *call* site (often a different
	// goroutine), not its creation site, so inheriting the creator's held
	// set would be wrong in both directions.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					st.walkEntry(n.Body)
				}
			case *ast.FuncLit:
				st.walkEntry(n.Body)
			}
			return true
		})
	}

	st.reportCycles()
}

// buildMayAcquire computes the transitive may-acquire sets by fixpoint
// over the in-package call graph.
func (st *lockOrderState) buildMayAcquire() {
	// Deterministic function order: by declaration position.
	fns := make([]*types.Func, 0, len(st.bodies))
	for fn := range st.bodies { //lint:maporder-ok collected into a slice and sorted by position below
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	direct := make(map[*types.Func][]types.Object)
	callees := make(map[*types.Func][]*types.Func)
	for _, fn := range fns {
		body := st.bodies[fn].Body
		var acq []types.Object
		var outs []*types.Func
		inspectSkippingFuncLits(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if kind, obj := classifySyncCall(st.p, call); kind == syncLock && obj != nil {
				acq = appendObj(acq, obj)
				return
			}
			if callee := calleeOf(st.p, call); callee != nil {
				if _, inPkg := st.bodies[callee]; inPkg {
					outs = append(outs, callee)
				}
			}
		})
		direct[fn] = acq
		callees[fn] = outs
	}

	st.mayAcquire = direct
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			set := st.mayAcquire[fn]
			for _, callee := range callees[fn] {
				for _, obj := range st.mayAcquire[callee] {
					if !containsObj(set, obj) {
						set = append(set, obj)
						changed = true
					}
				}
			}
			st.mayAcquire[fn] = set
		}
	}
}

func appendObj(s []types.Object, obj types.Object) []types.Object {
	if containsObj(s, obj) {
		return s
	}
	return append(s, obj)
}

func containsObj(s []types.Object, obj types.Object) bool {
	for _, o := range s {
		if o == obj {
			return true
		}
	}
	return false
}

// inspectSkippingFuncLits walks the tree under root but does not descend
// into func literals: their bodies are separate entry points.
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// lockWalker tracks the held set and pending deferred unlocks through one
// entry point's statements.
type lockWalker struct {
	st       *lockOrderState
	held     []heldLock
	deferred []types.Object // locks a defer will release on any exit
}

func (st *lockOrderState) walkEntry(body *ast.BlockStmt) {
	w := &lockWalker{st: st}
	terminated := w.walkStmts(body.List)
	if !terminated {
		w.reportLeaks(body.End() - 1)
	}
}

// reportLeaks flags locks still held at an exit point that no defer will
// release.
func (w *lockWalker) reportLeaks(pos token.Pos) {
	for _, h := range w.held {
		if containsObj(w.deferred, h.obj) {
			continue
		}
		w.st.p.Reportf(pos, "%s is locked with no Unlock on this path",
			objDisplay(w.st.p, h.obj))
	}
}

// snapshot/restore give branch bodies independent copies of the state.
func (w *lockWalker) snapshot() ([]heldLock, []types.Object) {
	return append([]heldLock(nil), w.held...), append([]types.Object(nil), w.deferred...)
}

func (w *lockWalker) restore(held []heldLock, deferred []types.Object) {
	w.held, w.deferred = held, deferred
}

// walkStmts walks a statement list, returning true if control cannot fall
// off its end (every path returns, panics, or loops forever).
func (w *lockWalker) walkStmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.walkStmt(s) {
			return true
		}
	}
	return false
}

// walkStmt processes one statement; true means control does not continue
// past it.
func (w *lockWalker) walkStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt)

	case *ast.ExprStmt:
		w.walkExpr(s.X)

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				w.walkCall(n)
				return false
			}
			return true
		})

	case *ast.SendStmt:
		if len(w.held) > 0 {
			w.st.p.Reportf(s.Arrow, "channel send while %s is held may block forever",
				objDisplay(w.st.p, w.held[len(w.held)-1].obj))
		}
		w.walkExpr(s.Value)

	case *ast.DeferStmt:
		if kind, obj := classifySyncCall(w.st.p, s.Call); kind == syncUnlock && obj != nil {
			w.deferred = appendObj(w.deferred, obj)
		}
		// Arguments to the deferred call evaluate now; the call itself runs
		// at exit and is otherwise out of scope for the held-set walk.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg)
		}

	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.walkExpr(arg)
		}

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e)
		}
		w.reportLeaks(s.Pos())
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave the surrounding control structure; the
		// loop-balance check at the for statement covers held-set drift.
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkExpr(s.Cond)
		held, deferred := w.snapshot()
		thenTerm := w.walkStmts(s.Body.List)
		thenHeld, thenDeferred := w.snapshot()
		w.restore(held, deferred)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else)
		}
		if thenTerm && elseTerm {
			return true
		}
		if thenTerm {
			return false // else branch (or fallthrough) state already current
		}
		if elseTerm {
			w.restore(thenHeld, thenDeferred)
			return false
		}
		w.merge(thenHeld, thenDeferred)

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond)
		}
		entryHeld, entryDeferred := w.snapshot()
		bodyTerm := w.walkStmts(s.Body.List)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
		if !bodyTerm {
			// Only a body that reaches the next iteration can drift; a body
			// that always returns already got its leak report at the return.
			w.checkLoopBalance(s.Pos(), entryHeld)
		}
		w.restore(entryHeld, entryDeferred)
		if s.Cond == nil && !hasLoopExit(s) {
			// for{} with no break/goto out: control never passes this
			// statement; every exit is a return already checked above.
			return true
		}

	case *ast.RangeStmt:
		w.walkExpr(s.X)
		entryHeld, entryDeferred := w.snapshot()
		if !w.walkStmts(s.Body.List) {
			w.checkLoopBalance(s.Pos(), entryHeld)
		}
		w.restore(entryHeld, entryDeferred)

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag)
		}
		return w.walkCases(s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		return w.walkCases(s.Body, false)

	case *ast.SelectStmt:
		if len(w.held) > 0 && !selectHasDefault(s) {
			w.st.p.Reportf(s.Pos(), "select with no default while %s is held may block forever",
				objDisplay(w.st.p, w.held[len(w.held)-1].obj))
		}
		return w.walkCases(s.Body, true)
	}
	return false
}

// walkCases handles switch/select bodies: each clause runs from the same
// entry state; the statement terminates only if every clause does (and,
// for switch, a default exists — select blocks until a case fires, so no
// default needed).
func (w *lockWalker) walkCases(body *ast.BlockStmt, isSelect bool) bool {
	entryHeld, entryDeferred := w.snapshot()
	allTerm := len(body.List) > 0
	hasDefault := false
	var exits [][2]any
	for _, clause := range body.List {
		w.restore(append([]heldLock(nil), entryHeld...), append([]types.Object(nil), entryDeferred...))
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.walkExpr(e)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				// The comm op itself (send/recv) is the sanctioned blocking
				// point of the select; the select-level check above covers
				// blocking-while-locked, so don't double-report here.
				w.walkCommStmt(c.Comm)
			}
			stmts = c.Body
		}
		if !w.walkStmts(stmts) {
			allTerm = false
			h, d := w.snapshot()
			exits = append(exits, [2]any{h, d})
		}
	}
	if !isSelect && !hasDefault {
		allTerm = false
		exits = append(exits, [2]any{entryHeld, entryDeferred})
	}
	if allTerm || len(exits) == 0 {
		// Every clause terminates — or there are none at all (an empty
		// select{} parks the goroutine forever).
		return true
	}
	// Continue with the first falling-through clause's state, merged with
	// the rest.
	w.restore(exits[0][0].([]heldLock), exits[0][1].([]types.Object))
	for _, e := range exits[1:] {
		w.merge(e[0].([]heldLock), e[1].([]types.Object))
	}
	return false
}

// walkCommStmt evaluates a select communication clause without the
// blocking-op report that a bare send/receive would trigger.
func (w *lockWalker) walkCommStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.SendStmt:
		w.walkExpr(s.Value)
	case *ast.ExprStmt: // <-ch
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.walkExpr(u.X)
			return
		}
		w.walkExpr(s.X)
	case *ast.AssignStmt: // v := <-ch
		for _, e := range s.Rhs {
			if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.walkExpr(u.X)
				continue
			}
			w.walkExpr(e)
		}
	}
}

// merge folds another branch's exit state into the current one: a lock is
// held after the join if either branch held it (conservative — a one-sided
// hold is exactly the conditional-lock pattern worth surfacing downstream);
// a defer covers the join only if both paths registered it.
func (w *lockWalker) merge(held []heldLock, deferred []types.Object) {
	for _, h := range held {
		found := false
		for i := range w.held {
			if w.held[i].obj == h.obj {
				if h.n > w.held[i].n {
					w.held[i].n = h.n
				}
				found = true
				break
			}
		}
		if !found {
			w.held = append(w.held, h)
		}
	}
	var keep []types.Object
	for _, d := range w.deferred {
		if containsObj(deferred, d) {
			keep = append(keep, d)
		}
	}
	w.deferred = keep
}

// checkLoopBalance reports a loop whose body changes the held set between
// iterations — each pass acquires (or releases) without balancing.
func (w *lockWalker) checkLoopBalance(pos token.Pos, entry []heldLock) {
	for _, h := range w.held {
		if !heldContains(entry, h.obj) {
			w.st.p.Reportf(pos, "loop body acquires %s without releasing it before the next iteration",
				objDisplay(w.st.p, h.obj))
		}
	}
	for _, h := range entry {
		if !heldContains(w.held, h.obj) {
			w.st.p.Reportf(pos, "loop body releases %s it did not acquire; held set differs between iterations",
				objDisplay(w.st.p, h.obj))
		}
	}
}

func heldContains(s []heldLock, obj types.Object) bool {
	for _, h := range s {
		if h.obj == obj {
			return true
		}
	}
	return false
}

// walkExpr scans an expression for calls and lock-relevant operations.
func (w *lockWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate entry point
		case *ast.CallExpr:
			w.walkCall(n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(w.held) > 0 {
				w.st.p.Reportf(n.OpPos, "channel receive while %s is held may block forever",
					objDisplay(w.st.p, w.held[len(w.held)-1].obj))
			}
		}
		return true
	})
}

// walkCall is where the graph edges come from: sync calls mutate the held
// set; in-package calls project their may-acquire sets under the current
// holds.
func (w *lockWalker) walkCall(call *ast.CallExpr) {
	// Arguments first (they evaluate before the call).
	for _, arg := range call.Args {
		w.walkExpr(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X)
	}

	kind, obj := classifySyncCall(w.st.p, call)
	switch kind {
	case syncLock:
		if obj == nil {
			return
		}
		for i := range w.held {
			if w.held[i].obj == obj {
				w.st.p.Reportf(call.Pos(), "%s is already held here; re-acquiring self-deadlocks",
					objDisplay(w.st.p, obj))
				w.held[i].n++
				return
			}
		}
		w.recordEdges(obj, call.Pos())
		w.held = append(w.held, heldLock{obj: obj, n: 1})
	case syncUnlock:
		if obj == nil {
			return
		}
		for i := range w.held {
			if w.held[i].obj == obj {
				w.held[i].n--
				if w.held[i].n <= 0 {
					w.held = append(w.held[:i], w.held[i+1:]...)
				}
				return
			}
		}
		// Unlock of a lock the walker does not believe is held: either a
		// conditional-hold pattern or a bug; the leak check on the lock
		// side is the authoritative report, so stay quiet here.
	case syncCondWait, syncWGAdd, syncOnceDo:
		// Cond.Wait atomically releases its Locker while parked and
		// re-acquires before returning: holding the lock across it is the
		// documented protocol, not a blocking-while-locked bug. Add and
		// Once.Do are non-blocking and lock-neutral.
	case syncWaitGroup:
		if len(w.held) > 0 {
			w.st.p.Reportf(call.Pos(), "WaitGroup.Wait while %s is held may block forever",
				objDisplay(w.st.p, w.held[len(w.held)-1].obj))
		}
	case syncNone:
		if isBuiltin(w.st.p, call.Fun, "panic") && len(w.held) > 0 {
			for _, h := range w.held {
				if !containsObj(w.deferred, h.obj) {
					w.st.p.Reportf(call.Pos(), "panic while %s is held and no deferred Unlock covers it",
						objDisplay(w.st.p, h.obj))
				}
			}
			return
		}
		callee := calleeOf(w.st.p, call)
		if callee == nil {
			return
		}
		if _, inPkg := w.st.bodies[callee]; !inPkg {
			return
		}
		if len(w.held) == 0 {
			return
		}
		for _, acq := range w.st.mayAcquire[callee] {
			if heldContains(w.held, acq) {
				w.st.p.Reportf(call.Pos(), "call to %s may re-acquire %s, which is already held",
					callee.Name(), objDisplay(w.st.p, acq))
				continue
			}
			w.recordEdges(acq, call.Pos())
		}
	}
}

// recordEdges adds held→acquired edges for a new acquisition, one per
// currently-held lock, deduplicated on the pair (first position wins).
func (w *lockWalker) recordEdges(to types.Object, pos token.Pos) {
	for _, h := range w.held {
		exists := false
		for _, e := range w.st.edges {
			if e.from == h.obj && e.to == to {
				exists = true
				break
			}
		}
		if !exists {
			w.st.edges = append(w.st.edges, lockEdge{from: h.obj, to: to, pos: pos})
		}
	}
}

// hasLoopExit reports whether the for statement's body (excluding nested
// loops/switches for unlabeled breaks, and func literals always) contains
// a break, goto, or labeled branch that can leave the loop.
func hasLoopExit(loop *ast.ForStmt) bool {
	exit := false
	var scan func(n ast.Node, breakable bool)
	scan = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if exit {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// Unlabeled break inside binds to the inner statement; a
				// labeled break or goto still escapes, so rescan the child
				// statement lists (not the node itself) with breaks disarmed.
				for _, child := range childStmtLists(m) {
					for _, s := range child {
						scan(s, false)
					}
				}
				return false
			case *ast.BranchStmt:
				switch m.Tok {
				case token.BREAK:
					if breakable || m.Label != nil {
						exit = true
					}
				case token.GOTO:
					exit = true
				}
			}
			return true
		})
	}
	scan(loop.Body, true)
	return exit
}

// reportCycles finds strongly-connected components in the acquired-while-
// held graph and reports every edge inside one, at the position the
// acquisition was observed.
func (st *lockOrderState) reportCycles() {
	if len(st.edges) == 0 {
		return
	}
	// Adjacency over the edge list (small graphs; O(V·E) reachability is
	// fine and avoids map iteration entirely).
	reaches := func(from, to types.Object) bool {
		var stack []types.Object
		var seen []types.Object
		stack = append(stack, from)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if containsObj(seen, cur) {
				continue
			}
			seen = append(seen, cur)
			for _, e := range st.edges {
				if e.from != cur {
					continue
				}
				if e.to == to {
					return true
				}
				stack = append(stack, e.to)
			}
		}
		return false
	}
	var bad []lockEdge
	for _, e := range st.edges {
		if reaches(e.to, e.from) {
			bad = append(bad, e)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].pos < bad[j].pos })
	for _, e := range bad {
		st.p.Reportf(e.pos, "lock-order cycle: %s acquired while %s is held, but the reverse order also occurs",
			objDisplay(st.p, e.to), objDisplay(st.p, e.from))
	}
}

// selectHasDefault reports whether the select statement has a default
// clause (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
