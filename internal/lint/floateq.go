package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands outside
// internal/numeric. Path distances are sums of link costs accumulated in
// path order, so equal-length paths routinely differ by a few ULPs; raw
// equality silently breaks tie-breaks the paper specifies (see the numeric
// package doc). Comparisons against an exact zero constant are allowed —
// zero is a sentinel (e.g. "no traffic", "not yet sampled"), produced by
// assignment rather than arithmetic — as is the x != x NaN probe.
var FloatEq = &Analyzer{
	Name:     "floateq",
	Category: CategoryDeterminism,
	Doc:      "flags ==/!= between floating-point operands outside internal/numeric",
	Run:      runFloatEq,
}

func runFloatEq(p *Pass) {
	if !isModulePath(p.Path) || p.Path == "minroute/internal/numeric" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(be.X)) || !isFloat(p.Info.TypeOf(be.Y)) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			if be.Op == token.NEQ && sameExpr(p, be.X, be.Y) {
				return true // x != x: the portable NaN test
			}
			p.Reportf(be.OpPos, "floating-point %s comparison; use numeric.Equalish/Closer or annotate //lint:floateq-ok <reason>", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func isZeroConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0
}
