package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// TelemetryAttr pins telemetry attribute names to the declared taxonomy.
// The JSONL exporter writes attributes in a fixed canonical order keyed by
// the AttrKey constants; a string literal minted ad hoc ("Router", "flow_id")
// would silently produce a key no reader or diff tool recognizes. Any string
// literal the type checker resolves to telemetry.AttrKey must therefore
// match one of the constants declared in the telemetry package itself
// (which is exempt — it is where the taxonomy lives).
var TelemetryAttr = &Analyzer{
	Name:     "telemetry-attr",
	Category: CategoryDeterminism,
	Doc:      "string literals typed as telemetry.AttrKey must match a declared attribute constant",
	Run:      runTelemetryAttr,
}

const telemetryPkgPath = "minroute/internal/telemetry"

// isAttrKey reports whether t is the named type telemetry.AttrKey.
func isAttrKey(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "AttrKey" && obj.Pkg() != nil && obj.Pkg().Path() == telemetryPkgPath
}

// attrKeyConstants collects the string values of every AttrKey constant
// declared in the imported telemetry package.
func attrKeyConstants(p *Pass) map[string]bool {
	var tpkg *types.Package
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() == telemetryPkgPath {
			tpkg = imp
			break
		}
	}
	if tpkg == nil {
		return nil
	}
	allowed := make(map[string]bool)
	scope := tpkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !isAttrKey(c.Type()) {
			continue
		}
		allowed[constant.StringVal(c.Val())] = true
	}
	return allowed
}

func runTelemetryAttr(p *Pass) {
	if !isModulePath(p.Path) || p.Path == telemetryPkgPath {
		return
	}
	allowed := attrKeyConstants(p)
	if len(allowed) == 0 {
		return // telemetry not imported (or holds no constants): nothing to check
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			tv, ok := p.Info.Types[ast.Expr(lit)]
			if !ok || tv.Type == nil || !isAttrKey(tv.Type) {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !allowed[val] {
				p.Reportf(lit.Pos(), "%q is not a declared telemetry attribute; use the telemetry.Attr* constants", val)
			}
			return true
		})
	}
}
