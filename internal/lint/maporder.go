package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose body cannot be proven
// order-insensitive. Go randomizes map iteration order per range statement,
// so any such loop whose effect depends on visit order makes a simulation
// (or a figure built from one) differ run-to-run — exactly the
// nondeterminism the parallel harness guarantees against. The paper's
// protocols resolve ties "to the lowest address"; an unordered map walk
// silently breaks that tie-break too.
//
// A loop body is accepted without annotation only when every statement is
// commutative across iterations:
//
//   - writes keyed by the loop key (`other[k] = v`, `delete(other, k)`,
//     `byKey[k] = append(byKey[k], x)`) — distinct keys, distinct effects;
//   - integer/bool accumulation (`n++`, `n += v`, `seen = true` with a
//     constant RHS) — commutative regardless of order (float accumulation
//     is NOT accepted: FP addition does not associate);
//   - `if` statements whose condition calls nothing and reads no variable
//     the loop body mutates, guarding accepted statements;
//   - `continue`.
//
// Everything else needs a sort-before-range fix or a reasoned
// `//lint:maporder-ok` annotation.
var MapOrder = &Analyzer{
	Name:     "maporder",
	Category: CategoryDeterminism,
	Doc:      "flags range over map with an order-sensitive body",
	Run:      runMapOrder,
}

func runMapOrder(p *Pass) {
	if !isModulePath(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if !mapLoopCommutes(p, rs) {
				p.Reportf(rs.For, "range over map %s has an order-sensitive body; iterate sorted keys or annotate //lint:maporder-ok <reason>", types.ExprString(rs.X))
			}
			return true
		})
	}
}

// mapLoopCommutes proves (conservatively) that executing the loop body once
// per map entry yields the same state for every visit order.
func mapLoopCommutes(p *Pass, rs *ast.RangeStmt) bool {
	key := rangeVarObj(p, rs.Key)
	mutated := mutatedObjs(p, rs.Body)
	for _, stmt := range rs.Body.List {
		if !commutativeStmt(p, stmt, key, mutated) {
			return false
		}
	}
	return true
}

// rangeVarObj returns the types.Object of a range key/value variable, or
// nil for a blank or absent one.
func rangeVarObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// mutatedObjs collects the root objects assigned, incremented, or deleted
// anywhere in the body. Guard conditions may not read them: a condition
// over loop-mutated state (e.g. `if count < 3`) makes which entries take
// the branch depend on visit order.
func mutatedObjs(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if obj := rootObj(p, e); obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(s.X)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "delete") && len(call.Args) == 2 {
				mark(call.Args[0])
			}
		}
		return true
	})
	return out
}

// rootObj resolves an lvalue to its base object: rootObj(m[k]) = m,
// rootObj(s.f) = s.
func rootObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func commutativeStmt(p *Pass, stmt ast.Stmt, key types.Object, mutated map[types.Object]bool) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return commutativeAssign(p, s, key)
	case *ast.IncDecStmt:
		// n++ / n-- on an integer is commutative wherever n lives.
		return isIntegerish(p.Info.TypeOf(s.X)) && pureExpr(p, s.X)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok || !isBuiltin(p, call.Fun, "delete") {
			return false
		}
		// delete(other, k): removes a distinct entry per iteration.
		return len(call.Args) == 2 && isKeyExpr(p, call.Args[1], key)
	case *ast.IfStmt:
		if s.Init != nil || s.Else != nil {
			return false
		}
		if !pureExpr(p, s.Cond) || readsAny(p, s.Cond, mutated) {
			return false
		}
		for _, inner := range s.Body.List {
			if !commutativeStmt(p, inner, key, mutated) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	}
	return false
}

func commutativeAssign(p *Pass, s *ast.AssignStmt, key types.Object) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// Keyed write: other[k] = <pure>, or the append-to-bucket form
		// byKey[k] = append(byKey[k], <pure>). Distinct keys commute.
		if idx, ok := lhs.(*ast.IndexExpr); ok && isKeyExpr(p, idx.Index, key) {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "append") {
				if len(call.Args) < 1 || !sameExpr(p, call.Args[0], lhs) {
					return false
				}
				for _, a := range call.Args[1:] {
					if !pureExpr(p, a) {
						return false
					}
				}
				return true
			}
			return pureExpr(p, rhs)
		}
		// found = true (any constant): idempotent, hence order-free.
		if _, ok := lhs.(*ast.Ident); ok && s.Tok == token.ASSIGN {
			tv, ok := p.Info.Types[rhs]
			return ok && tv.Value != nil
		}
		return false
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation commutes; float accumulation does not
		// (rounding depends on the order of the partial sums).
		return isIntegerish(p.Info.TypeOf(lhs)) && pureExpr(p, lhs) && pureExpr(p, rhs)
	}
	return false
}

// isKeyExpr reports whether e is exactly the loop-key variable.
func isKeyExpr(p *Pass, e ast.Expr, key types.Object) bool {
	if key == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.Info.Uses[id] == key
}

// pureExpr reports whether evaluating e has no side effects: no calls
// (except the len/cap builtins and type conversions), no channel receives.
func pureExpr(p *Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if tv, ok := p.Info.Types[x.Fun]; ok && tv.IsType() {
				break // conversion like graph.NodeID(i)
			}
			if !isBuiltin(p, x.Fun, "len") && !isBuiltin(p, x.Fun, "cap") {
				pure = false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pure = false
			}
		}
		return pure
	})
	return pure
}

// readsAny reports whether e mentions any of the given objects.
func readsAny(p *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sameExpr reports whether a and b are structurally identical references
// (ident/selector/index chains over the same objects).
func sameExpr(p *Pass, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		xo, yo := p.Info.Uses[x], p.Info.Uses[y]
		return xo != nil && xo == yo
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(p, x.X, y.X) && sameExpr(p, x.Index, y.Index)
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && sameExpr(p, x.X, y.X) && x.Sel.Name == y.Sel.Name
	}
	return false
}

// isBuiltin reports whether fun names the given predeclared function.
func isBuiltin(p *Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.Info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}

// isIntegerish accepts integer and boolean types (bool for the |=/&= forms).
func isIntegerish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}
