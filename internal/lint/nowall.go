package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// NoWall forbids direct wall-clock reads — time.Now and time.Since —
// everywhere in the module, including the cmd/ and examples/ entry points
// that norand exempts. The live node runtime must behave identically
// under a virtual clock in tests and a wall clock in production, which
// holds only if every timestamp flows through the transport.Clock
// interface; a stray time.Now in protocol or tooling code is a second,
// unmockable time source. The single sanctioned reader is
// internal/node's wallclock.go, where WallClock adapts the real clock to
// the interface. Timers (time.AfterFunc, time.Sleep) remain legal here —
// norand polices those in simulation code — because waiting is
// observable behavior, while reading the clock is hidden state.
var NoWall = &Analyzer{
	Name:     "nowall",
	Category: CategoryDeterminism,
	Doc:      "forbids time.Now and time.Since outside internal/node's wall-clock adapter",
	Run:      runNoWall,
}

// noWallFuncs are the banned wall-clock readers.
var noWallFuncs = map[string]bool{"Now": true, "Since": true}

func runNoWall(p *Pass) {
	if !isModulePath(p.Path) {
		return
	}
	for _, f := range p.Files {
		// The one sanctioned reader: WallClock in internal/node. The
		// exemption is keyed on package path and file name, so a
		// wallclock.go anywhere else stays covered.
		if p.Path == "minroute/internal/node" &&
			filepath.Base(p.Fset.Position(f.Pos()).Filename) == "wallclock.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if noWallFuncs[fn.Name()] {
				p.Reportf(sel.Pos(), "time.%s is a direct wall-clock read; route time through transport.Clock (see internal/node/wallclock.go)", fn.Name())
			}
			return true
		})
	}
}
