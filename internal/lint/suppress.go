package lint

import (
	"go/token"
	"regexp"
	"strings"
)

// suppression is one parsed //lint:<check>-ok annotation.
type suppression struct {
	pos    token.Position
	check  string
	reason string
}

type suppressionSet struct {
	// byLine maps file:line to the suppressions that cover that line.
	byLine map[string][]*suppression
	all    []*suppression
}

// The check-name group admits hyphenated names (telemetry-attr); greedy
// matching with backtracking still peels off the trailing "-ok".
var suppressionRE = regexp.MustCompile(`^//\s*lint:([a-z]+(?:-[a-z]+)*)-ok(.*)$`)

// collectSuppressions scans every comment in the package. An annotation
// covers the line it sits on and the line directly below it, so both the
// trailing-comment and the own-line styles work:
//
//	for k := range m { // lint:maporder-ok reason
//
//	//lint:maporder-ok reason
//	for k := range m {
func collectSuppressions(pkg *Package) *suppressionSet {
	set := &suppressionSet{byLine: make(map[string][]*suppression)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressionRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				s := &suppression{
					pos:    pkg.Fset.Position(c.Pos()),
					check:  m[1],
					reason: strings.TrimSpace(m[2]),
				}
				set.all = append(set.all, s)
				for _, line := range []int{s.pos.Line, s.pos.Line + 1} {
					key := lineKey(s.pos.Filename, line)
					set.byLine[key] = append(set.byLine[key], s)
				}
			}
		}
	}
	return set
}

func lineKey(file string, line int) string {
	return file + ":" + itoa(line)
}

// itoa avoids importing strconv for a two-call helper.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// filter drops diagnostics covered by a matching, reasoned suppression.
// A reasonless annotation suppresses nothing: it will instead surface as a
// hygiene diagnostic, so a lazy `//lint:floateq-ok` cannot silence a check.
func (set *suppressionSet) filter(diags []Diag) []Diag {
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range set.byLine[lineKey(d.Pos.Filename, d.Pos.Line)] {
			if s.check == d.Check && s.reason != "" {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// hygiene reports annotations that are themselves defective: a missing
// reason, or a check name the suite does not define. These diagnostics are
// not suppressible.
func (set *suppressionSet) hygiene() []Diag {
	known := make(map[string]bool, len(All))
	for _, a := range All {
		known[a.Name] = true
	}
	var out []Diag
	for _, s := range set.all {
		if !known[s.check] {
			out = append(out, Diag{Pos: s.pos, Check: "suppression",
				Msg: "annotation names unknown check " + s.check + "-ok"})
			continue
		}
		if s.reason == "" {
			out = append(out, Diag{Pos: s.pos, Check: "suppression",
				Msg: "suppression of " + s.check + " has no reason; write //lint:" + s.check + "-ok <why this is safe>"})
		}
	}
	return out
}
