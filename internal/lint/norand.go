package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NoRand forbids ambient entropy — global PRNGs and wall-clock reads — in
// simulation code. Every stochastic draw must come from an explicitly
// seeded internal/rng Source and every timestamp from the DES clock;
// otherwise a run is not a pure function of its seed and the
// byte-identical-figures guarantee collapses. Exempt: internal/rng itself
// (it is the sanctioned entropy boundary); the cmd/ and examples/ entry
// points, which may time wall-clock progress for the operator; and the
// live runtime (internal/transport, internal/node), which is the real-time
// I/O boundary — its ARQ retransmits and heartbeats are driven by real
// timers behind the transport.Clock interface, and its determinism is
// established by cross-validation against the simulator rather than by
// seed-purity. Wall-clock *reads* stay banned there by the separate
// nowall check. internal/leaktest is also exempt: it polls the real
// scheduler for goroutine exits, which is inherently wall-time work and
// touches no simulation state.
var NoRand = &Analyzer{
	Name:     "norand",
	Category: CategoryDeterminism,
	Doc:      "forbids math/rand, crypto/rand, and wall-clock reads in simulation code",
	Run:      runNoRand,
}

// norandImports are the packages whose mere import marks ambient entropy.
var norandImports = map[string]string{
	"math/rand":    "use an explicitly seeded internal/rng Source",
	"math/rand/v2": "use an explicitly seeded internal/rng Source",
	"crypto/rand":  "simulations must be reproducible; use internal/rng",
}

// norandTimeFuncs are the wall-clock reads and timers banned from
// simulation code (time.Duration arithmetic and constants remain fine).
var norandTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runNoRand(p *Pass) {
	if !isModulePath(p.Path) ||
		p.Path == "minroute/internal/rng" ||
		pathWithin(p.Path, "minroute/cmd") ||
		pathWithin(p.Path, "minroute/examples") ||
		pathWithin(p.Path, "minroute/internal/transport") ||
		pathWithin(p.Path, "minroute/internal/node") ||
		p.Path == "minroute/internal/leaktest" {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := norandImports[path]; banned {
				p.Reportf(imp.Pos(), "import of %s is ambient entropy; %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if norandTimeFuncs[fn.Name()] {
				p.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation time comes from the DES engine", fn.Name())
			}
			return true
		})
	}
}
