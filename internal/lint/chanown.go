package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanOwn enforces single-owner close() discipline on channels.
var ChanOwn = &Analyzer{
	Name:     "chanown",
	Category: CategoryConcurrency,
	Doc: `flag close() calls that violate single-owner channel discipline

Closing a channel is an ownership act: exactly one goroutine may do it,
exactly once, and only after every sender is done — a second close or a
send-after-close panics at runtime, in whatever interleaving finally hits
it. The check flags the shapes that erode that guarantee: (1) closing a
channel received as an ordinary function parameter (the callee cannot know
it is the owner; a send-only chan<- parameter is exempt, since passing one
is the documented hand-the-producer-the-pen idiom); (2) a channel field or
package variable with more than one close site (each site is reported —
two sites is one forgotten sync.Once away from a double-close panic; sites
inside a sync.Once.Do literal are exempt); (3) close inside a loop body
that can reach the close again — unless the closed expression is the
loop's own range/init variable (closing each element of a collection) or
the close is followed by a break/return on the same path.`,
	Run: runChanOwn,
}

type closeSite struct {
	obj  types.Object
	pos  token.Pos
	once bool // lexically inside a sync.Once.Do func literal
}

func runChanOwn(p *Pass) {
	var sites []closeSite
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call.Fun, "close") || len(call.Args) != 1 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			obj := lockIdentity(p, arg)

			if obj != nil {
				if v, ok := obj.(*types.Var); ok && paramOf(p, file, v) {
					if !isSendOnlyChan(v) {
						p.Reportf(call.Pos(), "close of parameter %s: the callee cannot own this channel (a chan<- parameter would mark the producer hand-off)", v.Name())
					}
				}
				if isFieldOrPkgVar(obj) {
					sites = append(sites, closeSite{obj: obj, pos: call.Pos(), once: inOnceDo(p, file, call)})
				}
			}

			if loop, loopVarObjs := enclosingLoop(p, file, call); loop != nil {
				if !closeTargetsLoopVar(p, arg, loopVarObjs) && !exitFollowsInLoop(file, loop, call) {
					p.Reportf(call.Pos(), "close inside a loop can run more than once; a second close panics")
				}
			}
			return true
		})
	}

	// Multi-site check over fields and package variables.
	var objs []types.Object
	for _, s := range sites {
		if !s.once {
			objs = appendObj(objs, s.obj)
		}
	}
	for _, obj := range objs {
		var hits []closeSite
		for _, s := range sites {
			if s.obj == obj && !s.once {
				hits = append(hits, s)
			}
		}
		if len(hits) < 2 {
			continue
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
		for _, h := range hits {
			p.Reportf(h.pos, "%s is closed at %d sites; a single owner should close once (guard with sync.Once or a closed flag)",
				objDisplay(p, obj), len(hits))
		}
	}
}

// paramOf reports whether v is declared as a parameter of some function
// or method in the file.
func paramOf(p *Pass, file *ast.File, v *types.Var) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		var params *ast.FieldList
		switch n := n.(type) {
		case *ast.FuncDecl:
			params = n.Type.Params
		case *ast.FuncLit:
			params = n.Type.Params
		default:
			return true
		}
		for _, field := range params.List {
			for _, name := range field.Names {
				if p.Info.Defs[name] == types.Object(v) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func isSendOnlyChan(v *types.Var) bool {
	ch, ok := v.Type().Underlying().(*types.Chan)
	return ok && ch.Dir() == types.SendOnly
}

func isFieldOrPkgVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Parent() == v.Pkg().Scope()
}

// inOnceDo reports whether the call sits inside a func literal passed to
// sync.Once.Do.
func inOnceDo(p *Pass, file *ast.File, target *ast.CallExpr) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, _ := classifySyncCall(p, call); kind != syncOnceDo {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit)
		if !ok {
			return true
		}
		if lit.Body.Pos() <= target.Pos() && target.End() <= lit.Body.End() {
			found = true
		}
		return true
	})
	return found
}

// enclosingLoop finds the innermost for/range statement containing the
// call within the same function body (stopping at func-literal
// boundaries), and the loop-scoped variables it declares per iteration.
func enclosingLoop(p *Pass, file *ast.File, target *ast.CallExpr) (ast.Stmt, []types.Object) {
	var loop ast.Stmt
	var vars []types.Object
	var visit func(n ast.Node, curLoop ast.Stmt, curVars []types.Object) bool
	visit = func(n ast.Node, curLoop ast.Stmt, curVars []types.Object) bool {
		stop := false
		ast.Inspect(n, func(m ast.Node) bool {
			if stop || m == nil {
				return false
			}
			if m == ast.Node(target) {
				loop, vars, stop = curLoop, curVars, true
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				if m.Pos() <= target.Pos() && target.End() <= m.End() {
					// The literal runs on its own schedule; a close inside it
					// is not "per loop iteration" of the outer loop.
					stop = visit(m.Body, nil, nil)
				}
				return false
			case *ast.ForStmt:
				if m.Pos() <= target.Pos() && target.End() <= m.End() && m != n {
					stop = visit(m.Body, m, loopVarsOf(p, m))
					return false
				}
			case *ast.RangeStmt:
				if m.Pos() <= target.Pos() && target.End() <= m.End() && m != n {
					stop = visit(m.Body, m, loopVarsOf(p, m))
					return false
				}
			}
			return true
		})
		return stop
	}
	visit(file, nil, nil)
	return loop, vars
}

// loopVarsOf returns the per-iteration variables a loop declares: range
// key/value, or the for-init's := targets.
func loopVarsOf(p *Pass, loop ast.Stmt) []types.Object {
	var out []types.Object
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	switch loop := loop.(type) {
	case *ast.RangeStmt:
		if loop.Key != nil {
			add(loop.Key)
		}
		if loop.Value != nil {
			add(loop.Value)
		}
	case *ast.ForStmt:
		if as, ok := loop.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
			for _, lhs := range as.Lhs {
				add(lhs)
			}
		}
	}
	return out
}

// closeTargetsLoopVar reports whether the closed expression mentions one
// of the loop's per-iteration variables — `for _, c := range chans {
// close(c) }` closes len(chans) distinct channels, once each.
func closeTargetsLoopVar(p *Pass, arg ast.Expr, loopVars []types.Object) bool {
	if len(loopVars) == 0 {
		return false
	}
	hit := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if containsObj(loopVars, p.Info.Uses[id]) {
				hit = true
			}
		}
		return !hit
	})
	return hit
}

// exitFollowsInLoop reports whether, in the statement list the close
// belongs to, a return/break/panic/goto appears at or below the close's
// position before the list ends — i.e. this iteration is the loop's last.
// The innermost enclosing block wins, so `if done { close(c); break }`
// sees its break even though the if sits inside the loop body.
func exitFollowsInLoop(file *ast.File, loop ast.Stmt, target *ast.CallExpr) bool {
	var list []ast.Stmt
	ast.Inspect(loop, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for _, s := range block.List {
			if s.Pos() <= target.Pos() && target.End() <= s.End() {
				list = block.List // deeper blocks visit later and overwrite
			}
		}
		return true
	})
	if list == nil {
		return false
	}
	reached := false
	for _, s := range list {
		if s.Pos() <= target.Pos() && target.End() <= s.End() {
			reached = true
		}
		if !reached {
			continue
		}
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}
