package lint

import (
	"go/ast"
	"go/types"
)

// HandleCopy enforces the ownership model of the pooled DES records.
// eventq.Event and des.Packet live on free lists with a single owner: the
// queue recycles Events under a generation counter, and the PacketPool's
// free chain assumes exactly one live pointer per record. A by-value copy
// forks the record — the copy's fields (generation, control payload, flow
// bookkeeping) go stale the moment the original is recycled, which is how
// use-after-free bugs enter a pool-based design. Outside the two home
// packages, these records must therefore travel only as pointers:
//
//   - no variables, fields, parameters, results, conversions, or element
//     types of value type eventq.Event / des.Packet;
//   - no dereference copies (`v := *pkt`); the reset idiom
//     `*pkt = des.Packet{...}` stays legal because it writes through the
//     pointer instead of forking the record;
//   - no embedding of eventq.Handle: promoted Scheduled/Time/Cancel on an
//     outer struct read like methods of that struct and hide which event's
//     generation is being consulted.
var HandleCopy = &Analyzer{
	Name:     "handlecopy",
	Category: CategoryDeterminism,
	Doc:      "flags by-value use of pool-owned eventq.Event / des.Packet records and eventq.Handle embedding",
	Run:      runHandleCopy,
}

// poolStructName returns a short name ("eventq.Event" or "des.Packet") when
// t is one of the pool-owned record types, else "".
func poolStructName(t types.Type) string {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "minroute/internal/eventq.Event":
		return "eventq.Event"
	case "minroute/internal/des.Packet":
		return "des.Packet"
	}
	return ""
}

func isHandleType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "minroute/internal/eventq" && n.Obj().Name() == "Handle"
}

func runHandleCopy(p *Pass) {
	if !isModulePath(p.Path) ||
		p.Path == "minroute/internal/eventq" || p.Path == "minroute/internal/des" {
		return
	}
	for _, f := range p.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				for _, field := range x.Fields.List {
					if field.Names == nil && isHandleType(p.Info.TypeOf(field.Type)) {
						p.Reportf(field.Pos(), "embedding eventq.Handle promotes its generation-guarded methods onto the outer struct; use a named field")
					}
				}
			case *ast.CompositeLit:
				name := poolStructName(p.Info.TypeOf(x))
				if name == "" || litIsPointerTarget(parents, x) {
					return true
				}
				p.Reportf(x.Pos(), "%s composite literal creates an unpooled by-value record; allocate via the pool (or &%s{...} at init time)", name, name)
			case *ast.StarExpr:
				tv, ok := p.Info.Types[x]
				if !ok || !tv.IsValue() {
					return true // pointer *type* expression, not a deref
				}
				name := poolStructName(tv.Type)
				if name == "" || isAssignLHS(parents, x) {
					return true
				}
				p.Reportf(x.Pos(), "dereference copies the pool-owned %s record; keep the pointer (writes through it, like *p = %s{...}, are fine)", name, name)
			case ast.Expr:
				tv, ok := p.Info.Types[x]
				if !ok || !tv.IsType() {
					return true
				}
				name := poolStructName(tv.Type)
				if name == "" || typeExprAllowed(parents, x) {
					return true
				}
				p.Reportf(x.Pos(), "value type %s copies a pool-owned record; use *%s", name, name)
				return false
			}
			return true
		})
	}
}

// parentMap records the enclosing node of every node in f.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// typeExprAllowed reports whether a bare pool-struct type expression is in
// a sanctioned position: under a pointer type (*des.Packet), as the operand
// of new(...), or as a composite-literal type (judged by the literal rule).
func typeExprAllowed(parents map[ast.Node]ast.Node, e ast.Expr) bool {
	switch parent := parents[e].(type) {
	case *ast.StarExpr:
		return true
	case *ast.CompositeLit:
		return parent.Type == e
	case *ast.CallExpr:
		if fun, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok && fun.Name == "new" {
			return true
		}
	case *ast.SelectorExpr, *ast.ParenExpr:
		return typeExprAllowed(parents, parent.(ast.Expr))
	}
	return false
}

// litIsPointerTarget reports whether the composite literal is immediately
// taken by address (&T{...}) or written through a pool pointer
// (*p = T{...}), the two non-forking uses.
func litIsPointerTarget(parents map[ast.Node]ast.Node, lit *ast.CompositeLit) bool {
	switch parent := parents[lit].(type) {
	case *ast.UnaryExpr:
		return parent.Op.String() == "&"
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if rhs == ast.Expr(lit) && i < len(parent.Lhs) {
				if _, deref := ast.Unparen(parent.Lhs[i]).(*ast.StarExpr); deref {
					return true
				}
			}
		}
	}
	return false
}

// isAssignLHS reports whether e appears on the left-hand side of the
// assignment that encloses it.
func isAssignLHS(parents map[ast.Node]ast.Node, e ast.Expr) bool {
	assign, ok := parents[e].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range assign.Lhs {
		if lhs == e {
			return true
		}
	}
	return false
}
