package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path. Fixture packages loaded with CheckDir carry
	// a synthetic path chosen by the caller so that path-scoped policies
	// (e.g. "protocol packages only") can be exercised from testdata.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Loader loads and type-checks packages of the enclosing module using only
// the standard library: package discovery and dependency export data come
// from `go list -export -deps -json`, syntax from go/parser, and types from
// go/types with a gc-export-data importer. Nothing outside the target
// package is re-parsed, so a whole-repo run stays fast.
type Loader struct {
	fset    *token.FileSet
	pkgs    map[string]*listPkg
	targets []string
	imp     types.Importer
}

// NewLoader lists patterns (e.g. "./...") relative to dir and prepares the
// import resolver. It fails if any listed package does not compile, which is
// the desired behavior for a commit gate.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	l := &Loader{fset: token.NewFileSet(), pkgs: make(map[string]*listPkg)}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		l.pkgs[p.ImportPath] = &p
		if !p.DepOnly && !p.Standard {
			l.targets = append(l.targets, p.ImportPath)
		}
	}
	sort.Strings(l.targets)
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l, nil
}

// lookup resolves an import to the gc export data `go list -export` placed
// in the build cache.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	p, ok := l.pkgs[path]
	if !ok || p.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(p.Export)
}

// Targets returns the import paths matched by the patterns (dependencies
// excluded), sorted.
func (l *Loader) Targets() []string {
	return append([]string(nil), l.targets...)
}

// Load parses and type-checks one listed package from source. Packages with
// no non-test Go files (e.g. a module root holding only tests) return nil.
func (l *Loader) Load(path string) (*Package, error) {
	p, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %q was not listed", path)
	}
	if len(p.GoFiles) == 0 {
		return nil, nil
	}
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		files[i] = filepath.Join(p.Dir, f)
	}
	return l.check(path, files)
}

// CheckDir parses and type-checks every .go file in dir as a single package
// under the given synthetic import path. It exists for analyzer fixtures in
// testdata directories, which the go tool deliberately does not list.
func (l *Loader) CheckDir(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.check(importPath, files)
}

func (l *Loader) check(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}
