package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix flags memory locations accessed both atomically and with
// plain loads/stores, and the WaitGroup.Add-inside-the-goroutine race.
var AtomicMix = &Analyzer{
	Name:     "atomicmix",
	Category: CategoryConcurrency,
	Doc: `flag fields mixed between sync/atomic and plain access, and WaitGroup.Add inside the spawned goroutine

A word accessed through sync/atomic in one place and with a plain load or
store in another has no synchronization between the two: the race detector
only catches the interleavings that actually run, and the plain access can
be torn or reordered on weak-memory targets. The check collects every
variable or field whose address is passed to a sync/atomic function and
reports every plain (non-atomic) access to the same declaration. Guarded
plain access (under the lock that also orders the atomic side, or in an
init path before the value escapes) is the usual false positive — suppress
with the guard named in the reason.

Separately: sync.WaitGroup.Add called inside the goroutine it accounts
for races with the owner's Wait — Wait can find the counter at zero and
return before the spawned goroutine ever runs Add. Add must happen on the
spawning side, before the go statement.`,
	Run: runAtomicMix,
}

func runAtomicMix(p *Pass) {
	type access struct {
		obj types.Object
		pos token.Pos
	}
	var atomicOps []access                // &x passed to a sync/atomic call, by declaration
	var plainOps []access                 // every other read/write of the same declarations
	atomicArgs := make(map[ast.Node]bool) // the &x nodes themselves, to exclude below

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if obj := lockIdentity(p, u.X); obj != nil {
					atomicOps = append(atomicOps, access{obj, u.Pos()})
					atomicArgs[ast.Node(u)] = true
				}
			}
			return true
		})
	}
	if len(atomicOps) == 0 {
		// Still run the WaitGroup check below even with no atomics in the
		// package.
		checkWGAddPlacement(p)
		return
	}

	// Which declarations are atomic-accessed (ordered, deduped).
	var atomicObjs []types.Object
	for _, a := range atomicOps {
		atomicObjs = appendObj(atomicObjs, a.obj)
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if atomicArgs[n] {
				return false // the sanctioned &x operand of the atomic call
			}
			var obj types.Object
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj = p.Info.Uses[n.Sel]
			case *ast.Ident:
				obj = p.Info.Uses[n]
			default:
				return true
			}
			if obj == nil || !containsObj(atomicObjs, obj) {
				return true
			}
			plainOps = append(plainOps, access{obj, n.Pos()})
			return false
		})
	}

	sort.Slice(plainOps, func(i, j int) bool { return plainOps[i].pos < plainOps[j].pos })
	for _, pl := range plainOps {
		p.Reportf(pl.pos, "%s is accessed with sync/atomic elsewhere; this plain access races with it",
			objDisplay(p, pl.obj))
	}

	checkWGAddPlacement(p)
}

// checkWGAddPlacement reports WaitGroup.Add calls lexically inside the
// body a go statement spawns, unless the WaitGroup itself is declared
// inside that body (a group local to the goroutine is the goroutine's own
// business).
func checkWGAddPlacement(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			inspectSkippingFuncLits(lit.Body, func(m ast.Node) {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return
				}
				kind, obj := classifySyncCall(p, call)
				if kind != syncWGAdd {
					return
				}
				if obj != nil && lit.Body.Pos() <= obj.Pos() && obj.Pos() < lit.Body.End() {
					return // group declared inside this goroutine
				}
				p.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races with Wait; Add before the go statement")
			})
			return true
		})
	}
}
