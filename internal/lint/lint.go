// Package lint is a from-scratch static-analysis driver for this
// repository, built only on the standard library's go/parser, go/ast, and
// go/types (the repo takes no external dependencies, including x/tools).
//
// The analyzers encode the project-specific invariants the parallel figure
// harness depends on. PR 1's guarantee — byte-identical figures at any
// worker count — holds only if every simulation is a pure function of its
// seed: no Go map iteration order, wall-clock reads, or ambient entropy may
// reach protocol state or figure output. Likewise the event-queue and
// packet-pool ownership models (generation-guarded handles, single-owner
// free chains) are conventions the compiler cannot see. mdrcheck turns both
// classes of convention into machine-checked diagnostics on every commit.
//
// Suppressions are per-line annotations with a mandatory reason:
//
//	//lint:maporder-ok keys are collected and sorted before use
//
// placed on the offending line or the line directly above it. An annotation
// without a reason is itself a diagnostic: the point of the suite is that
// every deliberate exception is explained in-tree.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diag is one finding.
type Diag struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Msg)
}

// Analyzer is one check. Run inspects the package via the Pass and reports
// findings with Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	// Category groups the check for display: "determinism" (the PR 2 suite:
	// seed-purity and ownership invariants) or "concurrency" (lock order,
	// goroutine lifecycle, atomic discipline, channel ownership).
	Category string
	Run      func(*Pass)
}

// Analyzer categories, in display order: the determinism suite came first
// and states the repo's core guarantee; the concurrency suite guards the
// live stack and the parallel-DES work on top of it.
const (
	CategoryDeterminism = "determinism"
	CategoryConcurrency = "concurrency"
)

// Categories returns the analyzer categories in display order.
func Categories() []string {
	return []string{CategoryDeterminism, CategoryConcurrency}
}

// All lists every analyzer in the suite, sorted by name.
var All = []*Analyzer{
	AtomicMix, ChanOwn, Exhaustive, FloatEq, GoLifecycle, HandleCopy,
	LockOrder, MapOrder, NoRand, NoWall, TelemetryAttr,
}

// ByName returns the analyzers matching the comma-separated list, or All
// for an empty list.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
	}
	return out, nil
}

// Pass carries one package through one analyzer.
type Pass struct {
	*Package
	check string
	diags *[]Diag
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diag{
		Pos:   p.Fset.Position(pos),
		Check: p.check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// RunPackage runs the analyzers over pkg, applies suppression annotations,
// appends annotation-hygiene diagnostics (missing reason, unknown check),
// and returns the surviving findings sorted by position. A nil pkg (a
// listed package with no lintable files) yields nil.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diag {
	if pkg == nil {
		return nil
	}
	var diags []Diag
	for _, a := range analyzers {
		a.Run(&Pass{Package: pkg, check: a.Name, diags: &diags})
	}
	sup := collectSuppressions(pkg)
	diags = sup.filter(diags)
	diags = append(diags, sup.hygiene()...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// isModulePath reports whether path belongs to this module.
func isModulePath(path string) bool {
	return path == "minroute" || strings.HasPrefix(path, "minroute/")
}

// pathWithin reports whether path is the given module package or a child
// of it (e.g. pathWithin("minroute/cmd/mdrsim", "minroute/cmd")).
func pathWithin(path, root string) bool {
	return path == root || strings.HasPrefix(path, root+"/")
}
