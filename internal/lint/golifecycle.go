package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLifecycle requires every spawned goroutine in non-test code to have a
// provable stop path.
var GoLifecycle = &Analyzer{
	Name:     "goroutine-lifecycle",
	Category: CategoryConcurrency,
	Doc: `flag go statements whose goroutine has no provable stop path

A goroutine with an unconditional for{} loop and no reachable exit runs
until process death: it pins its closure (conns, buffers, tracer rings)
and, in tests, leaks across cases — the PR 6 close-before-export race was
exactly a writer goroutine outliving its owner. For each go statement the
check resolves the spawned body (func literal, in-package function or
method, or a local variable assigned one literal) and scans it plus its
in-package callees for an infinite loop with no exit: no return, break out
of the loop, goto, or panic terminates it. Finite bodies — run to
completion and exit — are fine without any signal. Dynamic targets
(func-typed parameters, interface methods) cannot be proven and are
reported; suppress with the ownership argument (who stops it, how).
Test files are exempt: the leaktest harness owns that side.`,
	Run: runGoLifecycle,
}

func runGoLifecycle(p *Pass) {
	bodies := funcBodies(p)
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, file, bodies, g)
			return true
		})
	}
}

func isTestFile(p *Pass, f *ast.File) bool {
	name := p.Fset.Position(f.Pos()).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

func checkGoStmt(p *Pass, file *ast.File, bodies map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) {
	var root ast.Node
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		root = fun.Body
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			if fd, inPkg := bodies[fn]; inPkg {
				root = fd.Body
				break
			}
			// Named function from another package: no body to inspect.
			p.Reportf(g.Pos(), "goroutine target %s is declared outside this package; stop path cannot be proven", fn.Name())
			return
		}
		if lit := localFuncLit(p, file, fun); lit != nil {
			root = lit.Body
			break
		}
		p.Reportf(g.Pos(), "goroutine target %s is dynamic; stop path cannot be proven", fun.Name)
		return
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd, inPkg := bodies[fn]; inPkg {
				root = fd.Body
				break
			}
			p.Reportf(g.Pos(), "goroutine target %s is declared outside this package; stop path cannot be proven", fn.Name())
			return
		}
		p.Reportf(g.Pos(), "goroutine target is dynamic; stop path cannot be proven")
		return
	default:
		p.Reportf(g.Pos(), "goroutine target is dynamic; stop path cannot be proven")
		return
	}

	// BFS from the spawned body over in-package callees, looking for an
	// infinite loop with no exit. Func literals inside a body run only if
	// something invokes them; a nested `go` is that nested statement's
	// problem — each GoStmt is checked where it appears.
	seen := make(map[ast.Node]bool)
	queue := []ast.Node{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		var loopPos token.Pos
		ast.Inspect(cur, func(n ast.Node) bool {
			if loopPos.IsValid() {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return n.Body == cur
			case *ast.GoStmt:
				return false
			case *ast.ForStmt:
				if n.Cond == nil && !forStmtExits(n) {
					loopPos = n.Pos()
					return false
				}
			case *ast.CallExpr:
				if fn := calleeOf(p, n); fn != nil {
					if fd, inPkg := bodies[fn]; inPkg && !seen[ast.Node(fd.Body)] {
						queue = append(queue, fd.Body)
					}
				}
			}
			return true
		})
		if loopPos.IsValid() {
			p.Reportf(g.Pos(), "goroutine has no provable stop path: unconditional loop at %s never exits",
				p.Fset.Position(loopPos))
			return
		}
	}
}

// forStmtExits reports whether an unconditional for loop's body contains
// any way out: a return, a break that targets it (unlabeled at its own
// nesting level, or any labeled break/goto), or a call to panic.
func forStmtExits(loop *ast.ForStmt) bool {
	exits := false
	var scan func(n ast.Node, breakable bool)
	scan = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if exits {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				// An unlabeled break inside binds to this inner statement, so
				// rescan its subtree with breaks disarmed; returns and labeled
				// branches still count.
				for _, child := range childStmtLists(m) {
					for _, s := range child {
						scan(s, false)
					}
				}
				return false
			case *ast.BranchStmt:
				switch m.Tok {
				case token.BREAK:
					if breakable || m.Label != nil {
						exits = true
					}
				case token.GOTO:
					exits = true
				}
			case *ast.CallExpr:
				// panic unwinds out of the loop. Identifier check only: the
				// fixture packages type-check, so a local shadow would be
				// visible, and plumbing the Pass here isn't worth it.
				if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "panic" {
					exits = true
				}
			}
			return true
		})
	}
	scan(loop.Body, true)
	return exits
}

// childStmtLists returns the statement lists nested directly under a
// loop/switch/select node, for rescan with unlabeled breaks disarmed.
func childStmtLists(n ast.Node) [][]ast.Stmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return [][]ast.Stmt{n.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{n.Body.List}
	case *ast.SwitchStmt:
		return clauseBodies(n.Body)
	case *ast.TypeSwitchStmt:
		return clauseBodies(n.Body)
	case *ast.SelectStmt:
		return clauseBodies(n.Body)
	}
	return nil
}

func clauseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}
