// Package fixture exercises the floateq analyzer: raw equality between
// floats is flagged; zero sentinels, the NaN probe, and integer equality
// are not.
package fixture

func eq(a, b float64) bool {
	return a == b // want `floating-point ==`
}

func ne(a, b float32) bool {
	return a != b // want `floating-point !=`
}

func threshold(a float64) bool {
	return a == 0.25 // want `floating-point ==`
}

func zeroSentinel(a float64) bool {
	return a == 0 // exact zero is assigned, never computed
}

func nanProbe(a float64) bool {
	return a != a // the portable IsNaN
}

func intsFine(a, b int) bool {
	return a == b
}

func suppressed(a float64) bool {
	//lint:floateq-ok fixture: comparing against a value copied verbatim
	return a == 1.5
}
