// Package fixture exercises the maporder analyzer: order-sensitive map
// loops are flagged, provably commutative ones are not, and suppressions
// without a reason are themselves diagnostics.
package fixture

func orderSensitiveAppend(m map[int]float64) []int {
	var out []int
	for k := range m { // want `order-sensitive`
		out = append(out, k)
	}
	return out
}

func orderSensitiveFloatSum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want `order-sensitive`
		s += v // float accumulation: rounding depends on summation order
	}
	return s
}

func orderSensitiveGuard(m map[int]int, out map[int]int) {
	count := 0
	for k, v := range m { // want `order-sensitive`
		if count < 3 { // reads a variable the body mutates
			out[k] = v
		}
		count++
	}
}

func commutative(m map[int]int, other map[int]int) int {
	n := 0
	for k, v := range m {
		other[k] = v // distinct-key write
		n += v       // integer accumulation
	}
	for k := range m {
		delete(other, k) // distinct-key delete
	}
	return n
}

func commutativeGuardAndBucket(m map[int]int, indeg []int, preds map[int][]int64) {
	for k, v := range m {
		if v > 0 { // condition reads only loop vars
			indeg[k]++
			preds[k] = append(preds[k], int64(v)) // conversions are pure
		}
	}
}

func suppressedWithReason(m map[int]int) []int {
	var out []int
	//lint:maporder-ok fixture: caller sorts the keys afterwards
	for k := range m {
		out = append(out, k)
	}
	return out
}

func suppressedWithoutReason(m map[int]int) []int {
	var out []int
	// The annotation below has no reason: it suppresses nothing (the range
	// is still flagged) and is itself reported.
	//lint:maporder-ok
	// want:-1 `no reason`
	for k := range m { // want `order-sensitive`
		out = append(out, k)
	}
	return out
}

func unknownCheckName() {
	//lint:bogus-ok this check does not exist
	// want:-1 `unknown check`
}
