// Package fixture exercises the atomicmix analyzer: fields touched both
// through sync/atomic and with plain loads/stores are flagged at every
// plain access, and WaitGroup.Add inside the spawned goroutine is flagged
// unless the group is the goroutine's own local.
package fixture

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits int64
	cold int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want `plain access races`
}

func (c *counter) reset() {
	c.hits = 0 // want `plain access races`
}

// cold is plain-only: no atomic access anywhere, so no finding.
func (c *counter) coldRead() int64 {
	return c.cold
}

// snapshot documents a guarded plain read with a reasoned suppression.
type gauge struct {
	mu  sync.Mutex
	val int64
}

func (g *gauge) add(d int64) {
	atomic.AddInt64(&g.val, d)
}

func (g *gauge) snapshot() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val //lint:atomicmix-ok fixture: pretend mu orders this read against every atomic writer
}

func (c *counter) reasonless() int64 {
	//lint:atomicmix-ok
	// want:-1 `no reason`
	return c.hits // want `plain access races`
}

func spawnWorkers(n int) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want `Add inside the spawned goroutine`
			defer wg.Done()
		}()
	}
	return &wg
}

// A group declared inside the goroutine is that goroutine's own business.
func fanOutLocal(jobs []func()) {
	go func() {
		var inner sync.WaitGroup
		for _, j := range jobs {
			inner.Add(1)
			go func() {
				defer inner.Done()
				j()
			}()
		}
		inner.Wait()
	}()
}

// The correct shape: Add on the spawning side, before the go statement.
func spawnCounted(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
