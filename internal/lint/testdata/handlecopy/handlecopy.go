// Package fixture exercises the handlecopy analyzer: by-value uses of the
// pool-owned eventq.Event / des.Packet records and eventq.Handle embedding
// are flagged; pointer plumbing and the *p reset idiom are not.
package fixture

import (
	"minroute/internal/des"
	"minroute/internal/eventq"
)

type holder struct {
	eventq.Handle // want `embedding eventq.Handle`

	named eventq.Handle // a named Handle field is the intended pattern
	pkt   *des.Packet
	buf   []des.Packet // want `value type des.Packet`
}

func copyOut(p *des.Packet) {
	shadow := *p // want `dereference copies`
	_ = shadow
}

func reset(p *des.Packet) {
	*p = des.Packet{FlowID: -1} // writing through the pointer is the documented idiom
}

func byValueParam(p des.Packet) float64 { // want `value type des.Packet`
	return p.Bits
}

func fresh() *des.Packet {
	if alwaysTrue() {
		return &des.Packet{} // address-of literal: no value copy escapes
	}
	return new(des.Packet)
}

func convert(v any) des.Packet { // want `value type des.Packet`
	return v.(des.Packet) // want `value type des.Packet`
}

func handleByValue(h eventq.Handle) bool {
	return h.Scheduled() // Handle itself is a cheap, always-safe value type
}

func alwaysTrue() bool { return true }

func suppressed(p *des.Packet) des.Packet { // want `value type des.Packet`
	//lint:handlecopy-ok fixture: snapshot for a post-mortem dump
	return *p
}
