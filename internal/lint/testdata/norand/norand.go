// Package fixture exercises the norand analyzer: ambient-entropy imports
// and wall-clock reads are flagged; time.Duration arithmetic is not.
package fixture

import (
	"math/rand" // want `ambient entropy`
	"time"
)

func draw() int {
	return rand.Int()
}

func stamp() int64 {
	return time.Now().UnixNano() // want `wall clock`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `wall clock`
}

func pause() {
	time.Sleep(time.Millisecond) // want `wall clock`
}

func window() time.Duration {
	return 3 * time.Second // durations are values, not clock reads
}

func sanctioned() int64 {
	//lint:norand-ok fixture: pretend this is operator-facing progress output
	return time.Now().UnixNano()
}
