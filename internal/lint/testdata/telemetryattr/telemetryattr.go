// Package fixture exercises the telemetry-attr analyzer: ad-hoc string
// literals typed as telemetry.AttrKey are flagged, the declared constants
// and matching literals are not, and reasoned suppressions work.
package fixture

import "minroute/internal/telemetry"

// declared constants are the sanctioned spelling.
var viaConstant = telemetry.AttrRouter

// a literal that matches a declared attribute value is permitted (the
// analyzer checks values, not spellings).
var matchingLiteral telemetry.AttrKey = "router"

var conversionMatching = telemetry.AttrKey("flow")

// ad-hoc keys no exporter or reader recognizes are diagnostics.
var typoAssign telemetry.AttrKey = "Router" // want `"Router" is not a declared telemetry attribute`

var typoConversion = telemetry.AttrKey("flow_id") // want `"flow_id" is not a declared telemetry attribute`

func comparisons(k telemetry.AttrKey) bool {
	if k == "value" { // fine: matches AttrValue
		return true
	}
	return k == "val" // want `"val" is not a declared telemetry attribute`
}

func inCompositeLiteral() []telemetry.AttrKey {
	return []telemetry.AttrKey{
		telemetry.AttrSeq,
		"kind",
		"sequence", // want `"sequence" is not a declared telemetry attribute`
	}
}

// a reasoned suppression covers an experimental key.
//
//lint:telemetry-attr-ok exercising the suppression path for a hyphenated check name
var suppressed = telemetry.AttrKey("experimental")

// plain strings never trip the check: only AttrKey-typed literals do.
var plainString = "not_an_attr"
