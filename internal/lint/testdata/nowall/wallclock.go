// The exemption for internal/node's wallclock.go is keyed on the package
// path, not just the file name — a file called wallclock.go anywhere else
// stays covered.
package fixture

import "time"

func impostor() time.Time {
	return time.Now() // want `direct wall-clock read`
}
