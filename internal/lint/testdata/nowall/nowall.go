// Package fixture exercises the nowall analyzer: direct wall-clock reads
// (time.Now, time.Since) are flagged; timers, sleeps, and duration values
// are not — those belong to norand's jurisdiction in simulation code.
package fixture

import "time"

func stamp() time.Time {
	return time.Now() // want `direct wall-clock read`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `direct wall-clock read`
}

func pause() {
	time.Sleep(time.Millisecond) // waiting is fine; reading the clock is not
}

func arm(fn func()) *time.Timer {
	return time.AfterFunc(time.Second, fn)
}

func window() time.Duration {
	return 3 * time.Second
}

func sanctioned() time.Time {
	//lint:nowall-ok fixture: pretend this is the wall-clock adapter
	return time.Now()
}
