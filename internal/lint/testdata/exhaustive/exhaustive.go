// Package fixture exercises the exhaustive analyzer: a switch over a
// project enum that misses constants and has no default is flagged.
package fixture

import "fmt"

// Phase is a project enum: a named integer type with >= 2 typed constants.
type Phase int

const (
	PhaseIdle Phase = iota
	PhaseActive
	PhaseDone
	// PhaseFinal aliases PhaseDone's value; aliases count once.
	PhaseFinal = PhaseDone
)

func missingCase(p Phase) string {
	switch p { // want `misses PhaseDone`
	case PhaseIdle:
		return "idle"
	case PhaseActive:
		return "active"
	}
	return ""
}

func covered(p Phase) string {
	switch p {
	case PhaseIdle, PhaseActive:
		return "running"
	case PhaseDone:
		return "done"
	}
	return ""
}

func defaulted(p Phase) string {
	switch p {
	case PhaseIdle:
		return "idle"
	default:
		return fmt.Sprint(int(p))
	}
}

func nonEnum(n int) string {
	switch n { // plain ints are not an enum
	case 1:
		return "one"
	}
	return ""
}

func suppressed(p Phase) bool {
	//lint:exhaustive-ok fixture: only the idle transition matters here
	switch p {
	case PhaseIdle:
		return true
	}
	return false
}
