// Package fixture exercises the chanown analyzer: close of an ordinary
// channel parameter, double-close-prone multi-site closes of a field, and
// close inside a loop are flagged; the chan<- producer hand-off,
// per-element range closes, close-then-break, and sync.Once-guarded
// closes stay quiet.
package fixture

import "sync"

func drainAndClose(ch chan int) {
	for range ch {
	}
	close(ch) // want `close of parameter`
}

// A send-only parameter is the documented producer hand-off: the callee
// is being handed the pen, and closing is its job.
func produce(out chan<- int, n int) {
	for i := 0; i < n; i++ {
		out <- i
	}
	close(out)
}

type worker struct {
	done chan struct{}
	once sync.Once
	out  chan int
}

func (w *worker) stop() {
	close(w.done) // want `closed at 2 sites`
}

func (w *worker) abort() {
	close(w.done) // want `closed at 2 sites`
}

// Once-guarded close: multiple callers, still exactly one close.
func (w *worker) shutdown() {
	w.once.Do(func() {
		close(w.out)
	})
}

func closeEachRetry(chans []chan int, attempts int) {
	for i := 0; i < attempts; i++ {
		close(chans[0]) // want `close inside a loop`
	}
}

// Closing each element of a collection closes len(chans) distinct
// channels, once each.
func closeAll(chans []chan int) {
	for _, c := range chans {
		close(c)
	}
}

// close-then-break: the iteration that closes is the loop's last.
func closeFirstIdle(pool []chan int, idle func(int) bool) {
	for i := range pool {
		if idle(i) {
			close(pool[i])
			break
		}
	}
}

type relay struct {
	feed chan int
}

// closeA carries the reasoned suppression; closeB shows the multi-site
// diagnostic still firing on the unsuppressed site.
func (r *relay) closeA() {
	//lint:chanown-ok fixture: pretend closeA and closeB are serialized by the relay's single-threaded owner
	close(r.feed)
}

func (r *relay) closeB() {
	close(r.feed) // want `closed at 2 sites`
}

func closeParamReasonless(ch chan int) {
	//lint:chanown-ok
	// want:-1 `no reason`
	close(ch) // want `close of parameter`
}
