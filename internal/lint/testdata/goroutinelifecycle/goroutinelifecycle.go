// Package fixture exercises the goroutine-lifecycle analyzer: spawned
// bodies whose unconditional loops never exit (the leaked-goroutine
// shapes) are flagged at the go statement; loops with a done-channel
// return, error exit, or finite bodies stay quiet.
package fixture

func spawnLit() {
	go func() { // want `no provable stop path`
		for {
		}
	}()
}

func hotLoop() {
	n := 0
	for {
		n++
	}
}

func spawnNamed() {
	go hotLoop() // want `no provable stop path`
}

func outer() {
	hotLoop()
}

func spawnTransitive() {
	go outer() // want `no provable stop path`
}

func spawnLocal() {
	loop := func() {
		for {
		}
	}
	go loop() // want `no provable stop path`
}

// The break binds to the switch, not the loop: still no way out.
func spawnSwitchBreak(events chan int) {
	go func() { // want `no provable stop path`
		for {
			switch <-events {
			case 0:
				break
			}
		}
	}()
}

func spawnDynamic(f func()) {
	go f() // want `dynamic`
}

// The quiet shapes.

func spawnDone(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

func spawnErrExit(next func() error) {
	go func() {
		for {
			if next() != nil {
				return
			}
		}
	}()
}

func spawnFinite(results chan<- int) {
	go func() {
		results <- 42
	}()
}

func spawnManaged(f func()) {
	//lint:goroutine-lifecycle-ok fixture: pretend the scheduler owns f and joins it on Close
	go f()
}

func spawnReasonless() {
	//lint:goroutine-lifecycle-ok
	// want:-1 `no reason`
	go func() { // want `no provable stop path`
		for {
		}
	}()
}
