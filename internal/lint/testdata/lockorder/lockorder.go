// Package fixture exercises the lockorder analyzer: a deliberate
// lock-order deadlock, re-acquisition, leaked locks on early returns,
// blocking channel ops and WaitGroup.Wait while holding a mutex — and the
// shapes that must stay quiet: defer-paired locks, branch-balanced
// unlocks, Cond.Wait, and select with a default.
package fixture

import "sync"

type server struct {
	a  sync.Mutex
	b  sync.Mutex
	mu sync.Mutex
	q  chan int
}

// abOrder and baOrder together are the deliberate deadlock: two goroutines
// running them concurrently can each hold one lock and wait for the other.
func (s *server) abOrder() {
	s.a.Lock()
	s.b.Lock() // want `lock-order cycle`
	s.b.Unlock()
	s.a.Unlock()
}

func (s *server) baOrder() {
	s.b.Lock()
	s.a.Lock() // want `lock-order cycle`
	s.a.Unlock()
	s.b.Unlock()
}

func (s *server) reLock() {
	s.mu.Lock()
	s.mu.Lock() // want `already held`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *server) locked() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (s *server) viaCall() {
	s.mu.Lock()
	s.locked() // want `may re-acquire`
	s.mu.Unlock()
}

func (s *server) leakyReturn(fail bool) int {
	s.mu.Lock()
	if fail {
		return -1 // want `no Unlock on this path`
	}
	s.mu.Unlock()
	return 0
}

func (s *server) blockingSend(v int) {
	s.mu.Lock()
	s.q <- v // want `channel send while`
	s.mu.Unlock()
}

func (s *server) blockingRecv() int {
	s.mu.Lock()
	v := <-s.q // want `channel receive while`
	s.mu.Unlock()
	return v
}

func (s *server) blockingSelect() {
	s.mu.Lock()
	select { // want `select with no default`
	case v := <-s.q:
		_ = v
	}
	s.mu.Unlock()
}

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

func (p *pool) drainLocked() {
	p.mu.Lock()
	p.wg.Wait() // want `WaitGroup.Wait while`
	p.mu.Unlock()
}

func (s *server) loopAcquire(n int) {
	for i := 0; i < n; i++ { // want `loop body acquires`
		s.mu.Lock()
	}
}

// The quiet shapes.

func (s *server) deferUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q)
}

func (s *server) branchBalanced(flag bool) int {
	s.mu.Lock()
	if flag {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

func (s *server) tryNotify() {
	s.mu.Lock()
	select {
	case s.q <- 1:
	default:
	}
	s.mu.Unlock()
}

type condQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (c *condQueue) waitNonEmpty() {
	c.mu.Lock()
	for c.n == 0 {
		c.cond.Wait()
	}
	c.n--
	c.mu.Unlock()
}

// handoffLocked returns with the lock deliberately held; the reasoned
// suppression documents the hand-off contract and silences the leak
// diagnostic on the return.
func (s *server) handoffLocked() *server {
	s.mu.Lock()
	//lint:lockorder-ok fixture: caller receives s.mu held and must call Unlock
	return s
}

func (s *server) reasonless(v int) {
	s.mu.Lock()
	s.q <- v //lint:lockorder-ok
	// want:-1 `no reason`
	// want:-2 `channel send while`
	s.mu.Unlock()
}
