package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loader lists and type-checks against the real module, so build it
// once: `go list -export` dominates the cost.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		// The test runs with cwd internal/lint; the module root is two up.
		loaderVal, loaderErr = NewLoader(filepath.Join("..", ".."), "./...")
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loaderVal
}

// want is one expectation parsed from a fixture comment. The forms
//
//	code // want `regex`
//	// want:-1 `regex`   (expectation for the line above, used when the
//	                      diagnosed line is itself a comment)
//
// bind a message regex to a file:line. The golden contract: every want
// must be matched by a diagnostic on its line and every diagnostic must be
// matched by a want — so each fixture fails without its analyzer and
// passes with it.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("// want(:[+-]?\\d+)? `([^`]+)`")

func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					var off int
					fmt.Sscanf(m[1], ":%d", &off)
					line += off
				}
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s: bad want regex: %v", pos, err)
				}
				wants = append(wants, &want{file: pos.Filename, line: line, re: re})
			}
		}
	}
	return wants
}

// runFixture loads testdata/<name> under a synthetic minroute import path
// (so path-scoped analyzer policies apply) and checks its diagnostics
// against the // want expectations.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	pkg, err := testLoader(t).CheckDir("minroute/internal/fixture/"+name, filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, analyzers)
	wants := parseWants(t, pkg)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Msg) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestMapOrderFixture(t *testing.T)   { runFixture(t, "maporder", MapOrder) }
func TestNoRandFixture(t *testing.T)     { runFixture(t, "norand", NoRand) }
func TestNoWallFixture(t *testing.T)     { runFixture(t, "nowall", NoWall) }
func TestFloatEqFixture(t *testing.T)    { runFixture(t, "floateq", FloatEq) }
func TestHandleCopyFixture(t *testing.T) { runFixture(t, "handlecopy", HandleCopy) }
func TestExhaustiveFixture(t *testing.T) { runFixture(t, "exhaustive", Exhaustive) }
func TestTelemetryAttrFixture(t *testing.T) {
	runFixture(t, "telemetryattr", TelemetryAttr)
}
func TestLockOrderFixture(t *testing.T)   { runFixture(t, "lockorder", LockOrder) }
func TestGoLifecycleFixture(t *testing.T) { runFixture(t, "goroutinelifecycle", GoLifecycle) }
func TestAtomicMixFixture(t *testing.T)   { runFixture(t, "atomicmix", AtomicMix) }
func TestChanOwnFixture(t *testing.T)     { runFixture(t, "chanown", ChanOwn) }

// TestFixturesFailWithoutAnalyzer is the other half of the golden
// contract: with the analyzer disabled, the fixtures' want expectations
// must go unmatched. Guards against an analyzer that silently reports
// nothing (and a harness that silently accepts that).
func TestFixturesFailWithoutAnalyzer(t *testing.T) {
	for _, name := range []string{
		"maporder", "norand", "nowall", "floateq", "handlecopy", "exhaustive", "telemetryattr",
		"lockorder", "goroutinelifecycle", "atomicmix", "chanown",
	} {
		pkg, err := testLoader(t).CheckDir("minroute/internal/fixture/"+name, filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		diags := RunPackage(pkg, nil) // suppression hygiene only
		wants := parseWants(t, pkg)
		unmatched := 0
		for _, w := range wants {
			hit := false
			for _, d := range diags {
				if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Msg) {
					hit = true
				}
			}
			if !hit {
				unmatched++
			}
		}
		if unmatched == 0 {
			t.Errorf("%s: every want still matched with the analyzer disabled; the fixture tests nothing", name)
		}
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// invocation as `make lint` — and requires zero findings. This keeps the
// commit gate's guarantee checkable from `go test ./...` alone.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint skipped in -short mode")
	}
	l := testLoader(t)
	for _, path := range l.Targets() {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range RunPackage(pkg, All) {
			t.Errorf("%s", d)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(All))
	}
	two, err := ByName("maporder, floateq")
	if err != nil || len(two) != 2 || two[0].Name != "maporder" || two[1].Name != "floateq" {
		t.Fatalf("ByName(maporder, floateq) = %v, err %v", two, err)
	}
	if _, err := ByName("nosuchcheck"); err == nil || !strings.Contains(err.Error(), "nosuchcheck") {
		t.Fatalf("ByName(nosuchcheck) err = %v; want unknown-check error", err)
	}
}

// TestSuppressionRequiresReason pins the suppression policy at the API
// level: a reasonless annotation both fails to suppress and is reported.
func TestSuppressionRequiresReason(t *testing.T) {
	pkg, err := testLoader(t).CheckDir("minroute/internal/fixture/maporder", filepath.Join("testdata", "maporder"))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, []*Analyzer{MapOrder})
	var reasonless, unknown bool
	for _, d := range diags {
		if d.Check == "suppression" && strings.Contains(d.Msg, "no reason") {
			reasonless = true
		}
		if d.Check == "suppression" && strings.Contains(d.Msg, "unknown check") {
			unknown = true
		}
	}
	if !reasonless {
		t.Error("reasonless //lint:maporder-ok was not reported")
	}
	if !unknown {
		t.Error("//lint:bogus-ok with an unknown check name was not reported")
	}
}
