package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive flags a switch over a project enum (a named integer type
// declared in this module with at least two typed constants, e.g.
// router.Mode or lsu.Op) that neither covers every constant nor declares a
// default. Such a switch silently drops newly added modes/ops — the
// forwarding-plane switch in router.pickNextHop is exactly where a new
// Mode would otherwise vanish into a zero value.
var Exhaustive = &Analyzer{
	Name:     "exhaustive",
	Category: CategoryDeterminism,
	Doc:      "flags switches over project enums that miss constants and have no default",
	Run:      runExhaustive,
}

func runExhaustive(p *Pass) {
	if !isModulePath(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(p, sw)
			return true
		})
	}
}

// enumConst is one declared constant of the enum type.
type enumConst struct {
	name  string
	value constant.Value
}

func checkSwitch(p *Pass, sw *ast.SwitchStmt) {
	named, ok := types.Unalias(p.Info.TypeOf(sw.Tag)).(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !isModulePath(named.Obj().Pkg().Path()) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	consts := enumConstants(named)
	if len(consts) < 2 {
		return
	}

	covered := make(map[string]bool)
	for _, clause := range sw.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			return // default clause: the author chose a catch-all
		}
		for _, e := range cc.List {
			tv, ok := p.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: cannot reason about coverage
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	seen := make(map[string]bool)
	for _, c := range consts {
		key := c.value.ExactString()
		if covered[key] || seen[key] {
			continue // iota aliases count once
		}
		seen[key] = true
		missing = append(missing, c.name)
	}
	if len(missing) > 0 {
		p.Reportf(sw.Switch, "switch over %s.%s misses %s; add the cases, a default, or //lint:exhaustive-ok <reason>",
			named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// enumConstants returns the package-level constants declared with exactly
// the named type, sorted by value then name.
func enumConstants(named *types.Named) []enumConst {
	scope := named.Obj().Pkg().Scope()
	var out []enumConst
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, enumConst{name: name, value: c.Val()})
	}
	sort.Slice(out, func(i, j int) bool {
		vi, vj := out[i].value, out[j].value
		if constant.Compare(vi, token.LSS, vj) {
			return true
		}
		if constant.Compare(vj, token.LSS, vi) {
			return false
		}
		return out[i].name < out[j].name
	})
	return out
}
