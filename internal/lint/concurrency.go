package lint

import (
	"go/ast"
	"go/types"
)

// This file holds the AST/type plumbing shared by the concurrency-safety
// analyzers (lockorder, goroutine-lifecycle, atomicmix, chanown): resolving
// call targets to in-package bodies, classifying sync-package calls, and
// naming mutex/channel identities for diagnostics.
//
// The shared approximation: analysis is per package (the driver runs it
// over every module package, but call edges into other packages are
// invisible — only export data exists for dependencies), function values
// resolve only when they are package functions, methods with in-package
// declarations, or locals assigned exactly one func literal, and func
// literals are analyzed as their own entry points rather than inlined at
// the site that creates them (a closure handed to AfterFunc runs later, on
// another goroutine, under different locks than its birthplace).

// funcBodies maps every function and method *declared in this package* to
// its body, keyed by types object — the resolution table for intra-package
// call edges.
func funcBodies(p *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes: a package function, or a method named through a concrete
// receiver. Interface methods resolve to the interface's method object,
// which deliberately matches no in-package declaration; func-typed values
// resolve to nil.
func calleeOf(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// localFuncLit resolves an identifier used as a call/spawn target to the
// single func literal assigned to it within scope (the `run := func(...)
// {...}; go run(...)` idiom). Reassigned or conditionally assigned
// variables resolve to the last literal seen — an approximation; code that
// juggles func-typed locals should not expect lifecycle proofs.
func localFuncLit(p *Pass, file *ast.File, id *ast.Ident) *ast.FuncLit {
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	var lit *ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if p.Info.Defs[lid] != obj && p.Info.Uses[lid] != obj {
				continue
			}
			if fl, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				lit = fl
			}
		}
		return true
	})
	return lit
}

// syncCallKind classifies calls into the sync package's blocking and
// lock-shaped primitives.
type syncCallKind int

const (
	syncNone      syncCallKind = iota
	syncLock                   // Mutex.Lock, RWMutex.Lock/RLock
	syncUnlock                 // Mutex.Unlock, RWMutex.Unlock/RUnlock
	syncCondWait               // Cond.Wait: releases its Locker while parked
	syncWaitGroup              // WaitGroup.Wait: blocks until the group drains
	syncWGAdd                  // WaitGroup.Add
	syncOnceDo                 // Once.Do
)

// classifySyncCall identifies sync-package method calls, returning the
// kind and, for lock/unlock, the identity of the mutex operand (see
// lockIdentity).
func classifySyncCall(p *Pass, call *ast.CallExpr) (syncCallKind, types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return syncNone, nil
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return syncNone, nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return syncNone, nil
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return syncNone, nil
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		switch fn.Name() {
		case "Lock", "RLock":
			return syncLock, lockIdentity(p, sel.X)
		case "Unlock", "RUnlock":
			return syncUnlock, lockIdentity(p, sel.X)
		}
	case "Cond":
		if fn.Name() == "Wait" {
			return syncCondWait, nil
		}
	case "WaitGroup":
		switch fn.Name() {
		case "Wait":
			return syncWaitGroup, lockIdentity(p, sel.X)
		case "Add":
			return syncWGAdd, lockIdentity(p, sel.X)
		}
	case "Once":
		if fn.Name() == "Do" {
			return syncOnceDo, nil
		}
	}
	return syncNone, nil
}

// lockIdentity names a mutex (or WaitGroup) operand by its declaration: a
// struct field keys every instance of that type to one identity (the lock
// *role*, which is what an ordering discipline is about), a variable keys
// itself. Expressions the analysis cannot name (map index, call result)
// yield nil and are not tracked.
func lockIdentity(p *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return lockIdentity(p, e.X)
		}
	}
	return nil
}

// objDisplay renders a lock identity for diagnostics: fields as
// "Type.field" (via the declared receiver struct), variables by name.
func objDisplay(p *Pass, obj types.Object) string {
	v, ok := obj.(*types.Var)
	if ok && v.IsField() {
		if owner := fieldOwner(p, v); owner != "" {
			return owner + "." + v.Name()
		}
	}
	return obj.Name()
}

// fieldOwner finds the named struct type declaring field v, scanning the
// package's type declarations (types.Var carries no back-pointer).
func fieldOwner(p *Pass, v *types.Var) string {
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}
