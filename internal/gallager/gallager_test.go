package gallager

import (
	"math"
	"testing"
	"testing/quick"

	"minroute/internal/alloc"
	"minroute/internal/dijkstra"
	"minroute/internal/fluid"
	"minroute/internal/graph"
	"minroute/internal/linkcost"
	"minroute/internal/topo"
)

const pktBits = 8000.0

// diamond builds s(0) -> {a(1), b(2)} -> d(3) with capacities capA on the
// a-branch and capB on the b-branch.
func diamond(t testing.TB, capA, capB float64) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, n := range []string{"s", "a", "b", "d"} {
		g.AddNode(n)
	}
	for _, e := range []struct {
		a, b graph.NodeID
		c    float64
	}{{0, 1, capA}, {1, 3, capA}, {0, 2, capB}, {2, 3, capB}} {
		if err := g.AddDuplex(e.a, e.b, e.c, 0.0005); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// bruteForceDiamond finds the optimal split p (fraction on the a-branch) by
// golden-section search on the convex total delay.
func bruteForceDiamond(g *graph.Graph, rate float64) (float64, float64) {
	eval := func(p float64) float64 {
		rt := fluid.RoutingFunc(func(i, j graph.NodeID) alloc.Params {
			if j != 3 {
				return nil
			}
			switch i {
			case 0:
				return alloc.Params{1: p, 2: 1 - p}
			case 1, 2:
				return alloc.Single(3)
			}
			return nil
		})
		cfg := fluid.Config{Graph: g, MeanPacketBits: pktBits, Flows: []topo.Flow{{Src: 0, Dst: 3, Rate: rate}}}
		res, err := fluid.Solve(cfg, rt)
		if err != nil {
			return math.Inf(1)
		}
		d, err := fluid.Delays(cfg, rt, res)
		if err != nil {
			return math.Inf(1)
		}
		return d.TotalDelay
	}
	lo, hi := 0.0, 1.0
	phi := (math.Sqrt(5) - 1) / 2
	for i := 0; i < 100; i++ {
		m1 := hi - phi*(hi-lo)
		m2 := lo + phi*(hi-lo)
		if eval(m1) < eval(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	p := (lo + hi) / 2
	return p, eval(p)
}

func TestOPTMatchesBruteForceOnDiamond(t *testing.T) {
	g := diamond(t, 10e6, 5e6) // a-branch twice as fast
	rate := 8e6                // heavy enough that one branch cannot carry it well
	flows := []topo.Flow{{Src: 0, Dst: 3, Rate: rate}}
	res, err := Solve(g, flows, Options{MeanPacketBits: pktBits})
	if err != nil {
		t.Fatal(err)
	}
	_, wantDT := bruteForceDiamond(g, rate)
	if rel := math.Abs(res.TotalDelay-wantDT) / wantDT; rel > 0.01 {
		t.Fatalf("OPT D_T = %v, brute force %v (rel %v)", res.TotalDelay, wantDT, rel)
	}
	// The optimum puts more traffic on the fast branch.
	p := res.Phi[3][0][1]
	if p <= 0.5 || p >= 1 {
		t.Fatalf("split on fast branch = %v, want in (0.5, 1)", p)
	}
}

func TestOPTNeverWorseThanShortestPath(t *testing.T) {
	for _, build := range []func() *topo.Network{topo.CAIRN, topo.NET1} {
		n := build()
		cfg := fluid.Config{Graph: n.Graph, Flows: n.Flows, MeanPacketBits: pktBits}

		// Shortest-path routing under idle marginal costs.
		idle := func(l *graph.Link) float64 {
			return linkcost.MM1Marginal(0, linkcost.KnownMu(l.Capacity, pktBits), l.PropDelay)
		}
		view := dijkstra.GraphView{G: n.Graph, Cost: idle}
		sp := fluid.RoutingFunc(func(i, j graph.NodeID) alloc.Params {
			nh := dijkstra.Run(view, i).NextHop(j)
			if nh == graph.None {
				return nil
			}
			return alloc.Single(nh)
		})
		spRes, err := fluid.Solve(cfg, sp)
		if err != nil {
			t.Fatal(err)
		}
		spDelay, err := fluid.Delays(cfg, sp, spRes)
		if err != nil {
			t.Fatal(err)
		}

		opt, err := Solve(n.Graph, n.Flows, Options{MeanPacketBits: pktBits})
		if err != nil {
			t.Fatal(err)
		}
		if opt.TotalDelay > spDelay.TotalDelay*(1+1e-9) {
			t.Fatalf("OPT D_T %v worse than SP D_T %v", opt.TotalDelay, spDelay.TotalDelay)
		}
	}
}

func TestOPTConvergesOnCAIRN(t *testing.T) {
	n := topo.CAIRN()
	res, err := Solve(n.Graph, n.Flows, Options{MeanPacketBits: pktBits})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("OPT did not converge in %d iterations", res.Iterations)
	}
	// The final routing must be evaluable (loop-free) with utilization < 1.
	cfg := fluid.Config{Graph: n.Graph, Flows: n.Flows, MeanPacketBits: pktBits}
	fres, err := fluid.Solve(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fluid.Delays(cfg, res, fres)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxUtilization >= 1 {
		t.Fatalf("max utilization %v at OPT", d.MaxUtilization)
	}
	if fres.Lost != 0 {
		t.Fatalf("OPT loses traffic: %v", fres.Lost)
	}
}

func TestOPTSatisfiesOptimalityConditions(t *testing.T) {
	// At the optimum, the marginal distances through next hops carrying
	// flow are equalized (paper Eqs. 10-12). Allow a modest spread: we run
	// a finite iteration on a clamped cost function.
	n := topo.NET1()
	res, err := Solve(n.Graph, n.Flows, Options{MeanPacketBits: pktBits, MaxIters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Equalization(n.Graph, n.Flows, res, pktBits)
	if err != nil {
		t.Fatal(err)
	}
	// Spread is in seconds of marginal delay; idle marginal is ~8e-4 s.
	if spread > 5e-4 {
		t.Fatalf("marginal-distance spread at optimum = %v s, want < 5e-4", spread)
	}
}

func TestOPTUsesMultipleNextHops(t *testing.T) {
	// Under load, the optimum on NET1 must split at least one (i, j) over
	// several next hops — single-path routing is not optimal.
	n := topo.NET1()
	res, err := Solve(n.Graph, n.Flows, Options{MeanPacketBits: pktBits})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for j := range res.Phi {
		for i := range res.Phi[j] {
			used := 0
			for _, v := range res.Phi[j][i] {
				if v > 0.01 {
					used++
				}
			}
			if used > 1 {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Fatal("OPT never splits traffic; expected multipath at optimum")
	}
}

func TestOPTZeroTraffic(t *testing.T) {
	n := topo.NET1()
	res, err := Solve(n.Graph, nil, Options{MeanPacketBits: pktBits})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDelay != 0 {
		t.Fatalf("D_T with no flows = %v, want 0", res.TotalDelay)
	}
}

func TestOPTPropertyLoopFreeAndNoLoss(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		nn := int(n8%6) + 4
		g := topo.Random(seed, nn, nn, 5e6, 10e6, 1e-3)
		flows := []topo.Flow{
			{Src: 0, Dst: graph.NodeID(nn - 1), Rate: 2e6},
			{Src: graph.NodeID(nn - 1), Dst: 0, Rate: 1e6},
			{Src: graph.NodeID(nn / 2), Dst: 0, Rate: 1.5e6},
		}
		res, err := Solve(g, flows, Options{MeanPacketBits: pktBits, MaxIters: 400})
		if err != nil {
			return false
		}
		cfg := fluid.Config{Graph: g, Flows: flows, MeanPacketBits: pktBits}
		fres, err := fluid.Solve(cfg, res)
		if err != nil {
			return false // would indicate a loop: blocking failed
		}
		return fres.Lost == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOPTCAIRN(b *testing.B) {
	n := topo.CAIRN()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(n.Graph, n.Flows, Options{MeanPacketBits: pktBits, MaxIters: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSecondDerivativeAccelerationConverges(t *testing.T) {
	n := topo.NET1()
	plain, err := Solve(n.Graph, n.Flows, Options{MeanPacketBits: pktBits})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := Solve(n.Graph, n.Flows, Options{MeanPacketBits: pktBits, SecondDerivative: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both must reach (essentially) the same optimum.
	if rel := math.Abs(accel.TotalDelay-plain.TotalDelay) / plain.TotalDelay; rel > 0.01 {
		t.Fatalf("second-derivative optimum %v differs from plain %v (rel %v)",
			accel.TotalDelay, plain.TotalDelay, rel)
	}
	if !accel.Converged {
		t.Fatal("second-derivative variant did not converge")
	}
}

func TestSecondDerivativeOnDiamondMatchesBruteForce(t *testing.T) {
	g := diamond(t, 10e6, 5e6)
	rate := 8e6
	flows := []topo.Flow{{Src: 0, Dst: 3, Rate: rate}}
	res, err := Solve(g, flows, Options{MeanPacketBits: pktBits, SecondDerivative: true})
	if err != nil {
		t.Fatal(err)
	}
	_, wantDT := bruteForceDiamond(g, rate)
	if rel := math.Abs(res.TotalDelay-wantDT) / wantDT; rel > 0.01 {
		t.Fatalf("accelerated OPT D_T = %v, brute force %v (rel %v)", res.TotalDelay, wantDT, rel)
	}
}
