// Package gallager implements Gallager's distributed minimum-delay routing
// algorithm (Gallager 1977; the paper's Section 2.2, labeled OPT), which the
// paper uses as the optimal-delay baseline. The iteration solves MDRP: find
// routing parameters φ minimizing the total expected delay D_T.
//
// Each iteration:
//
//  1. Solves the flow equations for the current φ (internal/fluid).
//  2. Computes link marginal delays l_ik = D'_ik(f_ik).
//  3. Computes marginal distances ∂D_T/∂r_ij by the recursion of Eq. 5:
//     ∂D/∂r_ij = Σ_k φ_ijk (l_ik + ∂D/∂r_kj), evaluated in reverse
//     topological order of the (loop-free) routing graph.
//  4. Shifts routing fractions away from non-minimal next hops:
//     Δφ_ijk = min(φ_ijk, η·a_ijk/t_ij), where a_ijk is the excess marginal
//     distance of k over the best neighbor, and adds the total to the best
//     neighbor — honoring Gallager's blocking technique: a neighbor whose
//     current routing is improper (or that forwards through one) may not
//     receive new flow, which preserves loop-freedom at every step.
//
// As the paper stresses, OPT needs a global step size η chosen a priori and
// stationary input traffic; it is "a method for obtaining lower bounds ...
// rather than an algorithm to be used in practice". This implementation
// runs the iteration centrally on the fluid model and adapts η downward
// when an iteration fails to improve D_T, which keeps the lower-bound
// computation robust without changing the fixed points.
package gallager

import (
	"fmt"
	"math"

	"minroute/internal/alloc"
	"minroute/internal/dijkstra"
	"minroute/internal/fluid"
	"minroute/internal/graph"
	"minroute/internal/linkcost"
	"minroute/internal/topo"
)

// Options tunes the solver. Zero values select sensible defaults.
type Options struct {
	// Eta is Gallager's global step size; the line search scales it up and
	// down from here. Default 1.
	Eta float64
	// MaxIters bounds the iteration count. Default 2000.
	MaxIters int
	// Tol is the relative D_T improvement below which the iteration is
	// considered converged. Default 1e-9.
	Tol float64
	// MeanPacketBits converts bit rates to packet rates. Default 8000.
	MeanPacketBits float64
	// SecondDerivative scales each traffic shift by the curvature of the
	// delay function (Bertsekas & Gallager's acceleration, which the paper
	// cites as "us[ing] second derivatives to speed up convergence of
	// Gallager's algorithm"): Δφ = min(φ, η·a/(t_ij·h)) with h the second
	// derivative of the link delay along the shifted direction. Steps are
	// then naturally small on sharply-curved (nearly saturated) links and
	// large on flat ones.
	SecondDerivative bool
}

func (o *Options) setDefaults() {
	if o.Eta <= 0 {
		o.Eta = 1
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MeanPacketBits <= 0 {
		o.MeanPacketBits = 8000
	}
}

// Result is the converged routing.
type Result struct {
	// Phi[j][i] holds φ_ij·, the fractions router i uses for destination j.
	Phi [][]alloc.Params
	// TotalDelay is the final D_T.
	TotalDelay float64
	// Iterations actually performed.
	Iterations int
	// Converged reports whether the relative improvement fell below Tol
	// before MaxIters.
	Converged bool
}

// Fractions implements fluid.Routing.
func (r *Result) Fractions(i, j graph.NodeID) alloc.Params { return r.Phi[j][i] }

// Solve runs the OPT iteration for the given demands.
//
// The update rule is Gallager's; the step size is managed as a backtracking
// line search around it. Each iteration proposes φ' = update(φ, η): if D_T
// does not increase the proposal is accepted (and η doubles after a streak
// of successes, since Gallager's fixed global η has no natural scale for a
// given network); otherwise φ is kept and η halves. Iteration stops when a
// window of iterations brings no relative improvement above Tol.
func Solve(g *graph.Graph, flows []topo.Flow, opt Options) (*Result, error) {
	opt.setDefaults()
	n := g.NumNodes()
	s := &solver{
		g:    g,
		n:    n,
		opt:  opt,
		cfg:  fluid.Config{Graph: g, Flows: flows, MeanPacketBits: opt.MeanPacketBits},
		dest: destSet(flows),
	}
	s.initShortestPath()

	res := &Result{}
	eta := opt.Eta
	best := math.Inf(1)
	lastImprovedIter := 0
	streak := 0
	const stallWindow = 30
	for iter := 0; iter < opt.MaxIters; iter++ {
		res.Iterations = iter + 1
		dt, candidate, err := s.propose(eta)
		if err != nil {
			return nil, err
		}
		if dt < best*(1-opt.Tol) {
			lastImprovedIter = iter
		}
		if dt < best {
			best = dt
		}
		dtNew, okCand := s.evaluate(candidate)
		if okCand && dtNew <= dt*(1+1e-12) {
			s.phi = candidate
			streak++
			if streak >= 3 {
				eta *= 2
				streak = 0
			}
		} else {
			// Overshoot (or the candidate formed a loop despite blocking,
			// which the fluid solver rejects): keep φ, shrink the step.
			eta /= 2
			streak = 0
			if eta < opt.Eta*1e-12 {
				break
			}
		}
		if iter-lastImprovedIter >= stallWindow {
			res.Converged = true
			break
		}
	}
	if final, ok := s.evaluate(s.phi); ok {
		best = math.Min(best, final)
	}
	res.Phi = s.phi
	res.TotalDelay = best
	if res.Iterations < opt.MaxIters {
		res.Converged = true
	}
	return res, nil
}

// evaluate returns D_T under the given routing parameters, reporting false
// when the parameters are not evaluable (cyclic routing graph).
func (s *solver) evaluate(phi [][]alloc.Params) (float64, bool) {
	rt := fluid.RoutingFunc(func(i, j graph.NodeID) alloc.Params { return phi[j][i] })
	res, err := fluid.Solve(s.cfg, rt)
	if err != nil {
		return 0, false
	}
	dt := 0.0
	for _, l := range s.g.Links() {
		lambda := res.Flow(l.From, l.To) / s.opt.MeanPacketBits
		mu := linkcost.KnownMu(l.Capacity, s.opt.MeanPacketBits)
		dt += linkcost.MM1Total(lambda, mu, l.PropDelay)
	}
	return dt, true
}

type solver struct {
	g    *graph.Graph
	n    int
	opt  Options
	cfg  fluid.Config
	dest map[graph.NodeID]bool
	// phi[j][i] = φ_ij·
	phi [][]alloc.Params
}

func destSet(flows []topo.Flow) map[graph.NodeID]bool {
	m := make(map[graph.NodeID]bool)
	for _, f := range flows {
		m[f.Dst] = true
	}
	return m
}

// Fractions implements fluid.Routing for the in-progress state.
func (s *solver) Fractions(i, j graph.NodeID) alloc.Params { return s.phi[j][i] }

// initShortestPath seeds φ with single shortest paths under zero-flow
// marginal costs — a loop-free starting point, as Gallager requires.
func (s *solver) initShortestPath() {
	s.phi = make([][]alloc.Params, s.n)
	idleCost := func(l *graph.Link) float64 {
		mu := linkcost.KnownMu(l.Capacity, s.opt.MeanPacketBits)
		return linkcost.MM1Marginal(0, mu, l.PropDelay)
	}
	view := dijkstra.GraphView{G: s.g, Cost: idleCost}
	// Distances from every node; next hops toward each destination.
	results := make([]*dijkstra.Result, s.n)
	for i := 0; i < s.n; i++ {
		results[i] = dijkstra.Run(view, graph.NodeID(i))
	}
	for j := 0; j < s.n; j++ {
		s.phi[j] = make([]alloc.Params, s.n)
		if !s.dest[graph.NodeID(j)] {
			continue
		}
		for i := 0; i < s.n; i++ {
			if i == j {
				continue
			}
			if nh := results[i].NextHop(graph.NodeID(j)); nh != graph.None {
				s.phi[j][i] = alloc.Single(nh)
			}
		}
	}
}

// propose computes the gradients at the current φ and returns the current
// D_T along with a candidate φ produced by one Gallager step of size eta.
// The current φ is left untouched.
func (s *solver) propose(eta float64) (float64, [][]alloc.Params, error) {
	res, err := fluid.Solve(s.cfg, s)
	if err != nil {
		return 0, nil, fmt.Errorf("gallager: %w", err)
	}
	// Link marginal costs (and curvatures, for the second-derivative
	// acceleration) at the current flows.
	cost := make(map[[2]graph.NodeID]float64, s.g.NumLinks())
	var curv map[[2]graph.NodeID]float64
	if s.opt.SecondDerivative {
		curv = make(map[[2]graph.NodeID]float64, s.g.NumLinks())
	}
	dt := 0.0
	for _, l := range s.g.Links() {
		lambda := res.Flow(l.From, l.To) / s.opt.MeanPacketBits
		mu := linkcost.KnownMu(l.Capacity, s.opt.MeanPacketBits)
		key := [2]graph.NodeID{l.From, l.To}
		cost[key] = linkcost.MM1Marginal(lambda, mu, l.PropDelay)
		if curv != nil {
			curv[key] = linkcost.MM1Curvature(lambda, mu)
		}
		dt += linkcost.MM1Total(lambda, mu, l.PropDelay)
	}

	candidate := make([][]alloc.Params, s.n)
	for j := range s.phi {
		candidate[j] = make([]alloc.Params, s.n)
		for i := range s.phi[j] {
			if s.phi[j][i] != nil {
				candidate[j][i] = s.phi[j][i].Clone()
			}
		}
	}
	for j := range s.phi {
		jid := graph.NodeID(j)
		if !s.dest[jid] {
			continue
		}
		lam, err := s.marginalDistances(jid, cost)
		if err != nil {
			return 0, nil, err
		}
		blocked := s.blockedSet(jid, lam, cost)
		s.updateDest(candidate, jid, lam, cost, curv, blocked, eta, res)
	}
	return dt, candidate, nil
}

// marginalDistances computes ∂D_T/∂r_ij for all i by Eq. 5 in reverse
// topological order of the routing graph for destination j.
func (s *solver) marginalDistances(j graph.NodeID, cost map[[2]graph.NodeID]float64) ([]float64, error) {
	lam := make([]float64, s.n)
	pending := make([]int, s.n)
	preds := make([][]graph.NodeID, s.n)
	for i := 0; i < s.n; i++ {
		lam[i] = math.Inf(1)
		if graph.NodeID(i) == j {
			continue
		}
		for k, v := range s.phi[j][i] {
			if v > 0 {
				pending[i]++
				preds[k] = append(preds[k], graph.NodeID(i))
			}
		}
	}
	lam[j] = 0
	queue := []graph.NodeID{j}
	for i := 0; i < s.n; i++ {
		if graph.NodeID(i) != j && pending[i] == 0 {
			queue = append(queue, graph.NodeID(i))
		}
	}
	done := 0
	for len(queue) > 0 {
		k := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		if k != j && len(s.phi[j][k]) > 0 {
			sum := 0.0
			// Sorted keys: FP addition does not associate, so the summation
			// order must not follow map iteration order.
			for _, m := range s.phi[j][k].Keys() {
				v := s.phi[j][k][m]
				if v <= 0 {
					continue
				}
				sum += v * (cost[[2]graph.NodeID{k, m}] + lam[m])
			}
			lam[k] = sum
		}
		for _, p := range preds[k] {
			pending[p]--
			if pending[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	if done != s.n {
		return nil, fmt.Errorf("gallager: routing graph for destination %d has a cycle", j)
	}
	return lam, nil
}

// blockedSet implements Gallager's blocking: node k is blocked for
// destination j when some routing path from k to j traverses an improper
// link — a link (l, m) with φ_ljm > 0 and ∂D/∂r_mj + l_lm ≥ ∂D/∂r_lj is
// not strictly downhill. New flow must not be steered toward blocked nodes.
func (s *solver) blockedSet(j graph.NodeID, lam []float64, cost map[[2]graph.NodeID]float64) []bool {
	blocked := make([]bool, s.n)
	state := make([]byte, s.n) // 0 unknown, 1 visiting, 2 done
	var visit func(k graph.NodeID) bool
	visit = func(k graph.NodeID) bool {
		if k == j {
			return false
		}
		switch state[k] {
		case 2:
			return blocked[k]
		case 1:
			// Cycle should be impossible; treat defensively as blocked.
			return true
		}
		state[k] = 1
		b := false
		//lint:maporder-ok DFS reachability over a fixed graph; the blocked verdict is visit-order independent
		for m, v := range s.phi[j][k] {
			if v <= 0 {
				continue
			}
			improper := !(lam[m] < lam[k]) // m not strictly closer in marginal distance
			if improper || visit(m) {
				b = true
			}
		}
		state[k] = 2
		blocked[k] = b
		return b
	}
	for i := 0; i < s.n; i++ {
		visit(graph.NodeID(i))
	}
	return blocked
}

// updateDest applies Gallager's φ update for destination j to the
// candidate parameter set (gradients were taken at the current φ).
func (s *solver) updateDest(candidate [][]alloc.Params, j graph.NodeID, lam []float64,
	cost, curv map[[2]graph.NodeID]float64, blocked []bool, eta float64, flows *fluid.Result) {
	for i := 0; i < s.n; i++ {
		iid := graph.NodeID(i)
		if iid == j {
			continue
		}
		phi := candidate[j][i]
		if len(phi) == 0 {
			continue // unreachable or no demand through i
		}
		// Candidate next hops: physical neighbors. A neighbor is eligible
		// to *receive* flow only if unblocked; blocked neighbors with
		// existing flow may only shed it.
		nbrs := s.g.Neighbors(iid)
		best := math.Inf(1)
		kmin := graph.None
		for _, k := range nbrs {
			if k != j && blocked[k] {
				continue
			}
			d := cost[[2]graph.NodeID{iid, k}] + lam[k]
			if d < best {
				best = d
				kmin = k
			}
		}
		if kmin == graph.None || math.IsInf(best, 1) {
			continue
		}
		tij := flows.NodeTraffic[j][i] / s.opt.MeanPacketBits // packets/s
		movedTotal := 0.0
		for _, k := range phi.Keys() {
			if k == kmin {
				continue
			}
			v := phi[k]
			if v <= 0 {
				delete(phi, k)
				continue
			}
			a := cost[[2]graph.NodeID{iid, k}] + lam[k] - best
			if a <= 0 {
				continue // k ties the minimum; leave its share in place
			}
			var move float64
			switch {
			case tij <= 0:
				move = v // no traffic: jump straight to the best hop
			case curv != nil:
				// Second-derivative scaling: curvature of the shifted
				// direction is the sum over the donor and receiver links.
				h := curv[[2]graph.NodeID{iid, k}] + curv[[2]graph.NodeID{iid, kmin}]
				if h <= 0 {
					h = 1e-12
				}
				move = math.Min(v, eta*a/(tij*h))
			default:
				move = math.Min(v, eta*a/tij)
			}
			phi[k] = v - move
			movedTotal += move
			if phi[k] <= 1e-15 {
				delete(phi, k)
			}
		}
		if movedTotal > 0 {
			phi[kmin] += movedTotal
		}
	}
}

// Equalization reports, for each router and destination with traffic, the
// spread between the largest and smallest marginal distance among the next
// hops actually carrying flow. At a true optimum the spread is ~0 for every
// (i, j) (the paper's Eqs. 10-12); tests use this to verify optimality.
func Equalization(g *graph.Graph, flows []topo.Flow, r *Result, meanPacketBits float64) (float64, error) {
	cfg := fluid.Config{Graph: g, Flows: flows, MeanPacketBits: meanPacketBits}
	res, err := fluid.Solve(cfg, r)
	if err != nil {
		return 0, err
	}
	cost := make(map[[2]graph.NodeID]float64)
	for _, l := range g.Links() {
		lambda := res.Flow(l.From, l.To) / meanPacketBits
		mu := linkcost.KnownMu(l.Capacity, meanPacketBits)
		cost[[2]graph.NodeID{l.From, l.To}] = linkcost.MM1Marginal(lambda, mu, l.PropDelay)
	}
	worst := 0.0
	for j := range r.Phi {
		jid := graph.NodeID(j)
		s := &solver{g: g, n: g.NumNodes(), opt: Options{MeanPacketBits: meanPacketBits}, phi: r.Phi}
		lam, err := s.marginalDistances(jid, cost)
		if err != nil {
			return 0, err
		}
		for i := 0; i < g.NumNodes(); i++ {
			if graph.NodeID(i) == jid || res.NodeTraffic[j][i] <= 1e-9 {
				continue
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			//lint:maporder-ok min/max accumulation is exact and commutative
			for k, v := range r.Phi[j][i] {
				if v <= 1e-9 {
					continue
				}
				d := cost[[2]graph.NodeID{graph.NodeID(i), k}] + lam[k]
				lo = math.Min(lo, d)
				hi = math.Max(hi, d)
			}
			if hi > lo && hi-lo > worst {
				worst = hi - lo
			}
		}
	}
	return worst, nil
}
