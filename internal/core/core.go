// Package core assembles the complete simulated network: topology, one
// router.Node per router, one des.Port per directed link, traffic sources,
// and per-flow delay measurement. It is the library's top-level API — the
// examples, the experiment harness, and the benchmarks all drive
// simulations through core.Build and Network.Run.
package core

import (
	"fmt"
	"math"

	"minroute/internal/alloc"
	"minroute/internal/des"
	"minroute/internal/despart"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/lsu"
	"minroute/internal/metrics"
	"minroute/internal/mpda"
	"minroute/internal/router"
	"minroute/internal/telemetry"
	"minroute/internal/topo"
	"minroute/internal/trace"
	"minroute/internal/traffic"
)

// framingBits is charged per LSU packet on top of the payload (layer-2
// headers etc.).
const framingBits = 24 * 8

// Options configures a simulation.
type Options struct {
	// Router is the per-node configuration (mode, Tl, Ts, ...).
	Router router.Config
	// Seed drives every random choice in the run.
	Seed uint64
	// Warmup is the settling time before measurements start.
	Warmup float64
	// Duration is the measurement period after warmup.
	Duration float64
	// Source builds the traffic source for a flow; nil selects Poisson with
	// the router's mean packet size.
	Source func(f topo.Flow) traffic.Source
	// TraceCapacity, when positive, records the forwarding path of the most
	// recent packets (Network.Tracer).
	TraceCapacity int
	// Telemetry, when non-nil, instruments the whole network — control and
	// data planes — into the capture's event bus and metrics registry. Nil
	// (the default) costs one branch per probe site and nothing else.
	Telemetry *telemetry.Capture
	// Shards splits the routers across this many event-engine shards
	// executed in conservative lockstep windows (internal/despart); 0 or 1
	// runs the classic single-engine simulation. Every artifact — figures,
	// JSONL event logs, metrics snapshots — is byte-identical at any shard
	// count. TraceCapacity (the path recorder) is the one feature silently
	// disabled when Shards > 1: its single shared map is not worth sharding.
	Shards int
	// ShardWindow overrides the conservative window width Δ in seconds
	// (0 selects the minimum cross-shard propagation delay). Harnesses
	// that need barrier cadence independent of the partition — the chaos
	// oracles compare violation counts across shard counts — pass a
	// partition-independent value such as the global minimum propagation
	// delay. Values exceeding any cross-shard link's delay panic at build.
	ShardWindow float64
}

// DefaultOptions returns the settings of the paper's headline experiments:
// MP-TL-10-TS-2, 30 s warmup, 60 s measurement.
func DefaultOptions() Options {
	return Options{
		Router:   router.Defaults(),
		Seed:     1,
		Warmup:   30,
		Duration: 60,
	}
}

// Network is an assembled simulation.
//
// Sharded runs (Options.Shards > 1) split the routers across engines; every
// piece of mutable state below is owned by exactly one shard (per-router
// and per-flow slices — a flow's source and destination routers each own
// their own lanes) or written only at barriers, which is what lets the
// shards run without locks. Eng is always the shard-0 engine: it is the
// harness clock, and at every barrier all shard clocks are equal to it.
type Network struct {
	Eng   *des.Engine
	Graph *graph.Graph
	Nodes map[graph.NodeID]*router.Node
	Ports map[[2]graph.NodeID]*des.Port
	Flows []topo.Flow
	Stats []*metrics.DelayStats
	opt   Options

	// Part coordinates the shards of a sharded run; nil when serial.
	Part *despart.Coordinator
	// engines[s] is shard s's engine; engines[shardOf[id]] owns router id.
	engines []*des.Engine
	shardOf []int

	// SentPackets[x] counts packets offered by flow x after warmup.
	SentPackets []int64
	// controlMsgs/controlBits count LSU transmissions per sending router
	// (one writer lane per router; ControlMessages/ControlBits fold them).
	controlMsgs []int64
	controlBits []float64
	// Tracer records packet paths when Options.TraceCapacity > 0 (serial
	// runs only).
	Tracer *trace.Recorder
	// tel and its derived probes are nil unless Options.Telemetry was set.
	// tracers[s]/nodeProbes[s] are shard s's event-bus lane; index 0 is the
	// capture's root tracer, which also carries harness-scope emissions.
	tel        *telemetry.Capture
	tracers    []*telemetry.Tracer
	nodeProbes []*telemetry.NodeProbes
	telDelay   *telemetry.Histogram
	warmupDone bool
	// maxHops[id] is the largest hop count delivered at router id.
	maxHops []int
	// flowSerial[x] counts flow x's generated packets; the wire serial packs
	// (x+1) above it so serials stay unique without a global counter.
	flowSerial []uint64
	// reordering bookkeeping: per-flow highest serial seen and counts.
	flowMaxSerial []uint64
	flowLate      []int64
	flowArrived   []int64
}

// ControlMessages returns the LSU transmissions since the run began,
// folded over the per-router lanes.
func (n *Network) ControlMessages() int64 {
	var t int64
	for _, v := range n.controlMsgs {
		t += v
	}
	return t
}

// ControlBits returns the wire size of all LSUs sent, folded over the
// per-router lanes in ascending router order.
func (n *Network) ControlBits() float64 {
	var t float64
	for _, v := range n.controlBits {
		t += v
	}
	return t
}

// Engines returns the per-shard engines (length 1 for a serial run).
// Harnesses use it to sum EventsFired across shards.
func (n *Network) Engines() []*des.Engine { return n.engines }

// EngineOf returns the engine owning router id's shard (the shard-0 engine
// for serial runs). Harness callbacks that fire on a router's goroutine read
// its clock through this rather than n.Eng, which may belong to another
// shard.
func (n *Network) EngineOf(id graph.NodeID) *des.Engine { return n.engines[n.shardOf[id]] }

// Build wires the network described by net under the given options.
func Build(net *topo.Network, opt Options) *Network {
	if opt.Router.MeanPacketBits <= 0 {
		opt.Router = router.Defaults()
	}
	numNodes := net.Graph.NumNodes()
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > numNodes {
		shards = numNodes
	}
	n := &Network{
		Graph:       net.Graph,
		Nodes:       make(map[graph.NodeID]*router.Node),
		Ports:       make(map[[2]graph.NodeID]*des.Port),
		Flows:       net.Flows,
		Stats:       make([]*metrics.DelayStats, len(net.Flows)),
		SentPackets: make([]int64, len(net.Flows)),
		opt:         opt,
		engines:     make([]*des.Engine, shards),
		shardOf:     make([]int, numNodes),
	}
	// Every shard engine is seeded identically. That is deliberate: nothing
	// ever draws from a root RNG directly — routers and sources derive
	// private streams via Split, a pure function of the parent state — so
	// identical roots give every component the exact stream it gets in a
	// serial run, whichever shard it landed on.
	for s := range n.engines {
		n.engines[s] = des.NewEngine(opt.Seed)
	}
	n.Eng = n.engines[0]
	// Contiguous partition: shard s owns routers [s*N/P, (s+1)*N/P).
	for id := 0; id < numNodes; id++ {
		n.shardOf[id] = id * shards / numNodes
	}
	n.controlMsgs = make([]int64, numNodes)
	n.controlBits = make([]float64, numNodes)
	n.maxHops = make([]int, numNodes)
	n.flowSerial = make([]uint64, len(net.Flows))
	n.flowMaxSerial = make([]uint64, len(net.Flows))
	n.flowLate = make([]int64, len(net.Flows))
	n.flowArrived = make([]int64, len(net.Flows))
	if opt.TraceCapacity > 0 && shards == 1 {
		n.Tracer = trace.NewRecorder(opt.TraceCapacity)
	}
	if opt.Telemetry != nil {
		n.tel = opt.Telemetry
		n.tracers = make([]*telemetry.Tracer, shards)
		n.tracers[0] = n.tel.Trace
		for s := 1; s < shards; s++ {
			n.tracers[s] = n.tel.Trace.Fork()
		}
		for s := 0; s < shards; s++ {
			n.tracers[s].SetOrigin(n.engines[s].Origin)
		}
		reg := n.tel.Metrics
		base := &telemetry.NodeProbes{
			Tracer:    n.tracers[0],
			ActiveDur: reg.Histogram("mpda.active.duration"),
			Converge: &telemetry.ConvergeMeter{
				Lag:  reg.Histogram("converge.lag"),
				Last: reg.Gauge("converge.last"),
			},
		}
		// Pre-size every slotted instrument before any concurrent writer
		// exists: one lane per router (or per loss side), grown here so the
		// hot paths never append.
		base.ActiveDur.Grow(numNodes)
		base.Converge.GrowSlots(numNodes)
		n.nodeProbes = make([]*telemetry.NodeProbes, shards)
		n.nodeProbes[0] = base
		for s := 1; s < shards; s++ {
			n.nodeProbes[s] = base.WithTracer(n.tracers[s])
		}
		n.telDelay = reg.Histogram("pkt.delay")
		n.telDelay.Grow(numNodes)
	}

	// Nodes first (the LSU sender closure reads the port map lazily, so the
	// ports can be created afterwards).
	for _, id := range net.Graph.Nodes() {
		n.Nodes[id] = router.New(n.engines[n.shardOf[id]], id, numNodes, opt.Router, n.lsuSender(id))
		if n.nodeProbes != nil {
			n.Nodes[id].SetTelemetry(n.nodeProbes[n.shardOf[id]])
		}
	}

	// Ports: one per directed link, delivering to the receiving node. The
	// port lives on the sender's engine; when the receiver is on another
	// shard, BindReceiver routes delivery through the coordinator's
	// mailboxes. The origin priorities come from the global link index, so
	// equal-time link events order identically at every shard count.
	minXProp := math.Inf(1)
	for li, l := range net.Graph.Links() {
		l := l
		sEng := n.engines[n.shardOf[l.From]]
		rEng := n.engines[n.shardOf[l.To]]
		to := n.Nodes[l.To]
		port := des.NewPort(sEng, l, opt.Router.QueueBits, func(pkt *des.Packet) {
			if pkt.IsControl() {
				// The LSU is fully consumed inside HandleControl; the
				// packet record goes straight back to the pool.
				to.HandleControl(pkt)
				rEng.FreePacket(pkt)
			} else {
				to.HandleData(pkt) // the router recycles data packets
			}
		})
		port.SetPris(des.PriLinkTx(uint64(li)), des.PriLinkDeliver(uint64(li)))
		if rEng != sEng {
			port.BindReceiver(rEng)
			if l.PropDelay < minXProp {
				minXProp = l.PropDelay
			}
		}
		if n.tel != nil {
			reg := n.tel.Metrics
			link := fmt.Sprintf("link.%d-%d", l.From, l.To)
			port.Probe = &telemetry.LinkProbe{
				Tracer:    n.tracers[n.shardOf[l.From]],
				RxTracer:  n.tracers[n.shardOf[l.To]],
				From:      l.From,
				To:        l.To,
				QueueBits: reg.Histogram(link + ".queue.bits"),
				TxBits:    reg.Counter(link + ".tx.bits"),
				LostPkts:  reg.Counter(link + ".lost.pkts"),
			}
			port.Probe.LostPkts.GrowSlots(2)
		}
		n.Ports[[2]graph.NodeID{l.From, l.To}] = port
		n.Nodes[l.From].AttachPort(l.To, port)
	}

	if shards > 1 {
		window := opt.ShardWindow
		if window <= 0 {
			window = minXProp
		}
		n.Part = despart.New(n.engines, window)
		for _, l := range net.Graph.Links() {
			if s, r := n.shardOf[l.From], n.shardOf[l.To]; s != r {
				n.Part.AddInbound(r, n.Ports[[2]graph.NodeID{l.From, l.To}])
			}
		}
	}

	// Delay measurement at each flow destination. Each flow seeds its own
	// reservoir-sampling stream so percentile estimates stay decorrelated.
	for x := range n.Flows {
		n.Stats[x] = metrics.NewDelayStats(uint64(x))
	}
	for _, id := range net.Graph.Nodes() {
		node := n.Nodes[id]
		id := id
		eng := n.engines[n.shardOf[id]]
		var tr *telemetry.Tracer
		if n.tel != nil {
			tr = n.tracers[n.shardOf[id]]
		}
		node.OnArrive = func(pkt *des.Packet) {
			if pkt.FlowID >= 0 && pkt.FlowID < len(n.Stats) {
				delay := eng.Now() - pkt.Created
				n.Stats[pkt.FlowID].Add(delay)
				if pkt.Hops > n.maxHops[id] {
					n.maxHops[id] = pkt.Hops
				}
				if n.tel != nil {
					n.telDelay.ObserveSlot(int(id), eng.Now(), delay)
					ev := telemetry.NewEvent(eng.Now(), telemetry.KindPktDeliver, id)
					ev.Dst = pkt.Dst
					ev.Flow = int32(pkt.FlowID)
					ev.Value = delay
					tr.Emit(ev)
				}
				if n.Tracer != nil && pkt.Serial != 0 {
					n.Tracer.Deliver(pkt.Serial, eng.Now())
				}
				if pkt.Serial != 0 {
					n.flowArrived[pkt.FlowID]++
					if pkt.Serial < n.flowMaxSerial[pkt.FlowID] {
						n.flowLate[pkt.FlowID]++
					} else {
						n.flowMaxSerial[pkt.FlowID] = pkt.Serial
					}
				}
			}
		}
		if n.Tracer != nil {
			node.OnForward = func(pkt *des.Packet, next graph.NodeID) {
				if pkt.Serial != 0 {
					n.Tracer.Step(pkt.Serial, next, eng.Now())
				}
			}
		}
	}

	// Traffic sources. Each source lives on its flow's source-router shard
	// and runs its whole event chain under the flow's own origin priority —
	// the random arrival stream is identical at every shard count because
	// Split is a pure function of the identically seeded root state.
	for x, f := range n.Flows {
		x, f := x, f
		src := n.sourceFor(f)
		eng := n.engines[n.shardOf[f.Src]]
		stream := eng.RNG().Split(0x7afc + uint64(x))
		node := n.Nodes[f.Src]
		eng.WithOrigin(des.PriSource(uint64(x)), func() {
			src.Start(eng, stream, func(bits float64) {
				if n.warmupDone {
					n.SentPackets[x]++
				}
				pkt := eng.NewPacket()
				n.flowSerial[x]++
				*pkt = des.Packet{
					// The serial packs the flow above a per-flow count, so
					// serials stay unique without a cross-shard counter and
					// the per-flow order still supports reorder detection.
					Serial:  uint64(x+1)<<40 | n.flowSerial[x],
					FlowID:  x,
					Src:     f.Src,
					Dst:     f.Dst,
					Bits:    bits,
					Created: eng.Now(),
				}
				if n.Tracer != nil {
					n.Tracer.Begin(pkt.Serial, x, f.Src, f.Dst, eng.Now())
				}
				node.HandleData(pkt)
			})
		})
	}
	return n
}

func (n *Network) sourceFor(f topo.Flow) traffic.Source {
	if n.opt.Source != nil {
		return n.opt.Source(f)
	}
	return traffic.Poisson{RateBits: f.Rate, MeanPacketBits: n.opt.Router.MeanPacketBits}
}

// lsuSender builds the mpda.Sender for node id: marshal, frame, and
// transmit in the lossless control band of the outgoing port.
func (n *Network) lsuSender(id graph.NodeID) mpda.Sender {
	return func(to graph.NodeID, m *lsu.Msg) {
		port, ok := n.Ports[[2]graph.NodeID{id, to}]
		if !ok {
			return // link vanished under the protocol
		}
		buf, err := m.Marshal()
		if err != nil {
			panic("core: marshal LSU: " + err.Error())
		}
		eng := n.engines[n.shardOf[id]]
		n.controlMsgs[id]++
		bits := float64(len(buf)*8 + framingBits)
		n.controlBits[id] += bits
		if n.tel != nil {
			ev := telemetry.NewEvent(eng.Now(), telemetry.KindLSUSend, id)
			ev.Peer = to
			ev.Value = bits
			n.tracers[n.shardOf[id]].Emit(ev)
		}
		pkt := eng.NewPacket()
		*pkt = des.Packet{
			FlowID:  -1,
			Src:     id,
			Dst:     to,
			Bits:    bits,
			Created: eng.Now(),
			Control: buf,
		}
		if !port.Send(pkt) {
			eng.FreePacket(pkt)
		}
	}
}

// InstallStatic installs fixed routing parameters (e.g. Gallager's OPT
// solution): phi[j][i] is the fraction vector router i uses toward
// destination j. Routers must be in ModeStatic for these to take effect.
func (n *Network) InstallStatic(phi [][]alloc.Params) {
	numNodes := n.Graph.NumNodes()
	for _, id := range n.Graph.Nodes() {
		mine := make([]alloc.Params, numNodes)
		for j := 0; j < numNodes; j++ {
			mine[j] = phi[j][id]
		}
		n.Nodes[id].InstallStatic(mine)
	}
}

// Start boots every router (flooding initial LSUs and arming timers).
func (n *Network) Start() {
	for _, id := range n.Graph.Nodes() {
		n.Nodes[id].Start()
	}
}

// Run executes warmup plus measurement and returns the per-flow report.
// It starts the routers if the clock is still at zero.
func (n *Network) Run() *Report {
	if n.Eng.Now() == 0 {
		n.Start()
	}
	n.RunUntil(n.opt.Warmup)
	n.BeginMeasurement()
	n.RunUntil(n.opt.Warmup + n.opt.Duration)
	return n.Report()
}

// RunUntil advances the simulation to time t (inclusive): the coordinator's
// lockstep windows for a sharded run, a plain engine run otherwise. On
// return every shard clock equals t, so harness-side mutation (faults,
// measurement boundaries) is safe.
func (n *Network) RunUntil(t float64) {
	if n.Part != nil {
		n.Part.RunUntil(t)
	} else {
		n.Eng.Run(t)
	}
}

// BeginMeasurement resets the per-flow statistics and starts counting
// offered packets from the current instant. Network.Run calls it at the end
// of warmup; harnesses that drive the engine directly (e.g. the chaos
// runner) call it themselves — typically right after Start, so the
// conservation oracle sees every packet of the run.
func (n *Network) BeginMeasurement() {
	for _, s := range n.Stats {
		s.Reset()
	}
	n.warmupDone = true
}

// CrashNode takes router v down hard at the current simulation time: its
// ports stop carrying traffic in both directions, every neighbor sees the
// adjacent link fail, and the router itself loses all protocol state (see
// router.Crash). In-flight packets on the adjacent links are lost.
func (n *Network) CrashNode(v graph.NodeID) {
	node, ok := n.Nodes[v]
	if !ok || node.Down() {
		return
	}
	n.emitFault(telemetry.KindFaultStart, fmt.Sprintf("crash %d", v), v, graph.None)
	node.Crash()
	for _, k := range n.Graph.Neighbors(v) {
		for _, pair := range [][2]graph.NodeID{{v, k}, {k, v}} {
			if p, ok := n.Ports[pair]; ok {
				p.SetDown(true)
			}
		}
		n.Nodes[k].LinkFailed(v)
	}
}

// RestartNode boots a crashed router from scratch and brings its adjacent
// links back up on both sides.
func (n *Network) RestartNode(v graph.NodeID) {
	node, ok := n.Nodes[v]
	if !ok || !node.Down() {
		return
	}
	n.emitFault(telemetry.KindFaultStop, fmt.Sprintf("restart %d", v), v, graph.None)
	for _, k := range n.Graph.Neighbors(v) {
		for _, pair := range [][2]graph.NodeID{{v, k}, {k, v}} {
			if p, ok := n.Ports[pair]; ok {
				p.SetDown(false)
			}
		}
	}
	node.Restart()
	for _, k := range n.Graph.Neighbors(v) {
		n.Nodes[k].LinkRecovered(v)
	}
}

// FailLink takes the duplex link a↔b down at the current simulation time.
func (n *Network) FailLink(a, b graph.NodeID) {
	n.emitFault(telemetry.KindFaultStart, fmt.Sprintf("link-fail %d-%d", a, b), a, b)
	for _, pair := range [][2]graph.NodeID{{a, b}, {b, a}} {
		if p, ok := n.Ports[pair]; ok {
			p.SetDown(true)
		}
	}
	n.Nodes[a].LinkFailed(b)
	n.Nodes[b].LinkFailed(a)
}

// RestoreLink brings the duplex link a↔b back up.
func (n *Network) RestoreLink(a, b graph.NodeID) {
	n.emitFault(telemetry.KindFaultStop, fmt.Sprintf("link-restore %d-%d", a, b), a, b)
	for _, pair := range [][2]graph.NodeID{{a, b}, {b, a}} {
		if p, ok := n.Ports[pair]; ok {
			p.SetDown(false)
		}
	}
	n.Nodes[a].LinkRecovered(b)
	n.Nodes[b].LinkRecovered(a)
}

// emitFault records a fault marker in the network-scope ring and arms the
// convergence meter: the next routing-table commit anywhere closes the
// episode. a and b carry the affected endpoints (graph.None when absent).
func (n *Network) emitFault(k telemetry.Kind, label string, a, b graph.NodeID) {
	if n.tel == nil {
		return
	}
	now := n.Eng.Now()
	n.nodeProbes[0].Converge.TopoEvent(now)
	ev := telemetry.NewEvent(now, k, graph.None)
	ev.Peer = a
	ev.Dst = b
	ev.Label = label
	n.tel.Trace.Emit(ev)
}

// Telemetry returns the capture attached at Build (nil when telemetry is
// off). The chaos harness uses it to record fault types core itself does
// not originate (cost spikes, control perturbation).
func (n *Network) Telemetry() *telemetry.Capture { return n.tel }

// MarkFault records an externally injected fault marker: start brackets the
// fault as KindFaultStart/KindFaultStop, and label names it. Faults that
// change the routing input also arm the convergence meter.
func (n *Network) MarkFault(start bool, label string) {
	k := telemetry.KindFaultStop
	if start {
		k = telemetry.KindFaultStart
	}
	n.emitFault(k, label, graph.None, graph.None)
}

// syncTelemetry mirrors totals that live outside the registry — control
// traffic, ring-drop counts — into snapshot counters.
func (n *Network) syncTelemetry() {
	if n.tel == nil {
		return
	}
	n.nodeProbes[0].Converge.Finalize()
	reg := n.tel.Metrics
	reg.Counter("control.msgs").Set(float64(n.ControlMessages()))
	reg.Counter("control.bits").Set(n.ControlBits())
	reg.Counter("telemetry.events.emitted").Set(float64(n.tel.Trace.Emitted()))
	reg.Counter("telemetry.events.dropped").Set(float64(n.tel.Trace.Dropped()))
	if n.Tracer != nil {
		reg.Counter("trace.paths.dropped").Set(float64(n.Tracer.Dropped()))
	}
}

// ExportTelemetry writes the run's telemetry artifacts (JSONL event log,
// Chrome trace, metrics snapshot) into dir under the given name prefix.
// A no-op returning nil when telemetry is off.
func (n *Network) ExportTelemetry(dir, prefix string) error {
	if n.tel == nil {
		return nil
	}
	n.syncTelemetry()
	return n.tel.Export(dir, prefix)
}

// CheckLoopFree audits the instantaneous successor graph of every
// destination (Theorem 3) — callable at any simulation time.
func (n *Network) CheckLoopFree() error {
	views := make(map[graph.NodeID]lfi.RouterView, len(n.Nodes))
	//lint:maporder-ok distinct-key inserts of a pure accessor's result commute
	for id, node := range n.Nodes {
		if node.Down() {
			// A crashed router forwards nothing; its abandoned successor
			// sets are not part of the live routing graph.
			continue
		}
		views[id] = node.Protocol()
	}
	return lfi.CheckAllDestinations(n.Graph.NumNodes(), views)
}

// Report summarizes a run.
type Report struct {
	FlowNames []string
	// MeanDelayMs[x] is flow x's average end-to-end delay in milliseconds.
	MeanDelayMs []float64
	// P95DelayMs[x] is the 95th-percentile delay in milliseconds.
	P95DelayMs []float64
	// StdDevMs[x] is the standard deviation of flow x's packet delays in
	// milliseconds — the "jaggedness" the paper notes MP reduces.
	StdDevMs []float64
	// Delivered[x] counts delivered packets, Offered[x] generated ones.
	Delivered []int64
	Offered   []int64
	// Drops aggregates router-level drops over the whole run.
	DropsNoRoute, DropsHopLimit, DropsQueue int64
	// ControlMessages counts LSUs transmitted over the whole run.
	ControlMessages int64
	// MaxHops is the largest forwarding hop count any delivered packet
	// accumulated — bounded near the network diameter when routing is sane
	// (transient reroutes can add a few).
	MaxHops int
	// Reordered[x] is the fraction of flow x's delivered packets that
	// arrived after a later-sent packet — the out-of-order cost of
	// per-packet multipath (zero for single-path routing).
	Reordered []float64
}

// Report snapshots the current statistics.
func (n *Network) Report() *Report {
	maxHops := 0
	for _, h := range n.maxHops {
		if h > maxHops {
			maxHops = h
		}
	}
	r := &Report{ControlMessages: n.ControlMessages(), MaxHops: maxHops}
	for x, f := range n.Flows {
		r.FlowNames = append(r.FlowNames, f.Name)
		r.MeanDelayMs = append(r.MeanDelayMs, n.Stats[x].Mean()*1e3)
		r.P95DelayMs = append(r.P95DelayMs, n.Stats[x].Percentile(95)*1e3)
		r.StdDevMs = append(r.StdDevMs, n.Stats[x].StdDev()*1e3)
		r.Delivered = append(r.Delivered, n.Stats[x].Count())
		r.Offered = append(r.Offered, n.SentPackets[x])
		if n.flowArrived[x] > 0 {
			r.Reordered = append(r.Reordered, float64(n.flowLate[x])/float64(n.flowArrived[x]))
		} else {
			r.Reordered = append(r.Reordered, 0)
		}
	}
	for _, node := range n.Nodes {
		r.DropsNoRoute += node.DroppedNoRoute
		r.DropsHopLimit += node.DroppedHopLimit
		r.DropsQueue += node.DroppedQueue
	}
	return r
}

// AvgMeanDelayMs returns the average over flows of the per-flow mean delays
// (the scalar the Tl/Ts sweeps compare), ignoring flows with no samples.
func (r *Report) AvgMeanDelayMs() float64 {
	sum, n := 0.0, 0
	for _, d := range r.MeanDelayMs {
		if !math.IsNaN(d) {
			sum += d
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// LossRate returns 1 - delivered/offered over all flows after warmup.
func (r *Report) LossRate() float64 {
	var del, off int64
	for x := range r.Delivered {
		del += r.Delivered[x]
		off += r.Offered[x]
	}
	if off == 0 {
		return 0
	}
	lr := 1 - float64(del)/float64(off)
	if lr < 0 {
		// Packets generated during warmup can be delivered after the stats
		// reset, making delivered marginally exceed offered.
		lr = 0
	}
	return lr
}

// String renders the paper-style per-flow table.
func (r *Report) String() string {
	s := fmt.Sprintf("%-20s %12s %12s %10s\n", "flow", "mean(ms)", "p95(ms)", "delivered")
	for x := range r.FlowNames {
		s += fmt.Sprintf("%-20s %12.3f %12.3f %10d\n",
			r.FlowNames[x], r.MeanDelayMs[x], r.P95DelayMs[x], r.Delivered[x])
	}
	return s
}
