package core

import (
	"fmt"
	"math"
	"testing"

	"minroute/internal/gallager"
	"minroute/internal/graph"
	"minroute/internal/router"
	"minroute/internal/topo"
	"minroute/internal/traffic"
)

func quickOptions(mode router.Mode, seed uint64) Options {
	opt := DefaultOptions()
	opt.Router.Mode = mode
	opt.Router.Tl = 5
	opt.Router.Ts = 1
	opt.Seed = seed
	opt.Warmup = 8
	opt.Duration = 12
	return opt
}

func TestMPOnNET1DeliversWithFiniteDelays(t *testing.T) {
	net := topo.NET1()
	n := Build(net, quickOptions(router.ModeMP, 1))
	rep := n.Run()
	if err := n.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	for x, name := range rep.FlowNames {
		if rep.Delivered[x] == 0 {
			t.Fatalf("flow %s delivered nothing", name)
		}
		if math.IsNaN(rep.MeanDelayMs[x]) || rep.MeanDelayMs[x] <= 0 {
			t.Fatalf("flow %s mean delay = %v", name, rep.MeanDelayMs[x])
		}
		if rep.MeanDelayMs[x] > 1000 {
			t.Fatalf("flow %s mean delay absurd: %v ms", name, rep.MeanDelayMs[x])
		}
	}
	if lr := rep.LossRate(); lr > 0.02 {
		t.Fatalf("loss rate %v too high for MP under nominal load", lr)
	}
	if rep.ControlMessages == 0 {
		t.Fatal("no control traffic despite periodic Tl updates")
	}
}

func TestSPOnNET1Works(t *testing.T) {
	net := topo.NET1()
	n := Build(net, quickOptions(router.ModeSP, 2))
	rep := n.Run()
	for x := range rep.FlowNames {
		if rep.Delivered[x] == 0 {
			t.Fatalf("SP flow %d delivered nothing", x)
		}
	}
}

func TestMPBeatsSPOnNET1(t *testing.T) {
	// The paper's headline comparison: under identical load, MP's average
	// delays are well below SP's (Fig. 12 shows 5-6x on NET1).
	net := topo.NET1()
	mp := Build(topo.NET1(), quickOptions(router.ModeMP, 3)).Run()
	sp := Build(net, quickOptions(router.ModeSP, 3)).Run()
	mpAvg, spAvg := mp.AvgMeanDelayMs(), sp.AvgMeanDelayMs()
	if !(mpAvg < spAvg) {
		t.Fatalf("MP avg %.3f ms not better than SP avg %.3f ms", mpAvg, spAvg)
	}
}

func TestStaticModeWithOPT(t *testing.T) {
	net := topo.NET1()
	opt, err := gallager.Solve(net.Graph, net.Flows, gallager.Options{MeanPacketBits: 8000})
	if err != nil {
		t.Fatal(err)
	}
	o := quickOptions(router.ModeStatic, 4)
	n := Build(net, o)
	n.InstallStatic(opt.Phi)
	rep := n.Run()
	for x := range rep.FlowNames {
		if rep.Delivered[x] == 0 {
			t.Fatalf("OPT flow %d delivered nothing", x)
		}
	}
	if lr := rep.LossRate(); lr > 0.02 {
		t.Fatalf("loss under OPT routing: %v", lr)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Build(topo.NET1(), quickOptions(router.ModeMP, 7)).Run()
	b := Build(topo.NET1(), quickOptions(router.ModeMP, 7)).Run()
	for x := range a.MeanDelayMs {
		if a.MeanDelayMs[x] != b.MeanDelayMs[x] || a.Delivered[x] != b.Delivered[x] {
			t.Fatalf("same-seed runs diverge at flow %d", x)
		}
	}
	c := Build(topo.NET1(), quickOptions(router.ModeMP, 8)).Run()
	same := true
	for x := range a.MeanDelayMs {
		if a.Delivered[x] != c.Delivered[x] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical packet counts (suspicious)")
	}
}

func TestLinkFailureRerouting(t *testing.T) {
	net := topo.NET1()
	o := quickOptions(router.ModeMP, 9)
	n := Build(net, o)
	n.Start()
	n.Eng.Run(5)
	// Fail one of the two bridges; all west-east flows must reroute.
	n.FailLink(4, 5)
	n.Eng.Run(8)
	if err := n.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	for _, s := range n.Stats {
		s.Reset()
	}
	n.warmupDone = true
	n.Eng.Run(20)
	rep := n.Report()
	for x, name := range rep.FlowNames {
		if rep.Delivered[x] == 0 {
			t.Fatalf("flow %s starved after bridge failure", name)
		}
	}
	// Restore and confirm reconvergence keeps delivering.
	n.RestoreLink(4, 5)
	n.Eng.Run(30)
	if err := n.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
}

func TestOnOffSources(t *testing.T) {
	net := topo.NET1()
	o := quickOptions(router.ModeMP, 11)
	o.Source = func(f topo.Flow) traffic.Source {
		return traffic.OnOff{RateBits: f.Rate, MeanPacketBits: 8000, PeakFactor: 4, MeanOn: 0.2}
	}
	rep := Build(net, o).Run()
	for x := range rep.FlowNames {
		if rep.Delivered[x] == 0 {
			t.Fatalf("bursty flow %d delivered nothing", x)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := Build(topo.NET1(), quickOptions(router.ModeMP, 12)).Run()
	s := rep.String()
	if len(s) == 0 {
		t.Fatal("empty report")
	}
}

func TestCAIRNSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CAIRN smoke test is slow")
	}
	net := topo.CAIRN()
	rep := Build(net, quickOptions(router.ModeMP, 13)).Run()
	for x, name := range rep.FlowNames {
		if rep.Delivered[x] == 0 {
			t.Fatalf("CAIRN flow %s delivered nothing", name)
		}
	}
}

func TestFailureStormStaysLoopFree(t *testing.T) {
	if testing.Short() {
		t.Skip("failure storm is slow")
	}
	// Repeatedly fail and restore links mid-traffic; the successor graphs
	// must stay loop-free at every audit point and traffic keeps flowing.
	net := topo.NET1()
	o := quickOptions(router.ModeMP, 21)
	n := Build(net, o)
	n.Start()
	n.Eng.Run(10)
	victims := [][2]graph.NodeID{{4, 5}, {1, 4}, {5, 8}, {0, 1}, {6, 8}}
	for round, v := range victims {
		n.FailLink(v[0], v[1])
		n.Eng.Run(n.Eng.Now() + 3)
		if err := n.CheckLoopFree(); err != nil {
			t.Fatalf("round %d after failure: %v", round, err)
		}
		n.RestoreLink(v[0], v[1])
		n.Eng.Run(n.Eng.Now() + 3)
		if err := n.CheckLoopFree(); err != nil {
			t.Fatalf("round %d after restore: %v", round, err)
		}
	}
	for _, s := range n.Stats {
		s.Reset()
	}
	n.warmupDone = true
	n.Eng.Run(n.Eng.Now() + 10)
	rep := n.Report()
	for x, name := range rep.FlowNames {
		if rep.Delivered[x] == 0 {
			t.Fatalf("flow %s starved after failure storm", name)
		}
	}
}

func TestLargeRandomNetworkSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large network smoke is slow")
	}
	g := topo.Random(99, 40, 30, 8e6, 10e6, 1e-3)
	net := &topo.Network{Graph: g}
	r := g.NumNodes()
	for i := 0; i < 12; i++ {
		src := graph.NodeID((i * 7) % r)
		dst := graph.NodeID((i*13 + 5) % r)
		if src == dst {
			continue
		}
		net.Flows = append(net.Flows, topo.Flow{
			Name: fmt.Sprintf("f%d", i), Src: src, Dst: dst, Rate: 1.5e6,
		})
	}
	o := quickOptions(router.ModeMP, 22)
	o.Warmup, o.Duration = 15, 10
	n := Build(net, o)
	rep := n.Run()
	if err := n.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	delivered := int64(0)
	for _, d := range rep.Delivered {
		delivered += d
	}
	if delivered == 0 {
		t.Fatal("40-node network delivered nothing")
	}
	if lr := rep.LossRate(); lr > 0.05 {
		t.Fatalf("loss rate %v on random network", lr)
	}
}

func TestHopCountsBounded(t *testing.T) {
	// With loop-free routing, delivered packets should take paths not far
	// beyond the diameter (4 for NET1): transients may add a few hops but
	// nothing pathological.
	rep := Build(topo.NET1(), quickOptions(router.ModeMP, 31)).Run()
	if rep.MaxHops == 0 {
		t.Fatal("hop tracking broken")
	}
	if rep.MaxHops > 4+6 {
		t.Fatalf("max hops = %d, far beyond NET1's diameter 4", rep.MaxHops)
	}
}

func TestTracedPathsLoopFreeInPractice(t *testing.T) {
	// The data-plane counterpart of Theorem 3: actual forwarded packets on
	// MP, with routes changing beneath them, must essentially never revisit
	// a node. (A transient reroute can in principle cause a revisit across
	// time; it must be vanishingly rare.)
	o := quickOptions(router.ModeMP, 41)
	o.TraceCapacity = 20000
	n := Build(topo.NET1(), o)
	rep := n.Run()
	_ = rep
	delivered, withRevisit, maxHops := n.Tracer.Audit()
	if delivered < 1000 {
		t.Fatalf("only %d delivered paths traced", delivered)
	}
	if frac := float64(withRevisit) / float64(delivered); frac > 0.001 {
		t.Fatalf("%d of %d traced paths revisit a node (%.4f)", withRevisit, delivered, frac)
	}
	if maxHops > 10 {
		t.Fatalf("max traced path length %d on diameter-4 NET1", maxHops)
	}
	// Every delivered path must start at its flow's source and end at its
	// destination.
	for _, p := range n.Tracer.Paths() {
		if !p.Delivered {
			continue
		}
		if p.Hops[0].Node != p.Src || p.Hops[len(p.Hops)-1].Node != p.Dst {
			t.Fatalf("path endpoints wrong: %v", p)
		}
	}
}

func TestReorderingMetric(t *testing.T) {
	// SP keeps each flow on one path at a time: essentially in-order.
	// MP's per-packet splitting reorders some fraction.
	sp := Build(topo.NET1(), quickOptions(router.ModeSP, 51)).Run()
	mp := Build(topo.NET1(), quickOptions(router.ModeMP, 51)).Run()
	var spMax, mpSum float64
	for x := range sp.Reordered {
		if sp.Reordered[x] > spMax {
			spMax = sp.Reordered[x]
		}
		mpSum += mp.Reordered[x]
	}
	if spMax > 0.02 {
		t.Fatalf("SP reordering %v unexpectedly high", spMax)
	}
	if mpSum == 0 {
		t.Fatal("MP shows zero reordering; metric suspect")
	}
}

func TestAsymmetricLinkCosts(t *testing.T) {
	// The paper: "Each link is bidirectional with possibly different costs
	// in each direction." Build a network where one direction of a link is
	// 10x slower and verify MP converges, routes correctly, and delivers
	// in both directions.
	g := graph.New()
	for _, name := range []string{"a", "b", "c", "d"} {
		g.AddNode(name)
	}
	// a->b fast, b->a slow; plus a ring a-c-d-b providing an alternative.
	mustLink := func(from, to graph.NodeID, capacity float64) {
		if err := g.AddLink(from, to, capacity, 0.5e-3); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(0, 1, 10e6)
	mustLink(1, 0, 1e6) // asymmetric: reverse direction is 10x slower
	for _, e := range [][2]graph.NodeID{{0, 2}, {2, 0}, {2, 3}, {3, 2}, {3, 1}, {1, 3}} {
		mustLink(e[0], e[1], 10e6)
	}
	net := &topo.Network{Graph: g, Flows: []topo.Flow{
		{Name: "a->b", Src: 0, Dst: 1, Rate: 4e6},
		{Name: "b->a", Src: 1, Dst: 0, Rate: 4e6},
	}}
	o := quickOptions(router.ModeMP, 61)
	n := Build(net, o)
	rep := n.Run()
	if err := n.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	for x, name := range rep.FlowNames {
		if rep.Delivered[x] == 0 {
			t.Fatalf("flow %s starved", name)
		}
	}
	// The 4 Mb/s reverse flow cannot fit the 1 Mb/s direct link: MP must
	// route it (mostly) around via d-c, keeping delay sane.
	if rep.MeanDelayMs[1] > 100 {
		t.Fatalf("reverse flow delay %v ms: asymmetric capacity not routed around", rep.MeanDelayMs[1])
	}
	if lr := rep.LossRate(); lr > 0.02 {
		t.Fatalf("loss %v under asymmetric capacities", lr)
	}
}

func TestFlowletSwitchingCutsReordering(t *testing.T) {
	base := quickOptions(router.ModeMP, 71)
	plain := Build(topo.NET1(), base).Run()
	withFlowlets := base
	withFlowlets.Router.FlowletTimeout = 0.05 // 50 ms idle gap re-picks
	fl := Build(topo.NET1(), withFlowlets).Run()

	var plainSum, flSum float64
	for x := range plain.Reordered {
		plainSum += plain.Reordered[x]
		flSum += fl.Reordered[x]
	}
	if !(flSum < plainSum*0.5) {
		t.Fatalf("flowlets did not cut reordering: %v vs %v", flSum, plainSum)
	}
	// Load balancing must survive: delays stay in the same regime.
	if fl.AvgMeanDelayMs() > plain.AvgMeanDelayMs()*2 {
		t.Fatalf("flowlets destroyed balancing: %v vs %v ms",
			fl.AvgMeanDelayMs(), plain.AvgMeanDelayMs())
	}
	for x := range fl.FlowNames {
		if fl.Delivered[x] == 0 {
			t.Fatalf("flow %d starved under flowlets", x)
		}
	}
}
