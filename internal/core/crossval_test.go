package core

import (
	"math"
	"strings"
	"testing"

	"minroute/internal/alloc"
	"minroute/internal/fluid"
	"minroute/internal/gallager"
	"minroute/internal/graph"
	"minroute/internal/router"
	"minroute/internal/topo"
)

// TestFluidMatchesPacketSimulation cross-validates the repository's two
// delay models: for a fixed routing (Gallager's OPT φ), the analytic
// fluid/M/M/1 prediction of each flow's expected delay must match what the
// packet simulator measures. They share no code path — fluid solves
// conservation equations, the DES moves individual packets — so agreement
// here validates both.
func TestFluidMatchesPacketSimulation(t *testing.T) {
	net := topo.NET1()
	sol, err := gallager.Solve(net.Graph, net.Flows, gallager.Options{MeanPacketBits: 8000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fluid.Config{Graph: net.Graph, Flows: net.Flows, MeanPacketBits: 8000}
	fres, err := fluid.Solve(cfg, sol)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := fluid.Delays(cfg, sol, fres)
	if err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions()
	opt.Router.Mode = router.ModeStatic
	opt.Router.Tl, opt.Router.Ts = 0, 0
	opt.Seed = 17
	opt.Warmup = 20
	opt.Duration = 60
	sim := Build(net, opt)
	sim.InstallStatic(sol.Phi)
	measured := sim.Run()

	for x, f := range net.Flows {
		pred := predicted.FlowDelay[x] * 1e3
		got := measured.MeanDelayMs[x]
		rel := math.Abs(got-pred) / pred
		// The DES adds transmission-time correlation effects the pure M/M/1
		// chain ignores (Kleinrock independence is an approximation), so a
		// generous but meaningful tolerance applies.
		if rel > 0.25 {
			t.Errorf("flow %s: fluid predicts %.3f ms, DES measures %.3f ms (rel %.2f)",
				f.Name, pred, got, rel)
		}
	}
}

// TestFluidMatchesPacketSimulationSingleLink pins the agreement tightly on
// a single bottleneck where the M/M/1 model is exact.
func TestFluidMatchesPacketSimulationSingleLink(t *testing.T) {
	net, err := topo.Parse(netReader())
	if err != nil {
		t.Fatal(err)
	}
	phi := gallagerLike(net)
	cfg := fluid.Config{Graph: net.Graph, Flows: net.Flows, MeanPacketBits: 8000}
	fres, err := fluid.Solve(cfg, phi)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := fluid.Delays(cfg, phi, fres)
	if err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions()
	opt.Router.Mode = router.ModeStatic
	opt.Router.Tl, opt.Router.Ts = 0, 0
	opt.Seed = 23
	opt.Warmup = 20
	opt.Duration = 120
	sim := Build(net, opt)
	sim.InstallStatic(phiMatrix(net, phi))
	measured := sim.Run()

	pred := predicted.FlowDelay[0] * 1e3
	got := measured.MeanDelayMs[0]
	if rel := math.Abs(got-pred) / pred; rel > 0.08 {
		t.Fatalf("single link: fluid %.3f ms vs DES %.3f ms (rel %.2f)", pred, got, rel)
	}
}

// netReader yields a two-node single-bottleneck scenario at 70% load.
func netReader() *strings.Reader {
	return strings.NewReader(`
link a b 10Mbps 1ms
flow a b 7Mbps
`)
}

// gallagerLike returns the trivial direct routing for the two-node net.
func gallagerLike(net *topo.Network) fluid.Routing {
	return fluid.RoutingFunc(func(i, j graph.NodeID) alloc.Params {
		if i == net.Flows[0].Src && j == net.Flows[0].Dst {
			return alloc.Single(net.Flows[0].Dst)
		}
		return nil
	})
}

// phiMatrix converts a fluid.Routing into the static φ matrix core expects.
func phiMatrix(net *topo.Network, rt fluid.Routing) [][]alloc.Params {
	n := net.Graph.NumNodes()
	out := make([][]alloc.Params, n)
	for j := 0; j < n; j++ {
		out[j] = make([]alloc.Params, n)
		for i := 0; i < n; i++ {
			out[j][i] = rt.Fractions(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return out
}
