// Package des is the discrete-event network simulator substrate: a
// single-threaded event engine, the packet model, and the link transmission
// pipeline (output queue + transmitter + propagation). The paper evaluates
// its framework on a packet simulator; this package is that simulator,
// built from scratch on the eventq scheduler.
//
// Design notes:
//   - Single-threaded and fully deterministic for a given seed: every run of
//     an experiment is exactly reproducible.
//   - Data packets have exponentially distributed sizes so a FIFO link
//     approximates the M/M/1 behaviour the paper's cost function assumes.
//   - Routing-protocol messages travel over the same links but in a strict-
//     priority, lossless control band, implementing the paper's assumption
//     that "an underlying protocol ensures that messages transmitted over an
//     operational link are received correctly and in the proper sequence".
package des

import (
	"fmt"

	"minroute/internal/eventq"
	"minroute/internal/rng"
)

// Origin priorities order equal-time events by the model entity that
// scheduled them (see eventq). The ranges are disjoint by construction:
// routers, then link transmitters and deliverers, then traffic sources, then
// the harness (setup code, fault injectors, oracles), which always sorts
// after every model event at the same instant. The scheme is global and
// size-independent so serial and sharded runs assign identical priorities.
const (
	// priRouterBase..: origin of router id is 1+id (id < 2^16).
	priRouterBase uint64 = 1
	// priLinkBase..: directed link l owns two origins — transmitter-side
	// completions (2l) and receiver-side deliveries (2l+1), l < 2^15.
	priLinkBase uint64 = 1 << 17
	// priSourceBase..: traffic source x (flow index).
	priSourceBase uint64 = 1 << 18
	// PriHarness is the ambient origin outside any model event: setup code,
	// chaos fault appliers, and measurement boundaries. It is zero — the
	// lowest rank — so a harness action (and its telemetry marker, e.g. a
	// fault_start) orders BEFORE the model reactions it triggers at the same
	// instant, and so raw eventq.Push (pri 0) means harness by construction.
	PriHarness uint64 = 0
)

// PriRouter returns the origin priority of router id.
func PriRouter(id uint64) uint64 { return priRouterBase + id }

// PriLinkTx returns the origin priority of directed link l's transmitter.
func PriLinkTx(l uint64) uint64 { return priLinkBase + 2*l }

// PriLinkDeliver returns the origin priority of directed link l's
// propagation/delivery side.
func PriLinkDeliver(l uint64) uint64 { return priLinkBase + 2*l + 1 }

// PriSource returns the origin priority of traffic source x.
func PriSource(x uint64) uint64 { return priSourceBase + x }

// Engine advances simulated time and dispatches events. Create with
// NewEngine; not safe for concurrent use. The engine owns the event and
// packet free lists: both are safe precisely because one engine is always
// driven by one goroutine (concurrency lives across simulations and across
// shards of one simulation, never within one engine — see DESIGN.md
// "Concurrency model").
type Engine struct {
	q       eventq.Queue
	now     float64
	rng     *rng.Source
	packets PacketPool
	fired   int64
	// curPri is the ambient origin priority: the priority of the event being
	// executed, PriHarness outside any event. Schedule/After stamp it onto
	// new events, so causal chains inherit their origin automatically.
	curPri uint64

	// OnEvent, when set, runs after every fired event with the clock at the
	// event's time — the oracle tap point: invariant checkers (loop-freedom,
	// conservation) hook here to audit the network at event granularity.
	// The hook must not schedule events or advance the engine.
	OnEvent func()
}

// NewEngine returns an engine with its clock at zero and a root RNG seeded
// with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: rng.New(seed), curPri: PriHarness}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's root random source. Components should derive
// their own streams via Split to stay decorrelated.
func (e *Engine) RNG() *rng.Source { return e.rng }

// Origin returns the ambient origin priority: the priority of the event
// currently executing, or PriHarness outside event context. Telemetry uses
// it to stamp events with a schedule-independent emitter rank.
func (e *Engine) Origin() uint64 { return e.curPri }

// WithOrigin runs fn with the ambient origin priority set to pri, restoring
// the previous origin afterwards. Components use it when arming their own
// timers from harness context (e.g. a router restart) so the rescheduled
// chain keeps the component's origin rather than the harness's.
func (e *Engine) WithOrigin(pri uint64, fn func()) {
	prev := e.curPri
	e.curPri = pri
	fn()
	e.curPri = prev
}

// Schedule runs fn at absolute time at, stamping the ambient origin
// priority. Scheduling in the past panics: it is always a simulation bug.
func (e *Engine) Schedule(at float64, fn func()) eventq.Handle {
	return e.SchedulePri(at, e.curPri, fn)
}

// SchedulePri runs fn at absolute time at with an explicit origin priority.
func (e *Engine) SchedulePri(at float64, pri uint64, fn func()) eventq.Handle {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (%.9f < %.9f)", at, e.now))
	}
	return e.q.PushPri(at, pri, fn)
}

// After runs fn d seconds from now, stamping the ambient origin priority.
func (e *Engine) After(d float64, fn func()) eventq.Handle {
	return e.AfterPri(d, e.curPri, fn)
}

// AfterPri runs fn d seconds from now with an explicit origin priority.
func (e *Engine) AfterPri(d float64, pri uint64, fn func()) eventq.Handle {
	if d < 0 {
		panic("des: negative delay")
	}
	return e.q.PushPri(e.now+d, pri, fn)
}

// Cancel revokes a pending event.
func (e *Engine) Cancel(h eventq.Handle) { e.q.Cancel(h) }

// Step executes the next event, advancing the clock. It reports false when
// no events remain. Fired event records are recycled into the queue's free
// list, so the schedule-fire cycle is allocation-free at steady state.
func (e *Engine) Step() bool {
	ev := e.q.Pop()
	if ev == nil {
		return false
	}
	e.now = ev.Time()
	prev := e.curPri
	e.curPri = ev.Pri()
	ev.Fire()
	e.curPri = prev
	e.q.Recycle(ev)
	e.fired++
	if e.OnEvent != nil {
		e.OnEvent()
	}
	return true
}

// EventsFired reports how many events have fired since the engine was
// created. Oracles report it alongside violations to locate them in a run.
func (e *Engine) EventsFired() int64 { return e.fired }

// NewPacket takes a packet from the engine's free list (or allocates one).
// The caller must overwrite every field; recycled packets keep stale data.
func (e *Engine) NewPacket() *Packet { return e.packets.Get() }

// FreePacket returns a packet whose lifetime has ended to the free list.
// Callers must not retain the pointer afterwards. Passing packets that were
// not obtained from NewPacket is allowed (they join the pool).
func (e *Engine) FreePacket(p *Packet) { e.packets.Put(p) }

// Run executes events until the clock would pass until, leaving later
// events pending and the clock at until.
func (e *Engine) Run(until float64) {
	for {
		ev := e.q.Peek()
		if ev == nil || ev.Time() > until {
			break
		}
		e.Step()
	}
	if until > e.now {
		e.now = until
	}
}

// RunBelow executes events strictly before t, leaving events at or after t
// pending, and advances the clock to t. It is the shard window primitive:
// conservative synchronization guarantees no event before the window
// boundary can still arrive, so a shard may safely commit everything
// strictly inside the window and park its clock on the boundary.
func (e *Engine) RunBelow(t float64) {
	for {
		ev := e.q.Peek()
		if ev == nil || ev.Time() >= t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunAll executes every pending event. It panics after maxEvents events as
// a runaway guard (protocols that never quiesce are bugs).
func (e *Engine) RunAll(maxEvents int) {
	for i := 0; e.Step(); i++ {
		if i >= maxEvents {
			panic("des: RunAll exceeded event budget; protocol not quiescing")
		}
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return e.q.Len() }
