// Package des is the discrete-event network simulator substrate: a
// single-threaded event engine, the packet model, and the link transmission
// pipeline (output queue + transmitter + propagation). The paper evaluates
// its framework on a packet simulator; this package is that simulator,
// built from scratch on the eventq scheduler.
//
// Design notes:
//   - Single-threaded and fully deterministic for a given seed: every run of
//     an experiment is exactly reproducible.
//   - Data packets have exponentially distributed sizes so a FIFO link
//     approximates the M/M/1 behaviour the paper's cost function assumes.
//   - Routing-protocol messages travel over the same links but in a strict-
//     priority, lossless control band, implementing the paper's assumption
//     that "an underlying protocol ensures that messages transmitted over an
//     operational link are received correctly and in the proper sequence".
package des

import (
	"fmt"

	"minroute/internal/eventq"
	"minroute/internal/rng"
)

// Engine advances simulated time and dispatches events. Create with
// NewEngine; not safe for concurrent use.
type Engine struct {
	q   eventq.Queue
	now float64
	rng *rng.Source
}

// NewEngine returns an engine with its clock at zero and a root RNG seeded
// with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: rng.New(seed)}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's root random source. Components should derive
// their own streams via Split to stay decorrelated.
func (e *Engine) RNG() *rng.Source { return e.rng }

// Schedule runs fn at absolute time at. Scheduling in the past panics: it
// is always a simulation bug.
func (e *Engine) Schedule(at float64, fn func()) *eventq.Event {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (%.9f < %.9f)", at, e.now))
	}
	return e.q.Push(at, fn)
}

// After runs fn d seconds from now.
func (e *Engine) After(d float64, fn func()) *eventq.Event {
	if d < 0 {
		panic("des: negative delay")
	}
	return e.q.Push(e.now+d, fn)
}

// Cancel revokes a pending event.
func (e *Engine) Cancel(ev *eventq.Event) { e.q.Cancel(ev) }

// Step executes the next event, advancing the clock. It reports false when
// no events remain.
func (e *Engine) Step() bool {
	ev := e.q.Pop()
	if ev == nil {
		return false
	}
	e.now = ev.Time()
	ev.Fire()
	return true
}

// Run executes events until the clock would pass until, leaving later
// events pending and the clock at until.
func (e *Engine) Run(until float64) {
	for {
		ev := e.q.Peek()
		if ev == nil || ev.Time() > until {
			break
		}
		e.Step()
	}
	if until > e.now {
		e.now = until
	}
}

// RunAll executes every pending event. It panics after maxEvents events as
// a runaway guard (protocols that never quiesce are bugs).
func (e *Engine) RunAll(maxEvents int) {
	for i := 0; e.Step(); i++ {
		if i >= maxEvents {
			panic("des: RunAll exceeded event budget; protocol not quiescing")
		}
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return e.q.Len() }
