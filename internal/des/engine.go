// Package des is the discrete-event network simulator substrate: a
// single-threaded event engine, the packet model, and the link transmission
// pipeline (output queue + transmitter + propagation). The paper evaluates
// its framework on a packet simulator; this package is that simulator,
// built from scratch on the eventq scheduler.
//
// Design notes:
//   - Single-threaded and fully deterministic for a given seed: every run of
//     an experiment is exactly reproducible.
//   - Data packets have exponentially distributed sizes so a FIFO link
//     approximates the M/M/1 behaviour the paper's cost function assumes.
//   - Routing-protocol messages travel over the same links but in a strict-
//     priority, lossless control band, implementing the paper's assumption
//     that "an underlying protocol ensures that messages transmitted over an
//     operational link are received correctly and in the proper sequence".
package des

import (
	"fmt"

	"minroute/internal/eventq"
	"minroute/internal/rng"
)

// Engine advances simulated time and dispatches events. Create with
// NewEngine; not safe for concurrent use. The engine owns the event and
// packet free lists: both are safe precisely because one engine is always
// driven by one goroutine (concurrency lives across simulations, never
// within one — see DESIGN.md "Concurrency model").
type Engine struct {
	q       eventq.Queue
	now     float64
	rng     *rng.Source
	packets PacketPool
	fired   int64

	// OnEvent, when set, runs after every fired event with the clock at the
	// event's time — the oracle tap point: invariant checkers (loop-freedom,
	// conservation) hook here to audit the network at event granularity.
	// The hook must not schedule events or advance the engine.
	OnEvent func()
}

// NewEngine returns an engine with its clock at zero and a root RNG seeded
// with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: rng.New(seed)}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's root random source. Components should derive
// their own streams via Split to stay decorrelated.
func (e *Engine) RNG() *rng.Source { return e.rng }

// Schedule runs fn at absolute time at. Scheduling in the past panics: it
// is always a simulation bug.
func (e *Engine) Schedule(at float64, fn func()) eventq.Handle {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (%.9f < %.9f)", at, e.now))
	}
	return e.q.Push(at, fn)
}

// After runs fn d seconds from now.
func (e *Engine) After(d float64, fn func()) eventq.Handle {
	if d < 0 {
		panic("des: negative delay")
	}
	return e.q.Push(e.now+d, fn)
}

// Cancel revokes a pending event.
func (e *Engine) Cancel(h eventq.Handle) { e.q.Cancel(h) }

// Step executes the next event, advancing the clock. It reports false when
// no events remain. Fired event records are recycled into the queue's free
// list, so the schedule-fire cycle is allocation-free at steady state.
func (e *Engine) Step() bool {
	ev := e.q.Pop()
	if ev == nil {
		return false
	}
	e.now = ev.Time()
	ev.Fire()
	e.q.Recycle(ev)
	e.fired++
	if e.OnEvent != nil {
		e.OnEvent()
	}
	return true
}

// EventsFired reports how many events have fired since the engine was
// created. Oracles report it alongside violations to locate them in a run.
func (e *Engine) EventsFired() int64 { return e.fired }

// NewPacket takes a packet from the engine's free list (or allocates one).
// The caller must overwrite every field; recycled packets keep stale data.
func (e *Engine) NewPacket() *Packet { return e.packets.Get() }

// FreePacket returns a packet whose lifetime has ended to the free list.
// Callers must not retain the pointer afterwards. Passing packets that were
// not obtained from NewPacket is allowed (they join the pool).
func (e *Engine) FreePacket(p *Packet) { e.packets.Put(p) }

// Run executes events until the clock would pass until, leaving later
// events pending and the clock at until.
func (e *Engine) Run(until float64) {
	for {
		ev := e.q.Peek()
		if ev == nil || ev.Time() > until {
			break
		}
		e.Step()
	}
	if until > e.now {
		e.now = until
	}
}

// RunAll executes every pending event. It panics after maxEvents events as
// a runaway guard (protocols that never quiesce are bugs).
func (e *Engine) RunAll(maxEvents int) {
	for i := 0; e.Step(); i++ {
		if i >= maxEvents {
			panic("des: RunAll exceeded event budget; protocol not quiescing")
		}
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return e.q.Len() }
