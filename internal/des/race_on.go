//go:build race

package des

// raceEnabled reports whether the race detector is compiled in. Alloc-count
// guard tests skip under race: the detector's instrumentation allocates, so
// an exact 0 allocs/op assertion would flake.
const raceEnabled = true
