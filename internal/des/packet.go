package des

import "minroute/internal/graph"

// Packet is the unit of traffic. Data packets carry FlowID >= 0 and a nil
// Control payload; routing-protocol packets carry Control != nil and travel
// in the lossless priority band.
type Packet struct {
	// Serial uniquely identifies a data packet when path tracing is on
	// (zero when untraced).
	Serial uint64
	// FlowID indexes the experiment's flow table; -1 for control traffic.
	FlowID int
	// Src and Dst are the origin and final destination routers.
	Src, Dst graph.NodeID
	// Bits is the packet length including headers.
	Bits float64
	// Created is the time the packet entered the network.
	Created float64
	// Hops counts forwarding steps, used to catch forwarding loops.
	Hops int
	// Control is an opaque protocol payload (e.g. an LSU message).
	Control any
}

// IsControl reports whether the packet belongs to the control band.
func (p *Packet) IsControl() bool { return p.Control != nil }

// PacketPool is a free list of packet records. A simulation churns through
// one packet per arrival; recycling them removes the dominant allocation of
// the DES hot path. The pool is not safe for concurrent use — each Engine
// owns one, and an engine is always driven by a single goroutine.
type PacketPool struct {
	free []*Packet
}

// Get returns a packet record. The caller must overwrite every field (e.g.
// with `*pkt = Packet{...}`): recycled records keep stale data by design,
// so the reset cost is paid only for the fields actually used.
func (pp *PacketPool) Get() *Packet {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		return p
	}
	return new(Packet)
}

// Put recycles a packet whose lifetime has ended. The caller must not keep
// the pointer. Control payloads are released so the pool never pins them.
func (pp *PacketPool) Put(p *Packet) {
	if p == nil {
		return
	}
	p.Control = nil
	pp.free = append(pp.free, p)
}
