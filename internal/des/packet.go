package des

import "minroute/internal/graph"

// Packet is the unit of traffic. Data packets carry FlowID >= 0 and a nil
// Control payload; routing-protocol packets carry Control != nil and travel
// in the lossless priority band.
type Packet struct {
	// Serial uniquely identifies a data packet when path tracing is on
	// (zero when untraced).
	Serial uint64
	// FlowID indexes the experiment's flow table; -1 for control traffic.
	FlowID int
	// Src and Dst are the origin and final destination routers.
	Src, Dst graph.NodeID
	// Bits is the packet length including headers.
	Bits float64
	// Created is the time the packet entered the network.
	Created float64
	// Hops counts forwarding steps, used to catch forwarding loops.
	Hops int
	// Control is an opaque protocol payload (e.g. an LSU message).
	Control any
}

// IsControl reports whether the packet belongs to the control band.
func (p *Packet) IsControl() bool { return p.Control != nil }
