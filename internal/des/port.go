package des

import (
	"minroute/internal/graph"
	"minroute/internal/linkcost"
	"minroute/internal/telemetry"
)

// DefaultQueueBits is the default output-queue limit: 512 KB of buffering
// (~500 mean-size packets). The paper's fluid model assumes traffic
// conservation — "the network does not lose any packets" — so the default
// is sized to absorb transient overloads; drop-tail still bounds truly
// pathological backlogs.
const DefaultQueueBits = 512 * 8 * 1024

// Port is the sending side of one directed link: a strict-priority,
// work-conserving transmitter with a lossless control band and a drop-tail
// data band, followed by a fixed propagation pipe. A Port is owned by the
// sending router; delivery invokes the receiver's callback.
//
// In a sharded run (internal/despart) the sender and receiver routers may
// live on different engines. The transmitter half (queues, service events,
// counters) always runs on the sender's engine; the propagation half (pipe,
// delivery events) runs on the receiver's engine rEng. When the two engines
// differ (xshard), finished transmissions are parked in a mailbox instead of
// being scheduled directly, and the coordinator moves them across the
// window barrier (FlipMail, single-threaded) before the receiver drains them
// (DrainInbox, receiver goroutine). Conservative lookahead — Prop is at
// least the window width — guarantees every mailed arrival lands at or after
// the window boundary, so the receiver never sees an event in its past.
type Port struct {
	From, To  graph.NodeID
	Capacity  float64 // bits per second
	Prop      float64 // seconds
	eng       *Engine
	deliver   func(*Packet)
	ctrl      fifo
	data      fifo
	dataBits  float64
	limitBits float64
	busy      bool
	down      bool

	// The transmission and propagation completions are pre-bound closures
	// (txDone/propDone) so the per-packet hot path schedules events without
	// allocating. Only one packet transmits at a time (txIt/txService), and
	// the propagation pipe delivers in FIFO order because every packet on a
	// port shares the same Prop delay and the event queue is stable.
	txIt      portItem
	txService float64
	txDone    func()
	pipe      fifo
	propDone  func()

	// Cross-shard state. rEng is the receiver-side engine (== eng unless
	// BindReceiver moved delivery to another shard); txPri/delivPri are the
	// origin priorities of the transmitter and delivery event chains, set by
	// the network from the global link index so equal-time events order
	// identically in serial and sharded runs. mailIn collects finished
	// transmissions during a window; mailOut is the previous window's batch
	// awaiting DrainInbox.
	rEng     *Engine
	txPri    uint64
	delivPri uint64
	xshard   bool
	mailIn   []mailEntry
	mailOut  []mailEntry

	// DataMeter counts transmitted data packets; routers read-and-reset it
	// at measurement boundaries to estimate the link flow f_ik.
	DataMeter linkcost.Meter
	// Estimator, when non-nil, receives (sojourn, service) observations for
	// every transmitted data packet (the PA-style online estimator input).
	Estimator *linkcost.OnlineEstimator

	// Probe, when non-nil, instruments the data band: enqueue events plus
	// queue-depth samples, transmitted bits, and failure losses. Nil (the
	// default) keeps the hot path at one branch per site and zero
	// allocations — the telemetry-guard benchmark pins that.
	Probe *telemetry.LinkProbe

	// Counters for validation and reporting. The Data* pair counts only
	// data-band packets; routers snapshot them to derive windowed flow
	// rates over arbitrary (Ts, Tl) horizons.
	SentPackets    int64
	SentBits       float64
	DataPackets    int64
	DataBits       float64
	DroppedPackets int64
	DroppedBits    float64
	// lostTx/lostRx count data packets the port had accepted ownership of
	// but lost to a link failure: lostTx on the sender side (queued at
	// SetDown or mid-transmission), lostRx on the receiver side (propagating
	// when the failure hit). Send rejections are not counted — ownership
	// stays with the caller. The split keeps each counter single-writer in a
	// sharded run; LostData sums them for the conservation oracle.
	lostTx int64
	lostRx int64
}

type portItem struct {
	pkt *Packet
	enq float64
}

// mailEntry is one finished transmission awaiting cross-shard delivery: the
// packet and its absolute arrival time (transmission end + Prop).
type mailEntry struct {
	at  float64
	pkt *Packet
}

// fifo is a head-indexed queue that reuses its backing array: draining and
// refilling — the common cycle of a lightly loaded port — never reallocates.
type fifo struct {
	items []portItem
	head  int
}

func (f *fifo) push(it portItem) { f.items = append(f.items, it) }
func (f *fifo) empty() bool      { return f.head >= len(f.items) }
func (f *fifo) len() int         { return len(f.items) - f.head }
func (f *fifo) pop() portItem {
	it := f.items[f.head]
	f.items[f.head] = portItem{} // release the packet reference
	f.head++
	if f.head == len(f.items) {
		// Empty: rewind into the same backing array.
		f.items = f.items[:0]
		f.head = 0
	} else if f.head > 64 && f.head > len(f.items)/2 {
		// Compact in place so the dead prefix cannot grow without bound.
		n := copy(f.items, f.items[f.head:])
		for i := n; i < len(f.items); i++ {
			f.items[i] = portItem{}
		}
		f.items = f.items[:n]
		f.head = 0
	}
	return it
}

func (f *fifo) clear() {
	for i := f.head; i < len(f.items); i++ {
		f.items[i] = portItem{}
	}
	f.items = f.items[:0]
	f.head = 0
}

// NewPort builds the sending side of link l. queueBits limits the data band
// (control is unbounded and lossless); deliver is invoked at the receiver
// after transmission plus propagation.
func NewPort(eng *Engine, l *graph.Link, queueBits float64, deliver func(*Packet)) *Port {
	if deliver == nil {
		panic("des: NewPort with nil deliver")
	}
	if queueBits <= 0 {
		queueBits = DefaultQueueBits
	}
	p := &Port{
		From:      l.From,
		To:        l.To,
		Capacity:  l.Capacity,
		Prop:      l.PropDelay,
		eng:       eng,
		rEng:      eng,
		txPri:     PriHarness,
		delivPri:  PriHarness,
		deliver:   deliver,
		limitBits: queueBits,
	}
	p.txDone = p.finishTransmission
	p.propDone = p.deliverNext
	return p
}

// SetPris pins the origin priorities of the port's transmitter and delivery
// event chains. The network derives them from the global link index
// (PriLinkTx/PriLinkDeliver) so equal-time link events order identically
// whether the run is serial or sharded.
func (p *Port) SetPris(txPri, delivPri uint64) {
	p.txPri, p.delivPri = txPri, delivPri
}

// BindReceiver moves the port's delivery side to another engine: finished
// transmissions are parked in the mailbox instead of scheduled, and the
// shard coordinator carries them across the window barrier. Binding the
// port's own engine restores direct in-engine delivery.
func (p *Port) BindReceiver(rEng *Engine) {
	p.rEng = rEng
	p.xshard = rEng != p.eng
}

// CrossShard reports whether delivery runs on a different engine than
// transmission.
func (p *Port) CrossShard() bool { return p.xshard }

// FlipMail publishes the window's finished transmissions to the receiver.
// The coordinator calls it inside the barrier (single-threaded), which is
// the only moment both mailbox halves may be touched by one goroutine.
func (p *Port) FlipMail() {
	p.mailIn, p.mailOut = p.mailOut[:0], p.mailIn
}

// DrainInbox schedules the published mailbox batch on the receiver engine.
// The receiver's shard goroutine calls it at window start, after the
// barrier, in ascending link order — so equal-time arrivals across links
// enqueue in the same relative order a serial run produces. Lookahead
// guarantees every entry's arrival time is at or after the receiver's
// clock; Schedule's past check enforces that loudly.
func (p *Port) DrainInbox() {
	for i := range p.mailOut {
		m := &p.mailOut[i]
		p.pipe.push(portItem{pkt: m.pkt})
		p.rEng.SchedulePri(m.at, p.delivPri, p.propDone)
		m.pkt = nil
	}
	p.mailOut = p.mailOut[:0]
}

// Send enqueues pkt for transmission. It reports false when the packet was
// dropped (data-band overflow or link down). Control packets are never
// dropped while the link is up.
//
// Ownership: on true the port owns pkt until delivery (or loss); on false
// ownership stays with the caller, who may recycle it via Engine.FreePacket.
func (p *Port) Send(pkt *Packet) bool {
	if p.down {
		p.DroppedPackets++
		p.DroppedBits += pkt.Bits
		return false
	}
	it := portItem{pkt: pkt, enq: p.eng.Now()}
	if pkt.IsControl() {
		p.ctrl.push(it)
	} else {
		if p.dataBits+pkt.Bits > p.limitBits {
			p.DroppedPackets++
			p.DroppedBits += pkt.Bits
			return false
		}
		p.data.push(it)
		p.dataBits += pkt.Bits
		if p.Probe != nil {
			p.Probe.Enqueue(it.enq, int32(pkt.FlowID), pkt.Dst, p.dataBits)
		}
	}
	if !p.busy {
		p.startNext()
	}
	return true
}

func (p *Port) startNext() {
	var it portItem
	switch {
	case !p.ctrl.empty():
		it = p.ctrl.pop()
	case !p.data.empty():
		it = p.data.pop()
		p.dataBits -= it.pkt.Bits
	default:
		p.busy = false
		return
	}
	p.busy = true
	p.txIt = it
	p.txService = it.pkt.Bits / p.Capacity
	p.eng.AfterPri(p.txService, p.txPri, p.txDone)
}

func (p *Port) finishTransmission() {
	it := p.txIt
	p.txIt = portItem{} // drop the reference; the pipe owns it from here
	if p.down {
		// The link failed mid-transmission; the packet is lost and the
		// transmitter stays idle until the link recovers.
		if !it.pkt.IsControl() {
			p.lostTx++
			if p.Probe != nil {
				p.Probe.LostTx(p.eng.Now(), int32(it.pkt.FlowID), it.pkt.Dst)
			}
		}
		p.eng.FreePacket(it.pkt)
		p.busy = false
		return
	}
	pkt := it.pkt
	p.SentPackets++
	p.SentBits += pkt.Bits
	if !pkt.IsControl() {
		p.DataPackets++
		p.DataBits += pkt.Bits
		p.DataMeter.Add(pkt.Bits)
		if p.Estimator != nil {
			p.Estimator.Observe(p.eng.Now()-it.enq, p.txService)
		}
		if p.Probe != nil {
			p.Probe.Transmit(p.eng.Now(), pkt.Bits)
		}
	}
	if p.xshard {
		p.mailIn = append(p.mailIn, mailEntry{at: p.eng.Now() + p.Prop, pkt: pkt})
	} else {
		p.pipe.push(portItem{pkt: pkt})
		p.rEng.SchedulePri(p.eng.Now()+p.Prop, p.delivPri, p.propDone)
	}
	p.startNext()
}

// deliverNext completes the propagation of the oldest in-flight packet. It
// runs on the receiver engine. Packets that were in the pipe when the link
// failed are lost at arrival time (the down check happens when the
// propagation event fires, exactly as the previous per-packet closure did).
func (p *Port) deliverNext() {
	it := p.pipe.pop()
	if p.down {
		if !it.pkt.IsControl() {
			p.lostRx++
			if p.Probe != nil {
				p.Probe.LostRx(p.rEng.Now(), int32(it.pkt.FlowID), it.pkt.Dst)
			}
		}
		p.rEng.FreePacket(it.pkt)
		return
	}
	p.deliver(it.pkt)
}

// SetDown takes the link down (queued packets are lost) or brings it back
// up. Bringing an up link up, or a down link down, is a no-op.
func (p *Port) SetDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	if down {
		for !p.ctrl.empty() {
			it := p.ctrl.pop()
			p.DroppedPackets++
			p.DroppedBits += it.pkt.Bits
			p.eng.FreePacket(it.pkt)
		}
		for !p.data.empty() {
			it := p.data.pop()
			p.DroppedPackets++
			p.DroppedBits += it.pkt.Bits
			p.lostTx++
			if p.Probe != nil {
				p.Probe.LostTx(p.eng.Now(), int32(it.pkt.FlowID), it.pkt.Dst)
			}
			p.eng.FreePacket(it.pkt)
		}
		p.ctrl.clear()
		p.data.clear()
		p.dataBits = 0
	}
}

// Down reports whether the link is failed.
func (p *Port) Down() bool { return p.down }

// QueuedDataBits returns the data-band backlog, excluding the packet in
// transmission.
func (p *Port) QueuedDataBits() float64 { return p.dataBits }

// QueuedPackets returns the number of queued packets in both bands,
// excluding the packet in transmission.
func (p *Port) QueuedPackets() int { return p.ctrl.len() + p.data.len() }

// Busy reports whether a transmission is in progress.
func (p *Port) Busy() bool { return p.busy }

// LostData returns the data packets the port accepted ownership of but lost
// to link failures, summed over the sender and receiver sides. The
// conservation oracle reads it at barriers (or in-engine, serially), where
// both counters are quiescent.
func (p *Port) LostData() int64 { return p.lostTx + p.lostRx }

// InFlightDataPackets counts the data packets the port currently owns:
// queued in the data band, in transmission, propagating in the pipe, and
// parked in the cross-shard mailbox. The conservation oracle uses it to
// balance offered traffic against delivered, dropped, and still-travelling
// packets; in a sharded run it must only be called at barriers.
func (p *Port) InFlightDataPackets() int {
	n := p.data.len()
	if p.txIt.pkt != nil && !p.txIt.pkt.IsControl() {
		n++
	}
	for i := p.pipe.head; i < len(p.pipe.items); i++ {
		if !p.pipe.items[i].pkt.IsControl() {
			n++
		}
	}
	for i := range p.mailIn {
		if !p.mailIn[i].pkt.IsControl() {
			n++
		}
	}
	for i := range p.mailOut {
		if !p.mailOut[i].pkt.IsControl() {
			n++
		}
	}
	return n
}
