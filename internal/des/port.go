package des

import (
	"minroute/internal/graph"
	"minroute/internal/linkcost"
)

// DefaultQueueBits is the default output-queue limit: 512 KB of buffering
// (~500 mean-size packets). The paper's fluid model assumes traffic
// conservation — "the network does not lose any packets" — so the default
// is sized to absorb transient overloads; drop-tail still bounds truly
// pathological backlogs.
const DefaultQueueBits = 512 * 8 * 1024

// Port is the sending side of one directed link: a strict-priority,
// work-conserving transmitter with a lossless control band and a drop-tail
// data band, followed by a fixed propagation pipe. A Port is owned by the
// sending router; delivery invokes the receiver's callback.
type Port struct {
	From, To  graph.NodeID
	Capacity  float64 // bits per second
	Prop      float64 // seconds
	eng       *Engine
	deliver   func(*Packet)
	ctrl      fifo
	data      fifo
	dataBits  float64
	limitBits float64
	busy      bool
	down      bool

	// DataMeter counts transmitted data packets; routers read-and-reset it
	// at measurement boundaries to estimate the link flow f_ik.
	DataMeter linkcost.Meter
	// Estimator, when non-nil, receives (sojourn, service) observations for
	// every transmitted data packet (the PA-style online estimator input).
	Estimator *linkcost.OnlineEstimator

	// Counters for validation and reporting. The Data* pair counts only
	// data-band packets; routers snapshot them to derive windowed flow
	// rates over arbitrary (Ts, Tl) horizons.
	SentPackets    int64
	SentBits       float64
	DataPackets    int64
	DataBits       float64
	DroppedPackets int64
	DroppedBits    float64
}

type portItem struct {
	pkt *Packet
	enq float64
}

type fifo struct {
	items []portItem
}

func (f *fifo) push(it portItem) { f.items = append(f.items, it) }
func (f *fifo) empty() bool      { return len(f.items) == 0 }
func (f *fifo) pop() portItem {
	it := f.items[0]
	// Reslice; occasionally compact to avoid unbounded backing growth.
	f.items = f.items[1:]
	if len(f.items) == 0 {
		f.items = nil
	} else if cap(f.items) > 4*len(f.items) && cap(f.items) > 64 {
		f.items = append([]portItem(nil), f.items...)
	}
	return it
}
func (f *fifo) clear() { f.items = nil }

// NewPort builds the sending side of link l. queueBits limits the data band
// (control is unbounded and lossless); deliver is invoked at the receiver
// after transmission plus propagation.
func NewPort(eng *Engine, l *graph.Link, queueBits float64, deliver func(*Packet)) *Port {
	if deliver == nil {
		panic("des: NewPort with nil deliver")
	}
	if queueBits <= 0 {
		queueBits = DefaultQueueBits
	}
	return &Port{
		From:      l.From,
		To:        l.To,
		Capacity:  l.Capacity,
		Prop:      l.PropDelay,
		eng:       eng,
		deliver:   deliver,
		limitBits: queueBits,
	}
}

// Send enqueues pkt for transmission. It reports false when the packet was
// dropped (data-band overflow or link down). Control packets are never
// dropped while the link is up.
func (p *Port) Send(pkt *Packet) bool {
	if p.down {
		p.DroppedPackets++
		p.DroppedBits += pkt.Bits
		return false
	}
	it := portItem{pkt: pkt, enq: p.eng.Now()}
	if pkt.IsControl() {
		p.ctrl.push(it)
	} else {
		if p.dataBits+pkt.Bits > p.limitBits {
			p.DroppedPackets++
			p.DroppedBits += pkt.Bits
			return false
		}
		p.data.push(it)
		p.dataBits += pkt.Bits
	}
	if !p.busy {
		p.startNext()
	}
	return true
}

func (p *Port) startNext() {
	var it portItem
	switch {
	case !p.ctrl.empty():
		it = p.ctrl.pop()
	case !p.data.empty():
		it = p.data.pop()
		p.dataBits -= it.pkt.Bits
	default:
		p.busy = false
		return
	}
	p.busy = true
	service := it.pkt.Bits / p.Capacity
	p.eng.After(service, func() { p.finishTransmission(it, service) })
}

func (p *Port) finishTransmission(it portItem, service float64) {
	if p.down {
		// The link failed mid-transmission; the packet is lost and the
		// transmitter stays idle until the link recovers.
		p.busy = false
		return
	}
	pkt := it.pkt
	p.SentPackets++
	p.SentBits += pkt.Bits
	if !pkt.IsControl() {
		p.DataPackets++
		p.DataBits += pkt.Bits
		p.DataMeter.Add(pkt.Bits)
		if p.Estimator != nil {
			p.Estimator.Observe(p.eng.Now()-it.enq, service)
		}
	}
	p.eng.After(p.Prop, func() {
		if !p.down {
			p.deliver(pkt)
		}
	})
	p.startNext()
}

// SetDown takes the link down (queued packets are lost) or brings it back
// up. Bringing an up link up, or a down link down, is a no-op.
func (p *Port) SetDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	if down {
		for !p.ctrl.empty() {
			it := p.ctrl.pop()
			p.DroppedPackets++
			p.DroppedBits += it.pkt.Bits
		}
		for !p.data.empty() {
			it := p.data.pop()
			p.DroppedPackets++
			p.DroppedBits += it.pkt.Bits
		}
		p.ctrl.clear()
		p.data.clear()
		p.dataBits = 0
	}
}

// Down reports whether the link is failed.
func (p *Port) Down() bool { return p.down }

// QueuedDataBits returns the data-band backlog, excluding the packet in
// transmission.
func (p *Port) QueuedDataBits() float64 { return p.dataBits }

// QueuedPackets returns the number of queued packets in both bands,
// excluding the packet in transmission.
func (p *Port) QueuedPackets() int { return len(p.ctrl.items) + len(p.data.items) }

// Busy reports whether a transmission is in progress.
func (p *Port) Busy() bool { return p.busy }
