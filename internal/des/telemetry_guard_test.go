package des

import (
	"testing"

	"minroute/internal/telemetry"
)

// TestTelemetryDisabledZeroAlloc is the telemetry-overhead guard wired into
// `make check` (target telemetry-guard): with no Probe installed, the full
// per-packet pipeline — pool Get, Send, transmission, propagation, delivery,
// pool Put — must stay allocation-free. Each probe site is one nil check;
// this test fails if instrumentation ever leaks an allocation onto the
// disabled path.
func TestTelemetryDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	e := NewEngine(1)
	l := mkLink(t, 1e9, 0.0001)
	p := NewPort(e, l, 1e12, func(pkt *Packet) { e.FreePacket(pkt) })
	r := e.RNG().Split(1)
	run := func() {
		pkt := e.NewPacket()
		*pkt = Packet{Bits: r.Exp(8000), Created: e.Now()}
		p.Send(pkt)
		for e.Pending() > 0 {
			e.Step()
		}
	}
	// Warm the packet pool and event queue to steady state before counting.
	for i := 0; i < 256; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(1000, run); allocs != 0 {
		t.Fatalf("disabled-telemetry link pipeline allocates %v/op, want 0", allocs)
	}
}

// BenchmarkLinkPipelineTelemetry is BenchmarkLinkPipeline with a full link
// probe installed (events plus queue/throughput metrics), quantifying the
// enabled-path cost per packet. Compare in BENCH_telemetry.json.
func BenchmarkLinkPipelineTelemetry(b *testing.B) {
	e := NewEngine(1)
	l := mkLink(b, 1e9, 0.0001)
	p := NewPort(e, l, 1e12, func(pkt *Packet) { e.FreePacket(pkt) })
	reg := telemetry.NewRegistry(telemetry.DefaultBucketWidth)
	p.Probe = &telemetry.LinkProbe{
		Tracer:    telemetry.NewTracer(2, telemetry.DefaultRingCap),
		From:      0,
		To:        1,
		QueueBits: reg.Histogram("bench.queue.bits"),
		TxBits:    reg.Counter("bench.tx.bits"),
		LostPkts:  reg.Counter("bench.lost.pkts"),
	}
	r := e.RNG().Split(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := e.NewPacket()
		*pkt = Packet{Bits: r.Exp(8000), Created: e.Now()}
		p.Send(pkt)
		for e.Pending() > 0 {
			e.Step()
		}
	}
}
