package des

import (
	"math"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/linkcost"
)

func mkLink(t testing.TB, capacity, prop float64) *graph.Link {
	t.Helper()
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if err := g.AddLink(a, b, capacity, prop); err != nil {
		t.Fatal(err)
	}
	l, _ := g.Link(a, b)
	return l
}

func TestEngineClock(t *testing.T) {
	e := NewEngine(1)
	var fired []float64
	e.Schedule(2, func() { fired = append(fired, e.Now()) })
	e.After(1, func() { fired = append(fired, e.Now()) })
	e.Run(10)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Run(4)
	if fired {
		t.Fatal("event beyond Run boundary fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(5)
	if !fired {
		t.Fatal("event at boundary did not fire")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(5, func() {})
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestAfterNegativePanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancelEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(1, func() { fired = true })
	e.Cancel(ev)
	e.Run(2)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunAllBudget(t *testing.T) {
	e := NewEngine(1)
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(1, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway RunAll did not panic")
		}
	}()
	e.RunAll(100)
}

func TestPortDeliversAfterServicePlusProp(t *testing.T) {
	e := NewEngine(1)
	var deliveredAt float64
	l := mkLink(t, 1e6, 0.01) // 1 Mb/s, 10 ms prop
	p := NewPort(e, l, 0, func(pkt *Packet) { deliveredAt = e.Now() })
	pkt := &Packet{FlowID: 0, Bits: 1000, Created: 0}
	if !p.Send(pkt) {
		t.Fatal("send failed")
	}
	e.Run(1)
	want := 1000.0/1e6 + 0.01
	if math.Abs(deliveredAt-want) > 1e-12 {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if p.SentPackets != 1 || p.SentBits != 1000 {
		t.Fatalf("counters: %d pkts %v bits", p.SentPackets, p.SentBits)
	}
}

func TestPortFIFOOrderPreserved(t *testing.T) {
	e := NewEngine(1)
	var order []int
	l := mkLink(t, 1e6, 0.005)
	p := NewPort(e, l, 1e9, func(pkt *Packet) { order = append(order, pkt.FlowID) })
	for i := 0; i < 5; i++ {
		p.Send(&Packet{FlowID: i, Bits: 800})
	}
	e.Run(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPortControlPriority(t *testing.T) {
	e := NewEngine(1)
	var order []int
	l := mkLink(t, 1e6, 0)
	p := NewPort(e, l, 1e9, func(pkt *Packet) { order = append(order, pkt.FlowID) })
	// One data packet starts transmitting; more data queues; then control
	// arrives and must jump the data queue.
	p.Send(&Packet{FlowID: 1, Bits: 8000})
	p.Send(&Packet{FlowID: 2, Bits: 8000})
	p.Send(&Packet{FlowID: 3, Bits: 100, Control: "lsu"})
	e.Run(1)
	if len(order) != 3 || order[0] != 1 || order[1] != 3 || order[2] != 2 {
		t.Fatalf("order = %v, want [1 3 2]", order)
	}
}

func TestPortDropTail(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e3, 0) // slow link so the queue fills
	delivered := 0
	p := NewPort(e, l, 1000, func(pkt *Packet) { delivered++ })
	// First packet enters service immediately; the next fills the queue.
	sent := 0
	for i := 0; i < 5; i++ {
		if p.Send(&Packet{FlowID: i, Bits: 600}) {
			sent++
		}
	}
	if p.DroppedPackets == 0 {
		t.Fatal("no drops despite overflow")
	}
	if sent+int(p.DroppedPackets) != 5 {
		t.Fatalf("sent %d + dropped %d != 5", sent, p.DroppedPackets)
	}
	e.Run(100)
	if delivered != sent {
		t.Fatalf("delivered %d, accepted %d", delivered, sent)
	}
}

func TestPortControlNeverDropped(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e3, 0)
	delivered := 0
	p := NewPort(e, l, 100, func(pkt *Packet) { delivered++ })
	for i := 0; i < 50; i++ {
		if !p.Send(&Packet{Bits: 600, Control: "lsu"}) {
			t.Fatal("control packet dropped on an up link")
		}
	}
	e.Run(100)
	if delivered != 50 {
		t.Fatalf("delivered %d control packets, want 50", delivered)
	}
}

func TestPortDown(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e6, 0.001)
	delivered := 0
	p := NewPort(e, l, 1e9, func(pkt *Packet) { delivered++ })
	p.Send(&Packet{Bits: 8000})
	p.Send(&Packet{Bits: 8000})
	p.SetDown(true)
	if p.Send(&Packet{Bits: 8000}) {
		t.Fatal("send on a down link succeeded")
	}
	e.Run(1)
	if delivered != 0 {
		t.Fatalf("delivered %d packets through a down link", delivered)
	}
	if !p.Down() {
		t.Fatal("Down() = false")
	}
	// Recovery: new packets flow again.
	p.SetDown(false)
	p.Send(&Packet{Bits: 8000})
	e.Run(2)
	if delivered != 1 {
		t.Fatalf("delivered %d after recovery, want 1", delivered)
	}
}

func TestPortMeterCountsDataOnly(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e6, 0)
	p := NewPort(e, l, 1e9, func(pkt *Packet) {})
	p.Send(&Packet{Bits: 8000})
	p.Send(&Packet{Bits: 400, Control: "lsu"})
	e.Run(1)
	if p.DataMeter.Packets() != 1 {
		t.Fatalf("meter counted %d packets, want 1 (data only)", p.DataMeter.Packets())
	}
}

// TestMM1SingleLink validates the whole pipeline against queueing theory:
// Poisson arrivals of exponentially sized packets through one port must see
// an average sojourn of 1/(mu-lambda).
func TestMM1SingleLink(t *testing.T) {
	e := NewEngine(7)
	const capacity = 1e6 // bits/s
	const meanBits = 8000.0
	mu := capacity / meanBits // 125 pkts/s
	lambda := 0.7 * mu

	l := mkLink(t, capacity, 0)
	var sum float64
	var n int
	p := NewPort(e, l, 1e12, func(pkt *Packet) {
		sum += e.Now() - pkt.Created
		n++
	})
	r := e.RNG().Split(1)
	var arrive func()
	arrive = func() {
		p.Send(&Packet{Bits: r.Exp(meanBits), Created: e.Now()})
		e.After(r.Exp(1/lambda), arrive)
	}
	e.After(r.Exp(1/lambda), arrive)
	e.Run(2000)

	got := sum / float64(n)
	want := 1 / (mu - lambda)
	if rel := math.Abs(got-want) / want; rel > 0.08 {
		t.Fatalf("M/M/1 sojourn = %v, theory %v (rel err %v, n=%d)", got, want, rel, n)
	}
}

// TestOnlineEstimatorThroughPort checks the full measurement path: the
// port's estimator must recover the M/M/1 marginal delay.
func TestOnlineEstimatorThroughPort(t *testing.T) {
	e := NewEngine(11)
	const capacity, meanBits = 1e6, 8000.0
	mu := capacity / meanBits
	lambda := 0.6 * mu
	l := mkLink(t, capacity, 0)
	p := NewPort(e, l, 1e12, func(pkt *Packet) {})
	p.Estimator = linkcost.NewOnlineEstimator(0, 1/mu)
	r := e.RNG().Split(2)
	var arrive func()
	arrive = func() {
		p.Send(&Packet{Bits: r.Exp(meanBits), Created: e.Now()})
		e.After(r.Exp(1/lambda), arrive)
	}
	e.After(0.01, arrive)
	e.Run(3000)
	got := p.Estimator.Take()
	want := linkcost.MM1Marginal(lambda, mu, 0)
	if rel := math.Abs(got-want) / want; rel > 0.15 {
		t.Fatalf("estimated marginal %v vs theory %v (rel %v)", got, want, rel)
	}
}

func TestPacketPoolRecycles(t *testing.T) {
	var pp PacketPool
	a := pp.Get()
	a.Control = []byte{1}
	pp.Put(a)
	b := pp.Get()
	if b != a {
		t.Fatal("Get after Put did not reuse the record")
	}
	if b.Control != nil {
		t.Fatal("Put did not release the control payload")
	}
	if c := pp.Get(); c == a {
		t.Fatal("empty pool handed out a live record")
	}
	pp.Put(nil) // must not panic
}

func TestLinkDownRecyclesInFlightPackets(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e6, 0.01)
	delivered := 0
	p := NewPort(e, l, 1e12, func(pkt *Packet) { delivered++; e.FreePacket(pkt) })
	for i := 0; i < 3; i++ {
		pkt := e.NewPacket()
		*pkt = Packet{Bits: 8000, Created: e.Now()}
		p.Send(pkt)
	}
	// Fail the link while packets sit queued and one is mid-flight: every
	// record must come back through the pool with nothing delivered.
	e.Run(0.001)
	p.SetDown(true)
	e.Run(1)
	if delivered != 0 {
		t.Fatalf("delivered %d packets over a failed link", delivered)
	}
	if got := len(e.packets.free); got != 3 {
		t.Fatalf("pool recovered %d of 3 packets lost to the failure", got)
	}
}

func TestFlowConservationThroughPort(t *testing.T) {
	e := NewEngine(3)
	l := mkLink(t, 1e6, 0.001)
	delivered := int64(0)
	p := NewPort(e, l, 4000, func(pkt *Packet) { delivered++ })
	sentOK := int64(0)
	for i := 0; i < 200; i++ {
		at := float64(i) * 0.0001
		e.Schedule(at, func() {
			if p.Send(&Packet{Bits: 800}) {
				sentOK++
			}
		})
	}
	e.Run(10)
	if delivered != sentOK {
		t.Fatalf("conservation violated: accepted %d, delivered %d", sentOK, delivered)
	}
}

func BenchmarkPortThroughput(b *testing.B) {
	e := NewEngine(1)
	g := graph.New()
	a, c := g.AddNode("a"), g.AddNode("b")
	_ = g.AddLink(a, c, 1e9, 0)
	l, _ := g.Link(a, c)
	p := NewPort(e, l, 1e12, func(pkt *Packet) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(&Packet{Bits: 8000})
		e.Step()
	}
}

// BenchmarkLinkPipeline drives the full per-packet data path the simulator
// runs in its hot loop — pool Get, Send, transmission event, propagation
// event, delivery, pool Put — and must be allocation-free at steady state.
func BenchmarkLinkPipeline(b *testing.B) {
	e := NewEngine(1)
	l := mkLink(b, 1e9, 0.0001)
	p := NewPort(e, l, 1e12, func(pkt *Packet) { e.FreePacket(pkt) })
	r := e.RNG().Split(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := e.NewPacket()
		*pkt = Packet{Bits: r.Exp(8000), Created: e.Now()}
		p.Send(pkt)
		// Drain the transmission and propagation events this packet queued.
		for e.Pending() > 0 {
			e.Step()
		}
	}
}

// BenchmarkLinkPipelineNoPool is the same loop with a fresh packet per
// arrival and no recycling, quantifying the allocation diet's win.
func BenchmarkLinkPipelineNoPool(b *testing.B) {
	e := NewEngine(1)
	l := mkLink(b, 1e9, 0.0001)
	p := NewPort(e, l, 1e12, func(pkt *Packet) {})
	r := e.RNG().Split(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(&Packet{Bits: r.Exp(8000), Created: e.Now()})
		for e.Pending() > 0 {
			e.Step()
		}
	}
}
