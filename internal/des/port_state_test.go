package des

import "testing"

func TestEngineOnEventHookAndEventsFired(t *testing.T) {
	e := NewEngine(1)
	hooks := 0
	e.OnEvent = func() {
		hooks++
		if e.EventsFired() != int64(hooks) {
			t.Fatalf("EventsFired = %d inside hook %d", e.EventsFired(), hooks)
		}
	}
	e.After(1, func() {})
	e.After(2, func() {})
	e.Run(10)
	if hooks != 2 || e.EventsFired() != 2 {
		t.Fatalf("hooks = %d, EventsFired = %d, want 2 each", hooks, e.EventsFired())
	}
}

func TestNewPortNilDeliverPanics(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e6, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("NewPort with nil deliver did not panic")
		}
	}()
	NewPort(e, l, 0, nil)
}

// TestPortStateAccessors walks one congested port through its lifecycle and
// checks the instantaneous state the conservation oracle reads: queue depth,
// transmitter occupancy, and the in-flight packet census.
func TestPortStateAccessors(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e3, 0.5) // slow link, long pipe: everything stays visible
	p := NewPort(e, l, 1e9, func(pkt *Packet) {})
	if p.Busy() || p.QueuedPackets() != 0 || p.QueuedDataBits() != 0 || p.InFlightDataPackets() != 0 {
		t.Fatal("fresh port not idle")
	}
	p.Send(&Packet{Bits: 1000})                  // enters service
	p.Send(&Packet{Bits: 600})                   // queued data
	p.Send(&Packet{Bits: 200, Control: "hello"}) // queued control
	if !p.Busy() {
		t.Fatal("port with a packet in service not busy")
	}
	if p.QueuedPackets() != 2 {
		t.Fatalf("QueuedPackets = %d, want 2 (one data, one control)", p.QueuedPackets())
	}
	if p.QueuedDataBits() != 600 {
		t.Fatalf("QueuedDataBits = %v, want 600", p.QueuedDataBits())
	}
	// In flight: one transmitting + one queued data (control excluded).
	if got := p.InFlightDataPackets(); got != 2 {
		t.Fatalf("InFlightDataPackets = %d, want 2", got)
	}
	// After the first transmission completes the packet propagates; the
	// control packet preempts the queued data one into service.
	e.Run(1000.0/1e3 + 0.01)
	if got := p.InFlightDataPackets(); got != 2 {
		t.Fatalf("InFlightDataPackets with one in pipe = %d, want 2", got)
	}
	e.Run(100)
	if p.Busy() || p.QueuedPackets() != 0 || p.InFlightDataPackets() != 0 {
		t.Fatal("drained port not idle")
	}
}

// TestLinkDownLosesPropagatingData fails the link while a data packet is in
// the propagation pipe: the packet must be lost at arrival time and counted
// in LostDataPackets, not delivered.
func TestLinkDownLosesPropagatingData(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e6, 0.1)
	delivered := 0
	p := NewPort(e, l, 1e9, func(pkt *Packet) { delivered++ })
	p.Send(&Packet{Bits: 1000})
	e.Run(0.01) // transmission done (1 ms), packet propagating
	if p.SentPackets != 1 {
		t.Fatalf("SentPackets = %d, want 1 (transmission complete)", p.SentPackets)
	}
	p.SetDown(true)
	e.Run(1)
	if delivered != 0 {
		t.Fatal("packet delivered through a link that failed mid-propagation")
	}
	if p.LostData() != 1 {
		t.Fatalf("LostDataPackets = %d, want 1", p.LostData())
	}
}

// TestLinkDownLosesPropagatingControl is the same failure with a control
// packet in the pipe: it is lost too (the reliable-delivery assumption only
// holds for operational links) but never counted as lost data.
func TestLinkDownLosesPropagatingControl(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e6, 0.1)
	delivered := 0
	p := NewPort(e, l, 1e9, func(pkt *Packet) { delivered++ })
	p.Send(&Packet{Bits: 1000, Control: "lsu"})
	e.Run(0.01)
	p.SetDown(true)
	e.Run(1)
	if delivered != 0 || p.LostData() != 0 {
		t.Fatalf("delivered = %d, LostDataPackets = %d; want 0, 0", delivered, p.LostData())
	}
}

// TestLinkDownLosesMidTransmissionControl fails the link while a control
// packet is in the transmitter: the packet is lost without touching the
// data-loss counter, and the transmitter stays idle until recovery.
func TestLinkDownLosesMidTransmissionControl(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e3, 0)
	delivered := 0
	p := NewPort(e, l, 1e9, func(pkt *Packet) { delivered++ })
	p.Send(&Packet{Bits: 1000, Control: "lsu"})
	e.Run(0.1) // mid-transmission (service takes 1 s)
	p.SetDown(true)
	e.Run(10)
	if delivered != 0 || p.LostData() != 0 {
		t.Fatalf("delivered = %d, LostDataPackets = %d; want 0, 0", delivered, p.LostData())
	}
	if p.Busy() {
		t.Fatal("transmitter busy after losing its packet to the failure")
	}
}

// TestSetDownDrainsControlBand queues control packets behind a slow
// transmission and fails the link: the control band must be flushed with the
// drops accounted, and none of them counted as lost data.
func TestSetDownDrainsControlBand(t *testing.T) {
	e := NewEngine(1)
	l := mkLink(t, 1e3, 0)
	p := NewPort(e, l, 1e9, func(pkt *Packet) {})
	p.Send(&Packet{Bits: 5000})                 // occupies the transmitter for 5 s
	p.Send(&Packet{Bits: 300, Control: "lsu"})  // queued control
	p.Send(&Packet{Bits: 300, Control: "lsu2"}) // queued control
	p.Send(&Packet{Bits: 700})                  // queued data
	e.Run(0.1)
	p.SetDown(true)
	if p.DroppedPackets != 3 {
		t.Fatalf("DroppedPackets = %d, want 3 (two control + one data)", p.DroppedPackets)
	}
	if p.DroppedBits != 300+300+700 {
		t.Fatalf("DroppedBits = %v, want 1300", p.DroppedBits)
	}
	if p.LostData() != 1 {
		t.Fatalf("LostDataPackets = %d, want 1 (queued data only)", p.LostData())
	}
	if p.QueuedDataBits() != 0 || p.QueuedPackets() != 0 {
		t.Fatal("queues not empty after SetDown")
	}
	// Redundant transitions are no-ops.
	p.SetDown(true)
	p.SetDown(false)
	p.SetDown(false)
	if p.Down() {
		t.Fatal("port still down after recovery")
	}
}

func TestFifoLenPopClear(t *testing.T) {
	var f fifo
	if f.len() != 0 || !f.empty() {
		t.Fatal("fresh fifo not empty")
	}
	pkts := make([]Packet, 200)
	for i := range pkts {
		pkts[i].FlowID = i
		f.push(portItem{pkt: &pkts[i]})
	}
	if f.len() != 200 {
		t.Fatalf("len = %d, want 200", f.len())
	}
	// Pop past the compaction threshold (head > 64 and head > len/2) so the
	// in-place copy branch runs, then verify order survives it.
	for i := 0; i < 150; i++ {
		if got := f.pop(); got.pkt.FlowID != i {
			t.Fatalf("pop %d returned flow %d", i, got.pkt.FlowID)
		}
	}
	if f.len() != 50 {
		t.Fatalf("len after 150 pops = %d, want 50", f.len())
	}
	if f.head > 64 {
		t.Fatalf("head = %d, compaction never ran", f.head)
	}
	f.clear()
	if f.len() != 0 || !f.empty() {
		t.Fatal("fifo not empty after clear")
	}
	// Draining to exactly empty rewinds into the same backing array.
	f.push(portItem{pkt: &pkts[0]})
	f.pop()
	if f.head != 0 || len(f.items) != 0 {
		t.Fatalf("drained fifo not rewound: head=%d len=%d", f.head, len(f.items))
	}
}
