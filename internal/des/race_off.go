//go:build !race

package des

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
