package pda

import (
	"math"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/lsu"
)

// TestMTUConflictResolution exercises the paper's conflict rule directly:
// "If two or more neighbors report information of link (m, n) then the
// router should update topology table T with link information reported by
// the neighbor that offers the shortest distance from the router to the
// head node m of the link."
func TestMTUConflictResolution(t *testing.T) {
	// Router 0 with neighbors 1 and 2. Both report link 3->4 with different
	// costs. Neighbor 1 offers the shorter path to head node 3.
	tb := NewTables(0, 5)
	tb.SetAdjacent(1, 1.0)
	tb.SetAdjacent(2, 5.0)

	// Neighbor 1's tree: 1->3 (1), 3->4 (10).
	tb.ApplyLSU(1, []lsu.Entry{
		{Op: lsu.OpAdd, Head: 1, Tail: 3, Cost: 1},
		{Op: lsu.OpAdd, Head: 3, Tail: 4, Cost: 10},
	})
	// Neighbor 2's tree: 2->3 (1), 3->4 (2): cheaper tail but 2 is a more
	// expensive neighbor, so 1's report of 3->4 must win.
	tb.ApplyLSU(2, []lsu.Entry{
		{Op: lsu.OpAdd, Head: 2, Tail: 3, Cost: 1},
		{Op: lsu.OpAdd, Head: 3, Tail: 4, Cost: 2},
	})
	tb.RunMTU()
	// Distance to 3: via 1 = 1+1 = 2; via 2 = 5+1 = 6. Preferred is 1, so
	// link 3->4 must carry 1's cost (10) and D_4 = 2+10 = 12.
	if c, ok := tb.Main().Cost(3, 4); !ok || c != 10 {
		t.Fatalf("link 3->4 cost = %v,%v; want 10 from preferred neighbor", c, ok)
	}
	if got := tb.Dist(4); got != 12 {
		t.Fatalf("D_4 = %v, want 12", got)
	}
}

// TestMTUConflictTieBreaksLowestAddress: with equal distances to the head,
// the lower-address neighbor's report wins.
func TestMTUConflictTieBreaksLowestAddress(t *testing.T) {
	tb := NewTables(0, 5)
	tb.SetAdjacent(1, 1.0)
	tb.SetAdjacent(2, 1.0)
	tb.ApplyLSU(1, []lsu.Entry{
		{Op: lsu.OpAdd, Head: 1, Tail: 3, Cost: 1},
		{Op: lsu.OpAdd, Head: 3, Tail: 4, Cost: 7},
	})
	tb.ApplyLSU(2, []lsu.Entry{
		{Op: lsu.OpAdd, Head: 2, Tail: 3, Cost: 1},
		{Op: lsu.OpAdd, Head: 3, Tail: 4, Cost: 9},
	})
	tb.RunMTU()
	if c, _ := tb.Main().Cost(3, 4); c != 7 {
		t.Fatalf("link 3->4 cost = %v, want 7 (lower-address neighbor)", c)
	}
}

// TestMTUAdjacentLinksOverride: "any information about an adjacent link
// supplied by neighbors will be overridden by the most current information
// about the link available to router i".
func TestMTUAdjacentLinksOverride(t *testing.T) {
	tb := NewTables(0, 3)
	tb.SetAdjacent(1, 2.0)
	// Neighbor 1 claims our adjacent link 0->1 costs 99.
	tb.ApplyLSU(1, []lsu.Entry{
		{Op: lsu.OpAdd, Head: 0, Tail: 1, Cost: 99},
	})
	tb.RunMTU()
	if c, ok := tb.Main().Cost(0, 1); !ok || c != 2.0 {
		t.Fatalf("adjacent link cost = %v,%v; want local value 2.0", c, ok)
	}
	if tb.Dist(1) != 2.0 {
		t.Fatalf("D_1 = %v, want 2", tb.Dist(1))
	}
}

// TestMTUPrunesToTree: T holds only shortest-path-tree links after MTU.
func TestMTUPrunesToTree(t *testing.T) {
	tb := NewTables(0, 4)
	tb.SetAdjacent(1, 1.0)
	tb.SetAdjacent(2, 1.0)
	tb.ApplyLSU(1, []lsu.Entry{{Op: lsu.OpAdd, Head: 1, Tail: 3, Cost: 1}})
	tb.ApplyLSU(2, []lsu.Entry{{Op: lsu.OpAdd, Head: 2, Tail: 3, Cost: 5}})
	tb.RunMTU()
	// Tree: 0->1, 0->2, 1->3. The 2->3 link is not on the tree.
	if _, ok := tb.Main().Cost(2, 3); ok {
		t.Fatal("non-tree link 2->3 survived MTU pruning")
	}
	if tb.Main().NumLinks() != 3 {
		t.Fatalf("tree has %d links, want 3", tb.Main().NumLinks())
	}
	if tb.Dist(3) != 2 {
		t.Fatalf("D_3 = %v, want 2", tb.Dist(3))
	}
}

// TestMTUDiffIsMinimal: a second MTU with no changes reports an empty diff.
func TestMTUDiffIsMinimal(t *testing.T) {
	tb := NewTables(0, 3)
	tb.SetAdjacent(1, 1.0)
	if diff := tb.RunMTU(); len(diff) == 0 {
		t.Fatal("first MTU reported no changes")
	}
	if diff := tb.RunMTU(); len(diff) != 0 {
		t.Fatalf("idempotent MTU reported %v", diff)
	}
}

func TestTablesNeighborsSorted(t *testing.T) {
	tb := NewTables(0, 6)
	for _, k := range []graph.NodeID{5, 2, 4} {
		tb.SetAdjacent(k, 1)
	}
	nbrs := tb.Neighbors()
	if len(nbrs) != 3 || nbrs[0] != 2 || nbrs[1] != 4 || nbrs[2] != 5 {
		t.Fatalf("neighbors = %v", nbrs)
	}
}

func TestTablesRemoveAdjacentClearsState(t *testing.T) {
	tb := NewTables(0, 3)
	tb.SetAdjacent(1, 1)
	tb.ApplyLSU(1, []lsu.Entry{{Op: lsu.OpAdd, Head: 1, Tail: 2, Cost: 1}})
	tb.RunMTU()
	tb.RemoveAdjacent(1)
	tb.RunMTU()
	if !math.IsInf(tb.Dist(2), 1) {
		t.Fatalf("D_2 = %v after losing the only neighbor", tb.Dist(2))
	}
	if tb.NeighborTopo(1) != nil {
		t.Fatal("neighbor topology survives RemoveAdjacent")
	}
	if d := tb.NbrDist(2, 1); !math.IsInf(d, 1) {
		t.Fatalf("NbrDist after removal = %v", d)
	}
}

func TestTablesApplyLSUFromUnknownNeighborIgnored(t *testing.T) {
	tb := NewTables(0, 3)
	tb.ApplyLSU(1, []lsu.Entry{{Op: lsu.OpAdd, Head: 1, Tail: 2, Cost: 1}})
	tb.RunMTU()
	if !math.IsInf(tb.Dist(2), 1) {
		t.Fatal("LSU from unknown neighbor was processed")
	}
}
