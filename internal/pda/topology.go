// Package pda implements the Partial-topology Dissemination Algorithm of
// Section 4.1.1 of the paper: a link-state shortest-path routing algorithm
// in which each router communicates to its neighbors only the links on its
// own minimum-cost routing tree, validates conflicting link reports by
// preferring the neighbor offering the shortest distance to the head of the
// link (not by sequence numbers), and converges to correct shortest paths a
// finite time after the last change (the paper's Theorem 2).
package pda

import (
	"fmt"
	"sort"
	"strings"

	"minroute/internal/dijkstra"
	"minroute/internal/graph"
	"minroute/internal/lsu"
)

// Topology is a router's view of a set of directed links with costs: the
// main topology table T and the neighbor tables T_k of the paper. Entries
// are triplets [head, tail, cost].
type Topology struct {
	n   int // dense NodeID space size
	out map[graph.NodeID]map[graph.NodeID]float64
}

// NewTopology returns an empty topology over an ID space of n nodes.
func NewTopology(n int) *Topology {
	return &Topology{n: n, out: make(map[graph.NodeID]map[graph.NodeID]float64)}
}

// NumNodes implements dijkstra.View.
func (t *Topology) NumNodes() int { return t.n }

// VisitOut implements dijkstra.View.
func (t *Topology) VisitOut(u graph.NodeID, visit func(graph.NodeID, float64)) {
	row := t.out[u]
	if len(row) == 0 {
		return
	}
	// Deterministic iteration order: ascending tail ID.
	tails := make([]graph.NodeID, 0, len(row))
	//lint:maporder-ok keys are collected and sorted ascending before any use
	for tail := range row {
		tails = append(tails, tail)
	}
	sort.Slice(tails, func(i, j int) bool { return tails[i] < tails[j] })
	for _, tail := range tails {
		visit(tail, row[tail])
	}
}

// Set records link head→tail with the given cost, replacing any previous
// entry.
func (t *Topology) Set(head, tail graph.NodeID, cost float64) {
	row := t.out[head]
	if row == nil {
		row = make(map[graph.NodeID]float64)
		t.out[head] = row
	}
	row[tail] = cost
}

// Delete removes link head→tail, reporting whether it was present.
func (t *Topology) Delete(head, tail graph.NodeID) bool {
	row := t.out[head]
	if _, ok := row[tail]; !ok {
		return false
	}
	delete(row, tail)
	if len(row) == 0 {
		delete(t.out, head)
	}
	return true
}

// Cost looks up the cost of link head→tail.
func (t *Topology) Cost(head, tail graph.NodeID) (float64, bool) {
	c, ok := t.out[head][tail]
	return c, ok
}

// NumLinks returns the number of links in the table.
func (t *Topology) NumLinks() int {
	n := 0
	for _, row := range t.out {
		n += len(row)
	}
	return n
}

// Clear removes every link (used when an adjacent link to the neighbor that
// reported this table fails).
func (t *Topology) Clear() {
	t.out = make(map[graph.NodeID]map[graph.NodeID]float64)
}

// Clone deep-copies the table.
func (t *Topology) Clone() *Topology {
	c := NewTopology(t.n)
	//lint:maporder-ok distinct-key deep copy; every row lands in its own entry
	for head, row := range t.out {
		nr := make(map[graph.NodeID]float64, len(row))
		for tail, cost := range row {
			nr[tail] = cost
		}
		c.out[head] = nr
	}
	return c
}

// Apply mutates the table according to one LSU entry.
func (t *Topology) Apply(e lsu.Entry) {
	switch e.Op {
	case lsu.OpAdd, lsu.OpChange:
		t.Set(e.Head, e.Tail, e.Cost)
	case lsu.OpDelete:
		t.Delete(e.Head, e.Tail)
	}
}

// Diff returns the LSU entries that transform old into t: adds, changes and
// deletes, in deterministic (head, tail) order.
func (t *Topology) Diff(old *Topology) []lsu.Entry {
	var out []lsu.Entry
	visitSorted(t, func(h, tl graph.NodeID, cost float64) {
		if oc, ok := old.Cost(h, tl); !ok {
			out = append(out, lsu.Entry{Op: lsu.OpAdd, Head: h, Tail: tl, Cost: cost})
			//lint:floateq-ok change detection: any bit-level cost change must be flooded
		} else if oc != cost {
			out = append(out, lsu.Entry{Op: lsu.OpChange, Head: h, Tail: tl, Cost: cost})
		}
	})
	visitSorted(old, func(h, tl graph.NodeID, cost float64) {
		if _, ok := t.Cost(h, tl); !ok {
			out = append(out, lsu.Entry{Op: lsu.OpDelete, Head: h, Tail: tl})
		}
	})
	return out
}

// Entries returns every link as an add entry, in deterministic order. Used
// for the full-table LSU sent when an adjacent link comes up.
func (t *Topology) Entries() []lsu.Entry {
	var out []lsu.Entry
	visitSorted(t, func(h, tl graph.NodeID, cost float64) {
		out = append(out, lsu.Entry{Op: lsu.OpAdd, Head: h, Tail: tl, Cost: cost})
	})
	return out
}

// Nodes returns the IDs mentioned by any link, ascending.
func (t *Topology) Nodes() []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	//lint:maporder-ok set union via idempotent inserts
	for head, row := range t.out {
		seen[head] = true
		for tail := range row {
			seen[tail] = true
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	//lint:maporder-ok keys are collected and sorted ascending before any use
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two tables contain identical links and costs.
func (t *Topology) Equal(o *Topology) bool {
	if t.NumLinks() != o.NumLinks() {
		return false
	}
	//lint:maporder-ok existence check; the boolean verdict is visit-order independent
	for head, row := range t.out {
		//lint:maporder-ok existence check; the boolean verdict is visit-order independent
		for tail, cost := range row {
			//lint:floateq-ok equality of verbatim stored costs, not arithmetic results
			if oc, ok := o.Cost(head, tail); !ok || oc != cost {
				return false
			}
		}
	}
	return true
}

// String renders the table for debugging.
func (t *Topology) String() string {
	var b strings.Builder
	visitSorted(t, func(h, tl graph.NodeID, cost float64) {
		fmt.Fprintf(&b, "[%d->%d %.6g] ", h, tl, cost)
	})
	return strings.TrimSpace(b.String())
}

func visitSorted(t *Topology, fn func(h, tl graph.NodeID, cost float64)) {
	heads := make([]graph.NodeID, 0, len(t.out))
	//lint:maporder-ok keys are collected and sorted ascending before any use
	for h := range t.out {
		heads = append(heads, h)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	for _, h := range heads {
		row := t.out[h]
		tails := make([]graph.NodeID, 0, len(row))
		//lint:maporder-ok keys are collected and sorted ascending before any use
		for tl := range row {
			tails = append(tails, tl)
		}
		sort.Slice(tails, func(i, j int) bool { return tails[i] < tails[j] })
		for _, tl := range tails {
			fn(h, tl, row[tl])
		}
	}
}

// SPT runs Dijkstra from src and prunes the table down to the shortest-path
// tree, returning the distance result. Links not on the tree are removed,
// implementing step 6 of MTU ("remove those links in T that are not part of
// the shortest path tree").
func (t *Topology) SPT(src graph.NodeID) *dijkstra.Result {
	res := dijkstra.Run(t, src)
	pruned := NewTopology(t.n)
	for id := 0; id < t.n; id++ {
		p := res.Parent[id]
		if p == graph.None {
			continue
		}
		if cost, ok := t.Cost(p, graph.NodeID(id)); ok {
			pruned.Set(p, graph.NodeID(id), cost)
		}
	}
	t.out = pruned.out
	return res
}
