package pda

import (
	"testing"

	"minroute/internal/graph"
	"minroute/internal/lsu"
)

func TestTopologySetCostDelete(t *testing.T) {
	topo := NewTopology(4)
	topo.Set(0, 1, 2.5)
	if c, ok := topo.Cost(0, 1); !ok || c != 2.5 {
		t.Fatalf("Cost = %v,%v", c, ok)
	}
	topo.Set(0, 1, 3.5) // replace
	if c, _ := topo.Cost(0, 1); c != 3.5 {
		t.Fatalf("replacement cost = %v", c)
	}
	if topo.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d", topo.NumLinks())
	}
	if !topo.Delete(0, 1) {
		t.Fatal("Delete failed")
	}
	if topo.Delete(0, 1) {
		t.Fatal("double delete reported true")
	}
	if topo.NumLinks() != 0 {
		t.Fatal("link remains after delete")
	}
}

func TestTopologyApply(t *testing.T) {
	topo := NewTopology(4)
	topo.Apply(lsu.Entry{Op: lsu.OpAdd, Head: 0, Tail: 1, Cost: 1})
	topo.Apply(lsu.Entry{Op: lsu.OpChange, Head: 0, Tail: 1, Cost: 2})
	if c, _ := topo.Cost(0, 1); c != 2 {
		t.Fatalf("cost after change = %v", c)
	}
	topo.Apply(lsu.Entry{Op: lsu.OpDelete, Head: 0, Tail: 1})
	if _, ok := topo.Cost(0, 1); ok {
		t.Fatal("link survives delete entry")
	}
}

func TestTopologyDiff(t *testing.T) {
	old := NewTopology(5)
	old.Set(0, 1, 1)
	old.Set(1, 2, 2)
	old.Set(2, 3, 3)

	cur := NewTopology(5)
	cur.Set(0, 1, 1) // unchanged
	cur.Set(1, 2, 9) // changed
	cur.Set(3, 4, 4) // added
	// (2,3) deleted

	diff := cur.Diff(old)
	byKey := map[[2]graph.NodeID]lsu.Entry{}
	for _, e := range diff {
		byKey[[2]graph.NodeID{e.Head, e.Tail}] = e
	}
	if len(diff) != 3 {
		t.Fatalf("diff has %d entries: %v", len(diff), diff)
	}
	if e := byKey[[2]graph.NodeID{1, 2}]; e.Op != lsu.OpChange || e.Cost != 9 {
		t.Fatalf("change entry wrong: %+v", e)
	}
	if e := byKey[[2]graph.NodeID{3, 4}]; e.Op != lsu.OpAdd || e.Cost != 4 {
		t.Fatalf("add entry wrong: %+v", e)
	}
	if e := byKey[[2]graph.NodeID{2, 3}]; e.Op != lsu.OpDelete {
		t.Fatalf("delete entry wrong: %+v", e)
	}
}

func TestTopologyDiffApplyRoundTrip(t *testing.T) {
	old := NewTopology(6)
	old.Set(0, 1, 1)
	old.Set(1, 2, 2)
	cur := NewTopology(6)
	cur.Set(0, 1, 5)
	cur.Set(4, 5, 1)

	rebuilt := old.Clone()
	for _, e := range cur.Diff(old) {
		rebuilt.Apply(e)
	}
	if !rebuilt.Equal(cur) {
		t.Fatalf("diff/apply round trip mismatch:\n%v\n%v", rebuilt, cur)
	}
}

func TestTopologyCloneIndependent(t *testing.T) {
	a := NewTopology(3)
	a.Set(0, 1, 1)
	b := a.Clone()
	b.Set(0, 1, 9)
	if c, _ := a.Cost(0, 1); c != 1 {
		t.Fatal("clone mutation leaked to original")
	}
}

func TestTopologyNodes(t *testing.T) {
	topo := NewTopology(10)
	topo.Set(3, 7, 1)
	topo.Set(7, 2, 1)
	nodes := topo.Nodes()
	want := []graph.NodeID{2, 3, 7}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}

func TestTopologySPTPrunes(t *testing.T) {
	topo := NewTopology(4)
	// Diamond: 0->1 (1), 0->2 (1), 1->3 (1), 2->3 (5). SPT keeps 1->3, drops 2->3.
	topo.Set(0, 1, 1)
	topo.Set(0, 2, 1)
	topo.Set(1, 3, 1)
	topo.Set(2, 3, 5)
	res := topo.SPT(0)
	if res.Dist[3] != 2 {
		t.Fatalf("dist[3] = %v", res.Dist[3])
	}
	if _, ok := topo.Cost(2, 3); ok {
		t.Fatal("non-tree link survived pruning")
	}
	if topo.NumLinks() != 3 {
		t.Fatalf("tree has %d links, want 3", topo.NumLinks())
	}
}

func TestTopologyEqual(t *testing.T) {
	a := NewTopology(3)
	a.Set(0, 1, 1)
	b := NewTopology(3)
	if a.Equal(b) {
		t.Fatal("unequal tables reported equal")
	}
	b.Set(0, 1, 1)
	if !a.Equal(b) {
		t.Fatal("equal tables reported unequal")
	}
	b.Set(0, 1, 2)
	if a.Equal(b) {
		t.Fatal("cost mismatch reported equal")
	}
}

func TestTopologyClear(t *testing.T) {
	topo := NewTopology(3)
	topo.Set(0, 1, 1)
	topo.Clear()
	if topo.NumLinks() != 0 {
		t.Fatal("Clear left links behind")
	}
}

func TestTopologyEntries(t *testing.T) {
	topo := NewTopology(3)
	topo.Set(1, 2, 4)
	topo.Set(0, 1, 3)
	es := topo.Entries()
	if len(es) != 2 || es[0].Head != 0 || es[1].Head != 1 {
		t.Fatalf("entries = %v", es)
	}
	for _, e := range es {
		if e.Op != lsu.OpAdd {
			t.Fatalf("entry op = %v", e.Op)
		}
	}
}
