package pda

import (
	"math"
	"sort"

	"minroute/internal/dijkstra"
	"minroute/internal/graph"
	"minroute/internal/lsu"
)

// Tables holds the per-router state both PDA and MPDA maintain (Section
// 4.1.1): the main topology table T, one neighbor topology table T_k per
// neighbor, the distance tables D_j and D_jk, and the adjacent-link costs
// l_ik. Tables implements NTU (neighbor topology table update) and MTU
// (main topology table update); the protocol state machines drive it.
type Tables struct {
	id graph.NodeID
	n  int

	// adj holds l_ik for each up adjacent link.
	adj map[graph.NodeID]float64
	// nbrTopo holds T_k, the time-delayed copy of neighbor k's main table.
	nbrTopo map[graph.NodeID]*Topology
	// nbrDist[k][j] is D_jk: the distance from k to j in T_k.
	nbrDist map[graph.NodeID][]float64
	// main is T, the router's own shortest-path tree.
	main *Topology
	// dist[j] is D_j, the distance from id to j in T.
	dist []float64
}

// NewTables returns fresh tables for router id over an ID space of n nodes.
// All distances start at infinity except D_id = 0 (paper INIT-PDA).
func NewTables(id graph.NodeID, n int) *Tables {
	t := &Tables{
		id:      id,
		n:       n,
		adj:     make(map[graph.NodeID]float64),
		nbrTopo: make(map[graph.NodeID]*Topology),
		nbrDist: make(map[graph.NodeID][]float64),
		main:    NewTopology(n),
		dist:    infSlice(n),
	}
	t.dist[id] = 0
	return t
}

func infSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Inf(1)
	}
	return s
}

// ID returns the owning router.
func (t *Tables) ID() graph.NodeID { return t.id }

// NumNodes returns the ID-space size.
func (t *Tables) NumNodes() int { return t.n }

// Neighbors returns the up adjacent neighbors in ascending order.
func (t *Tables) Neighbors() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(t.adj))
	//lint:maporder-ok keys are collected and sorted ascending before any use
	for k := range t.adj {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AdjCost returns l_ik for neighbor k.
func (t *Tables) AdjCost(k graph.NodeID) (float64, bool) {
	c, ok := t.adj[k]
	return c, ok
}

// Dist returns D_j, the router's distance to j in T.
func (t *Tables) Dist(j graph.NodeID) float64 { return t.dist[j] }

// Dists returns the full distance vector (not a copy; callers must not
// mutate it).
func (t *Tables) Dists() []float64 { return t.dist }

// NbrDist returns D_jk, the distance from neighbor k to destination j in the
// router's copy of k's topology. Infinite when unknown.
func (t *Tables) NbrDist(j, k graph.NodeID) float64 {
	d, ok := t.nbrDist[k]
	if !ok {
		return math.Inf(1)
	}
	return d[j]
}

// Main exposes the main topology table T (read-only by convention).
func (t *Tables) Main() *Topology { return t.main }

// NeighborTopo exposes T_k (read-only by convention), or nil when k is not
// an up neighbor.
func (t *Tables) NeighborTopo(k graph.NodeID) *Topology { return t.nbrTopo[k] }

// SetAdjacent records that the adjacent link to k is up with cost l_ik
// (NTU steps 2 and 3).
func (t *Tables) SetAdjacent(k graph.NodeID, cost float64) {
	if _, known := t.adj[k]; !known {
		t.nbrTopo[k] = NewTopology(t.n)
		d := infSlice(t.n)
		d[k] = 0
		t.nbrDist[k] = d
	}
	t.adj[k] = cost
}

// RemoveAdjacent handles failure of the adjacent link to k (NTU step 4):
// l_ik is removed and T_k is cleared.
func (t *Tables) RemoveAdjacent(k graph.NodeID) {
	delete(t.adj, k)
	delete(t.nbrTopo, k)
	delete(t.nbrDist, k)
}

// ApplyLSU implements NTU step 1: it applies the entries of an LSU received
// from neighbor k to T_k and recomputes the distances D_jk from k over the
// updated T_k. LSUs from unknown (down) neighbors are ignored.
func (t *Tables) ApplyLSU(k graph.NodeID, entries []lsu.Entry) {
	topo, ok := t.nbrTopo[k]
	if !ok {
		return
	}
	for _, e := range entries {
		topo.Apply(e)
	}
	res := dijkstra.Run(topo, k)
	t.nbrDist[k] = res.Dist
}

// RunMTU implements the MTU procedure (paper Fig. 3): rebuild the main
// table T by merging the neighbor topologies — resolving conflicting link
// reports in favor of the neighbor offering the shortest distance to the
// head of the link, ties to the lowest address — overriding adjacent links
// with local knowledge, pruning to the shortest-path tree, and updating the
// distance table. It returns the LSU entries describing the difference from
// the previous T (step 8); an empty result means T did not change.
func (t *Tables) RunMTU() []lsu.Entry {
	oldT := t.main
	newT := NewTopology(t.n)
	nbrs := t.Neighbors()

	// Steps 2-3: the node set is the union over all T_k; each node j gets a
	// preferred neighbor p minimizing D_jk + l_ik (ties to lowest address,
	// which the ascending neighbor iteration provides).
	nodes := make(map[graph.NodeID]bool)
	for _, k := range nbrs {
		nodes[k] = true
		for _, j := range t.nbrTopo[k].Nodes() {
			nodes[j] = true
		}
	}
	// Ascending node order: the paper resolves conflicting link reports
	// "ties to the lowest address", and the merge below must visit nodes in
	// the same order every run for T to be reproducible.
	ids := make([]graph.NodeID, 0, len(nodes))
	//lint:maporder-ok keys are collected and sorted ascending before any use
	for j := range nodes {
		ids = append(ids, j)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, j := range ids {
		if j == t.id {
			continue // local links are handled in step 5
		}
		best := math.Inf(1)
		preferred := graph.None
		for _, k := range nbrs {
			d := t.nbrDist[k][j] + t.adj[k]
			if d < best {
				best = d
				preferred = k
			}
		}
		if preferred == graph.None {
			continue
		}
		// Step 4: copy all links with head j from T_preferred.
		t.nbrTopo[preferred].VisitOut(j, func(tail graph.NodeID, cost float64) {
			newT.Set(j, tail, cost)
		})
	}

	// Step 5: adjacent links override anything reported by neighbors.
	for _, k := range nbrs {
		newT.Set(t.id, k, t.adj[k])
	}

	// Steps 6-7: prune to the shortest-path tree and refresh distances.
	res := newT.SPT(t.id)
	t.main = newT
	t.dist = res.Dist

	// Step 8: report differences.
	return newT.Diff(oldT)
}

// PreferredNeighbor returns the neighbor minimizing D_jk + l_ik toward j
// (the next hop single-path routing would use), or graph.None when j is
// unreachable through every neighbor.
func (t *Tables) PreferredNeighbor(j graph.NodeID) graph.NodeID {
	best := math.Inf(1)
	preferred := graph.None
	for _, k := range t.Neighbors() {
		d := t.nbrDist[k][j] + t.adj[k]
		if d < best {
			best = d
			preferred = k
		}
	}
	return preferred
}
