package pda

import (
	"minroute/internal/graph"
	"minroute/internal/lsu"
)

// Sender transmits an LSU message to a neighbor. The transport must deliver
// messages on each link reliably and in order (the paper's stated link-level
// assumption); internal/des provides such a transport.
type Sender func(to graph.NodeID, m *lsu.Msg)

// Router is the PDA state machine (paper Figs. 1-3): every event — an LSU
// from a neighbor or an adjacent-link change — runs NTU then MTU, and any
// change to the main topology table is flooded to the neighbors as an LSU
// containing only the differences.
//
// PDA provides single shortest paths and is the foundation MPDA extends
// with loop-free multipath successor sets. Router is not safe for
// concurrent use.
type Router struct {
	t    *Tables
	send Sender
}

// NewRouter returns a PDA router for node id over an ID space of n nodes.
func NewRouter(id graph.NodeID, n int, send Sender) *Router {
	if send == nil {
		panic("pda: nil sender")
	}
	return &Router{t: NewTables(id, n), send: send}
}

// Tables exposes the routing tables for inspection.
func (r *Router) Tables() *Tables { return r.t }

// LinkUp handles detection of a new (or recovered) adjacent link to k with
// cost l_ik. Per NTU step 2, the router sends its entire main topology
// table to the new neighbor before flooding any differences.
func (r *Router) LinkUp(k graph.NodeID, cost float64) {
	r.t.SetAdjacent(k, cost)
	if full := r.t.Main().Entries(); len(full) > 0 {
		r.send(k, &lsu.Msg{From: r.t.ID(), Entries: full})
	}
	r.afterEvent()
}

// LinkCostChange handles a cost change of the adjacent link to k (NTU
// step 3).
func (r *Router) LinkCostChange(k graph.NodeID, cost float64) {
	if _, up := r.t.AdjCost(k); !up {
		return
	}
	r.t.SetAdjacent(k, cost)
	r.afterEvent()
}

// LinkDown handles failure of the adjacent link to k (NTU step 4).
func (r *Router) LinkDown(k graph.NodeID) {
	r.t.RemoveAdjacent(k)
	r.afterEvent()
}

// HandleLSU processes an LSU message received from a neighbor (NTU step 1).
func (r *Router) HandleLSU(m *lsu.Msg) {
	if _, up := r.t.AdjCost(m.From); !up {
		return // stale message from a neighbor whose link is down
	}
	r.t.ApplyLSU(m.From, m.Entries)
	r.afterEvent()
}

// afterEvent implements PDA steps 2-4: run MTU and flood the differences.
func (r *Router) afterEvent() {
	diff := r.t.RunMTU()
	if len(diff) == 0 {
		return
	}
	for _, k := range r.t.Neighbors() {
		r.send(k, &lsu.Msg{From: r.t.ID(), Entries: diff})
	}
}
