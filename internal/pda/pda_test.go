package pda

import (
	"math"
	"testing"
	"testing/quick"

	"minroute/internal/dijkstra"
	"minroute/internal/graph"
	"minroute/internal/lsu"
	"minroute/internal/protonet"
	"minroute/internal/topo"
)

// buildNet attaches one PDA router per node and brings all links up with the
// given cost function.
func buildNet(g *graph.Graph, seed uint64, costOf func(l *graph.Link) float64) (*protonet.Net, map[graph.NodeID]*Router) {
	net := protonet.New(g, seed)
	routers := make(map[graph.NodeID]*Router)
	for _, id := range g.Nodes() {
		r := NewRouter(id, g.NumNodes(), net.Sender(id))
		routers[id] = r
		net.Attach(id, r)
	}
	net.BringUpAll(costOf)
	return net, routers
}

// propCost uses the propagation delay as the static link cost.
func propCost(l *graph.Link) float64 { return l.PropDelay + 1e-4 }

// checkConverged verifies Theorem 2: every router's D_j equals the true
// shortest distance in g under costOf.
func checkConverged(t *testing.T, g *graph.Graph, routers map[graph.NodeID]*Router, costOf func(l *graph.Link) float64) {
	t.Helper()
	view := dijkstra.GraphView{G: g, Cost: costOf}
	for _, id := range g.Nodes() {
		truth := dijkstra.Run(view, id)
		tbl := routers[id].Tables()
		for j := 0; j < g.NumNodes(); j++ {
			got, want := tbl.Dist(graph.NodeID(j)), truth.Dist[j]
			if math.IsInf(got, 1) != math.IsInf(want, 1) || (!math.IsInf(want, 1) && math.Abs(got-want) > 1e-9) {
				t.Fatalf("router %d: D_%d = %v, want %v", id, j, got, want)
			}
		}
	}
}

func TestPDAConvergesRing(t *testing.T) {
	g := topo.Ring(6, 1e6, 1e-3)
	net, routers := buildNet(g, 1, propCost)
	net.Run(100000)
	checkConverged(t, g, routers, propCost)
}

func TestPDAConvergesGrid(t *testing.T) {
	g := topo.Grid(3, 3, 1e6, 1e-3)
	net, routers := buildNet(g, 2, propCost)
	net.Run(100000)
	checkConverged(t, g, routers, propCost)
}

func TestPDAConvergesCAIRN(t *testing.T) {
	n := topo.CAIRN()
	net, routers := buildNet(n.Graph, 3, propCost)
	net.Run(1000000)
	checkConverged(t, n.Graph, routers, propCost)
}

func TestPDAQuiescesAfterConvergence(t *testing.T) {
	g := topo.Ring(5, 1e6, 1e-3)
	net, _ := buildNet(g, 4, propCost)
	net.Run(100000)
	if net.Pending() != 0 {
		t.Fatalf("%d messages pending after quiescence", net.Pending())
	}
	// A second Run must deliver nothing.
	if n := net.Run(10); n != 0 {
		t.Fatalf("protocol generated %d messages while idle", n)
	}
}

func TestPDAReconvergesAfterCostChange(t *testing.T) {
	g := topo.Ring(6, 1e6, 1e-3)
	costs := map[[2]graph.NodeID]float64{}
	costOf := func(l *graph.Link) float64 {
		if c, ok := costs[[2]graph.NodeID{l.From, l.To}]; ok {
			return c
		}
		return propCost(l)
	}
	net, routers := buildNet(g, 5, costOf)
	net.Run(100000)

	// Make one direction of a link very expensive; traffic must route around.
	costs[[2]graph.NodeID{0, 1}] = 1.0
	net.ChangeCost(0, 1, 1.0)
	net.Run(100000)
	checkConverged(t, g, routers, costOf)
}

func TestPDAReconvergesAfterLinkFailure(t *testing.T) {
	g := topo.Grid(3, 3, 1e6, 1e-3)
	net, routers := buildNet(g, 6, propCost)
	net.Run(100000)
	net.FailLink(0, 1)
	net.Run(100000)
	checkConverged(t, g, routers, propCost)
}

func TestPDAReconvergesAfterLinkRecovery(t *testing.T) {
	g := topo.Grid(3, 3, 1e6, 1e-3)
	net, routers := buildNet(g, 7, propCost)
	net.Run(100000)
	net.FailLink(0, 1)
	net.Run(100000)
	net.RestoreLink(0, 1, 1e6, 1e-3, propCost(&graph.Link{PropDelay: 1e-3}))
	net.Run(100000)
	checkConverged(t, g, routers, propCost)
}

func TestPDAPreferredNeighborOnConvergedRing(t *testing.T) {
	g := topo.Ring(5, 1e6, 1e-3)
	net, routers := buildNet(g, 8, propCost)
	net.Run(100000)
	// On a uniform 5-ring, node 0's preferred neighbor toward 1 is 1,
	// toward 4 is 4, toward 2 is 1 (two hops each way for 2? no: 0->1->2 is
	// 2 hops, 0->4->3->2 is 3 hops, so via 1).
	tbl := routers[0].Tables()
	if p := tbl.PreferredNeighbor(1); p != 1 {
		t.Fatalf("preferred(1) = %d", p)
	}
	if p := tbl.PreferredNeighbor(2); p != 1 {
		t.Fatalf("preferred(2) = %d", p)
	}
	if p := tbl.PreferredNeighbor(4); p != 4 {
		t.Fatalf("preferred(4) = %d", p)
	}
}

func TestPDAIgnoresLSUFromDownNeighbor(t *testing.T) {
	g := topo.Ring(3, 1e6, 1e-3)
	net, routers := buildNet(g, 9, propCost)
	net.Run(100000)
	r := routers[0]
	r.LinkDown(1)
	afterDown := r.Tables().Main().Clone()
	// A stale message from the downed neighbor must be ignored entirely.
	r.HandleLSU(&lsu.Msg{From: 1, Entries: []lsu.Entry{{Op: lsu.OpAdd, Head: 1, Tail: 2, Cost: 0.000001}}})
	if !r.Tables().Main().Equal(afterDown) {
		t.Fatal("stale LSU from down neighbor mutated the main table")
	}
}

func TestPDACostChangeOnDownLinkIgnored(t *testing.T) {
	g := topo.Ring(3, 1e6, 1e-3)
	net, routers := buildNet(g, 10, propCost)
	net.Run(100000)
	r := routers[0]
	r.LinkDown(1)
	afterDown := r.Tables().Main().Clone()
	r.LinkCostChange(1, 0.5)
	if !r.Tables().Main().Equal(afterDown) {
		t.Fatal("cost change on down link mutated the main table")
	}
}

func TestPDARandomGraphsProperty(t *testing.T) {
	check := func(seed uint64, n8, extra8 uint8) bool {
		n := int(n8%10) + 3
		extra := int(extra8 % 12)
		g := topo.Random(seed, n, extra, 1e6, 1e7, 1e-3)
		net, routers := buildNet(g, seed^0xabcd, propCost)
		net.Run(1000000)
		view := dijkstra.GraphView{G: g, Cost: propCost}
		for _, id := range g.Nodes() {
			truth := dijkstra.Run(view, id)
			tbl := routers[id].Tables()
			for j := 0; j < g.NumNodes(); j++ {
				got, want := tbl.Dist(graph.NodeID(j)), truth.Dist[j]
				if math.IsInf(got, 1) != math.IsInf(want, 1) {
					return false
				}
				if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRouterNilSenderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil sender accepted")
		}
	}()
	NewRouter(0, 3, nil)
}
