package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCloserBasic(t *testing.T) {
	if !Closer(1, 2) {
		t.Fatal("1 not closer than 2")
	}
	if Closer(2, 1) {
		t.Fatal("2 closer than 1")
	}
	if Closer(1, 1) {
		t.Fatal("equal values closer")
	}
}

func TestCloserTreatsULPTiesAsEqual(t *testing.T) {
	a := 0.0031
	b := 0.0031000000000000003 // same real path length, different summation order
	if Closer(a, b) || Closer(b, a) {
		t.Fatal("ULP-level tie treated as strict inequality")
	}
}

func TestCloserRealDifferences(t *testing.T) {
	// One link cost (~1e-4) difference must register at any realistic scale.
	for _, base := range []float64{0, 0.001, 1, 1000} {
		if !Closer(base, base+1e-4) {
			t.Fatalf("difference of 1e-4 at scale %v not detected", base)
		}
	}
}

func TestCloserInfinities(t *testing.T) {
	inf := math.Inf(1)
	if !Closer(5, inf) {
		t.Fatal("finite not closer than +Inf")
	}
	if Closer(inf, inf) {
		t.Fatal("+Inf closer than +Inf")
	}
	if Closer(inf, 5) {
		t.Fatal("+Inf closer than finite")
	}
}

func TestEqualish(t *testing.T) {
	if !Equalish(0.0031, 0.0031000000000000003) {
		t.Fatal("ULP tie not Equalish")
	}
	if Equalish(1, 1.001) {
		t.Fatal("distinct values Equalish")
	}
	if !Equalish(math.Inf(1), math.Inf(1)) {
		t.Fatal("equal infinities not Equalish")
	}
	if Equalish(math.Inf(1), 5) {
		t.Fatal("infinity Equalish to finite")
	}
}

func TestPropertyCloserAntisymmetricAndIrreflexive(t *testing.T) {
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if Closer(a, a) {
			return false
		}
		return !(Closer(a, b) && Closer(b, a))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCloserConsistentWithEqualish(t *testing.T) {
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if Equalish(a, b) && (Closer(a, b) || Closer(b, a)) {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
