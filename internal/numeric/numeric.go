// Package numeric centralizes the floating-point comparisons the routing
// algorithms depend on.
//
// Path distances are sums of link costs accumulated in path order, so two
// paths of equal real-valued length can differ by a few ULPs depending on
// which links they traverse. Treating such a tie as "strictly closer" would
// admit a neighbor at equal distance into a successor set — harmless for
// loop-freedom (the feasible-distance chain stays strict) but a departure
// from the paper's S_j = {k : D_jk < FD_j}, and a source of flapping when
// costs churn. All strict-inequality decisions therefore go through Closer,
// which requires a margin far above accumulated rounding error (1e-9
// relative) yet far below any real cost difference (one link ≈ 1e-4 s).
package numeric

import "math"

// RelTol is the relative margin used by Closer and Equalish.
const RelTol = 1e-9

// Closer reports whether a is strictly less than b by more than the
// tolerance. Infinities behave naturally: any finite a is Closer than +Inf,
// and +Inf is never Closer than anything.
func Closer(a, b float64) bool {
	if a >= b {
		return false
	}
	if math.IsInf(b, 1) {
		return !math.IsInf(a, 1)
	}
	return b-a > RelTol*(1+math.Abs(b))
}

// Equalish reports whether a and b differ by no more than the tolerance.
func Equalish(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := 1 + math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= RelTol*scale
}
