// Package rng provides small, fast, seedable random number generators for
// the simulator. Every stochastic component of the repository draws from an
// explicitly seeded Source so that experiments are reproducible run-to-run;
// nothing uses the global math/rand state.
//
// The core generator is PCG32 (O'Neill, "PCG: A Family of Simple Fast
// Space-Efficient Statistically Good Algorithms for Random Number
// Generation"), chosen because it is tiny, allocation-free, and passes the
// statistical tests that matter for queueing simulation.
package rng

import "math"

// Source is a seedable PCG32 pseudo-random generator. The zero value is not
// ready for use; construct with New. Source is not safe for concurrent use;
// give each goroutine (or simulated entity) its own stream via Split.
type Source struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a Source seeded from seed. Two sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	s := &Source{inc: (seed << 1) | 1}
	s.state = seed + s.inc
	s.Uint32()
	return s
}

// Split derives an independent stream from s, keyed by id. Streams with
// different ids are decorrelated even though they originate from one seed.
func (s *Source) Split(id uint64) *Source {
	// Mix the id through splitmix64 so that sequential ids land far apart.
	z := s.state + (id+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return New(z)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 {
	old := s.state
	s.state = old*pcgMult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed sample with the given mean.
// It panics if mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	u := s.Float64()
	// Guard against log(0); Float64 can return exactly 0.
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto-ish heavy-tailed sample with the given
// shape alpha and minimum xm. Used by the bursty traffic sources.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
