package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	base := New(7)
	a := base.Split(1)
	b := base.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpMeanAndVariance(t *testing.T) {
	s := New(11)
	const n = 200000
	const want = 2.5
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Exp(want)
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("exp mean = %v, want ~%v", mean, want)
	}
	if math.Abs(variance-want*want)/(want*want) > 0.08 {
		t.Fatalf("exp variance = %v, want ~%v", variance, want*want)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	New(1).Exp(-1)
}

func TestParetoMinimum(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		if x := s.Pareto(1.5, 2.0); x < 1.5 {
			t.Fatalf("Pareto sample %v below minimum", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%32) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(1.0)
	}
}
