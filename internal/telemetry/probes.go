package telemetry

import "minroute/internal/graph"

// LinkProbe instruments one directed link's data band. The owning des.Port
// holds it behind a single nil check per probe site, so the disabled path
// costs one branch and zero allocations in the packet hot loop.
//
// In a sharded run the probe has two writer sides: the transmitter half
// lives on the sender's shard (Enqueue, Transmit, LostTx emit through
// Tracer) and the delivery half on the receiver's (LostRx emits through
// RxTracer). The LostPkts counter keeps the sides apart in slots 0 (tx)
// and 1 (rx).
type LinkProbe struct {
	Tracer *Tracer
	// RxTracer is the receiver-shard tracer for delivery-side events; nil
	// (the serial case) falls back to Tracer.
	RxTracer *Tracer
	From, To graph.NodeID
	// QueueBits tracks the data-band backlog (bits) sampled at each
	// enqueue, bucketed by simulation time.
	QueueBits *Histogram
	// TxBits totals transmitted data bits (link utilization = TxBits /
	// (capacity * duration)).
	TxBits *Counter
	// LostPkts counts data packets lost to link failures after the port
	// accepted ownership: slot 0 sender-side losses, slot 1 receiver-side.
	LostPkts *Counter
}

// Enqueue records a data packet accepted into the data band; queuedBits is
// the backlog including the new packet.
func (p *LinkProbe) Enqueue(t float64, flow int32, dst graph.NodeID, queuedBits float64) {
	p.QueueBits.Observe(t, queuedBits)
	p.Tracer.Emit(Event{T: t, Kind: KindPktEnqueue, Router: p.From, Peer: p.To, Dst: dst, Flow: flow, Value: queuedBits})
}

// Transmit records a completed data transmission of the given size.
func (p *LinkProbe) Transmit(t, bits float64) {
	p.TxBits.Add(bits)
}

// LostTx records a data packet lost on the sender side of a failed link
// (queued at SetDown or mid-transmission).
func (p *LinkProbe) LostTx(t float64, flow int32, dst graph.NodeID) {
	p.LostPkts.AddSlot(0, 1)
	p.Tracer.Emit(Event{T: t, Kind: KindPktLost, Router: p.From, Peer: p.To, Dst: dst, Flow: flow, Value: 1})
}

// LostRx records a data packet lost on the receiver side (propagating when
// the failure hit), emitting through the receiver shard's tracer.
func (p *LinkProbe) LostRx(t float64, flow int32, dst graph.NodeID) {
	p.LostPkts.AddSlot(1, 1)
	tr := p.RxTracer
	if tr == nil {
		tr = p.Tracer
	}
	tr.Emit(Event{T: t, Kind: KindPktLost, Router: p.From, Peer: p.To, Dst: dst, Flow: flow, Value: 1})
}

// NodeProbes instruments the control plane of router.Nodes. One instance
// is shared by every node of a serial simulation; a sharded run hands each
// shard's nodes a WithTracer clone, so the slotted instruments stay shared
// while events flow through the owning shard's tracer.
type NodeProbes struct {
	Tracer *Tracer
	// ActiveDur receives each completed ACTIVE phase's duration, slotted by
	// router ID.
	ActiveDur *Histogram
	// Converge closes a convergence episode on each routing-table commit,
	// slotted by router ID.
	Converge *ConvergeMeter
}

// WithTracer returns a copy of the probe set emitting through tr, sharing
// the slotted instruments with the original.
func (p *NodeProbes) WithTracer(tr *Tracer) *NodeProbes {
	if p == nil {
		return nil
	}
	q := *p
	q.Tracer = tr
	return &q
}
