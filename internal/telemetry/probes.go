package telemetry

import "minroute/internal/graph"

// LinkProbe instruments one directed link's data band. The owning des.Port
// holds it behind a single nil check per probe site, so the disabled path
// costs one branch and zero allocations in the packet hot loop.
type LinkProbe struct {
	Tracer   *Tracer
	From, To graph.NodeID
	// QueueBits tracks the data-band backlog (bits) sampled at each
	// enqueue, bucketed by simulation time.
	QueueBits *Histogram
	// TxBits totals transmitted data bits (link utilization = TxBits /
	// (capacity * duration)).
	TxBits *Counter
	// LostPkts counts data packets lost to link failures after the port
	// accepted ownership.
	LostPkts *Counter
}

// Enqueue records a data packet accepted into the data band; queuedBits is
// the backlog including the new packet.
func (p *LinkProbe) Enqueue(t float64, flow int32, dst graph.NodeID, queuedBits float64) {
	p.QueueBits.Observe(t, queuedBits)
	p.Tracer.Emit(Event{T: t, Kind: KindPktEnqueue, Router: p.From, Peer: p.To, Dst: dst, Flow: flow, Value: queuedBits})
}

// Transmit records a completed data transmission of the given size.
func (p *LinkProbe) Transmit(t, bits float64) {
	p.TxBits.Add(bits)
}

// Lost records a data packet lost to a link failure.
func (p *LinkProbe) Lost(t float64, flow int32, dst graph.NodeID) {
	p.LostPkts.Inc()
	p.Tracer.Emit(Event{T: t, Kind: KindPktLost, Router: p.From, Peer: p.To, Dst: dst, Flow: flow, Value: 1})
}

// NodeProbes instruments the control plane of router.Nodes. One instance
// is shared by every node of a simulation (events carry the router ID;
// the instruments aggregate network-wide).
type NodeProbes struct {
	Tracer *Tracer
	// ActiveDur receives each completed ACTIVE phase's duration.
	ActiveDur *Histogram
	// Converge closes a convergence episode on each routing-table commit.
	Converge *ConvergeMeter
}
