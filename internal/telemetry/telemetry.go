// Package telemetry is the simulation's instrumentation layer: a
// deterministic structured event bus plus a metrics registry, with JSONL,
// Chrome-trace (catapult), and plain-text exporters.
//
// Determinism is the design constraint everything else bends around. The
// paper harness guarantees byte-identical figures at any worker count and
// shard count, so telemetry must add no entropy: events are stamped with
// simulation time and a schedule-independent emission serial (never the
// wall clock), each simulation owns a private Tracer family (no
// cross-simulation sharing), and all exporters iterate in sorted orders
// with canonical float formatting. The serial packs the emitter's origin
// priority (the des engine's ambient origin) above a per-tracer emission
// count, so merging the tracers of a sharded run by (time, serial)
// reproduces exactly the order a serial run emits in; Events then restamps
// Seq with the merge rank, making the exported artifacts byte-identical at
// any shard count. A run's telemetry artifacts are therefore
// golden-testable — the JSONL of a figure regeneration hashes identically
// at -workers=1 and -workers=8, and at -shards=1 and -shards=8.
//
// The disabled path is a first-class citizen: every probe is reachable
// through a single nil check (nil *Tracer, *Counter, *Histogram, ... are
// all safe no-op receivers), so a simulation built without a Capture pays
// one predictable branch per probe site and zero allocations — see
// TestTelemetryDisabledZeroAlloc in internal/des and the telemetry-guard
// Makefile target.
package telemetry

import (
	"fmt"
	"sort"

	"minroute/internal/graph"
)

// Kind identifies the type of one traced event. Exporters map kinds to
// names and categories through lookup tables (KindName, kindCats) rather
// than switches, so adding a kind means extending the tables in one place.
type Kind uint8

// Event kinds: MPDA phase transitions, control-plane message flow, routing
// commits, allocation (IH/AH) steps, data-plane packet life cycle, and
// chaos fault markers.
const (
	// KindPhaseActive marks a router entering the ACTIVE phase (it flooded
	// an LSU and is waiting for neighbor ACKs).
	KindPhaseActive Kind = iota
	// KindPhasePassive marks the return to PASSIVE; Value carries the
	// ACTIVE-phase duration in seconds.
	KindPhasePassive
	// KindLSUSend is one LSU transmission; Peer is the neighbor, Value the
	// wire size in bits.
	KindLSUSend
	// KindLSURecv is one LSU arrival; Peer is the sender, Value the entry
	// count.
	KindLSURecv
	// KindLSUAck is an arrival carrying an ACK credit (subset of recv).
	KindLSUAck
	// KindTableCommit marks a routing-table (MTU) commit; Value is the
	// number of changed entries flooded.
	KindTableCommit
	// KindAllocInit is an IH rebuild of the routing parameters for
	// destination Dst; Value is the allocation spread (see alloc.Spread).
	KindAllocInit
	// KindAllocAdjust is an AH adjustment step for destination Dst.
	KindAllocAdjust
	// KindPktEnqueue is a data packet accepted into a port's data band;
	// Value is the queue depth in bits after the enqueue.
	KindPktEnqueue
	// KindPktDeliver is a data packet arriving at its destination; Value is
	// the end-to-end delay in seconds.
	KindPktDeliver
	// KindPktLost is a data packet the network had accepted but lost to a
	// link failure (mid-transmission, propagating, or flushed at SetDown).
	KindPktLost
	// KindDropNoRoute..KindDropDown are router-level drops, mirroring the
	// router.Node counters.
	KindDropNoRoute
	KindDropHopLimit
	KindDropQueue
	KindDropDown
	// KindFaultStart/Stop bracket injected faults (link failure/restore,
	// crash/restart, cost spikes, control perturbation); Label names the
	// fault.
	KindFaultStart
	KindFaultStop
	// KindPeerUp/KindPeerDown are live-runtime neighbor session
	// transitions (internal/node): handshake completed / dead timer
	// expired or BYE received. Peer is the neighbor; for KindPeerUp,
	// Value carries the configured link cost.
	KindPeerUp
	KindPeerDown
	// KindARQRetransmit is one retransmitted ARQ frame on a live link
	// (internal/transport): Peer is the neighbor, Value the frame's current
	// RTO in seconds, and Label is "fast" for duplicate-SACK-triggered
	// retransmissions or "rto" for timer expiries.
	KindARQRetransmit
	// KindARQRTOUpdate is an RTT sample moving a live link's retransmission
	// estimator; Peer is the neighbor, Value the new RTO in seconds.
	KindARQRTOUpdate

	numKinds
)

// kindNames is the canonical wire name per kind (JSONL "kind" field,
// Chrome-trace event name).
var kindNames = [numKinds]string{
	KindPhaseActive:   "phase_active",
	KindPhasePassive:  "phase_passive",
	KindLSUSend:       "lsu_send",
	KindLSURecv:       "lsu_recv",
	KindLSUAck:        "lsu_ack",
	KindTableCommit:   "table_commit",
	KindAllocInit:     "alloc_init",
	KindAllocAdjust:   "alloc_adjust",
	KindPktEnqueue:    "pkt_enqueue",
	KindPktDeliver:    "pkt_deliver",
	KindPktLost:       "pkt_lost",
	KindDropNoRoute:   "drop_noroute",
	KindDropHopLimit:  "drop_hoplimit",
	KindDropQueue:     "drop_queue",
	KindDropDown:      "drop_down",
	KindFaultStart:    "fault_start",
	KindFaultStop:     "fault_stop",
	KindPeerUp:        "peer_up",
	KindPeerDown:      "peer_down",
	KindARQRetransmit: "arq_retransmit",
	KindARQRTOUpdate:  "arq_rto_update",
}

// kindCats groups kinds into Chrome-trace categories.
var kindCats = [numKinds]string{
	KindPhaseActive:   "mpda",
	KindPhasePassive:  "mpda",
	KindLSUSend:       "control",
	KindLSURecv:       "control",
	KindLSUAck:        "control",
	KindTableCommit:   "route",
	KindAllocInit:     "route",
	KindAllocAdjust:   "route",
	KindPktEnqueue:    "data",
	KindPktDeliver:    "data",
	KindPktLost:       "data",
	KindDropNoRoute:   "data",
	KindDropHopLimit:  "data",
	KindDropQueue:     "data",
	KindDropDown:      "data",
	KindFaultStart:    "chaos",
	KindFaultStop:     "chaos",
	KindPeerUp:        "session",
	KindPeerDown:      "session",
	KindARQRetransmit: "transport",
	KindARQRTOUpdate:  "transport",
}

// String returns the canonical wire name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NumKinds returns the number of defined kinds (for iteration in tools).
func NumKinds() int { return int(numKinds) }

// Category returns the kind's trace category: mpda, control, route, data,
// chaos, session, or transport. Exporters and renderers color and group
// by it.
func (k Kind) Category() string {
	if k < numKinds {
		return kindCats[k]
	}
	return "unknown"
}

// kindByName inverts kindNames for the JSONL reader and mdrtrace filters.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// KindByName resolves a wire name, reporting whether it is defined.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// Event is one traced span edge or instant. T is simulation time in
// seconds; Seq totally orders events sharing a timestamp (many do — the
// DES fires whole causal chains at one instant). Inside the rings Seq is a
// packed (origin priority << 40 | emission count) stamp; Events replaces it
// with the merge rank, so consumers always see Seq contiguous from 1.
// Fields that do not apply to a kind hold graph.None / -1.
type Event struct {
	T      float64
	Seq    uint64
	Kind   Kind
	Router graph.NodeID // emitting router; graph.None for network-scope events
	Peer   graph.NodeID // link peer or LSU neighbor
	Dst    graph.NodeID // packet or routing-table destination
	Flow   int32        // flow ID; -1 for control traffic
	Value  float64      // kind-specific magnitude (bits, seconds, entries, ...)
	Label  string       // free-form tag (fault names)
}

// NewEvent returns an event at time t with the non-applicable attribute
// fields pre-set to their "absent" sentinels.
func NewEvent(t float64, k Kind, router graph.NodeID) Event {
	return Event{T: t, Kind: k, Router: router, Peer: graph.None, Dst: graph.None, Flow: -1}
}

// DefaultRingCap is the per-router ring capacity used by NewCapture:
// enough for every control-plane event of a figure-scale run; data-plane
// packet events may wrap on long runs (surfaced via Dropped).
const DefaultRingCap = 8192

// ring is one bounded event buffer: append until full, then overwrite the
// oldest entry. Entries stay in emission (Seq) order: the logical sequence
// is buf[head:] followed by buf[:head].
type ring struct {
	cap     int
	buf     []Event
	head    int
	dropped uint64
}

func (r *ring) push(ev Event) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.head] = ev
	r.head++
	if r.head == r.cap {
		r.head = 0
	}
	r.dropped++
}

// ordered returns the retained events in emission order.
func (r *ring) ordered() []Event {
	if len(r.buf) < r.cap {
		return r.buf
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	return append(out, r.buf[:r.head]...)
}

// seqCountBits is the width of the per-tracer emission count inside the
// packed ring stamp; the origin priority occupies the bits above it.
const seqCountBits = 40

// Tracer is the event bus of one simulation shard: one ring per router plus
// a trailing network-scope ring. A shard is single-threaded, so the rings
// need no locks ("lock-free" the honest way); concurrency across shards is
// safe because each owns a private sibling Tracer (Fork), and concurrency
// across simulations because each owns a private family. A nil *Tracer is a
// valid no-op sink.
type Tracer struct {
	rings []ring
	count uint64
	// origin, when set, supplies the emitter's origin priority (the des
	// engine's ambient origin) for the packed ring stamp. Nil leaves the
	// priority at zero, which preserves the legacy pure-emission-order
	// semantics for single-engine users.
	origin func() uint64
	// sibs are the forked sibling tracers of a sharded run; Events, Emitted,
	// and Dropped aggregate over the whole family. Only the root tracer of a
	// family carries sibs.
	sibs []*Tracer
}

// NewTracer builds a tracer for numRouters routers with the given
// per-router ring capacity (<= 0 selects DefaultRingCap).
func NewTracer(numRouters, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	if numRouters < 0 {
		numRouters = 0
	}
	t := &Tracer{rings: make([]ring, numRouters+1)}
	for i := range t.rings {
		t.rings[i].cap = ringCap
	}
	return t
}

// SetOrigin installs the origin-priority hook used to stamp emissions
// (typically des.Engine.Origin). Install it before the first Emit.
func (t *Tracer) SetOrigin(fn func() uint64) {
	if t == nil {
		return
	}
	t.origin = fn
}

// Fork creates a sibling tracer with the same ring layout, owned by one
// shard of a sharded run. The root's Events/Emitted/Dropped aggregate over
// every sibling; the sibling itself must not be exported directly.
func (t *Tracer) Fork() *Tracer {
	if t == nil {
		return nil
	}
	s := &Tracer{rings: make([]ring, len(t.rings))}
	for i := range s.rings {
		s.rings[i].cap = t.rings[i].cap
	}
	t.sibs = append(t.sibs, s)
	return s
}

// Emit records ev, stamping the packed (origin << 40 | count) emission
// serial. Events whose Router is out of range (e.g. graph.None) land in the
// network-scope ring.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.count++
	var pri uint64
	if t.origin != nil {
		pri = t.origin()
	}
	ev.Seq = pri<<seqCountBits | t.count&(1<<seqCountBits-1)
	i := len(t.rings) - 1
	if r := int(ev.Router); r >= 0 && r < i {
		i = r
	}
	t.rings[i].push(ev)
}

// Emitted returns the total number of events ever emitted across the
// tracer family.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	n := t.count
	for _, s := range t.sibs {
		n += s.count
	}
	return n
}

// Dropped returns how many events were overwritten across all rings of the
// tracer family.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for i := range t.rings {
		n += t.rings[i].dropped
	}
	for _, s := range t.sibs {
		n += s.Dropped()
	}
	return n
}

// Events merges the rings of the whole tracer family into one slice
// ordered by (simulation time, packed origin serial) — the order a serial
// run emits in, regardless of how many shards actually ran — then restamps
// Seq with the merge rank so consumers see a contiguous 1-based serial.
// The (T, Seq, ring ordinal) key is a total order: a packed serial never
// repeats within one tracer, and each origin priority emits through one
// tracer of the family.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	type tagged struct {
		ev  Event
		ord int
	}
	var all []tagged
	ord := 0
	for _, tr := range append([]*Tracer{t}, t.sibs...) {
		for i := range tr.rings {
			for _, ev := range tr.rings[i].ordered() {
				all = append(all, tagged{ev: ev, ord: ord})
			}
			ord++
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		//lint:floateq-ok sort comparators need a strict weak order; tolerant equality is not transitive
		if a.ev.T != b.ev.T {
			return a.ev.T < b.ev.T
		}
		if a.ev.Seq != b.ev.Seq {
			return a.ev.Seq < b.ev.Seq
		}
		return a.ord < b.ord
	})
	out := make([]Event, len(all))
	for i := range all {
		out[i] = all[i].ev
		out[i].Seq = uint64(i) + 1
	}
	return out
}
