package telemetry

import (
	"strconv"
	"strings"
)

// InstrumentKind identifies which instrument family a gathered Metric came
// from.
type InstrumentKind uint8

const (
	InstCounter InstrumentKind = iota
	InstGauge
	InstHistogram
)

// String returns the snapshot line prefix for the instrument kind.
func (k InstrumentKind) String() string {
	switch k {
	case InstCounter:
		return "counter"
	case InstGauge:
		return "gauge"
	case InstHistogram:
		return "hist"
	}
	return "unknown"
}

// Metric is one gathered instrument sample. Counters and gauges carry
// Value; histograms carry Count/Sum/Max plus the time-bucketed windows.
// Buckets aliases the histogram's internal storage when it has a single
// writer lane — callers must treat it as read-only.
type Metric struct {
	Name string
	Inst InstrumentKind

	// Value is the counter total or gauge reading.
	Value float64

	// Histogram summary: observation count, sum, largest observation, the
	// time-bucket width, and the per-window summaries.
	Count   int64
	Sum     float64
	Max     float64
	Width   float64
	Buckets []Bucket
}

// Mean returns a histogram metric's all-time average observation.
func (m Metric) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Gather snapshots every instrument in stable order: counters sorted by
// name, then gauges, then histograms — the order Snapshot has always
// rendered in. Counter and gauge reads are atomic, so Gather is safe while
// live goroutines are still writing those instruments; histograms are
// single-threaded by contract (simulation-side only), and instrument
// *creation* must happen-before any concurrent Gather (the registry maps
// themselves are unlocked). A nil registry gathers nothing.
func (r *Registry) Gather() []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		out = append(out, Metric{Name: name, Inst: InstCounter, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		out = append(out, Metric{Name: name, Inst: InstGauge, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		total := h.Total()
		out = append(out, Metric{
			Name: name, Inst: InstHistogram,
			Count: total.N, Sum: total.Sum, Max: total.Max,
			Width: h.BucketWidth(), Buckets: h.Buckets(),
		})
	}
	return out
}

// Snapshot renders every instrument as sorted plain text: one line per
// counter and gauge, one summary line plus one line per non-empty bucket
// for each histogram. It is a pure rendering of Gather, so the two views
// can never disagree.
func (r *Registry) Snapshot() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, m := range r.Gather() {
		switch m.Inst {
		case InstCounter, InstGauge:
			b.WriteString(m.Inst.String() + " " + m.Name + " " + fmtFloat(m.Value) + "\n")
		case InstHistogram:
			b.WriteString("hist " + m.Name +
				" n=" + strconv.FormatInt(m.Count, 10) +
				" mean=" + fmtFloat(m.Mean()) +
				" max=" + fmtFloat(m.Max) + "\n")
			for i, bk := range m.Buckets {
				if bk.N == 0 {
					continue
				}
				b.WriteString("hist " + m.Name + "[" + strconv.Itoa(i) + "]" +
					" t0=" + fmtFloat(float64(i)*m.Width) +
					" n=" + strconv.FormatInt(bk.N, 10) +
					" mean=" + fmtFloat(bk.Mean()) +
					" max=" + fmtFloat(bk.Max) + "\n")
			}
		}
	}
	return b.String()
}
