package telemetry

import (
	"bytes"
	"encoding/json"
	"minroute/internal/leaktest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minroute/internal/graph"
)

func TestKindNamesComplete(t *testing.T) {
	leaktest.Check(t)
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no wire name", k)
		}
		if kindCats[k] == "" {
			t.Fatalf("kind %s has no category", name)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v, true", name, got, ok, k)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Fatal("KindByName accepted an unknown name")
	}
}

func TestTracerMergeOrder(t *testing.T) {
	leaktest.Check(t)
	tr := NewTracer(3, 0)
	// Interleave emissions across routers and the network ring; the merged
	// stream must come back in emission order.
	routers := []graph.NodeID{2, 0, 1, graph.None, 2, 0, 1, 1, graph.None, 0}
	for i, r := range routers {
		tr.Emit(Event{T: float64(i) * 0.5, Kind: KindLSUSend, Router: r})
	}
	if got := tr.Emitted(); got != uint64(len(routers)) {
		t.Fatalf("Emitted() = %d, want %d", got, len(routers))
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d, want 0", got)
	}
	evs := tr.Events()
	if len(evs) != len(routers) {
		t.Fatalf("Events() returned %d events, want %d", len(evs), len(routers))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Router != routers[i] {
			t.Fatalf("event %d has Router %d, want %d", i, ev.Router, routers[i])
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	leaktest.Check(t)
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{T: float64(i), Kind: KindPktEnqueue, Router: 0})
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest were overwritten: the survivors are the last four emissions
	// (T 6..9), restamped with a contiguous merge rank.
	for i, ev := range evs {
		if want := float64(6 + i); ev.T != want {
			t.Fatalf("event %d has T %v, want %v", i, ev.T, want)
		}
		if want := uint64(1 + i); ev.Seq != want {
			t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestTracerOutOfRangeRouter(t *testing.T) {
	leaktest.Check(t)
	tr := NewTracer(2, 8)
	tr.Emit(Event{Kind: KindFaultStart, Router: graph.None})
	tr.Emit(Event{Kind: KindFaultStart, Router: 99})
	if len(tr.rings[2].buf) != 2 {
		t.Fatalf("network ring holds %d events, want 2", len(tr.rings[2].buf))
	}
}

func TestNilSinksAreSafe(t *testing.T) {
	leaktest.Check(t)
	var tr *Tracer
	tr.Emit(Event{Kind: KindLSUSend})
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil Tracer is not inert")
	}
	var c *Counter
	c.Add(1)
	c.Inc()
	c.Set(3)
	if c.Value() != 0 {
		t.Fatal("nil Counter is not inert")
	}
	var g *Gauge
	g.Set(2)
	if g.Value() != 0 {
		t.Fatal("nil Gauge is not inert")
	}
	var h *Histogram
	h.Observe(1, 2)
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Buckets() != nil {
		t.Fatal("nil Histogram is not inert")
	}
	var m *ConvergeMeter
	m.TopoEvent(1)
	m.Commit(2)
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil Registry produced a non-nil instrument")
	}
	if r.Snapshot() != "" {
		t.Fatal("nil Registry snapshot is not empty")
	}
	var p *LinkProbe
	_ = p
	var cap *Capture
	_ = cap
}

func TestDisabledProbesZeroAlloc(t *testing.T) {
	leaktest.Check(t)
	var tr *Tracer
	var c *Counter
	var h *Histogram
	ev := NewEvent(1, KindPktEnqueue, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(ev)
		c.Add(8000)
		h.Observe(1, 8000)
	})
	if allocs != 0 {
		t.Fatalf("disabled probe path allocates %v/op, want 0", allocs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	leaktest.Check(t)
	h := &Histogram{width: 2}
	h.Observe(0.5, 10)
	h.Observe(1.9, 30)
	h.Observe(2.0, 6)
	h.Observe(7.5, 4)
	h.Observe(-1, 2) // negative time clamps to bucket 0
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
	bks := h.Buckets()
	if len(bks) != 4 {
		t.Fatalf("got %d buckets, want 4", len(bks))
	}
	if bks[0].N != 3 || bks[0].Sum != 42 || bks[0].Max != 30 {
		t.Fatalf("bucket 0 = %+v", bks[0])
	}
	if bks[1].N != 1 || bks[1].Sum != 6 {
		t.Fatalf("bucket 1 = %+v", bks[1])
	}
	if bks[2].N != 0 {
		t.Fatalf("bucket 2 = %+v, want empty", bks[2])
	}
	if bks[3].N != 1 || bks[3].Sum != 4 {
		t.Fatalf("bucket 3 = %+v", bks[3])
	}
	if h.Max() != 30 {
		t.Fatalf("Max() = %v, want 30", h.Max())
	}
}

func TestConvergeMeter(t *testing.T) {
	leaktest.Check(t)
	reg := NewRegistry(1)
	m := &ConvergeMeter{Lag: reg.Histogram("converge.lag"), Last: reg.Gauge("converge.last")}
	m.Commit(1) // not armed: ignored
	if m.Lag.Count() != 0 {
		t.Fatal("commit before any topology event recorded a lag")
	}
	m.TopoEvent(10)
	m.TopoEvent(12) // re-arm (no commit yet) restarts the episode
	m.Commit(12.5)
	m.Commit(13) // later commit of the episode: ignored by the slot
	m.Finalize() // closes the episode with the earliest commit
	if m.Lag.Count() != 1 {
		t.Fatalf("lag count = %d, want 1", m.Lag.Count())
	}
	if got := m.Last.Value(); got != 0.5 {
		t.Fatalf("last lag = %v, want 0.5", got)
	}
	// A fresh topology event closes implicitly; per-slot commits fold to
	// the earliest across slots.
	m.TopoEvent(20)
	m.CommitSlot(3, 21.5)
	m.CommitSlot(1, 21)
	m.CommitSlot(3, 20.5) // slot already committed this episode: ignored
	m.TopoEvent(30)       // finalizes with tmin=21
	if m.Lag.Count() != 2 {
		t.Fatalf("lag count = %d, want 2", m.Lag.Count())
	}
	if got := m.Last.Value(); got != 1 {
		t.Fatalf("last lag = %v, want 1", got)
	}
	m.Finalize() // open episode, no commits: stays armed, records nothing
	if m.Lag.Count() != 2 {
		t.Fatalf("lag count after empty finalize = %d, want 2", m.Lag.Count())
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	leaktest.Check(t)
	build := func() *Registry {
		r := NewRegistry(1)
		r.Counter("b.count").Add(2)
		r.Counter("a.count").Inc()
		r.Gauge("z.gauge").Set(0.125)
		h := r.Histogram("q.depth")
		h.Observe(0.5, 4)
		h.Observe(2.5, 8)
		return r
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	if s1 != s2 {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", s1, s2)
	}
	want := "counter a.count 1\n" +
		"counter b.count 2\n" +
		"gauge z.gauge 0.125\n" +
		"hist q.depth n=2 mean=6 max=8\n" +
		"hist q.depth[0] t0=0 n=1 mean=4 max=4\n" +
		"hist q.depth[2] t0=2 n=1 mean=8 max=8\n"
	if s1 != want {
		t.Fatalf("snapshot:\n%s\nwant:\n%s", s1, want)
	}
	// Reading an instrument must not perturb the snapshot.
	r := build()
	_ = r.Counter("a.count").Value()
	if r.Snapshot() != want {
		t.Fatal("get-or-create of an existing instrument changed the snapshot")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	leaktest.Check(t)
	in := []Event{
		{T: 0, Seq: 1, Kind: KindPhaseActive, Router: 0, Peer: graph.None, Dst: graph.None, Flow: -1},
		{T: 0.25, Seq: 2, Kind: KindLSUSend, Router: 0, Peer: 1, Dst: graph.None, Flow: -1, Value: 640},
		{T: 0.25, Seq: 3, Kind: KindPktEnqueue, Router: 1, Peer: 2, Dst: 5, Flow: 3, Value: 8000},
		{T: 1.5, Seq: 4, Kind: KindFaultStart, Router: graph.None, Peer: graph.None, Dst: graph.None, Flow: -1, Label: "link-fail 0-1"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip returned %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d round-trip mismatch:\n in %+v\nout %+v", i, in[i], out[i])
		}
	}
}

func TestJSONLFixedKeyOrder(t *testing.T) {
	leaktest.Check(t)
	ev := Event{T: 1.25, Seq: 7, Kind: KindPktDeliver, Router: 4, Peer: graph.None, Dst: 4, Flow: 2, Value: 0.01, Label: "x"}
	got := string(AppendJSONL(nil, ev))
	want := `{"t":1.25,"seq":7,"kind":"pkt_deliver","router":4,"peer":-1,"dst":4,"flow":2,"value":0.01,"label":"x"}`
	if got != want {
		t.Fatalf("JSONL line:\n got %s\nwant %s", got, want)
	}
}

func TestJSONLReadErrors(t *testing.T) {
	leaktest.Check(t)
	if _, err := ReadJSONL(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":0,"seq":1,"kind":"mystery","router":0,"peer":-1,"dst":-1,"flow":-1,"value":0}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	leaktest.Check(t)
	tr := NewTracer(2, 0)
	tr.Emit(NewEvent(0.1, KindPhaseActive, 0))
	ev := NewEvent(0.2, KindLSUSend, 0)
	ev.Peer = 1
	ev.Value = 640
	tr.Emit(ev)
	recv := NewEvent(0.25, KindLSURecv, 1)
	recv.Peer = 0
	recv.Value = 3
	tr.Emit(recv)
	done := NewEvent(0.3, KindPhasePassive, 0)
	done.Value = 0.2
	tr.Emit(done)
	fault := NewEvent(0.5, KindFaultStart, graph.None)
	fault.Label = "crash 1"
	tr.Emit(fault)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 router metadata + 1 network metadata + 5 events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8:\n%s", len(doc.TraceEvents), buf.String())
	}
	phases := map[string]int{}
	for _, te := range doc.TraceEvents {
		phases[te["ph"].(string)]++
	}
	if phases["M"] != 3 || phases["B"] != 1 || phases["E"] != 1 || phases["i"] != 3 {
		t.Fatalf("phase histogram %v, want M:3 B:1 E:1 i:3", phases)
	}
	// The fault instant lands on the network pid (maxRouter+1 = 3... routers
	// are 0..1 here, netPid=2).
	var faultPid float64 = -1
	for _, te := range doc.TraceEvents {
		if te["name"] == "fault_start" {
			faultPid = te["pid"].(float64)
		}
	}
	if faultPid != 2 {
		t.Fatalf("fault event pid = %v, want network pid 2", faultPid)
	}
}

func TestCaptureExport(t *testing.T) {
	leaktest.Check(t)
	dir := t.TempDir()
	c := NewCaptureSized(2, 16, 1)
	c.Trace.Emit(NewEvent(0, KindPhaseActive, 0))
	c.Metrics.Counter("control.msgs").Inc()
	if err := c.Export(dir, "run"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"run.events.jsonl", "run.trace.json", "run.metrics.txt"} {
		if _, err := os.ReadFile(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
}
