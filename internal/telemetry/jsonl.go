package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"minroute/internal/graph"
)

// AppendJSONL appends one event as a single JSON line (without the
// trailing newline) to b. The encoding is hand-rolled so the field order
// and float formatting are fixed — the log must hash identically
// run-to-run, which encoding/json's map-order and append-buffer behaviors
// do not promise as directly. Label is omitted when empty.
func AppendJSONL(b []byte, ev Event) []byte {
	b = append(b, '{')
	b = appendAttr(b, AttrT)
	b = strconv.AppendFloat(b, ev.T, 'g', -1, 64)
	b = append(b, ',')
	b = appendAttr(b, AttrSeq)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, ',')
	b = appendAttr(b, AttrKind)
	b = strconv.AppendQuote(b, ev.Kind.String())
	b = append(b, ',')
	b = appendAttr(b, AttrRouter)
	b = strconv.AppendInt(b, int64(ev.Router), 10)
	b = append(b, ',')
	b = appendAttr(b, AttrPeer)
	b = strconv.AppendInt(b, int64(ev.Peer), 10)
	b = append(b, ',')
	b = appendAttr(b, AttrDst)
	b = strconv.AppendInt(b, int64(ev.Dst), 10)
	b = append(b, ',')
	b = appendAttr(b, AttrFlow)
	b = strconv.AppendInt(b, int64(ev.Flow), 10)
	b = append(b, ',')
	b = appendAttr(b, AttrValue)
	b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	if ev.Label != "" {
		b = append(b, ',')
		b = appendAttr(b, AttrLabel)
		b = strconv.AppendQuote(b, ev.Label)
	}
	return append(b, '}')
}

func appendAttr(b []byte, k AttrKey) []byte {
	b = append(b, '"')
	b = append(b, k...)
	return append(b, '"', ':')
}

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	var buf []byte
	for _, ev := range events {
		buf = AppendJSONL(buf[:0], ev)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// jsonlEvent mirrors the wire schema for the reader. The tag strings must
// match the AttrKey constants; the encode/decode round-trip test pins it.
type jsonlEvent struct {
	T      float64 `json:"t"`
	Seq    uint64  `json:"seq"`
	Kind   string  `json:"kind"`
	Router int32   `json:"router"`
	Peer   int32   `json:"peer"`
	Dst    int32   `json:"dst"`
	Flow   int32   `json:"flow"`
	Value  float64 `json:"value"`
	Label  string  `json:"label"`
}

// ReadJSONL parses an event log written by WriteJSONL. Used by mdrtrace
// and the round-trip tests; not a hot path, so it leans on encoding/json.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("telemetry: events line %d: %w", line, err)
		}
		k, ok := KindByName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("telemetry: events line %d: unknown kind %q", line, je.Kind)
		}
		out = append(out, Event{
			T:      je.T,
			Seq:    je.Seq,
			Kind:   k,
			Router: graph.NodeID(je.Router),
			Peer:   graph.NodeID(je.Peer),
			Dst:    graph.NodeID(je.Dst),
			Flow:   je.Flow,
			Value:  je.Value,
			Label:  je.Label,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
