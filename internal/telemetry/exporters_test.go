package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/leaktest"
)

// TestExportersEmpty pins the degenerate artifacts: a run that emitted
// nothing must still produce a valid (and byte-stable) Chrome document,
// an empty JSONL log, and a clean read of that log.
func TestExportersEmpty(t *testing.T) {
	leaktest.Check(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty trace has %d rows, want 0", len(doc.TraceEvents))
	}

	buf.Reset()
	if err := WriteJSONL(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty JSONL log = %q, want no bytes", buf.String())
	}
	events, err := ReadJSONL(&buf)
	if err != nil || events != nil {
		t.Fatalf("reading an empty log: events=%v err=%v, want nil/nil", events, err)
	}
}

// TestChromeTracePidRows pins the process-row layout: metadata rows run
// 0..maxRouter even for routers that emitted nothing (trace-viewer rows
// stay aligned with router IDs), and the network row appears only when a
// network-scope event exists, always as maxRouter+1.
func TestChromeTracePidRows(t *testing.T) {
	leaktest.Check(t)
	// Routers 0 and 3 emit; 1 and 2 are silent. No network events.
	evs := []Event{
		NewEvent(0.1, KindLSUSend, 0),
		NewEvent(0.2, KindLSURecv, 3),
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, te := range doc.TraceEvents {
		if te["ph"] == "M" {
			args := te["args"].(map[string]any)
			names = append(names, args["name"].(string))
		}
	}
	want := []string{"router 0", "router 1", "router 2", "router 3"}
	if len(names) != len(want) {
		t.Fatalf("metadata rows %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("metadata rows %v, want %v", names, want)
		}
	}
	if strings.Contains(buf.String(), `"network"`) {
		t.Fatal("network row emitted without network-scope events")
	}

	// Adding one network-scope event grows exactly one more row at
	// pid maxRouter+1.
	fault := NewEvent(0.5, KindFaultStart, graph.None)
	buf.Reset()
	if err := WriteChromeTrace(&buf, append(evs, fault)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"pid":4,"args":{"name":"network"}`) {
		t.Fatalf("network row missing or on the wrong pid:\n%s", buf.String())
	}
}

// TestExportRingWrapped drives a tiny ring past capacity and checks the
// whole truncation story: Events keeps only the newest ringCap entries
// per router in Seq order, the loss is visible through Dropped, and
// SyncDropCounters surfaces it as first-class metrics in the snapshot.
func TestExportRingWrapped(t *testing.T) {
	leaktest.Check(t)
	c := NewCaptureSized(1, 4, 1)
	for i := 0; i < 10; i++ {
		c.Trace.Emit(NewEvent(float64(i), KindLSUSend, 0))
	}
	evs := c.Trace.Events()
	if len(evs) != 4 {
		t.Fatalf("ring-wrapped Events() returned %d, want capacity 4", len(evs))
	}
	// The survivors are the newest four, re-stamped 1..4.
	for i, ev := range evs {
		if ev.T != float64(6+i) || ev.Seq != uint64(i+1) {
			t.Fatalf("event %d = T%g Seq%d, want T%d Seq%d", i, ev.T, ev.Seq, 6+i, i+1)
		}
	}
	if c.Trace.Emitted() != 10 || c.Trace.Dropped() != 6 {
		t.Fatalf("emitted=%d dropped=%d, want 10 and 6", c.Trace.Emitted(), c.Trace.Dropped())
	}

	// The wrapped log still round-trips through JSONL.
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil || len(back) != 4 {
		t.Fatalf("round-trip of wrapped log: %d events, err=%v", len(back), err)
	}

	// Drop accounting lands in the metrics snapshot (and so on /metrics).
	c.SyncDropCounters()
	snap := c.Metrics.Snapshot()
	for _, want := range []string{
		"counter telemetry.events.dropped 6",
		"counter telemetry.events.emitted 10",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

// TestForkMergeConcurrent exercises the sharded-run export path: sibling
// tracers written from concurrent goroutines (one owner each, the Fork
// contract) merge into a single timeline ordered by (T, origin serial)
// with a contiguous re-stamped Seq, and the merged log exports cleanly.
func TestForkMergeConcurrent(t *testing.T) {
	leaktest.Check(t)
	root := NewTracer(4, 64)
	const shards, perShard = 3, 20
	tracers := []*Tracer{root}
	for i := 1; i < shards; i++ {
		tracers = append(tracers, root.Fork())
	}
	var wg sync.WaitGroup
	for s, tr := range tracers {
		wg.Add(1)
		go func(shard int, tr *Tracer) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				ev := NewEvent(float64(i), KindLSUSend, graph.NodeID(shard))
				ev.Peer = graph.NodeID((shard + 1) % shards)
				tr.Emit(ev)
			}
		}(s, tr)
	}
	wg.Wait()

	evs := root.Events()
	if len(evs) != shards*perShard {
		t.Fatalf("merged %d events, want %d", len(evs), shards*perShard)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d, want contiguous re-stamp %d", i, ev.Seq, i+1)
		}
		if i > 0 && ev.T < evs[i-1].T {
			t.Fatalf("merge out of time order at %d: %g after %g", i, ev.T, evs[i-1].T)
		}
	}
	if root.Emitted() != shards*perShard || root.Dropped() != 0 {
		t.Fatalf("family accounting: emitted=%d dropped=%d", root.Emitted(), root.Dropped())
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil || len(back) != len(evs) {
		t.Fatalf("merged log round-trip: %d events, err=%v", len(back), err)
	}
}

// TestReadJSONLOversizedLine pins the scanner bound: a line beyond the
// 1 MiB buffer surfaces as an error instead of silent truncation.
func TestReadJSONLOversizedLine(t *testing.T) {
	leaktest.Check(t)
	line := `{"t":0,"seq":1,"kind":"lsu_send","router":0,"peer":-1,"dst":-1,"flow":-1,"value":0,"label":"` +
		strings.Repeat("x", 1<<21) + `"}`
	if _, err := ReadJSONL(strings.NewReader(line)); err == nil {
		t.Fatal("oversized line accepted")
	}
}
