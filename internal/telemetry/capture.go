package telemetry

import (
	"os"
	"path/filepath"
	"strings"
)

// Capture bundles one simulation's event bus and metrics registry. Build a
// Capture, hand it to core.Options.Telemetry, and export after the run.
// A nil *Capture disables instrumentation entirely.
type Capture struct {
	Trace   *Tracer
	Metrics *Registry
}

// NewCapture builds a capture with default ring capacity and histogram
// bucket width for a network of numRouters routers.
func NewCapture(numRouters int) *Capture {
	return NewCaptureSized(numRouters, DefaultRingCap, DefaultBucketWidth)
}

// NewCaptureSized builds a capture with explicit per-router ring capacity
// and histogram time-bucket width.
func NewCaptureSized(numRouters, ringCap int, bucketWidth float64) *Capture {
	return &Capture{
		Trace:   NewTracer(numRouters, ringCap),
		Metrics: NewRegistry(bucketWidth),
	}
}

// SyncDropCounters mirrors the event bus's own accounting into registry
// counters: telemetry.events.emitted and telemetry.events.dropped. It is
// idempotent (Set, not Add), so callers that already mirror these totals —
// core.Network.ExportTelemetry does — converge on the same values.
func (c *Capture) SyncDropCounters() {
	if c == nil || c.Trace == nil || c.Metrics == nil {
		return
	}
	c.Metrics.Counter("telemetry.events.emitted").Set(float64(c.Trace.Emitted()))
	c.Metrics.Counter("telemetry.events.dropped").Set(float64(c.Trace.Dropped()))
}

// Export writes the capture's three artifacts into dir:
//
//	<prefix>.events.jsonl — the merged event log, one JSON object per line
//	<prefix>.trace.json   — Chrome trace-viewer (catapult) JSON
//	<prefix>.metrics.txt  — the sorted metrics snapshot
//
// All three are deterministic functions of the simulation, so they can be
// hashed and compared across runs and worker counts.
//
// Export first mirrors the event bus's own accounting into the registry —
// telemetry.events.emitted and telemetry.events.dropped — so a truncated
// (ring-wrapped) log is visible as a first-class metric in the snapshot
// and on any /metrics endpoint, not just as an operator warning. Both
// totals are schedule-independent: emission counts and per-ring drop
// counts are functions of what each router emitted, not of how shards or
// workers were scheduled.
func (c *Capture) Export(dir, prefix string) error {
	c.SyncDropCounters()
	events := c.Trace.Events()
	var jsonl strings.Builder
	if err := WriteJSONL(&jsonl, events); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, prefix+".events.jsonl"), []byte(jsonl.String()), 0o644); err != nil {
		return err
	}
	var chrome strings.Builder
	if err := WriteChromeTrace(&chrome, events); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, prefix+".trace.json"), []byte(chrome.String()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, prefix+".metrics.txt"), []byte(c.Metrics.Snapshot()), 0o644)
}
