package telemetry

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Counter is a monotonically growing (or explicitly Set) float total. It
// optionally carries indexed slots so the shards of a parallel run can each
// accumulate into a private lane without locks; Value folds the slots in
// ascending index order, so the float result is independent of how work was
// scheduled. A nil *Counter is a valid no-op sink, which is what gives
// every probe site its one-branch disabled path.
//
// The scalar lane (Add/Set/Value) is atomic: the live runtime's ARQ and
// session goroutines write counters that the obs server scrapes
// concurrently, and an uncontended CAS costs single-digit nanoseconds —
// invisible next to the branch the disabled path already pays. The slot
// lanes stay plain: they belong to the sharded simulator, whose shards are
// single-threaded and whose readers run at barriers.
type Counter struct {
	bits  atomic.Uint64 // math.Float64bits of the scalar total
	slots []float64
}

// Add increases the counter by d.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddSlot increases slot i by d. Distinct slots may be written from
// distinct goroutines, provided GrowSlots pre-sized the slot array (growth
// is not concurrency-safe).
func (c *Counter) AddSlot(i int, d float64) {
	if c == nil {
		return
	}
	for len(c.slots) <= i {
		c.slots = append(c.slots, 0)
	}
	c.slots[i] += d
}

// GrowSlots pre-sizes the slot array to at least n entries. Call it during
// single-threaded setup before handing slots to concurrent writers.
func (c *Counter) GrowSlots(n int) {
	if c == nil {
		return
	}
	for len(c.slots) < n {
		c.slots = append(c.slots, 0)
	}
}

// Set overwrites the counter (used to mirror externally maintained totals,
// e.g. ring drop counts, into a snapshot).
func (c *Counter) Set(v float64) {
	if c == nil {
		return
	}
	c.bits.Store(math.Float64bits(v))
}

// Value returns the current total: the scalar plus every slot, folded in
// ascending slot order (zero for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	v := math.Float64frombits(c.bits.Load())
	for _, s := range c.slots {
		v += s
	}
	return v
}

// Gauge is a last-value-wins instantaneous measurement. Set and Value are
// atomic, for the same live-scrape reason as Counter.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the last value
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (zero for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Bucket summarizes the observations of one simulation-time window.
type Bucket struct {
	N   int64
	Sum float64
	Max float64
}

// Mean returns the bucket's average observation, or 0 with none.
func (b Bucket) Mean() float64 {
	if b.N == 0 {
		return 0
	}
	return b.Sum / float64(b.N)
}

// histSlot is one writer lane of a Histogram: its own time buckets and
// running total.
type histSlot struct {
	buckets []Bucket
	total   Bucket
}

func (s *histSlot) observe(t, v, width float64) {
	i := 0
	if t > 0 && width > 0 {
		i = int(t / width)
	}
	for len(s.buckets) <= i {
		s.buckets = append(s.buckets, Bucket{})
	}
	b := &s.buckets[i]
	b.N++
	b.Sum += v
	if v > b.Max {
		b.Max = v
	}
	s.total.N++
	s.total.Sum += v
	if v > s.total.Max {
		s.total.Max = v
	}
}

// Histogram aggregates observations into fixed-width simulation-time
// buckets: Observe(t, v) lands v in bucket floor(t/width). That makes a
// histogram a compact time series — queue depth per second, ACTIVE-phase
// duration per second — instead of a value-domain distribution, which is
// the shape the paper's figures actually need.
//
// Like Counter, a histogram carries indexed slots (writer lanes): a
// sharded run gives each logical emitter (a router, a flow destination) a
// fixed slot, so distinct shards never write the same lane, and the
// read-side accessors fold lanes in ascending slot order — float sums come
// out identical no matter how the run was scheduled, provided the serial
// run uses the same per-slot observation calls.
type Histogram struct {
	width float64
	slots []histSlot
}

// Observe records value v at simulation time t in slot 0.
func (h *Histogram) Observe(t, v float64) { h.ObserveSlot(0, t, v) }

// ObserveSlot records value v at simulation time t in the given slot.
// Distinct slots may be written from distinct goroutines, provided Grow
// pre-sized the slot array (growth is not concurrency-safe).
func (h *Histogram) ObserveSlot(slot int, t, v float64) {
	if h == nil {
		return
	}
	for len(h.slots) <= slot {
		h.slots = append(h.slots, histSlot{})
	}
	h.slots[slot].observe(t, v, h.width)
}

// Grow pre-sizes the slot array to at least n entries. Call it during
// single-threaded setup before handing slots to concurrent writers.
func (h *Histogram) Grow(n int) {
	if h == nil {
		return
	}
	for len(h.slots) < n {
		h.slots = append(h.slots, histSlot{})
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.slots {
		n += h.slots[i].total.N
	}
	return n
}

// Total returns the all-time summary bucket: slot totals folded in
// ascending slot order (N, Sum) with the largest observation as Max.
func (h *Histogram) Total() Bucket {
	if h == nil {
		return Bucket{}
	}
	var b Bucket
	for i := range h.slots {
		b.N += h.slots[i].total.N
		b.Sum += h.slots[i].total.Sum
		if h.slots[i].total.Max > b.Max {
			b.Max = h.slots[i].total.Max
		}
	}
	return b
}

// Mean returns the all-time average observation, or 0 with none. Slot sums
// fold in ascending slot order.
func (h *Histogram) Mean() float64 {
	return h.Total().Mean()
}

// Max returns the largest observation seen.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	var m float64
	for i := range h.slots {
		if h.slots[i].total.Max > m {
			m = h.slots[i].total.Max
		}
	}
	return m
}

// BucketWidth returns the time-bucket width in seconds.
func (h *Histogram) BucketWidth() float64 {
	if h == nil {
		return 0
	}
	return h.width
}

// Buckets returns the per-window summaries, index i covering simulation
// time [i*width, (i+1)*width), folded across slots in ascending slot
// order. With a single slot the histogram's own bucket slice is returned;
// with several the fold allocates a merged copy. Callers must not modify
// the result.
func (h *Histogram) Buckets() []Bucket {
	if h == nil || len(h.slots) == 0 {
		return nil
	}
	if len(h.slots) == 1 {
		return h.slots[0].buckets
	}
	n := 0
	for i := range h.slots {
		if len(h.slots[i].buckets) > n {
			n = len(h.slots[i].buckets)
		}
	}
	out := make([]Bucket, n)
	for i := range h.slots {
		for j, bk := range h.slots[i].buckets {
			out[j].N += bk.N
			out[j].Sum += bk.Sum
			if bk.Max > out[j].Max {
				out[j].Max = bk.Max
			}
		}
	}
	return out
}

// ConvergeMeter approximates per-topology-event convergence time: every
// injected topology change (fail, restore, crash, restart) arms the meter,
// and the first routing-table commit anywhere in the network afterwards
// closes it, recording commit-time minus event-time. That is a lower bound
// on full Theorem-4 convergence (later commits belong to the same episode)
// but it is cheap, per-event, and monotone in the quantity the Tl sweeps
// study: how fast the control plane reacts to change.
//
// Commits are recorded per slot (one slot per router) and the episode is
// closed lazily — at the next topology event or at Finalize — by taking
// the earliest commit across slots. Because simulation time is
// nondecreasing within a slot, the earliest commit is exactly the first
// one, so the recorded lag matches the eager serial semantics while
// letting the routers of a sharded run report commits without locks.
type ConvergeMeter struct {
	// Lag receives one observation per closed episode (at the commit time).
	Lag *Histogram
	// Last mirrors the most recent lag for the snapshot.
	Last  *Gauge
	at    float64
	armed bool
	// commits[slot] is the earliest commit time slot reported this episode,
	// or -1 with none yet.
	commits []float64
}

// TopoEvent marks a topology change at simulation time t, closing any
// previous episode first. Call only from single-threaded context (faults
// are injected at barriers).
func (m *ConvergeMeter) TopoEvent(t float64) {
	if m == nil {
		return
	}
	m.Finalize()
	m.at = t
	m.armed = true
	for i := range m.commits {
		m.commits[i] = -1
	}
}

// GrowSlots pre-sizes the commit slots to at least n entries. Call it
// during single-threaded setup before handing slots to concurrent writers.
func (m *ConvergeMeter) GrowSlots(n int) {
	if m == nil {
		return
	}
	for len(m.commits) < n {
		m.commits = append(m.commits, -1)
	}
}

// CommitSlot reports a routing-table commit by the given slot at time t.
// Distinct slots may be written from distinct goroutines.
func (m *ConvergeMeter) CommitSlot(slot int, t float64) {
	if m == nil || !m.armed {
		return
	}
	for len(m.commits) <= slot {
		m.commits = append(m.commits, -1)
	}
	if m.commits[slot] < 0 {
		m.commits[slot] = t
	}
}

// Commit reports a routing-table commit at time t in slot 0.
func (m *ConvergeMeter) Commit(t float64) { m.CommitSlot(0, t) }

// Finalize closes the armed episode if any slot has committed, folding the
// slots in ascending order to find the earliest commit. With no commit yet
// the episode stays armed. Call only from single-threaded context (a
// barrier, or export time).
func (m *ConvergeMeter) Finalize() {
	if m == nil || !m.armed {
		return
	}
	tmin := -1.0
	for _, c := range m.commits {
		if c >= 0 && (tmin < 0 || c < tmin) {
			tmin = c
		}
	}
	if tmin < 0 {
		return
	}
	m.armed = false
	lag := tmin - m.at
	m.Lag.Observe(tmin, lag)
	m.Last.Set(lag)
}

// DefaultBucketWidth is the histogram time-bucket width used by
// NewCapture: one second, matching the short-term (Ts) order of magnitude.
const DefaultBucketWidth = 1.0

// Registry is a name-keyed collection of counters, gauges, and histograms.
// Accessors get-or-create, so wiring code can reference an instrument in
// one line; a nil *Registry returns nil instruments, which are themselves
// no-op sinks — the whole chain stays safe when telemetry is off.
type Registry struct {
	width    float64
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds a registry whose histograms bucket simulation time at
// the given width (<= 0 selects DefaultBucketWidth).
func NewRegistry(bucketWidth float64) *Registry {
	if bucketWidth <= 0 {
		bucketWidth = DefaultBucketWidth
	}
	return &Registry{
		width:    bucketWidth,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{width: r.width}
		r.hists[name] = h
	}
	return h
}

// RegisterCounter installs an existing counter under name, so one
// instrument can appear in several registries — the mesh-wide registry and
// the owning node's obs registry share the same per-link ARQ counter.
// Setup-time only: registry maps are not safe for concurrent mutation.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.counters[name] = c
}

// RegisterGauge installs an existing gauge under name (see RegisterCounter).
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.gauges[name] = g
}

// fmtFloat is the canonical float rendering shared by every exporter:
// shortest round-trippable form, so snapshots are byte-identical
// run-to-run.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//lint:maporder-ok keys are collected and sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
