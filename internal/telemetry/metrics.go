package telemetry

import (
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically growing (or explicitly Set) float total.
// A nil *Counter is a valid no-op sink, which is what gives every probe
// site its one-branch disabled path.
type Counter struct {
	v float64
}

// Add increases the counter by d.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter (used to mirror externally maintained totals,
// e.g. ring drop counts, into a snapshot).
func (c *Counter) Set(v float64) {
	if c == nil {
		return
	}
	c.v = v
}

// Value returns the current total (zero for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	v float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last value set (zero for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Bucket summarizes the observations of one simulation-time window.
type Bucket struct {
	N   int64
	Sum float64
	Max float64
}

// Mean returns the bucket's average observation, or 0 with none.
func (b Bucket) Mean() float64 {
	if b.N == 0 {
		return 0
	}
	return b.Sum / float64(b.N)
}

// Histogram aggregates observations into fixed-width simulation-time
// buckets: Observe(t, v) lands v in bucket floor(t/width). That makes a
// histogram a compact time series — queue depth per second, ACTIVE-phase
// duration per second — instead of a value-domain distribution, which is
// the shape the paper's figures actually need.
type Histogram struct {
	width   float64
	buckets []Bucket
	total   Bucket
}

// Observe records value v at simulation time t.
func (h *Histogram) Observe(t, v float64) {
	if h == nil {
		return
	}
	i := 0
	if t > 0 && h.width > 0 {
		i = int(t / h.width)
	}
	for len(h.buckets) <= i {
		h.buckets = append(h.buckets, Bucket{})
	}
	b := &h.buckets[i]
	b.N++
	b.Sum += v
	if v > b.Max {
		b.Max = v
	}
	h.total.N++
	h.total.Sum += v
	if v > h.total.Max {
		h.total.Max = v
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.N
}

// Mean returns the all-time average observation, or 0 with none.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	return h.total.Mean()
}

// Max returns the largest observation seen.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.total.Max
}

// BucketWidth returns the time-bucket width in seconds.
func (h *Histogram) BucketWidth() float64 {
	if h == nil {
		return 0
	}
	return h.width
}

// Buckets returns the per-window summaries, index i covering simulation
// time [i*width, (i+1)*width). The slice is owned by the histogram.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	return h.buckets
}

// ConvergeMeter approximates per-topology-event convergence time: every
// injected topology change (fail, restore, crash, restart) arms the meter,
// and the first routing-table commit anywhere in the network afterwards
// closes it, recording commit-time minus event-time. That is a lower bound
// on full Theorem-4 convergence (later commits belong to the same episode)
// but it is cheap, per-event, and monotone in the quantity the Tl sweeps
// study: how fast the control plane reacts to change.
type ConvergeMeter struct {
	// Lag receives one observation per closed episode (at the commit time).
	Lag *Histogram
	// Last mirrors the most recent lag for the snapshot.
	Last  *Gauge
	at    float64
	armed bool
}

// TopoEvent marks a topology change at simulation time t. A new event
// re-arms the meter (the episode restarts).
func (m *ConvergeMeter) TopoEvent(t float64) {
	if m == nil {
		return
	}
	m.at = t
	m.armed = true
}

// Commit reports a routing-table commit at time t, closing any armed
// episode.
func (m *ConvergeMeter) Commit(t float64) {
	if m == nil || !m.armed {
		return
	}
	m.armed = false
	lag := t - m.at
	m.Lag.Observe(t, lag)
	m.Last.Set(lag)
}

// DefaultBucketWidth is the histogram time-bucket width used by
// NewCapture: one second, matching the short-term (Ts) order of magnitude.
const DefaultBucketWidth = 1.0

// Registry is a name-keyed collection of counters, gauges, and histograms.
// Accessors get-or-create, so wiring code can reference an instrument in
// one line; a nil *Registry returns nil instruments, which are themselves
// no-op sinks — the whole chain stays safe when telemetry is off.
type Registry struct {
	width    float64
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds a registry whose histograms bucket simulation time at
// the given width (<= 0 selects DefaultBucketWidth).
func NewRegistry(bucketWidth float64) *Registry {
	if bucketWidth <= 0 {
		bucketWidth = DefaultBucketWidth
	}
	return &Registry{
		width:    bucketWidth,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{width: r.width}
		r.hists[name] = h
	}
	return h
}

// fmtFloat is the canonical float rendering shared by every exporter:
// shortest round-trippable form, so snapshots are byte-identical
// run-to-run.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Snapshot renders every instrument as sorted plain text: one line per
// counter and gauge, one summary line plus one line per non-empty bucket
// for each histogram.
func (r *Registry) Snapshot() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, name := range sortedKeys(r.counters) {
		b.WriteString("counter " + name + " " + fmtFloat(r.counters[name].Value()) + "\n")
	}
	for _, name := range sortedKeys(r.gauges) {
		b.WriteString("gauge " + name + " " + fmtFloat(r.gauges[name].Value()) + "\n")
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		b.WriteString("hist " + name +
			" n=" + strconv.FormatInt(h.Count(), 10) +
			" mean=" + fmtFloat(h.Mean()) +
			" max=" + fmtFloat(h.Max()) + "\n")
		for i, bk := range h.Buckets() {
			if bk.N == 0 {
				continue
			}
			b.WriteString("hist " + name + "[" + strconv.Itoa(i) + "]" +
				" t0=" + fmtFloat(float64(i)*h.width) +
				" n=" + strconv.FormatInt(bk.N, 10) +
				" mean=" + fmtFloat(bk.Mean()) +
				" max=" + fmtFloat(bk.Max) + "\n")
		}
	}
	return b.String()
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//lint:maporder-ok keys are collected and sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
