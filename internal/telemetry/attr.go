package telemetry

// AttrKey is an event attribute key as it appears on the wire (JSONL field
// names and Chrome-trace args). Keys form a closed enum: every AttrKey
// literal in the module must be one of the constants below — the
// telemetry-attr lint in mdrcheck enforces it, so exporters, readers, and
// tools cannot drift apart on spelling.
type AttrKey string

// The registered attribute keys.
const (
	AttrT      AttrKey = "t"
	AttrSeq    AttrKey = "seq"
	AttrKind   AttrKey = "kind"
	AttrRouter AttrKey = "router"
	AttrPeer   AttrKey = "peer"
	AttrDst    AttrKey = "dst"
	AttrFlow   AttrKey = "flow"
	AttrValue  AttrKey = "value"
	AttrLabel  AttrKey = "label"
)

// Attrs lists every registered key in canonical wire order.
var Attrs = []AttrKey{
	AttrT, AttrSeq, AttrKind, AttrRouter, AttrPeer, AttrDst, AttrFlow, AttrValue, AttrLabel,
}
