package telemetry

import (
	"io"
	"strconv"

	"minroute/internal/graph"
)

// WriteChromeTrace renders events as Chrome trace-viewer (catapult) JSON:
// open chrome://tracing (or https://ui.perfetto.dev) and load the file.
// Each router becomes a process row; ACTIVE phases render as duration
// spans (B/E pairs) and everything else as thread-scoped instants with the
// event attributes in args. Timestamps are simulation microseconds.
//
// Encoding is hand-rolled for the same reason as the JSONL writer: fixed
// field order and canonical floats keep the artifact byte-deterministic.
func WriteChromeTrace(w io.Writer, events []Event) error {
	maxRouter := graph.NodeID(-1)
	network := false
	for i := range events {
		if r := events[i].Router; r >= 0 {
			if r > maxRouter {
				maxRouter = r
			}
		} else {
			network = true
		}
	}
	netPid := int(maxRouter) + 1

	var b []byte
	b = append(b, `{"displayTimeUnit":"ms","traceEvents":[`...)
	first := true
	comma := func() {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '\n')
	}

	// Process-name metadata rows, in pid order.
	for pid := 0; pid <= int(maxRouter); pid++ {
		comma()
		b = append(b, `{"name":"process_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"args":{"name":"router `...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `"}}`...)
	}
	if network {
		comma()
		b = append(b, `{"name":"process_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(netPid), 10)
		b = append(b, `,"args":{"name":"network"}}`...)
	}

	for i := range events {
		ev := &events[i]
		pid := netPid
		if ev.Router >= 0 {
			pid = int(ev.Router)
		}
		comma()
		switch ev.Kind {
		case KindPhaseActive:
			b = appendChromeHead(b, "ACTIVE", "mpda", 'B', ev.T, pid)
			b = append(b, '}')
		case KindPhasePassive:
			b = appendChromeHead(b, "ACTIVE", "mpda", 'E', ev.T, pid)
			b = append(b, '}')
		default:
			b = appendChromeHead(b, ev.Kind.String(), kindCats[ev.Kind], 'i', ev.T, pid)
			b = append(b, `,"s":"t","args":{`...)
			b = appendChromeArgs(b, ev)
			b = append(b, '}', '}')
		}
	}
	b = append(b, "\n]}\n"...)
	_, err := w.Write(b)
	return err
}

// appendChromeHead writes the shared prefix of one trace event, leaving
// the object open for args.
func appendChromeHead(b []byte, name, cat string, ph byte, t float64, pid int) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"cat":`...)
	b = strconv.AppendQuote(b, cat)
	b = append(b, `,"ph":"`...)
	b = append(b, ph, '"')
	b = append(b, `,"ts":`...)
	b = strconv.AppendFloat(b, t*1e6, 'g', -1, 64)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":0`...)
	return b
}

// appendChromeArgs writes the applicable event attributes, keys drawn from
// the registered AttrKey enum.
func appendChromeArgs(b []byte, ev *Event) []byte {
	b = appendAttr(b, AttrSeq)
	b = strconv.AppendUint(b, ev.Seq, 10)
	if ev.Peer != graph.None {
		b = append(b, ',')
		b = appendAttr(b, AttrPeer)
		b = strconv.AppendInt(b, int64(ev.Peer), 10)
	}
	if ev.Dst != graph.None {
		b = append(b, ',')
		b = appendAttr(b, AttrDst)
		b = strconv.AppendInt(b, int64(ev.Dst), 10)
	}
	if ev.Flow >= 0 {
		b = append(b, ',')
		b = appendAttr(b, AttrFlow)
		b = strconv.AppendInt(b, int64(ev.Flow), 10)
	}
	b = append(b, ',')
	b = appendAttr(b, AttrValue)
	b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	if ev.Label != "" {
		b = append(b, ',')
		b = appendAttr(b, AttrLabel)
		b = strconv.AppendQuote(b, ev.Label)
	}
	return b
}
