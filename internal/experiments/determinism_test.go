package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"minroute/internal/simpool"
)

// figureHash reduces a generated figure to a single digest over everything
// we publish (CSV points and the rendered table), so a mismatch anywhere in
// the output surfaces as a one-line hash diff.
func figureHash(t *testing.T, id string, s Settings) string {
	t.Helper()
	fig, err := All[id](s)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(fig.CSV() + "\x00" + fig.Table()))
	return hex.EncodeToString(sum[:])
}

// TestFigureDeterminism is the regression test behind the maporder/norand
// lint rules: a quick figure regenerated in the same process — with fresh
// map layouts (Go randomizes iteration order per map, not per process),
// different GOMAXPROCS, and different worker counts — must hash
// identically. Any map-order, wall-clock, or scheduling dependence in the
// protocol or reporting path shows up here as a hash mismatch.
func TestFigureDeterminism(t *testing.T) {
	oldWorkers := simpool.Workers()
	defer simpool.SetWorkers(oldWorkers)
	oldProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(oldProcs)

	for _, id := range []string{"abl-est", "fig14"} {
		id := id
		t.Run(id, func(t *testing.T) {
			runtime.GOMAXPROCS(oldProcs)
			simpool.SetWorkers(1)
			base := figureHash(t, id, detSettings)

			for _, cfg := range []struct {
				procs, workers int
			}{
				{1, 1},
				{max(2, oldProcs), 4},
			} {
				runtime.GOMAXPROCS(cfg.procs)
				simpool.SetWorkers(cfg.workers)
				if got := figureHash(t, id, detSettings); got != base {
					t.Errorf("GOMAXPROCS=%d workers=%d: hash %s differs from baseline %s",
						cfg.procs, cfg.workers, got, base)
				}
			}
		})
	}
}
