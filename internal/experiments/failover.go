package experiments

import (
	"fmt"

	"minroute/internal/core"
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/simpool"
	"minroute/internal/topo"
)

// Failover quantifies the paper's remark that "in the presence of link
// failures, MP can only perform better than SP, because of availability of
// alternate paths": one NET1 bridge link (4-5) fails mid-run and later
// recovers; the figure reports the mean delay over flows in each phase for
// MP and SP. Rows are phases rather than flows.
func Failover(set Settings) (*report.Figure, error) {
	fig := &report.Figure{
		ID:      "failover",
		Title:   "Bridge failure and recovery in NET1 (mean over flows, ms)",
		Columns: []string{"MP-TL-10-TS-2", "SP-TL-10"},
	}
	phases := []string{"baseline", "failed", "recovered"}
	cells := make(map[string][]float64) // phase -> per-scheme means

	modes := []router.Mode{router.ModeMP, router.ModeSP}
	cols := make([][]float64, len(modes))
	g := simpool.Coordinator()
	for i, mode := range modes {
		i, mode := i, mode
		g.Go(func() error {
			avg, err := runSeeds(set, func(run Settings) ([]float64, error) {
				vals, err := failoverRun(mode, run, run.Seed)
				if err != nil {
					return nil, err
				}
				return vals[:], nil
			})
			cols[i] = avg
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for _, col := range cols {
		for i, phase := range phases {
			cells[phase] = append(cells[phase], col[i])
		}
	}
	for _, phase := range phases {
		fig.AddRow(phase, cells[phase]...)
	}
	fig.Notes = append(fig.Notes,
		"paper: with link failures MP can only perform better than SP (alternate paths already in place)")
	return fig, nil
}

// failoverRun measures one scheme's mean delay across the three phases.
func failoverRun(mode router.Mode, set Settings, seed uint64) ([3]float64, error) {
	var out [3]float64
	net := topo.NET1()
	opt := core.DefaultOptions()
	opt.Router.Mode = mode
	opt.Seed = seed
	if mode == router.ModeSP {
		opt.Router.Ts = opt.Router.Tl
		opt.Router.CostMeasureWindow = 5
	}
	n := core.Build(net, opt)
	n.Start()
	n.Eng.Run(set.Warmup)

	measure := func(idx int, dur float64) error {
		for _, s := range n.Stats {
			s.Reset()
		}
		n.Eng.Run(n.Eng.Now() + dur)
		if err := n.CheckLoopFree(); err != nil {
			return fmt.Errorf("experiments: failover %v: %w", mode, err)
		}
		out[idx] = n.Report().AvgMeanDelayMs()
		return nil
	}

	if err := measure(0, set.Duration); err != nil {
		return out, err
	}
	n.FailLink(4, 5)
	n.Eng.Run(n.Eng.Now() + 5) // reconvergence grace
	if err := measure(1, set.Duration); err != nil {
		return out, err
	}
	n.RestoreLink(4, 5)
	n.Eng.Run(n.Eng.Now() + 5)
	if err := measure(2, set.Duration); err != nil {
		return out, err
	}
	return out, nil
}

func init() {
	All["failover"] = Failover
	IDs = append(IDs, "failover")
}
