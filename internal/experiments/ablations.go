package experiments

import (
	"fmt"

	"minroute/internal/core"
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/simpool"
	"minroute/internal/topo"
)

// This file holds the ablation studies that back the design choices
// DESIGN.md calls out: the damped AH variant, the two-timescale cost
// measurement, the choice of marginal-delay estimator, and the baselines
// spectrum (OPT / MP / OSPF-style ECMP / SP). It also adds the load sweep
// the paper describes qualitatively ("When connectivity is low or network
// load is light, MP routing cannot offer any advantage over SP").

// variant is a labeled router-configuration mutation on top of a scheme.
type variant struct {
	label  string
	mode   router.Mode
	mutate func(*router.Config)
}

// runVariant simulates one configured variant, once per seed in parallel,
// returning per-flow mean delays averaged across runs.
func runVariant(build func() *topo.Network, v variant, set Settings, scale float64) ([]float64, error) {
	return runSeeds(set, func(run Settings) ([]float64, error) {
		net := build()
		//lint:floateq-ok scale==1 is an exact sentinel chosen by callers, never a computed value
		if scale != 1 {
			// Never mutate the built network in place: build() may hand out
			// a shared instance (CustomComparison), and sibling seeds read
			// it concurrently.
			net = &topo.Network{Graph: net.Graph, Flows: topo.ScaleFlows(net.Flows, scale)}
		}
		opt := core.DefaultOptions()
		opt.Router.Mode = v.mode
		opt.Seed = run.Seed
		opt.Warmup = run.Warmup
		opt.Duration = run.Duration
		if v.mode == router.ModeSP || v.mode == router.ModeECMP {
			opt.Router.Ts = opt.Router.Tl
			opt.Router.CostMeasureWindow = 5
		}
		if v.mutate != nil {
			v.mutate(&opt.Router)
		}
		n := core.Build(net, opt)
		rep := n.Run()
		if err := n.CheckLoopFree(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", v.label, err)
		}
		return rep.MeanDelayMs, nil
	})
}

// variantFigure assembles a per-flow figure over the given variants, each
// variant a coordinator task fanning its seeds onto the worker pool.
func variantFigure(id, title string, build func() *topo.Network, vs []variant, set Settings) (*report.Figure, error) {
	fig := &report.Figure{ID: id, Title: title}
	cols := make([][]float64, len(vs))
	g := simpool.Coordinator()
	for i, v := range vs {
		i, v := i, v
		g.Go(func() error {
			delays, err := runVariant(build, v, set, 1)
			cols[i] = delays
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for _, v := range vs {
		fig.Columns = append(fig.Columns, v.label)
	}
	net := build()
	for x, f := range net.Flows {
		row := make([]float64, len(cols))
		for c := range cols {
			row[c] = cols[c][x]
		}
		fig.AddRow(fmt.Sprintf("%d:%s", x, f.Name), row...)
	}
	return fig, nil
}

// AblationAH compares the adjustment-heuristic variants on NET1: the
// damped rule (production default), the literal Fig. 7 rule, and AH
// disabled (IH-only allocation refreshed at Tl).
func AblationAH(set Settings) (*report.Figure, error) {
	fig, err := variantFigure("abl-ah", "AH variants in NET1 (MP-TL-10-TS-2)", topoNET1, []variant{
		{label: "AH-damped", mode: router.ModeMP, mutate: func(c *router.Config) { c.AHDamping = 0.5 }},
		{label: "AH-literal", mode: router.ModeMP, mutate: func(c *router.Config) { c.AHDamping = -1 }},
		{label: "AH-off", mode: router.ModeMP, mutate: func(c *router.Config) { c.AHDamping = 1e-12 }},
	}, set)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"the literal rule fully drains the binding donor each Ts and oscillates; damped AH converges",
		"AH-off leaves IH's initial split in place between route updates")
	return fig, nil
}

// AblationBaselines compares the full baseline spectrum on NET1: OPT,
// MP, OSPF-style equal-cost multipath, and single-path.
func AblationBaselines(set Settings) (*report.Figure, error) {
	fig, err := compare("abl-base", "Baseline spectrum in NET1", topoNET1, true, 0,
		[]scheme{mp(10, 2)}, set, nil)
	if err != nil {
		return nil, err
	}
	for _, v := range []variant{
		{label: "ECMP-TL-10", mode: router.ModeECMP},
		{label: "SP-TL-10", mode: router.ModeSP},
	} {
		delays, err := runVariant(topoNET1, v, set, 1)
		if err != nil {
			return nil, err
		}
		fig.Columns = append(fig.Columns, v.label)
		for r := range fig.Data {
			fig.Data[r] = append(fig.Data[r], delays[r])
		}
	}
	fig.Notes = append(fig.Notes,
		"ECMP splits only over equal-cost paths (OSPF); unequal-cost multipath (MP) does strictly better")
	return fig, nil
}

// AblationEstimator compares the closed-form M/M/1 marginal against the
// online (PA-role) estimator on NET1.
func AblationEstimator(set Settings) (*report.Figure, error) {
	fig, err := variantFigure("abl-est", "Marginal-delay estimator in NET1 (MP-TL-10-TS-2)", topoNET1, []variant{
		{label: "MM1-closed", mode: router.ModeMP},
		{label: "PA-online", mode: router.ModeMP, mutate: func(c *router.Config) { c.UseOnlineEstimator = true }},
	}, set)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: convergence does not depend on the estimation technique; the online estimator needs no capacity knowledge")
	return fig, nil
}

// LoadSweep measures MP and SP mean delays on NET1 across offered-load
// scales. Rows are scales instead of flows. The paper's qualitative claim:
// at light load MP offers no advantage; the gap opens as load grows.
func LoadSweep(set Settings) (*report.Figure, error) {
	fig := &report.Figure{
		ID:      "loadsweep",
		Title:   "MP vs SP vs load scale in NET1 (mean over flows, ms)",
		Columns: []string{"MP-TL-10-TS-2", "SP-TL-10"},
	}
	for _, scale := range []float64{0.3, 0.6, 0.9, 1.0, 1.1} {
		row := make([]float64, 0, 2)
		for _, v := range []variant{
			{label: "MP", mode: router.ModeMP},
			{label: "SP", mode: router.ModeSP},
		} {
			delays, err := runVariant(topoNET1, v, set, scale)
			if err != nil {
				return nil, err
			}
			row = append(row, mean(delays))
		}
		fig.AddRow(fmt.Sprintf("load x%.1f", scale), row...)
	}
	fig.Notes = append(fig.Notes,
		"paper: \"When connectivity is low or network load is light, MP routing cannot offer any advantage over SP\"")
	return fig, nil
}

// mean averages a slice (NaN-free by construction here).
func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

func init() {
	// An ordered slice, not a map literal: registration order defines IDs,
	// and iterating a map here would register figures in a different order
	// every run.
	for _, g := range []struct {
		id  string
		gen func(Settings) (*report.Figure, error)
	}{
		{"abl-ah", AblationAH},
		{"abl-base", AblationBaselines},
		{"abl-est", AblationEstimator},
		{"abl-adapt", AblationAdaptive},
		{"loadsweep", LoadSweep},
	} {
		All[g.id] = g.gen
		IDs = append(IDs, g.id)
	}
}

// AblationAdaptive compares static against adaptive Ts/Tl timers under
// bursty traffic — the paper: "Tl and Ts need not be static constants and
// can be made to vary according to congestion at the router".
func AblationAdaptive(set Settings) (*report.Figure, error) {
	fig := &report.Figure{ID: "abl-adapt", Title: "Static vs adaptive timers in NET1 (bursty sources)"}
	variants := []variant{
		{label: "MP-static", mode: router.ModeMP},
		{label: "MP-adaptive", mode: router.ModeMP, mutate: func(c *router.Config) { c.AdaptiveTimers = true }},
	}
	cols := make([][]float64, len(variants))
	g := simpool.Coordinator()
	for i, v := range variants {
		i, v := i, v
		g.Go(func() error {
			delays, err := runSeeds(set, func(run Settings) ([]float64, error) {
				opt := core.DefaultOptions()
				opt.Router.Mode = v.mode
				opt.Seed = run.Seed
				opt.Warmup = run.Warmup
				opt.Duration = run.Duration
				opt.Source = burstySource
				if v.mutate != nil {
					v.mutate(&opt.Router)
				}
				n := core.Build(topoNET1(), opt)
				rep := n.Run()
				if err := n.CheckLoopFree(); err != nil {
					return nil, fmt.Errorf("experiments: %s: %w", v.label, err)
				}
				return rep.MeanDelayMs, nil
			})
			cols[i] = delays
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for _, v := range variants {
		fig.Columns = append(fig.Columns, v.label)
	}
	net := topoNET1()
	for x, f := range net.Flows {
		fig.AddRow(fmt.Sprintf("%d:%s", x, f.Name), cols[0][x], cols[1][x])
	}
	fig.Notes = append(fig.Notes,
		"paper: Ts/Tl can vary with congestion; adaptive timers react faster to bursts and relax when quiet")
	return fig, nil
}
