package experiments

import (
	"testing"

	"minroute/internal/chaos"
)

// TestChaosScenariosRunClean executes every registry scenario through both
// runners; each must validate, cover its oracles, and report no violations.
func TestChaosScenariosRunClean(t *testing.T) {
	kinds := make(map[chaos.Kind]bool)
	for _, name := range ChaosNames() {
		s, err := ChaosScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, a := range s.Actions {
			kinds[a.Kind] = true
		}
		for runner, fn := range map[string]func(*chaos.Scenario) (*chaos.Result, error){
			"proto": chaos.RunProto, "des": chaos.RunDES,
		} {
			res, err := fn(s)
			if err != nil {
				t.Fatalf("%s (%s): %v", name, runner, err)
			}
			if res.Failed() {
				t.Fatalf("%s (%s): %v", name, runner, res.Log.Violations)
			}
		}
	}
	for _, k := range []chaos.Kind{chaos.KindFail, chaos.KindRestore, chaos.KindCost,
		chaos.KindCrash, chaos.KindRestart, chaos.KindPerturb} {
		if !kinds[k] {
			t.Errorf("no registry scenario exercises %q", k)
		}
	}
}

func TestChaosScenarioUnknownName(t *testing.T) {
	if _, err := ChaosScenario("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}
