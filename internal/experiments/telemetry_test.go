package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"minroute/internal/simpool"
)

// telemetryDirHash runs fig14 under set with telemetry export into a fresh
// directory and digests every artifact (name plus content, in sorted name
// order) into one hash.
func telemetryDirHash(t *testing.T, workers int, set Settings) string {
	t.Helper()
	simpool.SetWorkers(workers)
	dir := t.TempDir()
	set.TelemetryDir = dir
	if _, err := Fig14(set); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("telemetry export produced no artifacts")
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(filepath.Base(name)))
		h.Write([]byte{0})
		h.Write(data)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestTelemetryDeterministicAcrossWorkers is the acceptance check for the
// telemetry layer's determinism contract: the full set of exported
// artifacts — JSONL event logs, Chrome traces, and metrics snapshots for
// every scheme and seed of fig14 — must be byte-identical whether the
// simulations run serially or fan out across eight workers. Telemetry is
// strictly per-simulation state merged by (sim time, sequence), so worker
// scheduling must not be observable.
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	oldWorkers := simpool.Workers()
	defer simpool.SetWorkers(oldWorkers)

	base := telemetryDirHash(t, 1, detSettings)
	if got := telemetryDirHash(t, 8, detSettings); got != base {
		t.Errorf("workers=8 artifact hash %s differs from workers=1 baseline %s", got, base)
	}
}

// TestTelemetryArtifactNames pins the export naming scheme: figure ID,
// scheme label, and seed, with the three per-run artifact suffixes.
func TestTelemetryArtifactNames(t *testing.T) {
	dir := t.TempDir()
	set := detSettings
	set.Runs = 1
	set.TelemetryDir = dir
	if _, err := Fig14(set); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fig14_MP-TL-10-TS-2_s1.events.jsonl",
		"fig14_MP-TL-10-TS-2_s1.trace.json",
		"fig14_MP-TL-10-TS-2_s1.metrics.txt",
		"fig14_SP-TL-10_s1.events.jsonl",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			names, _ := filepath.Glob(filepath.Join(dir, "*"))
			t.Fatalf("missing artifact %s (have: %s)", want, strings.Join(names, ", "))
		}
	}
}
