package experiments

import "testing"

func TestFailoverShape(t *testing.T) {
	fig, err := Failover(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: baseline, failed, recovered. Columns: MP, SP.
	baseMP, baseSP := fig.Data[0][0], fig.Data[0][1]
	failMP, failSP := fig.Data[1][0], fig.Data[1][1]
	recMP := fig.Data[2][0]
	if !(baseMP < baseSP) {
		t.Fatalf("baseline: MP %v not better than SP %v", baseMP, baseSP)
	}
	if !(failMP < failSP) {
		t.Fatalf("during failure: MP %v not better than SP %v", failMP, failSP)
	}
	// Failure costs capacity; MP delay rises but stays sane, and recovery
	// restores roughly the baseline.
	if failMP < baseMP*0.5 {
		t.Fatalf("failure implausibly improved MP: %v -> %v", baseMP, failMP)
	}
	if recMP > baseMP*3 {
		t.Fatalf("recovery did not restore MP: baseline %v, recovered %v", baseMP, recMP)
	}
}
