package experiments

import (
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/topo"
)

// CustomComparison runs the full scheme spectrum — Gallager's OPT, MP, SP
// and ECMP — on a user-supplied network (e.g. one loaded with topo.Parse)
// under identical traffic and seeds, returning the per-flow delay figure.
// This is what `mdrsim -scenario x.txt -compare` prints.
func CustomComparison(net *topo.Network, set Settings) (*report.Figure, error) {
	build := func() *topo.Network { return net }
	fig, err := compare("custom", "Scheme comparison on custom network", build, true, 0,
		[]scheme{mp(10, 2), sp(10)}, set, nil)
	if err != nil {
		return nil, err
	}
	ecmp, err := runVariant(build, variant{label: "ECMP-TL-10", mode: router.ModeECMP}, set, 1)
	if err != nil {
		return nil, err
	}
	fig.Columns = append(fig.Columns, "ECMP-TL-10")
	for r := range fig.Data {
		fig.Data[r] = append(fig.Data[r], ecmp[r])
	}
	return fig, nil
}
