package experiments

import (
	"math"
	"testing"
)

// The tests below assert the *shape* of each figure — who wins and by
// roughly what factor — which is what the reproduction must preserve.
// Quick settings are used; Full sharpens the numbers but not the ordering.

func TestFig9ShapeMPTracksOPT(t *testing.T) {
	if testing.Short() {
		t.Skip("CAIRN figure is slow")
	}
	fig, err := Fig9(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Columns) != 3 || fig.Columns[1] != "OPT+5%" {
		t.Fatalf("columns = %v", fig.Columns)
	}
	opt, mp := fig.ColumnMean(0), fig.ColumnMean(2)
	if !(mp >= opt*0.95) {
		t.Fatalf("MP mean %v below OPT mean %v: measurement suspect", mp, opt)
	}
	// Paper: within a small percentage. Allow slack at Quick settings.
	if mp > opt*1.35 {
		t.Fatalf("MP mean %v not comparable to OPT mean %v", mp, opt)
	}
}

func TestFig10ShapeMPTracksOPT(t *testing.T) {
	fig, err := Fig10(Quick)
	if err != nil {
		t.Fatal(err)
	}
	opt, mp := fig.ColumnMean(0), fig.ColumnMean(2)
	if mp > opt*1.35 {
		t.Fatalf("NET1 MP mean %v not comparable to OPT mean %v", mp, opt)
	}
}

func TestFig11ShapeSPWorseThanMP(t *testing.T) {
	if testing.Short() {
		t.Skip("CAIRN figure is slow")
	}
	set := Quick
	set.Runs = 2 // SP is bimodal per seed in the loaded regime; average
	fig, err := Fig11(set)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: OPT, MP-TL-10-TS-10, MP-TL-10-TS-2, SP-TL-10.
	mp2, sp := fig.ColumnMean(2), fig.ColumnMean(3)
	if !(sp > mp2*1.3) {
		t.Fatalf("SP mean %v not clearly worse than MP mean %v", sp, mp2)
	}
	// Paper: SP is 2-4x MP on some flows.
	if r := fig.MaxRatio(3, 2); r < 1.5 {
		t.Fatalf("max per-flow SP/MP ratio %v too small", r)
	}
}

func TestFig12ShapeSPMuchWorseOnNET1(t *testing.T) {
	fig, err := Fig12(Quick)
	if err != nil {
		t.Fatal(err)
	}
	mp2, sp := fig.ColumnMean(2), fig.ColumnMean(3)
	if !(sp > mp2*2) {
		t.Fatalf("NET1 SP mean %v not >> MP mean %v", sp, mp2)
	}
	// Higher connectivity -> bigger MP advantage than CAIRN (paper: 5-6x).
	if r := fig.MaxRatio(3, 2); r < 3 {
		t.Fatalf("max per-flow SP/MP ratio %v below the paper's regime", r)
	}
}

func TestFig13ShapeTlSensitivityCAIRN(t *testing.T) {
	if testing.Short() {
		t.Skip("CAIRN figure is slow")
	}
	fig, err := Fig13(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: MP-TL-10, MP-TL-20, SP-TL-10, SP-TL-20.
	mp10, mp20 := fig.ColumnMean(0), fig.ColumnMean(1)
	sp10, sp20 := fig.ColumnMean(2), fig.ColumnMean(3)
	if !(sp20 > sp10*1.1) {
		t.Fatalf("SP not hurt by longer Tl: %v -> %v", sp10, sp20)
	}
	if relChange(mp10, mp20) > 0.5 {
		t.Fatalf("MP too sensitive to Tl: %v -> %v", mp10, mp20)
	}
	if !(mp10 < sp10 && mp20 < sp20) {
		t.Fatalf("MP not better than SP at both Tl: mp=%v,%v sp=%v,%v", mp10, mp20, sp10, sp20)
	}
}

func TestFig14ShapeTlSensitivityNET1(t *testing.T) {
	fig, err := Fig14(Quick)
	if err != nil {
		t.Fatal(err)
	}
	mp10, mp20 := fig.ColumnMean(0), fig.ColumnMean(1)
	sp10, sp20 := fig.ColumnMean(2), fig.ColumnMean(3)
	if relChange(mp10, mp20) > 0.5 {
		t.Fatalf("MP too sensitive to Tl: %v -> %v", mp10, mp20)
	}
	if !(mp10 < sp10 && mp20 < sp20) {
		t.Fatalf("MP not better than SP at both Tl: mp=%v,%v sp=%v,%v", mp10, mp20, sp10, sp20)
	}
}

func TestFig15ShapeDynamicCAIRN(t *testing.T) {
	if testing.Short() {
		t.Skip("CAIRN figure is slow")
	}
	fig, err := Fig15(Quick)
	if err != nil {
		t.Fatal(err)
	}
	mp, sp := fig.ColumnMean(0), fig.ColumnMean(1)
	if !(mp < sp) {
		t.Fatalf("MP %v not better than SP %v under bursty traffic", mp, sp)
	}
}

func TestFig16ShapeDynamicNET1(t *testing.T) {
	fig, err := Fig16(Quick)
	if err != nil {
		t.Fatal(err)
	}
	mp, sp := fig.ColumnMean(0), fig.ColumnMean(1)
	if !(mp < sp) {
		t.Fatalf("MP %v not better than SP %v under bursty traffic", mp, sp)
	}
}

func TestAllRegistryComplete(t *testing.T) {
	if len(All) != len(IDs) {
		t.Fatalf("registry has %d entries, IDs %d", len(All), len(IDs))
	}
	for _, id := range IDs {
		if All[id] == nil {
			t.Fatalf("missing generator for %s", id)
		}
	}
}

func relChange(a, b float64) float64 {
	if a == 0 {
		return math.Inf(1)
	}
	return math.Abs(b-a) / a
}
