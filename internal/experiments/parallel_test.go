package experiments

import (
	"testing"

	"minroute/internal/simpool"
)

// detSettings is deliberately short: determinism does not need steady state,
// only identical seeds, and the figure is regenerated four times below.
var detSettings = Settings{Warmup: 10, Duration: 5, Seed: 1, Runs: 2}

// TestParallelMatchesSerial asserts the tentpole's core guarantee: the
// parallel runner produces byte-identical figure tables to the serial path
// for identical seeds. Fig14 exercises scheme-level fan-out (4 schemes × 2
// seeds = 8 concurrent simulations); Fig10 adds the OPT/static path.
func TestParallelMatchesSerial(t *testing.T) {
	old := simpool.Workers()
	defer simpool.SetWorkers(old)

	for _, id := range []string{"fig14", "fig10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			gen := All[id]
			simpool.SetWorkers(1)
			serial, err := gen(detSettings)
			if err != nil {
				t.Fatal(err)
			}
			simpool.SetWorkers(8)
			parallel, err := gen(detSettings)
			if err != nil {
				t.Fatal(err)
			}
			if s, p := serial.CSV(), parallel.CSV(); s != p {
				t.Fatalf("parallel figure differs from serial:\n--- workers=1\n%s\n--- workers=8\n%s", s, p)
			}
			if s, p := serial.Table(), parallel.Table(); s != p {
				t.Fatalf("parallel table differs from serial:\n--- workers=1\n%s\n--- workers=8\n%s", s, p)
			}
		})
	}
}

// TestParallelRepeatable asserts that two parallel regenerations of the
// same figure agree with each other (no hidden shared state between the
// concurrently running simulations).
func TestParallelRepeatable(t *testing.T) {
	old := simpool.Workers()
	defer simpool.SetWorkers(old)
	simpool.SetWorkers(6)

	a, err := Fig16(detSettings)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig16(detSettings)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Fatalf("two parallel runs differ:\n--- run A\n%s\n--- run B\n%s", a.CSV(), b.CSV())
	}
}
