package experiments

import (
	"fmt"
	"sort"

	"minroute/internal/chaos"
	"minroute/internal/graph"
)

// ChaosScenarios is the registry of named chaos schedules runnable with
// `mdrsim -chaos <name>`: curated faults on the paper's topologies, each
// executed under the full oracle suite. They double as smoke coverage for
// the chaos harness itself — every action kind appears in at least one.
var ChaosScenarios = map[string]func() *chaos.Scenario{
	"link-flap": func() *chaos.Scenario {
		return &chaos.Scenario{
			Name: "link-flap", Topo: chaos.TopoNET1, Seed: 11, Duration: 8,
			Actions: []chaos.Action{
				{Kind: chaos.KindFail, Steps: 120, At: 1, A: 0, B: 1},
				{Kind: chaos.KindRestore, Steps: 150, At: 2.5, A: 0, B: 1},
				{Kind: chaos.KindFail, Steps: 80, At: 4, A: 0, B: 1},
				{Kind: chaos.KindRestore, Steps: 120, At: 5.5, A: 0, B: 1},
			},
		}
	},
	"congestion-spike": func() *chaos.Scenario {
		return &chaos.Scenario{
			Name: "congestion-spike", Topo: chaos.TopoCAIRN, Seed: 12, Duration: 8,
			Actions: []chaos.Action{
				{Kind: chaos.KindCost, Steps: 200, At: 2, A: 0, B: 6, Factor: 8},
				{Kind: chaos.KindCost, Steps: 200, At: 4, A: 0, B: 6, Factor: 1},
			},
		}
	},
	"crash-restart": func() *chaos.Scenario {
		return &chaos.Scenario{
			Name: "crash-restart", Topo: chaos.TopoNET1, Seed: 13, Duration: 9,
			Actions: []chaos.Action{
				{Kind: chaos.KindCrash, Steps: 150, At: 2, Node: 4},
				{Kind: chaos.KindRestart, Steps: 300, At: 5, Node: 4},
			},
		}
	},
	"partition-heal": func() *chaos.Scenario {
		s := &chaos.Scenario{
			Name: "partition-heal", Topo: chaos.TopoRing, TopoN: 8, Seed: 14, Duration: 9, Flows: 4,
		}
		net, err := s.Network()
		if err != nil {
			panic("experiments: partition-heal topology: " + err.Error())
		}
		members := map[graph.NodeID]bool{0: true, 1: true, 2: true, 3: true}
		cut := chaos.Partition(net.Graph, members, 150, 2)
		s.Actions = append(s.Actions, cut...)
		for _, a := range cut {
			s.Actions = append(s.Actions, chaos.Action{
				Kind: chaos.KindRestore, Steps: 200, At: 5, A: a.A, B: a.B,
			})
		}
		return s
	},
	"lossy-control": func() *chaos.Scenario {
		return &chaos.Scenario{
			Name: "lossy-control", Topo: chaos.TopoNET1, Seed: 15, Duration: 8,
			Actions: []chaos.Action{
				{Kind: chaos.KindPerturb, Steps: 50, At: 0.5, Loss: 0.3, Dup: 0.15},
				{Kind: chaos.KindFail, Steps: 120, At: 2, A: 4, B: 5},
				{Kind: chaos.KindRestore, Steps: 200, At: 4, A: 4, B: 5},
				{Kind: chaos.KindPerturb, Steps: 50, At: 6},
			},
		}
	},
}

// ChaosNames lists the registry in stable order.
func ChaosNames() []string {
	names := make([]string, 0, len(ChaosScenarios))
	//lint:maporder-ok keys are sorted before use
	for name := range ChaosScenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ChaosScenario resolves a registry name.
func ChaosScenario(name string) (*chaos.Scenario, error) {
	mk, ok := ChaosScenarios[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown chaos scenario %q (have %v)", name, ChaosNames())
	}
	return mk(), nil
}
