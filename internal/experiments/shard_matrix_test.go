package experiments

import (
	"runtime"
	"testing"

	"minroute/internal/leaktest"
	"minroute/internal/simpool"
	"minroute/internal/telemetry"
)

// TestShardDeterminismMatrix is the acceptance test for sharded single-sim
// execution: the fig14 figure AND its full telemetry artifact set (JSONL
// event logs, Chrome traces, metrics snapshots for every scheme and seed)
// must be byte-identical at -shards 1, 2, 3, and 8, under both a serialized
// scheduler and a wide one, against the serial (Shards=0, no coordinator)
// golden. Ring capacity is raised so no ring ever overflows: which events a
// full ring drops is the one thing that legitimately depends on how
// emissions split across shard tracers.
func TestShardDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix runs fig14 nine times")
	}
	leaktest.Check(t)
	oldWorkers := simpool.Workers()
	defer simpool.SetWorkers(oldWorkers)
	oldProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(oldProcs)

	set := detSettings
	set.TelemetryRingCap = 1 << 16

	runtime.GOMAXPROCS(oldProcs)
	goldenFig := figureHash(t, "fig14", set)
	goldenDir := telemetryDirHash(t, 0, set)

	for _, procs := range []int{1, 16} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 2, 3, 8} {
			s := set
			s.Shards = shards
			simpool.SetWorkers(0)
			if got := figureHash(t, "fig14", s); got != goldenFig {
				t.Errorf("shards=%d procs=%d: figure hash %s != serial golden %s", shards, procs, got, goldenFig)
			}
			if got := telemetryDirHash(t, 0, s); got != goldenDir {
				t.Errorf("shards=%d procs=%d: artifact hash %s != serial golden %s", shards, procs, got, goldenDir)
			}
		}
	}
}

// TestShardedRingCapPlumbing pins that the ring-capacity override reaches
// the capture: a tiny cap must drop events on a quick run.
func TestShardedRingCapPlumbing(t *testing.T) {
	cap := telemetry.NewCaptureSized(4, 8, telemetry.DefaultBucketWidth)
	for i := 0; i < 100; i++ {
		cap.Trace.Emit(telemetry.NewEvent(float64(i), telemetry.KindTableCommit, 1))
	}
	if cap.Trace.Dropped() == 0 {
		t.Fatal("ring cap 8 dropped nothing after 100 emissions")
	}
}
