package experiments

import (
	"fmt"

	"minroute/internal/core"
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/simpool"
	"minroute/internal/topo"
)

// Jitter compares delay variability between MP and SP on NET1 — the paper
// observes that "because of load-balancing used in MP, the plots of MP are
// less jagged than those of SP". Columns report each flow's delay standard
// deviation in milliseconds.
func Jitter(set Settings) (*report.Figure, error) {
	fig := &report.Figure{
		ID:      "jitter",
		Title:   "Per-flow delay standard deviation in NET1 (ms)",
		Columns: []string{"MP-TL-10-TS-2", "SP-TL-10"},
	}
	modes := []router.Mode{router.ModeMP, router.ModeSP}
	cols := make([][]float64, len(modes))
	g := simpool.Coordinator()
	for i, mode := range modes {
		i, mode := i, mode
		g.Go(func() error {
			delays, err := runSeeds(set, func(run Settings) ([]float64, error) {
				opt := core.DefaultOptions()
				opt.Router.Mode = mode
				opt.Seed = run.Seed
				opt.Warmup = run.Warmup
				opt.Duration = run.Duration
				if mode == router.ModeSP {
					opt.Router.Ts = opt.Router.Tl
					opt.Router.CostMeasureWindow = 5
				}
				n := core.Build(topo.NET1(), opt)
				rep := n.Run()
				if err := n.CheckLoopFree(); err != nil {
					return nil, fmt.Errorf("experiments: jitter: %w", err)
				}
				return rep.StdDevMs, nil
			})
			cols[i] = delays
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	net := topo.NET1()
	for x, f := range net.Flows {
		fig.AddRow(fmt.Sprintf("%d:%s", x, f.Name), cols[0][x], cols[1][x])
	}
	fig.Notes = append(fig.Notes,
		"paper: \"because of load-balancing used in MP, the plots of MP are less jagged than those of SP\"")
	return fig, nil
}

func init() {
	All["jitter"] = Jitter
	IDs = append(IDs, "jitter")
}
