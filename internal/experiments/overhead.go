package experiments

import (
	"fmt"

	"minroute/internal/core"
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/simpool"
	"minroute/internal/topo"
)

// Overhead quantifies the control-bandwidth trade-off of Section 5.2: "Tl
// can be made longer in MP without significantly affecting performance.
// This is significant, because sending frequent update messages consumes
// bandwidth and can also cause oscillations under high loads." Rows are Tl
// values; columns report MP's mean delay alongside the LSU message rate
// and control bandwidth it cost.
func Overhead(set Settings) (*report.Figure, error) {
	fig := &report.Figure{
		ID:      "overhead",
		Title:   "MP delay vs control overhead across Tl in NET1",
		Columns: []string{"MP delay (ms)", "LSU msgs/s", "control kb/s"},
	}
	tls := []float64{5, 10, 20, 40}
	rows := make([][]float64, len(tls))
	g := simpool.Coordinator()
	for i, tl := range tls {
		i, tl := i, tl
		g.Go(func() error {
			// Each run reports [delay ms, LSU msgs/s, control kb/s]; runSeeds
			// averages the triple across seeds like any per-flow column.
			row, err := runSeeds(set, func(run Settings) ([]float64, error) {
				opt := core.DefaultOptions()
				opt.Router.Mode = router.ModeMP
				opt.Router.Tl = tl
				opt.Seed = run.Seed
				opt.Warmup = run.Warmup
				opt.Duration = run.Duration
				n := core.Build(topo.NET1(), opt)
				// Count control traffic over the measurement period only.
				n.Start()
				n.Eng.Run(run.Warmup)
				m0, b0 := n.ControlMessages(), n.ControlBits()
				rep := n.Run() // continues from warmup; stats already reset inside
				if err := n.CheckLoopFree(); err != nil {
					return nil, fmt.Errorf("experiments: overhead: %w", err)
				}
				return []float64{
					rep.AvgMeanDelayMs(),
					float64(n.ControlMessages()-m0) / run.Duration,
					(n.ControlBits() - b0) / run.Duration / 1e3,
				}, nil
			})
			rows[i] = row
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for i, tl := range tls {
		fig.AddRow(fmt.Sprintf("Tl=%.0fs", tl), rows[i]...)
	}
	fig.Notes = append(fig.Notes,
		"paper: Tl can be made longer in MP without significantly affecting performance, saving update bandwidth")
	return fig, nil
}

func init() {
	All["overhead"] = Overhead
	IDs = append(IDs, "overhead")
}
