package experiments

import (
	"fmt"

	"minroute/internal/core"
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/topo"
)

// Overhead quantifies the control-bandwidth trade-off of Section 5.2: "Tl
// can be made longer in MP without significantly affecting performance.
// This is significant, because sending frequent update messages consumes
// bandwidth and can also cause oscillations under high loads." Rows are Tl
// values; columns report MP's mean delay alongside the LSU message rate
// and control bandwidth it cost.
func Overhead(set Settings) (*report.Figure, error) {
	fig := &report.Figure{
		ID:      "overhead",
		Title:   "MP delay vs control overhead across Tl in NET1",
		Columns: []string{"MP delay (ms)", "LSU msgs/s", "control kb/s"},
	}
	for _, tl := range []float64{5, 10, 20, 40} {
		var delay, msgs, kbps float64
		for r := 0; r < set.runs(); r++ {
			net := topo.NET1()
			opt := core.DefaultOptions()
			opt.Router.Mode = router.ModeMP
			opt.Router.Tl = tl
			opt.Seed = set.Seed + uint64(r)*1000
			opt.Warmup = set.Warmup
			opt.Duration = set.Duration
			n := core.Build(net, opt)
			// Count control traffic over the measurement period only.
			n.Start()
			n.Eng.Run(set.Warmup)
			m0, b0 := n.ControlMessages, n.ControlBits
			rep := n.Run() // continues from warmup; stats already reset inside
			if err := n.CheckLoopFree(); err != nil {
				return nil, fmt.Errorf("experiments: overhead: %w", err)
			}
			delay += rep.AvgMeanDelayMs()
			msgs += float64(n.ControlMessages-m0) / set.Duration
			kbps += (n.ControlBits - b0) / set.Duration / 1e3
		}
		r := float64(set.runs())
		fig.AddRow(fmt.Sprintf("Tl=%.0fs", tl), delay/r, msgs/r, kbps/r)
	}
	fig.Notes = append(fig.Notes,
		"paper: Tl can be made longer in MP without significantly affecting performance, saving update bandwidth")
	return fig, nil
}

func init() {
	All["overhead"] = Overhead
	IDs = append(IDs, "overhead")
}
