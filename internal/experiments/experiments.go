// Package experiments regenerates every figure of the paper's evaluation
// (Section 5) plus the reconstructed dynamic-traffic experiments. Each
// FigN function runs the schemes it compares — OPT (Gallager), MP (the
// paper's framework at the stated Tl/Ts), and SP (single-path) — under
// identical topology, traffic, and seed, and returns a report.Figure whose
// rows are flow IDs and whose columns are the schemes, exactly as the
// paper plots them.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results and shape comparisons against the paper.
package experiments

import (
	"fmt"

	"minroute/internal/core"
	"minroute/internal/gallager"
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/simpool"
	"minroute/internal/telemetry"
	"minroute/internal/topo"
	"minroute/internal/traffic"
)

// Settings scales the simulations. Full reproduces the paper-quality run;
// Quick is used by unit tests and CI-grade benchmarks.
type Settings struct {
	Warmup   float64
	Duration float64
	Seed     uint64
	// Runs averages each scheme over this many independent seeds
	// (Seed, Seed+1000, ...). Zero means one run. Single-path routing with
	// a delay metric is chaotic in the loaded regime, so the Tl-sweep
	// figures in particular benefit from averaging.
	Runs int
	// TelemetryDir, when non-empty, exports each simulation's telemetry
	// artifacts (JSONL event log, Chrome trace, metrics snapshot) into this
	// directory under the prefix <figid>_<label>_s<seed>. Every artifact is
	// a deterministic function of the simulation, so the set of files is
	// byte-identical at any simpool worker count.
	TelemetryDir string
	// Shards partitions every simulation across this many event-engine
	// shards (core.Options.Shards); zero or one runs serially. Figures and
	// telemetry artifacts are byte-identical at any shard count — the
	// determinism matrix pins that.
	Shards int
	// TelemetryRingCap overrides the per-router telemetry ring capacity
	// (<= 0 selects telemetry.DefaultRingCap). The shard determinism matrix
	// raises it: which events a full ring drops depends on how emissions
	// split across shard tracers, so byte-equality across shard counts
	// requires rings that never overflow.
	TelemetryRingCap int
	// figID labels telemetry prefixes; compare() installs the figure ID.
	figID string
}

// newCapture returns a telemetry capture for one simulation, or nil when
// telemetry export is disabled.
func (s Settings) newCapture(tn *topo.Network) *telemetry.Capture {
	if s.TelemetryDir == "" {
		return nil
	}
	return telemetry.NewCaptureSized(tn.Graph.NumNodes(), s.TelemetryRingCap, telemetry.DefaultBucketWidth)
}

// exportTelemetry writes the run's artifacts under TelemetryDir. A nil
// capture (telemetry disabled) is a no-op inside core.
func (s Settings) exportTelemetry(n *core.Network, label string) error {
	if s.TelemetryDir == "" {
		return nil
	}
	return n.ExportTelemetry(s.TelemetryDir, fmt.Sprintf("%s_%s_s%d", s.figID, label, s.Seed))
}

func (s Settings) runs() int {
	if s.Runs < 1 {
		return 1
	}
	return s.Runs
}

// Full is the paper-quality setting: the warmup spans several long-term
// (Tl) update periods so every scheme is measured at steady state, and
// every scheme is averaged over three seeds.
var Full = Settings{Warmup: 80, Duration: 60, Seed: 1, Runs: 3}

// Quick is a fast setting for tests and CI-grade benchmarks. It still
// allows ~4 Tl rounds of settling at Tl=10.
var Quick = Settings{Warmup: 40, Duration: 20, Seed: 1}

// scheme describes one simulated routing configuration.
type scheme struct {
	label string
	mode  router.Mode
	tl    float64
	ts    float64
}

func (s scheme) options(set Settings, src func(f topo.Flow) traffic.Source) core.Options {
	opt := core.DefaultOptions()
	opt.Router.Mode = s.mode
	opt.Router.Tl = s.tl
	opt.Router.Ts = s.ts
	if s.mode == router.ModeSP || s.mode == router.ModeECMP {
		// SP measures link delay over a fixed 5 s window regardless of the
		// update period, ARPANET-style, so Tl sweeps vary staleness only
		// (see DESIGN.md deviation 6). MP keeps the paper's Tl-window costs.
		opt.Router.CostMeasureWindow = 5
	}
	opt.Seed = set.Seed
	opt.Warmup = set.Warmup
	opt.Duration = set.Duration
	opt.Source = src
	opt.Shards = set.Shards
	return opt
}

// runScheme simulates one scheme on fresh copies of the network, once per
// seed, and returns the per-flow mean delays averaged across runs. The
// per-seed simulations run concurrently on the simpool worker pool; each
// simulation stays single-threaded and seeded exactly as in the serial
// harness, and the results are reduced in seed order, so the figure is
// bit-identical regardless of the worker count.
func runScheme(build func() *topo.Network, s scheme, set Settings, src func(f topo.Flow) traffic.Source) ([]float64, error) {
	if s.mode == router.ModeStatic {
		return nil, fmt.Errorf("experiments: static scheme must use runOPT")
	}
	return runSeeds(set, func(run Settings) ([]float64, error) {
		tn := build()
		opt := s.options(run, src)
		opt.Telemetry = run.newCapture(tn)
		n := core.Build(tn, opt)
		rep := n.Run()
		if err := n.CheckLoopFree(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.label, err)
		}
		if err := run.exportTelemetry(n, s.label); err != nil {
			return nil, fmt.Errorf("experiments: %s: telemetry export: %w", s.label, err)
		}
		return rep.MeanDelayMs, nil
	})
}

// runSeeds fans one simulation per seed out onto the worker pool and
// averages the per-flow results in seed order. sim receives the Settings
// with its run's seed already installed.
func runSeeds(set Settings, sim func(run Settings) ([]float64, error)) ([]float64, error) {
	runs := set.runs()
	results := make([][]float64, runs)
	g := simpool.NewGroup()
	for r := 0; r < runs; r++ {
		r := r
		g.Go(func() error {
			run := set
			run.Seed = set.Seed + uint64(r)*1000
			delays, err := sim(run)
			if err != nil {
				return err
			}
			results[r] = delays
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	var acc []float64
	for _, res := range results {
		acc = accumulate(acc, res)
	}
	return scaleSlice(acc, 1/float64(runs)), nil
}

// accumulate adds b into a element-wise, allocating on first use.
func accumulate(a, b []float64) []float64 {
	if a == nil {
		a = make([]float64, len(b))
	}
	for i := range b {
		a[i] += b[i]
	}
	return a
}

func scaleSlice(a []float64, f float64) []float64 {
	for i := range a {
		a[i] *= f
	}
	return a
}

// runOPT solves Gallager's minimum-delay routing on the fluid model (once)
// and measures its converged routing parameters inside the same packet
// simulator used for MP and SP — once per seed — so all schemes are
// observed identically.
func runOPT(build func() *topo.Network, set Settings, src func(f topo.Flow) traffic.Source) ([]float64, error) {
	solveNet := build()
	sol, err := gallager.Solve(solveNet.Graph, solveNet.Flows, gallager.Options{MeanPacketBits: 8000})
	if err != nil {
		return nil, fmt.Errorf("experiments: OPT solve: %w", err)
	}
	s := scheme{label: "OPT", mode: router.ModeStatic, tl: 0, ts: 0}
	return runSeeds(set, func(run Settings) ([]float64, error) {
		tn := build()
		opt := s.options(run, src)
		opt.Telemetry = run.newCapture(tn)
		n := core.Build(tn, opt)
		n.InstallStatic(sol.Phi)
		rep := n.Run()
		if err := run.exportTelemetry(n, s.label); err != nil {
			return nil, fmt.Errorf("experiments: OPT telemetry export: %w", err)
		}
		return rep.MeanDelayMs, nil
	})
}

// compare runs OPT (optionally) plus the listed schemes and assembles the
// figure, adding envelope columns where the paper plots them. Every scheme
// is a coordinator task fanning its seeds onto the worker pool, so all of a
// figure's simulations share one bounded pool; the figure itself is
// assembled in scheme order from indexed slots and is byte-identical to the
// serial harness's output.
func compare(id, title string, build func() *topo.Network, withOPT bool, envelope float64,
	schemes []scheme, set Settings, src func(f topo.Flow) traffic.Source) (*report.Figure, error) {

	set.figID = id
	fig := &report.Figure{ID: id, Title: title}
	optCols := 0
	if withOPT {
		optCols = 1
	}
	results := make([][]float64, optCols+len(schemes))
	g := simpool.Coordinator()
	if withOPT {
		g.Go(func() error {
			delays, err := runOPT(build, set, src)
			results[0] = delays
			return err
		})
	}
	for i, s := range schemes {
		i, s := i, s
		g.Go(func() error {
			delays, err := runScheme(build, s, set, src)
			results[optCols+i] = delays
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}

	var columns [][]float64
	if withOPT {
		delays := results[0]
		fig.Columns = append(fig.Columns, "OPT")
		columns = append(columns, delays)
		if envelope > 0 {
			fig.Columns = append(fig.Columns, fmt.Sprintf("OPT+%.0f%%", envelope*100))
			env := make([]float64, len(delays))
			for i, v := range delays {
				env[i] = v * (1 + envelope)
			}
			columns = append(columns, env)
		}
	}
	for i, s := range schemes {
		fig.Columns = append(fig.Columns, s.label)
		columns = append(columns, results[optCols+i])
	}
	net := build()
	for x, f := range net.Flows {
		row := make([]float64, len(columns))
		for c := range columns {
			row[c] = columns[c][x]
		}
		fig.AddRow(fmt.Sprintf("%d:%s", x, f.Name), row...)
	}
	return fig, nil
}

func mp(tl, ts float64) scheme {
	return scheme{label: fmt.Sprintf("MP-TL-%.0f-TS-%.0f", tl, ts), mode: router.ModeMP, tl: tl, ts: ts}
}

func sp(tl float64) scheme {
	return scheme{label: fmt.Sprintf("SP-TL-%.0f", tl), mode: router.ModeSP, tl: tl, ts: tl}
}

// Fig9 — "Delays of OPT and MP in CAIRN": MP-TL-10-TS-2 against OPT and
// the paper's 5% envelope.
func Fig9(set Settings) (*report.Figure, error) {
	fig, err := compare("fig9", "Delays of OPT and MP in CAIRN", topoCAIRN, true, 0.05,
		[]scheme{mp(10, 2)}, set, nil)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: MP delays fall within the OPT+5% envelope")
	return fig, nil
}

// Fig10 — "Delays of OPT and MP in NET1" with the paper's 8% envelope.
func Fig10(set Settings) (*report.Figure, error) {
	fig, err := compare("fig10", "Delays of OPT and MP in NET1", topoNET1, true, 0.08,
		[]scheme{mp(10, 2)}, set, nil)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: MP delays fall within the OPT+8% envelope")
	return fig, nil
}

// Fig11 — "Delays of MP and SP in CAIRN": OPT, MP-TL-10-TS-10,
// MP-TL-10-TS-2, SP-TL-10.
func Fig11(set Settings) (*report.Figure, error) {
	fig, err := compare("fig11", "Delays of MP and SP in CAIRN", topoCAIRN, true, 0,
		[]scheme{mp(10, 10), mp(10, 2), sp(10)}, set, nil)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: SP delays are two to four times those of MP on some flows")
	return fig, nil
}

// Fig12 — "Delays of MP and SP in NET1": same columns as Fig11.
func Fig12(set Settings) (*report.Figure, error) {
	fig, err := compare("fig12", "Delays of MP and SP in NET1", topoNET1, true, 0,
		[]scheme{mp(10, 10), mp(10, 2), sp(10)}, set, nil)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: SP delays are as much as five to six times those of MP (higher connectivity)")
	return fig, nil
}

// Fig13 — effect of the long-term interval Tl in CAIRN: Tl 10 -> 20 with
// Ts fixed. The paper: SP delays more than double; MP barely changes.
func Fig13(set Settings) (*report.Figure, error) {
	fig, err := compare("fig13", "Effect of Tl in CAIRN (Tl 10 vs 20)", topoCAIRN, false, 0,
		[]scheme{mp(10, 2), mp(20, 2), sp(10), sp(20)}, set, nil)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: raising Tl from 10 to 20 more than doubles SP delays; MP remains relatively unchanged")
	return fig, nil
}

// Fig14 — effect of Tl in NET1 (same sweep as Fig13).
func Fig14(set Settings) (*report.Figure, error) {
	fig, err := compare("fig14", "Effect of Tl in NET1 (Tl 10 vs 20)", topoNET1, false, 0,
		[]scheme{mp(10, 2), mp(20, 2), sp(10), sp(20)}, set, nil)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: SP delays increase significantly with Tl; MP shows negligible change")
	return fig, nil
}

// burstySource builds the on-off sources of the dynamic experiments.
func burstySource(f topo.Flow) traffic.Source {
	return traffic.OnOff{RateBits: f.Rate, MeanPacketBits: 8000, PeakFactor: 4, MeanOn: 0.25}
}

// Fig15 — dynamic (bursty) traffic in CAIRN (reconstructed; the provided
// paper text truncates before this experiment): MP vs SP under on-off
// sources with the same average rates as the stationary runs.
func Fig15(set Settings) (*report.Figure, error) {
	fig, err := compare("fig15", "Dynamic (bursty) traffic in CAIRN (reconstructed)", topoCAIRN, false, 0,
		[]scheme{mp(10, 2), sp(10)}, set, burstySource)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"reconstructed: under short bursts MP's local load balancing absorbs what SP cannot")
	return fig, nil
}

// Fig16 — dynamic (bursty) traffic in NET1 (reconstructed).
func Fig16(set Settings) (*report.Figure, error) {
	fig, err := compare("fig16", "Dynamic (bursty) traffic in NET1 (reconstructed)", topoNET1, false, 0,
		[]scheme{mp(10, 2), sp(10)}, set, burstySource)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"reconstructed: under short bursts MP's local load balancing absorbs what SP cannot")
	return fig, nil
}

func topoCAIRN() *topo.Network { return topo.CAIRN() }
func topoNET1() *topo.Network  { return topo.NET1() }

// All maps figure IDs to their generators.
var All = map[string]func(Settings) (*report.Figure, error){
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"fig15": Fig15,
	"fig16": Fig16,
}

// IDs lists the figure identifiers in presentation order.
var IDs = []string{"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}
