package experiments

import (
	"strings"
	"testing"

	"minroute/internal/topo"
)

func TestAblationAHDampedBeatsLiteral(t *testing.T) {
	fig, err := AblationAH(Quick)
	if err != nil {
		t.Fatal(err)
	}
	damped, literal := fig.ColumnMean(0), fig.ColumnMean(1)
	if !(damped < literal) {
		t.Fatalf("damped AH %v not better than literal %v", damped, literal)
	}
	// AH must also beat no AH at all (its reason to exist).
	off := fig.ColumnMean(2)
	if !(damped < off) {
		t.Fatalf("damped AH %v not better than AH-off %v", damped, off)
	}
}

func TestAblationBaselineOrdering(t *testing.T) {
	fig, err := AblationBaselines(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: OPT, MP, ECMP, SP.
	opt, mp, ecmp, sp := fig.ColumnMean(0), fig.ColumnMean(1), fig.ColumnMean(2), fig.ColumnMean(3)
	if !(opt <= mp*1.05) {
		t.Fatalf("OPT %v above MP %v", opt, mp)
	}
	if !(mp < ecmp) {
		t.Fatalf("MP %v not better than ECMP %v: unequal-cost multipath is the point", mp, ecmp)
	}
	// OSPF-style ECMP barely helps over SP when paths are not equal cost.
	if !(ecmp < sp*1.5) {
		t.Fatalf("ECMP %v unexpectedly far from SP %v", ecmp, sp)
	}
}

func TestAblationEstimatorComparable(t *testing.T) {
	fig, err := AblationEstimator(Quick)
	if err != nil {
		t.Fatal(err)
	}
	closed, online := fig.ColumnMean(0), fig.ColumnMean(1)
	if online > closed*2 {
		t.Fatalf("online estimator %v not comparable to closed form %v", online, closed)
	}
}

func TestLoadSweepCrossover(t *testing.T) {
	fig, err := LoadSweep(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Light load: MP within 25% of SP (no advantage, per the paper).
	lightMP, lightSP := fig.Data[0][0], fig.Data[0][1]
	if lightMP > lightSP*1.25 {
		t.Fatalf("light load: MP %v much worse than SP %v", lightMP, lightSP)
	}
	// Heavy load: SP at least 3x MP.
	heavyMP, heavySP := fig.Data[len(fig.Data)-1][0], fig.Data[len(fig.Data)-1][1]
	if !(heavySP > heavyMP*3) {
		t.Fatalf("heavy load: SP %v not >> MP %v", heavySP, heavyMP)
	}
}

func TestConnectivitySweepShape(t *testing.T) {
	fig, err := ConnectivitySweep(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Tree-like connectivity: no alternate paths, so MP and SP coincide.
	treeMP, treeSP := fig.Data[0][0], fig.Data[0][1]
	if relChange(treeMP, treeSP) > 0.02 {
		t.Fatalf("tree connectivity: MP %v != SP %v", treeMP, treeSP)
	}
	// Richer connectivity: MP at or below SP on every row.
	for r := 1; r < len(fig.Data); r++ {
		if fig.Data[r][0] > fig.Data[r][1]*1.02 {
			t.Fatalf("row %d: MP %v worse than SP %v", r, fig.Data[r][0], fig.Data[r][1])
		}
	}
	// Average degree must actually grow down the rows.
	for r := 1; r < len(fig.Data); r++ {
		if fig.Data[r][2] <= fig.Data[r-1][2] {
			t.Fatalf("avg degree not increasing at row %d", r)
		}
	}
}

func TestJitterMPSmoother(t *testing.T) {
	fig, err := Jitter(Quick)
	if err != nil {
		t.Fatal(err)
	}
	mp, sp := fig.ColumnMean(0), fig.ColumnMean(1)
	if !(mp < sp) {
		t.Fatalf("MP jitter %v not below SP jitter %v", mp, sp)
	}
}

func TestAblationAdaptiveHelpsUnderBursts(t *testing.T) {
	fig, err := AblationAdaptive(Quick)
	if err != nil {
		t.Fatal(err)
	}
	static, adaptive := fig.ColumnMean(0), fig.ColumnMean(1)
	if adaptive > static*1.1 {
		t.Fatalf("adaptive timers %v worse than static %v under bursts", adaptive, static)
	}
}

func TestOverheadTradeoffShape(t *testing.T) {
	fig, err := Overhead(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Delay stays in the same regime across the whole Tl range...
	d5, d40 := fig.Data[0][0], fig.Data[len(fig.Data)-1][0]
	if d40 > d5*1.5 {
		t.Fatalf("MP delay degraded badly with Tl: %v -> %v", d5, d40)
	}
	// ...while control bandwidth falls monotonically and substantially.
	for r := 1; r < len(fig.Data); r++ {
		if fig.Data[r][2] >= fig.Data[r-1][2] {
			t.Fatalf("control bandwidth not decreasing at row %d", r)
		}
	}
	if fig.Data[len(fig.Data)-1][2] > fig.Data[0][2]/4 {
		t.Fatalf("Tl=40 overhead %v not well below Tl=5 overhead %v",
			fig.Data[len(fig.Data)-1][2], fig.Data[0][2])
	}
}

func TestCustomComparison(t *testing.T) {
	net, err := topo.Parse(strings.NewReader(`
link a b 10Mbps 0.5ms
link b c 10Mbps 0.5ms
link a d 10Mbps 0.5ms
link d c 10Mbps 0.5ms
flow a c 8Mbps
`))
	if err != nil {
		t.Fatal(err)
	}
	fig, err := CustomComparison(net, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Columns) != 4 {
		t.Fatalf("columns = %v", fig.Columns)
	}
	opt, mp, sp := fig.Data[0][0], fig.Data[0][1], fig.Data[0][2]
	if !(mp < sp) || mp > opt*1.5 {
		t.Fatalf("diamond comparison off: opt=%v mp=%v sp=%v", opt, mp, sp)
	}
}
