package experiments

import (
	"fmt"

	"minroute/internal/graph"
	"minroute/internal/report"
	"minroute/internal/router"
	"minroute/internal/topo"
)

// ConnectivitySweep measures how the MP advantage grows with topology
// richness — the paper: "MP routing performs much better under
// high-connectivity and high-load environments. When connectivity is low
// or network load is light, MP routing cannot offer any advantage over
// SP." Rows are random 12-node topologies whose extra-link fraction grows
// from 0 (barely more than a tree) upward; the same 8 flows are offered on
// each.
func ConnectivitySweep(set Settings) (*report.Figure, error) {
	fig := &report.Figure{
		ID:      "connsweep",
		Title:   "MP vs SP vs connectivity (random 12-node graphs, mean over flows, ms)",
		Columns: []string{"MP-TL-10-TS-2", "SP-TL-10", "avg-degree"},
	}
	const n = 12
	for _, frac := range []float64{0, 0.5, 1.0, 2.0} {
		build := func() *topo.Network {
			g := topo.Connectivity(42, n, frac, 10e6, 0.5e-3)
			net := &topo.Network{Graph: g}
			for i := 0; i < 8; i++ {
				src := graph.NodeID((i * 5) % n)
				dst := graph.NodeID((i*7 + 3) % n)
				if src == dst {
					dst = (dst + 1) % n
				}
				net.Flows = append(net.Flows, topo.Flow{
					Name: fmt.Sprintf("f%d", i), Src: src, Dst: dst, Rate: 2.0e6,
				})
			}
			return net
		}
		row := make([]float64, 0, 3)
		for _, v := range []variant{
			{label: "MP", mode: router.ModeMP},
			{label: "SP", mode: router.ModeSP},
		} {
			delays, err := runVariant(build, v, set, 1)
			if err != nil {
				return nil, err
			}
			row = append(row, mean(delays))
		}
		g := build().Graph
		row = append(row, float64(g.NumLinks())/float64(g.NumNodes()))
		fig.AddRow(fmt.Sprintf("extra x%.1f", frac), row...)
	}
	fig.Notes = append(fig.Notes,
		"paper: MP's advantage requires alternate paths; with tree-like connectivity MP ~= SP")
	return fig, nil
}

func init() {
	All["connsweep"] = ConnectivitySweep
	IDs = append(IDs, "connsweep")
}
