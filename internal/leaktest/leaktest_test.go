package leaktest

import (
	"fmt"
	"strings"
	"testing"
)

// recorder stands in for *testing.T so the test can observe what Check
// reports without failing itself. Cleanup functions are captured and run
// by hand; Errorf records instead of failing.
type recorder struct {
	testing.TB
	cleanups []func()
	failed   bool
	msg      string
}

func (r *recorder) Helper() {}

func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }

func (r *recorder) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
}

func (r *recorder) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestCatchesLeakedGoroutine(t *testing.T) {
	r := &recorder{TB: t}
	Check(r)

	stop := make(chan struct{})
	go func() { <-stop }()

	r.runCleanups()
	if !r.failed {
		t.Fatal("leaktest did not report a goroutine parked past test end")
	}
	if !strings.Contains(r.msg, "TestCatchesLeakedGoroutine") {
		t.Errorf("leak report does not name the leaking test's function:\n%s", r.msg)
	}
	close(stop)

	// With the goroutine released, a fresh check over the same window must
	// come back clean — this also proves the grace-period retry absorbs the
	// just-released goroutine's exit.
	r2 := &recorder{TB: t}
	Check(r2)
	r2.runCleanups()
	if r2.failed {
		t.Errorf("leaktest reported a leak after the goroutine was released:\n%s", r2.msg)
	}
}

func TestCleanTestPasses(t *testing.T) {
	r := &recorder{TB: t}
	Check(r)

	// A goroutine that finishes before the cleanup runs is not a leak.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done

	r.runCleanups()
	if r.failed {
		t.Errorf("leaktest flagged a completed goroutine:\n%s", r.msg)
	}
}

func TestSnapshotParsesIDs(t *testing.T) {
	snap := snapshot()
	if len(snap) == 0 {
		t.Fatal("snapshot saw no goroutines; the parser is broken")
	}
	for id, stack := range snap { //lint:maporder-ok assertion per entry, no ordered output
		for _, r := range id {
			if r < '0' || r > '9' {
				t.Errorf("goroutine ID %q is not numeric (stack: %.60s)", id, stack)
			}
		}
	}
}
