// Package leaktest fails a test when goroutines started during it are
// still running at its end.
//
// The live stack is full of owned goroutines — ARQ read/write loops, mesh
// writer queues, node sessions, simpool workers — and every one of them
// has a documented stop path (DESIGN.md §13). A test that exits while one
// of those goroutines is still running has found an ownership bug: a
// Close that doesn't join, a timer that re-arms after teardown, a session
// blocked on a conn nobody will close. The static goroutine-lifecycle
// check proves a stop path *exists*; this package checks at runtime that
// the test actually *took* it.
//
// Usage, first line of a test (or subtest) body:
//
//	leaktest.Check(t)
//
// Check snapshots the live goroutines immediately and registers a Cleanup
// that re-snapshots after the test. Goroutines present at the end but not
// the start fail the test. Teardown is asynchronous all over the stack
// (conn.Close returns before the read loop observes the error), so the
// cleanup polls with a grace period rather than judging the first
// snapshot: a goroutine on its way out is not a leak, a goroutine still
// there after a second of retries is.
package leaktest

import (
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// maxRetries × retryDelay is the grace period a winding-down goroutine
// has to exit before it is declared leaked.
const (
	maxRetries = 100
	retryDelay = 10 * time.Millisecond
)

// Check arms leak detection for the current test. Call it before starting
// any goroutines the test owns.
func Check(t testing.TB) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		var leaked []string
		for i := 0; i < maxRetries; i++ {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			time.Sleep(retryDelay)
		}
		t.Errorf("leaktest: %d goroutine(s) leaked by this test:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// snapshot returns the live goroutines keyed by goroutine ID. The ID is
// the stable identity across snapshots: stacks move (a goroutine parked in
// a different select arm is still the same leak) and IDs are never reused
// within a process run.
func snapshot() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if id := goroutineID(g); id != "" {
			out[id] = strings.TrimSpace(g)
		}
	}
	return out
}

// goroutineID extracts N from a "goroutine N [state]:" header.
func goroutineID(stack string) string {
	rest, ok := strings.CutPrefix(stack, "goroutine ")
	if !ok {
		return ""
	}
	id, _, ok := strings.Cut(rest, " ")
	if !ok {
		return ""
	}
	return id
}

// leakedSince diffs the current goroutines against the starting snapshot,
// dropping runtime- and harness-owned goroutines the test cannot be
// blamed for.
func leakedSince(before map[string]string) []string {
	after := snapshot()
	ids := make([]string, 0, len(after))
	for id := range after { //lint:maporder-ok ids are sorted below; the report order is deterministic
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var leaked []string
	for _, id := range ids {
		if _, existed := before[id]; existed {
			continue
		}
		if stack := after[id]; !ignorable(stack) {
			leaked = append(leaked, stack)
		}
	}
	return leaked
}

// ignoredStackFragments mark goroutines owned by the runtime or the
// testing harness rather than the test body: the test driver itself,
// parent tests parked in t.Run, signal plumbing, and expiring
// runtime-timer callbacks that have fired but not yet returned.
var ignoredStackFragments = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.(*M).",
	"testing.runTests(",
	"runtime.goexit",
	"runtime.MHeap_Scavenger",
	"runtime.ensureSigM",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/trace.Start",
	"time.goFunc",
}

func ignorable(stack string) bool {
	for _, frag := range ignoredStackFragments {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}
