package topo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"minroute/internal/graph"
)

// Parse reads a network description — topology plus offered flows — from a
// simple line-oriented text format, so users can simulate their own
// networks with cmd/mdrsim and the library without writing Go:
//
//	# comments and blank lines are ignored
//	node a
//	node b
//	link a b 10Mbps 0.5ms     # duplex link: capacity, propagation delay
//	flow a b 2.5Mbps          # offered load a -> b
//
// Nodes are declared implicitly by links and flows if omitted. Capacities
// accept bps/kbps/Mbps/Gbps suffixes; delays accept s/ms/us/ns.
func Parse(r io.Reader) (*Network, error) {
	g := graph.New()
	net := &Network{Graph: g}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topo: line %d: node wants 1 argument", lineNo)
			}
			g.AddNode(fields[1])
		case "link":
			if len(fields) != 5 {
				return nil, fmt.Errorf("topo: line %d: link wants <a> <b> <capacity> <delay>", lineNo)
			}
			capacity, err := ParseRate(fields[3])
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: %w", lineNo, err)
			}
			delay, err := ParseDuration(fields[4])
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: %w", lineNo, err)
			}
			a, b := g.AddNode(fields[1]), g.AddNode(fields[2])
			if err := g.AddDuplex(a, b, capacity, delay); err != nil {
				return nil, fmt.Errorf("topo: line %d: %w", lineNo, err)
			}
		case "flow":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topo: line %d: flow wants <src> <dst> <rate>", lineNo)
			}
			rate, err := ParseRate(fields[3])
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: %w", lineNo, err)
			}
			src, dst := g.AddNode(fields[1]), g.AddNode(fields[2])
			if src == dst {
				return nil, fmt.Errorf("topo: line %d: flow endpoints equal", lineNo)
			}
			net.Flows = append(net.Flows, Flow{
				Name: fields[1] + "->" + fields[2],
				Src:  src,
				Dst:  dst,
				Rate: rate,
			})
		default:
			return nil, fmt.Errorf("topo: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// ParseRate parses a bit rate with an optional bps/kbps/Mbps/Gbps suffix
// (bare numbers are bits per second).
func ParseRate(s string) (float64, error) {
	mult := 1.0
	lower := strings.ToLower(s)
	for _, u := range []struct {
		suffix string
		factor float64
	}{
		{"gbps", 1e9}, {"mbps", 1e6}, {"kbps", 1e3}, {"bps", 1},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.factor
			lower = strings.TrimSuffix(lower, u.suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(lower, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	if v <= 0 {
		return 0, fmt.Errorf("non-positive rate %q", s)
	}
	return v * mult, nil
}

// ParseDuration parses a time with an s/ms/us/ns suffix (bare numbers are
// seconds).
func ParseDuration(s string) (float64, error) {
	// Dividing by the per-second unit count reproduces the same rounding as
	// writing the value in seconds directly (e.g. "200us" == 200e-6).
	perSecond := 1.0
	lower := strings.ToLower(s)
	switch {
	case strings.HasSuffix(lower, "ms"):
		perSecond, lower = 1e3, strings.TrimSuffix(lower, "ms")
	case strings.HasSuffix(lower, "us"):
		perSecond, lower = 1e6, strings.TrimSuffix(lower, "us")
	case strings.HasSuffix(lower, "ns"):
		perSecond, lower = 1e9, strings.TrimSuffix(lower, "ns")
	case strings.HasSuffix(lower, "s"):
		lower = strings.TrimSuffix(lower, "s")
	}
	v, err := strconv.ParseFloat(lower, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return v / perSecond, nil
}

// Format renders a Network back into the Parse text format.
func Format(w io.Writer, net *Network) error {
	g := net.Graph
	for _, id := range g.Nodes() {
		if _, err := fmt.Fprintf(w, "node %s\n", g.Name(id)); err != nil {
			return err
		}
	}
	seen := make(map[[2]graph.NodeID]bool)
	for _, l := range g.Links() {
		rev := [2]graph.NodeID{l.To, l.From}
		if seen[rev] {
			continue // duplex pair already emitted
		}
		seen[[2]graph.NodeID{l.From, l.To}] = true
		if _, err := fmt.Fprintf(w, "link %s %s %gbps %gs\n",
			g.Name(l.From), g.Name(l.To), l.Capacity, l.PropDelay); err != nil {
			return err
		}
	}
	for _, f := range net.Flows {
		if _, err := fmt.Fprintf(w, "flow %s %s %gbps\n",
			g.Name(f.Src), g.Name(f.Dst), f.Rate); err != nil {
			return err
		}
	}
	return nil
}
