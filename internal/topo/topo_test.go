package topo

import (
	"testing"
	"testing/quick"

	"minroute/internal/graph"
)

func TestCAIRNValid(t *testing.T) {
	n := CAIRN()
	if err := n.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Graph.NumNodes() < 20 {
		t.Fatalf("CAIRN has %d nodes, expected a 20+ node research network", n.Graph.NumNodes())
	}
	if len(n.Flows) != 11 {
		t.Fatalf("CAIRN has %d flows, want 11 (paper Section 5)", len(n.Flows))
	}
}

func TestCAIRNCapacitiesCapped(t *testing.T) {
	n := CAIRN()
	for _, l := range n.Graph.Links() {
		if l.Capacity > 10*Mb {
			t.Fatalf("link %v exceeds the paper's 10 Mb/s cap: %v", l, l.Capacity)
		}
	}
}

func TestCAIRNFlowEndpointsExist(t *testing.T) {
	n := CAIRN()
	for _, f := range n.Flows {
		if f.Src == f.Dst {
			t.Fatalf("flow %s has equal endpoints", f.Name)
		}
		if f.Rate < 1*Mb || f.Rate > 4*Mb {
			t.Fatalf("flow %s rate %v outside the paper's 1-4 Mb/s range", f.Name, f.Rate)
		}
	}
	// The paper's flow pairs are symmetric in several cases; spot-check two.
	g := n.Graph
	if n.Flows[0].Src != g.MustLookup("lbl") || n.Flows[0].Dst != g.MustLookup("mci-r") {
		t.Fatal("first CAIRN flow is not lbl->mci-r")
	}
	if n.Flows[10].Src != g.MustLookup("darpa") || n.Flows[10].Dst != g.MustLookup("isi") {
		t.Fatal("last CAIRN flow is not darpa->isi")
	}
}

func TestNET1Properties(t *testing.T) {
	n := NET1()
	g := n.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NET1 has %d nodes, want 10", g.NumNodes())
	}
	// Paper: diameter four, degrees between 3 and 5.
	if d := g.Diameter(); d != 4 {
		t.Fatalf("NET1 diameter = %d, want 4", d)
	}
	for _, id := range g.Nodes() {
		deg := g.Degree(id)
		if deg < 3 || deg > 5 {
			t.Fatalf("NET1 node %s degree %d outside [3,5]", g.Name(id), deg)
		}
	}
	if len(n.Flows) != 10 {
		t.Fatalf("NET1 has %d flows, want 10", len(n.Flows))
	}
}

func TestNET1FlowPairsMatchPaper(t *testing.T) {
	n := NET1()
	want := [][2]graph.NodeID{{9, 2}, {8, 3}, {7, 0}, {6, 1}, {5, 8}, {4, 1}, {3, 8}, {2, 9}, {1, 6}, {0, 7}}
	for i, f := range n.Flows {
		if f.Src != want[i][0] || f.Dst != want[i][1] {
			t.Fatalf("flow %d = %d->%d, want %d->%d", i, f.Src, f.Dst, want[i][0], want[i][1])
		}
	}
}

func TestRing(t *testing.T) {
	g := Ring(5, 1e6, 1e-3)
	if g.NumNodes() != 5 || g.NumLinks() != 10 {
		t.Fatalf("ring(5): %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("ring(5) diameter = %d, want 2", d)
	}
}

func TestRingPanicsSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(2) did not panic")
		}
	}()
	Ring(2, 1e6, 0)
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 1e6, 1e-3)
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	// 3*3 vertical + 2*4 horizontal = 17 duplex = 34 directed.
	if g.NumLinks() != 34 {
		t.Fatalf("grid links = %d, want 34", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.Diameter(); d != 5 {
		t.Fatalf("grid(3,4) diameter = %d, want 5", d)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(7, 12, 8, 1e6, 1e7, 1e-3)
	b := Random(7, 12, 8, 1e6, 1e7, 1e-3)
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("Random not deterministic for equal seeds")
	}
	la, lb := a.Links(), b.Links()
	for i := range la {
		if la[i].From != lb[i].From || la[i].To != lb[i].To || la[i].Capacity != lb[i].Capacity {
			t.Fatal("Random link sets differ for equal seeds")
		}
	}
}

func TestRandomAlwaysConnected(t *testing.T) {
	check := func(seed uint64, n8, extra8 uint8) bool {
		n := int(n8%20) + 2
		extra := int(extra8 % 30)
		g := Random(seed, n, extra, 1e6, 1e7, 1e-3)
		return g.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFlows(t *testing.T) {
	n := NET1()
	scaled := ScaleFlows(n.Flows, 2)
	for i := range scaled {
		if scaled[i].Rate != 2*n.Flows[i].Rate {
			t.Fatalf("flow %d not scaled", i)
		}
	}
	// Original untouched.
	if n.Flows[0].Rate == scaled[0].Rate {
		t.Fatal("ScaleFlows mutated input")
	}
}

func TestConnectivityMonotoneLinkCount(t *testing.T) {
	prev := -1
	for _, f := range []float64{0, 0.5, 1, 2} {
		g := Connectivity(5, 12, f, 1e7, 1e-3)
		if err := g.Validate(); err != nil {
			t.Fatalf("fraction %v: %v", f, err)
		}
		if g.NumLinks() < prev {
			t.Fatalf("link count decreased at fraction %v", f)
		}
		prev = g.NumLinks()
	}
	if Connectivity(5, 12, -3, 1e7, 1e-3).NumLinks() != Connectivity(5, 12, 0, 1e7, 1e-3).NumLinks() {
		t.Fatal("negative fraction not clamped")
	}
}
