// Package topo builds the topologies of the paper's Figure 8 — CAIRN and
// NET1 — plus synthetic generators used by tests.
//
// CAIRN was DARPA's Collaborative Advanced Interagency Research Network. The
// paper uses only its connectivity ("its topology as used differs from the
// real network in the capacities and propagation delays assumed"), caps link
// capacities at 10 Mb/s, and sets up eleven flows between named sites. The
// figure in the available text is not machine readable, so the wiring here is
// a reconstruction from the node names and flow list in the paper: a sparse
// continental research backbone, West-coast and East-coast clusters joined by
// a small number of long-haul links. What the experiments depend on — a real,
// sparse network where alternate paths exist but are scarce — is preserved.
//
// NET1 is the paper's contrived network: "a connectivity that is high enough
// to ensure the existence of multiple paths, and small enough to prevent a
// large number of one-hop paths. The diameter of NET1 is four and the nodes
// have degrees between 3 and 5." The construction below — two 4-cliques
// joined by a two-link-wide bridge — satisfies all three properties exactly
// (verified in tests).
package topo

import (
	"fmt"

	"minroute/internal/graph"
	"minroute/internal/rng"
)

// Flow is an offered traffic demand: Rate bits per second entering the
// network at Src destined for Dst (the r_ij of the paper).
type Flow struct {
	Name string
	Src  graph.NodeID
	Dst  graph.NodeID
	Rate float64 // bits per second
}

// Network bundles a topology with its configured demand set.
type Network struct {
	Graph *graph.Graph
	Flows []Flow
}

// Mb is one megabit per second.
const Mb = 1e6

// cairnLink describes one duplex link of the CAIRN reconstruction.
type cairnLink struct {
	a, b string
	prop float64 // seconds
}

// cairnWiring is the reconstructed CAIRN connectivity. Propagation delays
// are short (0.1–1 ms) as in the paper, whose measured average delays are in
// the low-millisecond range; queueing, not propagation, dominates.
var cairnWiring = []cairnLink{
	// West-coast cluster.
	{"isi", "ucla", 0.2e-3},
	{"isi", "ucsc", 0.4e-3},
	{"isi", "sri", 0.4e-3},
	{"isi", "cisco-w", 0.3e-3},
	{"isi", "sdsc", 0.2e-3},
	{"isi", "tioc", 0.3e-3},
	{"ucla", "sdsc", 0.2e-3},
	{"ucsc", "ucb", 0.1e-3},
	{"ucb", "lbl", 0.1e-3},
	{"ucb", "sri", 0.1e-3},
	{"lbl", "sri", 0.1e-3},
	{"lbl", "nasa", 0.1e-3},
	{"sri", "parc", 0.1e-3},
	{"sri", "tioc", 0.2e-3},
	{"parc", "cisco-w", 0.1e-3},
	{"cisco-w", "nasa", 0.1e-3},
	{"sdsc", "saic", 0.1e-3},
	// Long-haul middle: two northern cross-country paths (via netstar and
	// directly nasa-anl) plus the southern sdsc-saic-nrl-v6 route, so that
	// alternate long-haul paths exist — the property the paper's CAIRN
	// experiments rely on ("In the presence of link failures, MP can only
	// perform better than SP, because of availability of alternate paths").
	{"nasa", "netstar", 1.0e-3},
	{"netstar", "anl", 0.5e-3},
	{"nasa", "anl", 1.2e-3},
	{"anl", "cisco-e", 0.5e-3},
	{"anl", "cmu", 0.4e-3},
	{"saic", "nrl-v6", 1.0e-3},
	// East-coast cluster.
	{"cisco-e", "bbn", 0.2e-3},
	{"cisco-e", "mit", 0.2e-3},
	{"mit", "bbn", 0.1e-3},
	{"bbn", "mci-r", 0.3e-3},
	{"bbn", "bell", 0.2e-3},
	{"bell", "udel", 0.2e-3},
	{"mci-r", "darpa", 0.1e-3},
	{"mci-r", "tis", 0.1e-3},
	{"darpa", "tis", 0.1e-3},
	{"darpa", "isi-e", 0.1e-3},
	{"isi-e", "nrl-v6", 0.1e-3},
	{"isi-e", "udel", 0.2e-3},
	{"udel", "cmu", 0.3e-3},
	{"tis", "udel", 0.2e-3},
	// Transatlantic.
	{"isi-e", "ucl", 1.0e-3},
	{"mit", "ucl", 1.0e-3},
}

// cairnFlowPairs is the flow list from Section 5 of the paper, in order.
var cairnFlowPairs = [][2]string{
	{"lbl", "mci-r"},
	{"netstar", "isi-e"},
	{"isi", "darpa"},
	{"parc", "sdsc"},
	{"sri", "mit"},
	{"tioc", "sdsc"},
	{"mit", "sri"},
	{"isi-e", "netstar"},
	{"sdsc", "parc"},
	{"mci-r", "tioc"},
	{"darpa", "isi"},
}

// cairnRates assigns deterministic offered loads in the paper's 1–4 Mb/s
// range, sized so the eastbound cross-country demand (8.5 Mb/s) saturates a
// single 10 Mb/s long-haul link when single-path routing concentrates it,
// while multipath routing can spread it over the parallel middle routes.
var cairnRates = []float64{3.0 * Mb, 1.5 * Mb, 3.0 * Mb, 2.0 * Mb, 3.0 * Mb, 1.0 * Mb, 3.5 * Mb, 2.0 * Mb, 1.5 * Mb, 3.0 * Mb, 2.5 * Mb}

// CAIRN builds the CAIRN reconstruction with all links at 10 Mb/s and the
// paper's eleven flows.
func CAIRN() *Network {
	g := graph.New()
	for _, l := range cairnWiring {
		a, b := g.AddNode(l.a), g.AddNode(l.b)
		if err := g.AddDuplex(a, b, 10*Mb, l.prop); err != nil {
			panic("topo: CAIRN wiring: " + err.Error())
		}
	}
	if err := g.Validate(); err != nil {
		panic("topo: CAIRN invalid: " + err.Error())
	}
	n := &Network{Graph: g}
	for i, p := range cairnFlowPairs {
		n.Flows = append(n.Flows, Flow{
			Name: fmt.Sprintf("%s->%s", p[0], p[1]),
			Src:  g.MustLookup(p[0]),
			Dst:  g.MustLookup(p[1]),
			Rate: cairnRates[i],
		})
	}
	return n
}

// net1Edges: two 4-cliques {0,1,2,3} and {6,7,8,9} joined by bridge nodes 4
// and 5. Degrees are 3–5 and the diameter is exactly 4.
var net1Edges = [][2]int{
	{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // west clique
	{1, 4}, {3, 4}, {4, 5}, {5, 6}, {5, 8}, {4, 8}, // bridge
	{6, 7}, {6, 8}, {6, 9}, {7, 8}, {7, 9}, {8, 9}, // east clique
}

// net1FlowPairs is the flow list from Section 5 of the paper, in order.
var net1FlowPairs = [][2]int{
	{9, 2}, {8, 3}, {7, 0}, {6, 1}, {5, 8}, {4, 1}, {3, 8}, {2, 9}, {1, 6}, {0, 7},
}

// net1Rates keeps each direction's bridge-crossing demand at 9 Mb/s —
// heavy enough that single-path routing concentrating it on one 10 Mb/s
// bridge runs at ~90% utilization (the paper's "sufficiently load the
// networks" regime) while multipath spreads it across both bridges.
var net1Rates = []float64{3.0 * Mb, 1.5 * Mb, 2.5 * Mb, 2.0 * Mb, 3.0 * Mb, 1.0 * Mb, 2.5 * Mb, 2.0 * Mb, 1.5 * Mb, 3.0 * Mb}

// NET1 builds the contrived NET1 network with all links at 10 Mb/s and the
// paper's ten flows between nodes 0–9.
func NET1() *Network {
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddNode(fmt.Sprintf("%d", i))
	}
	for _, e := range net1Edges {
		if err := g.AddDuplex(graph.NodeID(e[0]), graph.NodeID(e[1]), 10*Mb, 0.5e-3); err != nil {
			panic("topo: NET1 wiring: " + err.Error())
		}
	}
	if err := g.Validate(); err != nil {
		panic("topo: NET1 invalid: " + err.Error())
	}
	n := &Network{Graph: g}
	for i, p := range net1FlowPairs {
		n.Flows = append(n.Flows, Flow{
			Name: fmt.Sprintf("%d->%d", p[0], p[1]),
			Src:  graph.NodeID(p[0]),
			Dst:  graph.NodeID(p[1]),
			Rate: net1Rates[i],
		})
	}
	return n
}

// Ring builds an n-node ring with uniform link parameters. Used in tests:
// rings give every destination exactly two maximally disjoint paths.
func Ring(n int, capacity, prop float64) *graph.Graph {
	if n < 3 {
		panic("topo: Ring needs n >= 3")
	}
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < n; i++ {
		if err := g.AddDuplex(graph.NodeID(i), graph.NodeID((i+1)%n), capacity, prop); err != nil {
			panic("topo: Ring: " + err.Error())
		}
	}
	return g
}

// Grid builds a rows×cols mesh with uniform link parameters.
func Grid(rows, cols int, capacity, prop float64) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("topo: Grid needs positive dimensions")
	}
	g := graph.New()
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(fmt.Sprintf("g%d_%d", r, c))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddDuplex(id(r, c), id(r, c+1), capacity, prop); err != nil {
					panic("topo: Grid: " + err.Error())
				}
			}
			if r+1 < rows {
				if err := g.AddDuplex(id(r, c), id(r+1, c), capacity, prop); err != nil {
					panic("topo: Grid: " + err.Error())
				}
			}
		}
	}
	return g
}

// Random builds a random connected symmetric graph: a random spanning path
// plus extra random duplex links, with capacities in [minCap, maxCap] and
// propagation delays up to maxProp. Deterministic for a given seed.
func Random(seed uint64, n, extraLinks int, minCap, maxCap, maxProp float64) *graph.Graph {
	if n < 2 {
		panic("topo: Random needs n >= 2")
	}
	r := rng.New(seed)
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("x%d", i))
	}
	randCap := func() float64 {
		if maxCap <= minCap {
			return minCap
		}
		return minCap + r.Float64()*(maxCap-minCap)
	}
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		if err := g.AddDuplex(graph.NodeID(perm[i-1]), graph.NodeID(perm[i]), randCap(), r.Float64()*maxProp); err != nil {
			panic("topo: Random: " + err.Error())
		}
	}
	for i := 0; i < extraLinks; i++ {
		a, b := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if a == b {
			continue
		}
		if _, ok := g.Link(a, b); ok {
			continue
		}
		if err := g.AddDuplex(a, b, randCap(), r.Float64()*maxProp); err != nil {
			panic("topo: Random: " + err.Error())
		}
	}
	return g
}

// ScaleFree builds a Barabási–Albert preferential-attachment graph: a seed
// clique of m+1 nodes, then each new node attaches m duplex links to
// existing nodes chosen proportionally to their current degree. The result
// has the hub-dominated degree distribution of real internetworks, which is
// the interesting regime for sharded execution: hubs concentrate load while
// the tail stays sparse. Propagation delays are drawn from
// [0.1*maxProp, maxProp) — strictly positive, because the conservative
// shard window is the minimum propagation delay and must be > 0.
// Deterministic for a given seed.
func ScaleFree(seed uint64, n, m int, capacity, maxProp float64) *graph.Graph {
	if m < 1 {
		panic("topo: ScaleFree needs m >= 1")
	}
	if n < m+2 {
		panic("topo: ScaleFree needs n >= m+2")
	}
	r := rng.New(seed)
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("s%d", i))
	}
	prop := func() float64 { return maxProp * (0.1 + 0.9*r.Float64()) }
	// targets holds one entry per link endpoint, so uniform sampling from it
	// is degree-proportional sampling of nodes.
	var targets []graph.NodeID
	addDuplex := func(a, b graph.NodeID) {
		if err := g.AddDuplex(a, b, capacity, prop()); err != nil {
			panic("topo: ScaleFree: " + err.Error())
		}
		targets = append(targets, a, b)
	}
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			addDuplex(graph.NodeID(i), graph.NodeID(j))
		}
	}
	for v := m + 1; v < n; v++ {
		attached := 0
		for attached < m {
			t := targets[r.Intn(len(targets))]
			if int(t) == v {
				continue
			}
			if _, ok := g.Link(graph.NodeID(v), t); ok {
				continue
			}
			addDuplex(graph.NodeID(v), t)
			attached++
		}
	}
	return g
}

// SynthFlows draws count random demands over g: distinct src/dst pairs with
// rates uniform in [minRate, maxRate]. Deterministic for a given seed.
func SynthFlows(seed uint64, g *graph.Graph, count int, minRate, maxRate float64) []Flow {
	r := rng.New(seed).Split(0xf10e)
	n := g.NumNodes()
	flows := make([]Flow, 0, count)
	for i := 0; i < count; i++ {
		src := graph.NodeID(r.Intn(n))
		dst := graph.NodeID(r.Intn(n))
		if src == dst {
			dst = graph.NodeID((int(dst) + 1) % n)
		}
		rate := minRate
		if maxRate > minRate {
			rate += r.Float64() * (maxRate - minRate)
		}
		flows = append(flows, Flow{
			Name: fmt.Sprintf("f%d:%s-%s", i, g.Name(src), g.Name(dst)),
			Src:  src,
			Dst:  dst,
			Rate: rate,
		})
	}
	return flows
}

// ScaleFlows returns a copy of flows with every rate multiplied by factor.
// Used for load sweeps.
func ScaleFlows(flows []Flow, factor float64) []Flow {
	out := make([]Flow, len(flows))
	for i, f := range flows {
		f.Rate *= factor
		out[i] = f
	}
	return out
}

// Connectivity builds a family member of random connected graphs whose
// richness is controlled by extraFraction: 0 yields a spanning tree-ish
// path (minimal connectivity), 1 adds roughly one extra duplex link per
// node. Used by the connectivity-sweep experiment (the paper: "MP routing
// performs much better under high-connectivity and high-load
// environments").
func Connectivity(seed uint64, n int, extraFraction, capacity, prop float64) *graph.Graph {
	if extraFraction < 0 {
		extraFraction = 0
	}
	extra := int(extraFraction * float64(n))
	return Random(seed, n, extra, capacity, capacity, prop)
}
