package topo

import (
	"bytes"
	"strings"
	"testing"
)

const sampleScenario = `
# a tiny triangle
node a
node b
link a b 10Mbps 0.5ms
link b c 5Mbps 200us   # c declared implicitly
link a c 1Gbps 1ms
flow a c 2.5Mbps
flow c b 500kbps
`

func TestParseScenario(t *testing.T) {
	net, err := Parse(strings.NewReader(sampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumLinks() != 6 {
		t.Fatalf("directed links = %d", g.NumLinks())
	}
	a, b, c := g.MustLookup("a"), g.MustLookup("b"), g.MustLookup("c")
	if l, _ := g.Link(a, b); l.Capacity != 10e6 || l.PropDelay != 0.5e-3 {
		t.Fatalf("a-b link = %+v", l)
	}
	if l, _ := g.Link(b, c); l.Capacity != 5e6 || l.PropDelay != 200e-6 {
		t.Fatalf("b-c link = %+v", l)
	}
	if l, _ := g.Link(a, c); l.Capacity != 1e9 {
		t.Fatalf("a-c link = %+v", l)
	}
	if len(net.Flows) != 2 {
		t.Fatalf("flows = %d", len(net.Flows))
	}
	if net.Flows[0].Src != a || net.Flows[0].Dst != c || net.Flows[0].Rate != 2.5e6 {
		t.Fatalf("flow 0 = %+v", net.Flows[0])
	}
	if net.Flows[1].Rate != 500e3 {
		t.Fatalf("flow 1 rate = %v", net.Flows[1].Rate)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frob a b",
		"short link":        "link a b 10Mbps",
		"bad rate":          "link a b tenMbps 1ms",
		"bad delay":         "link a b 10Mbps soon",
		"short node":        "node",
		"short flow":        "flow a b",
		"self flow":         "link a b 1Mbps 1ms\nflow a a 1Mbps",
		"negative rate":     "link a b -5Mbps 1ms",
		"disconnected":      "node a\nnode b",
		"duplicate link":    "link a b 1Mbps 1ms\nlink a b 2Mbps 1ms",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseRateUnits(t *testing.T) {
	for in, want := range map[string]float64{
		"1500":    1500,
		"10bps":   10,
		"3kbps":   3e3,
		"2.5Mbps": 2.5e6,
		"1Gbps":   1e9,
		"2.5MBPS": 2.5e6, // case-insensitive
	} {
		got, err := ParseRate(in)
		if err != nil || got != want {
			t.Errorf("ParseRate(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "Mbps", "-1Mbps", "0", "1qps"} {
		if _, err := ParseRate(bad); err == nil {
			t.Errorf("ParseRate(%q) accepted", bad)
		}
	}
}

func TestParseDurationUnits(t *testing.T) {
	for in, want := range map[string]float64{
		"2":     2,
		"1s":    1,
		"250ms": 0.25,
		"10us":  1e-5,
		"500ns": 5e-7,
		"0ms":   0,
	} {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "ms", "-1ms", "fast"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted", bad)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	orig := NET1()
	var buf bytes.Buffer
	if err := Format(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph.NumNodes() != orig.Graph.NumNodes() || back.Graph.NumLinks() != orig.Graph.NumLinks() {
		t.Fatalf("round trip changed topology: %d/%d vs %d/%d",
			back.Graph.NumNodes(), back.Graph.NumLinks(), orig.Graph.NumNodes(), orig.Graph.NumLinks())
	}
	if len(back.Flows) != len(orig.Flows) {
		t.Fatalf("round trip changed flows: %d vs %d", len(back.Flows), len(orig.Flows))
	}
	for i := range orig.Flows {
		if back.Flows[i].Rate != orig.Flows[i].Rate {
			t.Fatalf("flow %d rate changed", i)
		}
	}
	// Every link's parameters survive.
	for _, l := range orig.Graph.Links() {
		bl, ok := back.Graph.Link(
			back.Graph.MustLookup(orig.Graph.Name(l.From)),
			back.Graph.MustLookup(orig.Graph.Name(l.To)))
		if !ok || bl.Capacity != l.Capacity || bl.PropDelay != l.PropDelay {
			t.Fatalf("link %v not preserved", l)
		}
	}
}
