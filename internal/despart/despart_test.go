package despart_test

import (
	"reflect"
	"testing"

	"minroute/internal/des"
	"minroute/internal/despart"
	"minroute/internal/graph"
	"minroute/internal/leaktest"
	"minroute/internal/rng"
	"minroute/internal/simpool"
)

// The despart tests drive a synthetic forwarding mesh built directly on
// des.Port — no routers, no protocol — so they pin the coordinator, mailbox,
// and canonical-ordering machinery in isolation: per-router delivery logs
// must be byte-identical (floats included) at any shard count and any valid
// window width, against a plain single-engine run.

type delivery struct {
	from   graph.NodeID
	serial uint64
	at     float64
	hops   int
}

const meshDur = 2.0

// runMesh builds a pseudo-random forwarding mesh from seed and runs it to
// meshDur partitioned across the given number of shards. shards == 0 runs
// the plain single-engine baseline with no coordinator at all. window <= 0
// selects the minimum propagation delay. Returns per-router delivery logs
// and the total number of events fired.
func runMesh(tb testing.TB, seed uint64, routers, shards, sends, maxHops int, window float64) ([][]delivery, int64) {
	tb.Helper()
	plain := shards == 0
	if plain {
		shards = 1
	}
	if shards > routers {
		shards = routers
	}
	engines := make([]*des.Engine, shards)
	for s := range engines {
		engines[s] = des.NewEngine(seed)
	}
	shardOf := make([]int, routers)
	for r := range shardOf {
		shardOf[r] = r * shards / routers
	}

	// Topology: a bidirectional ring plus seed-derived chords, with
	// propagation delays in [10ms, 110ms).
	type edge struct {
		from, to int
		prop     float64
	}
	tr := rng.New(seed).Split(0xbeef)
	var edges []edge
	addEdge := func(a, b int) {
		edges = append(edges, edge{a, b, 0.01 + 0.1*tr.Float64()})
	}
	for r := 0; r < routers; r++ {
		addEdge(r, (r+1)%routers)
		addEdge((r+1)%routers, r)
	}
	for i := 0; i < routers/2; i++ {
		a := tr.Intn(routers)
		b := (a + 2 + tr.Intn(routers-1)) % routers
		if a != b {
			addEdge(a, b)
		}
	}
	minProp := edges[0].prop
	for _, e := range edges {
		if e.prop < minProp {
			minProp = e.prop
		}
	}
	if window <= 0 {
		window = minProp
	}

	logs := make([][]delivery, routers)
	outPorts := make([][]*des.Port, routers)
	ports := make([]*des.Port, len(edges))
	for li, e := range edges {
		e := e
		sEng := engines[shardOf[e.from]]
		rEng := engines[shardOf[e.to]]
		l := &graph.Link{From: graph.NodeID(e.from), To: graph.NodeID(e.to), Capacity: 1e6, PropDelay: e.prop}
		to := e.to
		var p *des.Port
		p = des.NewPort(sEng, l, 1e12, func(pkt *des.Packet) {
			logs[to] = append(logs[to], delivery{p.From, pkt.Serial, rEng.Now(), pkt.Hops})
			if pkt.Hops >= maxHops {
				rEng.FreePacket(pkt)
				return
			}
			pkt.Hops++
			out := outPorts[to]
			next := out[int((pkt.Serial+uint64(pkt.Hops))%uint64(len(out)))]
			if !next.Send(pkt) {
				rEng.FreePacket(pkt)
			}
		})
		p.SetPris(des.PriLinkTx(uint64(li)), des.PriLinkDeliver(uint64(li)))
		if rEng != sEng {
			p.BindReceiver(rEng)
		}
		ports[li] = p
		outPorts[e.from] = append(outPorts[e.from], p)
	}

	// Initial sends: per-router Split streams off the engine root RNG give
	// each router the exact same schedule whichever shard it lands on.
	for r := 0; r < routers; r++ {
		r := r
		eng := engines[shardOf[r]]
		stream := eng.RNG().Split(0x51ea + uint64(r))
		eng.WithOrigin(des.PriRouter(uint64(r)), func() {
			for i := 0; i < sends; i++ {
				at := stream.Float64() * meshDur * 0.8
				bits := 500 + stream.Float64()*8000
				serial := uint64(r)<<32 | uint64(i)
				eng.Schedule(at, func() {
					out := outPorts[r]
					// Pooled packets keep stale fields; reset everything the
					// mesh reads.
					pkt := eng.NewPacket()
					pkt.Serial = serial
					pkt.Src = graph.NodeID(r)
					pkt.Bits = bits
					pkt.Created = eng.Now()
					pkt.Hops = 0
					pkt.Control = nil
					pkt.FlowID = 0
					if !out[int(serial)%len(out)].Send(pkt) {
						eng.FreePacket(pkt)
					}
				})
			}
		})
	}

	if plain {
		engines[0].Run(meshDur)
	} else {
		c := despart.New(engines, window)
		for li, e := range edges {
			if shardOf[e.from] != shardOf[e.to] {
				c.AddInbound(shardOf[e.to], ports[li])
			}
		}
		c.RunUntil(meshDur)
	}
	var events int64
	for _, e := range engines {
		events += e.EventsFired()
	}
	return logs, events
}

// TestShardEquivalence: the per-router delivery logs — source, serial, hop
// count, and exact float arrival time — and the total event count must match
// the plain single-engine run at every shard count.
func TestShardEquivalence(t *testing.T) {
	leaktest.Check(t)
	const routers = 9
	base, baseEvents := runMesh(t, 7, routers, 0, 20, 8, 0)
	var total int
	for _, l := range base {
		total += len(l)
	}
	if total == 0 {
		t.Fatal("baseline mesh delivered nothing")
	}
	for _, shards := range []int{1, 2, 3, 4, 9} {
		logs, events := runMesh(t, 7, routers, shards, 20, 8, 0)
		if events != baseEvents {
			t.Errorf("shards=%d: %d events fired, baseline %d", shards, events, baseEvents)
		}
		if !reflect.DeepEqual(logs, base) {
			t.Errorf("shards=%d: delivery logs diverge from plain-engine baseline", shards)
		}
	}
}

// TestWindowInvariance: the window width is a scheduling implementation
// detail — any value in (0, min cross-shard prop] must produce identical
// results.
func TestWindowInvariance(t *testing.T) {
	leaktest.Check(t)
	base, _ := runMesh(t, 11, 8, 0, 12, 6, 0)
	for _, div := range []float64{1, 2, 7.3} {
		logs, _ := runMesh(t, 11, 8, 4, 12, 6, 0.01/div)
		if !reflect.DeepEqual(logs, base) {
			t.Errorf("window=minProp/%v: delivery logs diverge", div)
		}
	}
}

// TestBarrierCadence pins OnBarrier's contract: one call per whole window
// strictly inside the horizon, plus the final inclusive boundary, with the
// engine clocks equal to the barrier time at every call.
func TestBarrierCadence(t *testing.T) {
	leaktest.Check(t)
	engines := []*des.Engine{des.NewEngine(1), des.NewEngine(1)}
	c := despart.New(engines, 0.25)
	var got []float64
	c.OnBarrier = func(bt float64) {
		for _, e := range engines {
			if e.Now() != bt {
				t.Errorf("barrier %g: engine clock %g", bt, e.Now())
			}
		}
		got = append(got, bt)
	}
	c.RunUntil(1.0)
	want := []float64{0.25, 0.5, 0.75, 1.0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("barriers %v, want %v", got, want)
	}
	c.RunUntil(1.1) // shorter than one window: only the final inclusive step
	if want = append(want, 1.1); !reflect.DeepEqual(got, want) {
		t.Fatalf("barriers %v, want %v", got, want)
	}
}

// TestWiringPanics: the constructor and registration guards fire at build
// time rather than corrupting a run.
func TestWiringPanics(t *testing.T) {
	leaktest.Check(t)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("no engines", func() { despart.New(nil, 1) })
	expectPanic("zero window", func() { despart.New([]*des.Engine{des.NewEngine(1)}, 0) })
	expectPanic("lookahead violation", func() {
		engines := []*des.Engine{des.NewEngine(1), des.NewEngine(1)}
		c := despart.New(engines, 0.5)
		l := &graph.Link{From: 0, To: 1, Capacity: 1e6, PropDelay: 0.1}
		p := des.NewPort(engines[0], l, 0, func(pkt *des.Packet) {})
		p.BindReceiver(engines[1])
		c.AddInbound(1, p)
	})
}

// TestSimpoolComposition is the oversubscription regression test: many
// sharded simulations fanned out on a small simpool budget must neither
// deadlock (TryAcquire never blocks) nor leak worker slots, and every
// simulation must still produce the baseline result — saturated runs just
// degrade to inline shard execution.
func TestSimpoolComposition(t *testing.T) {
	leaktest.Check(t)
	oldWorkers := simpool.Workers()
	defer simpool.SetWorkers(oldWorkers)
	simpool.SetWorkers(4)

	base, _ := runMesh(t, 13, 8, 0, 10, 6, 0)
	g := simpool.NewGroup()
	results := make([][][]delivery, 8)
	for i := range results {
		i := i
		g.Go(func() error {
			// Each task holds one of the four slots; its 8-shard coordinator
			// may TryAcquire at most the remaining ones.
			logs, _ := runMesh(t, 13, 8, 8, 10, 6, 0)
			results[i] = logs
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, logs := range results {
		if !reflect.DeepEqual(logs, base) {
			t.Errorf("sim %d under saturated pool diverges from baseline", i)
		}
	}
	// Every slot must be back: a full re-acquire succeeds.
	tok := simpool.TryAcquire(4)
	if tok.Held() != 4 {
		t.Fatalf("pool leaked worker slots: re-acquired %d of 4", tok.Held())
	}
	tok.Release()
}

// FuzzShardSchedule fuzzes the equivalence property itself: for any seed,
// mesh size, shard count, and send schedule, the sharded run must reproduce
// the plain single-engine run's per-router delivery order exactly.
func FuzzShardSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(6), uint8(2), uint8(8))
	f.Add(uint64(42), uint8(9), uint8(3), uint8(5))
	f.Add(uint64(7), uint8(2), uint8(2), uint8(1))
	f.Add(uint64(0xdead), uint8(12), uint8(8), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, routers, shards, sends uint8) {
		r := 2 + int(routers)%11   // 2..12
		p := 1 + int(shards)%r     // 1..routers
		n := 1 + int(sends)%12     // 1..12
		base, baseEvents := runMesh(t, seed, r, 0, n, 6, 0)
		logs, events := runMesh(t, seed, r, p, n, 6, 0)
		if events != baseEvents {
			t.Fatalf("seed=%d routers=%d shards=%d sends=%d: %d events vs baseline %d",
				seed, r, p, n, events, baseEvents)
		}
		if !reflect.DeepEqual(logs, base) {
			t.Fatalf("seed=%d routers=%d shards=%d sends=%d: delivery logs diverge", seed, r, p, n)
		}
	})
}
