// Package despart executes one discrete-event simulation across several
// engine shards with conservative (null-message-free) time windows.
//
// The router set is partitioned contiguously into P shards, each owning a
// private des.Engine, event queue, RNG, and telemetry tracer. Simulated
// time advances in lockstep windows of width Δ = the minimum propagation
// delay of any cross-shard link (the model guarantees every link's delay is
// positive, so Δ > 0). Within a window [W, W+Δ) the shards run completely
// independently: conservative lookahead says no event a peer shard fires in
// this window can affect me before W+Δ, because the earliest cross-shard
// influence travels over a link with propagation delay ≥ Δ. Cross-shard
// packets are therefore parked in per-port mailboxes (des.Port.FlipMail /
// DrainInbox) and carried across the barrier between windows instead of
// flowing through a shared event queue.
//
// Determinism is absolute, not statistical: the event order each shard
// executes is a pure function of the model because the event queue orders
// equal-time events by origin priority (see eventq), mailbox drains happen
// in ascending global link order at window start, and every barrier-side
// action (faults, oracles, measurement boundaries) runs single-threaded
// with all shard clocks equal. A run at P shards replays the exact event
// schedule of the serial run, which is what makes the telemetry artifacts
// byte-identical at -shards 1 vs 2 vs 8 (the determinism matrix in
// internal/experiments pins that).
//
// Worker goroutines are drawn from the process-wide simpool budget with
// TryAcquire: a simulation nested under the experiment pool only uses spare
// capacity, degrading to inline sequential shard execution (still correct,
// still deterministic) when the pool is saturated — workers × shards can
// never oversubscribe the budget.
package despart

import (
	"fmt"
	"sync"

	"minroute/internal/des"
	"minroute/internal/simpool"
)

// Coordinator drives the shards of one simulation through conservative
// time windows. Build one with New, register the cross-shard ports, then
// drive it with RunUntil; it is not safe for concurrent use (one
// simulation, one driver goroutine).
type Coordinator struct {
	engines []*des.Engine
	window  float64
	// inbound[s] lists the cross-shard ports delivering INTO shard s, in
	// ascending global link order; shard s drains them at window start.
	inbound [][]*des.Port
	// xports lists every cross-shard port once, for the barrier-side
	// mailbox flip.
	xports []*des.Port

	// OnBarrier, when set, runs single-threaded at every window boundary
	// (and after the final inclusive step) with all shard clocks equal to t.
	// Chaos oracles and fault injection hook here.
	OnBarrier func(t float64)
}

// New builds a coordinator over the given shard engines with window width
// Δ (seconds). Δ must be positive and no larger than the propagation delay
// of any cross-shard link the caller registers.
func New(engines []*des.Engine, window float64) *Coordinator {
	if len(engines) == 0 {
		panic("despart: no engines")
	}
	if window <= 0 {
		panic(fmt.Sprintf("despart: window must be positive, got %g", window))
	}
	return &Coordinator{
		engines: engines,
		window:  window,
		inbound: make([][]*des.Port, len(engines)),
	}
}

// Shards reports the number of engine shards.
func (c *Coordinator) Shards() int { return len(c.engines) }

// Window reports the conservative window width Δ.
func (c *Coordinator) Window() float64 { return c.window }

// AddInbound registers a cross-shard port delivering into shard s. Ports
// must be registered in ascending global link order (the drain order is
// part of the deterministic schedule). The port's propagation delay must
// cover the window — that inequality is the whole correctness argument, so
// a violation panics at wiring time rather than corrupting a run.
func (c *Coordinator) AddInbound(s int, p *des.Port) {
	if p.Prop < c.window {
		panic(fmt.Sprintf("despart: link %d->%d prop %g below window %g breaks lookahead",
			p.From, p.To, p.Prop, c.window))
	}
	c.inbound[s] = append(c.inbound[s], p)
	c.xports = append(c.xports, p)
}

// runShard advances one shard through its window: drain the inbound
// mailboxes published at the barrier, then run events strictly below the
// boundary (or inclusively for the final step).
func (c *Coordinator) runShard(s int, boundary float64, inclusive bool) {
	for _, p := range c.inbound[s] {
		p.DrainInbox()
	}
	if inclusive {
		c.engines[s].Run(boundary)
	} else {
		c.engines[s].RunBelow(boundary)
	}
}

// phase runs one window's shard work, on worker goroutines when the
// simpool budget has spare slots and inline otherwise. Shard s is handled
// by worker s%workers, so the assignment is deterministic (the work each
// shard does never depends on which goroutine ran it — this only balances
// load).
func (c *Coordinator) phase(workers int, boundary float64, inclusive bool) {
	if workers <= 1 {
		for s := range c.engines {
			c.runShard(s, boundary, inclusive)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := w; s < len(c.engines); s += workers {
				c.runShard(s, boundary, inclusive)
			}
		}()
	}
	for s := 0; s < len(c.engines); s += workers {
		c.runShard(s, boundary, inclusive)
	}
	wg.Wait()
}

// RunUntil advances every shard to time t (inclusive, like des.Engine.Run):
// whole windows of width Δ with barriers in between, then a final
// inclusive step that fires events at exactly t. On return all shard
// clocks equal t and OnBarrier has run at every boundary.
func (c *Coordinator) RunUntil(t float64) {
	tok := simpool.TryAcquire(len(c.engines) - 1)
	defer tok.Release()
	workers := 1 + tok.Held()
	if workers > len(c.engines) {
		workers = len(c.engines)
	}
	for {
		now := c.engines[0].Now()
		if now >= t {
			break
		}
		boundary := now + c.window
		if boundary >= t {
			break
		}
		c.flipMail()
		c.phase(workers, boundary, false)
		if c.OnBarrier != nil {
			c.OnBarrier(boundary)
		}
	}
	c.flipMail()
	c.phase(workers, t, true)
	if c.OnBarrier != nil {
		c.OnBarrier(t)
	}
}

// flipMail publishes every cross-shard mailbox to its receiver. Runs
// single-threaded between phases — the only moment both mailbox halves of
// a port may be touched by one goroutine.
func (c *Coordinator) flipMail() {
	for _, p := range c.xports {
		p.FlipMail()
	}
}
