// Package protonet is a lightweight message-passing harness for driving the
// PDA/MPDA state machines outside the packet simulator. It delivers LSU
// messages between protocol instances with the only guarantee the paper's
// link model provides — reliable per-link FIFO order — while interleaving
// deliveries across links in a seeded random order. Randomized interleaving
// explores many asynchronous schedules, which is exactly what the loop-free
// invariant (Theorem 3) must survive; the packet simulator then exercises
// the same code with realistic timing.
package protonet

import (
	"fmt"
	"sort"

	"minroute/internal/graph"
	"minroute/internal/lsu"
	"minroute/internal/rng"
)

// Node is a routing-protocol instance (PDA or MPDA router).
type Node interface {
	HandleLSU(m *lsu.Msg)
	LinkUp(k graph.NodeID, cost float64)
	LinkCostChange(k graph.NodeID, cost float64)
	LinkDown(k graph.NodeID)
}

// Perturb configures control-plane perturbation of the raw channel beneath
// the reliable-FIFO abstraction the paper assumes. A lost frame leaves the
// message at the head of its link queue to be retried on a later scheduling
// round — exactly the retransmission path of the underlying reliable
// protocol, with the retry bound making every loss a bounded delay. A
// duplicated frame arrives at the receiver twice, but the ARQ layer's
// sequence numbering detects the copy and discards it before the routing
// process runs: the duplicate consumes a channel attempt, never a protocol
// event. That is deliberate — MPDA's ACK bookkeeping (like the paper's link
// model) assumes exactly-once delivery, and a duplicate surfacing above the
// ARQ layer would mint a spurious ACK credit and break the LFI. Per-link
// FIFO order is preserved in all cases: the fault layer perturbs timing
// ("received correctly and in the proper sequence" is what the ARQ layer
// restores, not what the raw channel provides), so what the protocol
// observes is only bounded extra delay.
type Perturb struct {
	// LossProb is the per-attempt probability that the frame is lost and the
	// message must be retransmitted later.
	LossProb float64
	// DupProb is the per-delivery probability that the frame arrives twice;
	// the receiver's ARQ layer discards the second copy.
	DupProb float64
	// MaxAttempts caps delivery attempts per message (loss count + the final
	// delivery); <= 0 selects DefaultMaxAttempts. The cap bounds how long a
	// message can be delayed, so perturbed runs still quiesce.
	MaxAttempts int
}

// DefaultMaxAttempts bounds per-message delivery attempts under Perturb.
const DefaultMaxAttempts = 4

// Net connects protocol instances over a topology.
type Net struct {
	g      *graph.Graph
	nodes  map[graph.NodeID]Node
	queues map[[2]graph.NodeID][]*lsu.Msg
	r      *rng.Source
	// OnDeliver, when set, runs after every single message delivery; tests
	// install invariant checks (e.g. instantaneous loop-freedom) here.
	OnDeliver func()
	// OnMessage, when set, observes each message just before the receiver
	// processes it: the link endpoints, the entry count, and whether the
	// message carries an ACK credit. Telemetry hooks here.
	OnMessage func(from, to graph.NodeID, entries int, ack bool)
	delivered int
	attempts  int
	perturb   Perturb
	// headLoss counts how many times the head message of each link queue has
	// been lost, enforcing Perturb.MaxAttempts.
	headLoss map[[2]graph.NodeID]int
}

// New returns a harness over g with a seeded interleaving order.
func New(g *graph.Graph, seed uint64) *Net {
	return &Net{
		g:        g,
		nodes:    make(map[graph.NodeID]Node),
		queues:   make(map[[2]graph.NodeID][]*lsu.Msg),
		r:        rng.New(seed),
		headLoss: make(map[[2]graph.NodeID]int),
	}
}

// SetPerturb installs (or, with the zero value, removes) control-plane
// perturbation. Takes effect from the next delivery attempt.
func (n *Net) SetPerturb(p Perturb) { n.perturb = p }

// Attach registers the protocol instance for router id.
func (n *Net) Attach(id graph.NodeID, node Node) {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("protonet: node %d attached twice", id))
	}
	n.nodes[id] = node
}

// Detach removes the protocol instance for router id, so that a fresh
// instance can be Attached in its place — the crash/restart lifecycle. The
// caller is responsible for failing the node's links first; detaching a node
// that still has live links panics, because its queues would dangle.
func (n *Net) Detach(id graph.NodeID) {
	if _, ok := n.nodes[id]; !ok {
		panic(fmt.Sprintf("protonet: Detach of unattached node %d", id))
	}
	if len(n.g.Neighbors(id)) > 0 {
		panic(fmt.Sprintf("protonet: Detach of node %d with live links", id))
	}
	delete(n.nodes, id)
}

// Sender returns the Sender closure for router from: it enqueues messages
// on the from→to link.
func (n *Net) Sender(from graph.NodeID) func(to graph.NodeID, m *lsu.Msg) {
	return func(to graph.NodeID, m *lsu.Msg) {
		if _, ok := n.g.Link(from, to); !ok {
			return // link vanished under the protocol; message is lost
		}
		key := [2]graph.NodeID{from, to}
		n.queues[key] = append(n.queues[key], m)
	}
}

// BringUpAll announces every adjacent link to both endpoints with the cost
// given by costOf, in deterministic node order; delivery interleaving stays
// random.
func (n *Net) BringUpAll(costOf func(l *graph.Link) float64) {
	for _, l := range n.g.Links() {
		n.nodes[l.From].LinkUp(l.To, costOf(l))
	}
}

// Step delivers one message from a randomly chosen non-empty link queue,
// respecting per-link FIFO order. It reports false when all queues are
// empty.
func (n *Net) Step() bool {
	keys := n.nonEmpty()
	if len(keys) == 0 {
		return false
	}
	key := keys[n.r.Intn(len(keys))]
	q := n.queues[key]
	m := q[0]
	n.attempts++
	if n.perturb.LossProb > 0 {
		max := n.perturb.MaxAttempts
		if max <= 0 {
			max = DefaultMaxAttempts
		}
		if n.headLoss[key]+1 < max && n.r.Float64() < n.perturb.LossProb {
			// Frame lost. The message stays at the head of its queue and will
			// be retried on a later round — the ARQ retransmission, seen from
			// above as a bounded extra delay. FIFO order is untouched.
			n.headLoss[key]++
			return true
		}
	}
	delete(n.headLoss, key)
	if len(q) == 1 {
		delete(n.queues, key)
	} else {
		n.queues[key] = q[1:]
	}
	if n.OnMessage != nil {
		n.OnMessage(key[0], key[1], len(m.Entries), m.Ack)
	}
	n.nodes[key[1]].HandleLSU(m)
	n.delivered++
	if n.OnDeliver != nil {
		n.OnDeliver()
	}
	if n.perturb.DupProb > 0 && n.r.Float64() < n.perturb.DupProb {
		// Duplicate frame: the copy reaches the receiver's ARQ layer, which
		// recognizes the repeated sequence number and discards it. The channel
		// spent an attempt but the protocol never sees the copy.
		n.attempts++
	}
	return true
}

func (n *Net) nonEmpty() [][2]graph.NodeID {
	keys := make([][2]graph.NodeID, 0, len(n.queues))
	//lint:maporder-ok keys are collected and sorted below before the seeded choice
	for k, q := range n.queues {
		if len(q) > 0 {
			keys = append(keys, k)
		}
	}
	// Deterministic candidate order so the seeded choice is reproducible.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// Run delivers messages until quiescence, panicking after maxDeliveries as
// a non-termination guard (the bound covers delivery attempts, so perturbed
// runs cannot spin on retransmissions either). It returns the number of
// messages delivered.
func (n *Net) Run(maxDeliveries int) int {
	startAttempts := n.attempts
	startDelivered := n.delivered
	for n.Step() {
		if n.attempts-startAttempts > maxDeliveries {
			panic("protonet: protocol did not quiesce within delivery budget")
		}
	}
	return n.delivered - startDelivered
}

// Delivered returns the total number of messages delivered so far.
func (n *Net) Delivered() int { return n.delivered }

// Attempts returns the total number of delivery attempts, including frames
// lost by the perturbation layer. Attempts == Delivered when unperturbed.
func (n *Net) Attempts() int { return n.attempts }

// Pending returns the number of undelivered messages.
func (n *Net) Pending() int {
	total := 0
	for _, q := range n.queues {
		total += len(q)
	}
	return total
}

// ChangeCost updates the cost of directed link a→b and notifies a.
func (n *Net) ChangeCost(a, b graph.NodeID, cost float64) {
	if _, ok := n.g.Link(a, b); !ok {
		panic("protonet: ChangeCost on missing link")
	}
	n.nodes[a].LinkCostChange(b, cost)
}

// FailLink removes the duplex link a↔b from the topology, drops any queued
// messages on it, and notifies both endpoints.
func (n *Net) FailLink(a, b graph.NodeID) {
	n.g.RemoveLink(a, b)
	n.g.RemoveLink(b, a)
	delete(n.queues, [2]graph.NodeID{a, b})
	delete(n.queues, [2]graph.NodeID{b, a})
	delete(n.headLoss, [2]graph.NodeID{a, b})
	delete(n.headLoss, [2]graph.NodeID{b, a})
	n.nodes[a].LinkDown(b)
	n.nodes[b].LinkDown(a)
}

// RestoreLink re-adds the duplex link a↔b and notifies both endpoints.
func (n *Net) RestoreLink(a, b graph.NodeID, capacity, prop, cost float64) {
	if err := n.g.AddDuplex(a, b, capacity, prop); err != nil {
		panic("protonet: RestoreLink: " + err.Error())
	}
	n.nodes[a].LinkUp(b, cost)
	n.nodes[b].LinkUp(a, cost)
}
