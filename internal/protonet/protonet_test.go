package protonet

import (
	"testing"

	"minroute/internal/graph"
	"minroute/internal/lsu"
	"minroute/internal/topo"
)

// recorder is a Node that records events and can reply.
type recorder struct {
	id       graph.NodeID
	received []*lsu.Msg
	ups      []graph.NodeID
	downs    []graph.NodeID
	costs    map[graph.NodeID]float64
	onLSU    func(m *lsu.Msg)
}

func newRecorder(id graph.NodeID) *recorder {
	return &recorder{id: id, costs: make(map[graph.NodeID]float64)}
}

func (r *recorder) HandleLSU(m *lsu.Msg) {
	r.received = append(r.received, m)
	if r.onLSU != nil {
		r.onLSU(m)
	}
}
func (r *recorder) LinkUp(k graph.NodeID, cost float64)         { r.ups = append(r.ups, k); r.costs[k] = cost }
func (r *recorder) LinkCostChange(k graph.NodeID, cost float64) { r.costs[k] = cost }
func (r *recorder) LinkDown(k graph.NodeID)                     { r.downs = append(r.downs, k) }

func ring3(t *testing.T) (*Net, map[graph.NodeID]*recorder) {
	t.Helper()
	g := topo.Ring(3, 1e6, 1e-3)
	net := New(g, 1)
	recs := map[graph.NodeID]*recorder{}
	for _, id := range g.Nodes() {
		r := newRecorder(id)
		recs[id] = r
		net.Attach(id, r)
	}
	return net, recs
}

func TestBringUpAllNotifiesBothEnds(t *testing.T) {
	net, recs := ring3(t)
	net.BringUpAll(func(l *graph.Link) float64 { return 1 })
	for id, r := range recs {
		if len(r.ups) != 2 {
			t.Fatalf("node %d saw %d link-ups, want 2", id, len(r.ups))
		}
	}
}

func TestPerLinkFIFO(t *testing.T) {
	net, recs := ring3(t)
	send := net.Sender(0)
	for i := 0; i < 5; i++ {
		send(1, &lsu.Msg{From: 0, Entries: []lsu.Entry{{Op: lsu.OpAdd, Head: 0, Tail: graph.NodeID(i), Cost: float64(i)}}})
	}
	net.Run(100)
	got := recs[1].received
	if len(got) != 5 {
		t.Fatalf("delivered %d messages", len(got))
	}
	for i, m := range got {
		if m.Entries[0].Tail != graph.NodeID(i) {
			t.Fatalf("FIFO violated: message %d has tail %d", i, m.Entries[0].Tail)
		}
	}
}

func TestSenderDropsWhenLinkMissing(t *testing.T) {
	net, recs := ring3(t)
	send := net.Sender(0)
	net.FailLink(0, 1)
	send(1, &lsu.Msg{From: 0, Ack: true})
	net.Run(10)
	if len(recs[1].received) != 0 {
		t.Fatal("message crossed a failed link")
	}
}

func TestFailLinkDropsQueuedAndNotifies(t *testing.T) {
	net, recs := ring3(t)
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	net.FailLink(0, 1)
	if net.Pending() != 0 {
		t.Fatalf("queued messages survived failure: %d", net.Pending())
	}
	if len(recs[0].downs) != 1 || recs[0].downs[0] != 1 {
		t.Fatalf("node 0 downs = %v", recs[0].downs)
	}
	if len(recs[1].downs) != 1 || recs[1].downs[0] != 0 {
		t.Fatalf("node 1 downs = %v", recs[1].downs)
	}
}

func TestRestoreLink(t *testing.T) {
	net, recs := ring3(t)
	net.FailLink(0, 1)
	net.RestoreLink(0, 1, 1e6, 1e-3, 2.0)
	if recs[0].costs[1] != 2.0 || recs[1].costs[0] != 2.0 {
		t.Fatal("restore did not notify both ends")
	}
	// The link must carry messages again.
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	net.Run(10)
	if len(recs[1].received) != 1 {
		t.Fatal("restored link does not deliver")
	}
}

func TestChangeCostNotifiesOwner(t *testing.T) {
	net, recs := ring3(t)
	net.ChangeCost(0, 1, 9.5)
	if recs[0].costs[1] != 9.5 {
		t.Fatal("cost change not delivered")
	}
}

func TestChangeCostMissingLinkPanics(t *testing.T) {
	net, _ := ring3(t)
	net.FailLink(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("ChangeCost on missing link did not panic")
		}
	}()
	net.ChangeCost(0, 1, 1)
}

func TestAttachTwicePanics(t *testing.T) {
	net, _ := ring3(t)
	defer func() {
		if recover() == nil {
			t.Fatal("double Attach did not panic")
		}
	}()
	net.Attach(0, newRecorder(0))
}

func TestRunBudgetPanics(t *testing.T) {
	net, recs := ring3(t)
	// Infinite chatter: each delivery triggers a new message.
	recs[1].onLSU = func(m *lsu.Msg) {
		net.Sender(1)(0, &lsu.Msg{From: 1, Ack: true})
	}
	recs[0].onLSU = func(m *lsu.Msg) {
		net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	}
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	defer func() {
		if recover() == nil {
			t.Fatal("runaway protocol did not trip the budget")
		}
	}()
	net.Run(100)
}

func TestDeliveredCounterAndOnDeliver(t *testing.T) {
	net, _ := ring3(t)
	calls := 0
	net.OnDeliver = func() { calls++ }
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	net.Sender(1)(2, &lsu.Msg{From: 1, Ack: true})
	n := net.Run(100)
	if n != 2 || net.Delivered() != 2 || calls != 2 {
		t.Fatalf("delivered=%d total=%d hooks=%d", n, net.Delivered(), calls)
	}
}

func TestPerturbLossDelaysButDelivers(t *testing.T) {
	net, recs := ring3(t)
	net.SetPerturb(Perturb{LossProb: 1}) // every attempt lost until the cap forces delivery
	for i := 0; i < 3; i++ {
		net.Sender(0)(1, &lsu.Msg{From: 0, Entries: []lsu.Entry{{Op: lsu.OpAdd, Head: 0, Tail: graph.NodeID(i), Cost: 1}}})
	}
	net.Run(100)
	got := recs[1].received
	if len(got) != 3 {
		t.Fatalf("delivered %d messages under total loss, want 3 (eventual delivery)", len(got))
	}
	for i, m := range got {
		if m.Entries[0].Tail != graph.NodeID(i) {
			t.Fatalf("retransmission broke FIFO: message %d has tail %d", i, m.Entries[0].Tail)
		}
	}
	// Each message burns MaxAttempts-1 losses plus the forced delivery.
	if want := 3 * DefaultMaxAttempts; net.Attempts() != want {
		t.Fatalf("attempts = %d, want %d", net.Attempts(), want)
	}
}

func TestPerturbDupNeverReachesProtocol(t *testing.T) {
	net, recs := ring3(t)
	net.SetPerturb(Perturb{DupProb: 1}) // every frame duplicated on the wire
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	hooks := 0
	net.OnDeliver = func() { hooks++ }
	net.Run(100)
	// The ARQ receiver discards the duplicate copies: the protocol sees each
	// message exactly once, while the channel pays an attempt per copy.
	if len(recs[1].received) != 2 || net.Delivered() != 2 || hooks != 2 {
		t.Fatalf("received=%d delivered=%d hooks=%d, want 2 each (exactly-once)",
			len(recs[1].received), net.Delivered(), hooks)
	}
	if net.Attempts() != 4 {
		t.Fatalf("attempts = %d, want 4 (each frame + its duplicate)", net.Attempts())
	}
}

func TestPerturbMaxAttemptsOverride(t *testing.T) {
	net, recs := ring3(t)
	net.SetPerturb(Perturb{LossProb: 1, MaxAttempts: 2})
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	net.Run(100)
	if len(recs[1].received) != 1 || net.Attempts() != 2 {
		t.Fatalf("received=%d attempts=%d, want 1 message in 2 attempts", len(recs[1].received), net.Attempts())
	}
}

func TestFailLinkResetsLossCounter(t *testing.T) {
	net, recs := ring3(t)
	net.SetPerturb(Perturb{LossProb: 1})
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	net.Step() // one loss accrues on the head message
	net.FailLink(0, 1)
	net.RestoreLink(0, 1, 1e6, 1e-3, 1)
	net.Sender(0)(1, &lsu.Msg{From: 0, Ack: true})
	before := net.Attempts()
	net.Run(100)
	// A fresh message on the restored link gets the full retry budget.
	if got := net.Attempts() - before; got != DefaultMaxAttempts {
		t.Fatalf("attempts after restore = %d, want %d", got, DefaultMaxAttempts)
	}
	if len(recs[1].received) != 1 {
		t.Fatalf("received %d messages", len(recs[1].received))
	}
}

func TestDetachAllowsReattach(t *testing.T) {
	net, _ := ring3(t)
	net.FailLink(0, 1)
	net.FailLink(0, 2)
	net.Detach(0)
	net.Attach(0, newRecorder(0)) // restart: a fresh instance takes the slot
}

func TestDetachWithLiveLinksPanics(t *testing.T) {
	net, _ := ring3(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Detach with live links did not panic")
		}
	}()
	net.Detach(0)
}

func TestDetachUnattachedPanics(t *testing.T) {
	net, _ := ring3(t)
	net.FailLink(0, 1)
	net.FailLink(0, 2)
	net.Detach(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double Detach did not panic")
		}
	}()
	net.Detach(0)
}
