// Package traffic generates offered load for the simulator: Poisson
// sources (the stationary experiments of Section 5.1), on-off bursty
// sources (the dynamic-traffic experiments), and constant-bit-rate sources
// (calibration tests). All sources draw from explicit RNG streams so runs
// are reproducible.
package traffic

import (
	"minroute/internal/des"
	"minroute/internal/rng"
)

// Emit delivers one generated packet of the given size in bits.
type Emit func(bits float64)

// Source generates packets once started. Start schedules the first arrival;
// generation then continues for the lifetime of the engine.
type Source interface {
	Start(eng *des.Engine, r *rng.Source, emit Emit)
}

// Poisson is a stationary source: exponential interarrival times and
// exponential packet sizes, so a single bottleneck behaves as M/M/1.
type Poisson struct {
	// RateBits is the average offered load in bits per second.
	RateBits float64
	// MeanPacketBits is the average packet size.
	MeanPacketBits float64
}

// Start implements Source.
func (p Poisson) Start(eng *des.Engine, r *rng.Source, emit Emit) {
	if p.RateBits <= 0 || p.MeanPacketBits <= 0 {
		return
	}
	meanGap := p.MeanPacketBits / p.RateBits
	var arrive func()
	arrive = func() {
		emit(r.Exp(p.MeanPacketBits))
		eng.After(r.Exp(meanGap), arrive)
	}
	eng.After(r.Exp(meanGap), arrive)
}

// OnOff is a bursty source alternating exponential ON and OFF periods.
// During ON it emits Poisson traffic at PeakFactor times the average rate;
// the duty cycle is set so the long-run average equals RateBits. The
// paper's dynamic experiments use such sources to show that MP absorbs
// "short bursts of traffic" that single-path routing cannot.
type OnOff struct {
	// RateBits is the long-run average offered load in bits per second.
	RateBits float64
	// MeanPacketBits is the average packet size.
	MeanPacketBits float64
	// PeakFactor is the ON-period rate divided by RateBits; must be > 1.
	PeakFactor float64
	// MeanOn is the average ON-period length in seconds.
	MeanOn float64
}

// Start implements Source.
func (o OnOff) Start(eng *des.Engine, r *rng.Source, emit Emit) {
	if o.RateBits <= 0 || o.MeanPacketBits <= 0 {
		return
	}
	peak := o.PeakFactor
	if peak <= 1 {
		peak = 2
	}
	meanOn := o.MeanOn
	if meanOn <= 0 {
		meanOn = 0.5
	}
	// Duty cycle d satisfies d*peak = 1, so meanOff = meanOn*(peak-1).
	meanOff := meanOn * (peak - 1)
	peakGap := o.MeanPacketBits / (o.RateBits * peak)

	var onPhase func(remaining float64)
	var offPhase func()
	onPhase = func(remaining float64) {
		gap := r.Exp(peakGap)
		if gap >= remaining {
			eng.After(remaining, offPhase)
			return
		}
		eng.After(gap, func() {
			emit(r.Exp(o.MeanPacketBits))
			onPhase(remaining - gap)
		})
	}
	offPhase = func() {
		eng.After(r.Exp(meanOff), func() { onPhase(r.Exp(meanOn)) })
	}
	// Start in a random phase of the cycle.
	if r.Float64() < 1/peak {
		onPhase(r.Exp(meanOn))
	} else {
		offPhase()
	}
}

// CBR emits fixed-size packets at a fixed interval. Deterministic; used for
// calibration tests.
type CBR struct {
	RateBits   float64
	PacketBits float64
}

// Start implements Source.
func (c CBR) Start(eng *des.Engine, r *rng.Source, emit Emit) {
	if c.RateBits <= 0 || c.PacketBits <= 0 {
		return
	}
	gap := c.PacketBits / c.RateBits
	var arrive func()
	arrive = func() {
		emit(c.PacketBits)
		eng.After(gap, arrive)
	}
	// Random initial phase avoids lockstep between CBR sources.
	eng.After(r.Float64()*gap, arrive)
}
