package traffic

import (
	"math"
	"testing"

	"minroute/internal/des"
	"minroute/internal/rng"
)

// measure runs src for dur seconds and returns (packets, totalBits).
func measure(t *testing.T, src Source, seed uint64, dur float64) (int, float64) {
	t.Helper()
	eng := des.NewEngine(seed)
	n, bits := 0, 0.0
	src.Start(eng, rng.New(seed), func(b float64) {
		n++
		bits += b
	})
	eng.Run(dur)
	return n, bits
}

func TestPoissonAverageRate(t *testing.T) {
	const rate, mean = 2e6, 8000.0
	n, bits := measure(t, Poisson{RateBits: rate, MeanPacketBits: mean}, 1, 100)
	gotRate := bits / 100
	if rel := math.Abs(gotRate-rate) / rate; rel > 0.05 {
		t.Fatalf("poisson rate = %v, want %v (rel %v)", gotRate, rate, rel)
	}
	wantPkts := rate / mean * 100
	if rel := math.Abs(float64(n)-wantPkts) / wantPkts; rel > 0.05 {
		t.Fatalf("poisson packets = %d, want ~%v", n, wantPkts)
	}
}

func TestPoissonExponentialSizes(t *testing.T) {
	const mean = 8000.0
	eng := des.NewEngine(2)
	var sizes []float64
	Poisson{RateBits: 1e6, MeanPacketBits: mean}.Start(eng, rng.New(2), func(b float64) {
		sizes = append(sizes, b)
	})
	eng.Run(200)
	sum, sumSq := 0.0, 0.0
	for _, s := range sizes {
		sum += s
		sumSq += s * s
	}
	n := float64(len(sizes))
	m := sum / n
	v := sumSq/n - m*m
	// Exponential: variance = mean^2.
	if math.Abs(m-mean)/mean > 0.05 {
		t.Fatalf("mean size = %v", m)
	}
	if math.Abs(v-mean*mean)/(mean*mean) > 0.15 {
		t.Fatalf("size variance = %v, want ~%v", v, mean*mean)
	}
}

func TestPoissonZeroRateNoOp(t *testing.T) {
	if n, _ := measure(t, Poisson{RateBits: 0, MeanPacketBits: 8000}, 3, 10); n != 0 {
		t.Fatalf("zero-rate source emitted %d packets", n)
	}
	if n, _ := measure(t, Poisson{RateBits: 1e6, MeanPacketBits: 0}, 3, 10); n != 0 {
		t.Fatalf("zero-size source emitted %d packets", n)
	}
}

func TestOnOffLongRunAverage(t *testing.T) {
	const rate = 2e6
	src := OnOff{RateBits: rate, MeanPacketBits: 8000, PeakFactor: 4, MeanOn: 0.25}
	_, bits := measure(t, src, 4, 500)
	gotRate := bits / 500
	if rel := math.Abs(gotRate-rate) / rate; rel > 0.10 {
		t.Fatalf("on-off long-run rate = %v, want %v (rel %v)", gotRate, rate, rel)
	}
}

func TestOnOffIsBursty(t *testing.T) {
	// Count packets per 100 ms bin; an on-off source must show bins near
	// zero and bins near the peak rate.
	src := OnOff{RateBits: 2e6, MeanPacketBits: 8000, PeakFactor: 4, MeanOn: 0.5}
	eng := des.NewEngine(5)
	bins := make([]int, 600)
	src.Start(eng, rng.New(5), func(b float64) {
		idx := int(eng.Now() * 10)
		if idx < len(bins) {
			bins[idx]++
		}
	})
	eng.Run(60)
	quiet, busy := 0, 0
	peakPer100ms := 2e6 * 4 / 8000 / 10 // 100 pkts
	for _, c := range bins {
		if c == 0 {
			quiet++
		}
		if float64(c) > 0.5*peakPer100ms {
			busy++
		}
	}
	if quiet < 50 || busy < 50 {
		t.Fatalf("not bursty: %d quiet bins, %d busy bins", quiet, busy)
	}
}

func TestOnOffDefaults(t *testing.T) {
	// PeakFactor <= 1 and MeanOn <= 0 fall back to sane defaults.
	src := OnOff{RateBits: 1e6, MeanPacketBits: 8000, PeakFactor: 0.5, MeanOn: -1}
	n, _ := measure(t, src, 6, 100)
	if n == 0 {
		t.Fatal("defaulted on-off source emitted nothing")
	}
}

func TestCBRDeterministicSpacing(t *testing.T) {
	eng := des.NewEngine(7)
	var times []float64
	CBR{RateBits: 8e5, PacketBits: 8000}.Start(eng, rng.New(7), func(b float64) {
		if b != 8000 {
			t.Fatalf("CBR size = %v", b)
		}
		times = append(times, eng.Now())
	})
	eng.Run(1)
	if len(times) < 50 {
		t.Fatalf("CBR emitted %d packets in 1s, want ~100", len(times))
	}
	gap := 8000.0 / 8e5
	for i := 2; i < len(times); i++ {
		if math.Abs((times[i]-times[i-1])-gap) > 1e-9 {
			t.Fatalf("CBR gap %v at %d, want %v", times[i]-times[i-1], i, gap)
		}
	}
}

func TestCBRZeroRateNoOp(t *testing.T) {
	if n, _ := measure(t, CBR{RateBits: 0, PacketBits: 8000}, 8, 10); n != 0 {
		t.Fatal("zero-rate CBR emitted packets")
	}
}
