package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"minroute/internal/rng"
)

func TestDelayStatsBasic(t *testing.T) {
	var s DelayStats
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 2.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got, want := s.Variance(), 1.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, want)
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestDelayStatsEmpty(t *testing.T) {
	var s DelayStats
	for name, v := range map[string]float64{
		"mean": s.Mean(), "variance": s.Variance(),
		"min": s.Min(), "max": s.Max(), "p50": s.Percentile(50),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty stats = %v, want NaN", name, v)
		}
	}
	if s.String() != "no samples" {
		t.Errorf("String = %q", s.String())
	}
}

func TestDelayStatsPercentile(t *testing.T) {
	var s DelayStats
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(50); p < 45 || p > 55 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(95); p < 90 || p > 100 {
		t.Fatalf("p95 = %v", p)
	}
	if !math.IsNaN(s.Percentile(0)) || !math.IsNaN(s.Percentile(100)) {
		t.Fatal("percentile bounds not rejected")
	}
}

func TestDelayStatsReservoirLargeStream(t *testing.T) {
	var s DelayStats
	r := rng.New(9)
	for i := 0; i < 100000; i++ {
		s.Add(r.Float64())
	}
	// Uniform[0,1): p50 ~ 0.5 within reservoir error.
	if p := s.Percentile(50); math.Abs(p-0.5) > 0.05 {
		t.Fatalf("reservoir p50 = %v", p)
	}
	if m := s.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("mean = %v", m)
	}
}

func TestDelayStatsReset(t *testing.T) {
	var s DelayStats
	s.Add(5)
	s.Reset()
	if s.Count() != 0 || !math.IsNaN(s.Mean()) {
		t.Fatal("Reset did not clear")
	}
}

func TestDelayStatsString(t *testing.T) {
	var s DelayStats
	s.Add(0.001)
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestPropertyVarianceNonNegative(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		r := rng.New(seed)
		var s DelayStats
		n := int(n8) + 1
		for i := 0; i < n; i++ {
			s.Add(r.Float64() * 100)
		}
		v := s.Variance()
		return v >= 0 && !math.IsNaN(v) && s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	// MeanAfter(8): values 64, 81 -> 72.5.
	if m := s.MeanAfter(8); m != 72.5 {
		t.Fatalf("MeanAfter = %v", m)
	}
	if !math.IsNaN(s.MeanAfter(100)) {
		t.Fatal("MeanAfter beyond data not NaN")
	}
	w := s.Window(2, 5)
	if w.Len() != 3 || w.T[0] != 2 || w.T[2] != 4 {
		t.Fatalf("window = %+v", w)
	}
}
