package metrics

import "testing"

// feedRamp pushes a deterministic 0..n-1 ramp, three reservoirs deep, so
// the percentile estimates depend entirely on the reservoir's accept/evict
// decisions — i.e. on the sampling seed.
func feedRamp(s *DelayStats) {
	for i := 0; i < 3*reservoirSize; i++ {
		s.Add(float64(i))
	}
}

// TestReservoirQuantilesPinned is the regression test for the shared-seed
// bug: every flow's reservoir used to start from the same fixed xorshift
// state, making all flows sample in lockstep. The pinned values also freeze
// the sampling stream of flow 3 — any change to the seeding or the xorshift
// taps shows up here.
func TestReservoirQuantilesPinned(t *testing.T) {
	s := NewDelayStats(3)
	feedRamp(s)
	for _, tc := range []struct{ p, want float64 }{
		{5, 655}, {50, 6076}, {95, 11681},
	} {
		if got := s.Percentile(tc.p); got != tc.want {
			t.Fatalf("flow-3 ramp p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestReservoirSeedsDecorrelated(t *testing.T) {
	a, b := NewDelayStats(0), NewDelayStats(1)
	feedRamp(a)
	feedRamp(b)
	same := 0
	for _, p := range []float64{5, 25, 50, 75, 95} {
		if a.Percentile(p) == b.Percentile(p) {
			same++
		}
	}
	if same == 5 {
		t.Fatal("flows 0 and 1 sampled identically: reservoir seeds are correlated")
	}
	// Identical flow IDs must still sample identically (determinism).
	c := NewDelayStats(0)
	feedRamp(c)
	for _, p := range []float64{5, 50, 95} {
		if a.Percentile(p) != c.Percentile(p) {
			t.Fatalf("flow 0 p%v differs across identical runs", p)
		}
	}
}

func TestResetPreservesSeed(t *testing.T) {
	a := NewDelayStats(42)
	feedRamp(a)
	b := NewDelayStats(42)
	b.Add(1)
	b.Add(2)
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("count after Reset = %d", b.Count())
	}
	feedRamp(b)
	for _, p := range []float64{5, 50, 95} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%v after Reset diverged: Reset lost the flow seed", p)
		}
	}
}
