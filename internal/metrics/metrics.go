// Package metrics accumulates the measurements the paper reports: per-flow
// average end-to-end delays, plus distributional summaries and time series
// used by the extended experiments.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// DelayStats accumulates delay samples for one flow. The zero value is
// ready for use (with a fixed default reservoir seed); NewDelayStats gives
// each flow its own sampling stream.
type DelayStats struct {
	count  int64
	sum    float64
	sumSq  float64
	min    float64
	max    float64
	sample []float64 // reservoir for percentiles
	seen   int64
	rngs   uint64 // cheap xorshift state for reservoir sampling
	seed   uint64 // initial rngs value, preserved across Reset
}

const reservoirSize = 4096

// NewDelayStats returns stats whose reservoir-sampling stream is seeded
// from id (typically the flow index). Distinct flows previously shared one
// fixed seed, so their reservoirs made identical accept/evict decisions at
// identical sample counts — a correlated-sampling bias across every
// percentile the experiments report.
func NewDelayStats(id uint64) *DelayStats {
	seed := splitmix64(id)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &DelayStats{rngs: seed, seed: seed}
}

// splitmix64 is the standard 64-bit finalizer-style mixer: consecutive IDs
// map to decorrelated xorshift seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add records one delay sample in seconds.
func (s *DelayStats) Add(d float64) {
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if s.count == 0 || d > s.max {
		s.max = d
	}
	s.count++
	s.sum += d
	s.sumSq += d * d
	// Reservoir sampling keeps percentiles O(1) in memory.
	s.seen++
	if len(s.sample) < reservoirSize {
		s.sample = append(s.sample, d)
		return
	}
	if s.rngs == 0 {
		s.rngs = 0x9e3779b97f4a7c15
	}
	s.rngs ^= s.rngs << 13
	s.rngs ^= s.rngs >> 7
	s.rngs ^= s.rngs << 17
	if idx := s.rngs % uint64(s.seen); idx < reservoirSize {
		s.sample[idx] = d
	}
}

// Count returns the number of samples.
func (s *DelayStats) Count() int64 { return s.count }

// Mean returns the average delay, or NaN with no samples.
func (s *DelayStats) Mean() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.count)
}

// Variance returns the population variance, or NaN with no samples.
func (s *DelayStats) Variance() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	m := s.Mean()
	v := s.sumSq/float64(s.count) - m*m
	if v < 0 {
		v = 0 // FP cancellation guard
	}
	return v
}

// StdDev returns the standard deviation.
func (s *DelayStats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest sample, or NaN with no samples.
func (s *DelayStats) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample, or NaN with no samples.
func (s *DelayStats) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// Percentile returns the p-th percentile (0 < p < 100) estimated from the
// reservoir, or NaN with no samples.
func (s *DelayStats) Percentile(p float64) float64 {
	if len(s.sample) == 0 || p <= 0 || p >= 100 {
		return math.NaN()
	}
	tmp := append([]float64(nil), s.sample...)
	sort.Float64s(tmp)
	idx := int(math.Ceil(p/100*float64(len(tmp)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// Reset discards all samples (used at the end of warmup) but keeps the
// flow's sampling seed, so measurement-phase reservoirs stay per-flow
// decorrelated.
func (s *DelayStats) Reset() {
	seed := s.seed
	*s = DelayStats{rngs: seed, seed: seed}
}

// String renders a compact summary in milliseconds.
func (s *DelayStats) String() string {
	if s.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%.3fms p95=%.3fms max=%.3fms",
		s.count, s.Mean()*1e3, s.Percentile(95)*1e3, s.Max()*1e3)
}

// Series is an append-only (time, value) sequence, e.g. instantaneous
// delays or link utilizations over the run.
type Series struct {
	T []float64
	V []float64
}

// Add appends one point.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// MeanAfter averages the values with timestamps >= t0, or NaN when none.
func (s *Series) MeanAfter(t0 float64) float64 {
	sum, n := 0.0, 0
	for i, t := range s.T {
		if t >= t0 {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Window returns the points with t0 <= t < t1.
func (s *Series) Window(t0, t1 float64) *Series {
	out := &Series{}
	for i, t := range s.T {
		if t >= t0 && t < t1 {
			out.Add(t, s.V[i])
		}
	}
	return out
}
