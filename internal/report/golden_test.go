package report

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/telemetry"
)

// timelineSample is a small but fully featured event log: two routers plus
// a network-scope fault, ACTIVE spans (one of them unclosed), and ticks
// from every category.
func timelineSample() []telemetry.Event {
	mk := func(t float64, k telemetry.Kind, router graph.NodeID) telemetry.Event {
		return telemetry.NewEvent(t, k, router)
	}
	return []telemetry.Event{
		mk(0.0, telemetry.KindPhaseActive, 0),
		mk(0.2, telemetry.KindLSUSend, 0),
		mk(0.3, telemetry.KindLSURecv, 1),
		mk(0.4, telemetry.KindTableCommit, 1),
		mk(0.5, telemetry.KindPhasePassive, 0),
		mk(1.0, telemetry.KindFaultStart, graph.None),
		mk(1.2, telemetry.KindPktEnqueue, 1),
		mk(1.4, telemetry.KindDropQueue, 1),
		mk(1.5, telemetry.KindPhaseActive, 1), // left open: runs to the edge
		mk(2.0, telemetry.KindFaultStop, graph.None),
	}
}

// checkGolden compares got against the checked-in golden, regenerating it
// when REPORT_UPDATE is set:
//
//	REPORT_UPDATE=1 go test -run TestGolden ./internal/report
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("REPORT_UPDATE") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with REPORT_UPDATE=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden (got %d bytes, want %d); rerun with REPORT_UPDATE=1 if intentional",
			name, len(got), len(want))
	}
}

// TestGoldenFigureSVG pins the delay-figure rendering byte for byte.
func TestGoldenFigureSVG(t *testing.T) {
	checkGolden(t, "figure.svg", sample().SVG(400, 300))
}

// TestGoldenTimelineSVG pins the telemetry timeline strip byte for byte.
func TestGoldenTimelineSVG(t *testing.T) {
	checkGolden(t, "timeline.svg", Timeline("timeline test", timelineSample(), 400, 0))
}

// TestTimelineWellFormed checks the structural properties that must hold
// for any input: parseable XML, one lane per router plus the network lane,
// spans for both ACTIVE windows, and category-colored ticks.
func TestTimelineWellFormed(t *testing.T) {
	svg := Timeline("t", timelineSample(), 0, 0)
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("timeline SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{
		">router 0<", ">router 1<", ">net<",
		"ACTIVE 0.0000-0.5000",
		"ACTIVE 1.5000-2.0000", // the dangling span closes at tMax
		timelineCatColor["chaos"],
		timelineCatColor["control"],
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("timeline SVG missing %q", want)
		}
	}
}

// TestTimelineEmpty renders without events: one placeholder lane, no panic.
func TestTimelineEmpty(t *testing.T) {
	svg := Timeline("empty", nil, 0, 0)
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("empty timeline did not render")
	}
}
