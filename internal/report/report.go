// Package report renders experiment results in the shape the paper
// presents them: per-flow average delays (flow IDs on the x-axis, one
// series per routing scheme), as aligned text tables, CSV, and quick ASCII
// charts for terminal inspection.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Figure is one reproduced table/figure: a matrix of per-flow values with
// one column per scheme.
type Figure struct {
	// ID names the paper artifact, e.g. "fig9".
	ID string
	// Title describes the experiment.
	Title string
	// Columns labels each series, e.g. "OPT", "MP-TL-10-TS-2".
	Columns []string
	// Rows labels each flow.
	Rows []string
	// Data[r][c] is the value (ms) for flow r under scheme c.
	Data [][]float64
	// Notes records observations (e.g. the paper's expected shape).
	Notes []string
}

// AddRow appends one flow's values.
func (f *Figure) AddRow(name string, values ...float64) {
	f.Rows = append(f.Rows, name)
	f.Data = append(f.Data, values)
}

// Column returns the values of one column.
func (f *Figure) Column(c int) []float64 {
	out := make([]float64, len(f.Data))
	for r := range f.Data {
		out[r] = f.Data[r][c]
	}
	return out
}

// ColumnMean averages one column, skipping NaNs.
func (f *Figure) ColumnMean(c int) float64 {
	sum, n := 0.0, 0
	for r := range f.Data {
		if v := f.Data[r][c]; !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Table renders an aligned text table with per-column means.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "%-18s", "flow")
	for _, c := range f.Columns {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteByte('\n')
	for r, name := range f.Rows {
		fmt.Fprintf(&b, "%-18s", name)
		for c := range f.Columns {
			fmt.Fprintf(&b, " %14.3f", f.Data[r][c])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-18s", "mean")
	for c := range f.Columns {
		fmt.Fprintf(&b, " %14.3f", f.ColumnMean(c))
	}
	b.WriteByte('\n')
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("flow")
	for _, c := range f.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for r, name := range f.Rows {
		b.WriteString(name)
		for c := range f.Columns {
			fmt.Fprintf(&b, ",%.6f", f.Data[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart renders a crude horizontal bar chart of one column per flow, for
// quick terminal comparison. width is the maximum bar length in cells.
func (f *Figure) Chart(width int) string {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for r := range f.Data {
		for c := range f.Columns {
			if v := f.Data[r][c]; !math.IsNaN(v) && v > max {
				max = v
			}
		}
	}
	if max == 0 {
		return "(no data)\n"
	}
	var b strings.Builder
	marks := []byte{'#', '*', '+', '.', 'o', 'x'}
	for r, name := range f.Rows {
		for c, col := range f.Columns {
			n := int(f.Data[r][c] / max * float64(width))
			if n < 0 || math.IsNaN(f.Data[r][c]) {
				n = 0
			}
			fmt.Fprintf(&b, "%-14s %-16s %s %.3f\n", name, col,
				strings.Repeat(string(marks[c%len(marks)]), n), f.Data[r][c])
		}
		_ = r
	}
	return b.String()
}

// Ratio returns the per-flow ratio column a over column b, skipping NaNs.
func (f *Figure) Ratio(a, b int) []float64 {
	out := make([]float64, len(f.Data))
	for r := range f.Data {
		out[r] = f.Data[r][a] / f.Data[r][b]
	}
	return out
}

// MaxRatio returns the largest finite per-flow ratio of column a over b.
func (f *Figure) MaxRatio(a, b int) float64 {
	max := math.Inf(-1)
	for _, v := range f.Ratio(a, b) {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
			max = v
		}
	}
	return max
}
