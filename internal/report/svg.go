package report

import (
	"fmt"
	"math"
	"strings"
)

// svgPalette holds fill colors for up to six series.
var svgPalette = []string{"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c"}

// SVG renders the figure as a standalone grouped-bar-chart SVG document —
// rows (flows) along the x-axis, one bar per scheme, a value axis with
// ticks, and a legend. Width and height are in pixels; non-positive values
// select 900x420.
func (f *Figure) SVG(width, height int) string {
	if width <= 0 {
		width = 900
	}
	if height <= 0 {
		height = 420
	}
	const (
		marginLeft   = 70
		marginRight  = 20
		marginTop    = 48
		marginBottom = 70
	)
	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)

	maxVal := 0.0
	for r := range f.Data {
		for c := range f.Columns {
			if v := f.Data[r][c]; !math.IsNaN(v) && !math.IsInf(v, 0) && v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	top := niceCeil(maxVal)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s — %s</text>`+"\n",
		marginLeft, xmlEscape(strings.ToUpper(f.ID)), xmlEscape(f.Title))

	// Value axis: 5 ticks with horizontal gridlines.
	for i := 0; i <= 5; i++ {
		v := top * float64(i) / 5
		y := float64(marginTop) + plotH - v/top*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, width-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" fill="#444">%s</text>`+"\n",
			marginLeft-6, y+4, trimFloat(v))
	}
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" fill="#444" transform="rotate(-90 16 %.1f)">mean delay (ms)</text>`+"\n",
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2)

	// Grouped bars.
	groups := len(f.Rows)
	series := len(f.Columns)
	if groups > 0 && series > 0 {
		groupW := plotW / float64(groups)
		barW := groupW * 0.8 / float64(series)
		for r := range f.Rows {
			gx := float64(marginLeft) + float64(r)*groupW + groupW*0.1
			for c := range f.Columns {
				v := f.Data[r][c]
				if math.IsNaN(v) || v < 0 {
					continue
				}
				if math.IsInf(v, 1) {
					v = top
				}
				h := math.Min(v/top, 1) * plotH
				x := gx + float64(c)*barW
				y := float64(marginTop) + plotH - h
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %.3f</title></rect>`+"\n",
					x, y, barW*0.92, h, svgPalette[c%len(svgPalette)],
					xmlEscape(f.Rows[r]), xmlEscape(f.Columns[c]), f.Data[r][c])
			}
			// Row label, angled to avoid collisions.
			lx := gx + groupW*0.4
			ly := float64(marginTop) + plotH + 14
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#333" text-anchor="end" transform="rotate(-35 %.1f %.1f)">%s</text>`+"\n",
				lx, ly, lx, ly, xmlEscape(f.Rows[r]))
		}
	}

	// Legend across the top right.
	lx := float64(marginLeft)
	ly := float64(marginTop) - 12
	for c, col := range f.Columns {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n",
			lx, ly-9, svgPalette[c%len(svgPalette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="#222">%s</text>`+"\n",
			lx+14, ly, xmlEscape(col))
		lx += 14 + 7*float64(len(col)) + 18
	}

	// Axis line.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="#333"/>`+"\n",
		marginLeft, marginTop, marginLeft, float64(marginTop)+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333"/>`+"\n",
		marginLeft, float64(marginTop)+plotH, width-marginRight, float64(marginTop)+plotH)

	b.WriteString("</svg>\n")
	return b.String()
}

// niceCeil rounds up to a 1/2/5 x 10^k boundary for a clean axis maximum.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// trimFloat prints without trailing zeros.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
