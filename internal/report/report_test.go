package report

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func sample() *Figure {
	f := &Figure{ID: "figX", Title: "test", Columns: []string{"A", "B"}}
	f.AddRow("f0", 1.0, 2.0)
	f.AddRow("f1", 3.0, 9.0)
	return f
}

func TestColumn(t *testing.T) {
	f := sample()
	b := f.Column(1)
	if len(b) != 2 || b[0] != 2 || b[1] != 9 {
		t.Fatalf("column = %v", b)
	}
}

func TestColumnMean(t *testing.T) {
	f := sample()
	if m := f.ColumnMean(0); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	f.AddRow("f2", math.NaN(), 1)
	if m := f.ColumnMean(0); m != 2 {
		t.Fatalf("mean with NaN = %v", m)
	}
}

func TestColumnMeanEmpty(t *testing.T) {
	f := &Figure{Columns: []string{"A"}}
	if !math.IsNaN(f.ColumnMean(0)) {
		t.Fatal("mean of empty column not NaN")
	}
}

func TestTableContainsEverything(t *testing.T) {
	s := sample().Table()
	for _, want := range []string{"FIGX", "test", "A", "B", "f0", "f1", "mean"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestCSV(t *testing.T) {
	s := sample().CSV()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if lines[0] != "flow,A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "f0,1.000000,2.000000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestChart(t *testing.T) {
	s := sample().Chart(10)
	if !strings.Contains(s, "#") || !strings.Contains(s, "*") {
		t.Fatalf("chart missing bars:\n%s", s)
	}
	if out := (&Figure{}).Chart(10); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestRatioAndMaxRatio(t *testing.T) {
	f := sample()
	r := f.Ratio(1, 0)
	if r[0] != 2 || r[1] != 3 {
		t.Fatalf("ratio = %v", r)
	}
	if mr := f.MaxRatio(1, 0); mr != 3 {
		t.Fatalf("max ratio = %v", mr)
	}
}

func TestMaxRatioSkipsNonFinite(t *testing.T) {
	f := &Figure{Columns: []string{"A", "B"}}
	f.AddRow("f0", 0.0, 2.0) // ratio = +Inf, skipped
	f.AddRow("f1", 2.0, 4.0)
	if mr := f.MaxRatio(1, 0); mr != 2 {
		t.Fatalf("max ratio = %v", mr)
	}
}

func TestSVGWellFormed(t *testing.T) {
	f := sample()
	f.AddRow("inf", math.Inf(1), math.NaN())
	out := f.SVG(800, 400)
	// Must be parseable XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{"<svg", "FIGX", "f0", "f1", "A", "B", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestSVGDefaultSize(t *testing.T) {
	out := sample().SVG(0, 0)
	if !strings.Contains(out, `width="900"`) {
		t.Fatal("default width not applied")
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	f := &Figure{ID: "x", Title: `a<b>&"c`, Columns: []string{"s<1>"}}
	f.AddRow("r&1", 1.0)
	out := f.SVG(400, 200)
	if strings.Contains(out, "a<b>") || strings.Contains(out, "s<1>") {
		t.Fatal("labels not escaped")
	}
}

func TestNiceCeil(t *testing.T) {
	for in, want := range map[float64]float64{
		0.3: 0.5, 1.2: 2, 4.9: 5, 7: 10, 42: 50, 99: 100, 0: 1,
	} {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
}
