package report

import (
	"fmt"
	"sort"
	"strings"

	"minroute/internal/telemetry"
)

// timelineCatColor maps telemetry categories to tick colors. MPDA phase
// spans are drawn as bars, so "mpda" has no tick color here.
var timelineCatColor = map[string]string{
	"control": "#4878d0",
	"route":   "#6acc64",
	"data":    "#b8b8b8",
	"chaos":   "#d65f5f",
}

// timelineCats lists the tick categories in legend order.
var timelineCats = []string{"control", "route", "data", "chaos"}

// Timeline renders a telemetry event log as an SVG strip chart: one
// horizontal lane per router (plus a "net" lane when network-scope events
// are present), MPDA ACTIVE phases as filled spans, and every other event
// as a tick colored by its category. The rendering is a deterministic
// function of the event slice, so it can be golden-tested byte for byte.
func Timeline(title string, events []telemetry.Event, width, height int) string {
	if width <= 0 {
		width = 900
	}
	const (
		marginLeft   = 56
		marginRight  = 16
		marginTop    = 40
		marginBottom = 34
		laneGap      = 4
	)

	// Lane inventory: routers in ID order, then the network lane.
	maxRouter := -1
	hasNet := false
	tMax := 0.0
	for _, ev := range events {
		if ev.Router < 0 {
			hasNet = true
		} else if int(ev.Router) > maxRouter {
			maxRouter = int(ev.Router)
		}
		if ev.T > tMax {
			tMax = ev.T
		}
	}
	lanes := maxRouter + 1
	if hasNet {
		lanes++
	}
	if lanes == 0 {
		lanes = 1
	}
	if tMax <= 0 {
		tMax = 1
	}
	if height <= 0 {
		height = marginTop + marginBottom + lanes*22
	}
	plotW := float64(width - marginLeft - marginRight)
	laneH := (float64(height-marginTop-marginBottom) - float64(lanes-1)*laneGap) / float64(lanes)
	xOf := func(t float64) float64 { return float64(marginLeft) + t/tMax*plotW }
	yOf := func(lane int) float64 { return float64(marginTop) + float64(lane)*(laneH+laneGap) }
	laneOf := func(router int) int {
		if router < 0 {
			return lanes - 1 // network lane sits at the bottom
		}
		return router
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, xmlEscape(title))

	// Lane backgrounds and labels.
	for lane := 0; lane < lanes; lane++ {
		label := fmt.Sprintf("router %d", lane)
		if hasNet && lane == lanes-1 {
			label = "net"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%.1f" height="%.1f" fill="#f4f4f4"/>`+"\n",
			marginLeft, yOf(lane), plotW, laneH)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end" fill="#444">%s</text>`+"\n",
			marginLeft-6, yOf(lane)+laneH/2+3, xmlEscape(label))
	}

	// ACTIVE phase spans: phase_active opens a bar on the router's lane,
	// phase_passive closes it. An unclosed span runs to the right edge.
	open := make(map[int]float64)
	span := func(router int, t0, t1 float64) {
		y := yOf(laneOf(router))
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#ee854a" opacity="0.85"><title>router %d ACTIVE %.4f-%.4f</title></rect>`+"\n",
			xOf(t0), y+1, maxf(xOf(t1)-xOf(t0), 1), laneH-2, router, t0, t1)
	}
	for _, ev := range events {
		r := int(ev.Router)
		if ev.Kind == telemetry.KindPhaseActive {
			open[r] = ev.T
			continue
		}
		if ev.Kind == telemetry.KindPhasePassive {
			if t0, ok := open[r]; ok {
				span(r, t0, ev.T)
				delete(open, r)
			}
			continue
		}
		// Instant tick.
		color, ok := timelineCatColor[ev.Kind.Category()]
		if !ok {
			color = "#888"
		}
		y := yOf(laneOf(r))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"><title>t=%.4f %s</title></line>`+"\n",
			xOf(ev.T), y+2, xOf(ev.T), y+laneH-2, color, ev.T, ev.Kind)
	}
	// Close dangling spans deterministically (sorted by router).
	dangling := make([]int, 0, len(open))
	//lint:maporder-ok keys are sorted before rendering
	for r := range open {
		dangling = append(dangling, r)
	}
	sort.Ints(dangling)
	for _, r := range dangling {
		span(r, open[r], tMax)
	}

	// Time axis with 5 ticks.
	axisY := yOf(lanes-1) + laneH
	for i := 0; i <= 5; i++ {
		t := tMax * float64(i) / 5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
			xOf(t), axisY, xOf(t), axisY+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="#444">%s</text>`+"\n",
			xOf(t), axisY+16, trimFloat(t))
	}

	// Legend: the ACTIVE span swatch plus the tick categories.
	lx := float64(marginLeft)
	ly := float64(marginTop) - 8
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="#ee854a" opacity="0.85"/>`+"\n", lx, ly-9)
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#222">ACTIVE</text>`+"\n", lx+14, ly)
	lx += 14 + 6*float64(len("ACTIVE")) + 16
	for _, cat := range timelineCats {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="3" height="10" fill="%s"/>`+"\n", lx, ly-9, timelineCatColor[cat])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#222">%s</text>`+"\n", lx+7, ly, cat)
		lx += 7 + 6*float64(len(cat)) + 16
	}

	b.WriteString("</svg>\n")
	return b.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
