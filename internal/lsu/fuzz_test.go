package lsu

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal asserts the decoder never panics and that any message it
// accepts re-encodes to the identical wire bytes (canonical round trip).
func FuzzUnmarshal(f *testing.F) {
	seed := &Msg{From: 3, Ack: true, Entries: []Entry{
		{Op: OpAdd, Head: 1, Tail: 2, Cost: 0.5},
		{Op: OpDelete, Head: 9, Tail: 8},
	}}
	buf, err := seed.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		// Delete entries may carry arbitrary cost bits that Marshal
		// normalizes; compare semantic equality via a second decode.
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded message rejected: %v", err)
		}
		if m.From != m2.From || m.Ack != m2.Ack || len(m.Entries) != len(m2.Entries) {
			t.Fatalf("round trip changed header: %+v vs %+v", m, m2)
		}
		for i := range m.Entries {
			a, b := m.Entries[i], m2.Entries[i]
			if a.Op != b.Op || a.Head != b.Head || a.Tail != b.Tail {
				t.Fatalf("entry %d changed: %+v vs %+v", i, a, b)
			}
			if a.Op != OpDelete && a.Cost != b.Cost {
				t.Fatalf("entry %d cost changed", i)
			}
		}
		_ = bytes.Equal(data, out)
	})
}
