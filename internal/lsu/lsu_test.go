package lsu

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"minroute/internal/graph"
	"minroute/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	m := &Msg{
		From: 7,
		Ack:  true,
		Entries: []Entry{
			{Op: OpAdd, Head: 1, Tail: 2, Cost: 0.0125},
			{Op: OpChange, Head: 2, Tail: 1, Cost: 3.5},
			{Op: OpDelete, Head: 3, Tail: 4},
		},
	}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != m.WireBytes() {
		t.Fatalf("encoded %d bytes, WireBytes says %d", len(buf), m.WireBytes())
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", m, got)
	}
}

func TestPureAck(t *testing.T) {
	m := &Msg{From: 1, Ack: true}
	if !m.IsPureAck() {
		t.Fatal("empty ack not pure")
	}
	m2 := &Msg{From: 1, Ack: true, Entries: []Entry{{Op: OpAdd, Head: 0, Tail: 1, Cost: 1}}}
	if m2.IsPureAck() {
		t.Fatal("ack with entries reported pure")
	}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsPureAck() || got.From != 1 {
		t.Fatalf("pure ack mangled: %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string][]byte{
		"short":       {1, 2, 3},
		"bad flags":   {0, 0, 0, 1, 0xFF, 0, 0},
		"bad length":  {0, 0, 0, 1, 0, 0, 5},
		"bad op":      append([]byte{0, 0, 0, 1, 0, 0, 1}, make([]byte, 17)...),
		"nan cost":    nanMsg(t),
		"neg cost":    negMsg(t),
		"truncated":   append([]byte{0, 0, 0, 1, 0, 0, 1}, make([]byte, 5)...),
		"extra bytes": {0, 0, 0, 1, 0, 0, 0, 9, 9},
	}
	for name, buf := range cases {
		if _, err := Unmarshal(buf); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func nanMsg(t *testing.T) []byte {
	t.Helper()
	m := &Msg{From: 1, Entries: []Entry{{Op: OpAdd, Head: 0, Tail: 1, Cost: 1}}}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the cost with NaN.
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		buf[len(buf)-8+i] = byte(nan >> (56 - 8*i))
	}
	return buf
}

func negMsg(t *testing.T) []byte {
	t.Helper()
	m := &Msg{From: 1, Entries: []Entry{{Op: OpAdd, Head: 0, Tail: 1, Cost: 1}}}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	neg := math.Float64bits(-2.0)
	for i := 0; i < 8; i++ {
		buf[len(buf)-8+i] = byte(neg >> (56 - 8*i))
	}
	return buf
}

func TestMarshalRejectsInvalidOp(t *testing.T) {
	m := &Msg{From: 1, Entries: []Entry{{Op: 0, Head: 0, Tail: 1}}}
	if _, err := m.Marshal(); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestDeleteCostIgnoredRoundTrip(t *testing.T) {
	// Delete entries may carry any cost bits; decoding must not reject them.
	m := &Msg{From: 1, Entries: []Entry{{Op: OpDelete, Head: 5, Tail: 6, Cost: math.Inf(1)}}}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].Op != OpDelete || got.Entries[0].Head != 5 {
		t.Fatalf("delete entry mangled: %+v", got.Entries[0])
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpAdd: "add", OpChange: "change", OpDelete: "delete", 9: "op(9)"} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	check := func(seed uint64, from uint16, ack bool, n8 uint8) bool {
		r := rng.New(seed)
		m := &Msg{From: graph.NodeID(from), Ack: ack}
		n := int(n8 % 20)
		for i := 0; i < n; i++ {
			op := Op(r.Intn(3) + 1)
			e := Entry{
				Op:   op,
				Head: graph.NodeID(r.Intn(1000)),
				Tail: graph.NodeID(r.Intn(1000)),
			}
			if op != OpDelete {
				e.Cost = r.Float64() * 100
			}
			m.Entries = append(m.Entries, e)
		}
		buf, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnmarshalNeverPanics(t *testing.T) {
	check := func(buf []byte) bool {
		_, _ = Unmarshal(buf) // must not panic
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := &Msg{From: 3, Entries: make([]Entry, 20)}
	for i := range m.Entries {
		m.Entries[i] = Entry{Op: OpAdd, Head: graph.NodeID(i), Tail: graph.NodeID(i + 1), Cost: 1.5}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	m := &Msg{From: 3, Entries: make([]Entry, 20)}
	for i := range m.Entries {
		m.Entries[i] = Entry{Op: OpAdd, Head: graph.NodeID(i), Tail: graph.NodeID(i + 1), Cost: 1.5}
	}
	buf, _ := m.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
