// Package lsu defines the link-state update message — the unit of
// information exchanged between routers by PDA and MPDA — and its binary
// wire encoding.
//
// From the paper: "A router sends an LSU message containing one or more
// entries, with each entry specifying addition, deletion or change in cost
// of a link in the router's main topology table T. Each entry consists of
// link information in the form of a triplet [h, t, d] where h is the head,
// t is the tail, and d is the cost of the link h→t. An LSU message contains
// an acknowledgment (ACK) flag for acknowledging the receipt of an LSU
// message from a neighbor (used only by MPDA)."
package lsu

import (
	"encoding/binary"
	"fmt"
	"math"

	"minroute/internal/graph"
)

// Op is the kind of topology mutation an entry encodes.
type Op byte

// Entry operations.
const (
	OpAdd Op = iota + 1
	OpChange
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpChange:
		return "change"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", byte(o))
	}
}

// Entry is one [h, t, d] triplet plus its operation.
type Entry struct {
	Op   Op
	Head graph.NodeID
	Tail graph.NodeID
	Cost float64 // ignored for OpDelete
}

// Msg is a link-state update message.
type Msg struct {
	// From is the sending router.
	From graph.NodeID
	// Ack acknowledges the last LSU received from the destination neighbor.
	Ack bool
	// Entries lists topology changes; empty together with Ack means a pure
	// acknowledgment.
	Entries []Entry
}

// IsPureAck reports whether the message carries no topology changes.
func (m *Msg) IsPureAck() bool { return m.Ack && len(m.Entries) == 0 }

// Wire-format constants. Header: from(4) flags(1) count(2); entry:
// op(1) head(4) tail(4) cost(8).
const (
	headerBytes = 7
	entryBytes  = 17
	flagAck     = 0x01
	// MaxEntries bounds one message; larger diffs are split by the caller.
	MaxEntries = math.MaxUint16
)

// WireBytes returns the encoded size in bytes; the simulator charges this
// (plus framing) against link capacity.
func (m *Msg) WireBytes() int { return headerBytes + entryBytes*len(m.Entries) }

// Marshal encodes the message.
func (m *Msg) Marshal() ([]byte, error) {
	if len(m.Entries) > MaxEntries {
		return nil, fmt.Errorf("lsu: %d entries exceed message limit", len(m.Entries))
	}
	buf := make([]byte, m.WireBytes())
	binary.BigEndian.PutUint32(buf[0:4], uint32(m.From))
	if m.Ack {
		buf[4] = flagAck
	}
	binary.BigEndian.PutUint16(buf[5:7], uint16(len(m.Entries)))
	off := headerBytes
	for _, e := range m.Entries {
		if e.Op < OpAdd || e.Op > OpDelete {
			return nil, fmt.Errorf("lsu: invalid op %d", e.Op)
		}
		buf[off] = byte(e.Op)
		binary.BigEndian.PutUint32(buf[off+1:off+5], uint32(e.Head))
		binary.BigEndian.PutUint32(buf[off+5:off+9], uint32(e.Tail))
		binary.BigEndian.PutUint64(buf[off+9:off+17], math.Float64bits(e.Cost))
		off += entryBytes
	}
	return buf, nil
}

// Validate checks that buf is a structurally valid encoded message without
// materializing it — the allocation-free twin of Unmarshal, used by the
// wire codec's hot path (a frame validator has no use for the decoded
// message, only for the yes/no answer). Unmarshal accepts exactly the
// inputs Validate accepts.
func Validate(buf []byte) error {
	if len(buf) < headerBytes {
		return fmt.Errorf("lsu: short message (%d bytes)", len(buf))
	}
	if buf[4]&^flagAck != 0 {
		return fmt.Errorf("lsu: unknown flags %#x", buf[4])
	}
	count := int(binary.BigEndian.Uint16(buf[5:7]))
	if want := headerBytes + count*entryBytes; len(buf) != want {
		return fmt.Errorf("lsu: length %d does not match %d entries", len(buf), count)
	}
	off := headerBytes
	for i := 0; i < count; i++ {
		op := Op(buf[off])
		if op < OpAdd || op > OpDelete {
			return fmt.Errorf("lsu: entry %d has invalid op %d", i, buf[off])
		}
		cost := math.Float64frombits(binary.BigEndian.Uint64(buf[off+9 : off+17]))
		if op != OpDelete && (math.IsNaN(cost) || cost < 0) {
			return fmt.Errorf("lsu: entry %d has invalid cost %v", i, cost)
		}
		off += entryBytes
	}
	return nil
}

// Unmarshal decodes a message, validating structure.
func Unmarshal(buf []byte) (*Msg, error) {
	if len(buf) < headerBytes {
		return nil, fmt.Errorf("lsu: short message (%d bytes)", len(buf))
	}
	m := &Msg{
		From: graph.NodeID(binary.BigEndian.Uint32(buf[0:4])),
		Ack:  buf[4]&flagAck != 0,
	}
	if buf[4]&^flagAck != 0 {
		return nil, fmt.Errorf("lsu: unknown flags %#x", buf[4])
	}
	count := int(binary.BigEndian.Uint16(buf[5:7]))
	if want := headerBytes + count*entryBytes; len(buf) != want {
		return nil, fmt.Errorf("lsu: length %d does not match %d entries", len(buf), count)
	}
	if count > 0 {
		m.Entries = make([]Entry, count)
	}
	off := headerBytes
	for i := 0; i < count; i++ {
		e := Entry{
			Op:   Op(buf[off]),
			Head: graph.NodeID(binary.BigEndian.Uint32(buf[off+1 : off+5])),
			Tail: graph.NodeID(binary.BigEndian.Uint32(buf[off+5 : off+9])),
			Cost: math.Float64frombits(binary.BigEndian.Uint64(buf[off+9 : off+17])),
		}
		if e.Op < OpAdd || e.Op > OpDelete {
			return nil, fmt.Errorf("lsu: entry %d has invalid op %d", i, buf[off])
		}
		if e.Op != OpDelete && (math.IsNaN(e.Cost) || e.Cost < 0) {
			return nil, fmt.Errorf("lsu: entry %d has invalid cost %v", i, e.Cost)
		}
		m.Entries[i] = e
		off += entryBytes
	}
	return m, nil
}
