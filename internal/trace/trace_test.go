package trace

import (
	"strings"
	"testing"

	"minroute/internal/graph"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(4)
	r.Begin(1, 0, 10, 12, 0.0)
	r.Step(1, 11, 0.1)
	r.Step(1, 12, 0.2)
	r.Deliver(1, 0.3)
	paths := r.Paths()
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	p := paths[0]
	if !p.Delivered || len(p.Hops) != 3 {
		t.Fatalf("path = %+v", p)
	}
	if p.Hops[0].Node != 10 || p.Hops[2].Node != 12 {
		t.Fatalf("hops = %v", p.Hops)
	}
	if p.Revisits() != 0 {
		t.Fatalf("revisits = %d", p.Revisits())
	}
	if !strings.Contains(p.String(), "delivered") {
		t.Fatalf("String = %q", p.String())
	}
}

func TestDeliverDoesNotDuplicateFinalHop(t *testing.T) {
	r := NewRecorder(4)
	r.Begin(1, 0, 10, 12, 0)
	r.Step(1, 12, 0.1) // forwarding step already recorded arrival at dst
	r.Deliver(1, 0.2)
	p := r.Paths()[0]
	if len(p.Hops) != 2 {
		t.Fatalf("hops = %v", p.Hops)
	}
}

func TestRevisitsDetected(t *testing.T) {
	r := NewRecorder(4)
	r.Begin(2, 0, 1, 4, 0)
	for _, n := range []graph.NodeID{2, 3, 2, 4} { // revisits node 2
		r.Step(2, n, 0)
	}
	r.Deliver(2, 1)
	if got := r.Paths()[0].Revisits(); got != 1 {
		t.Fatalf("revisits = %d, want 1", got)
	}
	delivered, withRevisit, maxHops := r.Audit()
	if delivered != 1 || withRevisit != 1 || maxHops != 4 {
		t.Fatalf("audit = %d,%d,%d", delivered, withRevisit, maxHops)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(2)
	for s := uint64(1); s <= 5; s++ {
		r.Begin(s, 0, 0, 1, 0)
	}
	if len(r.Paths()) != 2 {
		t.Fatalf("retained %d paths, want 2", len(r.Paths()))
	}
	if r.Recorded() != 5 {
		t.Fatalf("recorded = %d", r.Recorded())
	}
	// Steps for evicted packets are ignored, not panics.
	r.Step(1, 3, 0)
	r.Deliver(1, 0)
}

func TestNewRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	for s := uint64(1); s <= 2000; s++ {
		r.Begin(s, 0, 0, 1, 0)
	}
	if len(r.Paths()) != 1024 {
		t.Fatalf("default capacity = %d", len(r.Paths()))
	}
}

func TestInFlightString(t *testing.T) {
	r := NewRecorder(2)
	r.Begin(7, 3, 0, 5, 0)
	if !strings.Contains(r.Paths()[0].String(), "in flight") {
		t.Fatal("in-flight path not labeled")
	}
}
