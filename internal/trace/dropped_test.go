package trace

import "testing"

func TestRecorderDropped(t *testing.T) {
	r := NewRecorder(2)
	if r.Dropped() != 0 {
		t.Fatalf("fresh recorder Dropped() = %d", r.Dropped())
	}
	for s := uint64(1); s <= 5; s++ {
		r.Begin(s, 0, 0, 1, 0)
	}
	// Capacity 2, five begins: three paths were evicted.
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	if r.Recorded() != 5 {
		t.Fatalf("Recorded() = %d, want 5", r.Recorded())
	}
}
