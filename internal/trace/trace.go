// Package trace records the forwarding path of individual packets through
// the simulated network. The recorder is the ground-truth complement to
// the control-plane loop audits: lfi checks that the successor sets are
// acyclic; the tracer checks that actual packets, forwarded under those
// sets while they changed beneath them, still walked loop-free paths.
package trace

import (
	"fmt"
	"sort"

	"minroute/internal/graph"
)

// Hop is one forwarding step.
type Hop struct {
	// Node is the router that handled the packet.
	Node graph.NodeID
	// At is the simulation time of the step.
	At float64
}

// Path is the recorded journey of one packet.
type Path struct {
	Serial    uint64
	FlowID    int
	Src, Dst  graph.NodeID
	Hops      []Hop
	Delivered bool
}

// Revisits counts how many hops land on a node the packet already visited.
func (p *Path) Revisits() int {
	seen := make(map[graph.NodeID]int, len(p.Hops))
	n := 0
	for _, h := range p.Hops {
		if seen[h.Node] > 0 {
			n++
		}
		seen[h.Node]++
	}
	return n
}

// String renders the path compactly.
func (p *Path) String() string {
	s := fmt.Sprintf("pkt %d flow %d [", p.Serial, p.FlowID)
	for i, h := range p.Hops {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", h.Node)
	}
	if p.Delivered {
		return s + "] delivered"
	}
	return s + "] in flight"
}

// Recorder keeps the most recent paths in a bounded ring. The zero value
// is unusable; construct with NewRecorder.
type Recorder struct {
	capacity int
	paths    map[uint64]*Path
	ring     []uint64
	next     int
	recorded uint64
	dropped  uint64
}

// NewRecorder returns a recorder retaining up to capacity packet paths.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{
		capacity: capacity,
		paths:    make(map[uint64]*Path, capacity),
		ring:     make([]uint64, capacity),
	}
}

// Begin starts a record for a new packet.
func (r *Recorder) Begin(serial uint64, flowID int, src, dst graph.NodeID, at float64) {
	if old := r.ring[r.next]; old != 0 {
		delete(r.paths, old)
		r.dropped++
	}
	r.ring[r.next] = serial
	r.next = (r.next + 1) % r.capacity
	r.paths[serial] = &Path{
		Serial: serial,
		FlowID: flowID,
		Src:    src,
		Dst:    dst,
		Hops:   []Hop{{Node: src, At: at}},
	}
	r.recorded++
}

// Step records that the packet was forwarded to node at the given time.
// Steps for packets that have aged out of the ring are ignored.
func (r *Recorder) Step(serial uint64, node graph.NodeID, at float64) {
	if p, ok := r.paths[serial]; ok {
		p.Hops = append(p.Hops, Hop{Node: node, At: at})
	}
}

// Deliver marks the packet's arrival at its destination. The final hop is
// appended only if the forwarding steps did not already record it.
func (r *Recorder) Deliver(serial uint64, at float64) {
	if p, ok := r.paths[serial]; ok {
		if len(p.Hops) == 0 || p.Hops[len(p.Hops)-1].Node != p.Dst {
			p.Hops = append(p.Hops, Hop{Node: p.Dst, At: at})
		}
		p.Delivered = true
	}
}

// Recorded returns the total number of packets ever begun.
func (r *Recorder) Recorded() uint64 { return r.recorded }

// Dropped returns how many paths were evicted from the ring to make room
// for newer packets. A nonzero value means audits and reports saw only the
// tail of the run; mdrsim surfaces it as a warning and the telemetry
// snapshot mirrors it as trace.paths.dropped.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Paths returns the retained paths in ascending Serial order, so reports
// built from a trace render identically run-to-run.
func (r *Recorder) Paths() []*Path {
	out := make([]*Path, 0, len(r.paths))
	//lint:maporder-ok paths are collected and sorted by Serial before any use
	for _, p := range r.paths {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Serial < out[j].Serial })
	return out
}

// Audit summarizes loop behaviour over the retained delivered paths: the
// number of delivered paths, how many contained a node revisit, and the
// longest path length in hops.
func (r *Recorder) Audit() (delivered, withRevisit, maxHops int) {
	//lint:maporder-ok counting and an integer max are visit-order independent
	for _, p := range r.paths {
		if !p.Delivered {
			continue
		}
		delivered++
		if p.Revisits() > 0 {
			withRevisit++
		}
		if h := len(p.Hops) - 1; h > maxHops {
			maxHops = h
		}
	}
	return delivered, withRevisit, maxHops
}
