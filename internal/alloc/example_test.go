package alloc_test

import (
	"fmt"
	"sort"

	"minroute/internal/alloc"
	"minroute/internal/graph"
)

// ExampleInitial shows heuristic IH: fresh routing parameters over a
// successor set, inversely related to each successor's marginal distance.
func ExampleInitial() {
	succ := []graph.NodeID{1, 2}
	dist := func(k graph.NodeID) float64 {
		if k == 1 {
			return 1.0 // closer successor
		}
		return 3.0
	}
	phi := alloc.Initial(succ, dist)
	keys := phi.Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Printf("successor %d: %.2f\n", k, phi[k])
	}
	// Output:
	// successor 1: 0.75
	// successor 2: 0.25
}

// ExampleAdjustDamped shows heuristic AH: repeated adjustments move
// traffic toward the successor with the least marginal delay.
func ExampleAdjustDamped() {
	succ := []graph.NodeID{1, 2}
	phi := alloc.Params{1: 0.5, 2: 0.5}
	dist := func(k graph.NodeID) float64 {
		if k == 1 {
			return 1.0
		}
		return 2.0 // successor 2 is congested
	}
	for i := 0; i < 3; i++ {
		alloc.AdjustDamped(phi, succ, dist, 0.5)
	}
	fmt.Printf("phi1 > 0.7: %v, phi1+phi2 = %.0f\n", phi[1] > 0.7, phi[1]+phi[2])
	// Output:
	// phi1 > 0.7: true, phi1+phi2 = 1
}
