// Package alloc implements the traffic-distribution heuristics of Section
// 4.2 of the paper: the routing parameters φ_jk that split a router's
// traffic for destination j over its successor set S_j.
//
// Two heuristics cooperate:
//
//   - IH (initial heuristic, paper Fig. 6) runs whenever S_j is computed
//     afresh — at startup or after a long-term (Tl) route change — and
//     assigns fractions that decrease with the marginal distance through
//     each successor: "the greater the marginal delay through a particular
//     neighbor becomes, the smaller the fraction of traffic forwarded to
//     that neighbor".
//
//   - AH (adjustment heuristic, paper Fig. 7) runs every short-term (Ts)
//     interval while S_j is unchanged and incrementally moves traffic from
//     successors with large marginal delay to the best successor, by an
//     amount proportional to how much worse each successor is.
//
// Both preserve Property 1 of the paper at every instant: φ_jk = 0 off the
// successor set, φ_jk ≥ 0, and Σ_k φ_jk = 1.
package alloc

import (
	"fmt"
	"math"
	"sort"

	"minroute/internal/graph"
)

// DistFunc returns the marginal distance through successor k, i.e.
// D_jk + l_ik. Infinite distances mark successors that are momentarily
// unusable.
type DistFunc func(k graph.NodeID) float64

// Params maps successor → fraction of traffic. A nil Params sends nothing.
type Params map[graph.NodeID]float64

// Clone deep-copies the parameters.
func (p Params) Clone() Params {
	c := make(Params, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Keys returns the successors with non-zero allocation potential in
// ascending order (deterministic iteration helper).
func (p Params) Keys() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(p))
	//lint:maporder-ok keys are collected and sorted ascending before any use
	for k := range p {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Initial implements heuristic IH. Given the successor set (ascending by
// ID, as MPDA maintains it) and the marginal distances through each
// successor, it returns fresh routing parameters:
//
//	|S| = 1: φ_k = 1
//	|S| > 1: φ_k = (1 − (D_jk+l_k) / Σ_m (D_jm+l_m)) / (|S| − 1)
//
// Successors with infinite marginal distance receive zero. An empty
// successor set yields nil.
func Initial(succ []graph.NodeID, dist DistFunc) Params {
	usable := make([]graph.NodeID, 0, len(succ))
	total := 0.0
	for _, k := range succ {
		if d := dist(k); !math.IsInf(d, 1) && d >= 0 {
			usable = append(usable, k)
			total += dist(k)
		}
	}
	if len(usable) == 0 {
		return nil
	}
	phi := make(Params, len(succ))
	for _, k := range succ {
		phi[k] = 0
	}
	if len(usable) == 1 {
		phi[usable[0]] = 1
		return phi
	}
	if total <= 0 {
		// All marginal distances are zero: split evenly.
		for _, k := range usable {
			phi[k] = 1 / float64(len(usable))
		}
		return phi
	}
	denom := float64(len(usable) - 1)
	for _, k := range usable {
		phi[k] = (1 - dist(k)/total) / denom
	}
	normalize(phi)
	return phi
}

// Adjust implements heuristic AH, mutating phi in place:
//
//	D_min = min_k (D_jk + l_k), achieved by k0 (ties → lowest ID)
//	a_k   = (D_jk + l_k) − D_min
//	Δ     = min{ φ_k / a_k : k ∈ S, a_k ≠ 0 }
//	φ_k  −= Δ·a_k   for k ≠ k0
//	φ_k0 += Δ·Σ_q a_q
//
// Traffic moves toward the successor with the least marginal delay, each
// donor losing in proportion to how much worse it is. The successor with
// the worst φ/a ratio is drained completely, all others partially; repeated
// applications converge toward the perfect-load-balancing conditions
// (paper Eqs. 10-12). Successors with infinite marginal distance donate all
// of their traffic. A set with fewer than two usable successors is left
// unchanged.
func Adjust(phi Params, succ []graph.NodeID, dist DistFunc) {
	if len(succ) < 2 || len(phi) == 0 {
		return
	}
	dmin := math.Inf(1)
	k0 := graph.None
	for _, k := range succ {
		if d := dist(k); d < dmin {
			dmin = d
			k0 = k
		}
	}
	if k0 == graph.None || math.IsInf(dmin, 1) {
		return
	}
	// Δ = min φ_k/a_k over successors with a_k ≠ 0. Infinite-distance
	// successors get an effectively infinite a, so their ratio is 0 and
	// they are drained completely, which is the sensible limit.
	delta := math.Inf(1)
	anyDonor := false
	for _, k := range succ {
		a := dist(k) - dmin
		if a == 0 {
			continue
		}
		anyDonor = true
		if math.IsInf(a, 1) {
			delta = 0
			continue
		}
		if r := phi[k] / a; r < delta {
			delta = r
		}
	}
	if !anyDonor {
		return // perfect balance already: all marginal distances equal
	}
	moved := 0.0
	for _, k := range succ {
		if k == k0 {
			continue
		}
		a := dist(k) - dmin
		var give float64
		if math.IsInf(a, 1) {
			give = phi[k] // unusable successor surrenders everything
		} else {
			give = delta * a
		}
		if give > phi[k] {
			give = phi[k]
		}
		phi[k] -= give
		moved += give
	}
	phi[k0] += moved
	normalize(phi)
}

// AdjustDamped is the production variant of heuristic AH used by the
// simulated routers. The literal rule of Fig. 7 computes
// Δ = min{φ_k/a_k} and therefore always drains the binding donor
// completely — with two successors that is a full bang-bang swing every Ts
// regardless of how small the imbalance is, which oscillates badly against
// real queues. The paper describes the intent as "the amount of traffic
// moved away from a link is proportional to how large the marginal delay
// of the link is compared to the best successor link"; AdjustDamped
// implements exactly that:
//
//	rel_k   = a_k / D_min                     (relative excess)
//	move_k  = φ_k · β · rel_k / (1 + rel_k)
//
// where a_k is the excess marginal distance over the best successor and
// D_min the best successor's marginal distance. The move fraction grows
// with the imbalance but saturates at β, so no donor is ever drained in
// one tick — with measurement lag, full drains make coupled routers
// bang-bang between paths (we observed exactly this with the literal
// rule). Moves vanish smoothly as the imbalance vanishes, so the
// allocation converges to the equalization conditions (Eqs. 10-12)
// instead of orbiting them. Property 1 is preserved for any β in (0, 1].
func AdjustDamped(phi Params, succ []graph.NodeID, dist DistFunc, beta float64) {
	if len(succ) < 2 || len(phi) == 0 || beta <= 0 {
		return
	}
	dmin := math.Inf(1)
	k0 := graph.None
	for _, k := range succ {
		if d := dist(k); d < dmin {
			dmin = d
			k0 = k
		}
	}
	if k0 == graph.None || math.IsInf(dmin, 1) || dmin <= 0 {
		return
	}
	moved := 0.0
	for _, k := range succ {
		if k == k0 {
			continue
		}
		d := dist(k)
		var give float64
		if math.IsInf(d, 1) {
			give = phi[k] // unusable successor surrenders everything
		} else {
			rel := (d - dmin) / dmin
			give = phi[k] * beta * rel / (1 + rel)
		}
		if give <= 0 {
			continue
		}
		phi[k] -= give
		moved += give
	}
	if moved == 0 {
		return
	}
	phi[k0] += moved
	normalize(phi)
}

// Spread summarizes how evenly routing parameters split traffic as 1 − max
// φ: 0 means single-path, and values approaching 1 − 1/|S| mean a
// near-uniform split. It is the scalar the telemetry layer attaches to
// allocation events.
func Spread(p Params) float64 {
	maxPhi := 0.0
	//lint:maporder-ok max over values is iteration-order independent
	for _, v := range p {
		if v > maxPhi {
			maxPhi = v
		}
	}
	if maxPhi == 0 {
		return 0
	}
	return 1 - maxPhi
}

// Uniform returns equal fractions over the successor set; used as a
// baseline in ablation benchmarks.
func Uniform(succ []graph.NodeID) Params {
	if len(succ) == 0 {
		return nil
	}
	phi := make(Params, len(succ))
	for _, k := range succ {
		phi[k] = 1 / float64(len(succ))
	}
	return phi
}

// Single returns all traffic on one successor (SP forwarding).
func Single(k graph.NodeID) Params { return Params{k: 1} }

// Validate checks Property 1 of the paper against the successor set:
// non-negative fractions, support within succ, and a unit sum. It returns
// nil for an empty Params with an empty successor set.
func Validate(phi Params, succ []graph.NodeID) error {
	if len(phi) == 0 {
		if len(succ) == 0 {
			return nil
		}
		return fmt.Errorf("alloc: empty parameters for %d successors", len(succ))
	}
	inSet := make(map[graph.NodeID]bool, len(succ))
	for _, k := range succ {
		inSet[k] = true
	}
	// Sorted keys: the first reported violation and the FP rounding of the
	// sum must not depend on map iteration order.
	sum := 0.0
	for _, k := range phi.Keys() {
		v := phi[k]
		if v < -1e-12 {
			return fmt.Errorf("alloc: negative fraction %v for successor %d", v, k)
		}
		if v > 1e-12 && !inSet[k] {
			return fmt.Errorf("alloc: fraction %v assigned to non-successor %d", v, k)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("alloc: fractions sum to %v, want 1", sum)
	}
	return nil
}

// normalize clamps FP dust and rescales the fractions to sum exactly to 1.
// Iteration is in sorted key order so the FP rounding — and therefore the
// whole simulation — is reproducible run-to-run.
func normalize(phi Params) {
	keys := phi.Keys()
	sum := 0.0
	for _, k := range keys {
		if phi[k] < 0 {
			phi[k] = 0
		}
		sum += phi[k]
	}
	if sum <= 0 {
		// Degenerate: spread evenly rather than sending nothing.
		for _, k := range keys {
			phi[k] = 1 / float64(len(phi))
		}
		return
	}
	for _, k := range keys {
		phi[k] /= sum
	}
}
