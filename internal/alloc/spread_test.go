package alloc

import (
	"math"
	"testing"

	"minroute/internal/graph"
)

func TestSpread(t *testing.T) {
	if got := Spread(nil); got != 0 {
		t.Fatalf("Spread(nil) = %v, want 0", got)
	}
	if got := Spread(Single(3)); got != 0 {
		t.Fatalf("Spread(single-path) = %v, want 0", got)
	}
	u := Uniform([]graph.NodeID{1, 2, 3, 4})
	if got := Spread(u); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Spread(uniform over 4) = %v, want 0.75", got)
	}
	skew := Params{1: 0.7, 2: 0.3}
	if got := Spread(skew); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Spread(0.7/0.3) = %v, want 0.3", got)
	}
}
