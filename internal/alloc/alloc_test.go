package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"minroute/internal/graph"
	"minroute/internal/rng"
)

func distOf(m map[graph.NodeID]float64) DistFunc {
	return func(k graph.NodeID) float64 {
		if d, ok := m[k]; ok {
			return d
		}
		return math.Inf(1)
	}
}

func TestInitialSingleSuccessor(t *testing.T) {
	phi := Initial([]graph.NodeID{3}, distOf(map[graph.NodeID]float64{3: 1.5}))
	if phi[3] != 1 {
		t.Fatalf("phi = %v", phi)
	}
	if err := Validate(phi, []graph.NodeID{3}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialEmpty(t *testing.T) {
	if phi := Initial(nil, distOf(nil)); phi != nil {
		t.Fatalf("phi = %v, want nil", phi)
	}
}

func TestInitialTwoSuccessorsInverseToDistance(t *testing.T) {
	succ := []graph.NodeID{1, 2}
	phi := Initial(succ, distOf(map[graph.NodeID]float64{1: 1, 2: 3}))
	// total=4: phi_1 = (1 - 1/4)/1 = 0.75, phi_2 = (1 - 3/4)/1 = 0.25.
	if math.Abs(phi[1]-0.75) > 1e-12 || math.Abs(phi[2]-0.25) > 1e-12 {
		t.Fatalf("phi = %v", phi)
	}
	if err := Validate(phi, succ); err != nil {
		t.Fatal(err)
	}
}

func TestInitialMonotoneInDistance(t *testing.T) {
	succ := []graph.NodeID{1, 2, 3}
	phi := Initial(succ, distOf(map[graph.NodeID]float64{1: 1, 2: 2, 3: 4}))
	if !(phi[1] > phi[2] && phi[2] > phi[3]) {
		t.Fatalf("fractions not decreasing with distance: %v", phi)
	}
	if err := Validate(phi, succ); err != nil {
		t.Fatal(err)
	}
}

func TestInitialInfiniteSuccessorGetsZero(t *testing.T) {
	succ := []graph.NodeID{1, 2}
	phi := Initial(succ, distOf(map[graph.NodeID]float64{1: 1}))
	if phi[1] != 1 || phi[2] != 0 {
		t.Fatalf("phi = %v", phi)
	}
}

func TestInitialAllZeroDistances(t *testing.T) {
	succ := []graph.NodeID{1, 2}
	phi := Initial(succ, distOf(map[graph.NodeID]float64{1: 0, 2: 0}))
	if math.Abs(phi[1]-0.5) > 1e-12 || math.Abs(phi[2]-0.5) > 1e-12 {
		t.Fatalf("phi = %v", phi)
	}
}

func TestAdjustMovesTowardBest(t *testing.T) {
	succ := []graph.NodeID{1, 2}
	phi := Params{1: 0.5, 2: 0.5}
	Adjust(phi, succ, distOf(map[graph.NodeID]float64{1: 1, 2: 2}))
	if !(phi[1] > 0.5 && phi[2] < 0.5) {
		t.Fatalf("traffic did not move toward the best successor: %v", phi)
	}
	if err := Validate(phi, succ); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustDrainsWorstRatioSuccessor(t *testing.T) {
	// phi=(0.5,0.3,0.2), a=(0,1,4): delta=min(0.3/1, 0.2/4)=0.05.
	// phi2 = 0.3-0.05 = 0.25; phi3 = 0.2-0.2 = 0; phi1 = 0.75.
	succ := []graph.NodeID{1, 2, 3}
	phi := Params{1: 0.5, 2: 0.3, 3: 0.2}
	Adjust(phi, succ, distOf(map[graph.NodeID]float64{1: 1, 2: 2, 3: 5}))
	if math.Abs(phi[1]-0.75) > 1e-12 || math.Abs(phi[2]-0.25) > 1e-12 || math.Abs(phi[3]) > 1e-12 {
		t.Fatalf("phi = %v, want {1:0.75 2:0.25 3:0}", phi)
	}
}

func TestAdjustNoOpWhenBalanced(t *testing.T) {
	succ := []graph.NodeID{1, 2}
	phi := Params{1: 0.6, 2: 0.4}
	Adjust(phi, succ, distOf(map[graph.NodeID]float64{1: 2, 2: 2}))
	if phi[1] != 0.6 || phi[2] != 0.4 {
		t.Fatalf("balanced set was perturbed: %v", phi)
	}
}

func TestAdjustSingleSuccessorNoOp(t *testing.T) {
	phi := Params{1: 1}
	Adjust(phi, []graph.NodeID{1}, distOf(map[graph.NodeID]float64{1: 2}))
	if phi[1] != 1 {
		t.Fatalf("phi = %v", phi)
	}
}

func TestAdjustInfiniteDistanceDrained(t *testing.T) {
	succ := []graph.NodeID{1, 2}
	phi := Params{1: 0.5, 2: 0.5}
	Adjust(phi, succ, distOf(map[graph.NodeID]float64{1: 1}))
	if phi[1] != 1 || phi[2] != 0 {
		t.Fatalf("unusable successor kept traffic: %v", phi)
	}
}

func TestAdjustSeeksEqualization(t *testing.T) {
	// Synthetic congestion feedback: the marginal distance through each
	// successor grows with the traffic it carries. As in the real system,
	// AH sees *measured* (window-smoothed) costs, not instantaneous ones.
	// The smoothed allocation must hover at the equilibrium where marginal
	// distances equalize (paper Eqs. 10-12): 1+p = 1+2(1-p) -> p = 2/3.
	succ := []graph.NodeID{1, 2}
	phi := Params{1: 0.5, 2: 0.5}
	s1, s2 := 0.5, 0.5 // smoothed carried fractions (what the meter sees)
	const alpha = 0.1
	dist := func(k graph.NodeID) float64 {
		if k == 1 {
			return 1 + s1
		}
		return 1 + 2*s2
	}
	sum1, samples := 0.0, 0
	for i := 0; i < 400; i++ {
		Adjust(phi, succ, dist)
		s1 += alpha * (phi[1] - s1)
		s2 += alpha * (phi[2] - s2)
		if i >= 200 {
			sum1 += s1
			samples++
		}
	}
	avg := sum1 / float64(samples)
	if math.Abs(avg-2.0/3) > 0.1 {
		t.Fatalf("time-averaged allocation = %v, want ~2/3 on successor 1", avg)
	}
	if err := Validate(phi, succ); err != nil {
		t.Fatal(err)
	}
}

func TestUniform(t *testing.T) {
	phi := Uniform([]graph.NodeID{1, 2, 3, 4})
	for _, v := range phi {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("phi = %v", phi)
		}
	}
	if Uniform(nil) != nil {
		t.Fatal("Uniform(nil) not nil")
	}
}

func TestSingle(t *testing.T) {
	phi := Single(7)
	if phi[7] != 1 || len(phi) != 1 {
		t.Fatalf("phi = %v", phi)
	}
}

func TestValidateRejects(t *testing.T) {
	succ := []graph.NodeID{1, 2}
	cases := map[string]Params{
		"negative":       {1: -0.1, 2: 1.1},
		"off-set":        {1: 0.5, 3: 0.5},
		"sum too small":  {1: 0.3, 2: 0.3},
		"sum too large":  {1: 0.8, 2: 0.8},
		"empty non-null": {},
	}
	for name, phi := range cases {
		if err := Validate(phi, succ); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateEmptyOK(t *testing.T) {
	if err := Validate(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	phi := Params{1: 0.5, 2: 0.5}
	c := phi.Clone()
	c[1] = 0.9
	if phi[1] != 0.5 {
		t.Fatal("Clone aliases original")
	}
}

func TestKeysSorted(t *testing.T) {
	phi := Params{9: 0.1, 1: 0.2, 5: 0.7}
	keys := phi.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 5 || keys[2] != 9 {
		t.Fatalf("keys = %v", keys)
	}
}

// Property: IH and repeated AH preserve Property 1 for arbitrary successor
// sets and distances.
func TestPropertyHeuristicsPreserveProperty1(t *testing.T) {
	check := func(seed uint64, n8 uint8, rounds8 uint8) bool {
		r := rng.New(seed)
		n := int(n8%6) + 1
		succ := make([]graph.NodeID, n)
		dists := make(map[graph.NodeID]float64, n)
		for i := range succ {
			succ[i] = graph.NodeID(i + 1)
			dists[succ[i]] = 0.1 + r.Float64()*10
		}
		phi := Initial(succ, distOf(dists))
		if err := Validate(phi, succ); err != nil {
			return false
		}
		rounds := int(rounds8 % 20)
		for i := 0; i < rounds; i++ {
			// Perturb distances between adjustments as congestion would.
			for k := range dists {
				dists[k] = 0.1 + r.Float64()*10
			}
			Adjust(phi, succ, distOf(dists))
			if err := Validate(phi, succ); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: AH never increases the marginal-distance-weighted average, i.e.
// it is a descent heuristic with respect to the current distances.
func TestPropertyAdjustDescent(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		r := rng.New(seed)
		n := int(n8%5) + 2
		succ := make([]graph.NodeID, n)
		dists := make(map[graph.NodeID]float64, n)
		for i := range succ {
			succ[i] = graph.NodeID(i + 1)
			dists[succ[i]] = 0.1 + r.Float64()*10
		}
		phi := Initial(succ, distOf(dists))
		cost := func() float64 {
			c := 0.0
			for k, v := range phi {
				c += v * dists[k]
			}
			return c
		}
		before := cost()
		Adjust(phi, succ, distOf(dists))
		return cost() <= before+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdjust(b *testing.B) {
	succ := []graph.NodeID{1, 2, 3, 4}
	dists := map[graph.NodeID]float64{1: 1, 2: 2, 3: 3, 4: 4}
	phi := Initial(succ, distOf(dists))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Adjust(phi, succ, distOf(dists))
	}
}
