package dvmp

import (
	"math"
	"testing"
	"testing/quick"

	"minroute/internal/dijkstra"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/lsu"
	"minroute/internal/numeric"
	"minroute/internal/protonet"
	"minroute/internal/topo"
)

func propCost(l *graph.Link) float64 { return l.PropDelay + 1e-4 }

func buildNet(t *testing.T, g *graph.Graph, seed uint64, costOf func(l *graph.Link) float64) (*protonet.Net, map[graph.NodeID]*Router) {
	t.Helper()
	net := protonet.New(g, seed)
	routers := make(map[graph.NodeID]*Router)
	views := make(map[graph.NodeID]lfi.RouterView)
	for _, id := range g.Nodes() {
		r := NewRouter(id, g.NumNodes(), net.Sender(id))
		routers[id] = r
		views[id] = r
		net.Attach(id, r)
	}
	n := g.NumNodes()
	net.OnDeliver = func() {
		if err := lfi.CheckAllDestinations(n, views); err != nil {
			t.Fatal(err)
		}
		if err := lfi.CheckFDOrdering(n, views); err != nil {
			t.Fatal(err)
		}
	}
	net.BringUpAll(costOf)
	return net, routers
}

func checkConverged(t *testing.T, g *graph.Graph, routers map[graph.NodeID]*Router, costOf func(l *graph.Link) float64) {
	t.Helper()
	view := dijkstra.GraphView{G: g, Cost: costOf}
	truth := make(map[graph.NodeID]*dijkstra.Result)
	for _, id := range g.Nodes() {
		truth[id] = dijkstra.Run(view, id)
	}
	for _, i := range g.Nodes() {
		r := routers[i]
		if r.Active() {
			t.Fatalf("router %d still ACTIVE after quiescence", i)
		}
		for j := 0; j < g.NumNodes(); j++ {
			jid := graph.NodeID(j)
			got, want := r.Dist(jid), truth[i].Dist[j]
			if math.IsInf(got, 1) != math.IsInf(want, 1) || (!math.IsInf(want, 1) && math.Abs(got-want) > 1e-9) {
				t.Fatalf("router %d: D_%d = %v, want %v", i, j, got, want)
			}
			if jid == i {
				continue
			}
			var wantS []graph.NodeID
			for _, k := range g.Neighbors(i) {
				if numeric.Closer(truth[k].Dist[j], truth[i].Dist[j]) {
					wantS = append(wantS, k)
				}
			}
			gotS := r.Successors(jid)
			if len(gotS) != len(wantS) {
				t.Fatalf("router %d dest %d: S = %v, want %v", i, j, gotS, wantS)
			}
			for x := range wantS {
				if gotS[x] != wantS[x] {
					t.Fatalf("router %d dest %d: S = %v, want %v", i, j, gotS, wantS)
				}
			}
		}
	}
}

func TestDVMPConvergesRing(t *testing.T) {
	g := topo.Ring(6, 1e6, 1e-3)
	net, routers := buildNet(t, g, 1, propCost)
	net.Run(200000)
	checkConverged(t, g, routers, propCost)
}

func TestDVMPConvergesGrid(t *testing.T) {
	g := topo.Grid(3, 3, 1e6, 1e-3)
	net, routers := buildNet(t, g, 2, propCost)
	net.Run(500000)
	checkConverged(t, g, routers, propCost)
}

func TestDVMPConvergesNET1(t *testing.T) {
	n := topo.NET1()
	net, routers := buildNet(t, n.Graph, 3, propCost)
	net.Run(1000000)
	checkConverged(t, n.Graph, routers, propCost)
}

func TestDVMPConvergesCAIRN(t *testing.T) {
	n := topo.CAIRN()
	net, routers := buildNet(t, n.Graph, 4, propCost)
	net.Run(3000000)
	checkConverged(t, n.Graph, routers, propCost)
}

func TestDVMPUnequalCostMultipath(t *testing.T) {
	n := topo.NET1()
	uniform := func(l *graph.Link) float64 { return 1 }
	net, routers := buildNet(t, n.Graph, 5, uniform)
	net.Run(1000000)
	succ := routers[0].Successors(8)
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 3 {
		t.Fatalf("S_8 at node 0 = %v, want [1 3]", succ)
	}
}

func TestDVMPReconvergesAfterCostChange(t *testing.T) {
	g := topo.Ring(6, 1e6, 1e-3)
	costs := map[[2]graph.NodeID]float64{}
	costOf := func(l *graph.Link) float64 {
		if c, ok := costs[[2]graph.NodeID{l.From, l.To}]; ok {
			return c
		}
		return propCost(l)
	}
	net, routers := buildNet(t, g, 6, costOf)
	net.Run(200000)
	costs[[2]graph.NodeID{0, 1}] = 0.5
	net.ChangeCost(0, 1, 0.5)
	net.Run(200000)
	checkConverged(t, g, routers, costOf)
}

func TestDVMPLoopFreeUnderFailures(t *testing.T) {
	g := topo.Grid(3, 3, 1e6, 1e-3)
	net, routers := buildNet(t, g, 7, propCost)
	net.Run(500000)
	net.FailLink(0, 1)
	for i := 0; i < 40 && net.Step(); i++ {
	}
	net.FailLink(4, 5)
	net.Run(500000)
	checkConverged(t, g, routers, propCost)
}

func TestDVMPPartitionNoCountToInfinity(t *testing.T) {
	// The classic DV killer: partition the ring and verify distances to the
	// unreachable side become infinite (via the hop-count horizon) with the
	// protocol quiescing.
	g := topo.Ring(4, 1e6, 1e-3)
	net, routers := buildNet(t, g, 8, propCost)
	net.Run(200000)
	net.FailLink(1, 2)
	net.FailLink(3, 0)
	net.Run(200000) // must quiesce: the budget panics otherwise
	if !math.IsInf(routers[0].Dist(2), 1) {
		t.Fatalf("node 0 still reaches 2 after partition: %v", routers[0].Dist(2))
	}
	if len(routers[0].Successors(2)) != 0 {
		t.Fatal("successors survive partition")
	}
	// Heal and reconverge.
	net.RestoreLink(1, 2, 1e6, 1e-3, propCost(&graph.Link{PropDelay: 1e-3}))
	net.Run(200000)
	checkConverged(t, g, routers, propCost)
}

func TestDVMPBestSuccessorAchievesDistance(t *testing.T) {
	n := topo.NET1()
	net, routers := buildNet(t, n.Graph, 9, propCost)
	net.Run(1000000)
	for _, i := range n.Graph.Nodes() {
		r := routers[i]
		for j := 0; j < n.Graph.NumNodes(); j++ {
			jid := graph.NodeID(j)
			if jid == i {
				continue
			}
			best := r.BestSuccessor(jid)
			if best == graph.None {
				t.Fatalf("router %d: no successor for %d", i, j)
			}
			if got, want := r.SuccessorDistance(jid, best), r.Dist(jid); math.Abs(got-want) > 1e-9 {
				t.Fatalf("router %d dest %d: best distance %v != D %v", i, j, got, want)
			}
		}
	}
}

func TestDVMPPropertyRandomGraphs(t *testing.T) {
	check := func(seed uint64, n8, extra8 uint8) bool {
		n := int(n8%7) + 3
		extra := int(extra8 % 8)
		g := topo.Random(seed, n, extra, 1e6, 1e7, 1e-3)
		net := protonet.New(g, seed^0xd15c)
		routers := make(map[graph.NodeID]*Router)
		views := make(map[graph.NodeID]lfi.RouterView)
		for _, id := range g.Nodes() {
			r := NewRouter(id, g.NumNodes(), net.Sender(id))
			routers[id] = r
			views[id] = r
			net.Attach(id, r)
		}
		ok := true
		net.OnDeliver = func() {
			if lfi.CheckAllDestinations(n, views) != nil || lfi.CheckFDOrdering(n, views) != nil {
				ok = false
			}
		}
		net.BringUpAll(propCost)
		net.Run(3000000)
		if !ok {
			return false
		}
		view := dijkstra.GraphView{G: g, Cost: propCost}
		for _, id := range g.Nodes() {
			truth := dijkstra.Run(view, id)
			for j := 0; j < n; j++ {
				got, want := routers[id].Dist(graph.NodeID(j)), truth.Dist[j]
				if math.IsInf(got, 1) != math.IsInf(want, 1) {
					return false
				}
				if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDVMPNilSenderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil sender accepted")
		}
	}()
	NewRouter(0, 3, nil)
}

func TestDVMPIgnoresStaleMessages(t *testing.T) {
	g := topo.Ring(3, 1e6, 1e-3)
	net, routers := buildNet(t, g, 10, propCost)
	net.Run(100000)
	r := routers[0]
	r.LinkDown(1)
	before := r.Dist(1)
	r.HandleLSU(&lsu.Msg{From: 1, Entries: []lsu.Entry{{Op: lsu.OpAdd, Head: 1, Tail: 0, Cost: 0.000001}}})
	if r.Dist(1) != before {
		t.Fatal("stale message from down neighbor processed")
	}
}
