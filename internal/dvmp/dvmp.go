// Package dvmp applies the paper's Loop-Free Invariant framework to a
// distance-vector algorithm, demonstrating the generality claim of
// Section 3: "the LFI conditions are applicable to any type of routing
// algorithm ... in distance-vector algorithms, the distances are directly
// communicated among neighbors". The construction follows the MPATH line
// of follow-on work by the same authors.
//
// DVMP is to distance vectors what MPDA is to link states:
//
//   - Routers exchange distance vectors (per-destination distances) instead
//     of partial topologies; D_jk is whatever neighbor k last reported.
//   - The Bellman-Ford equation D_j = min_k(D_jk + l_ik) replaces the
//     topology merge + Dijkstra of MPDA.
//   - The identical feasible-distance machinery provides loop-freedom: the
//     successor set is S_j = {k : D_jk < FD_j}, FD may fall freely but may
//     rise only after a single-hop ACK synchronization guarantees every
//     neighbor has seen the latest reported distances (ACTIVE/PASSIVE
//     phases, exactly as in MPDA).
//
// Count-to-infinity, the classic distance-vector pathology after
// partitions, is eliminated by carrying hop counts in the vector: any
// distance whose path would span >= n hops is treated as unreachable
// (the RIP "16 is infinity" rule made exact).
//
// Wire format: DVMP reuses the LSU message (internal/lsu). A vector entry
// for destination j is encoded as Entry{Head: j, Tail: NodeID(hops),
// Cost: D}; OpDelete withdraws a destination. This keeps the transport,
// harness and simulator plumbing identical to MPDA's.
package dvmp

import (
	"math"

	"minroute/internal/graph"
	"minroute/internal/lsu"
	"minroute/internal/numeric"
)

// Sender transmits a vector message to a neighbor over a reliable FIFO
// link.
type Sender func(to graph.NodeID, m *lsu.Msg)

// entry is one remembered neighbor report.
type entry struct {
	dist float64
	hops int
}

// Router is the DVMP state machine. Not safe for concurrent use.
type Router struct {
	id   graph.NodeID
	n    int
	send Sender

	// adj holds l_ik for up neighbors.
	adj map[graph.NodeID]float64
	// rcv[k][j] is neighbor k's last reported (distance, hops) to j.
	rcv map[graph.NodeID][]entry
	// dist[j] is D_j; hops[j] the corresponding hop count.
	dist []float64
	hops []int
	// reported[j] is the distance last flooded to the neighbors.
	reported []float64
	// fd[j] is the feasible distance.
	fd []float64
	// succ[j] is S_j, ascending.
	succ [][]graph.NodeID

	active   bool
	awaiting map[graph.NodeID]bool
}

// NewRouter returns a DVMP router for node id over an ID space of n nodes.
func NewRouter(id graph.NodeID, n int, send Sender) *Router {
	if send == nil {
		panic("dvmp: nil sender")
	}
	r := &Router{
		id:       id,
		n:        n,
		send:     send,
		adj:      make(map[graph.NodeID]float64),
		rcv:      make(map[graph.NodeID][]entry),
		dist:     infDists(n),
		hops:     make([]int, n),
		reported: infDists(n),
		fd:       infDists(n),
		succ:     make([][]graph.NodeID, n),
		awaiting: make(map[graph.NodeID]bool),
	}
	r.dist[id] = 0
	r.reported[id] = 0
	r.fd[id] = 0
	return r
}

func infDists(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = math.Inf(1)
	}
	return d
}

// ID returns the router's address.
func (r *Router) ID() graph.NodeID { return r.id }

// Active reports whether an ACK synchronization is in progress.
func (r *Router) Active() bool { return r.active }

// Dist returns D_j.
func (r *Router) Dist(j graph.NodeID) float64 { return r.dist[j] }

// FD returns the feasible distance FD_j (lfi.RouterView).
func (r *Router) FD(j graph.NodeID) float64 { return r.fd[j] }

// Successors returns S_j (lfi.RouterView). Callers must not mutate it.
func (r *Router) Successors(j graph.NodeID) []graph.NodeID { return r.succ[j] }

// NbrDist returns D_jk as last reported by neighbor k.
func (r *Router) NbrDist(j, k graph.NodeID) float64 {
	v, ok := r.rcv[k]
	if !ok {
		return math.Inf(1)
	}
	return v[j].dist
}

// SuccessorDistance returns D_jk + l_ik.
func (r *Router) SuccessorDistance(j, k graph.NodeID) float64 {
	l, ok := r.adj[k]
	if !ok {
		return math.Inf(1)
	}
	return r.NbrDist(j, k) + l
}

// BestSuccessor returns the successor minimizing D_jk + l_ik.
func (r *Router) BestSuccessor(j graph.NodeID) graph.NodeID {
	best := math.Inf(1)
	chosen := graph.None
	for _, k := range r.succ[j] {
		if d := r.SuccessorDistance(j, k); d < best {
			best = d
			chosen = k
		}
	}
	return chosen
}

// LinkUp handles a new adjacent link with cost l_ik: the router sends its
// full current vector to the new neighbor.
func (r *Router) LinkUp(k graph.NodeID, cost float64) {
	if _, known := r.adj[k]; !known {
		v := make([]entry, r.n)
		for j := range v {
			v[j] = entry{dist: math.Inf(1)}
		}
		v[k] = entry{dist: 0}
		r.rcv[k] = v
	}
	r.adj[k] = cost
	if full := r.fullVector(); len(full) > 0 {
		r.send(k, &lsu.Msg{From: r.id, Entries: full})
	}
	r.process(graph.None)
}

// LinkCostChange handles an adjacent-link cost change.
func (r *Router) LinkCostChange(k graph.NodeID, cost float64) {
	if _, up := r.adj[k]; !up {
		return
	}
	r.adj[k] = cost
	r.process(graph.None)
}

// LinkDown handles an adjacent-link failure; pending ACKs from k count as
// received.
func (r *Router) LinkDown(k graph.NodeID) {
	delete(r.adj, k)
	delete(r.rcv, k)
	delete(r.awaiting, k)
	r.process(graph.None)
}

// HandleLSU processes a distance-vector message from a neighbor.
func (r *Router) HandleLSU(m *lsu.Msg) {
	if _, up := r.adj[m.From]; !up {
		return
	}
	v := r.rcv[m.From]
	for _, e := range m.Entries {
		j := int(e.Head)
		if j < 0 || j >= r.n {
			continue
		}
		switch e.Op {
		case lsu.OpAdd, lsu.OpChange:
			v[j] = entry{dist: e.Cost, hops: int(e.Tail)}
		case lsu.OpDelete:
			v[j] = entry{dist: math.Inf(1)}
		}
	}
	if m.Ack {
		delete(r.awaiting, m.From)
	}
	ackTo := graph.None
	if len(m.Entries) > 0 {
		ackTo = m.From
	}
	r.process(ackTo)
}

// process mirrors MPDA's event body: recompute (unless deferred by an
// ACTIVE phase), maintain FD, recompute successors, flood and acknowledge.
func (r *Router) process(ackTo graph.NodeID) {
	changed := false
	switch {
	case !r.active:
		changed = r.recompute()
		for j := range r.fd {
			r.fd[j] = math.Min(r.fd[j], r.dist[j])
		}
	case len(r.awaiting) == 0:
		// The last ACK arrived: every neighbor holds `reported`.
		temp := append([]float64(nil), r.reported...)
		r.active = false
		changed = r.recompute()
		for j := range r.fd {
			r.fd[j] = math.Min(temp[j], r.dist[j])
		}
	default:
		// ACTIVE with ACKs outstanding: inputs recorded, recompute deferred.
	}

	r.recomputeSuccessors()

	if changed {
		diff := r.vectorDiff()
		if len(diff) > 0 {
			nbrs := r.neighbors()
			if len(nbrs) > 0 {
				r.active = true
				for _, k := range nbrs {
					r.awaiting[k] = true
					r.send(k, &lsu.Msg{From: r.id, Entries: diff, Ack: k == ackTo})
					if k == ackTo {
						ackTo = graph.None
					}
				}
				for j := range r.reported {
					r.reported[j] = r.dist[j]
				}
			}
		}
	}
	if ackTo != graph.None {
		if _, up := r.adj[ackTo]; up {
			r.send(ackTo, &lsu.Msg{From: r.id, Ack: true})
		}
	}
}

// recompute runs Bellman-Ford over the neighbor vectors and reports
// whether any D_j changed. Paths of n hops or more are unreachable (the
// exact count-to-infinity horizon).
func (r *Router) recompute() bool {
	changed := false
	nbrs := r.neighbors()
	for j := 0; j < r.n; j++ {
		if graph.NodeID(j) == r.id {
			continue
		}
		best := math.Inf(1)
		bestHops := 0
		for _, k := range nbrs {
			e := r.rcv[k][j]
			if math.IsInf(e.dist, 1) || e.hops+1 >= r.n {
				continue
			}
			if d := e.dist + r.adj[k]; d < best {
				best = d
				bestHops = e.hops + 1
			}
		}
		//lint:floateq-ok change detection: any bit-level distance change must trigger an update
		if best != r.dist[j] {
			r.dist[j] = best
			r.hops[j] = bestHops
			changed = true
		}
	}
	return changed
}

func (r *Router) recomputeSuccessors() {
	nbrs := r.neighbors()
	for j := range r.succ {
		jid := graph.NodeID(j)
		if jid == r.id {
			r.succ[j] = nil
			continue
		}
		set := r.succ[j][:0]
		for _, k := range nbrs {
			if numeric.Closer(r.rcv[k][j].dist, r.fd[j]) {
				set = append(set, k)
			}
		}
		r.succ[j] = set
	}
}

// vectorDiff returns the entries whose distance differs from the last
// report.
func (r *Router) vectorDiff() []lsu.Entry {
	var out []lsu.Entry
	for j := 0; j < r.n; j++ {
		cur, rep := r.dist[j], r.reported[j]
		//lint:floateq-ok change detection against the verbatim last-reported value, not arithmetic equality
		if cur == rep {
			continue
		}
		if math.IsInf(cur, 1) {
			out = append(out, lsu.Entry{Op: lsu.OpDelete, Head: graph.NodeID(j), Tail: graph.NodeID(j)})
			continue
		}
		op := lsu.OpChange
		if math.IsInf(rep, 1) {
			op = lsu.OpAdd
		}
		out = append(out, lsu.Entry{Op: op, Head: graph.NodeID(j), Tail: graph.NodeID(r.hops[j]), Cost: cur})
	}
	return out
}

// fullVector returns every finite distance as an add entry (sent to a new
// neighbor).
func (r *Router) fullVector() []lsu.Entry {
	var out []lsu.Entry
	for j := 0; j < r.n; j++ {
		if math.IsInf(r.dist[j], 1) {
			continue
		}
		out = append(out, lsu.Entry{Op: lsu.OpAdd, Head: graph.NodeID(j), Tail: graph.NodeID(r.hops[j]), Cost: r.dist[j]})
	}
	return out
}

func (r *Router) neighbors() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(r.adj))
	//lint:maporder-ok keys are collected and insertion-sorted below before any use
	for k := range r.adj {
		out = append(out, k)
	}
	// Insertion sort: neighbor counts are tiny.
	for i := 1; i < len(out); i++ {
		for x := i; x > 0 && out[x] < out[x-1]; x-- {
			out[x], out[x-1] = out[x-1], out[x]
		}
	}
	return out
}
