// Package dataplane implements the live forwarding plane: per-node
// weighted-multipath data-packet forwarding driven by the phi routing
// parameters the control plane computes. The control plane (internal/node
// wrapping the MPDA router) publishes immutable forwarding-table
// snapshots; the forwarder looks packets up lock-free and relays them hop
// by hop over an unreliable transport.Datagram, splitting traffic across
// the successor set in proportion to phi — the approximation to
// minimum-delay routing the paper reduces to per-hop routing-parameter
// adjustment.
//
// Flows stick to paths. A per-packet weighted coin flip would match phi
// exactly in expectation but reorder every flow; instead each destination
// owns a fixed ring of consistent-hash buckets apportioned to next hops
// by weight, and a flow's 5-tuple-style hash picks its bucket. While the
// weights hold, a flow's path holds. When the weights move, buckets are
// reassigned minimally: only the fraction of the ring that the weight
// change itself demands switches hops, so only that fraction of flows
// migrates — the rest never notice.
package dataplane

import (
	"fmt"
	"math"
	"sort"

	"minroute/internal/graph"
)

// NumBuckets is the ring size per destination. 256 buckets bound the
// apportionment error of any bucketed split at 1/256 ≈ 0.4% absolute per
// next hop, inside the 2% gate the cross-validation holds the live plane
// to, while keeping a table snapshot for an n-node mesh at n*256 bytes of
// bucket state.
const NumBuckets = 256

// Entry describes the desired split for one destination: the successor
// set and its phi weights. Hops must be sorted ascending and Weights sum
// to 1 (the alloc invariant); Table building normalizes defensively.
type Entry struct {
	Dst     graph.NodeID
	Hops    []graph.NodeID
	Weights []float64
}

// route is the compiled per-destination state inside a Table.
type route struct {
	hops    []graph.NodeID // successor set, ascending
	weights []float64      // phi per hop, same order, normalized
	buckets []uint8        // bucket -> index into hops
}

// Table is an immutable compiled forwarding snapshot. Build tables with
// Compile and swap them atomically; never mutate one in place.
type Table struct {
	routes map[graph.NodeID]*route
}

// Compile builds a Table from per-destination entries, reusing prev's
// bucket assignments where possible so that flows only migrate when the
// weights actually moved (minimal disruption). prev may be nil.
//
// Apportionment is largest-remainder: each hop gets floor(weight*256)
// buckets, and the leftovers go to the largest fractional remainders
// (ties to the lower hop ID), so the bucket shares match phi to within
// 1/NumBuckets. Reassignment is two-pass: buckets whose current hop is
// still present and still under its new quota keep their hop; only the
// freed surplus moves, scanned in ascending bucket order so the result is
// a pure function of (entries, prev) — independent of map order,
// scheduling, and GOMAXPROCS.
func Compile(entries []Entry, prev *Table) *Table {
	t := &Table{routes: make(map[graph.NodeID]*route, len(entries))}
	for _, e := range entries {
		if len(e.Hops) == 0 {
			continue
		}
		r := &route{
			hops:    append([]graph.NodeID(nil), e.Hops...),
			weights: append([]float64(nil), e.Weights...),
		}
		sortRoute(r)
		if len(r.weights) != len(r.hops) { // absent weights: uniform
			r.weights = make([]float64, len(r.hops))
		}
		normalize(r.weights)
		var old *route
		if prev != nil {
			old = prev.routes[e.Dst]
		}
		r.buckets = assignBuckets(r.hops, quotas(r.weights), old)
		t.routes[e.Dst] = r
	}
	return t
}

// sortRoute orders hops ascending, carrying weights along.
func sortRoute(r *route) {
	if sort.SliceIsSorted(r.hops, func(i, j int) bool { return r.hops[i] < r.hops[j] }) {
		return
	}
	idx := make([]int, len(r.hops))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.hops[idx[a]] < r.hops[idx[b]] })
	hops := make([]graph.NodeID, len(idx))
	ws := make([]float64, len(idx))
	for i, j := range idx {
		hops[i] = r.hops[j]
		if j < len(r.weights) {
			ws[i] = r.weights[j]
		}
	}
	r.hops, r.weights = hops, ws
}

// normalize scales weights to sum 1, falling back to uniform when the sum
// is unusable (zero, negative, or non-finite entries).
func normalize(ws []float64) {
	sum := 0.0
	ok := true
	for _, w := range ws {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			ok = false
			break
		}
		sum += w
	}
	if !ok || sum <= 0 {
		for i := range ws {
			ws[i] = 1 / float64(len(ws))
		}
		return
	}
	for i := range ws {
		ws[i] /= sum
	}
}

// quotas apportions NumBuckets buckets to hops by largest remainder.
func quotas(ws []float64) []int {
	q := make([]int, len(ws))
	type frac struct {
		i int
		f float64
	}
	rem := make([]frac, len(ws))
	used := 0
	for i, w := range ws {
		exact := w * NumBuckets
		q[i] = int(exact)
		rem[i] = frac{i, exact - float64(q[i])}
		used += q[i]
	}
	// Hand leftover buckets to the largest remainders; tie → lower index
	// (lower hop ID, since hops are sorted) for determinism.
	sort.Slice(rem, func(a, b int) bool {
		//lint:floateq-ok sort comparators need a strict weak order; tolerant equality is not transitive
		if rem[a].f != rem[b].f {
			return rem[a].f > rem[b].f
		}
		return rem[a].i < rem[b].i
	})
	for k := 0; used < NumBuckets; k++ {
		q[rem[k%len(rem)].i]++
		used++
	}
	return q
}

// assignBuckets fills the bucket ring against quota, keeping old
// assignments wherever the bucket's previous hop survives under its new
// quota. old may be nil (fresh route): buckets then fill in hop order.
func assignBuckets(hops []graph.NodeID, quota []int, old *route) []uint8 {
	b := make([]uint8, NumBuckets)
	fill := make([]int, len(hops))
	const unset = 0xFF
	for i := range b {
		b[i] = unset
	}
	if old != nil {
		// Pass 1: keep buckets whose previous hop is still a successor
		// and still owes buckets under the new quota.
		oldIdx := make(map[graph.NodeID]int, len(hops))
		for i, h := range hops {
			oldIdx[h] = i
		}
		for i := 0; i < NumBuckets; i++ {
			if int(old.buckets[i]) >= len(old.hops) {
				continue
			}
			h := old.hops[old.buckets[i]]
			if ni, okh := oldIdx[h]; okh && fill[ni] < quota[ni] {
				b[i] = uint8(ni)
				fill[ni]++
			}
		}
	}
	// Pass 2: hand the remaining buckets to under-quota hops, both sides
	// scanned in ascending order.
	ni := 0
	for i := 0; i < NumBuckets; i++ {
		if b[i] != unset {
			continue
		}
		for fill[ni] >= quota[ni] {
			ni++
		}
		b[i] = uint8(ni)
		fill[ni]++
	}
	return b
}

// Lookup returns the next hop for (dst, flowID), or ok=false when the
// table holds no route to dst.
func (t *Table) Lookup(dst graph.NodeID, flowID uint64) (graph.NodeID, bool) {
	r := t.routes[dst]
	if r == nil {
		return 0, false
	}
	return r.hops[r.buckets[flowHash(flowID)%NumBuckets]], true
}

// Route returns the successor set and weights for dst (copies), or
// ok=false. For observability; not on the forwarding path.
func (t *Table) Route(dst graph.NodeID) (hops []graph.NodeID, weights []float64, ok bool) {
	r := t.routes[dst]
	if r == nil {
		return nil, nil, false
	}
	return append([]graph.NodeID(nil), r.hops...), append([]float64(nil), r.weights...), true
}

// BucketShares returns, for dst, each successor's share of the bucket
// ring — the realized long-run split a large flow population sees.
func (t *Table) BucketShares(dst graph.NodeID) map[graph.NodeID]float64 {
	r := t.routes[dst]
	if r == nil {
		return nil
	}
	counts := make([]int, len(r.hops))
	for _, hi := range r.buckets {
		counts[hi]++
	}
	out := make(map[graph.NodeID]float64, len(r.hops))
	for i, h := range r.hops {
		out[h] = float64(counts[i]) / NumBuckets
	}
	return out
}

// Dests returns the destinations the table routes, ascending.
func (t *Table) Dests() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(t.routes))
	//lint:maporder-ok keys are collected then sorted below
	for j := range t.routes {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Moved counts buckets for dst whose hop differs between t and prev — the
// fraction of flows a table swap migrates. Routes absent from either side
// count as fully moved.
func (t *Table) Moved(prev *Table, dst graph.NodeID) int {
	cur := t.routes[dst]
	var old *route
	if prev != nil {
		old = prev.routes[dst]
	}
	if cur == nil || old == nil {
		return NumBuckets
	}
	moved := 0
	for i := 0; i < NumBuckets; i++ {
		if cur.hops[cur.buckets[i]] != old.hops[old.buckets[i]] {
			moved++
		}
	}
	return moved
}

// String renders the table canonically (sorted, fixed precision) for
// debugging and byte-deterministic artifact comparison.
func (t *Table) String() string {
	out := ""
	for _, j := range t.Dests() {
		r := t.routes[j]
		out += fmt.Sprintf("dst %d:", j)
		counts := make([]int, len(r.hops))
		for _, hi := range r.buckets {
			counts[hi]++
		}
		for i, h := range r.hops {
			out += fmt.Sprintf(" %d=%.6f(%d)", h, r.weights[i], counts[i])
		}
		out += "\n"
	}
	return out
}

// flowHash scrambles a flow ID into a bucket index. splitmix64 finalizer:
// cheap, stateless, and avalanche-complete, so sequential flow IDs (the
// traffic generator numbers subflows densely) spread uniformly over the
// ring.
func flowHash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
