package dataplane

import (
	"math"
	"runtime"
	"testing"

	"minroute/internal/graph"
)

// TestBucketSharesMatchWeights pins the apportionment bound: each next
// hop's bucket share sits within 1/NumBuckets of its phi weight — the
// construction that keeps the realized split inside the 2% gate.
func TestBucketSharesMatchWeights(t *testing.T) {
	cases := [][]float64{
		{1},
		{0.5, 0.5},
		{0.75, 0.25},
		{0.6, 0.3, 0.1},
		{1. / 3, 1. / 3, 1. / 3},
		{0.998, 0.001, 0.001},
	}
	for _, ws := range cases {
		hops := make([]graph.NodeID, len(ws))
		for i := range hops {
			hops[i] = graph.NodeID(i + 1)
		}
		tab := Compile([]Entry{{Dst: 9, Hops: hops, Weights: ws}}, nil)
		shares := tab.BucketShares(9)
		for i, h := range hops {
			if d := math.Abs(shares[h] - ws[i]); d > 1.0/NumBuckets+1e-12 {
				t.Errorf("weights %v: hop %d share %.6f want %.6f (err %.6f > 1/%d)",
					ws, h, shares[h], ws[i], d, NumBuckets)
			}
		}
		total := 0.0
		for _, s := range shares {
			total += s
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("weights %v: shares sum %.9f", ws, total)
		}
	}
}

// TestFlowStickiness asserts a flow's next hop is a pure function of the
// table: repeated lookups agree, and recompiling identical entries moves
// no flow.
func TestFlowStickiness(t *testing.T) {
	entries := []Entry{{Dst: 5, Hops: []graph.NodeID{1, 2, 3}, Weights: []float64{0.5, 0.3, 0.2}}}
	tab := Compile(entries, nil)
	first := make(map[uint64]graph.NodeID)
	for id := uint64(0); id < 4096; id++ {
		h, ok := tab.Lookup(5, id)
		if !ok {
			t.Fatal("route missing")
		}
		first[id] = h
	}
	same := Compile(entries, tab)
	for id := uint64(0); id < 4096; id++ {
		if h, _ := tab.Lookup(5, id); h != first[id] {
			t.Fatalf("flow %d moved on re-lookup: %d -> %d", id, first[id], h)
		}
		if h, _ := same.Lookup(5, id); h != first[id] {
			t.Fatalf("flow %d moved on identical recompile: %d -> %d", id, first[id], h)
		}
	}
	if m := same.Moved(tab, 5); m != 0 {
		t.Fatalf("identical recompile moved %d buckets", m)
	}
}

// TestRebalanceMinimalMovement pins the consistent-hash contract: pushing
// the weights from {0.5,0.5} to {0.75,0.25} must move exactly the quota
// difference — 64 of 256 buckets, every one from the shrinking hop to the
// growing hop — and nothing else.
func TestRebalanceMinimalMovement(t *testing.T) {
	hops := []graph.NodeID{1, 2}
	old := Compile([]Entry{{Dst: 7, Hops: hops, Weights: []float64{0.5, 0.5}}}, nil)
	next := Compile([]Entry{{Dst: 7, Hops: hops, Weights: []float64{0.75, 0.25}}}, old)

	if m := next.Moved(old, 7); m != NumBuckets/4 {
		t.Fatalf("moved %d buckets, want exactly %d", m, NumBuckets/4)
	}
	or, nr := old.routes[7], next.routes[7]
	for i := 0; i < NumBuckets; i++ {
		oh, nh := or.hops[or.buckets[i]], nr.hops[nr.buckets[i]]
		if oh != nh && !(oh == 2 && nh == 1) {
			t.Fatalf("bucket %d moved %d -> %d; only 2->1 movement is justified", i, oh, nh)
		}
	}
	// And back: restoring the old weights moves the same fraction again,
	// never more.
	back := Compile([]Entry{{Dst: 7, Hops: hops, Weights: []float64{0.5, 0.5}}}, next)
	if m := back.Moved(next, 7); m != NumBuckets/4 {
		t.Fatalf("restore moved %d buckets, want %d", m, NumBuckets/4)
	}
}

// TestRebalanceHopRemoval: when a successor vanishes, only its buckets
// (plus any quota shift) reassign; flows on surviving hops stay put.
func TestRebalanceHopRemoval(t *testing.T) {
	old := Compile([]Entry{{Dst: 3, Hops: []graph.NodeID{1, 2, 4}, Weights: []float64{0.4, 0.4, 0.2}}}, nil)
	next := Compile([]Entry{{Dst: 3, Hops: []graph.NodeID{1, 4}, Weights: []float64{0.5, 0.5}}}, old)
	or, nr := old.routes[3], next.routes[3]
	for i := 0; i < NumBuckets; i++ {
		oh, nh := or.hops[or.buckets[i]], nr.hops[nr.buckets[i]]
		if oh != 2 && oh != nh {
			// A surviving hop's bucket may only move if that hop shrank
			// below its old fill; here both survivors grew, so none move.
			t.Fatalf("bucket %d moved %d -> %d though hop %d survived and grew", i, oh, nh, oh)
		}
	}
}

// TestCompileDeterministic asserts a table is a pure function of its
// entries: entry order, unsorted hop lists, and GOMAXPROCS perturbations
// all yield byte-identical renderings.
func TestCompileDeterministic(t *testing.T) {
	a := []Entry{
		{Dst: 1, Hops: []graph.NodeID{2, 3}, Weights: []float64{0.7, 0.3}},
		{Dst: 4, Hops: []graph.NodeID{5}, Weights: []float64{1}},
		{Dst: 6, Hops: []graph.NodeID{7, 8, 9}, Weights: []float64{0.2, 0.5, 0.3}},
	}
	b := []Entry{ // shuffled entries, shuffled hops
		{Dst: 6, Hops: []graph.NodeID{9, 7, 8}, Weights: []float64{0.3, 0.2, 0.5}},
		{Dst: 4, Hops: []graph.NodeID{5}, Weights: []float64{1}},
		{Dst: 1, Hops: []graph.NodeID{3, 2}, Weights: []float64{0.3, 0.7}},
	}
	want := Compile(a, nil).String()
	prev := runtime.GOMAXPROCS(0)
	for _, procs := range []int{1, 2, prev} {
		runtime.GOMAXPROCS(procs)
		for i := 0; i < 8; i++ {
			if got := Compile(b, nil).String(); got != want {
				t.Fatalf("GOMAXPROCS=%d iter %d: table diverged:\n%s\nwant:\n%s", procs, i, got, want)
			}
		}
	}
	runtime.GOMAXPROCS(prev)
}

// TestCompileDegenerateWeights: unusable weights fall back to a uniform
// split instead of panicking or starving hops.
func TestCompileDegenerateWeights(t *testing.T) {
	tab := Compile([]Entry{
		{Dst: 1, Hops: []graph.NodeID{2, 3}, Weights: []float64{0, 0}},
		{Dst: 4, Hops: []graph.NodeID{5, 6}, Weights: []float64{math.NaN(), 1}},
		{Dst: 7, Hops: []graph.NodeID{8, 9}}, // no weights at all
	}, nil)
	for _, dst := range []graph.NodeID{1, 4, 7} {
		for h, s := range tab.BucketShares(dst) {
			if math.Abs(s-0.5) > 1e-12 {
				t.Errorf("dst %d hop %d share %.6f, want uniform 0.5", dst, h, s)
			}
		}
	}
	if _, ok := tab.Lookup(99, 0); ok {
		t.Error("lookup of unrouted destination succeeded")
	}
	empty := Compile([]Entry{{Dst: 1}}, nil) // no hops: entry skipped
	if _, ok := empty.Lookup(1, 0); ok {
		t.Error("entry with no successors produced a route")
	}
}
