package dataplane

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"minroute/internal/graph"
	"minroute/internal/telemetry"
	"minroute/internal/transport"
	"minroute/internal/wire"
)

// DefaultTTL bounds a data packet's hop budget. MPDA keeps the routing
// graph loop-free at every instant, so any packet that burns 32 hops on a
// mesh of tens of nodes is evidence of a bug, not a long path.
const DefaultTTL = 32

// Config configures one node's Forwarder.
type Config struct {
	// Self is this node's ID; Nodes the mesh size (IDs are 0..Nodes-1).
	Self  graph.NodeID
	Nodes int
	// Conn is the node's data port. The Forwarder owns it: Close closes it.
	Conn transport.Datagram
	// Clock stamps and measures packet delay.
	Clock transport.Clock
	// TTL is the hop budget stamped on originated packets (DefaultTTL if 0).
	TTL uint8
	// Metrics receives the forwarding counters (optional).
	Metrics *telemetry.Registry
	// LatencyOf returns the emulated one-hop latency for relaying a
	// packet of sizeBits to neighbor next — per the paper's link model,
	// sizeBits/capacity + propagation delay. The forwarder accumulates it
	// arithmetically in the packet's Accum field instead of sleeping, so
	// the measured delay distribution is exact rather than hostage to
	// timer granularity. Nil means no emulated latency.
	LatencyOf func(next graph.NodeID, sizeBits uint32) float64
	// OnDeliver, if set, observes every locally delivered packet with its
	// end-to-end delay (seconds). Called from the receive loop; keep it fast.
	OnDeliver func(p *wire.DataPacket, delay float64)
}

// FlowStat aggregates the packets of one flow observed at its sink.
type FlowStat struct {
	FlowID   uint64
	Src      graph.NodeID
	Packets  int64
	Bits     int64
	DelaySum float64 // seconds
	MaxDelay float64
	LastSeen float64 // clock time of last delivery
}

// MeanDelay returns the flow's mean end-to-end delay in seconds.
func (s FlowStat) MeanDelay() float64 {
	if s.Packets == 0 {
		return 0
	}
	return s.DelaySum / float64(s.Packets)
}

// SplitStat reports one (destination, next-hop) pair's observed share of
// this node's forwarded traffic, next to the phi weight the table wants.
type SplitStat struct {
	Dst, Hop graph.NodeID
	Packets  int64
	Got      float64 // observed fraction of packets to Dst via Hop
	Want     float64 // phi weight in the current table
}

// Snapshot is a consistent-enough view of a Forwarder's counters for
// observability; taken without stopping the data path.
type Snapshot struct {
	Origin, Forwarded, Delivered   float64
	DropNoRoute, DropNoAddr        float64
	TTLExpired, Looped, RecvErrors float64
	Splits                         []SplitStat
	Flows                          []FlowStat
}

// peerAddr maps a neighbor to its data-port address and per-link tx
// counter; the slice (indexed by node ID) is copy-on-write so the
// forwarding path reads it with one atomic load.
type peerAddr struct {
	addr string
	tx   *telemetry.Counter
}

// Forwarder is one node's data plane: it originates, relays, and delivers
// data packets under the current forwarding table. The table and peer map
// are swapped atomically by the control plane; the packet path takes no
// locks.
type Forwarder struct {
	cfg   Config
	ttl   uint8
	table atomic.Pointer[Table]
	peers atomic.Pointer[[]peerAddr]

	// mu orders control-plane mutations (SetPeer, Publish) and guards the
	// flow map. Lock order: node.Node.mu may be held when calling in here;
	// the Forwarder never calls back out, so the order is acyclic.
	mu    sync.Mutex
	flows map[uint64]*FlowStat

	// splits counts forwarded packets per (dst, next hop), flat at
	// dst*Nodes+hop. Atomic adds: origin and relay paths race benignly.
	splits []int64

	origin, forwarded, delivered *telemetry.Counter
	dropNoRoute, dropNoAddr      *telemetry.Counter
	ttlExpired, looped, recvErrs *telemetry.Counter

	done chan struct{}
}

// New builds a Forwarder over conn and starts its receive loop. Close
// stops the loop and releases the socket.
func New(cfg Config) *Forwarder {
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry(0)
	}
	f := &Forwarder{
		cfg:         cfg,
		ttl:         cfg.TTL,
		flows:       make(map[uint64]*FlowStat),
		splits:      make([]int64, cfg.Nodes*cfg.Nodes),
		origin:      reg.Counter("data.origin"),
		forwarded:   reg.Counter("data.forwarded"),
		delivered:   reg.Counter("data.delivered"),
		dropNoRoute: reg.Counter("data.drop.noroute"),
		dropNoAddr:  reg.Counter("data.drop.noaddr"),
		ttlExpired:  reg.Counter("data.drop.ttl"),
		looped:      reg.Counter("data.drop.loop"),
		recvErrs:    reg.Counter("data.recv.errors"),
		done:        make(chan struct{}),
	}
	if f.ttl == 0 {
		f.ttl = DefaultTTL
	}
	empty := make([]peerAddr, cfg.Nodes)
	f.peers.Store(&empty)
	f.table.Store(Compile(nil, nil))
	go f.recvLoop()
	return f
}

// LocalAddr returns the data port's address.
func (f *Forwarder) LocalAddr() string { return f.cfg.Conn.LocalAddr() }

// SetPeer binds neighbor id to its data-port address; tx (optional)
// counts packets relayed to that neighbor.
func (f *Forwarder) SetPeer(id graph.NodeID, addr string, tx *telemetry.Counter) {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := *f.peers.Load()
	//lint:atomicmix-ok next is a private copy until its address escapes via Store; mutations happen-before under mu
	next := append([]peerAddr(nil), old...)
	next[id] = peerAddr{addr: addr, tx: tx} //lint:atomicmix-ok same: private until Store publishes it
	f.peers.Store(&next)
}

// Publish compiles entries against the current table (minimal bucket
// movement) and swaps the result in atomically. Serialized under mu so
// concurrent control-plane events can't interleave compile+store.
func (f *Forwarder) Publish(entries []Entry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.table.Store(Compile(entries, f.table.Load()))
}

// Table returns the current forwarding snapshot.
func (f *Forwarder) Table() *Table { return f.table.Load() }

// ErrNoRoute reports that the table holds no successor for the
// destination (the control plane hasn't converged on it, or it's down).
var ErrNoRoute = errors.New("dataplane: no route to destination")

// Send originates one data packet of sizeBits toward dst on flow flowID.
// A packet to self is delivered immediately (delay 0 plus nothing: no
// hops were taken).
func (f *Forwarder) Send(dst graph.NodeID, flowID uint64, sizeBits uint32) error {
	f.origin.Inc()
	p := wire.DataPacket{
		Src: f.cfg.Self, Dst: dst, TTL: f.ttl,
		FlowID: flowID, SentAt: f.cfg.Clock.Now(), SizeBits: sizeBits,
	}
	if dst == f.cfg.Self {
		f.deliver(&p)
		return nil
	}
	return f.relay(&p)
}

// relay picks the next hop for p, charges the emulated hop latency, and
// fires the frame at the neighbor's data port.
func (f *Forwarder) relay(p *wire.DataPacket) error {
	hop, ok := f.table.Load().Lookup(p.Dst, p.FlowID)
	if !ok {
		f.dropNoRoute.Inc()
		return ErrNoRoute
	}
	peers := *f.peers.Load()
	pa := peers[hop]
	if pa.addr == "" {
		f.dropNoAddr.Inc()
		return ErrNoRoute
	}
	if f.cfg.LatencyOf != nil {
		p.Accum += f.cfg.LatencyOf(hop, p.SizeBits)
	}
	fr, err := wire.NewData(p)
	if err != nil {
		return err
	}
	buf, err := fr.Encode()
	if err != nil {
		return err
	}
	atomic.AddInt64(&f.splits[int(p.Dst)*f.cfg.Nodes+int(hop)], 1)
	f.forwarded.Inc()
	if pa.tx != nil {
		pa.tx.Inc()
	}
	return f.cfg.Conn.WriteTo(buf, pa.addr)
}

// recvLoop drains the data port until Close.
func (f *Forwarder) recvLoop() {
	defer close(f.done)
	buf := make([]byte, transport.MaxDatagram)
	for {
		n, err := f.cfg.Conn.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		fr, err := wire.Decode(buf[:n])
		if err != nil || fr.Type != wire.TypeData {
			f.recvErrs.Inc()
			continue
		}
		p, err := wire.DataPacketOf(fr)
		if err != nil {
			f.recvErrs.Inc()
			continue
		}
		f.handle(&p)
	}
}

// handle routes one received packet: deliver, or relay with TTL and loop
// checks. A packet that returns to its origin without reaching its
// destination has traversed a routing loop — MPDA's loop-freedom
// invariant says that never happens, so it's counted as an invariant
// violation and dropped rather than re-forwarded.
func (f *Forwarder) handle(p *wire.DataPacket) {
	if p.Dst == f.cfg.Self {
		f.deliver(p)
		return
	}
	if p.Src == f.cfg.Self {
		f.looped.Inc()
		return
	}
	if p.TTL <= 1 {
		f.ttlExpired.Inc()
		return
	}
	p.TTL--
	p.Hops++
	_ = f.relay(p) // best effort: drops already counted
}

// deliver sinks p locally, folding it into its flow's running stats. The
// end-to-end delay is the arithmetically accumulated emulated link time
// plus the real transit time through the stack.
func (f *Forwarder) deliver(p *wire.DataPacket) {
	now := f.cfg.Clock.Now()
	delay := p.Accum + (now - p.SentAt)
	f.delivered.Inc()
	f.mu.Lock()
	s := f.flows[p.FlowID]
	if s == nil {
		s = &FlowStat{FlowID: p.FlowID, Src: p.Src}
		f.flows[p.FlowID] = s
	}
	s.Packets++
	s.Bits += int64(p.SizeBits)
	s.DelaySum += delay
	if delay > s.MaxDelay {
		s.MaxDelay = delay
	}
	s.LastSeen = now
	f.mu.Unlock()
	if f.cfg.OnDeliver != nil {
		f.cfg.OnDeliver(p, delay)
	}
}

// Flows returns a copy of the per-flow sink stats, sorted by flow ID.
func (f *Forwarder) Flows() []FlowStat {
	f.mu.Lock()
	out := make([]FlowStat, 0, len(f.flows))
	//lint:maporder-ok values are collected then sorted by FlowID below
	for _, s := range f.flows {
		out = append(out, *s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].FlowID < out[b].FlowID })
	return out
}

// Snapshot captures the forwarder's counters, split ratios, and flows.
func (f *Forwarder) Snapshot() Snapshot {
	snap := Snapshot{
		Origin:      f.origin.Value(),
		Forwarded:   f.forwarded.Value(),
		Delivered:   f.delivered.Value(),
		DropNoRoute: f.dropNoRoute.Value(),
		DropNoAddr:  f.dropNoAddr.Value(),
		TTLExpired:  f.ttlExpired.Value(),
		Looped:      f.looped.Value(),
		RecvErrors:  f.recvErrs.Value(),
		Flows:       f.Flows(),
	}
	t := f.table.Load()
	n := f.cfg.Nodes
	for _, dst := range t.Dests() {
		hops, weights, ok := t.Route(dst)
		if !ok {
			continue
		}
		var total int64
		for _, h := range hops {
			total += atomic.LoadInt64(&f.splits[int(dst)*n+int(h)])
		}
		for i, h := range hops {
			pk := atomic.LoadInt64(&f.splits[int(dst)*n+int(h)])
			got := 0.0
			if total > 0 {
				got = float64(pk) / float64(total)
			}
			snap.Splits = append(snap.Splits, SplitStat{
				Dst: dst, Hop: h, Packets: pk, Got: got, Want: weights[i],
			})
		}
	}
	return snap
}

// Close stops the receive loop (by closing the data port) and waits for
// it to exit.
func (f *Forwarder) Close() error {
	err := f.cfg.Conn.Close()
	<-f.done
	return err
}
