package dataplane

import (
	"math"
	"sync"
	"testing"
	"time"

	"minroute/internal/graph"
	"minroute/internal/leaktest"
	"minroute/internal/transport"
)

// testClock is a settable manual clock: forwarder tests pin Now so the
// emulated Accum term is the whole measured delay.
type testClock struct {
	mu  sync.Mutex
	now float64
}

func (c *testClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) AfterFunc(d float64, fn func()) transport.Timer { return noopTimer{} }

type noopTimer struct{}

func (noopTimer) Stop() bool { return false }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// line3 builds a 3-node line 0-1-2 over a MemNet with single-path tables
// and a constant per-hop latency, returning the forwarders.
func line3(t *testing.T, clk transport.Clock, hopLatency float64, ttl uint8) []*Forwarder {
	t.Helper()
	mn := transport.NewMemNet()
	fs := make([]*Forwarder, 3)
	for i := range fs {
		fs[i] = New(Config{
			Self: graph.NodeID(i), Nodes: 4, Conn: mn.Bind(), Clock: clk, TTL: ttl,
			LatencyOf: func(next graph.NodeID, sizeBits uint32) float64 { return hopLatency },
		})
		t.Cleanup(func(f *Forwarder) func() { return func() { f.Close() } }(fs[i]))
	}
	for i, f := range fs {
		for j, g := range fs {
			if i != j {
				f.SetPeer(graph.NodeID(j), g.LocalAddr(), nil)
			}
		}
	}
	one := func(h graph.NodeID) Entry { return Entry{Hops: []graph.NodeID{h}, Weights: []float64{1}} }
	with := func(f *Forwarder, es ...Entry) { f.Publish(es) }
	e := func(dst graph.NodeID, h graph.NodeID) Entry { x := one(h); x.Dst = dst; return x }
	with(fs[0], e(1, 1), e(2, 1), e(3, 1))
	with(fs[1], e(0, 0), e(2, 2), e(3, 2))
	with(fs[2], e(0, 1), e(1, 1))
	return fs
}

// TestForwarderDelivery drives a packet two hops down a line and checks
// the sink's flow stats carry the exact arithmetic delay.
func TestForwarderDelivery(t *testing.T) {
	leaktest.Check(t)
	clk := &testClock{}
	fs := line3(t, clk, 0.001, 0)

	const flow = 42
	if err := fs[0].Send(2, flow, 8192); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery at node 2", func() bool { return fs[2].Snapshot().Delivered == 1 })
	flows := fs[2].Flows()
	if len(flows) != 1 || flows[0].FlowID != flow || flows[0].Src != 0 {
		t.Fatalf("sink flows = %+v", flows)
	}
	// Two hops at 1ms emulated each; the manual clock never advances, so
	// the real-transit term is exactly zero.
	if d := flows[0].MeanDelay(); math.Abs(d-0.002) > 1e-12 {
		t.Fatalf("delay %.6f, want 0.002", d)
	}
	if got := fs[1].Snapshot().Forwarded; got != 1 {
		t.Fatalf("relay forwarded %v packets, want 1", got)
	}
	if s := fs[0].Snapshot(); s.Origin != 1 || s.Looped+s.TTLExpired+s.DropNoRoute != 0 {
		t.Fatalf("origin snapshot %+v", s)
	}
}

// TestForwarderSelfDelivery: a packet to self sinks immediately, no hops.
func TestForwarderSelfDelivery(t *testing.T) {
	leaktest.Check(t)
	clk := &testClock{}
	fs := line3(t, clk, 0.001, 0)
	if err := fs[1].Send(1, 7, 100); err != nil {
		t.Fatal(err)
	}
	s := fs[1].Snapshot()
	if s.Delivered != 1 || s.Forwarded != 0 {
		t.Fatalf("self-send snapshot %+v", s)
	}
	if d := fs[1].Flows()[0].MeanDelay(); d != 0 {
		t.Fatalf("self delay %v, want 0", d)
	}
}

// TestForwarderTTLExpiry: a hop budget too small for the path burns out
// mid-relay and counts as ttl_expired, not delivery.
func TestForwarderTTLExpiry(t *testing.T) {
	leaktest.Check(t)
	clk := &testClock{}
	fs := line3(t, clk, 0, 2) // needs 2 hops: TTL 2 dies at node 2? No — dies where TTL<=1 on relay.
	// TTL=2: node 1 decrements to 1 and forwards; node 2 is the
	// destination, so this delivers. Route 0->1 with TTL exhausted en
	// route instead: send to 3 (unreachable beyond 2), path 0->1->2,
	// node 2 has no route to 3 — that's noroute. For expiry, rebuild
	// node 2's table to bounce 3 back toward 1 with a fresh TTL check.
	fs[2].Publish([]Entry{
		{Dst: 0, Hops: []graph.NodeID{1}, Weights: []float64{1}},
		{Dst: 1, Hops: []graph.NodeID{1}, Weights: []float64{1}},
		{Dst: 3, Hops: []graph.NodeID{1}, Weights: []float64{1}},
	})
	if err := fs[0].Send(3, 1, 100); err != nil {
		t.Fatal(err)
	}
	// Path: 0 -> 1 (TTL 2 -> 1, forward) -> 2 (TTL 1: expire).
	waitFor(t, "ttl expiry", func() bool { return fs[2].Snapshot().TTLExpired == 1 })
	if d := fs[2].Snapshot().Delivered; d != 0 {
		t.Fatalf("expired packet delivered: %v", d)
	}
}

// TestForwarderLoopDetection: a packet that returns to its origin without
// reaching its destination is a loop-freedom violation — counted, dropped.
func TestForwarderLoopDetection(t *testing.T) {
	leaktest.Check(t)
	clk := &testClock{}
	fs := line3(t, clk, 0, 0)
	// Sabotage: nodes 0 and 1 both claim the other is the way to 3.
	fs[0].Publish([]Entry{{Dst: 3, Hops: []graph.NodeID{1}, Weights: []float64{1}}})
	fs[1].Publish([]Entry{{Dst: 3, Hops: []graph.NodeID{0}, Weights: []float64{1}}})
	if err := fs[0].Send(3, 9, 100); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "loop detection at origin", func() bool { return fs[0].Snapshot().Looped == 1 })
	if s := fs[0].Snapshot(); s.Delivered != 0 {
		t.Fatalf("looped packet delivered: %+v", s)
	}
}

// TestForwarderNoRoute: sends toward an unrouted destination fail fast
// and count.
func TestForwarderNoRoute(t *testing.T) {
	leaktest.Check(t)
	clk := &testClock{}
	mn := transport.NewMemNet()
	f := New(Config{Self: 0, Nodes: 2, Conn: mn.Bind(), Clock: clk})
	defer f.Close()
	if err := f.Send(1, 0, 64); err != ErrNoRoute {
		t.Fatalf("Send without route: %v, want ErrNoRoute", err)
	}
	if s := f.Snapshot(); s.DropNoRoute != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	// Route exists but the peer address was never bound: drop_noaddr.
	f.Publish([]Entry{{Dst: 1, Hops: []graph.NodeID{1}, Weights: []float64{1}}})
	if err := f.Send(1, 0, 64); err != ErrNoRoute {
		t.Fatalf("Send without peer addr: %v, want ErrNoRoute", err)
	}
	if s := f.Snapshot(); s.DropNoAddr != 1 {
		t.Fatalf("snapshot %+v", s)
	}
}

// TestForwarderWeightedSplit publishes a 2-way split and checks the
// observed per-hop packet shares track the bucket shares exactly (every
// flow is one packet, so observed split == bucket share of the flow
// population's hash spread).
func TestForwarderWeightedSplit(t *testing.T) {
	leaktest.Check(t)
	clk := &testClock{}
	mn := transport.NewMemNet()
	f := New(Config{Self: 0, Nodes: 4, Conn: mn.Bind(), Clock: clk})
	defer f.Close()
	sink1, sink2 := mn.Bind(), mn.Bind()
	defer sink1.Close()
	defer sink2.Close()
	f.SetPeer(1, sink1.LocalAddr(), nil)
	f.SetPeer(2, sink2.LocalAddr(), nil)
	f.Publish([]Entry{{Dst: 3, Hops: []graph.NodeID{1, 2}, Weights: []float64{0.75, 0.25}}})

	const flowsN = 20000
	for id := uint64(0); id < flowsN; id++ {
		if err := f.Send(3, id, 64); err != nil {
			t.Fatal(err)
		}
	}
	snap := f.Snapshot()
	if len(snap.Splits) != 2 {
		t.Fatalf("splits %+v", snap.Splits)
	}
	for _, sp := range snap.Splits {
		// 20k hashed flows over 256 buckets: the observed share tracks
		// the bucket share tightly; 2% absolute is the cross-validation
		// gate and holds with wide margin here.
		if math.Abs(sp.Got-sp.Want) > 0.02 {
			t.Errorf("dst %d hop %d: got %.4f want %.4f", sp.Dst, sp.Hop, sp.Got, sp.Want)
		}
	}
}
