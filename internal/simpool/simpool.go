// Package simpool bounds the concurrency of the experiment harness. The
// paper's evaluation is embarrassingly parallel — every figure is built
// from independent, deterministic packet simulations (one per scheme ×
// seed) — so the harness fans simulations out onto goroutines while a
// process-wide semaphore keeps at most Workers() simulations running at
// once, regardless of how many figures or schemes fan out concurrently.
//
// Two kinds of groups exist:
//
//   - NewGroup: tasks hold a worker slot while they run. Use for leaf work
//     (one task = one simulation).
//   - Coordinator: tasks run unbounded. Use for cheap orchestration layers
//     (one task per figure or per scheme) whose own subtasks are bounded
//     leaf groups — coordinators must never hold a slot while waiting on
//     children, or nested fan-out could deadlock the semaphore.
//
// Determinism: groups only run tasks; callers index results by submission
// order, so the assembled output is independent of goroutine scheduling.
// Wait returns the error of the lowest-numbered failing task ("first error
// wins" by submission order, not wall clock), which keeps error reporting
// reproducible too.
package simpool

import (
	"runtime"
	"sync"
)

var (
	mu  sync.Mutex
	sem chan struct{}
)

// Workers reports the current simulation concurrency bound.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return cap(currentLocked())
}

// SetWorkers bounds the number of simulations running concurrently across
// the whole process. n <= 0 resets to runtime.GOMAXPROCS(0). Call it before
// launching work: groups already in flight keep the bound they started with.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	mu.Lock()
	defer mu.Unlock()
	sem = make(chan struct{}, n)
}

// currentLocked returns the live semaphore, creating it on first use.
func currentLocked() chan struct{} {
	if sem == nil {
		sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	}
	return sem
}

// Tokens holds worker slots acquired by TryAcquire. It captures the
// semaphore it drew from, so Release returns the slots to the right channel
// even if SetWorkers swapped the process-wide semaphore in between.
type Tokens struct {
	sem chan struct{}
	n   int
}

// Held reports how many worker slots the token set holds.
func (t *Tokens) Held() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Release returns every held slot. Safe to call more than once.
func (t *Tokens) Release() {
	if t == nil {
		return
	}
	for ; t.n > 0; t.n-- {
		<-t.sem
	}
}

// TryAcquire grabs up to n worker slots without blocking and returns the
// tokens actually obtained (possibly zero). It lets a parallel layer nested
// under the experiment pool — e.g. the shards of one simulation — claim
// spare capacity when the pool is idle while degrading gracefully to fewer
// (or no) extra goroutines when experiment workers already fill the budget.
// The caller's own goroutine never needs a slot: only the *additional*
// concurrency is charged, which is what keeps workers × shards bounded by
// the process-wide budget instead of their product.
func TryAcquire(n int) *Tokens {
	mu.Lock()
	s := currentLocked()
	mu.Unlock()
	t := &Tokens{sem: s}
	for i := 0; i < n; i++ {
		select {
		case s <- struct{}{}:
			t.n++
		default:
			return t
		}
	}
	return t
}

// Group runs tasks concurrently and collects the first error by submission
// order. The zero value is not valid; use NewGroup or Coordinator. A group
// must not be reused after Wait returns.
type Group struct {
	sem chan struct{} // nil for coordinators
	wg  sync.WaitGroup

	emu    sync.Mutex
	err    error
	errIdx int
	next   int
}

// NewGroup returns a group whose tasks each occupy one process-wide worker
// slot for their full duration. Do not call Wait on another bounded task's
// goroutine — fan out coordination through Coordinator groups instead.
func NewGroup() *Group {
	mu.Lock()
	defer mu.Unlock()
	return &Group{sem: currentLocked(), errIdx: -1}
}

// Coordinator returns an unbounded group for orchestration goroutines that
// only assemble results and fan out bounded leaf work.
func Coordinator() *Group {
	return &Group{errIdx: -1}
}

// Go starts fn on its own goroutine. Bounded groups acquire a worker slot
// before running fn and release it after, so a submitted task may be queued
// behind the semaphore arbitrarily long.
func (g *Group) Go(fn func() error) {
	g.emu.Lock()
	idx := g.next
	g.next++
	g.emu.Unlock()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			g.sem <- struct{}{}
			defer func() { <-g.sem }()
		}
		if err := fn(); err != nil {
			g.emu.Lock()
			if g.errIdx < 0 || idx < g.errIdx {
				g.err, g.errIdx = err, idx
			}
			g.emu.Unlock()
		}
	}()
}

// Wait blocks until every submitted task finished and returns the error of
// the lowest-numbered failing task, or nil.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}
