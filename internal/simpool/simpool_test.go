package simpool

import (
	"errors"
	"fmt"
	"minroute/internal/leaktest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// withWorkers runs fn under a temporary worker bound, restoring the old one.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	old := Workers()
	SetWorkers(n)
	defer SetWorkers(old)
	fn()
}

func TestBoundedConcurrency(t *testing.T) {
	leaktest.Check(t)
	withWorkers(t, 3, func() {
		var cur, peak int64
		g := NewGroup()
		for i := 0; i < 20; i++ {
			g.Go(func() error {
				c := atomic.AddInt64(&cur, 1)
				for {
					p := atomic.LoadInt64(&peak)
					if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				atomic.AddInt64(&cur, -1)
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
		if p := atomic.LoadInt64(&peak); p > 3 {
			t.Fatalf("peak concurrency %d exceeds bound 3", p)
		}
	})
}

func TestFirstErrorBySubmissionOrder(t *testing.T) {
	leaktest.Check(t)
	withWorkers(t, 4, func() {
		// Task 5 fails fast, task 2 fails slow: Wait must report task 2,
		// the lowest submission index, regardless of completion order.
		g := NewGroup()
		for i := 0; i < 8; i++ {
			i := i
			g.Go(func() error {
				switch i {
				case 2:
					time.Sleep(10 * time.Millisecond)
					return fmt.Errorf("task %d", i)
				case 5:
					return fmt.Errorf("task %d", i)
				default:
					return nil
				}
			})
		}
		err := g.Wait()
		if err == nil || err.Error() != "task 2" {
			t.Fatalf("Wait = %v, want task 2 (lowest submission index)", err)
		}
	})
}

func TestWaitNilOnSuccess(t *testing.T) {
	leaktest.Check(t)
	g := NewGroup()
	var n int64
	for i := 0; i < 10; i++ {
		g.Go(func() error { atomic.AddInt64(&n, 1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("ran %d tasks, want 10", n)
	}
}

func TestCoordinatorUnbounded(t *testing.T) {
	leaktest.Check(t)
	withWorkers(t, 1, func() {
		// With one worker slot, 4 coordinators each fanning out one bounded
		// leaf task must still finish: coordinators hold no slot while
		// waiting, so the leaves serialize through the semaphore instead of
		// deadlocking against their parents.
		done := make(chan struct{})
		go func() {
			outer := Coordinator()
			for i := 0; i < 4; i++ {
				outer.Go(func() error {
					inner := NewGroup()
					inner.Go(func() error {
						time.Sleep(time.Millisecond)
						return nil
					})
					return inner.Wait()
				})
			}
			if err := outer.Wait(); err != nil {
				t.Error(err)
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("nested coordinator/leaf fan-out deadlocked")
		}
	})
}

func TestSetWorkersDefault(t *testing.T) {
	leaktest.Check(t)
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0), want >= 1", Workers())
	}
	SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
}

func TestGroupKeepsBoundAcrossSetWorkers(t *testing.T) {
	leaktest.Check(t)
	withWorkers(t, 2, func() {
		g := NewGroup()
		var mu sync.Mutex
		release := make(chan struct{})
		started := 0
		for i := 0; i < 2; i++ {
			g.Go(func() error {
				mu.Lock()
				started++
				mu.Unlock()
				<-release
				return nil
			})
		}
		// Resizing the global bound must not disturb tasks already running
		// under the old semaphore.
		SetWorkers(8)
		time.Sleep(5 * time.Millisecond)
		close(release)
		if err := g.Wait(); err != nil {
			t.Fatal(err)
		}
		if started != 2 {
			t.Fatalf("started %d tasks, want 2", started)
		}
	})
}

func TestErrorsAreRealErrors(t *testing.T) {
	leaktest.Check(t)
	g := Coordinator()
	want := errors.New("boom")
	g.Go(func() error { return want })
	if err := g.Wait(); !errors.Is(err, want) {
		t.Fatalf("Wait = %v, want %v", err, want)
	}
}
