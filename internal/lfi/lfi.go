// Package lfi checks the Loop-Free Invariant conditions of Section 3 of the
// paper and the acyclicity of successor graphs. Tests use it to assert
// Theorem 1/Theorem 3 — that the routing graph SG_j(t) implied by the
// successor sets is loop-free at every instant t — after every single
// protocol event, and the simulator uses it to audit forwarding tables.
package lfi

import (
	"fmt"
	"sort"

	"minroute/internal/graph"
)

// RouterView is the read-only slice of router state the checker needs.
// mpda.Router satisfies it.
type RouterView interface {
	ID() graph.NodeID
	FD(j graph.NodeID) float64
	Successors(j graph.NodeID) []graph.NodeID
}

// FindLoop searches the successor graph for destination j for a cycle and
// returns it (a sequence of node IDs where the last routes to the first),
// or nil when the graph is acyclic. n is the ID-space size.
func FindLoop(n int, routers map[graph.NodeID]RouterView, j graph.NodeID) []graph.NodeID {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // finished
	)
	color := make([]byte, n)
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = graph.None
	}

	var dfs func(u graph.NodeID) []graph.NodeID
	dfs = func(u graph.NodeID) []graph.NodeID {
		color[u] = grey
		r := routers[u]
		if r != nil {
			for _, k := range r.Successors(j) {
				switch color[k] {
				case white:
					parent[k] = u
					if loop := dfs(k); loop != nil {
						return loop
					}
				case grey:
					// Found a cycle k -> ... -> u -> k; reconstruct it.
					loop := []graph.NodeID{k}
					for at := u; at != k && at != graph.None; at = parent[at] {
						loop = append(loop, at)
					}
					// Reverse into forwarding order.
					for a, b := 0, len(loop)-1; a < b; a, b = a+1, b-1 {
						loop[a], loop[b] = loop[b], loop[a]
					}
					return loop
				}
			}
		}
		color[u] = black
		return nil
	}

	for u := 0; u < n; u++ {
		if color[u] == white {
			if loop := dfs(graph.NodeID(u)); loop != nil {
				return loop
			}
		}
	}
	return nil
}

// CheckAllDestinations verifies loop-freedom for every destination and
// returns a descriptive error naming the first violation.
func CheckAllDestinations(n int, routers map[graph.NodeID]RouterView) error {
	for j := 0; j < n; j++ {
		if loop := FindLoop(n, routers, graph.NodeID(j)); loop != nil {
			return fmt.Errorf("lfi: successor graph for destination %d has loop %v", j, loop)
		}
	}
	return nil
}

// CheckFDOrdering verifies the consequence of the LFI conditions proved in
// Theorem 1 (Eq. 19): if k ∈ S_j at router i, then FD_j^k < FD_j^i. This is
// the strictly-decreasing potential that makes loops impossible.
func CheckFDOrdering(n int, routers map[graph.NodeID]RouterView) error {
	ids := make([]graph.NodeID, 0, len(routers))
	//lint:maporder-ok keys are collected and sorted ascending before any use
	for id := range routers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	// Sorted order: with several violations, always report the same one.
	for _, id := range ids {
		r := routers[id]
		for j := 0; j < n; j++ {
			jid := graph.NodeID(j)
			for _, k := range r.Successors(jid) {
				rk := routers[k]
				if rk == nil {
					continue
				}
				if !(rk.FD(jid) < r.FD(jid)) {
					return fmt.Errorf("lfi: router %d has successor %d for %d but FD^%d=%v >= FD^%d=%v",
						r.ID(), k, j, k, rk.FD(jid), r.ID(), r.FD(jid))
				}
			}
		}
	}
	return nil
}
