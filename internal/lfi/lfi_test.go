package lfi

import (
	"math"
	"testing"

	"minroute/internal/graph"
)

// fakeRouter is a minimal RouterView for constructing scenarios.
type fakeRouter struct {
	id   graph.NodeID
	fd   map[graph.NodeID]float64
	succ map[graph.NodeID][]graph.NodeID
}

func (f *fakeRouter) ID() graph.NodeID { return f.id }
func (f *fakeRouter) FD(j graph.NodeID) float64 {
	if v, ok := f.fd[j]; ok {
		return v
	}
	return math.Inf(1)
}
func (f *fakeRouter) Successors(j graph.NodeID) []graph.NodeID { return f.succ[j] }

func mkNet(succ map[graph.NodeID]map[graph.NodeID][]graph.NodeID) map[graph.NodeID]RouterView {
	out := make(map[graph.NodeID]RouterView)
	for id, m := range succ {
		out[id] = &fakeRouter{id: id, fd: map[graph.NodeID]float64{}, succ: m}
	}
	return out
}

func TestFindLoopAcyclic(t *testing.T) {
	// 0 -> 1 -> 2 (destination), 0 -> 2 as well: a DAG.
	net := mkNet(map[graph.NodeID]map[graph.NodeID][]graph.NodeID{
		0: {2: {1, 2}},
		1: {2: {2}},
		2: {},
	})
	if loop := FindLoop(3, net, 2); loop != nil {
		t.Fatalf("found loop in DAG: %v", loop)
	}
	if err := CheckAllDestinations(3, net); err != nil {
		t.Fatal(err)
	}
}

func TestFindLoopDetectsTwoCycle(t *testing.T) {
	net := mkNet(map[graph.NodeID]map[graph.NodeID][]graph.NodeID{
		0: {3: {1}},
		1: {3: {0}},
		2: {},
		3: {},
	})
	loop := FindLoop(4, net, 3)
	if loop == nil {
		t.Fatal("two-cycle not detected")
	}
	if len(loop) != 2 {
		t.Fatalf("loop = %v, want length 2", loop)
	}
	if err := CheckAllDestinations(4, net); err == nil {
		t.Fatal("CheckAllDestinations missed the loop")
	}
}

func TestFindLoopDetectsLongCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 3 -> 1 for destination 4.
	net := mkNet(map[graph.NodeID]map[graph.NodeID][]graph.NodeID{
		0: {4: {1}},
		1: {4: {2}},
		2: {4: {3}},
		3: {4: {1}},
		4: {},
	})
	loop := FindLoop(5, net, 4)
	if loop == nil {
		t.Fatal("3-cycle not detected")
	}
	if len(loop) != 3 {
		t.Fatalf("loop = %v, want length 3 (1->2->3)", loop)
	}
	// The loop must be a real cycle under the successor relation.
	inLoop := map[graph.NodeID]bool{}
	for _, n := range loop {
		inLoop[n] = true
	}
	for _, n := range []graph.NodeID{1, 2, 3} {
		if !inLoop[n] {
			t.Fatalf("loop %v missing node %d", loop, n)
		}
	}
}

func TestFindLoopSelfSuccessorIgnoredByDesign(t *testing.T) {
	// A self-successor is a 1-cycle and must be caught.
	net := mkNet(map[graph.NodeID]map[graph.NodeID][]graph.NodeID{
		0: {1: {0}},
		1: {},
	})
	if loop := FindLoop(2, net, 1); loop == nil {
		t.Fatal("self-loop not detected")
	}
}

func TestFindLoopMissingRouters(t *testing.T) {
	// Routers absent from the map are treated as sinks.
	net := mkNet(map[graph.NodeID]map[graph.NodeID][]graph.NodeID{
		0: {2: {1}},
	})
	if loop := FindLoop(3, net, 2); loop != nil {
		t.Fatalf("loop through missing router: %v", loop)
	}
}

func TestCheckFDOrdering(t *testing.T) {
	a := &fakeRouter{id: 0, fd: map[graph.NodeID]float64{2: 3}, succ: map[graph.NodeID][]graph.NodeID{2: {1}}}
	b := &fakeRouter{id: 1, fd: map[graph.NodeID]float64{2: 1}, succ: map[graph.NodeID][]graph.NodeID{}}
	net := map[graph.NodeID]RouterView{0: a, 1: b}
	if err := CheckFDOrdering(3, net); err != nil {
		t.Fatalf("valid ordering rejected: %v", err)
	}
	// Violate: successor's FD not strictly smaller.
	b.fd[2] = 3
	if err := CheckFDOrdering(3, net); err == nil {
		t.Fatal("FD ordering violation not detected")
	}
}

func TestCheckFDOrderingMissingSuccessorSkipped(t *testing.T) {
	a := &fakeRouter{id: 0, fd: map[graph.NodeID]float64{2: 3}, succ: map[graph.NodeID][]graph.NodeID{2: {1}}}
	net := map[graph.NodeID]RouterView{0: a}
	if err := CheckFDOrdering(3, net); err != nil {
		t.Fatalf("missing successor not skipped: %v", err)
	}
}
