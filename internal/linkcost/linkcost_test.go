package linkcost

import (
	"math"
	"testing"
	"testing/quick"

	"minroute/internal/rng"
)

func TestMM1DelayIdle(t *testing.T) {
	// Idle link: delay = 1/mu + tau.
	got := MM1Delay(0, 100, 0.001)
	want := 0.01 + 0.001
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("idle delay = %v, want %v", got, want)
	}
}

func TestMM1DelayHalfLoad(t *testing.T) {
	got := MM1Delay(50, 100, 0)
	if math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("delay at rho=0.5 = %v, want 0.02", got)
	}
}

func TestMM1MarginalIdle(t *testing.T) {
	// D'(0) = mu/mu^2 = 1/mu.
	got := MM1Marginal(0, 100, 0)
	if math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("marginal at 0 = %v, want 0.01", got)
	}
}

func TestMM1MarginalAgainstNumericalDerivative(t *testing.T) {
	const mu, tau = 1250.0, 0.0005
	for _, lam := range []float64{1, 100, 500, 900, 1100, 1200} {
		h := 1e-3
		numeric := (MM1Total(lam+h, mu, tau) - MM1Total(lam-h, mu, tau)) / (2 * h)
		analytic := MM1Marginal(lam, mu, tau)
		if rel := math.Abs(numeric-analytic) / analytic; rel > 1e-4 {
			t.Fatalf("lam=%v: numeric %v vs analytic %v (rel %v)", lam, numeric, analytic, rel)
		}
	}
}

func TestMM1ClampFiniteAndMonotone(t *testing.T) {
	const mu = 1000.0
	prev := 0.0
	for lam := 0.0; lam <= 3*mu; lam += 10 {
		c := MM1Marginal(lam, mu, 0)
		if math.IsInf(c, 0) || math.IsNaN(c) {
			t.Fatalf("marginal not finite at lam=%v", lam)
		}
		if c < prev {
			t.Fatalf("marginal not monotone at lam=%v: %v < %v", lam, c, prev)
		}
		prev = c
	}
}

func TestMM1ContinuityAtClamp(t *testing.T) {
	const mu, tau = 1000.0, 0.0003
	lc := MaxUtilization * mu
	eps := 1e-6
	for _, fn := range []func(l float64) float64{
		func(l float64) float64 { return MM1Delay(l, mu, tau) },
		func(l float64) float64 { return MM1Total(l, mu, tau) },
		func(l float64) float64 { return MM1Marginal(l, mu, tau) },
	} {
		lo, hi := fn(lc-eps), fn(lc+eps)
		if math.Abs(hi-lo)/lo > 1e-3 {
			t.Fatalf("discontinuity at clamp: %v vs %v", lo, hi)
		}
	}
}

func TestMM1NegativeLambdaTreatedAsZero(t *testing.T) {
	if MM1Delay(-5, 100, 0) != MM1Delay(0, 100, 0) {
		t.Fatal("negative lambda not clamped to zero")
	}
}

func TestMM1PanicsOnBadMu(t *testing.T) {
	for _, fn := range []func(){
		func() { MM1Delay(1, 0, 0) },
		func() { MM1Total(1, -1, 0) },
		func() { MM1Marginal(1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for non-positive mu")
				}
			}()
			fn()
		}()
	}
}

func TestPropertyMarginalConvex(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		mu := 100 + r.Float64()*10000
		tau := r.Float64() * 0.01
		// Convexity of D implies the marginal is non-decreasing; check on a
		// random triple.
		a := r.Float64() * 2 * mu
		b := a + r.Float64()*mu
		return MM1Marginal(a, mu, tau) <= MM1Marginal(b, mu, tau)+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Add(8000)
	m.Add(4000)
	if m.Packets() != 2 {
		t.Fatalf("packets = %d", m.Packets())
	}
	pk, br := m.Take(2)
	if pk != 1 || br != 6000 {
		t.Fatalf("Take = %v,%v, want 1,6000", pk, br)
	}
	// Reset happened.
	pk, br = m.Take(2)
	if pk != 0 || br != 0 {
		t.Fatalf("meter not reset: %v,%v", pk, br)
	}
}

func TestMeterZeroElapsed(t *testing.T) {
	var m Meter
	m.Add(100)
	pk, br := m.Take(0)
	if pk != 0 || br != 0 {
		t.Fatalf("zero-elapsed Take = %v,%v", pk, br)
	}
	if m.Packets() != 0 {
		t.Fatal("meter not reset on zero-elapsed Take")
	}
}

func TestSmoother(t *testing.T) {
	s := NewSmoother(0.5)
	if s.Update(10) != 10 {
		t.Fatal("first sample should initialize")
	}
	if got := s.Update(20); got != 15 {
		t.Fatalf("smoothed = %v, want 15", got)
	}
	if s.Value() != 15 {
		t.Fatalf("Value = %v", s.Value())
	}
}

func TestSmootherPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha %v accepted", a)
				}
			}()
			NewSmoother(a)
		}()
	}
}

func TestOnlineEstimatorIdleFallback(t *testing.T) {
	e := NewOnlineEstimator(0.001, 0.01)
	got := e.Take()
	if math.Abs(got-0.011) > 1e-12 {
		t.Fatalf("idle estimate = %v, want 0.011", got)
	}
}

func TestOnlineEstimatorKeepsLastOnEmptyWindow(t *testing.T) {
	e := NewOnlineEstimator(0, 0.01)
	e.Observe(0.02, 0.01)
	first := e.Take()
	second := e.Take() // no observations in between
	if first != second {
		t.Fatalf("empty window changed estimate: %v -> %v", first, second)
	}
}

func TestOnlineEstimatorIgnoresBadSamples(t *testing.T) {
	e := NewOnlineEstimator(0, 0.01)
	e.Observe(-1, 0.01)
	e.Observe(0.02, 0)
	if got := e.Take(); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("bad samples not ignored: %v", got)
	}
}

// TestOnlineEstimatorMatchesMM1 drives the estimator with synthetic M/M/1
// samples and checks it recovers the closed-form marginal within tolerance.
func TestOnlineEstimatorMatchesMM1(t *testing.T) {
	const mu, lambda = 1000.0, 600.0
	r := rng.New(42)
	e := NewOnlineEstimator(0, 1/mu)

	// Simulate an M/M/1 queue directly: Lindley recursion for waiting times.
	wait := 0.0
	for i := 0; i < 200000; i++ {
		inter := r.Exp(1 / lambda)
		service := r.Exp(1 / mu)
		wait = math.Max(0, wait-inter)
		sojourn := wait + service
		e.Observe(sojourn, service)
		wait = sojourn
	}
	got := e.Take()
	want := MM1Marginal(lambda, mu, 0)
	if rel := math.Abs(got-want) / want; rel > 0.10 {
		t.Fatalf("online estimate %v vs closed form %v (rel err %v)", got, want, rel)
	}
}

func TestKnownMu(t *testing.T) {
	if mu := KnownMu(10e6, 8000); mu != 1250 {
		t.Fatalf("mu = %v, want 1250", mu)
	}
}

func TestUtilization(t *testing.T) {
	if u := Utilization(500, 1000); u != 0.5 {
		t.Fatalf("utilization = %v", u)
	}
	if u := Utilization(-1, 1000); u != 0 {
		t.Fatalf("negative lambda utilization = %v", u)
	}
	if !math.IsInf(Utilization(1, 0), 1) {
		t.Fatal("zero-mu utilization not +Inf")
	}
}

func BenchmarkMM1Marginal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = MM1Marginal(900, 1250, 0.0005)
	}
}

func TestMM1CurvatureAgainstNumericalDerivative(t *testing.T) {
	const mu = 1250.0
	for _, lam := range []float64{1, 100, 500, 900, 1200} {
		h := 1e-3
		numeric := (MM1Marginal(lam+h, mu, 0) - MM1Marginal(lam-h, mu, 0)) / (2 * h)
		analytic := MM1Curvature(lam, mu)
		if rel := math.Abs(numeric-analytic) / analytic; rel > 1e-4 {
			t.Fatalf("lam=%v: numeric %v vs analytic %v", lam, numeric, analytic)
		}
	}
}

func TestMM1CurvatureClampedFinite(t *testing.T) {
	if c := MM1Curvature(2000, 1000); math.IsInf(c, 0) || c <= 0 {
		t.Fatalf("clamped curvature = %v", c)
	}
	if MM1Curvature(-5, 1000) != MM1Curvature(0, 1000) {
		t.Fatal("negative lambda not clamped")
	}
}

func TestMM1CurvaturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive mu")
		}
	}()
	MM1Curvature(1, 0)
}

func TestMG1ReducesToMM1(t *testing.T) {
	const mu, tau = 1250.0, 0.0004
	for _, lam := range []float64{0, 100, 600, 1100} {
		if got, want := MG1Delay(lam, mu, 1, tau), MM1Delay(lam, mu, tau); math.Abs(got-want) > 1e-12 {
			t.Fatalf("MG1Delay(cs2=1) = %v, MM1 = %v at lam=%v", got, want, lam)
		}
		if got, want := MG1Marginal(lam, mu, 1, tau), MM1Marginal(lam, mu, tau); math.Abs(got-want)/want > 1e-9 {
			t.Fatalf("MG1Marginal(cs2=1) = %v, MM1 = %v at lam=%v", got, want, lam)
		}
	}
}

func TestMD1BelowMM1(t *testing.T) {
	// Deterministic service halves the queueing delay component.
	const mu = 1000.0
	lam := 800.0
	md1 := MG1Delay(lam, mu, 0, 0) - 1/mu
	mm1 := MM1Delay(lam, mu, 0) - 1/mu
	if !(md1 < mm1) {
		t.Fatalf("M/D/1 queueing %v not below M/M/1 %v", md1, mm1)
	}
	if rel := math.Abs(md1-mm1/2) / (mm1 / 2); rel > 1e-9 {
		t.Fatalf("M/D/1 queueing %v, want half of M/M/1 (%v)", md1, mm1/2)
	}
}

func TestMG1MarginalAgainstNumericalDerivative(t *testing.T) {
	const mu, tau, cs2 = 1250.0, 0.0002, 0.4
	for _, lam := range []float64{1, 200, 700, 1150} {
		h := 1e-3
		numeric := (MG1Total(lam+h, mu, cs2, tau) - MG1Total(lam-h, mu, cs2, tau)) / (2 * h)
		analytic := MG1Marginal(lam, mu, cs2, tau)
		if rel := math.Abs(numeric-analytic) / analytic; rel > 1e-4 {
			t.Fatalf("lam=%v: numeric %v vs analytic %v", lam, numeric, analytic)
		}
	}
}

func TestMG1ClampFinite(t *testing.T) {
	for _, cs2 := range []float64{0, 0.5, 1, 3} {
		for lam := 0.0; lam <= 3000; lam += 100 {
			for _, v := range []float64{
				MG1Delay(lam, 1000, cs2, 0),
				MG1Marginal(lam, 1000, cs2, 0),
				MG1Total(lam, 1000, cs2, 0),
			} {
				if math.IsInf(v, 0) || math.IsNaN(v) || v < 0 {
					t.Fatalf("cs2=%v lam=%v: value %v", cs2, lam, v)
				}
			}
		}
	}
}

func TestMG1Panics(t *testing.T) {
	for _, fn := range []func(){
		func() { MG1Delay(1, 0, 1, 0) },
		func() { MG1Delay(1, 10, -1, 0) },
		func() { MG1Marginal(1, 0, 1, 0) },
		func() { MG1Marginal(1, 10, -0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}
