// Package linkcost computes link costs — marginal delays — as Section 4.3
// of the paper prescribes.
//
// The paper's Eq. (24) models each link as an M/M/1 queue:
//
//	D_ik(f) = f/(C−f) + τ·f
//
// where D is "expected number of packets per second transmitted on the link
// times the expected delay per packet", f the link flow, C the capacity and
// τ the propagation delay. The link cost is the marginal delay
//
//	l_ik = D′_ik(f) = C/(C−f)² + τ.
//
// Flows here are in packets per second and capacities are service rates
// μ = C_bits / L_bits (packets per second), which makes D dimensionally a
// delay-weighted packet rate exactly as in the paper.
//
// Because Eq. (24) "becomes unstable when f approaches C", costs are clamped
// smoothly above a utilization threshold (linear extension with matching
// slope, preserving monotonicity and convexity), and an online estimator in
// the spirit of Cassandras–Abidi–Towsley perturbation analysis is provided
// that needs no a-priori knowledge of the capacity.
package linkcost

import "math"

// MaxUtilization is the utilization beyond which the closed-form M/M/1
// expressions are linearly extended.
const MaxUtilization = 0.98

// MM1Delay returns the expected per-packet delay 1/(μ−λ) + τ of an M/M/1
// link, clamped above MaxUtilization. It panics when mu <= 0.
func MM1Delay(lambda, mu, tau float64) float64 {
	if mu <= 0 {
		panic("linkcost: non-positive service rate")
	}
	if lambda < 0 {
		lambda = 0
	}
	lc := MaxUtilization * mu
	if lambda <= lc {
		return 1/(mu-lambda) + tau
	}
	// Linear extension with the slope at the clamp point.
	w := 1 / (mu - lc)
	slope := 1 / ((mu - lc) * (mu - lc))
	return w + slope*(lambda-lc) + tau
}

// MM1Total returns the paper's Eq. (24): D(f) = f/(C−f) + τ·f, clamped.
func MM1Total(lambda, mu, tau float64) float64 {
	if mu <= 0 {
		panic("linkcost: non-positive service rate")
	}
	if lambda < 0 {
		lambda = 0
	}
	lc := MaxUtilization * mu
	if lambda <= lc {
		return lambda/(mu-lambda) + tau*lambda
	}
	base := lc/(mu-lc) + tau*lc
	// Continue with the (clamped) marginal so D stays convex and increasing.
	return base + MM1Marginal(lambda, mu, tau)*(lambda-lc)
}

// MM1Marginal returns the link cost l = D′(f) = μ/(μ−λ)² + τ, linearly
// extended above MaxUtilization so that it remains finite, increasing and
// convex — properties both Gallager's iteration and the allocation
// heuristics rely on.
func MM1Marginal(lambda, mu, tau float64) float64 {
	if mu <= 0 {
		panic("linkcost: non-positive service rate")
	}
	if lambda < 0 {
		lambda = 0
	}
	lc := MaxUtilization * mu
	if lambda <= lc {
		d := mu - lambda
		return mu/(d*d) + tau
	}
	d := mu - lc
	base := mu / (d * d)
	slope := 2 * mu / (d * d * d) // D′′ at the clamp point
	return base + slope*(lambda-lc) + tau
}

// Meter accumulates packet arrivals on a link over a measurement window.
// The router reads-and-resets it at every short-term (Ts) or long-term (Tl)
// boundary. The zero value is ready for use.
type Meter struct {
	packets int64
	bits    float64
}

// Add records one packet of the given size in bits.
func (m *Meter) Add(bits float64) {
	m.packets++
	m.bits += bits
}

// Packets returns the packets accumulated since the last Take.
func (m *Meter) Packets() int64 { return m.packets }

// Take returns the packet rate (packets/s) and bit rate (bits/s) over a
// window of the given length, then resets the meter. A non-positive elapsed
// returns zeros.
func (m *Meter) Take(elapsed float64) (pktRate, bitRate float64) {
	if elapsed > 0 {
		pktRate = float64(m.packets) / elapsed
		bitRate = m.bits / elapsed
	}
	m.packets = 0
	m.bits = 0
	return pktRate, bitRate
}

// Smoother maintains an exponentially weighted moving average of a rate,
// used to stabilize long-term link costs between Tl updates.
type Smoother struct {
	alpha float64
	value float64
	init  bool
}

// NewSmoother returns a Smoother with the given weight for new samples;
// alpha must be in (0, 1].
func NewSmoother(alpha float64) *Smoother {
	if alpha <= 0 || alpha > 1 {
		panic("linkcost: smoother alpha out of (0,1]")
	}
	return &Smoother{alpha: alpha}
}

// Update folds in a new sample and returns the smoothed value.
func (s *Smoother) Update(sample float64) float64 {
	if !s.init {
		s.value = sample
		s.init = true
		return s.value
	}
	s.value += s.alpha * (sample - s.value)
	return s.value
}

// Value returns the current smoothed value (zero before the first sample).
func (s *Smoother) Value() float64 { return s.value }

// OnlineEstimator estimates the marginal delay of a link from per-packet
// observations only — measured sojourn times and service times — without
// a-priori knowledge of the link capacity. This is the role the paper
// assigns to the Cassandras–Abidi–Towsley perturbation-analysis estimator;
// see DESIGN.md for the substitution note.
//
// Derivation: for an M/M/1 link, W = 1/(μ−λ) and the marginal delay is
// D′(λ) = μ/(μ−λ)² = W²·μ. Both W and μ (via the mean service time) are
// directly observable, so D′ ≈ W̄²/s̄. For non-Poisson input this remains a
// consistent busy-period-based sensitivity estimate in the PA spirit.
type OnlineEstimator struct {
	tau      float64 // propagation delay, added to every estimate
	fallback float64 // estimate to report before any packet is observed

	n           int64
	sumSojourn  float64
	sumService  float64
	lastEstim   float64
	hasEstimate bool
}

// NewOnlineEstimator returns an estimator for a link with the given
// propagation delay. fallbackServiceTime seeds the idle-link estimate
// (typically meanPacketBits/capacity); it must be positive.
func NewOnlineEstimator(tau, fallbackServiceTime float64) *OnlineEstimator {
	if fallbackServiceTime <= 0 {
		panic("linkcost: non-positive fallback service time")
	}
	return &OnlineEstimator{tau: tau, fallback: fallbackServiceTime}
}

// Observe records one transmitted packet: its sojourn time in the queue
// (waiting plus transmission) and its transmission (service) time.
func (e *OnlineEstimator) Observe(sojourn, service float64) {
	if sojourn < 0 || service <= 0 {
		return // clock skew or zero-size guard; ignore the sample
	}
	e.n++
	e.sumSojourn += sojourn
	e.sumService += service
}

// Take returns the marginal-delay estimate over the window since the last
// Take and resets the accumulators. Windows with no packets return the
// previous estimate, or the idle-link marginal 1/μ + τ when there has never
// been one.
func (e *OnlineEstimator) Take() float64 {
	if e.n == 0 {
		if e.hasEstimate {
			return e.lastEstim
		}
		return e.fallback + e.tau
	}
	w := e.sumSojourn / float64(e.n)
	s := e.sumService / float64(e.n)
	e.n = 0
	e.sumSojourn = 0
	e.sumService = 0
	est := w*w/s + e.tau
	e.lastEstim = est
	e.hasEstimate = true
	return est
}

// KnownMu returns the service rate in packets/s for a link of cap bits/s and
// mean packet size meanBits. It panics on non-positive arguments.
func KnownMu(capacityBits, meanPacketBits float64) float64 {
	if capacityBits <= 0 || meanPacketBits <= 0 {
		panic("linkcost: non-positive capacity or packet size")
	}
	return capacityBits / meanPacketBits
}

// Utilization returns λ/μ clamped to [0, ∞).
func Utilization(lambda, mu float64) float64 {
	if mu <= 0 {
		return math.Inf(1)
	}
	if lambda < 0 {
		lambda = 0
	}
	return lambda / mu
}

// MM1Curvature returns the second derivative D”(λ) = 2μ/(μ−λ)³ of the
// M/M/1 total-delay function, linearly clamped above MaxUtilization (where
// D' is linearly extended, so D” is constant). Used by the Bertsekas-
// Gallager second-derivative step scaling.
func MM1Curvature(lambda, mu float64) float64 {
	if mu <= 0 {
		panic("linkcost: non-positive service rate")
	}
	if lambda < 0 {
		lambda = 0
	}
	lc := MaxUtilization * mu
	if lambda > lc {
		lambda = lc
	}
	d := mu - lambda
	return 2 * mu / (d * d * d)
}

// --- M/G/1 generalizations (Pollaczek-Khinchine) ---
//
// The paper assumes M/M/1 links because its sources use exponential packet
// sizes. Real traffic has other size distributions; the M/G/1 forms below
// support sensitivity studies. cs2 is the squared coefficient of variation
// of the service time: 1 recovers M/M/1 exactly, 0 is M/D/1 (fixed-size
// packets).

// MG1Delay returns the expected per-packet sojourn of an M/G/1 link:
// T = 1/μ + λ(1+cs²)/(2μ(μ−λ)) + τ, clamped above MaxUtilization.
func MG1Delay(lambda, mu, cs2, tau float64) float64 {
	if mu <= 0 {
		panic("linkcost: non-positive service rate")
	}
	if cs2 < 0 {
		panic("linkcost: negative squared coefficient of variation")
	}
	if lambda < 0 {
		lambda = 0
	}
	lc := MaxUtilization * mu
	if lambda <= lc {
		return 1/mu + lambda*(1+cs2)/(2*mu*(mu-lambda)) + tau
	}
	base := 1/mu + lc*(1+cs2)/(2*mu*(mu-lc))
	slope := (1 + cs2) / (2 * (mu - lc) * (mu - lc)) // dT/dλ at the clamp
	return base + slope*(lambda-lc) + tau
}

// MG1Marginal returns the M/G/1 marginal delay
// D′(λ) = T(λ) + λ·T′(λ) + τ with T′ = (1+cs²)/(2(μ−λ)²), clamped.
// With cs2 = 1 it equals MM1Marginal exactly.
func MG1Marginal(lambda, mu, cs2, tau float64) float64 {
	if mu <= 0 {
		panic("linkcost: non-positive service rate")
	}
	if cs2 < 0 {
		panic("linkcost: negative squared coefficient of variation")
	}
	if lambda < 0 {
		lambda = 0
	}
	lc := MaxUtilization * mu
	marginalAt := func(l float64) float64 {
		d := mu - l
		return 1/mu + l*(1+cs2)/(2*mu*d) + l*(1+cs2)/(2*d*d)
	}
	if lambda <= lc {
		return marginalAt(lambda) + tau
	}
	// Linear extension with the numerical slope at the clamp point.
	h := mu * 1e-9
	slope := (marginalAt(lc) - marginalAt(lc-h)) / h
	return marginalAt(lc) + slope*(lambda-lc) + tau
}

// MG1Total returns D(λ) = λ·T(λ) + τλ for an M/G/1 link, clamped.
func MG1Total(lambda, mu, cs2, tau float64) float64 {
	if lambda < 0 {
		lambda = 0
	}
	lc := MaxUtilization * mu
	if lambda <= lc {
		return lambda * MG1Delay(lambda, mu, cs2, tau)
	}
	base := lc * MG1Delay(lc, mu, cs2, tau)
	return base + MG1Marginal(lambda, mu, cs2, tau)*(lambda-lc)
}
