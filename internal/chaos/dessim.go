package chaos

import (
	"fmt"
	"sort"
	"strings"

	"minroute/internal/alloc"
	"minroute/internal/core"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/oracle"
	"minroute/internal/router"
	"minroute/internal/telemetry"
)

// desConfig is the router configuration chaos runs use: the paper's MP mode
// with shorter horizons (Tl=4, Ts=1) so allocation steps and long-term
// route changes actually occur inside scenario-length (≈10 s) runs.
func desConfig() router.Config {
	cfg := router.Defaults()
	cfg.Tl = 4
	cfg.Ts = 1
	return cfg
}

// RunDES executes the scenario in the packet simulator: real traffic, real
// queues, actions scheduled at their At coordinates, and three always-on
// oracles wired into the event loop — traffic conservation after every
// event, the φ-simplex invariant after every IH/AH step, and loop-freedom
// of the live successor graph after every event that changed an allocation.
// Convergence is not checked here: under flowing traffic the link costs
// never quiesce, so Theorem 4's premise never holds (the protocol-level
// runner checks it at true quiescence instead).
func RunDES(s *Scenario) (*Result, error) { return RunDESWith(s, nil) }

// RunDESWith is RunDES with an optional telemetry capture wired through
// core.Build: the run's full event timeline (control and data planes plus
// the injected faults) lands in tel for export.
func RunDESWith(s *Scenario, tel *telemetry.Capture) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tn, err := s.Network()
	if err != nil {
		return nil, err
	}
	dur := s.Duration
	if dur <= 0 {
		dur = 10
	}
	n := core.Build(tn, core.Options{
		Router:    desConfig(),
		Seed:      s.Seed,
		Warmup:    0,
		Duration:  dur,
		Telemetry: tel,
	})

	log := oracle.NewLog()
	var trace strings.Builder
	fmt.Fprintf(&trace, "scenario %s topo=%s seed=%d des dur=%g\n", s.Name, s.Topo, s.Seed, dur)

	// φ-simplex after every IH/AH step, and a dirty mark that triggers the
	// loop-freedom audit once the surrounding event finishes.
	dirty := false
	for _, id := range tn.Graph.Nodes() {
		node := n.Nodes[id]
		node.OnAlloc = func(j graph.NodeID, phi alloc.Params, succ []graph.NodeID) {
			dirty = true
			log.Record(oracle.CheckSimplexName)
			if err := oracle.Simplex(phi, succ); err != nil {
				log.Violate(oracle.CheckSimplexName, err.Error(), n.Eng.EventsFired(), n.Eng.Now())
			}
		}
	}

	checkLoopFree := func() {
		log.Record(oracle.CheckLoopFreeName)
		views := make(map[graph.NodeID]lfi.RouterView, len(n.Nodes))
		//lint:maporder-ok distinct-key inserts of live router views commute
		for id, node := range n.Nodes {
			if !node.Down() {
				views[id] = node.Protocol()
			}
		}
		if err := oracle.LoopFree(tn.Graph.NumNodes(), views); err != nil {
			log.Violate(oracle.CheckLoopFreeName, err.Error(), n.Eng.EventsFired(), n.Eng.Now())
		}
	}
	checkConservation := func() {
		log.Record(oracle.CheckConservationName)
		if err := oracle.Conservation(ledger(n)); err != nil {
			log.Violate(oracle.CheckConservationName, err.Error(), n.Eng.EventsFired(), n.Eng.Now())
		}
	}
	n.Eng.OnEvent = func() {
		checkConservation()
		if dirty {
			dirty = false
			checkLoopFree()
		}
	}

	// Fault schedule. Explicitly failed links must survive a node restart
	// (core.RestartNode brings every adjacent port up), so the state is
	// reconciled after each apply.
	failed := make(map[[2]graph.NodeID]bool)
	baseCap := make(map[[2]graph.NodeID]float64)
	for _, l := range tn.Graph.Links() {
		baseCap[[2]graph.NodeID{l.From, l.To}] = l.Capacity
	}
	acts := append([]Action(nil), s.Actions...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	for _, act := range acts {
		act := act
		if act.At > dur {
			fmt.Fprintf(&trace, "skip %s at=%g beyond duration\n", act, act.At)
			continue
		}
		n.Eng.Schedule(act.At, func() {
			fmt.Fprintf(&trace, "apply %s t=%.6f event=%d\n", act, n.Eng.Now(), n.Eng.EventsFired())
			applyDES(n, act, failed, baseCap)
		})
	}

	n.Start()
	n.BeginMeasurement()
	n.Eng.Run(dur)

	// Final sweep: the loop-freedom audit regardless of the dirty mark, and
	// the conservation ledger one last time.
	checkLoopFree()
	checkConservation()

	writeDESReport(&trace, n)
	res := &Result{Log: log, Events: n.Eng.EventsFired()}
	res.Trace, res.TraceHash = finishTrace(&trace, log)
	return res, nil
}

func applyDES(n *core.Network, act Action, failed map[[2]graph.NodeID]bool, baseCap map[[2]graph.NodeID]float64) {
	down := func(v graph.NodeID) bool { return n.Nodes[v].Down() }
	switch act.Kind {
	case KindFail:
		n.FailLink(act.A, act.B)
		failed[linkKey(act.A, act.B)] = true
	case KindRestore:
		failed[linkKey(act.A, act.B)] = false
		if !down(act.A) && !down(act.B) {
			n.RestoreLink(act.A, act.B)
		}
	case KindCost:
		// In the packet simulator a cost spike is a capacity drop: the
		// protocol sees it through its own measured link costs. Core never
		// originates this fault, so mark it here.
		n.MarkFault(true, fmt.Sprintf("cost %d-%d x%g", act.A, act.B, act.Factor))
		for _, pair := range [][2]graph.NodeID{{act.A, act.B}, {act.B, act.A}} {
			if p, ok := n.Ports[pair]; ok {
				p.Capacity = baseCap[pair] / act.Factor
			}
		}
	case KindCrash:
		n.CrashNode(act.Node)
	case KindRestart:
		if !down(act.Node) {
			return
		}
		n.RestartNode(act.Node)
		for _, k := range n.Graph.Neighbors(act.Node) {
			if failed[linkKey(act.Node, k)] {
				n.FailLink(act.Node, k)
			}
		}
	case KindPerturb:
		// No-op: the simulator's control band is lossless by construction,
		// implementing the paper's reliable-delivery assumption. The
		// protocol-level runner exercises perturbation instead.
	}
}

// ledger takes the instantaneous packet census of the network.
func ledger(n *core.Network) oracle.Ledger {
	var led oracle.Ledger
	for x := range n.Flows {
		led.Offered += n.SentPackets[x]
		led.Delivered += n.Stats[x].Count()
	}
	for _, id := range n.Graph.Nodes() {
		node := n.Nodes[id]
		led.RouterDrops += node.DroppedNoRoute + node.DroppedHopLimit + node.DroppedQueue + node.DroppedDown
	}
	for _, l := range n.Graph.Links() {
		p := n.Ports[[2]graph.NodeID{l.From, l.To}]
		led.PortLost += p.LostDataPackets
		led.InFlight += int64(p.InFlightDataPackets())
	}
	return led
}

func writeDESReport(trace *strings.Builder, n *core.Network) {
	rep := n.Report()
	for x := range rep.FlowNames {
		fmt.Fprintf(trace, "flow %s delivered %d offered %d mean %.6f\n",
			rep.FlowNames[x], rep.Delivered[x], rep.Offered[x], rep.MeanDelayMs[x])
	}
	fmt.Fprintf(trace, "drops noroute=%d hoplimit=%d queue=%d control=%d events=%d\n",
		rep.DropsNoRoute, rep.DropsHopLimit, rep.DropsQueue, rep.ControlMessages, n.Eng.EventsFired())
}
