package chaos

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"minroute/internal/alloc"
	"minroute/internal/core"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/oracle"
	"minroute/internal/router"
	"minroute/internal/telemetry"
)

// desConfig is the router configuration chaos runs use: the paper's MP mode
// with shorter horizons (Tl=4, Ts=1) so allocation steps and long-term
// route changes actually occur inside scenario-length (≈10 s) runs.
func desConfig() router.Config {
	cfg := router.Defaults()
	cfg.Tl = 4
	cfg.Ts = 1
	return cfg
}

// RunDES executes the scenario in the packet simulator: real traffic, real
// queues, actions scheduled at their At coordinates, and three always-on
// oracles wired into the event loop — traffic conservation after every
// event, the φ-simplex invariant after every IH/AH step, and loop-freedom
// of the live successor graph after every event that changed an allocation.
// Convergence is not checked here: under flowing traffic the link costs
// never quiesce, so Theorem 4's premise never holds (the protocol-level
// runner checks it at true quiescence instead).
func RunDES(s *Scenario) (*Result, error) { return RunDESWith(s, nil) }

// RunDESWith is RunDES with an optional telemetry capture wired through
// core.Build: the run's full event timeline (control and data planes plus
// the injected faults) lands in tel for export.
func RunDESWith(s *Scenario, tel *telemetry.Capture) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tn, err := s.Network()
	if err != nil {
		return nil, err
	}
	dur := s.Duration
	if dur <= 0 {
		dur = 10
	}
	n := core.Build(tn, core.Options{
		Router:    desConfig(),
		Seed:      s.Seed,
		Warmup:    0,
		Duration:  dur,
		Telemetry: tel,
	})

	log := oracle.NewLog()
	var trace strings.Builder
	fmt.Fprintf(&trace, "scenario %s topo=%s seed=%d des dur=%g\n", s.Name, s.Topo, s.Seed, dur)

	// φ-simplex after every IH/AH step, and a dirty mark that triggers the
	// loop-freedom audit once the surrounding event finishes.
	dirty := false
	for _, id := range tn.Graph.Nodes() {
		node := n.Nodes[id]
		node.OnAlloc = func(j graph.NodeID, phi alloc.Params, succ []graph.NodeID) {
			dirty = true
			log.Record(oracle.CheckSimplexName)
			if err := oracle.Simplex(phi, succ); err != nil {
				log.Violate(oracle.CheckSimplexName, err.Error(), n.Eng.EventsFired(), n.Eng.Now())
			}
		}
	}

	checkLoopFree := func() {
		log.Record(oracle.CheckLoopFreeName)
		views := make(map[graph.NodeID]lfi.RouterView, len(n.Nodes))
		//lint:maporder-ok distinct-key inserts of live router views commute
		for id, node := range n.Nodes {
			if !node.Down() {
				views[id] = node.Protocol()
			}
		}
		if err := oracle.LoopFree(tn.Graph.NumNodes(), views); err != nil {
			log.Violate(oracle.CheckLoopFreeName, err.Error(), n.Eng.EventsFired(), n.Eng.Now())
		}
	}
	checkConservation := func() {
		log.Record(oracle.CheckConservationName)
		if err := oracle.Conservation(ledger(n)); err != nil {
			log.Violate(oracle.CheckConservationName, err.Error(), n.Eng.EventsFired(), n.Eng.Now())
		}
	}
	n.Eng.OnEvent = func() {
		checkConservation()
		if dirty {
			dirty = false
			checkLoopFree()
		}
	}

	// Fault schedule. Explicitly failed links must survive a node restart
	// (core.RestartNode brings every adjacent port up), so the state is
	// reconciled after each apply.
	failed := make(map[[2]graph.NodeID]bool)
	baseCap := make(map[[2]graph.NodeID]float64)
	for _, l := range tn.Graph.Links() {
		baseCap[[2]graph.NodeID{l.From, l.To}] = l.Capacity
	}
	acts := append([]Action(nil), s.Actions...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	for _, act := range acts {
		act := act
		if act.At > dur {
			fmt.Fprintf(&trace, "skip %s at=%g beyond duration\n", act, act.At)
			continue
		}
		n.Eng.Schedule(act.At, func() {
			fmt.Fprintf(&trace, "apply %s t=%.6f event=%d\n", act, n.Eng.Now(), n.Eng.EventsFired())
			applyDES(n, act, failed, baseCap)
		})
	}

	n.Start()
	n.BeginMeasurement()
	n.Eng.Run(dur)

	// Final sweep: the loop-freedom audit regardless of the dirty mark, and
	// the conservation ledger one last time.
	checkLoopFree()
	checkConservation()

	writeDESReport(&trace, n, n.Eng.EventsFired())
	res := &Result{Log: log, Events: n.Eng.EventsFired()}
	res.Trace, res.TraceHash = finishTrace(&trace, log)
	return res, nil
}

// RunDESSharded executes the scenario in the packet simulator partitioned
// across the given number of engine shards (see internal/despart). The
// always-on oracles move from per-event cadence to the conservative window
// barriers — the only moments all shard clocks agree — so the trace hash
// differs from the serial RunDES hash by design. What the sharded runner
// pins instead is partition-independence: the trace (and any telemetry
// capture) is byte-identical at every shard count, because the barrier
// cadence is derived from the global minimum propagation delay rather than
// the partition's cross-shard minimum, and fault actions apply at barriers
// with deterministic merged event counts.
func RunDESSharded(s *Scenario, shards int) (*Result, error) {
	return RunDESShardedWith(s, shards, nil)
}

// RunDESShardedWith is RunDESSharded with an optional telemetry capture.
func RunDESShardedWith(s *Scenario, shards int, tel *telemetry.Capture) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tn, err := s.Network()
	if err != nil {
		return nil, err
	}
	dur := s.Duration
	if dur <= 0 {
		dur = 10
	}
	// Pin the window to the global minimum propagation delay over ALL links,
	// not just cross-shard ones: it is a valid lookahead for every partition,
	// and it makes the barrier schedule — hence oracle check counts and
	// action apply times — identical at every shard count.
	window := math.Inf(1)
	for _, l := range tn.Graph.Links() {
		if l.PropDelay < window {
			window = l.PropDelay
		}
	}
	if !(window > 0) || math.IsInf(window, 1) {
		return nil, fmt.Errorf("chaos: scenario %s has no positive-delay links to derive a shard window", s.Name)
	}
	n := core.Build(tn, core.Options{
		Router:      desConfig(),
		Seed:        s.Seed,
		Warmup:      0,
		Duration:    dur,
		Telemetry:   tel,
		Shards:      shards,
		ShardWindow: window,
	})

	log := oracle.NewLog()
	var trace strings.Builder
	// The header deliberately omits the shard count: hashes must compare
	// equal across shard counts.
	fmt.Fprintf(&trace, "scenario %s topo=%s seed=%d des-sharded dur=%g window=%g\n",
		s.Name, s.Topo, s.Seed, dur, window)

	// Merged event counter: engine events across every shard plus the fault
	// actions (which apply at barriers here, outside any engine, but count as
	// events in the serial runner). Only read at barriers, where it is
	// deterministic.
	var actionsFired int64
	events := func() int64 {
		t := actionsFired
		for _, e := range n.Engines() {
			t += e.EventsFired()
		}
		return t
	}

	// The φ-simplex oracle fires inside OnAlloc, which runs on the owning
	// shard's goroutine mid-window. Each router records into its own slot —
	// single writer per element — and the barrier merges the slots into the
	// shared log in ascending router order, stamping violations with the
	// router's own clock (read at violation time) and the merged barrier
	// event count.
	type simplexViol struct {
		msg string
		t   float64
	}
	numNodes := tn.Graph.NumNodes()
	simplexRuns := make([]int64, numNodes)
	simplexViols := make([][]simplexViol, numNodes)
	dirty := make([]bool, numNodes)
	for _, id := range tn.Graph.Nodes() {
		node := n.Nodes[id]
		slot := int(id)
		eng := n.EngineOf(id)
		node.OnAlloc = func(j graph.NodeID, phi alloc.Params, succ []graph.NodeID) {
			simplexRuns[slot]++
			dirty[slot] = true
			if err := oracle.Simplex(phi, succ); err != nil {
				simplexViols[slot] = append(simplexViols[slot], simplexViol{err.Error(), eng.Now()})
			}
		}
	}

	checkLoopFree := func(t float64) {
		log.Record(oracle.CheckLoopFreeName)
		views := make(map[graph.NodeID]lfi.RouterView, len(n.Nodes))
		//lint:maporder-ok distinct-key inserts of live router views commute
		for id, node := range n.Nodes {
			if !node.Down() {
				views[id] = node.Protocol()
			}
		}
		if err := oracle.LoopFree(tn.Graph.NumNodes(), views); err != nil {
			log.Violate(oracle.CheckLoopFreeName, err.Error(), events(), t)
		}
	}
	barrier := func(t float64) {
		ev := events()
		for id := 0; id < numNodes; id++ {
			for ; simplexRuns[id] > 0; simplexRuns[id]-- {
				log.Record(oracle.CheckSimplexName)
			}
			for _, v := range simplexViols[id] {
				log.Violate(oracle.CheckSimplexName, v.msg, ev, v.t)
			}
			simplexViols[id] = simplexViols[id][:0]
		}
		log.Record(oracle.CheckConservationName)
		if err := oracle.Conservation(ledger(n)); err != nil {
			log.Violate(oracle.CheckConservationName, err.Error(), ev, t)
		}
		wasDirty := false
		for id := range dirty {
			if dirty[id] {
				wasDirty = true
				dirty[id] = false
			}
		}
		if wasDirty {
			checkLoopFree(t)
		}
	}

	// Fault schedule: actions apply at the first barrier at or past their At
	// coordinate, single-threaded with every shard clock equal.
	failed := make(map[[2]graph.NodeID]bool)
	baseCap := make(map[[2]graph.NodeID]float64)
	for _, l := range tn.Graph.Links() {
		baseCap[[2]graph.NodeID{l.From, l.To}] = l.Capacity
	}
	acts := append([]Action(nil), s.Actions...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	due := acts[:0]
	for _, act := range acts {
		if act.At > dur {
			fmt.Fprintf(&trace, "skip %s at=%g beyond duration\n", act, act.At)
			continue
		}
		due = append(due, act)
	}
	acts = due
	ai := 0
	applyDue := func(t float64) {
		for ai < len(acts) && acts[ai].At <= t {
			act := acts[ai]
			ai++
			actionsFired++
			fmt.Fprintf(&trace, "apply %s t=%.6f event=%d\n", act, t, events())
			applyDES(n, act, failed, baseCap)
		}
	}

	n.Start()
	n.BeginMeasurement()
	for now := 0.0; now < dur; {
		next := now + window
		if next > dur {
			next = dur
		}
		n.RunUntil(next)
		applyDue(next)
		barrier(next)
		now = next
	}

	// Final sweep, mirroring the serial runner: loop freedom regardless of
	// the dirty marks, and the conservation ledger one last time.
	checkLoopFree(dur)
	log.Record(oracle.CheckConservationName)
	if err := oracle.Conservation(ledger(n)); err != nil {
		log.Violate(oracle.CheckConservationName, err.Error(), events(), dur)
	}

	writeDESReport(&trace, n, events())
	res := &Result{Log: log, Events: events()}
	res.Trace, res.TraceHash = finishTrace(&trace, log)
	return res, nil
}

func applyDES(n *core.Network, act Action, failed map[[2]graph.NodeID]bool, baseCap map[[2]graph.NodeID]float64) {
	down := func(v graph.NodeID) bool { return n.Nodes[v].Down() }
	switch act.Kind {
	case KindFail:
		n.FailLink(act.A, act.B)
		failed[linkKey(act.A, act.B)] = true
	case KindRestore:
		failed[linkKey(act.A, act.B)] = false
		if !down(act.A) && !down(act.B) {
			n.RestoreLink(act.A, act.B)
		}
	case KindCost:
		// In the packet simulator a cost spike is a capacity drop: the
		// protocol sees it through its own measured link costs. Core never
		// originates this fault, so mark it here.
		n.MarkFault(true, fmt.Sprintf("cost %d-%d x%g", act.A, act.B, act.Factor))
		for _, pair := range [][2]graph.NodeID{{act.A, act.B}, {act.B, act.A}} {
			if p, ok := n.Ports[pair]; ok {
				p.Capacity = baseCap[pair] / act.Factor
			}
		}
	case KindCrash:
		n.CrashNode(act.Node)
	case KindRestart:
		if !down(act.Node) {
			return
		}
		n.RestartNode(act.Node)
		for _, k := range n.Graph.Neighbors(act.Node) {
			if failed[linkKey(act.Node, k)] {
				n.FailLink(act.Node, k)
			}
		}
	case KindPerturb:
		// No-op: the simulator's control band is lossless by construction,
		// implementing the paper's reliable-delivery assumption. The
		// protocol-level runner exercises perturbation instead.
	}
}

// ledger takes the instantaneous packet census of the network.
func ledger(n *core.Network) oracle.Ledger {
	var led oracle.Ledger
	for x := range n.Flows {
		led.Offered += n.SentPackets[x]
		led.Delivered += n.Stats[x].Count()
	}
	for _, id := range n.Graph.Nodes() {
		node := n.Nodes[id]
		led.RouterDrops += node.DroppedNoRoute + node.DroppedHopLimit + node.DroppedQueue + node.DroppedDown
	}
	for _, l := range n.Graph.Links() {
		p := n.Ports[[2]graph.NodeID{l.From, l.To}]
		led.PortLost += p.LostData()
		led.InFlight += int64(p.InFlightDataPackets())
	}
	return led
}

func writeDESReport(trace *strings.Builder, n *core.Network, events int64) {
	rep := n.Report()
	for x := range rep.FlowNames {
		fmt.Fprintf(trace, "flow %s delivered %d offered %d mean %.6f\n",
			rep.FlowNames[x], rep.Delivered[x], rep.Offered[x], rep.MeanDelayMs[x])
	}
	fmt.Fprintf(trace, "drops noroute=%d hoplimit=%d queue=%d control=%d events=%d\n",
		rep.DropsNoRoute, rep.DropsHopLimit, rep.DropsQueue, rep.ControlMessages, events)
}
