package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"minroute/internal/telemetry"
)

// TestTelemetryFixtureGolden replays one regression fixture with telemetry
// capture enabled and compares the merged event log, byte for byte, against
// a checked-in JSONL golden. This pins down the full event taxonomy for a
// real chaos run — phase flips, LSU traffic, table commits, and the injected
// faults — so any drift in event ordering, sequencing, or encoding shows up
// as a diff rather than a silent change.
//
// Regenerate after an intentional behavioral change with:
//
//	CHAOS_UPDATE=1 go test -run TestTelemetryFixtureGolden ./internal/chaos
func TestTelemetryFixtureGolden(t *testing.T) {
	path := filepath.Join("testdata", "regress-dup-ack-credit.json")
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := s.Network()
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.NewCapture(tn.Graph.NumNodes())
	res, err := RunProtoWith(s, tel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("fixture violates invariants: %v", res.Log.Violations)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, tel.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	if tel.Trace.Emitted() == 0 {
		t.Fatal("telemetry capture recorded no events")
	}
	golden := filepath.Join("testdata", "regress-dup-ack-credit.events.jsonl")
	if os.Getenv("CHAOS_UPDATE") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with CHAOS_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("telemetry event log drifted from golden %s (got %d bytes, want %d); rerun with CHAOS_UPDATE=1 if intentional",
			golden, buf.Len(), len(want))
	}
}
