// Package chaos is the fault-injection harness: scripted schedules of
// topology and control-plane faults executed against the protocol-level
// harness (protonet + MPDA) and the packet simulator (core), with the
// invariant oracles of internal/oracle armed after every event. Scenarios
// are plain JSON, so a violating schedule found by the fuzzer (cmd/mdrfuzz)
// can be shrunk to a minimal reproducer, checked in as a fixture, and
// replayed deterministically with mdrsim -chaos.
//
// The fault model, relative to the paper's assumptions (Section 2):
//
//   - Link failure/recovery and cost changes are the paper's own dynamics —
//     "the topology of the network changes with time" — delivered to both
//     endpoints as LinkDown/LinkUp/LinkCostChange events.
//   - Node crash/restart is modeled as all adjacent links failing at once,
//     plus total loss of the crashed router's protocol state; a restarted
//     router rejoins with empty tables, exactly like a newly booted one.
//   - Control-plane perturbation (loss, duplication, bounded delay) attacks
//     the layer beneath "messages ... are received correctly and in the
//     proper sequence": the protocol-level harness retries lost frames at
//     the head of the link queue and discards duplicate frames at the
//     receiver — the two halves of the ARQ protocol that earns the paper
//     its assumption. What the routing process observes is exactly-once,
//     in-order, eventually-delivered messages under perturbed timing; only
//     timeliness is relaxed. (MPDA genuinely requires exactly-once: its ACK
//     bookkeeping counts one acknowledgment per entry-bearing LSU, so a
//     duplicate surfacing above the ARQ layer would mint a spurious credit,
//     end an ACTIVE phase early, and break the loop-free invariant.)
package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"minroute/internal/graph"
	"minroute/internal/rng"
	"minroute/internal/topo"
)

// Kind enumerates the primitive fault actions. Composite fault classes
// (duplex partitions) compile down to these at generation time, so the
// runners and the shrinker only ever see primitives.
type Kind string

const (
	// KindFail takes the duplex link A↔B down.
	KindFail Kind = "fail"
	// KindRestore brings the duplex link A↔B back up.
	KindRestore Kind = "restore"
	// KindCost multiplies the cost of link A↔B by Factor (protocol harness)
	// or divides its capacity by Factor (packet simulator) — a congestion
	// spike seen through each runner's native cost signal.
	KindCost Kind = "cost"
	// KindCrash takes router Node down hard: adjacent links fail and all
	// protocol state is lost.
	KindCrash Kind = "crash"
	// KindRestart boots a crashed router from scratch.
	KindRestart Kind = "restart"
	// KindPerturb sets the control-plane perturbation (Loss/Dup) from this
	// point on. A no-op in the packet simulator, whose control band is
	// lossless by construction (the paper's reliable-delivery assumption).
	KindPerturb Kind = "perturb"
)

// Action is one scheduled fault. Steps positions it in protocol-level runs
// (delivery attempts to execute before applying); At positions it in
// packet-simulator runs (seconds). Both coordinates travel together so one
// scenario replays in either runner.
type Action struct {
	Kind  Kind    `json:"kind"`
	Steps int     `json:"steps,omitempty"`
	At    float64 `json:"at,omitempty"`
	// A, B name the duplex link for fail/restore/cost.
	A graph.NodeID `json:"a,omitempty"`
	B graph.NodeID `json:"b,omitempty"`
	// Node names the router for crash/restart.
	Node graph.NodeID `json:"node,omitempty"`
	// Factor scales cost (≥ 1 is a spike) for KindCost.
	Factor float64 `json:"factor,omitempty"`
	// Loss and Dup are the perturbation probabilities for KindPerturb.
	Loss float64 `json:"loss,omitempty"`
	Dup  float64 `json:"dup,omitempty"`
}

func (a Action) String() string {
	switch a.Kind {
	case KindFail, KindRestore:
		return fmt.Sprintf("%s %d-%d", a.Kind, a.A, a.B)
	case KindCost:
		return fmt.Sprintf("cost %d-%d x%g", a.A, a.B, a.Factor)
	case KindCrash, KindRestart:
		return fmt.Sprintf("%s %d", a.Kind, a.Node)
	case KindPerturb:
		return fmt.Sprintf("perturb loss=%g dup=%g", a.Loss, a.Dup)
	}
	return string(a.Kind)
}

// Topology names accepted by Scenario.Topo.
const (
	TopoNET1   = "net1"
	TopoCAIRN  = "cairn"
	TopoRing   = "ring"
	TopoGrid   = "grid"
	TopoRandom = "random"
)

// Scenario is a complete, replayable chaos schedule.
type Scenario struct {
	Name string `json:"name"`
	// Topo selects the topology: net1, cairn, ring, grid, or random.
	Topo string `json:"topo"`
	// Seed drives every random choice of the run (interleaving, traffic).
	Seed uint64 `json:"seed"`
	// TopoSeed/TopoN/TopoExtra parameterize the random topology (and TopoN
	// sizes ring/grid variants). Ignored for net1/cairn.
	TopoSeed  uint64 `json:"toposeed,omitempty"`
	TopoN     int    `json:"topon,omitempty"`
	TopoExtra int    `json:"topoextra,omitempty"`
	// Flows is how many random flows the packet simulator offers (net1 and
	// cairn default to their configured demand sets when zero).
	Flows int `json:"flows,omitempty"`
	// Duration is the packet-simulator run length in seconds.
	Duration float64 `json:"duration"`
	// Actions is the fault schedule, applied in order.
	Actions []Action `json:"actions"`
}

// Load reads a scenario from a JSON file.
func Load(path string) (*Scenario, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &Scenario{}
	if err := json.Unmarshal(buf, s); err != nil {
		return nil, fmt.Errorf("chaos: parse %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return s, nil
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(path string) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Network materializes the scenario's topology and demand set. Random
// flows (for topologies without a configured demand set, or when Flows
// overrides it) are drawn from a stream split off the scenario seed, so
// the demand is part of the replayable identity of the scenario.
func (s *Scenario) Network() (*topo.Network, error) {
	var g *graph.Graph
	var flows []topo.Flow
	switch s.Topo {
	case TopoNET1:
		n := topo.NET1()
		g, flows = n.Graph, n.Flows
	case TopoCAIRN:
		n := topo.CAIRN()
		g, flows = n.Graph, n.Flows
	case TopoRing:
		n := s.TopoN
		if n < 3 {
			n = 6
		}
		g = topo.Ring(n, 5e6, 1e-3)
	case TopoGrid:
		n := s.TopoN
		if n < 2 {
			n = 3
		}
		g = topo.Grid(n, n, 5e6, 1e-3)
	case TopoRandom:
		n := s.TopoN
		if n < 4 {
			n = 8
		}
		extra := s.TopoExtra
		if extra <= 0 {
			extra = n / 2
		}
		g = topo.Random(s.TopoSeed, n, extra, 2e6, 10e6, 2e-3)
	default:
		return nil, fmt.Errorf("chaos: unknown topology %q", s.Topo)
	}
	if s.Flows > 0 || len(flows) == 0 {
		flows = randomFlows(g, s.Seed, s.Flows)
	}
	return &topo.Network{Graph: g, Flows: flows}, nil
}

func randomFlows(g *graph.Graph, seed uint64, count int) []topo.Flow {
	if count <= 0 {
		count = 4
	}
	r := rng.New(seed).Split(0xf10d)
	n := g.NumNodes()
	flows := make([]topo.Flow, 0, count)
	for x := 0; x < count; x++ {
		src := graph.NodeID(r.Intn(n))
		dst := graph.NodeID(r.Intn(n))
		if src == dst {
			dst = graph.NodeID((int(dst) + 1) % n)
		}
		flows = append(flows, topo.Flow{
			Name: fmt.Sprintf("f%d:%d->%d", x, src, dst),
			Src:  src,
			Dst:  dst,
			Rate: (100 + 100*r.Float64()) * 1e3,
		})
	}
	return flows
}

// Validate checks that every action is well-formed for the scenario's
// topology: known kinds, in-range endpoints, links that exist in the base
// graph, positive factors, probabilities below one.
func (s *Scenario) Validate() error {
	net, err := s.Network()
	if err != nil {
		return err
	}
	g := net.Graph
	n := g.NumNodes()
	for i, a := range s.Actions {
		switch a.Kind {
		case KindFail, KindRestore, KindCost:
			if a.A == a.B || int(a.A) >= n || int(a.B) >= n || a.A < 0 || a.B < 0 {
				return fmt.Errorf("chaos: action %d (%s): bad endpoints", i, a)
			}
			if _, ok := g.Link(a.A, a.B); !ok {
				return fmt.Errorf("chaos: action %d (%s): no such link in base topology", i, a)
			}
			if a.Kind == KindCost && !(a.Factor > 0) {
				return fmt.Errorf("chaos: action %d (%s): factor must be positive", i, a)
			}
		case KindCrash, KindRestart:
			if a.Node < 0 || int(a.Node) >= n {
				return fmt.Errorf("chaos: action %d (%s): bad node", i, a)
			}
		case KindPerturb:
			if a.Loss < 0 || a.Loss >= 1 || a.Dup < 0 || a.Dup >= 1 {
				return fmt.Errorf("chaos: action %d (%s): probabilities must be in [0,1)", i, a)
			}
		default:
			return fmt.Errorf("chaos: action %d: unknown kind %q", i, a.Kind)
		}
		if a.Steps < 0 || a.At < 0 {
			return fmt.Errorf("chaos: action %d (%s): negative schedule coordinate", i, a)
		}
	}
	return nil
}

// Partition compiles a duplex partition fault into primitive fail actions:
// every link crossing the cut between members and the rest of g fails at
// the same schedule point. members is the characteristic set of one side.
func Partition(g *graph.Graph, members map[graph.NodeID]bool, steps int, at float64) []Action {
	var out []Action
	for _, l := range g.Links() {
		if l.From < l.To && members[l.From] != members[l.To] {
			out = append(out, Action{Kind: KindFail, Steps: steps, At: at, A: l.From, B: l.To})
		}
	}
	return out
}
