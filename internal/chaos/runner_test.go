package chaos

import (
	"runtime"
	"strings"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/simpool"
)

// chaosScenario is a hand-written schedule exercising every action kind on
// NET1, used by the determinism and runner-behavior tests.
func chaosScenario() *Scenario {
	return &Scenario{
		Name: "kitchen-sink", Topo: TopoNET1, Seed: 3, Flows: 4, Duration: 6,
		Actions: []Action{
			{Kind: KindPerturb, Steps: 40, At: 0.5, Loss: 0.2, Dup: 0.1},
			{Kind: KindFail, Steps: 60, At: 1, A: 0, B: 1},
			{Kind: KindCost, Steps: 40, At: 1.5, A: 4, B: 5, Factor: 5},
			{Kind: KindCrash, Steps: 80, At: 2, Node: 7},
			{Kind: KindRestore, Steps: 50, At: 3, A: 0, B: 1},
			{Kind: KindRestart, Steps: 120, At: 4, Node: 7},
			{Kind: KindPerturb, Steps: 30, At: 5},
		},
	}
}

// TestRunnersAreDeterministic is the determinism golden test: the same
// scenario must hash identically run after run, whatever GOMAXPROCS or the
// simulation worker-pool width happen to be. Trace hashing covers the full
// transcript — fault applications, oracle counts, final routing tables — so
// any nondeterminism in the runners or the protocol shows up here.
func TestRunnersAreDeterministic(t *testing.T) {
	s := chaosScenario()
	type run struct {
		name string
		fn   func(*Scenario) (*Result, error)
	}
	for _, r := range []run{{"proto", RunProto}, {"des", RunDES}} {
		base, err := r.fn(s)
		if err != nil {
			t.Fatal(err)
		}
		if base.Failed() {
			t.Fatalf("%s: violations on the clean tree: %v", r.name, base.Log.Violations)
		}
		prev := runtime.GOMAXPROCS(1)
		simpool.SetWorkers(1)
		again, err := r.fn(s)
		runtime.GOMAXPROCS(prev)
		simpool.SetWorkers(0)
		if err != nil {
			t.Fatal(err)
		}
		if base.TraceHash != again.TraceHash {
			t.Fatalf("%s: hash changed across GOMAXPROCS/workers:\n%s\nvs\n%s",
				r.name, base.TraceHash, again.TraceHash)
		}
		if base.Events != again.Events {
			t.Fatalf("%s: event count changed: %d vs %d", r.name, base.Events, again.Events)
		}
	}
}

// TestScrambledSchedulesAreSafe feeds the runners deliberately incoherent
// schedules — restore before fail, restart without crash, double crash,
// faults on already-dead links — exactly what the shrinker produces when it
// removes arbitrary subsets. The state-tracked apply must keep every
// sequence well-defined (no panics) and violation-free.
func TestScrambledSchedulesAreSafe(t *testing.T) {
	scrambles := [][]Action{
		{{Kind: KindRestore, Steps: 10, At: 1, A: 0, B: 1}},
		{{Kind: KindRestart, Steps: 10, At: 1, Node: 3}},
		{
			{Kind: KindCrash, Steps: 20, At: 1, Node: 2},
			{Kind: KindCrash, Steps: 20, At: 2, Node: 2},
			{Kind: KindFail, Steps: 20, At: 2.5, A: 1, B: 2},
			{Kind: KindCost, Steps: 20, At: 3, A: 1, B: 2, Factor: 3},
			{Kind: KindRestart, Steps: 40, At: 4, Node: 2},
		},
		{
			{Kind: KindFail, Steps: 20, At: 1, A: 0, B: 1},
			{Kind: KindCrash, Steps: 20, At: 1.5, Node: 0},
			{Kind: KindRestore, Steps: 20, At: 2, A: 0, B: 1}, // endpoint still crashed
			{Kind: KindRestart, Steps: 40, At: 3, Node: 0},    // now the restore is due
		},
	}
	for i, actions := range scrambles {
		s := &Scenario{Name: "scramble", Topo: TopoNET1, Seed: uint64(i + 1), Flows: 3, Duration: 6, Actions: actions}
		for name, fn := range map[string]func(*Scenario) (*Result, error){"proto": RunProto, "des": RunDES} {
			res, err := fn(s)
			if err != nil {
				t.Fatalf("scramble %d %s: %v", i, name, err)
			}
			if res.Failed() {
				t.Fatalf("scramble %d %s: %v", i, name, res.Log.Violations)
			}
		}
	}
}

// TestCrashWithoutRestartPartitionsState: a crashed router stays out of the
// quiescence and convergence checks, and the survivors still converge on the
// remaining topology.
func TestCrashWithoutRestart(t *testing.T) {
	s := &Scenario{Name: "perma-crash", Topo: TopoRing, TopoN: 6, Seed: 4, Flows: 3, Duration: 5,
		Actions: []Action{{Kind: KindCrash, Steps: 30, At: 1, Node: 2}}}
	res, err := RunProto(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations: %v", res.Log.Violations)
	}
	if !strings.Contains(res.Trace, "router 2 crashed") {
		t.Fatal("trace does not mark the crashed router")
	}
}

// TestPartitionAndHeal runs a full duplex partition through the protocol
// runner and heals it; convergence at quiescence covers Theorem 4 on the
// healed topology.
func TestPartitionAndHeal(t *testing.T) {
	s := &Scenario{Name: "partition", Topo: TopoRing, TopoN: 6, Seed: 5, Flows: 3, Duration: 6}
	net, err := s.Network()
	if err != nil {
		t.Fatal(err)
	}
	members := map[graph.NodeID]bool{0: true, 1: true, 2: true}
	cut := Partition(net.Graph, members, 40, 1)
	s.Actions = append(s.Actions, cut...)
	for _, a := range cut {
		s.Actions = append(s.Actions, Action{Kind: KindRestore, Steps: 60, At: 3, A: a.A, B: a.B})
	}
	res, err := RunProto(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations: %v", res.Log.Violations)
	}
	for _, c := range res.Log.Counts() {
		if c.Count == 0 {
			t.Fatalf("oracle %s never ran", c.Check)
		}
	}
}

// TestDESSkipsActionsBeyondDuration: an action scheduled after the run ends
// is recorded in the trace as skipped, not silently dropped.
func TestDESSkipsActionsBeyondDuration(t *testing.T) {
	s := &Scenario{Name: "late", Topo: TopoNET1, Seed: 6, Flows: 3, Duration: 2,
		Actions: []Action{{Kind: KindFail, Steps: 10, At: 50, A: 0, B: 1}}}
	res, err := RunDES(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Trace, "skip fail 0-1") {
		t.Fatal("trace does not record the skipped action")
	}
}

func TestRunnersRejectInvalidScenario(t *testing.T) {
	bad := &Scenario{Topo: "atlantis"}
	if _, err := RunProto(bad); err == nil {
		t.Fatal("RunProto accepted an invalid scenario")
	}
	if _, err := RunDES(bad); err == nil {
		t.Fatal("RunDES accepted an invalid scenario")
	}
}
