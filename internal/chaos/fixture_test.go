package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixturesReplayByteIdentically replays every checked-in reproducer
// fixture and compares the trace hash against its golden .hash file. The
// fixtures are shrunk scenarios that once exposed real bugs (see the .json
// comments via their names); a hash drift means the replay is no longer
// deterministic or protocol behavior changed — either way, look closely.
//
// Regenerate goldens after an intentional behavioral change with:
//
//	CHAOS_UPDATE=1 go test -run TestFixturesReplay ./internal/chaos
func TestFixturesReplayByteIdentically(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	for _, path := range matches {
		s, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		res, err := RunProto(s)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if res.Failed() {
			t.Errorf("%s: fixture violates invariants on the fixed tree: %v", path, res.Log.Violations)
			continue
		}
		hashPath := strings.TrimSuffix(path, ".json") + ".hash"
		if os.Getenv("CHAOS_UPDATE") != "" {
			if err := os.WriteFile(hashPath, []byte(res.TraceHash+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(hashPath)
		if err != nil {
			t.Fatalf("%s: missing golden (run with CHAOS_UPDATE=1 to create): %v", path, err)
		}
		if got := res.TraceHash; got != strings.TrimSpace(string(want)) {
			t.Errorf("%s: trace hash %s != golden %s", path, got, strings.TrimSpace(string(want)))
		}
	}
}
