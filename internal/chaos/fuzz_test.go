package chaos

import "testing"

// FuzzChaosSchedule is the native fuzz target: the byte grammar decodes the
// input into a scenario, the protocol-level runner executes it with every
// oracle armed, and any violation fails the target. The checked-in corpus
// under testdata/fuzz seeds the mutator with one representative of each
// action kind; `make check` runs a short -fuzztime smoke over it.
func FuzzChaosSchedule(f *testing.F) {
	f.Add([]byte(nil))
	// One seed per action kind on each topology of the grammar, plus a
	// longer mixed schedule; Encode-produced inputs land on the same grid.
	for topoByte := 0; topoByte < len(codecTopos); topoByte++ {
		for kind := 0; kind < len(codecKinds); kind++ {
			f.Add([]byte{byte(topoByte), 11, 22, byte(kind), 5, 0, 20, 9})
		}
	}
	f.Add([]byte{0, 1, 2,
		0, 0, 0, 10, 0, // fail
		5, 0, 0, 12, 3, // perturb
		2, 1, 0, 15, 7, // cost
		3, 4, 0, 20, 0, // crash
		4, 4, 0, 30, 0, // restart
		1, 0, 0, 35, 0, // restore
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := FromBytes(data)
		res, err := RunProto(s)
		if err != nil {
			t.Fatalf("scenario from %v failed to run: %v", data, err)
		}
		if res.Failed() {
			t.Fatalf("invariant violation:\n%v\nscenario: %+v", res.Log.Violations, s)
		}
	})
}
