package chaos

import "minroute/internal/graph"

// The byte codec is the grammar the native Go fuzzer mutates: any byte
// string decodes to a valid scenario (the decoder is total — every field is
// taken modulo its legal range), and Encode is its inverse on the canonical
// subset the decoder produces, so seed corpora can be emitted from
// generated scenarios. The fuzz grammar deliberately sticks to small
// topologies so the 10-second smoke budget covers many executions.

// codecTopos is the topology alphabet of the byte grammar.
var codecTopos = []string{TopoNET1, TopoRing, TopoGrid, TopoRandom}

const (
	codecHeader     = 3  // topo byte + 2 seed bytes
	codecRecord     = 5  // kind, ref1, ref2, steps, magnitude
	codecMaxActions = 16 // caps schedule length whatever the input size
)

var codecKinds = []Kind{KindFail, KindRestore, KindCost, KindCrash, KindRestart, KindPerturb}

// FromBytes decodes data into a valid scenario. The decoder is total: any
// input (including empty) yields a scenario that passes Validate.
func FromBytes(data []byte) *Scenario {
	s := &Scenario{Name: "fuzz", Duration: 2, Flows: 3}
	if len(data) < codecHeader {
		s.Topo = TopoNET1
		return s
	}
	s.Topo = codecTopos[int(data[0])%len(codecTopos)]
	if s.Topo == TopoRandom {
		// Small fixed-size random topology; the seed byte picks the shape.
		s.TopoSeed = uint64(data[1])
		s.TopoN = 8
		s.TopoExtra = 4
	}
	s.Seed = uint64(data[1]) | uint64(data[2])<<8
	tn, err := s.Network()
	if err != nil {
		panic("chaos: FromBytes built invalid topology: " + err.Error())
	}
	g := tn.Graph
	var links [][2]graph.NodeID
	for _, l := range g.Links() {
		if l.From < l.To {
			links = append(links, [2]graph.NodeID{l.From, l.To})
		}
	}

	rest := data[codecHeader:]
	for len(rest) >= codecRecord && len(s.Actions) < codecMaxActions {
		rec := rest[:codecRecord]
		rest = rest[codecRecord:]
		kind := codecKinds[int(rec[0])%len(codecKinds)]
		steps := int(rec[3]) * 8
		act := Action{Kind: kind, Steps: steps, At: float64(steps) / 400}
		switch kind {
		case KindFail, KindRestore, KindCost:
			l := links[(int(rec[1])|int(rec[2])<<8)%len(links)]
			act.A, act.B = l[0], l[1]
			if kind == KindCost {
				act.Factor = 1 + float64(rec[4]%16)
			}
		case KindCrash, KindRestart:
			act.Node = graph.NodeID(int(rec[1]) % g.NumNodes())
		case KindPerturb:
			act.Loss = float64(rec[4]%8) * 0.06
			act.Dup = float64(rec[4]%4) * 0.05
		}
		s.Actions = append(s.Actions, act)
	}
	return s
}

// Encode produces bytes that FromBytes decodes back to an equivalent
// scenario, for scenarios on the codec's canonical grid (small topologies,
// the quantized steps/factor/probability values the decoder emits). It is
// the corpus-seeding half of the grammar.
func Encode(s *Scenario) []byte {
	topoByte := byte(0)
	for i, name := range codecTopos {
		if name == s.Topo {
			topoByte = byte(i)
		}
	}
	out := []byte{topoByte, byte(s.Seed), byte(s.Seed >> 8)}
	tn, err := s.Network()
	if err != nil {
		return out
	}
	var links [][2]graph.NodeID
	for _, l := range tn.Graph.Links() {
		if l.From < l.To {
			links = append(links, [2]graph.NodeID{l.From, l.To})
		}
	}
	linkIndex := func(a, b graph.NodeID) int {
		key := linkKey(a, b)
		for i, l := range links {
			if l == key {
				return i
			}
		}
		return 0
	}
	for _, act := range s.Actions {
		if len(out) >= codecHeader+codecMaxActions*codecRecord {
			break
		}
		kindByte := byte(0)
		for i, k := range codecKinds {
			if k == act.Kind {
				kindByte = byte(i)
			}
		}
		rec := [codecRecord]byte{kindByte, 0, 0, byte(act.Steps / 8), 0}
		switch act.Kind {
		case KindFail, KindRestore, KindCost:
			idx := linkIndex(act.A, act.B)
			rec[1], rec[2] = byte(idx), byte(idx>>8)
			if act.Kind == KindCost {
				rec[4] = byte(int(act.Factor-1) % 16)
			}
		case KindCrash, KindRestart:
			rec[1] = byte(act.Node)
		case KindPerturb:
			rec[4] = byte(int(act.Loss/0.06)%8) | byte(int(act.Dup/0.05)%4)
		}
		out = append(out, rec[:]...)
	}
	return out
}
