package chaos

import (
	"path/filepath"
	"reflect"
	"testing"

	"minroute/internal/graph"
)

func TestValidateRejectsMalformedActions(t *testing.T) {
	cases := []struct {
		name string
		act  Action
	}{
		{"self-link", Action{Kind: KindFail, A: 1, B: 1}},
		{"out-of-range", Action{Kind: KindFail, A: 0, B: 99}},
		{"negative-endpoint", Action{Kind: KindRestore, A: -1, B: 2}},
		{"missing-link", Action{Kind: KindFail, A: 0, B: 5}}, // NET1 has no 0-5 link
		{"zero-factor", Action{Kind: KindCost, A: 0, B: 1, Factor: 0}},
		{"bad-node", Action{Kind: KindCrash, Node: 99}},
		{"loss-too-high", Action{Kind: KindPerturb, Loss: 1}},
		{"negative-dup", Action{Kind: KindPerturb, Dup: -0.1}},
		{"unknown-kind", Action{Kind: "meltdown"}},
		{"negative-steps", Action{Kind: KindCrash, Node: 1, Steps: -1}},
		{"negative-at", Action{Kind: KindCrash, Node: 1, At: -2}},
	}
	for _, tc := range cases {
		s := &Scenario{Name: tc.name, Topo: TopoNET1, Duration: 5, Actions: []Action{tc.act}}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.act)
		}
	}
	if err := (&Scenario{Topo: "atlantis"}).Validate(); err == nil {
		t.Error("Validate accepted an unknown topology")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := Generate(42)
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("roundtrip mismatch:\nsaved  %+v\nloaded %+v", s, got)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := &Scenario{Name: "bad", Topo: TopoNET1, Duration: 1,
		Actions: []Action{{Kind: KindFail, A: 0, B: 0}}}
	path := filepath.Join(dir, "bad.json")
	if err := bad.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted an invalid scenario")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}

func TestNetworkTopologies(t *testing.T) {
	cases := []struct {
		s     Scenario
		nodes int
	}{
		{Scenario{Topo: TopoNET1}, 10},
		{Scenario{Topo: TopoCAIRN}, 26},
		{Scenario{Topo: TopoRing}, 6},             // defaulted size
		{Scenario{Topo: TopoRing, TopoN: 5}, 5},   // explicit size
		{Scenario{Topo: TopoGrid}, 9},             // 3x3 default
		{Scenario{Topo: TopoGrid, TopoN: 4}, 16},  // 4x4
		{Scenario{Topo: TopoRandom}, 8},           // defaulted size
		{Scenario{Topo: TopoRandom, TopoN: 10, TopoExtra: 3}, 10},
	}
	for _, tc := range cases {
		net, err := tc.s.Network()
		if err != nil {
			t.Fatalf("%s: %v", tc.s.Topo, err)
		}
		if got := net.Graph.NumNodes(); got != tc.nodes {
			t.Errorf("%s (n=%d): %d nodes, want %d", tc.s.Topo, tc.s.TopoN, got, tc.nodes)
		}
		if len(net.Flows) == 0 {
			t.Errorf("%s: no flows", tc.s.Topo)
		}
	}
}

func TestNetworkFlowsAreSeedDeterministic(t *testing.T) {
	a := Scenario{Topo: TopoRing, Seed: 9, Flows: 5}
	b := Scenario{Topo: TopoRing, Seed: 9, Flows: 5}
	na, _ := a.Network()
	nb, _ := b.Network()
	if !reflect.DeepEqual(na.Flows, nb.Flows) {
		t.Fatal("same seed produced different flows")
	}
	c := Scenario{Topo: TopoRing, Seed: 10, Flows: 5}
	nc, _ := c.Network()
	if reflect.DeepEqual(na.Flows, nc.Flows) {
		t.Fatal("different seeds produced identical flows")
	}
}

func TestPartitionCutsExactlyTheCrossingLinks(t *testing.T) {
	s := Scenario{Topo: TopoRing, TopoN: 6}
	net, _ := s.Network()
	members := map[graph.NodeID]bool{0: true, 1: true, 2: true}
	cut := Partition(net.Graph, members, 10, 1.5)
	// Ring 0-1-2-3-4-5-0: the cut {0,1,2}|{3,4,5} crosses links 2-3 and 0-5.
	if len(cut) != 2 {
		t.Fatalf("cut has %d actions, want 2: %v", len(cut), cut)
	}
	for _, a := range cut {
		if a.Kind != KindFail || a.Steps != 10 || a.At != 1.5 {
			t.Fatalf("bad compiled action %+v", a)
		}
		if members[a.A] == members[a.B] {
			t.Fatalf("action %v does not cross the cut", a)
		}
	}
}

func TestGenerateScenariosAreValidAndDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(s.Actions) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if !reflect.DeepEqual(s, Generate(seed)) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
	}
}
