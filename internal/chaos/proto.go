package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/mpda"
	"minroute/internal/oracle"
	"minroute/internal/protonet"
	"minroute/internal/telemetry"
)

// protoBudget bounds delivery attempts per scenario; exceeding it is a
// quiescence violation, not a crash.
const protoBudget = 8_000_000

// Result is the outcome of one chaos run.
type Result struct {
	// Log holds per-oracle execution counts and any violations.
	Log *oracle.Log
	// Trace is the deterministic run transcript; TraceHash is its SHA-256.
	// Two runs of the same scenario must produce identical hashes.
	Trace     string
	TraceHash string
	// Events counts protonet delivery attempts or DES events fired.
	Events int64
}

// Failed reports whether any oracle fired.
func (r *Result) Failed() bool { return r.Log.Failed() }

func finishTrace(b *strings.Builder, log *oracle.Log) (string, string) {
	for _, c := range log.Counts() {
		fmt.Fprintf(b, "check %s ran %d\n", c.Check, c.Count)
	}
	for _, v := range log.Violations {
		fmt.Fprintf(b, "VIOLATION %s\n", v)
	}
	trace := b.String()
	sum := sha256.Sum256([]byte(trace))
	return trace, hex.EncodeToString(sum[:])
}

// protoCost is the protocol-level link cost (the mpda test idiom:
// propagation delay plus a small per-hop charge).
func protoCost(l *graph.Link) float64 { return l.PropDelay + 1e-4 }

type linkParams struct {
	capacity, prop float64
}

func linkKey(a, b graph.NodeID) [2]graph.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]graph.NodeID{a, b}
}

// protoState tracks the effective fault state so that any action sequence —
// including the scrambled ones the shrinker and fuzzer produce — is valid:
// a link is up iff it is not explicitly failed and neither endpoint is
// crashed, and every apply is reconciled against that rule.
type protoState struct {
	net     *protonet.Net
	g       *graph.Graph
	routers map[graph.NodeID]*mpda.Router
	views   map[graph.NodeID]lfi.RouterView
	base    map[[2]graph.NodeID]linkParams
	cost    map[[2]graph.NodeID]float64
	failed  map[[2]graph.NodeID]bool
	crashed map[graph.NodeID]bool
	numNode int
	// tel, when non-nil, records the run as a telemetry event timeline.
	// The protocol harness has no simulation clock, so event timestamps are
	// the delivery-attempt count — still monotone and deterministic.
	tel *telemetry.Capture
}

// now is the protocol harness's timebase: delivery attempts so far.
func (st *protoState) now() float64 { return float64(st.net.Attempts()) }

// installHooks wires MPDA's phase/commit observers for router id into the
// capture; re-invoked on restart because the router is rebuilt.
func (st *protoState) installHooks(id graph.NodeID, r *mpda.Router) {
	if st.tel == nil {
		return
	}
	r.OnPhase = func(active bool) {
		k := telemetry.KindPhasePassive
		if active {
			k = telemetry.KindPhaseActive
		}
		st.tel.Trace.Emit(telemetry.NewEvent(st.now(), k, id))
	}
	r.OnCommit = func(changed int) {
		ev := telemetry.NewEvent(st.now(), telemetry.KindTableCommit, id)
		ev.Value = float64(changed)
		st.tel.Trace.Emit(ev)
	}
}

// emitFault records one injected fault marker in the network-scope ring.
func (st *protoState) emitFault(k telemetry.Kind, label string) {
	if st.tel == nil {
		return
	}
	ev := telemetry.NewEvent(st.now(), k, graph.None)
	ev.Label = label
	st.tel.Trace.Emit(ev)
}

func (st *protoState) costOf(a, b graph.NodeID) float64 { return st.cost[linkKey(a, b)] }

func (st *protoState) apply(act Action) {
	switch act.Kind {
	case KindFail:
		key := linkKey(act.A, act.B)
		st.emitFault(telemetry.KindFaultStart, fmt.Sprintf("link-fail %d-%d", act.A, act.B))
		if _, up := st.g.Link(act.A, act.B); up {
			st.net.FailLink(act.A, act.B)
		}
		st.failed[key] = true
	case KindRestore:
		key := linkKey(act.A, act.B)
		st.emitFault(telemetry.KindFaultStop, fmt.Sprintf("link-restore %d-%d", act.A, act.B))
		st.failed[key] = false
		st.restoreIfDue(key)
	case KindCost:
		st.emitFault(telemetry.KindFaultStart, fmt.Sprintf("cost %d-%d x%g", act.A, act.B, act.Factor))
		key := linkKey(act.A, act.B)
		st.cost[key] = (st.base[key].prop + 1e-4) * act.Factor
		if _, up := st.g.Link(act.A, act.B); up {
			st.net.ChangeCost(act.A, act.B, st.cost[key])
			st.net.ChangeCost(act.B, act.A, st.cost[key])
		}
	case KindCrash:
		v := act.Node
		if st.crashed[v] {
			return
		}
		st.emitFault(telemetry.KindFaultStart, fmt.Sprintf("crash %d", v))
		st.crashed[v] = true
		delete(st.views, v)
		nbrs := append([]graph.NodeID(nil), st.g.Neighbors(v)...)
		for _, k := range nbrs {
			st.net.FailLink(v, k)
		}
	case KindRestart:
		v := act.Node
		if !st.crashed[v] {
			return
		}
		st.emitFault(telemetry.KindFaultStop, fmt.Sprintf("restart %d", v))
		st.crashed[v] = false
		st.net.Detach(v)
		r := mpda.NewRouter(v, st.numNode, st.net.Sender(v))
		st.installHooks(v, r)
		st.routers[v] = r
		st.views[v] = r
		st.net.Attach(v, r)
		//lint:maporder-ok per-key reconciliation of independent links commutes
		for key := range st.base {
			if key[0] == v || key[1] == v {
				st.restoreIfDue(key)
			}
		}
	case KindPerturb:
		st.emitFault(telemetry.KindFaultStart, fmt.Sprintf("perturb loss=%g dup=%g", act.Loss, act.Dup))
		st.net.SetPerturb(protonet.Perturb{LossProb: act.Loss, DupProb: act.Dup})
	}
}

// restoreIfDue brings key back up when the effective state says it should
// be: not explicitly failed, neither endpoint crashed, not already present.
func (st *protoState) restoreIfDue(key [2]graph.NodeID) {
	if st.failed[key] || st.crashed[key[0]] || st.crashed[key[1]] {
		return
	}
	if _, up := st.g.Link(key[0], key[1]); up {
		return
	}
	p := st.base[key]
	st.net.RestoreLink(key[0], key[1], p.capacity, p.prop, st.cost[key])
}

// RunProto executes the scenario against the protocol-level harness: one
// MPDA router per node on a protonet, the loop-freedom and FD-ordering
// oracles armed after every delivery, actions applied at their Steps
// coordinates, and — after the network quiesces — the quiescence and
// Theorem 4 convergence oracles checked against Dijkstra ground truth on
// the surviving topology.
func RunProto(s *Scenario) (*Result, error) { return RunProtoWith(s, nil) }

// RunProtoWith is RunProto with an optional telemetry capture: the run's
// phase transitions, message deliveries, table commits, and injected faults
// land in tel's event bus (timestamped by delivery attempt — the harness
// has no simulation clock). mdrfuzz ships this timeline alongside shrunk
// reproducers.
func RunProtoWith(s *Scenario, tel *telemetry.Capture) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tn, err := s.Network()
	if err != nil {
		return nil, err
	}
	g := tn.Graph
	st := &protoState{
		net:     protonet.New(g, s.Seed),
		g:       g,
		routers: make(map[graph.NodeID]*mpda.Router),
		views:   make(map[graph.NodeID]lfi.RouterView),
		base:    make(map[[2]graph.NodeID]linkParams),
		cost:    make(map[[2]graph.NodeID]float64),
		failed:  make(map[[2]graph.NodeID]bool),
		crashed: make(map[graph.NodeID]bool),
		numNode: g.NumNodes(),
		tel:     tel,
	}
	if tel != nil {
		st.net.OnMessage = func(from, to graph.NodeID, entries int, ack bool) {
			ev := telemetry.NewEvent(st.now(), telemetry.KindLSURecv, to)
			ev.Peer = from
			ev.Value = float64(entries)
			tel.Trace.Emit(ev)
			if ack {
				a := telemetry.NewEvent(st.now(), telemetry.KindLSUAck, to)
				a.Peer = from
				tel.Trace.Emit(a)
			}
		}
	}
	for _, l := range g.Links() {
		if l.From < l.To {
			key := linkKey(l.From, l.To)
			st.base[key] = linkParams{capacity: l.Capacity, prop: l.PropDelay}
			st.cost[key] = protoCost(l)
		}
	}
	for _, id := range g.Nodes() {
		r := mpda.NewRouter(id, st.numNode, st.net.Sender(id))
		st.installHooks(id, r)
		st.routers[id] = r
		st.views[id] = r
		st.net.Attach(id, r)
	}

	log := oracle.NewLog()
	suite := oracle.NewSuite(log)
	suite.Add(oracle.CheckLoopFreeName, func() error {
		return oracle.LoopFree(st.numNode, st.views)
	})
	st.net.OnDeliver = func() {
		suite.RunAll(int64(st.net.Attempts()), 0)
	}

	var trace strings.Builder
	fmt.Fprintf(&trace, "scenario %s topo=%s seed=%d proto\n", s.Name, s.Topo, s.Seed)
	st.net.BringUpAll(func(l *graph.Link) float64 { return st.costOf(l.From, l.To) })

	quiesced := runProtoSchedule(st, s, &trace, log)

	if quiesced {
		activeViews := make(map[graph.NodeID]oracle.ActiveView, len(st.routers))
		protoViews := make(map[graph.NodeID]oracle.ProtocolView, len(st.routers))
		//lint:maporder-ok distinct-key inserts of live router views commute
		for id, r := range st.routers {
			if st.crashed[id] {
				continue
			}
			activeViews[id] = r
			protoViews[id] = r
		}
		ev := int64(st.net.Attempts())
		log.Record(oracle.CheckQuiescenceName)
		if err := oracle.Quiescent(activeViews, st.net.Pending()); err != nil {
			log.Violate(oracle.CheckQuiescenceName, err.Error(), ev, 0)
		}
		log.Record(oracle.CheckConvergenceName)
		if err := oracle.Convergence(g, func(l *graph.Link) float64 { return st.costOf(l.From, l.To) }, protoViews); err != nil {
			log.Violate(oracle.CheckConvergenceName, err.Error(), ev, 0)
		}
	}

	writeProtoTables(&trace, st)
	fmt.Fprintf(&trace, "attempts %d delivered %d\n", st.net.Attempts(), st.net.Delivered())
	res := &Result{Log: log, Events: int64(st.net.Attempts())}
	res.Trace, res.TraceHash = finishTrace(&trace, log)
	return res, nil
}

// runProtoSchedule drives deliveries with actions interleaved at their
// Steps coordinates. It reports whether the run quiesced within budget (a
// budget overrun is recorded as a quiescence violation).
func runProtoSchedule(st *protoState, s *Scenario, trace *strings.Builder, log *oracle.Log) bool {
	steps := func(target int) bool {
		for st.net.Attempts() < target {
			if !st.net.Step() {
				return true // quiescent before target; keep schedule moving
			}
			if st.net.Attempts() > protoBudget {
				log.Violate(oracle.CheckQuiescenceName,
					"protocol did not quiesce within delivery budget", int64(st.net.Attempts()), 0)
				return false
			}
		}
		return true
	}
	for _, act := range s.Actions {
		if !steps(st.net.Attempts() + act.Steps) {
			return false
		}
		fmt.Fprintf(trace, "apply %s at attempts=%d delivered=%d\n", act, st.net.Attempts(), st.net.Delivered())
		st.apply(act)
	}
	for st.net.Step() {
		if st.net.Attempts() > protoBudget {
			log.Violate(oracle.CheckQuiescenceName,
				"protocol did not quiesce within delivery budget", int64(st.net.Attempts()), 0)
			return false
		}
	}
	return true
}

// writeProtoTables appends every live router's distance vector to the
// trace, making the hash sensitive to the full converged state.
func writeProtoTables(trace *strings.Builder, st *protoState) {
	ids := make([]graph.NodeID, 0, len(st.routers))
	//lint:maporder-ok keys are collected and sorted before writing
	for id := range st.routers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if st.crashed[id] {
			fmt.Fprintf(trace, "router %d crashed\n", id)
			continue
		}
		r := st.routers[id]
		fmt.Fprintf(trace, "router %d D=[", id)
		for j := 0; j < st.numNode; j++ {
			if j > 0 {
				trace.WriteByte(' ')
			}
			fmt.Fprintf(trace, "%.9g", r.Dist(graph.NodeID(j)))
		}
		trace.WriteString("]\n")
	}
}
