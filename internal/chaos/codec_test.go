package chaos

import (
	"reflect"
	"testing"

	"minroute/internal/rng"
)

// TestFromBytesIsTotal: every byte string — including empty, truncated, and
// random garbage — must decode to a scenario that passes Validate. The fuzz
// harness depends on this: mutated inputs go straight into the runners.
func TestFromBytesIsTotal(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{0xff, 0xff},
		{1, 2, 3},
		{3, 7, 9, 0xfe},                // random topo, truncated record
		{2, 0, 0, 0, 0, 0, 0, 0},       // grid, one record
		{0xaa, 0xbb, 0xcc, 5, 4, 3, 2, 1, 0, 9, 8, 7, 6, 5},
	}
	r := rng.New(77)
	for i := 0; i < 50; i++ {
		buf := make([]byte, r.Intn(64))
		for j := range buf {
			buf[j] = byte(r.Intn(256))
		}
		cases = append(cases, buf)
	}
	for _, data := range cases {
		s := FromBytes(data)
		if err := s.Validate(); err != nil {
			t.Fatalf("FromBytes(%v) is invalid: %v", data, err)
		}
	}
}

func TestFromBytesEmptyDefaults(t *testing.T) {
	s := FromBytes(nil)
	if s.Topo != TopoNET1 || len(s.Actions) != 0 {
		t.Fatalf("empty input decoded to %+v", s)
	}
}

// TestEncodeRoundtrip: Encode is FromBytes' inverse on the decoder's own
// canonical grid, so corpus seeds can be minted from generated scenarios.
func TestEncodeRoundtrip(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		s := FromBytes(encodeProbe(seed))
		back := FromBytes(Encode(s))
		if !reflect.DeepEqual(s.Actions, back.Actions) || s.Topo != back.Topo || s.Seed != back.Seed {
			t.Fatalf("roundtrip mismatch for probe %d:\n%+v\nvs\n%+v", seed, s, back)
		}
	}
}

// encodeProbe deterministically builds byte strings covering every action
// kind and topology for the roundtrip test.
func encodeProbe(seed uint64) []byte {
	r := rng.New(seed)
	buf := []byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))}
	records := 1 + r.Intn(6)
	for i := 0; i < records; i++ {
		for j := 0; j < codecRecord; j++ {
			buf = append(buf, byte(r.Intn(256)))
		}
	}
	return buf
}

func TestFromBytesCapsActions(t *testing.T) {
	data := make([]byte, codecHeader+(codecMaxActions+10)*codecRecord)
	s := FromBytes(data)
	if len(s.Actions) != codecMaxActions {
		t.Fatalf("decoded %d actions, want cap %d", len(s.Actions), codecMaxActions)
	}
}
