package chaos

import "testing"

func costAction(factor float64) Action {
	return Action{Kind: KindCost, Steps: 1, A: 0, B: 1, Factor: factor}
}

// TestShrinkFindsMinimalSubset: ddmin over a synthetic predicate that fails
// iff the schedule still contains both marked actions must strip every other
// action, wherever the pair sits in the list.
func TestShrinkFindsMinimalSubset(t *testing.T) {
	needed := func(a Action) bool { return a.Kind == KindCost && a.Factor == 7 }
	failing := func(s *Scenario) bool {
		count := 0
		for _, a := range s.Actions {
			if needed(a) {
				count++
			}
		}
		return count >= 2
	}
	for _, positions := range [][2]int{{0, 9}, {3, 4}, {8, 9}} {
		var actions []Action
		for i := 0; i < 10; i++ {
			if i == positions[0] || i == positions[1] {
				actions = append(actions, costAction(7))
			} else {
				actions = append(actions, costAction(2))
			}
		}
		s := &Scenario{Name: "shrink", Topo: TopoNET1, Duration: 1, Actions: actions}
		min := Shrink(s, failing)
		if len(min.Actions) != 2 || !needed(min.Actions[0]) || !needed(min.Actions[1]) {
			t.Fatalf("pair at %v: shrunk to %v, want exactly the two marked actions",
				positions, min.Actions)
		}
		if len(s.Actions) != 10 {
			t.Fatal("Shrink mutated its input")
		}
	}
}

// TestShrinkKeepsSingleAction: a predicate that always fails shrinks to one
// action, never to an empty schedule that no longer reproduces anything.
func TestShrinkToOneAction(t *testing.T) {
	var actions []Action
	for i := 0; i < 7; i++ {
		actions = append(actions, costAction(float64(i+2)))
	}
	s := &Scenario{Name: "always", Topo: TopoNET1, Duration: 1, Actions: actions}
	min := Shrink(s, func(c *Scenario) bool { return len(c.Actions) >= 1 })
	if len(min.Actions) != 1 {
		t.Fatalf("shrunk to %d actions, want 1", len(min.Actions))
	}
}

// TestShrinkAgainstRunProto exercises Shrink end to end with real runs: the
// predicate replays each candidate through RunProto (every candidate the
// shrinker proposes must therefore be executable) and reports whether a fail
// action survives — a stand-in for "the violation still reproduces".
func TestShrinkAgainstRunProto(t *testing.T) {
	s := Generate(9)
	failing := func(c *Scenario) bool {
		if _, err := RunProto(c); err != nil {
			return false
		}
		for _, a := range c.Actions {
			if a.Kind == KindFail {
				return true
			}
		}
		return false
	}
	if !failing(s) {
		t.Skip("seed 9 has no fail action")
	}
	min := Shrink(s, failing)
	if len(min.Actions) != 1 || min.Actions[0].Kind != KindFail {
		t.Fatalf("shrunk to %v, want a single fail action", min.Actions)
	}
	if min.Topo != s.Topo || min.Seed != s.Seed {
		t.Fatal("Shrink changed scenario identity fields")
	}
}
