package chaos

// Shrink reduces a violating scenario to a locally minimal reproducer with
// the classic ddmin loop over the action list: remove chunks of shrinking
// granularity, keeping any reduction for which failing still reports true.
// The returned scenario cannot lose any single action and still fail.
func Shrink(s *Scenario, failing func(*Scenario) bool) *Scenario {
	cur := cloneWith(s, s.Actions)
	chunk := len(cur.Actions) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		reduced := false
		for start := 0; start+chunk <= len(cur.Actions); {
			trial := make([]Action, 0, len(cur.Actions)-chunk)
			trial = append(trial, cur.Actions[:start]...)
			trial = append(trial, cur.Actions[start+chunk:]...)
			cand := cloneWith(cur, trial)
			if len(cand.Actions) > 0 || len(cur.Actions) == chunk {
				if failing(cand) {
					cur = cand
					reduced = true
					continue // same start now indexes the next chunk
				}
			}
			start += chunk
		}
		if reduced {
			continue // retry at the same granularity
		}
		if chunk == 1 {
			return cur
		}
		chunk /= 2
	}
}

func cloneWith(s *Scenario, actions []Action) *Scenario {
	c := *s
	c.Actions = append([]Action(nil), actions...)
	return &c
}
