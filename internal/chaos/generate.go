package chaos

import (
	"fmt"

	"minroute/internal/graph"
	"minroute/internal/rng"
)

// Generate derives a random but valid scenario from seed: a topology drawn
// from {net1, cairn, random}, a fault schedule of link flaps, cost spikes,
// crash/restart pairs, duplex partitions (compiled to primitive fails), and
// control-plane perturbation. The generator tracks the effective fault
// state so restores and restarts reference faults that actually happened —
// schedules are interesting, not just syntactically valid.
func Generate(seed uint64) *Scenario {
	r := rng.New(seed)
	s := &Scenario{
		Name:     fmt.Sprintf("gen-%d", seed),
		Seed:     seed,
		Duration: 8 + 4*r.Float64(),
		Flows:    3 + r.Intn(3),
	}
	switch pick := r.Intn(10); {
	case pick < 5:
		s.Topo = TopoNET1
	case pick < 7:
		s.Topo = TopoCAIRN
	default:
		s.Topo = TopoRandom
		s.TopoSeed = r.Uint64()
		s.TopoN = 8 + r.Intn(5)
		s.TopoExtra = 3 + r.Intn(4)
	}
	tn, err := s.Network()
	if err != nil {
		panic("chaos: Generate built invalid topology: " + err.Error())
	}
	g := tn.Graph

	type link struct{ a, b graph.NodeID }
	var links []link
	for _, l := range g.Links() {
		if l.From < l.To {
			links = append(links, link{l.From, l.To})
		}
	}
	failed := make(map[[2]graph.NodeID]bool)
	crashed := make(map[graph.NodeID]bool)
	var failedList [][2]graph.NodeID
	var crashedList []graph.NodeID

	count := 2 + r.Intn(7)
	maxAt := s.Duration * 0.7
	for i := 0; i < count; i++ {
		steps := 50 + r.Intn(400)
		at := 0.5 + r.Float64()*maxAt
		switch k := r.Intn(20); {
		case k < 2:
			// Duplex partition: cut a random nonempty proper subset off.
			members := make(map[graph.NodeID]bool)
			size := 1 + r.Intn(g.NumNodes()/2)
			for _, idx := range r.Perm(g.NumNodes())[:size] {
				members[graph.NodeID(idx)] = true
			}
			cut := Partition(g, members, steps, at)
			for _, a := range cut {
				key := linkKey(a.A, a.B)
				if !failed[key] {
					failed[key] = true
					failedList = append(failedList, key)
				}
			}
			s.Actions = append(s.Actions, cut...)
		case k < 7:
			l := links[r.Intn(len(links))]
			key := linkKey(l.a, l.b)
			s.Actions = append(s.Actions, Action{Kind: KindFail, Steps: steps, At: at, A: l.a, B: l.b})
			if !failed[key] {
				failed[key] = true
				failedList = append(failedList, key)
			}
		case k < 11 && len(failedList) > 0:
			key := failedList[r.Intn(len(failedList))]
			s.Actions = append(s.Actions, Action{Kind: KindRestore, Steps: steps, At: at, A: key[0], B: key[1]})
			failed[key] = false
		case k < 15:
			l := links[r.Intn(len(links))]
			s.Actions = append(s.Actions, Action{
				Kind: KindCost, Steps: steps, At: at, A: l.a, B: l.b,
				Factor: 2 + 8*r.Float64(),
			})
		case k < 17:
			v := graph.NodeID(r.Intn(g.NumNodes()))
			if !crashed[v] {
				crashed[v] = true
				crashedList = append(crashedList, v)
			}
			s.Actions = append(s.Actions, Action{Kind: KindCrash, Steps: steps, At: at, Node: v})
		case k < 18 && len(crashedList) > 0:
			v := crashedList[r.Intn(len(crashedList))]
			s.Actions = append(s.Actions, Action{Kind: KindRestart, Steps: steps, At: at, Node: v})
			crashed[v] = false
		default:
			s.Actions = append(s.Actions, Action{
				Kind: KindPerturb, Steps: steps, At: at,
				Loss: 0.1 + 0.3*r.Float64(),
				Dup:  0.2 * r.Float64(),
			})
		}
	}
	return s
}
