package chaos

import (
	"bytes"
	"runtime"
	"testing"

	"minroute/internal/leaktest"
	"minroute/internal/simpool"
	"minroute/internal/telemetry"
)

// TestDESShardedPartitionIndependent is the chaos half of the cross-shard
// determinism matrix: the sharded runner must produce byte-identical traces
// AND byte-identical telemetry event logs at every shard count, under both a
// serialized scheduler (GOMAXPROCS=1, one pool worker) and a wide one. The
// shards=1 run is the golden: it exercises the exact same barrier cadence
// with no partition at all.
func TestDESShardedPartitionIndependent(t *testing.T) {
	leaktest.Check(t)
	s := chaosScenario()

	run := func(shards int) (*Result, []byte) {
		tn, err := s.Network()
		if err != nil {
			t.Fatal(err)
		}
		tel := telemetry.NewCapture(tn.Graph.NumNodes())
		res, err := RunDESShardedWith(s, shards, tel)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Failed() {
			t.Fatalf("shards=%d: violations: %v", shards, res.Log.Violations)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteJSONL(&buf, tel.Trace.Events()); err != nil {
			t.Fatal(err)
		}
		if tel.Trace.Emitted() == 0 {
			t.Fatalf("shards=%d: telemetry capture recorded no events", shards)
		}
		return res, buf.Bytes()
	}

	golden, goldenJSONL := run(1)
	for _, procs := range []int{1, 16} {
		prev := runtime.GOMAXPROCS(procs)
		simpool.SetWorkers(procs)
		for _, shards := range []int{1, 2, 3, 8} {
			res, jsonl := run(shards)
			if res.TraceHash != golden.TraceHash {
				t.Errorf("shards=%d procs=%d: trace hash %s != golden %s\ntrace:\n%s",
					shards, procs, res.TraceHash, golden.TraceHash, res.Trace)
			}
			if res.Events != golden.Events {
				t.Errorf("shards=%d procs=%d: events %d != golden %d", shards, procs, res.Events, golden.Events)
			}
			if !bytes.Equal(jsonl, goldenJSONL) {
				t.Errorf("shards=%d procs=%d: telemetry JSONL diverged from golden (%d bytes vs %d)",
					shards, procs, len(jsonl), len(goldenJSONL))
			}
		}
		runtime.GOMAXPROCS(prev)
		simpool.SetWorkers(0)
	}
}
