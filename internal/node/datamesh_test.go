package node_test

import (
	"math"
	"testing"
	"time"

	"minroute/internal/alloc"
	"minroute/internal/core"
	"minroute/internal/dataplane"
	"minroute/internal/graph"
	"minroute/internal/leaktest"
	"minroute/internal/node"
	"minroute/internal/router"
	"minroute/internal/topo"
	"minroute/internal/traffic"
	"minroute/internal/transport"
)

// dataMesh builds a converged NET1 mesh with the data plane enabled and
// fails the test on any convergence or loop-freedom problem.
func dataMesh(t *testing.T, cfg node.MeshConfig) *node.Mesh {
	t.Helper()
	g := topo.NET1().Graph
	cfg.Clock = node.NewWallClock()
	cfg.CostOf = protoCost
	cfg.Data = true
	m, err := node.NewMesh(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	awaitMesh(t, m)
	if err := m.CheckLoopFree(); err != nil {
		t.Fatalf("converged mesh fails loop-freedom audit: %v", err)
	}
	return m
}

// runTraffic starts cfg against m, lets it run for the given wall
// duration, stops it, and drains in-flight packets before reporting.
func runTraffic(t *testing.T, m *node.Mesh, cfg node.TrafficConfig, d time.Duration) node.TrafficReport {
	t.Helper()
	gen, err := node.NewTrafficGen(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	time.Sleep(d)
	gen.Stop()
	time.Sleep(100 * time.Millisecond) // drain in-flight packets
	return gen.Report()
}

// meshDrops sums looped and TTL-expired packets over every forwarder.
func meshDrops(m *node.Mesh) (looped, ttl float64) {
	for _, n := range m.Nodes {
		s := n.DataPlane().Snapshot()
		looped += s.Looped
		ttl += s.TTLExpired
	}
	return looped, ttl
}

// scaledNET1Flows returns the paper's NET1 commodity list with every
// rate replaced, so tests can choose offered load independent of the
// paper's near-saturation regime.
func scaledNET1Flows(rate float64) []topo.Flow {
	flows := topo.NET1().Flows
	for i := range flows {
		flows[i].Rate = rate
	}
	return flows
}

// TestDataMeshDeliveryNET1 is the basic end-to-end data-plane exercise:
// a converged inmem NET1 mesh carries CBR traffic on all ten paper
// commodities with (effectively) full delivery, no forwarding loops, no
// TTL expiry — and every node's forwarding table agrees with its
// router's successor sets.
func TestDataMeshDeliveryNET1(t *testing.T) {
	leaktest.Check(t)
	m := dataMesh(t, node.MeshConfig{
		Fabric:         node.FabricInmem,
		HeartbeatEvery: 0.2,
		DeadAfter:      60,
	})

	// The published table must mirror the routing state: same
	// destinations, same successor sets, in the same (ascending) order.
	for i, n := range m.Nodes {
		tbl := n.DataPlane().Table()
		byDst := map[graph.NodeID][]graph.NodeID{}
		for _, ds := range n.State().Dests {
			if len(ds.Successors) > 0 {
				byDst[ds.Dst] = ds.Successors
			}
		}
		dests := tbl.Dests()
		if len(dests) != len(byDst) {
			t.Fatalf("node %d: table has %d destinations, routing state %d", i, len(dests), len(byDst))
		}
		for _, dst := range dests {
			hops, weights, _ := tbl.Route(dst)
			succ := byDst[dst]
			if len(hops) != len(succ) {
				t.Fatalf("node %d dst %d: table hops %v vs successors %v", i, dst, hops, succ)
			}
			sum := 0.0
			for k := range hops {
				if hops[k] != succ[k] {
					t.Fatalf("node %d dst %d: table hops %v vs successors %v", i, dst, hops, succ)
				}
				sum += weights[k]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("node %d dst %d: weights sum to %v", i, dst, sum)
			}
		}
	}

	rep := runTraffic(t, m, node.TrafficConfig{
		Model: node.TrafficCBR,
		Flows: scaledNET1Flows(1e6),
		Seed:  3,
	}, 500*time.Millisecond)

	if rep.Offered == 0 {
		t.Fatal("traffic generator offered nothing")
	}
	if rep.DelivPct < 99 {
		t.Fatalf("delivery %.2f%% (%d/%d), want >= 99%%", rep.DelivPct, rep.Delivered, rep.Offered)
	}
	for _, cr := range rep.Commodities {
		if cr.Deliv > 0 && cr.MeanDelayMs <= 0 {
			t.Fatalf("commodity %s: delivered %d packets with mean delay %v ms", cr.Name, cr.Deliv, cr.MeanDelayMs)
		}
	}
	if looped, ttl := meshDrops(m); looped != 0 || ttl != 0 {
		t.Fatalf("forwarding drops on a converged mesh: looped=%v ttl_expired=%v", looped, ttl)
	}
}

// TestDataMeshUDPControlLoss mirrors the CI gate in-process: a UDP mesh
// whose control datagrams run a 10% loss/dup gauntlet (which the ARQ
// absorbs) while the data plane runs clean — delivery must still be
// >= 99% with zero loops.
func TestDataMeshUDPControlLoss(t *testing.T) {
	leaktest.Check(t)
	if testing.Short() {
		t.Skip("lossy UDP mesh convergence is not a -short test")
	}
	m := dataMesh(t, node.MeshConfig{
		Fabric:         node.FabricUDP,
		Fault:          transport.Fault{Seed: 7, LossProb: 0.1, DupProb: 0.1},
		ARQ:            transport.ARQConfig{RTO: 0.01, MaxRTO: 0.2},
		HeartbeatEvery: 0.2,
		DeadAfter:      60,
	})
	rep := runTraffic(t, m, node.TrafficConfig{
		Model: node.TrafficCBR,
		Flows: scaledNET1Flows(1e6),
		Seed:  5,
	}, 500*time.Millisecond)
	if rep.DelivPct < 99 {
		t.Fatalf("delivery %.2f%% (%d/%d), want >= 99%%", rep.DelivPct, rep.Delivered, rep.Offered)
	}
	if looped, ttl := meshDrops(m); looped != 0 || ttl != 0 {
		t.Fatalf("forwarding drops: looped=%v ttl_expired=%v", looped, ttl)
	}
}

// TestDataMeshDataFaults pins down that DataFault hits the data plane
// and only the data plane: with 10% per-datagram loss under the
// forwarders, a multi-hop commodity mix must lose a visible fraction of
// its packets (unlike control traffic, nothing retransmits data), while
// the control plane still converges loop-free.
func TestDataMeshDataFaults(t *testing.T) {
	leaktest.Check(t)
	m := dataMesh(t, node.MeshConfig{
		Fabric:         node.FabricInmem,
		DataFault:      transport.Fault{Seed: 9, LossProb: 0.1},
		HeartbeatEvery: 0.2,
		DeadAfter:      60,
	})
	rep := runTraffic(t, m, node.TrafficConfig{
		Model: node.TrafficCBR,
		Flows: scaledNET1Flows(1e6),
		Seed:  7,
	}, 500*time.Millisecond)
	// Paths average 2-4 hops, so per-packet survival is roughly
	// 0.9^hops: well below 99, well above 50.
	if rep.DelivPct >= 99 || rep.DelivPct < 50 {
		t.Fatalf("delivery %.2f%% under 10%% data loss, want a visible loss band [50, 99)", rep.DelivPct)
	}
	if looped, ttl := meshDrops(m); looped != 0 || ttl != 0 {
		t.Fatalf("forwarding drops: looped=%v ttl_expired=%v", looped, ttl)
	}
}

// TestTrafficModelsOffer smoke-tests every arrival process end to end on
// a two-node mesh: each model must offer and deliver packets.
func TestTrafficModelsOffer(t *testing.T) {
	leaktest.Check(t)
	g := graph.New()
	g.AddNode("a")
	g.AddNode("b")
	if err := g.AddDuplex(0, 1, 10*topo.Mb, 0.5e-3); err != nil {
		t.Fatal(err)
	}
	m, err := node.NewMesh(g, node.MeshConfig{
		Fabric: node.FabricInmem,
		Clock:  node.NewWallClock(),
		CostOf: protoCost,
		Data:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	awaitMesh(t, m)
	flow := []topo.Flow{{Name: "a->b", Src: 0, Dst: 1, Rate: 2e6}}
	for _, model := range []node.TrafficModel{node.TrafficCBR, node.TrafficPoisson, node.TrafficOnOff, node.TrafficAdversary} {
		t.Run(string(model), func(t *testing.T) {
			rep := runTraffic(t, m, node.TrafficConfig{
				Model:    model,
				Flows:    flow,
				Subflows: 8,
				Seed:     11,
			}, 300*time.Millisecond)
			if rep.Offered == 0 {
				t.Fatalf("%s offered no packets", model)
			}
			if rep.Delivered == 0 {
				t.Fatalf("%s delivered no packets (offered %d)", model, rep.Offered)
			}
		})
	}
}

// livePhi extracts the phi matrix the mesh's forwarders are actually
// using, in the DES's InstallStatic orientation: phi[j][i] is node i's
// split toward destination j.
func livePhi(m *node.Mesh, nn int) [][]alloc.Params {
	phi := make([][]alloc.Params, nn)
	for j := range phi {
		phi[j] = make([]alloc.Params, nn)
	}
	for i, n := range m.Nodes {
		tbl := n.DataPlane().Table()
		for _, dst := range tbl.Dests() {
			hops, weights, ok := tbl.Route(dst)
			if !ok {
				continue
			}
			p := make(alloc.Params, len(hops))
			for k, h := range hops {
				p[h] = weights[k]
			}
			phi[dst][i] = p
		}
	}
	return phi
}

// TestDataMeshCrossValidatesDES is the live/simulated agreement gate at
// the heart of the data plane: converge a live NET1 mesh, lift its
// phi tables verbatim into the packet simulator's static-routing mode,
// drive matched CBR workloads through both, and require
//
//   - per-commodity live mean delays within 10% of the DES measurement,
//   - observed per-hop splits within 2% of the phi weights wherever a
//     node forwarded a meaningful sample,
//   - zero forwarding loops and zero TTL expiries.
//
// At the light utilization used here the DES's queueing term is
// negligible, so both worlds measure the same load-independent quantity
// — the phi-weighted transmission-plus-propagation delay along the
// multipath route set — through completely different machinery: real
// sockets, goroutines, and sticky flow hashing on one side; a
// discrete-event calendar and per-packet weighted draws on the other.
// The offered rates differ (live picks rates for wall-clock sampling
// density, the DES for low queueing); the measured delay depends on
// neither at this load.
func TestDataMeshCrossValidatesDES(t *testing.T) {
	leaktest.Check(t)
	if testing.Short() {
		t.Skip("cross-validation runs a live mesh plus a DES; not a -short test")
	}
	if raceEnabled {
		t.Skip("delay gate includes real wall transit; race-detector overhead inflates it past the 10% envelope")
	}
	const pktBits = 16384
	m := dataMesh(t, node.MeshConfig{
		Fabric:         node.FabricInmem,
		HeartbeatEvery: 0.2,
		DeadAfter:      60,
	})
	nn := len(m.Nodes)
	phi := livePhi(m, nn)

	// DES side: same topology, same phi, frozen (ModeStatic, no
	// adjustment cycles), CBR at ~4% utilization.
	desNet := topo.NET1()
	for i := range desNet.Flows {
		desNet.Flows[i].Rate = 400e3
	}
	opt := core.DefaultOptions()
	opt.Router.Mode = router.ModeStatic
	opt.Router.Tl, opt.Router.Ts = 0, 0
	opt.Seed = 11
	opt.Warmup = 2
	opt.Duration = 20
	opt.Source = func(f topo.Flow) traffic.Source {
		return traffic.CBR{RateBits: f.Rate, PacketBits: pktBits}
	}
	sim := core.Build(desNet, opt)
	sim.InstallStatic(phi)
	des := sim.Run()

	// Live side: many sticky subflows per commodity so the realized
	// path mix converges on the bucket shares.
	const subflows = 512
	const gap = 0.3 // seconds between packets of one subflow
	rep := runTraffic(t, m, node.TrafficConfig{
		Model:      node.TrafficCBR,
		Flows:      scaledNET1Flows(subflows * pktBits / gap),
		Subflows:   subflows,
		PacketBits: pktBits,
		Seed:       13,
	}, 650*time.Millisecond)

	if rep.DelivPct < 99 {
		t.Fatalf("delivery %.2f%% (%d/%d), want >= 99%%", rep.DelivPct, rep.Delivered, rep.Offered)
	}
	if looped, ttl := meshDrops(m); looped != 0 || ttl != 0 {
		t.Fatalf("forwarding drops on a converged mesh: looped=%v ttl_expired=%v", looped, ttl)
	}

	for x, cr := range rep.Commodities {
		want := des.MeanDelayMs[x]
		got := cr.MeanDelayMs
		if want <= 0 || got <= 0 {
			t.Fatalf("commodity %s: degenerate delays live=%.4f ms des=%.4f ms", cr.Name, got, want)
		}
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("commodity %s: live %.4f ms vs DES %.4f ms (rel %.3f > 0.10)", cr.Name, got, want, rel)
		}
	}

	// Split gate: at every multipath (node, destination) pair, drive a
	// dense synthetic flow population through the live forwarder and
	// require the realized next-hop fractions within 2% of phi. A burst
	// of 8192 distinct flow IDs keeps the hash-draw error well inside
	// the bound (sigma ~0.55% at a 50/50 split), where the traffic run's
	// 512 sticky subflows per commodity could not honestly meet it.
	// Deltas of the split counters isolate each burst; the origin
	// counts its own sends synchronously, and the short drain keeps one
	// burst's transit packets out of the next pair's window.
	const burst = 8192
	checked := 0
	for i, n := range m.Nodes {
		fwd := n.DataPlane()
		tbl := fwd.Table()
		for _, dst := range tbl.Dests() {
			hops, _, _ := tbl.Route(dst)
			if len(hops) < 2 {
				continue
			}
			before := splitCounts(fwd, dst)
			for k := 0; k < burst; k++ {
				id := uint64(i)<<48 | uint64(dst)<<32 | uint64(k)
				if err := fwd.Send(dst, id, 1024); err != nil {
					t.Fatal(err)
				}
			}
			time.Sleep(10 * time.Millisecond) // drain relays before the next window
			after := splitCounts(fwd, dst)
			var total int64
			for _, h := range hops {
				total += after[h].packets - before[h].packets
			}
			if total < burst {
				t.Fatalf("node %d dst %d: burst counted %d of %d sends", i, dst, total, burst)
			}
			for _, h := range hops {
				checked++
				got := float64(after[h].packets-before[h].packets) / float64(total)
				want := after[h].want
				if diff := math.Abs(got - want); diff > 0.02 {
					t.Errorf("node %d dst %d via %d: realized split %.4f vs phi %.4f (|diff| %.4f > 0.02)",
						i, dst, h, got, want, diff)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("split gate checked nothing: no multipath (node, dst) pair in the converged tables")
	}
	if looped, ttl := meshDrops(m); looped != 0 || ttl != 0 {
		t.Fatalf("forwarding drops during split bursts: looped=%v ttl_expired=%v", looped, ttl)
	}
}

// splitCount is one next-hop's slice of a forwarder's per-destination
// split counters.
type splitCount struct {
	packets int64
	want    float64
}

// splitCounts reads the forwarder's split counters for one destination.
func splitCounts(f *dataplane.Forwarder, dst graph.NodeID) map[graph.NodeID]splitCount {
	out := map[graph.NodeID]splitCount{}
	for _, s := range f.Snapshot().Splits {
		if s.Dst == dst {
			out[s.Hop] = splitCount{packets: s.Packets, want: s.Want}
		}
	}
	return out
}
