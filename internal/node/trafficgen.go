package node

import (
	"fmt"
	"sync"
	"sync/atomic"

	"minroute/internal/graph"
	"minroute/internal/rng"
	"minroute/internal/topo"
	"minroute/internal/transport"
)

// TrafficModel selects the arrival process a TrafficGen replays against
// the live mesh. The first three mirror internal/traffic's simulator
// sources (same formulas, same rng idiom) so a live run and a DES run of
// one scenario offer statistically matched load; Adversary is live-only.
type TrafficModel string

const (
	// TrafficCBR emits fixed-size packets at fixed intervals with a
	// random initial phase per subflow (traffic.CBR).
	TrafficCBR TrafficModel = "cbr"
	// TrafficPoisson draws exponential gaps and exponential sizes
	// (traffic.Poisson).
	TrafficPoisson TrafficModel = "poisson"
	// TrafficOnOff alternates exponential ON bursts at PeakFactor times
	// the average rate with OFF periods sized for the duty cycle
	// (traffic.OnOff).
	TrafficOnOff TrafficModel = "onoff"
	// TrafficAdversary is a worst-case pattern for a weighted-multipath
	// plane: every subflow of every commodity bursts in lockstep — same
	// phase, no jitter — at PeakFactor times the average rate, so entire
	// burst fronts land on the same buckets at the same instant.
	TrafficAdversary TrafficModel = "adversary"
)

// TrafficConfig parameterizes a live traffic run.
type TrafficConfig struct {
	// Model is the arrival process (default TrafficCBR).
	Model TrafficModel
	// Flows are the offered commodities (topo's r_ij demand shape).
	Flows []topo.Flow
	// Subflows splits each commodity into this many sticky flows (default
	// 16): each subflow hashes to one path and keeps it, so the realized
	// per-hop split converges on the bucket shares — and hence on phi —
	// as the subflow population grows.
	Subflows int
	// PacketBits is the fixed (cbr/adversary) or mean (poisson/onoff)
	// packet size in bits (default 8192).
	PacketBits float64
	// PeakFactor and MeanOn tune the onoff and adversary bursts
	// (defaults 2 and 0.5, as in traffic.OnOff).
	PeakFactor float64
	MeanOn     float64
	// Seed feeds the per-subflow rng streams.
	Seed uint64
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Model == "" {
		c.Model = TrafficCBR
	}
	if c.Subflows <= 0 {
		c.Subflows = 16
	}
	if c.PacketBits <= 0 {
		c.PacketBits = 8192
	}
	if c.PeakFactor <= 1 {
		c.PeakFactor = 2
	}
	if c.MeanOn <= 0 {
		c.MeanOn = 0.5
	}
	return c
}

// FlowID composes the data-plane flow ID of one commodity subflow:
// commodity index in the high word, subflow in the low. The encoding is
// public so cross-validation can map sink flows back to commodities.
func FlowID(commodity, sub int) uint64 {
	return uint64(commodity)<<32 | uint64(uint32(sub))
}

// TrafficGen replays a traffic scenario against a live mesh's data
// plane: per-subflow arrival timers on the mesh clock, packets entering
// at each commodity's source forwarder. Start arms the timers; Stop
// quiesces them; Report folds the sinks' flow stats back per commodity.
type TrafficGen struct {
	mesh *Mesh
	cfg  TrafficConfig
	clk  transport.Clock

	// offered counts originated packets and bits per commodity; written
	// from timer callbacks, read by Report.
	offered     []int64
	offeredBits []int64

	mu      sync.Mutex
	timers  map[uint64]transport.Timer // live per-subflow timers by FlowID
	stopped bool
}

// NewTrafficGen builds a generator over m (whose data plane must be
// enabled). It does not start sending.
func NewTrafficGen(m *Mesh, cfg TrafficConfig) (*TrafficGen, error) {
	cfg = cfg.withDefaults()
	for _, f := range cfg.Flows {
		if int(f.Src) >= len(m.Nodes) || int(f.Dst) >= len(m.Nodes) {
			return nil, fmt.Errorf("node: flow %s outside mesh", f.Name)
		}
		if m.Nodes[f.Src].DataPlane() == nil {
			return nil, fmt.Errorf("node: traffic needs MeshConfig.Data (node %d has no forwarder)", f.Src)
		}
	}
	return &TrafficGen{
		mesh:        m,
		cfg:         cfg,
		clk:         m.Nodes[0].clk,
		offered:     make([]int64, len(cfg.Flows)),
		offeredBits: make([]int64, len(cfg.Flows)),
		timers:      make(map[uint64]transport.Timer),
	}, nil
}

// Start arms every subflow's first arrival.
func (g *TrafficGen) Start() {
	for ci, f := range g.cfg.Flows {
		perSub := f.Rate / float64(g.cfg.Subflows)
		for sub := 0; sub < g.cfg.Subflows; sub++ {
			id := FlowID(ci, sub)
			r := rng.New(g.cfg.Seed).Split(id)
			switch g.cfg.Model {
			case TrafficCBR:
				g.startCBR(ci, f, id, perSub, r)
			case TrafficPoisson:
				g.startPoisson(ci, f, id, perSub, r)
			case TrafficOnOff:
				g.startOnOff(ci, f, id, perSub, r)
			case TrafficAdversary:
				g.startAdversary(ci, f, id, perSub)
			}
		}
	}
}

// arm schedules fn after d seconds under the subflow's timer slot,
// unless the generator has stopped. Each callback re-arms through here,
// so Stop wins any race with an in-flight firing: the firing runs, but
// its re-arm is refused.
func (g *TrafficGen) arm(id uint64, d float64, fn func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stopped {
		return
	}
	g.timers[id] = g.clk.AfterFunc(d, fn)
}

// send originates one packet on commodity ci's subflow.
func (g *TrafficGen) send(ci int, f topo.Flow, id uint64, bits float64) {
	if bits < 1 {
		bits = 1
	}
	atomic.AddInt64(&g.offered[ci], 1)
	atomic.AddInt64(&g.offeredBits[ci], int64(bits))
	// Best effort by design: a noroute during convergence is the drop
	// counter's business, not the generator's.
	_ = g.mesh.Nodes[f.Src].DataPlane().Send(f.Dst, id, uint32(bits))
}

// startCBR mirrors traffic.CBR: fixed gap, random initial phase.
func (g *TrafficGen) startCBR(ci int, f topo.Flow, id uint64, rate float64, r *rng.Source) {
	if rate <= 0 {
		return
	}
	gap := g.cfg.PacketBits / rate
	var arrive func()
	arrive = func() {
		g.send(ci, f, id, g.cfg.PacketBits)
		g.arm(id, gap, arrive)
	}
	g.arm(id, r.Float64()*gap, arrive)
}

// startPoisson mirrors traffic.Poisson: exponential gaps and sizes.
func (g *TrafficGen) startPoisson(ci int, f topo.Flow, id uint64, rate float64, r *rng.Source) {
	if rate <= 0 {
		return
	}
	meanGap := g.cfg.PacketBits / rate
	var arrive func()
	arrive = func() {
		g.send(ci, f, id, r.Exp(g.cfg.PacketBits))
		g.arm(id, r.Exp(meanGap), arrive)
	}
	g.arm(id, r.Exp(meanGap), arrive)
}

// startOnOff mirrors traffic.OnOff: exponential ON bursts at peak rate,
// OFF periods sized so the long-run average matches the commodity rate.
func (g *TrafficGen) startOnOff(ci int, f topo.Flow, id uint64, rate float64, r *rng.Source) {
	if rate <= 0 {
		return
	}
	peak := g.cfg.PeakFactor
	meanOn := g.cfg.MeanOn
	meanOff := meanOn * (peak - 1)
	peakGap := g.cfg.PacketBits / (rate * peak)

	var onPhase func(remaining float64)
	var offPhase func()
	onPhase = func(remaining float64) {
		gap := r.Exp(peakGap)
		if gap >= remaining {
			g.arm(id, remaining, offPhase)
			return
		}
		g.arm(id, gap, func() {
			g.send(ci, f, id, r.Exp(g.cfg.PacketBits))
			onPhase(remaining - gap)
		})
	}
	offPhase = func() {
		g.arm(id, r.Exp(meanOff), func() { onPhase(r.Exp(meanOn)) })
	}
	if r.Float64() < 1/peak {
		onPhase(r.Exp(meanOn))
	} else {
		offPhase()
	}
}

// startAdversary is the lockstep burst: deterministic CBR at peak rate
// for MeanOn seconds, silent for MeanOn*(PeakFactor-1), no phase jitter
// anywhere — every subflow everywhere fires the same schedule.
func (g *TrafficGen) startAdversary(ci int, f topo.Flow, id uint64, rate float64) {
	if rate <= 0 {
		return
	}
	peak := g.cfg.PeakFactor
	onLen := g.cfg.MeanOn
	offLen := onLen * (peak - 1)
	gap := g.cfg.PacketBits / (rate * peak)

	var onPhase func(remaining float64)
	var offPhase func()
	onPhase = func(remaining float64) {
		if gap >= remaining {
			g.arm(id, remaining, offPhase)
			return
		}
		g.arm(id, gap, func() {
			g.send(ci, f, id, g.cfg.PacketBits)
			onPhase(remaining - gap)
		})
	}
	offPhase = func() {
		g.arm(id, offLen, func() { onPhase(onLen) })
	}
	onPhase(onLen)
}

// Stop quiesces the generator: no timer fires or re-arms after it
// returns the lock. Idempotent.
func (g *TrafficGen) Stop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stopped = true
	//lint:maporder-ok independent timer stops; order is immaterial
	for id, tm := range g.timers {
		tm.Stop()
		delete(g.timers, id)
	}
}

// CommodityReport is one commodity's end-to-end accounting: offered at
// the source against delivered (with delays) at the sink.
type CommodityReport struct {
	Name     string       `json:"name"`
	Src      graph.NodeID `json:"src"`
	Dst      graph.NodeID `json:"dst"`
	Offered  int64        `json:"offered_packets"`
	Bits     int64        `json:"offered_bits"`
	Deliv    int64        `json:"delivered_packets"`
	DelivPct float64      `json:"delivered_pct"`
	// MeanDelayMs and MaxDelayMs aggregate the commodity's subflows,
	// packet-weighted.
	MeanDelayMs float64 `json:"mean_delay_ms"`
	MaxDelayMs  float64 `json:"max_delay_ms"`
}

// TrafficReport aggregates a run.
type TrafficReport struct {
	Model       TrafficModel      `json:"model"`
	Subflows    int               `json:"subflows"`
	Commodities []CommodityReport `json:"commodities"`
	Offered     int64             `json:"offered_packets"`
	Delivered   int64             `json:"delivered_packets"`
	DelivPct    float64           `json:"delivered_pct"`
}

// Report folds each destination forwarder's sink-side flow stats back
// onto the offered commodities. Call after traffic has drained (packets
// in flight when Report runs count as undelivered).
func (g *TrafficGen) Report() TrafficReport {
	rep := TrafficReport{Model: g.cfg.Model, Subflows: g.cfg.Subflows}
	for ci, f := range g.cfg.Flows {
		cr := CommodityReport{
			Name: f.Name, Src: f.Src, Dst: f.Dst,
			Offered: atomic.LoadInt64(&g.offered[ci]),
			Bits:    atomic.LoadInt64(&g.offeredBits[ci]),
		}
		var delaySum float64
		for _, fs := range g.mesh.Nodes[f.Dst].DataPlane().Flows() {
			if fs.FlowID>>32 != uint64(ci) || fs.Src != f.Src {
				continue
			}
			cr.Deliv += fs.Packets
			delaySum += fs.DelaySum
			if ms := fs.MaxDelay * 1e3; ms > cr.MaxDelayMs {
				cr.MaxDelayMs = ms
			}
		}
		if cr.Deliv > 0 {
			cr.MeanDelayMs = delaySum / float64(cr.Deliv) * 1e3
		}
		if cr.Offered > 0 {
			cr.DelivPct = 100 * float64(cr.Deliv) / float64(cr.Offered)
		}
		rep.Offered += cr.Offered
		rep.Delivered += cr.Deliv
		rep.Commodities = append(rep.Commodities, cr)
	}
	if rep.Offered > 0 {
		rep.DelivPct = 100 * float64(rep.Delivered) / float64(rep.Offered)
	}
	return rep
}
