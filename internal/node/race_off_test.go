//go:build !race

package node_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
