package node_test

import (
	"testing"
	"time"

	"minroute/internal/graph"
	"minroute/internal/leaktest"
	"minroute/internal/node"
	"minroute/internal/telemetry"
	"minroute/internal/transport"
	"minroute/internal/wire"
)

// waitUntil polls cond with short real sleeps so asynchronous session
// goroutines can settle; it fails the test on timeout.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fixedCost(c float64) func(graph.NodeID) (float64, bool) {
	return func(graph.NodeID) (float64, bool) { return c, true }
}

// TestHandshakeBringsLinkUp: two live nodes over an in-memory pipe
// exchange HELLOs, bring the link up, and converge to each other's
// distance.
func TestHandshakeBringsLinkUp(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	a, err := node.New(node.Config{ID: 0, Nodes: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	b, err := node.New(node.Config{ID: 1, Nodes: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	ca, cb := transport.Pipe()
	a.AddPeer(ca, fixedCost(2.5))
	b.AddPeer(cb, fixedCost(2.5))

	waitUntil(t, "both sessions up", func() bool {
		return a.PeerCount() == 1 && b.PeerCount() == 1
	})
	waitUntil(t, "both routers passive", func() bool {
		return a.Passive() && b.Passive()
	})
	if got := a.Peers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("a.Peers() = %v, want [1]", got)
	}
	wantA := "router 0\n dst 0 D=0 S=[]\n dst 1 D=2.5 S=[1]\n"
	if s := a.Summary(); s != wantA {
		t.Fatalf("a summary:\n%s\nwant:\n%s", s, wantA)
	}
	if h := node.HashState(a.Summary()); h != node.HashState(wantA) {
		t.Fatalf("hash mismatch")
	}
}

// TestHeartbeatKeepsSessionAlive: with traffic quiet, heartbeats alone
// must keep resetting the dead timer across many DeadAfter periods.
func TestHeartbeatKeepsSessionAlive(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	cfg := node.Config{Nodes: 2, Clock: clk, HeartbeatEvery: 0.25, DeadAfter: 1.0}
	cfg.ID = 0
	a, err := node.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ID = 1
	b, err := node.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	ca, cb := transport.Pipe()
	a.AddPeer(ca, fixedCost(1))
	b.AddPeer(cb, fixedCost(1))
	waitUntil(t, "sessions up", func() bool {
		return a.PeerCount() == 1 && b.PeerCount() == 1
	})

	// Five virtual seconds — five DeadAfter periods — in heartbeat steps.
	for i := 0; i < 20; i++ {
		clk.Advance(0.25)
		// Let the heartbeat frames propagate and reset the dead timers
		// before virtual time moves again.
		time.Sleep(2 * time.Millisecond)
	}
	if a.PeerCount() != 1 || b.PeerCount() != 1 {
		t.Fatalf("sessions died under heartbeats: a=%d b=%d peers", a.PeerCount(), b.PeerCount())
	}
}

// TestDeadTimerDropsSilentPeer: a peer that completes the handshake and
// then goes silent is declared down after DeadAfter and removed from the
// routing table, with peer_up/peer_down telemetry bracketing the session.
func TestDeadTimerDropsSilentPeer(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	tr := node.NewTrace(telemetry.NewTracer(2, 0))
	a, err := node.New(node.Config{ID: 0, Nodes: 2, Clock: clk, DeadAfter: 1.0, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ca, cb := transport.Pipe()
	a.AddPeer(ca, fixedCost(3))
	// The test plays the remote peer by hand: handshake, then silence.
	if err := cb.Send(wire.NewHello(1)); err != nil {
		t.Fatal(err)
	}
	if f, err := cb.Recv(); err != nil || f.Type != wire.TypeHello {
		t.Fatalf("expected node's HELLO, got %v, %v", f, err)
	}
	waitUntil(t, "session up", func() bool { return a.PeerCount() == 1 })

	clk.Advance(1.5)
	waitUntil(t, "silent peer dropped", func() bool { return a.PeerCount() == 0 })
	waitUntil(t, "router forgets the link", func() bool {
		return a.Passive() && a.Summary() == "router 0\n dst 0 D=0 S=[]\n dst 1 D=+Inf S=[]\n"
	})

	var up, down int
	var downLabel string
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case telemetry.KindPeerUp:
			up++
		case telemetry.KindPeerDown:
			down++
			downLabel = ev.Label
		}
	}
	if up != 1 || down != 1 || downLabel != "timeout" {
		t.Fatalf("telemetry: up=%d down=%d label=%q, want 1/1/timeout", up, down, downLabel)
	}
}

// TestByeDropsPeerImmediately: a BYE tears the session down without
// waiting out the dead timer.
func TestByeDropsPeerImmediately(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	a, err := node.New(node.Config{ID: 0, Nodes: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ca, cb := transport.Pipe()
	a.AddPeer(ca, fixedCost(3))
	if err := cb.Send(wire.NewHello(1)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "session up", func() bool { return a.PeerCount() == 1 })
	if err := cb.Send(wire.NewBye()); err != nil {
		t.Fatal(err)
	}
	// No clock advance: the drop must come from the BYE alone.
	waitUntil(t, "peer dropped on BYE", func() bool { return a.PeerCount() == 0 })
}

// TestCostOfRejectsUnknownPeer: a session whose peer the cost callback
// disowns never comes up.
func TestCostOfRejectsUnknownPeer(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	a, err := node.New(node.Config{ID: 0, Nodes: 3, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ca, cb := transport.Pipe()
	a.AddPeer(ca, func(p graph.NodeID) (float64, bool) { return 0, false })
	if err := cb.Send(wire.NewHello(1)); err != nil {
		t.Fatal(err)
	}
	// The node must close the connection instead of registering the peer.
	waitUntil(t, "connection rejected", func() bool {
		_, err := cb.Recv()
		return err != nil
	})
	if a.PeerCount() != 0 {
		t.Fatalf("rejected peer registered anyway")
	}
}

// TestChangeCost: a management-plane cost change re-floods and settles on
// the new distance.
func TestChangeCost(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	a, _ := node.New(node.Config{ID: 0, Nodes: 2, Clock: clk})
	b, _ := node.New(node.Config{ID: 1, Nodes: 2, Clock: clk})
	defer a.Close()
	defer b.Close()
	ca, cb := transport.Pipe()
	a.AddPeer(ca, fixedCost(2))
	b.AddPeer(cb, fixedCost(2))
	waitUntil(t, "converged", func() bool {
		return a.PeerCount() == 1 && b.PeerCount() == 1 && a.Passive() && b.Passive()
	})

	if err := a.ChangeCost(1, 5); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "new cost propagates", func() bool {
		return a.Passive() && a.Summary() == "router 0\n dst 0 D=0 S=[]\n dst 1 D=5 S=[1]\n"
	})
	if err := a.ChangeCost(0, 1); err == nil {
		t.Fatalf("ChangeCost to non-peer succeeded")
	}
}

// TestCloseReapsPendingHandshake: a session whose remote never answers the
// HELLO sits blocked in Recv. Close must reach that conn and reap the
// goroutine — before the handshake-reap fix, the session (and its conn)
// leaked past Close. leaktest arms the actual leak check.
func TestCloseReapsPendingHandshake(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	n, err := node.New(node.Config{ID: 0, Nodes: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}

	ca, cb := transport.Pipe()
	// The far side swallows our HELLO and goes silent, so the session
	// parks in Recv waiting for a reply that will never come.
	helloSeen := make(chan error, 1)
	go func() {
		_, err := cb.Recv()
		helloSeen <- err
	}()
	n.AddPeer(ca, fixedCost(1))
	if err := <-helloSeen; err != nil {
		t.Fatalf("far side failed to read our HELLO: %v", err)
	}

	n.Close()
	if n.PeerCount() != 0 {
		t.Fatalf("PeerCount() = %d after Close, want 0", n.PeerCount())
	}
	// Deliberately no cb.Close(): the session's exit must come from our
	// Close reaping ca, not from the far side hanging up.
}

// TestAddPeerAfterCloseClosesConn: a conn handed to a closed node must be
// released immediately, not parked in a handshake goroutine forever.
func TestAddPeerAfterCloseClosesConn(t *testing.T) {
	leaktest.Check(t)
	clk := node.NewVirtualClock()
	n, err := node.New(node.Config{ID: 0, Nodes: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	n.Close()

	ca, cb := transport.Pipe()
	n.AddPeer(ca, fixedCost(1))
	waitUntil(t, "conn closed by AddPeer on a closed node", func() bool {
		_, err := cb.Recv()
		return err != nil
	})
}
