package node

import (
	"sync"

	"minroute/internal/transport"
)

// VirtualClock is a manually advanced transport.Clock for deterministic
// runtime tests: nothing fires until Advance, and due timers fire in
// virtual-time order. It is the live runtime's stand-in for the
// simulator's event clock — heartbeat and dead-timer behavior can be
// tested to the exact second without real sleeping.
type VirtualClock struct {
	mu     sync.Mutex
	now    float64
	timers []*virtualTimer
}

type virtualTimer struct {
	c       *VirtualClock
	at      float64
	fn      func()
	fired   bool
	stopped bool
}

// NewVirtualClock returns a clock at time zero with no timers.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual time in seconds.
func (c *VirtualClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules fn at now+d; it runs inside a future Advance call.
func (c *VirtualClock) AfterFunc(d float64, fn func()) transport.Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &virtualTimer{c: c, at: c.now + d, fn: fn}
	c.timers = append(c.timers, t)
	return t
}

// Stop implements transport.Timer.
func (t *virtualTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Advance moves virtual time forward by d seconds, firing due timers in
// time order. Callbacks run with the clock unlocked, so they may arm new
// timers; those fire within the same Advance if they fall inside the
// window.
func (c *VirtualClock) Advance(d float64) {
	c.mu.Lock()
	target := c.now + d
	for {
		var next *virtualTimer
		for _, t := range c.timers {
			if t.stopped || t.fired || t.at > target {
				continue
			}
			if next == nil || t.at < next.at {
				next = t
			}
		}
		if next == nil {
			break
		}
		if next.at > c.now {
			c.now = next.at
		}
		next.fired = true
		fn := next.fn
		c.mu.Unlock()
		fn()
		c.mu.Lock()
	}
	c.now = target
	live := c.timers[:0]
	for _, t := range c.timers {
		if !t.fired && !t.stopped {
			live = append(live, t)
		}
	}
	c.timers = live
	c.mu.Unlock()
}
