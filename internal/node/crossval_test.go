package node_test

import (
	"minroute/internal/leaktest"
	"testing"

	"minroute/internal/graph"
	"minroute/internal/node"
	"minroute/internal/telemetry"
	"minroute/internal/topo"
	"minroute/internal/transport"
)

// crossValidate is the live-vs-simulator experiment at the heart of this
// package: run the topology as real peers over UDP sockets with seeded
// loss, duplication, and reordering injected beneath the ARQ, converge,
// apply a cost-change sequence, converge again — and require the exact
// PASSIVE-state distance tables and successor sets protonet computes over
// its emulated reliable queues. MPDA's converged state is
// schedule-independent (at quiescence FD_j = D_j everywhere), so the
// wildly different delivery schedules must not show in the final hash.
func crossValidate(t *testing.T, g *graph.Graph, changes []costChange) {
	tr := node.NewTrace(telemetry.NewTracer(g.NumNodes(), 0))
	m, err := node.NewMesh(g, node.MeshConfig{
		Fabric: node.FabricUDP,
		Clock:  node.NewWallClock(),
		CostOf: protoCost,
		Fault:  transport.Fault{Seed: 7, LossProb: 0.2, DupProb: 0.2, ReorderProb: 0.2},
		ARQ:    transport.ARQConfig{RTO: 0.01, MaxRTO: 0.2},
		// The dead timer must ride out fault-induced silence: a link that
		// flaps during convergence would change the topology under test.
		HeartbeatEvery: 0.2,
		DeadAfter:      60,
		Trace:          tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	awaitMesh(t, m)
	compareStates(t, m, protoReference(t, g, nil))

	for _, c := range changes {
		if err := m.Nodes[c.a].ChangeCost(c.b, c.cost); err != nil {
			t.Fatal(err)
		}
	}
	awaitMesh(t, m)
	compareStates(t, m, protoReference(t, g, changes))

	var ups int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case telemetry.KindPeerUp:
			ups++
		case telemetry.KindPeerDown:
			t.Errorf("router %d lost peer %d (%s) mid-run: topology changed under test", ev.Router, ev.Peer, ev.Label)
		}
	}
	if want := 2 * len(duplexPairs(g)); ups != want {
		t.Errorf("peer_up events: got %d, want %d", ups, want)
	}
}

// duplexPairs lists each duplex link once (From < To).
func duplexPairs(g *graph.Graph) [][2]graph.NodeID {
	var out [][2]graph.NodeID
	for _, l := range g.Links() {
		if l.From < l.To {
			out = append(out, [2]graph.NodeID{l.From, l.To})
		}
	}
	return out
}

// changeSet doubles-to-triples the cost of a few spread-out links, each
// announced by one endpoint only — mirroring protonet.ChangeCost
// semantics, where cost is a property of the announcing router's view.
func changeSet(g *graph.Graph) []costChange {
	pairs := duplexPairs(g)
	var out []costChange
	for i := 0; i < len(pairs); i += 1 + len(pairs)/4 {
		a, b := pairs[i][0], pairs[i][1]
		l, _ := g.Link(a, b)
		out = append(out, costChange{a: a, b: b, cost: 3 * protoCost(l)})
	}
	return out
}

// TestCrossValidationNET1: the 10-router two-cluster topology.
func TestCrossValidationNET1(t *testing.T) {
	leaktest.Check(t)
	g := topo.NET1().Graph
	crossValidate(t, g, changeSet(g))
}

// TestCrossValidationCAIRN: the paper's CAIRN testbed topology — 26
// routers, 39 duplex links, 78 UDP sockets, every datagram running the 20% fault
// gauntlet.
func TestCrossValidationCAIRN(t *testing.T) {
	leaktest.Check(t)
	if testing.Short() {
		t.Skip("CAIRN live mesh is not a -short test")
	}
	g := topo.CAIRN().Graph
	crossValidate(t, g, changeSet(g))
}
