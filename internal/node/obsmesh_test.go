package node_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"minroute/internal/leaktest"
	"minroute/internal/node"
	"minroute/internal/obs"
	"minroute/internal/topo"
	"minroute/internal/transport"
)

// obsClient returns an HTTP client whose idle connections are reaped at
// test end, keeping the leaktest window clean.
func obsClient(t *testing.T) *http.Client {
	t.Helper()
	tr := &http.Transport{DisableKeepAlives: true}
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr}
}

func obsGet(t *testing.T, c *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestMeshObservability boots a lossy three-node UDP ring with the full
// observability plane on, converges it, and checks that every node's
// endpoints tell the truth: /readyz flips to 200 mesh-wide, /metrics
// exposes per-link ARQ and session instruments, and /routes and /peers
// agree with the mesh's own state.
func TestMeshObservability(t *testing.T) {
	leaktest.Check(t)
	g := topo.Ring(3, 1.5*topo.Mb, 0.01)
	m, err := node.NewMesh(g, node.MeshConfig{
		Fabric:         node.FabricUDP,
		Clock:          node.NewWallClock(),
		CostOf:         protoCost,
		Fault:          transport.Fault{Seed: 1, LossProb: 0.05},
		ARQ:            transport.ARQConfig{RTO: 0.01, MaxRTO: 0.2},
		HeartbeatEvery: 0.2,
		DeadAfter:      60,
		ObsAddr:        "127.0.0.1:0",
		ObsPollEvery:   0.005,
		ObsStablePolls: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	awaitMesh(t, m)

	urls := m.ObsURLs()
	if len(urls) != 3 {
		t.Fatalf("ObsURLs: got %d, want 3", len(urls))
	}
	c := obsClient(t)

	// Every node's /readyz must flip to 200 once its stability streak
	// fills; the deadline is counted in polls, not wall timestamps.
	for i, u := range urls {
		ready := false
		for poll := 0; poll < 2000 && !ready; poll++ {
			code, _ := obsGet(t, c, u+"/readyz")
			ready = code == http.StatusOK
			if !ready {
				time.Sleep(2 * time.Millisecond)
			}
		}
		if !ready {
			t.Fatalf("node %d never turned ready at %s", i, u)
		}
	}

	// /metrics carries session and per-link ARQ families with the node
	// const label.
	code, body := obsGet(t, c, urls[0]+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"# TYPE mdr_session_peer_ups_total counter",
		`mdr_session_peers{node="0"} 2`,
		`mdr_arq_retransmits_total{link="0-1",node="0"}`,
		`mdr_arq_window{link="0-2",node="0"}`,
		`mdr_session_lsus_sent_total{node="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// /routes: a converged 3-ring lists itself (distance 0) plus both
	// other nodes, each with a positive distance and a successor.
	code, body = obsGet(t, c, urls[0]+"/routes")
	if code != http.StatusOK {
		t.Fatalf("/routes: status %d", code)
	}
	var rd obs.RoutesDoc
	if err := json.Unmarshal([]byte(body), &rd); err != nil {
		t.Fatalf("/routes: %v", err)
	}
	if rd.ID != 0 || len(rd.Routes) != 3 {
		t.Fatalf("/routes: got %+v", rd)
	}
	for _, r := range rd.Routes {
		if r.Dst == 0 {
			continue // self row
		}
		if r.Dist <= 0 || len(r.Successors) == 0 || r.Best < 0 || r.FD <= 0 {
			t.Errorf("/routes row not converged: %+v", r)
		}
	}

	// /peers: degree-2 ring, ARQ instruments wired.
	code, body = obsGet(t, c, urls[0]+"/peers")
	if code != http.StatusOK {
		t.Fatalf("/peers: status %d", code)
	}
	var pd obs.PeersDoc
	if err := json.Unmarshal([]byte(body), &pd); err != nil {
		t.Fatalf("/peers: %v", err)
	}
	if pd.MinPeers != 2 || len(pd.Peers) != 2 {
		t.Fatalf("/peers: got %+v", pd)
	}
	for _, p := range pd.Peers {
		if p.RTO <= 0 {
			t.Errorf("/peers: peer %d has no live RTO: %+v", p.ID, p)
		}
	}

	// Close reaps every obs server: URLs go blank and sockets refuse.
	m.Close()
	if got := m.Nodes[0].ObsURL(); got != "" {
		t.Fatalf("ObsURL after Close = %q, want empty", got)
	}
	if _, err := c.Get(urls[0] + "/healthz"); err == nil {
		t.Fatal("obs server still serving after mesh Close")
	}
}

// TestMeshWithoutObsHasNoURLs pins the opt-in: a mesh built without
// ObsAddr serves nothing and reports no URLs.
func TestMeshWithoutObsHasNoURLs(t *testing.T) {
	leaktest.Check(t)
	m, err := node.NewMesh(topo.Ring(3, 1.5*topo.Mb, 0.01), node.MeshConfig{
		Clock:  node.NewWallClock(),
		CostOf: protoCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if urls := m.ObsURLs(); urls != nil {
		t.Fatalf("ObsURLs without ObsAddr = %v, want nil", urls)
	}
	if got := m.Nodes[0].ObsURL(); got != "" {
		t.Fatalf("ObsURL without ObsAddr = %q, want empty", got)
	}
}
