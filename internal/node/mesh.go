package node

import (
	"fmt"

	"minroute/internal/dataplane"
	"minroute/internal/graph"
	"minroute/internal/lfi"
	"minroute/internal/telemetry"
	"minroute/internal/transport"
)

// Fabric selects the transport a Mesh wires its links with.
type Fabric string

const (
	// FabricInmem uses synchronous in-memory pipes — the reference
	// transport, fastest and loss-free.
	FabricInmem Fabric = "inmem"
	// FabricTCP runs one loopback TCP listener per node and dials real
	// sockets per link.
	FabricTCP Fabric = "tcp"
	// FabricUDP binds a loopback UDP socket pair per link with the ARQ
	// layer on top; MeshConfig.Fault perturbs the datagrams beneath it.
	FabricUDP Fabric = "udp"
)

// MeshConfig parameterizes an in-process mesh of live nodes.
type MeshConfig struct {
	Fabric Fabric
	// Clock is shared by every node (required).
	Clock transport.Clock
	// CostOf maps a directed link to its MPDA cost (required) — the same
	// closure shape protonet.BringUpAll takes, so live and simulated runs
	// can share one cost model.
	CostOf func(l *graph.Link) float64
	// Fault perturbs every UDP link's datagrams (both directions, per-link
	// derived seeds). Only valid with FabricUDP.
	Fault transport.Fault
	// ARQ tunes the UDP retransmission layer.
	ARQ transport.ARQConfig
	// HeartbeatEvery/DeadAfter configure every node's sessions.
	HeartbeatEvery float64
	DeadAfter      float64
	// Trace, when non-nil, receives all nodes' events.
	Trace *Trace
	// Metrics, when non-nil, receives per-link ARQ instruments on UDP
	// fabrics: an `arq.retransmits.<a>-<b>` counter and an
	// `arq.window.<a>-<b>` send-window occupancy gauge per directed link.
	// Instruments are created at link setup; counter and gauge reads are
	// atomic, so they may be scraped while the mesh is live.
	Metrics *telemetry.Registry
	// ObsAddr, when non-empty, gives every node an observability server
	// on this address — it must carry port 0 (each node binds its own
	// ephemeral port; ObsURLs reports where they landed). Each node gets
	// a private registry; per-link ARQ instruments are aliased into both
	// the owning node's registry and the mesh-wide Metrics registry.
	ObsAddr string
	// ObsPollEvery and ObsStablePolls tune every node's readiness poller
	// (see obs.Config); zero selects the obs defaults.
	ObsPollEvery   float64
	ObsStablePolls int
	// Data enables the live data plane: every node gets a forwarder on
	// its own data port (a MemNet endpoint on the inmem fabric, a UDP
	// socket otherwise), peered with its topology neighbors and fed
	// phi-derived forwarding tables by its node. Emulated per-hop latency
	// follows the topology's link model: sizeBits/Capacity + PropDelay.
	Data bool
	// DataFault perturbs data-plane datagrams (per-node derived seeds),
	// independent of the control plane's Fault: the ARQ recovers control
	// loss, while a lost data packet is simply lost. Requires Data.
	DataFault transport.Fault
	// DataTTL overrides the hop budget stamped on originated data packets
	// (dataplane.DefaultTTL if 0).
	DataTTL uint8
}

// Mesh is a full topology of live nodes running in one process, each
// peered over its configured fabric. It is the live counterpart of
// protonet.Net: same routers, real transports instead of emulated queues.
type Mesh struct {
	Nodes []*Node

	degree    []int
	regs      []*telemetry.Registry
	listeners []*transport.TCPListener
	// dataNet is the in-memory data-plane switchboard on the inmem fabric
	// (nil otherwise: UDP data ports need no shared fabric object).
	dataNet *transport.MemNet
}

// dataForwarder builds node id's data-plane forwarder: a data port on the
// matching fabric, faults derived per node, and the topology's link model
// as the emulated per-hop latency.
func (m *Mesh) dataForwarder(id graph.NodeID, nn int, dir map[[2]graph.NodeID]*graph.Link, cfg MeshConfig) (*dataplane.Forwarder, error) {
	var conn transport.Datagram
	if cfg.Fabric == FabricInmem || cfg.Fabric == "" {
		if m.dataNet == nil {
			m.dataNet = transport.NewMemNet()
		}
		conn = m.dataNet.Bind()
	} else {
		c, err := transport.BindUDPDatagram("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		conn = c
	}
	if cfg.DataFault.Active() {
		f := cfg.DataFault
		f.Seed = cfg.DataFault.Seed ^ (uint64(id)<<8 | 3)
		conn = transport.WithDatagramFaults(conn, f)
	}
	var reg *telemetry.Registry
	if m.regs != nil {
		reg = m.regs[id]
	}
	fc := dataplane.Config{
		Self: id, Nodes: nn, Conn: conn, Clock: cfg.Clock,
		TTL: cfg.DataTTL, Metrics: reg,
		LatencyOf: func(next graph.NodeID, sizeBits uint32) float64 {
			l := dir[[2]graph.NodeID{id, next}]
			if l == nil {
				return 0
			}
			return l.PropDelay + float64(sizeBits)/l.Capacity
		},
	}
	return dataplane.New(fc), nil
}

// NewMesh builds one Node per graph node and connects every duplex link
// over the configured fabric. The returned mesh is converging: use
// AwaitConverged to wait for quiescence.
func NewMesh(g *graph.Graph, cfg MeshConfig) (*Mesh, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("node: MeshConfig.Clock is required")
	}
	if cfg.CostOf == nil {
		return nil, fmt.Errorf("node: MeshConfig.CostOf is required")
	}
	if cfg.Fault.Active() && cfg.Fabric != FabricUDP {
		return nil, fmt.Errorf("node: fault injection requires FabricUDP, not %q", cfg.Fabric)
	}
	nn := g.NumNodes()
	m := &Mesh{Nodes: make([]*Node, nn), degree: make([]int, nn)}

	// Index directed links and count expected degrees first: a node's
	// degree is its readiness peer floor, so it must be known at
	// construction time.
	dir := make(map[[2]graph.NodeID]*graph.Link)
	for _, l := range g.Links() {
		dir[[2]graph.NodeID{l.From, l.To}] = l
		m.degree[l.From]++
	}

	if cfg.ObsAddr != "" {
		m.regs = make([]*telemetry.Registry, nn)
		for i := range m.regs {
			m.regs[i] = telemetry.NewRegistry(0)
		}
	}
	if cfg.DataFault.Active() && !cfg.Data {
		return nil, fmt.Errorf("node: DataFault requires Data")
	}
	for i := 0; i < nn; i++ {
		nc := Config{
			ID: graph.NodeID(i), Nodes: nn, Clock: cfg.Clock,
			HeartbeatEvery: cfg.HeartbeatEvery, DeadAfter: cfg.DeadAfter,
			Trace:        cfg.Trace,
			ObsAddr:      cfg.ObsAddr,
			ExpectPeers:  m.degree[i],
			ObsPollEvery: cfg.ObsPollEvery, ObsStablePolls: cfg.ObsStablePolls,
		}
		if m.regs != nil {
			nc.Metrics = m.regs[i]
		}
		if cfg.Data {
			fwd, err := m.dataForwarder(graph.NodeID(i), nn, dir, cfg)
			if err != nil {
				m.Close()
				return nil, err
			}
			nc.Data = fwd
		}
		n, err := New(nc)
		if err != nil {
			if nc.Data != nil {
				nc.Data.Close() // not yet owned by any node
			}
			m.Close()
			return nil, err
		}
		m.Nodes[i] = n
	}
	if cfg.Data {
		// Peer the data ports along topology links, with a per-directed-link
		// data.tx counter mirroring the ARQ instrument pattern.
		for _, l := range g.Links() {
			var tx *telemetry.Counter
			if cfg.Metrics != nil || m.regs != nil {
				name := fmt.Sprintf("data.tx.%d-%d", l.From, l.To)
				if m.regs != nil {
					tx = m.regs[l.From].Counter(name)
					if cfg.Metrics != nil {
						cfg.Metrics.RegisterCounter(name, tx)
					}
				} else {
					tx = cfg.Metrics.Counter(name)
				}
			}
			m.Nodes[l.From].DataPlane().SetPeer(l.To, m.Nodes[l.To].DataPlane().LocalAddr(), tx)
		}
	}
	costTo := func(from graph.NodeID) func(peer graph.NodeID) (float64, bool) {
		return func(peer graph.NodeID) (float64, bool) {
			l := dir[[2]graph.NodeID{from, peer}]
			if l == nil {
				return 0, false
			}
			return cfg.CostOf(l), true
		}
	}

	switch cfg.Fabric {
	case FabricInmem, "":
		for _, l := range g.Links() {
			a, b := l.From, l.To
			if a >= b {
				continue // one pipe per duplex link
			}
			ca, cb := transport.Pipe()
			m.linkInstruments(a, b, cfg, false)
			m.linkInstruments(b, a, cfg, false)
			m.Nodes[a].AddPeer(ca, costTo(a))
			m.Nodes[b].AddPeer(cb, costTo(b))
		}
	case FabricTCP:
		for _, n := range m.Nodes {
			l, err := transport.ListenTCP("127.0.0.1:0")
			if err != nil {
				m.Close()
				return nil, err
			}
			m.listeners = append(m.listeners, l)
			go acceptLoop(l, n, costTo(n.ID()))
		}
		for _, l := range g.Links() {
			a, b := l.From, l.To
			if a >= b {
				continue // the lower endpoint dials
			}
			c, err := transport.DialTCP(m.listeners[b].Addr())
			if err != nil {
				m.Close()
				return nil, err
			}
			m.linkInstruments(a, b, cfg, false)
			m.linkInstruments(b, a, cfg, false)
			m.Nodes[a].AddPeer(c, costTo(a))
		}
	case FabricUDP:
		for _, l := range g.Links() {
			a, b := l.From, l.To
			if a >= b {
				continue
			}
			ca, cb, err := m.udpLink(a, b, cfg)
			if err != nil {
				m.Close()
				return nil, err
			}
			m.Nodes[a].AddPeer(ca, costTo(a))
			m.Nodes[b].AddPeer(cb, costTo(b))
		}
	default:
		return nil, fmt.Errorf("node: unknown fabric %q", cfg.Fabric)
	}
	return m, nil
}

// acceptLoop feeds inbound TCP sessions to the node until the listener
// closes.
func acceptLoop(l *transport.TCPListener, n *Node, costOf func(graph.NodeID) (float64, bool)) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		n.AddPeer(c, costOf)
	}
}

// udpLink builds one duplex UDP+ARQ link between a and b, with per-link
// per-direction fault seeds derived from the configured base seed so two
// meshes with equal MeshConfig see identical perturbation sequences.
func (m *Mesh) udpLink(a, b graph.NodeID, cfg MeshConfig) (ca, cb transport.Conn, err error) {
	pa, err := transport.BindUDP("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	pb, err := transport.BindUDP("127.0.0.1:0")
	if err != nil {
		pa.Close()
		return nil, nil, err
	}
	if err := pa.Connect(pb.LocalAddr()); err != nil {
		pa.Close()
		pb.Close()
		return nil, nil, err
	}
	if err := pb.Connect(pa.LocalAddr()); err != nil {
		pa.Close()
		pb.Close()
		return nil, nil, err
	}
	fa, fb := cfg.Fault, cfg.Fault
	fa.Seed = cfg.Fault.Seed ^ (uint64(a)<<20 | uint64(b)<<4 | 1)
	fb.Seed = cfg.Fault.Seed ^ (uint64(a)<<20 | uint64(b)<<4 | 2)
	arqA, arqB := cfg.ARQ, cfg.ARQ
	arqA.Stats = arqStats(a, b, m.linkInstruments(a, b, cfg, true), cfg)
	arqB.Stats = arqStats(b, a, m.linkInstruments(b, a, cfg, true), cfg)
	ca = transport.NewARQ(transport.WithFaults(pa, fa), arqA, cfg.Clock)
	cb = transport.NewARQ(transport.WithFaults(pb, fb), arqB, cfg.Clock)
	return ca, cb, nil
}

// linkInstruments resolves one directed link's ARQ instrument handles,
// once, at link setup on the mesh-building goroutine. The name
// formatting and registry lookups happen only here — never on a path
// reachable per frame or per retransmission; the per-event callbacks in
// arqStats write through the precomputed pointers alone. When the mesh
// runs per-node registries (ObsAddr set), the owning node's registry
// creates the instrument and the mesh-wide registry aliases it, so one
// atomic counter serves both /metrics and the exported snapshot. The
// handles are also installed on the owning node for its /peers dump.
type linkInstruments struct {
	retx *telemetry.Counter
	win  *telemetry.Gauge
	wq   *telemetry.Gauge
}

// linkInstruments wires one directed link's handles. arq selects the ARQ
// pair (UDP fabric only); the writer-queue depth gauge
// (session.writeq.<a>-<b>) exists on every fabric — frames queue toward a
// peer no matter what transport drains them.
func (m *Mesh) linkInstruments(local, remote graph.NodeID, cfg MeshConfig, arq bool) linkInstruments {
	if cfg.Metrics == nil && m.regs == nil {
		return linkInstruments{}
	}
	var li linkInstruments
	gauge := func(name string) *telemetry.Gauge {
		if m.regs != nil {
			g := m.regs[local].Gauge(name)
			if cfg.Metrics != nil {
				cfg.Metrics.RegisterGauge(name, g)
			}
			return g
		}
		return cfg.Metrics.Gauge(name)
	}
	if arq {
		retxName := fmt.Sprintf("arq.retransmits.%d-%d", local, remote)
		if m.regs != nil {
			li.retx = m.regs[local].Counter(retxName)
			if cfg.Metrics != nil {
				cfg.Metrics.RegisterCounter(retxName, li.retx)
			}
		} else {
			li.retx = cfg.Metrics.Counter(retxName)
		}
		li.win = gauge(fmt.Sprintf("arq.window.%d-%d", local, remote))
	}
	li.wq = gauge(fmt.Sprintf("session.writeq.%d-%d", local, remote))
	m.Nodes[local].SetPeerStats(remote, li.retx, li.win, li.wq)
	return li
}

// arqStats builds the observer for one directed UDP link, bridging the
// transport's stats hooks into the mesh's trace and the precomputed
// instruments. Returns nil (observation fully disabled) when neither
// sink is configured; the enabled metrics-only path is alloc-free (see
// TestARQStatsEnabledZeroAlloc).
func arqStats(local, remote graph.NodeID, li linkInstruments, cfg MeshConfig) *transport.ARQStats {
	if cfg.Trace == nil && li.retx == nil {
		return nil
	}
	retx, occ := li.retx, li.win
	trace, clk := cfg.Trace, cfg.Clock
	return &transport.ARQStats{
		Retransmit: func(seq uint32, rto float64, fast bool) {
			retx.Inc()
			if trace != nil {
				ev := telemetry.NewEvent(clk.Now(), telemetry.KindARQRetransmit, local)
				ev.Peer = remote
				ev.Value = rto
				if fast {
					ev.Label = "fast"
				} else {
					ev.Label = "rto"
				}
				trace.Emit(ev)
			}
		},
		RTOUpdate: func(srtt, rttvar, rto float64) {
			if trace != nil {
				ev := telemetry.NewEvent(clk.Now(), telemetry.KindARQRTOUpdate, local)
				ev.Peer = remote
				ev.Value = rto
				trace.Emit(ev)
			}
		},
		Window: func(occupied, limit int) {
			occ.Set(float64(occupied))
		},
	}
}

// ObsURLs returns every node's observability base URL in ID order, or
// nil when MeshConfig.ObsAddr was not set.
func (m *Mesh) ObsURLs() []string {
	if m.regs == nil {
		return nil
	}
	urls := make([]string, len(m.Nodes))
	for i, n := range m.Nodes {
		if n != nil {
			urls[i] = n.ObsURL()
		}
	}
	return urls
}

// Ready reports whether every expected peer session is up.
func (m *Mesh) Ready() bool {
	for i, n := range m.Nodes {
		if n.PeerCount() != m.degree[i] {
			return false
		}
	}
	return true
}

// Passive reports whether every router is in the PASSIVE phase.
func (m *Mesh) Passive() bool {
	for _, n := range m.Nodes {
		if !n.Passive() {
			return false
		}
	}
	return true
}

// Quiescent reports whether every router is PASSIVE and every transport
// window has drained — the live analogue of protonet's empty queues.
func (m *Mesh) Quiescent() bool {
	for _, n := range m.Nodes {
		if !n.Passive() || n.Outstanding() != 0 {
			return false
		}
	}
	return true
}

// Summary concatenates every node's canonical state rendering in ID
// order.
func (m *Mesh) Summary() string {
	s := ""
	for _, n := range m.Nodes {
		s += n.Summary()
	}
	return s
}

// Hash digests the mesh state for cross-validation against a simulator
// reference.
func (m *Mesh) Hash() string { return HashState(m.Summary()) }

// tableView is a static lfi.RouterView snapshot of one live router,
// taken under its node's lock so the oracle never races the protocol.
type tableView struct {
	id   graph.NodeID
	fd   []float64
	succ [][]graph.NodeID
}

func (v *tableView) ID() graph.NodeID                         { return v.id }
func (v *tableView) FD(j graph.NodeID) float64                { return v.fd[j] }
func (v *tableView) Successors(j graph.NodeID) []graph.NodeID { return v.succ[j] }

// CheckLoopFree audits the mesh's instantaneous successor graph with the
// loop-freedom oracle: for every destination, the union of the nodes'
// successor sets must be acyclic. The data plane forwards along exactly
// these sets, so a passing audit plus zero looped/ttl-expired counters is
// the live half of the ISSUE's forwarding-loop gate.
func (m *Mesh) CheckLoopFree() error {
	nn := len(m.Nodes)
	views := make(map[graph.NodeID]lfi.RouterView, nn)
	for _, n := range m.Nodes {
		v := &tableView{id: n.id, fd: make([]float64, nn), succ: make([][]graph.NodeID, nn)}
		n.mu.Lock()
		for j := 0; j < nn; j++ {
			jid := graph.NodeID(j)
			v.fd[j] = n.r.FD(jid)
			v.succ[j] = append([]graph.NodeID(nil), n.r.Successors(jid)...)
		}
		n.mu.Unlock()
		views[n.id] = v
	}
	return lfi.CheckAllDestinations(nn, views)
}

// AwaitConverged polls until the mesh is ready, all-PASSIVE, and its
// state hash has held stable for `stable` consecutive polls, then until
// it is also quiescent — all-PASSIVE plus a stable hash means no
// entry-bearing LSU is in flight anywhere, so the state is final.
// Quiescence is sampled only at the end of a stable streak rather than
// demanded on every poll: under injected loss, periodic heartbeats keep
// some ARQ retransmit window transiently non-empty almost all the time,
// and requiring a long run of simultaneously-drained windows would
// practically never terminate. sleep is called between polls (real sleep
// under a wall clock, an Advance step under a virtual one). It fails
// after maxPolls.
func (m *Mesh) AwaitConverged(stable, maxPolls int, sleep func()) error {
	prev := ""
	run := 0
	for i := 0; i < maxPolls; i++ {
		if m.Ready() && m.Passive() {
			h := m.Hash()
			if h == prev {
				run++
			} else {
				run = 1
				prev = h
			}
			if run >= stable && m.Quiescent() {
				return nil
			}
		} else {
			run = 0
			prev = ""
		}
		sleep()
	}
	return fmt.Errorf("node: mesh did not converge within %d polls", maxPolls)
}

// Close tears every node and listener down.
func (m *Mesh) Close() {
	for _, l := range m.listeners {
		l.Close()
	}
	for _, n := range m.Nodes {
		if n != nil {
			n.Close()
		}
	}
}
