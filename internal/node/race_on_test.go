//go:build race

package node_test

// raceEnabled reports whether the race detector is compiled in. The
// data-plane cross-validation gates live delays — which include real
// wall transit — against the simulator within 10%; race-detector
// overhead inflates that wall component far past the envelope, so the
// test skips itself under -race (the same forwarders run race-checked
// by the delivery and fault tests).
const raceEnabled = true
