package node

import (
	"testing"

	"minroute/internal/graph"
	"minroute/internal/telemetry"
)

// TestARQStatsDisabledNil pins the fully-disabled path: with neither a
// trace nor any instrument the observer is nil, which is the one-branch
// zero-cost configuration the transport's own guard benchmarks rely on.
func TestARQStatsDisabledNil(t *testing.T) {
	if s := arqStats(0, 1, linkInstruments{}, MeshConfig{Clock: NewVirtualClock()}); s != nil {
		t.Fatal("arqStats with no sinks should be nil")
	}
}

// TestARQStatsEnabledZeroAlloc guards the enabled metrics-only path: the
// per-event callbacks write through precomputed atomic instruments and
// must not allocate — no fmt.Sprintf, no map lookups, nothing reachable
// per retransmission or per window update.
func TestARQStatsEnabledZeroAlloc(t *testing.T) {
	reg := telemetry.NewRegistry(0)
	li := linkInstruments{
		retx: reg.Counter("arq.retransmits.0-1"),
		win:  reg.Gauge("arq.window.0-1"),
	}
	stats := arqStats(0, 1, li, MeshConfig{Clock: NewVirtualClock()})
	if stats == nil {
		t.Fatal("arqStats with instruments should be non-nil")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		stats.Retransmit(7, 0.01, false)
		stats.RTOUpdate(0.01, 0.002, 0.02)
		stats.Window(3, 8)
	})
	if allocs != 0 {
		t.Fatalf("enabled-stats path allocates %v/op, want 0", allocs)
	}
	if got := li.retx.Value(); got < 1000 {
		t.Fatalf("retransmit counter = %v, want >= 1000", got)
	}
	if got := li.win.Value(); got != 3 {
		t.Fatalf("window gauge = %v, want 3", got)
	}
}

// TestLinkInstrumentsAliasing checks the dual-registry wiring: with
// per-node registries the owning node's registry creates the instrument
// and the mesh-wide registry aliases the very same counter, so a write
// through the ARQ callback is visible in both and on the node's /peers
// handles.
func TestLinkInstrumentsAliasing(t *testing.T) {
	clk := NewVirtualClock()
	shared := telemetry.NewRegistry(0)
	n0, err := New(Config{ID: 0, Nodes: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := New(Config{ID: 1, Nodes: 2, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	m := &Mesh{
		Nodes: []*Node{n0, n1},
		regs:  []*telemetry.Registry{telemetry.NewRegistry(0), telemetry.NewRegistry(0)},
	}
	li := m.linkInstruments(0, 1, MeshConfig{Clock: clk, Metrics: shared}, true)
	if li.retx == nil || li.win == nil || li.wq == nil {
		t.Fatal("linkInstruments returned nil handles")
	}
	if m.regs[0].Gauge("session.writeq.0-1") != li.wq || shared.Gauge("session.writeq.0-1") != li.wq {
		t.Fatal("writer-queue gauge not aliased across registries")
	}
	if m.regs[0].Counter("arq.retransmits.0-1") != li.retx {
		t.Fatal("node registry does not own the counter")
	}
	if shared.Counter("arq.retransmits.0-1") != li.retx {
		t.Fatal("mesh-wide registry did not alias the node's counter")
	}
	if m.regs[0].Gauge("arq.window.0-1") != li.win || shared.Gauge("arq.window.0-1") != li.win {
		t.Fatal("gauge not aliased across registries")
	}
	if n0.peerStats[graph.NodeID(1)].retx != li.retx {
		t.Fatal("owning node's peer handles not installed")
	}
	li.retx.Inc()
	if shared.Counter("arq.retransmits.0-1").Value() != 1 {
		t.Fatal("write not visible through the alias")
	}
}
