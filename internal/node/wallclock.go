package node

import (
	"time"

	"minroute/internal/transport"
)

// WallClock implements transport.Clock on the process clock for live
// runs. This file is the module's single sanctioned wall-time reader: the
// nowall lint check bans time.Now and time.Since everywhere else, so
// every simulator and test path stays on virtual time and the live/sim
// boundary is exactly one file wide.
type WallClock struct {
	start time.Time
}

// NewWallClock starts a wall clock whose Now reads zero at creation.
func NewWallClock() *WallClock {
	return &WallClock{start: time.Now()}
}

// Now returns seconds elapsed since the clock was created, using the
// monotonic reading embedded in the start time.
func (w *WallClock) Now() float64 {
	return time.Since(w.start).Seconds()
}

// AfterFunc schedules fn on a real timer d seconds from now.
func (w *WallClock) AfterFunc(d float64, fn func()) transport.Timer {
	return time.AfterFunc(time.Duration(d*float64(time.Second)), fn)
}
