package node_test

import (
	"minroute/internal/leaktest"
	"testing"
	"time"

	"minroute/internal/graph"
	"minroute/internal/mpda"
	"minroute/internal/node"
	"minroute/internal/protonet"
	"minroute/internal/topo"
	"minroute/internal/transport"
)

// protoCost is the control-plane cost model shared by the live meshes and
// the protonet reference: propagation delay plus a small hop bias (the
// same shape internal/chaos uses).
func protoCost(l *graph.Link) float64 { return l.PropDelay + 1e-4 }

// protoReference drives the same mpda.Router code over protonet's
// emulated reliable-FIFO queues to quiescence and returns the canonical
// per-router summaries. changes, applied after initial convergence,
// mirrors Mesh.ChangeCost calls.
func protoReference(t *testing.T, g *graph.Graph, changes []costChange) []string {
	t.Helper()
	net := protonet.New(g, 1)
	nn := g.NumNodes()
	routers := make([]*mpda.Router, nn)
	for i := 0; i < nn; i++ {
		id := graph.NodeID(i)
		routers[i] = mpda.NewRouter(id, nn, net.Sender(id))
		net.Attach(id, routers[i])
	}
	net.BringUpAll(protoCost)
	net.Run(1 << 22)
	for _, c := range changes {
		net.ChangeCost(c.a, c.b, c.cost)
		net.Run(1 << 22)
	}
	out := make([]string, nn)
	for i, r := range routers {
		out[i] = node.RouterSummary(r)
	}
	return out
}

type costChange struct {
	a, b graph.NodeID
	cost float64
}

// awaitMesh waits for live convergence with a real-time poll loop.
func awaitMesh(t *testing.T, m *node.Mesh) {
	t.Helper()
	if err := m.AwaitConverged(3, 20000, func() { time.Sleep(2 * time.Millisecond) }); err != nil {
		t.Fatal(err)
	}
}

// compareStates asserts the live mesh landed on exactly the reference
// distance tables and successor sets, via the canonical state hash.
func compareStates(t *testing.T, m *node.Mesh, ref []string) {
	t.Helper()
	live := m.Summary()
	want := ""
	for _, s := range ref {
		want += s
	}
	if node.HashState(live) != node.HashState(want) {
		t.Fatalf("live state diverged from simulator reference\nlive:\n%s\nreference:\n%s", live, want)
	}
}

// TestMeshFabricsAgreeNET1 converges NET1 on every fabric and checks each
// against the protonet reference: three different transports and three
// different delivery schedules, one final state.
func TestMeshFabricsAgreeNET1(t *testing.T) {
	leaktest.Check(t)
	g := topo.NET1().Graph
	ref := protoReference(t, g, nil)
	for _, fabric := range []node.Fabric{node.FabricInmem, node.FabricTCP, node.FabricUDP} {
		t.Run(string(fabric), func(t *testing.T) {
			m, err := node.NewMesh(g, node.MeshConfig{
				Fabric: fabric,
				Clock:  node.NewWallClock(),
				CostOf: protoCost,
				ARQ:    transport.ARQConfig{RTO: 0.01, MaxRTO: 0.2},
				// Generous dead timer: convergence here is driven by
				// traffic, and a -race scheduler stall must not fail links.
				HeartbeatEvery: 0.2,
				DeadAfter:      60,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			awaitMesh(t, m)
			compareStates(t, m, ref)
		})
	}
}
