// Package node hosts live MPDA routers: each Node wraps one
// mpda.Router — the same state machine the simulator drives — behind a
// transport.Clock and a set of peer sessions running over real
// transports (in-memory pipes, TCP, or UDP with the ARQ layer).
//
// The runtime supplies exactly what the paper assumes and the simulator
// emulates: reliable in-order LSU delivery (the transport's job), plus
// neighbor up/down detection (this package's job, via a HELLO handshake
// and heartbeat dead timers feeding LinkUp/LinkDown). Because MPDA's
// converged state is schedule-independent — at quiescence every router
// holds FD_j = D_j over the same link database — a live mesh with
// nondeterministic goroutine scheduling must still land on the exact
// distance tables and successor sets the deterministic simulator
// computes. RouterSummary renders that state canonically so the two
// worlds can be hash-compared; TestCrossValidation holds us to it.
//
// Concurrency model: one mutex per Node guards the router and peer
// table. Peer read loops apply frames to the router under the lock;
// outbound frames go through per-peer unbounded queues drained by writer
// goroutines, so the router never blocks on a transport while holding
// the lock (and no cross-node lock cycle can form).
package node

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"minroute/internal/alloc"
	"minroute/internal/dataplane"
	"minroute/internal/graph"
	"minroute/internal/lsu"
	"minroute/internal/mpda"
	"minroute/internal/obs"
	"minroute/internal/telemetry"
	"minroute/internal/transport"
	"minroute/internal/wire"
)

// Trace is a concurrency-safe front for a telemetry.Tracer. The tracer
// itself is single-threaded by design (the simulator needs no locks); the
// live runtime is not, so every emission funnels through one mutex. A nil
// *Trace discards events.
type Trace struct {
	mu sync.Mutex
	tr *telemetry.Tracer
}

// NewTrace wraps tr; nil tr yields a no-op Trace.
func NewTrace(tr *telemetry.Tracer) *Trace { return &Trace{tr: tr} }

// Emit forwards ev to the tracer under the lock.
func (t *Trace) Emit(ev telemetry.Event) {
	if t == nil || t.tr == nil {
		return
	}
	t.mu.Lock()
	t.tr.Emit(ev)
	t.mu.Unlock()
}

// Tracer returns the wrapped tracer for export once the runtime is done
// emitting.
func (t *Trace) Tracer() *telemetry.Tracer {
	if t == nil {
		return nil
	}
	return t.tr
}

// Emitted returns the total number of events ever emitted on the bus
// (zero for a nil Trace). Safe while the runtime is still emitting.
func (t *Trace) Emitted() uint64 {
	if t == nil || t.tr == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tr.Emitted()
}

// Dropped returns how many events the bus's rings have overwritten (zero
// for a nil Trace). A nonzero value means the exported event log is
// truncated — the observability plane surfaces this as a first-class
// metric rather than leaving it to an exporter warning.
func (t *Trace) Dropped() uint64 {
	if t == nil || t.tr == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tr.Dropped()
}

// Events snapshots the merged event log under the lock — safe to call
// while the runtime is still emitting (ARQ retransmit timers keep firing
// between heartbeats for as long as a mesh is up, so readers cannot
// assume emission has stopped).
func (t *Trace) Events() []telemetry.Event {
	if t == nil || t.tr == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tr.Events()
}

// Config parameterizes one live node.
type Config struct {
	// ID is this router's node ID; Nodes is the ID-space size.
	ID    graph.NodeID
	Nodes int
	// Clock drives heartbeats, dead timers, and telemetry timestamps:
	// NewWallClock for live runs, NewVirtualClock for deterministic tests.
	Clock transport.Clock
	// HeartbeatEvery is the keepalive period in seconds (default 0.25).
	HeartbeatEvery float64
	// DeadAfter declares a silent peer down, in seconds (default 1.0 —
	// four missed heartbeats at the default period).
	DeadAfter float64
	// Trace, when non-nil, receives session and protocol events.
	Trace *Trace
	// Metrics, when non-nil, receives this node's session instruments
	// (session.* counters, session.peers gauge) and backs the /metrics
	// endpoint when ObsAddr is set. Give every node its own registry: the
	// instrument names carry no node qualifier, so a registry shared
	// between nodes would merge their totals.
	Metrics *telemetry.Registry
	// ObsAddr, when non-empty, serves the observability plane (metrics,
	// health, routes, peers, pprof) on this TCP address; port 0 binds an
	// ephemeral port, readable via ObsURL. The server is owned by the
	// node and reaped by Close.
	ObsAddr string
	// ExpectPeers is how many peer sessions /readyz requires before the
	// node can report ready (its expected topology degree).
	ExpectPeers int
	// ObsPollEvery and ObsStablePolls tune the readiness poller (see
	// obs.Config); zero selects the obs defaults.
	ObsPollEvery   float64
	ObsStablePolls int
	// Data, when non-nil, is this node's data-plane forwarder. The node
	// drives it: after every event that can move the router's successor
	// sets or distances, it derives per-destination phi weights from the
	// live tables (alloc.Initial over the successor distances — the
	// paper's initial heuristic) and publishes a fresh forwarding
	// snapshot. The node owns the forwarder from here on; Close reaps it.
	Data *dataplane.Forwarder
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 0.25
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 1.0
	}
	return c
}

// peer is one live neighbor session.
type peer struct {
	id   graph.NodeID
	cost float64
	conn transport.Conn
	out  *frameQueue
	hb   transport.Timer
	dead transport.Timer
	// deadGen invalidates dead timers that fired concurrently with the
	// frame arrival that reset them (Timer.Stop cannot un-run a callback
	// already blocked on the node lock).
	deadGen uint64
	down    bool
}

// nodeStats is the node's session-instrument handle set, resolved once
// at construction so no per-event path touches the registry maps. With a
// nil Config.Metrics every handle is nil — the usual one-branch no-op.
type nodeStats struct {
	peerUps   *telemetry.Counter
	peerDowns *telemetry.Counter
	lsusSent  *telemetry.Counter
	lsusRecv  *telemetry.Counter
	// evEmitted/evDropped mirror the event bus's totals (bus-wide: the
	// Trace is typically shared across a mesh) on each /metrics refresh.
	evEmitted *telemetry.Counter
	evDropped *telemetry.Counter
	peersUp   *telemetry.Gauge
}

// peerInstruments are one peer link's ARQ instrument handles, installed
// by the mesh at link setup (SetPeerStats) so /peers can read live
// retransmit and window values without name lookups.
type peerInstruments struct {
	retx *telemetry.Counter
	win  *telemetry.Gauge
	// wq mirrors the peer's writer-queue depth — frames accepted from the
	// router but not yet handed to the transport. A queue that grows
	// between scrapes marks a link slower than its control traffic.
	wq *telemetry.Gauge
}

// Node is one live MPDA router plus its peer sessions.
type Node struct {
	cfg   Config
	id    graph.NodeID
	clk   transport.Clock
	stats nodeStats

	mu    sync.Mutex
	r     *mpda.Router
	peers map[graph.NodeID]*peer
	// handshakes holds conns whose session is still in the HELLO exchange:
	// not yet in peers, but already owning a goroutine that may be blocked
	// in Recv. Close reaps them directly — without this, a session whose
	// remote never answers outlives the node (goroutine + conn leak).
	handshakes  map[transport.Conn]struct{}
	peerStats   map[graph.NodeID]peerInstruments
	obs         *obs.Server
	closed      bool
	activeSince float64
}

// New builds a node; the router starts PASSIVE with no peers.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Clock == nil {
		return nil, fmt.Errorf("node: Config.Clock is required")
	}
	if cfg.Nodes <= 0 || int(cfg.ID) < 0 || int(cfg.ID) >= cfg.Nodes {
		return nil, fmt.Errorf("node: ID %d outside ID space of %d nodes", cfg.ID, cfg.Nodes)
	}
	n := &Node{
		cfg:        cfg,
		id:         cfg.ID,
		clk:        cfg.Clock,
		peers:      make(map[graph.NodeID]*peer),
		handshakes: make(map[transport.Conn]struct{}),
		peerStats:  make(map[graph.NodeID]peerInstruments),
	}
	// Resolve instrument handles once: the registry's maps are unlocked,
	// so every name lookup must happen before concurrent use.
	n.stats = nodeStats{
		peerUps:   cfg.Metrics.Counter("session.peer_ups"),
		peerDowns: cfg.Metrics.Counter("session.peer_downs"),
		lsusSent:  cfg.Metrics.Counter("session.lsus_sent"),
		lsusRecv:  cfg.Metrics.Counter("session.lsus_received"),
		evEmitted: cfg.Metrics.Counter("telemetry.events.emitted"),
		evDropped: cfg.Metrics.Counter("telemetry.events.dropped"),
		peersUp:   cfg.Metrics.Gauge("session.peers"),
	}
	n.r = mpda.NewRouter(cfg.ID, cfg.Nodes, n.sendLSU)
	n.r.OnPhase = n.onPhase
	n.r.OnCommit = func(changed int) {
		n.emit(telemetry.KindTableCommit, graph.None, float64(changed), "")
	}
	if cfg.ObsAddr != "" {
		srv, err := obs.NewServer(obs.Config{
			Addr:        cfg.ObsAddr,
			Clock:       cfg.Clock,
			Sample:      n.obsSample,
			Registry:    cfg.Metrics,
			Refresh:     n.refreshObsMetrics,
			ConstLabels: map[string]string{"node": strconv.Itoa(int(cfg.ID))},
			PollEvery:   cfg.ObsPollEvery,
			StablePolls: cfg.ObsStablePolls,
		})
		if err != nil {
			return nil, err
		}
		n.obs = srv
	}
	return n, nil
}

// ID returns the node's router ID.
func (n *Node) ID() graph.NodeID { return n.id }

// emit sends one telemetry event stamped with the node clock. Callers may
// hold n.mu; the Trace lock is independent.
func (n *Node) emit(k telemetry.Kind, peer graph.NodeID, value float64, label string) {
	if n.cfg.Trace == nil {
		return
	}
	ev := telemetry.NewEvent(n.clk.Now(), k, n.id)
	ev.Peer = peer
	ev.Value = value
	ev.Label = label
	n.cfg.Trace.Emit(ev)
}

// onPhase observes router phase flips (always called under n.mu).
func (n *Node) onPhase(active bool) {
	now := n.clk.Now()
	if active {
		n.activeSince = now
		n.emit(telemetry.KindPhaseActive, graph.None, 0, "")
		return
	}
	n.emit(telemetry.KindPhasePassive, graph.None, now-n.activeSince, "")
}

// sendLSU is the router's Sender: called under n.mu whenever MPDA emits
// an LSU toward a neighbor. A missing peer means the link raced down;
// dropping matches the physical reality that a dead link carries nothing.
func (n *Node) sendLSU(to graph.NodeID, m *lsu.Msg) {
	p := n.peers[to]
	if p == nil || p.down {
		return
	}
	f, err := wire.NewLSU(m)
	if err != nil {
		return
	}
	n.stats.lsusSent.Inc()
	n.emit(telemetry.KindLSUSend, to, float64(f.EncodedBytes()*8), "")
	p.out.push(f)
}

// SetPeerStats installs the instrument handles for the link to peer: ARQ
// retransmit/window plus the writer-queue depth gauge. The mesh calls
// this at link setup; any handle may be nil (fabrics without ARQ leave
// the first two nil).
func (n *Node) SetPeerStats(peer graph.NodeID, retx *telemetry.Counter, win *telemetry.Gauge, wq *telemetry.Gauge) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peerStats[peer] = peerInstruments{retx: retx, win: win, wq: wq}
}

// AddPeer runs a session over conn: it sends our HELLO, waits for the
// peer's, resolves the link cost via costOf (returning false rejects the
// peer and closes conn), and then brings the link up and serves it until
// the connection dies, a BYE arrives, or the dead timer fires. AddPeer
// returns immediately; the session runs on its own goroutines.
func (n *Node) AddPeer(conn transport.Conn, costOf func(peer graph.NodeID) (float64, bool)) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	// Register before spawning: from this point Close knows about the conn
	// and will close it, which unblocks a session stuck in the handshake.
	n.handshakes[conn] = struct{}{}
	n.mu.Unlock()
	go n.session(conn, costOf)
}

// abortHandshake retires a handshake that failed before the peer
// registered: drop it from the reap set and release the conn.
func (n *Node) abortHandshake(conn transport.Conn) {
	n.mu.Lock()
	delete(n.handshakes, conn)
	n.mu.Unlock()
	conn.Close()
}

func (n *Node) session(conn transport.Conn, costOf func(peer graph.NodeID) (float64, bool)) {
	if err := conn.Send(wire.NewHello(n.id)); err != nil {
		n.abortHandshake(conn)
		return
	}
	f, err := conn.Recv()
	if err != nil || f.Type != wire.TypeHello {
		n.abortHandshake(conn)
		return
	}
	pid, err := wire.HelloNode(f)
	if err != nil || int(pid) >= n.cfg.Nodes || pid == n.id {
		n.abortHandshake(conn)
		return
	}
	cost, ok := costOf(pid)
	if !ok {
		n.abortHandshake(conn)
		return
	}

	p := &peer{id: pid, cost: cost, conn: conn, out: newFrameQueue()}
	n.mu.Lock()
	delete(n.handshakes, conn)
	if n.closed || n.peers[pid] != nil {
		n.mu.Unlock()
		conn.Close()
		return
	}
	n.peers[pid] = p
	go n.writeLoop(p)
	n.armHeartbeatLocked(p)
	n.armDeadLocked(p)
	n.stats.peerUps.Inc()
	n.stats.peersUp.Set(float64(len(n.peers)))
	n.emit(telemetry.KindPeerUp, pid, cost, "")
	n.r.LinkUp(pid, cost)
	n.publishDataLocked()
	n.mu.Unlock()

	n.readLoop(p)
}

// writeLoop drains the peer's outbound queue onto the transport. It owns
// conn.Close: the queue's drain-then-fail close semantics let a BYE
// flush before the connection drops.
func (n *Node) writeLoop(p *peer) {
	for {
		// Drain the whole burst in one lock round-trip and hand the frames
		// to the transport back-to-back — on the ARQ that lets a flood of
		// small LSUs coalesce into MTU-sized datagrams.
		fs, err := p.out.popAll()
		if err != nil {
			p.conn.Close()
			return
		}
		for _, f := range fs {
			if p.conn.Send(f) != nil {
				p.conn.Close()
				return
			}
		}
	}
}

// readLoop applies inbound frames to the router until the session ends.
func (n *Node) readLoop(p *peer) {
	for {
		f, err := p.conn.Recv()
		if err != nil {
			n.peerDown(p, "closed")
			return
		}
		n.mu.Lock()
		if p.down {
			n.mu.Unlock()
			return
		}
		// Any traffic proves liveness: push the dead timer out.
		p.dead.Stop()
		n.armDeadLocked(p)
		switch f.Type {
		case wire.TypeLSU:
			if m, err := wire.LSUMsg(f); err == nil {
				n.stats.lsusRecv.Inc()
				n.emit(telemetry.KindLSURecv, p.id, float64(len(m.Entries)), "")
				if m.Ack {
					n.emit(telemetry.KindLSUAck, p.id, 0, "")
				}
				n.r.HandleLSU(m)
				n.publishDataLocked()
			}
		case wire.TypeBye:
			n.peerDownLocked(p, "bye")
			n.mu.Unlock()
			return
		default:
			// HELLO repeats and heartbeats carry no protocol payload.
		}
		n.mu.Unlock()
	}
}

// armHeartbeatLocked schedules the next keepalive; each firing re-arms.
func (n *Node) armHeartbeatLocked(p *peer) {
	p.hb = n.clk.AfterFunc(n.cfg.HeartbeatEvery, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if p.down {
			return
		}
		p.out.push(wire.NewHeartbeat())
		n.armHeartbeatLocked(p)
	})
}

// armDeadLocked schedules the silent-peer deadline.
func (n *Node) armDeadLocked(p *peer) {
	p.deadGen++
	gen := p.deadGen
	p.dead = n.clk.AfterFunc(n.cfg.DeadAfter, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if gen != p.deadGen {
			return // reset by traffic after this firing was committed
		}
		n.peerDownLocked(p, "timeout")
	})
}

func (n *Node) peerDown(p *peer, reason string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peerDownLocked(p, reason)
}

// peerDownLocked tears one session down exactly once: stop timers,
// unregister, tell the router, and let the writer drain and close.
func (n *Node) peerDownLocked(p *peer, reason string) {
	if p.down {
		return
	}
	p.down = true
	p.hb.Stop()
	p.dead.Stop()
	delete(n.peers, p.id)
	n.stats.peerDowns.Inc()
	n.stats.peersUp.Set(float64(len(n.peers)))
	n.emit(telemetry.KindPeerDown, p.id, 0, reason)
	n.r.LinkDown(p.id)
	n.publishDataLocked()
	p.out.close()
}

// ChangeCost applies a new cost for the adjacent link to peer k, as a
// management-plane action (the live analogue of protonet.ChangeCost).
func (n *Node) ChangeCost(k graph.NodeID, cost float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.peers[k]
	if p == nil {
		return fmt.Errorf("node %d: no live peer %d", n.id, k)
	}
	p.cost = cost
	n.r.LinkCostChange(k, cost)
	n.publishDataLocked()
	return nil
}

// DataPlane returns the node's forwarder, or nil without a data plane.
func (n *Node) DataPlane() *dataplane.Forwarder { return n.cfg.Data }

// publishDataLocked compiles the router's current successor sets into a
// forwarding-table snapshot and swaps it into the data plane. Called
// under n.mu after every event that can touch the tables — link up/down,
// LSU application, cost change. The router's commit hook is not enough:
// FD lowering in the PASSIVE step can widen a successor set without a
// table commit, and the data plane must see it.
//
// The phi weights are alloc.Initial over the live successor distances —
// the paper's initial heuristic IH: a single successor takes the whole
// flow; multiple successors split inversely to their marginal distance
// D_jk + l_ik. The simulator's routers run the same allocator over the
// same converged distances, which is what makes the live split
// cross-validatable against the DES.
func (n *Node) publishDataLocked() {
	if n.cfg.Data == nil {
		return
	}
	entries := make([]dataplane.Entry, 0, n.cfg.Nodes)
	for j := 0; j < n.cfg.Nodes; j++ {
		jid := graph.NodeID(j)
		if jid == n.id {
			continue
		}
		succ := n.r.Successors(jid)
		if len(succ) == 0 {
			continue
		}
		phi := alloc.Initial(succ, func(k graph.NodeID) float64 {
			return n.r.SuccessorDistance(jid, k)
		})
		e := dataplane.Entry{
			Dst:     jid,
			Hops:    make([]graph.NodeID, 0, len(succ)),
			Weights: make([]float64, 0, len(succ)),
		}
		for _, k := range phi.Keys() {
			e.Hops = append(e.Hops, k)
			e.Weights = append(e.Weights, phi[k])
		}
		entries = append(entries, e)
	}
	n.cfg.Data.Publish(entries)
}

// Passive reports whether the router is in the PASSIVE phase.
func (n *Node) Passive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.r.Active()
}

// PeerCount returns the number of live peer sessions.
func (n *Node) PeerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers)
}

// Peers returns the live peer IDs in ascending order.
func (n *Node) Peers() []graph.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]graph.NodeID, 0, len(n.peers))
	//lint:maporder-ok keys are collected and sorted before use
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Outstanding sums the unacknowledged transport windows across peers;
// zero means every frame sent so far has provably reached its neighbor.
func (n *Node) Outstanding() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	//lint:maporder-ok commutative integer sum; order cannot show
	for _, p := range n.peers {
		if o, ok := p.conn.(interface{ Outstanding() int }); ok {
			total += o.Outstanding()
		}
	}
	return total
}

// Summary renders this node's routing state canonically (see
// RouterSummary).
func (n *Node) Summary() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return RouterSummary(n.r)
}

// Close tears every session down, sending BYE so peers drop the link
// immediately instead of waiting out their dead timers, then reaps the
// node's obs server if it has one.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	//lint:maporder-ok independent per-peer teardown; order is immaterial
	for id, p := range n.peers {
		p.down = true
		p.hb.Stop()
		p.dead.Stop()
		delete(n.peers, id)
		p.out.push(wire.NewBye())
		p.out.close()
	}
	// Reap sessions still mid-handshake: closing the conn errors out their
	// pending Send/Recv, and the session exits through abortHandshake.
	//lint:maporder-ok independent conn teardown; order is immaterial
	for conn := range n.handshakes {
		delete(n.handshakes, conn)
		conn.Close()
	}
	n.stats.peersUp.Set(0)
	srv := n.obs
	n.obs = nil
	// The obs server is closed outside n.mu: its poll ticks and HTTP
	// handlers sample node state through this same mutex, so joining them
	// under the lock would deadlock.
	n.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if n.cfg.Data != nil {
		n.cfg.Data.Close()
	}
}

// ObsURL returns the base URL of the node's observability server, or ""
// when none was configured (or the node is closed).
func (n *Node) ObsURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.obs == nil {
		return ""
	}
	return n.obs.URL()
}

// obsSample snapshots the node's live state for the observability plane,
// all under one lock acquisition so the view is consistent.
func (n *Node) obsSample() obs.Sample {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := obs.Sample{
		ID:       int(n.id),
		Passive:  !n.r.Active(),
		MinPeers: n.cfg.ExpectPeers,
		Summary:  RouterSummary(n.r),
	}
	ids := make([]graph.NodeID, 0, len(n.peers))
	//lint:maporder-ok keys are collected and sorted before use
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := n.peers[id]
		pi := obs.Peer{ID: int(id), Cost: p.cost}
		if o, ok := p.conn.(interface{ Outstanding() int }); ok {
			pi.Outstanding = o.Outstanding()
			s.Outstanding += pi.Outstanding
		}
		if r, ok := p.conn.(interface{ RTO() float64 }); ok {
			pi.RTO = r.RTO()
		}
		inst := n.peerStats[id]
		pi.Retransmits = inst.retx.Value()
		pi.Window = inst.win.Value()
		pi.Queue = p.out.depth()
		s.Peers = append(s.Peers, pi)
	}
	for j := 0; j < n.cfg.Nodes; j++ {
		d := n.r.Dist(graph.NodeID(j))
		if math.IsInf(d, 1) {
			continue
		}
		fd := n.r.FD(graph.NodeID(j))
		if math.IsInf(fd, 1) {
			fd = -1 // +Inf has no JSON encoding; -1 marks "not established"
		}
		rt := obs.Route{
			Dst:  j,
			Dist: d,
			FD:   fd,
			Best: int(n.r.BestSuccessor(graph.NodeID(j))),
		}
		for _, k := range n.r.Successors(graph.NodeID(j)) {
			rt.Successors = append(rt.Successors, int(k))
		}
		s.Routes = append(s.Routes, rt)
	}
	if n.cfg.Data != nil {
		s.Data = dataSample(n.cfg.Data)
	}
	return s
}

// dataSample converts a forwarder snapshot into the obs wire shape.
func dataSample(f *dataplane.Forwarder) *obs.DataSample {
	snap := f.Snapshot()
	d := &obs.DataSample{
		Addr:        f.LocalAddr(),
		Origin:      snap.Origin,
		Forwarded:   snap.Forwarded,
		Delivered:   snap.Delivered,
		DropNoRoute: snap.DropNoRoute,
		DropNoAddr:  snap.DropNoAddr,
		TTLExpired:  snap.TTLExpired,
		Looped:      snap.Looped,
		RecvErrors:  snap.RecvErrors,
	}
	for _, sp := range snap.Splits {
		d.Splits = append(d.Splits, obs.SplitEntry{
			Dst: int(sp.Dst), Hop: int(sp.Hop), Packets: sp.Packets,
			Got: sp.Got, Want: sp.Want,
		})
	}
	for _, fl := range snap.Flows {
		d.Flows = append(d.Flows, obs.FlowSample{
			FlowID: fl.FlowID, Src: int(fl.Src), Packets: fl.Packets, Bits: fl.Bits,
			MeanDelayMs: fl.MeanDelay() * 1e3, MaxDelayMs: fl.MaxDelay * 1e3,
		})
	}
	return d
}

// refreshObsMetrics refreshes the sampled (non-counter) instruments right
// before a /metrics gather: the event bus's totals (bus-wide — a mesh
// shares one Trace, so every node reports the same pair) and each live
// peer's writer-queue depth.
func (n *Node) refreshObsMetrics() {
	if n.cfg.Trace != nil {
		n.stats.evEmitted.Set(float64(n.cfg.Trace.Emitted()))
		n.stats.evDropped.Set(float64(n.cfg.Trace.Dropped()))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	//lint:maporder-ok independent per-peer gauge writes; order cannot show
	for id, p := range n.peers {
		if inst := n.peerStats[id]; inst.wq != nil {
			inst.wq.Set(float64(p.out.depth()))
		}
	}
}

// DestState is one destination row of a routing-state snapshot. FD is
// the feasible distance (-1 while not established: +Inf has no JSON
// encoding); Best is the minimum-distance successor, or -1 with none.
type DestState struct {
	Dst        graph.NodeID   `json:"dst"`
	Dist       float64        `json:"dist"`
	FD         float64        `json:"fd"`
	Best       graph.NodeID   `json:"best"`
	Successors []graph.NodeID `json:"successors"`
}

// State is a JSON-friendly snapshot of one router's routing state.
// Unreachable destinations (D_j = +Inf) are omitted: +Inf has no JSON
// encoding, and absence is the natural rendering of "no route".
type State struct {
	ID    graph.NodeID `json:"id"`
	Dests []DestState  `json:"dests"`
}

// State snapshots the node's routing state for machine consumption
// (cmd/mdrnode's JSON dump).
func (n *Node) State() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := State{ID: n.id}
	for j := 0; j < n.cfg.Nodes; j++ {
		d := n.r.Dist(graph.NodeID(j))
		if math.IsInf(d, 1) {
			continue
		}
		succ := append([]graph.NodeID{}, n.r.Successors(graph.NodeID(j))...)
		fd := n.r.FD(graph.NodeID(j))
		if math.IsInf(fd, 1) {
			fd = -1
		}
		st.Dests = append(st.Dests, DestState{
			Dst: graph.NodeID(j), Dist: d, FD: fd,
			Best: n.r.BestSuccessor(graph.NodeID(j)), Successors: succ,
		})
	}
	return st
}

// RouterSummary renders a router's converged state in the canonical
// cross-validation format: one line per destination with the distance
// D_j (%.9g, the repo's table idiom) and the successor set S_j ascending.
// Live nodes and protonet-driven reference routers render through the
// same function, so equal state means equal strings means equal hashes.
func RouterSummary(r *mpda.Router) string {
	var b strings.Builder
	fmt.Fprintf(&b, "router %d\n", r.ID())
	for j := 0; j < r.Tables().NumNodes(); j++ {
		fmt.Fprintf(&b, " dst %d D=%.9g S=[", j, r.Dist(graph.NodeID(j)))
		for i, k := range r.Successors(graph.NodeID(j)) {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", k)
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// HashState digests concatenated router summaries into a hex state hash.
func HashState(summaries ...string) string {
	h := sha256.New()
	for _, s := range summaries {
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// frameQueue is an unbounded closable FIFO of frames: push never blocks,
// pop drains remaining items after close before failing — so a final BYE
// still flushes.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*wire.Frame
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *frameQueue) push(f *wire.Frame) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, f)
	q.cond.Signal()
	return true
}

func (q *frameQueue) pop() (*wire.Frame, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		if q.closed {
			return nil, transport.ErrClosed
		}
		q.cond.Wait()
	}
	f := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return f, nil
}

// popAll blocks for at least one frame, then drains everything queued in
// one call (still drain-then-fail after close, like pop).
func (q *frameQueue) popAll() ([]*wire.Frame, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		if q.closed {
			return nil, transport.ErrClosed
		}
		q.cond.Wait()
	}
	items := q.items
	q.items = nil
	return items, nil
}

// depth returns the number of queued frames (the writer-queue gauge).
func (q *frameQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *frameQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
