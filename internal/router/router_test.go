package router

import (
	"math"
	"testing"

	"minroute/internal/alloc"
	"minroute/internal/des"
	"minroute/internal/graph"
	"minroute/internal/lsu"
	"minroute/internal/rng"
	"minroute/internal/topo"
)

// line3 wires three nodes 0-1-2 with ports and direct (in-memory) LSU
// delivery, returning the nodes.
func line3(t *testing.T, cfg Config) (*des.Engine, map[graph.NodeID]*Node, *graph.Graph) {
	t.Helper()
	g := graph.New()
	for _, n := range []string{"a", "b", "c"} {
		g.AddNode(n)
	}
	for i := 0; i < 2; i++ {
		if err := g.AddDuplex(graph.NodeID(i), graph.NodeID(i+1), 1e6, 1e-3); err != nil {
			t.Fatal(err)
		}
	}
	return wire(t, g, cfg)
}

func wire(t *testing.T, g *graph.Graph, cfg Config) (*des.Engine, map[graph.NodeID]*Node, *graph.Graph) {
	t.Helper()
	eng := des.NewEngine(42)
	nodes := make(map[graph.NodeID]*Node)
	ports := make(map[[2]graph.NodeID]*des.Port)
	for _, id := range g.Nodes() {
		id := id
		nodes[id] = New(eng, id, g.NumNodes(), cfg, func(to graph.NodeID, m *lsu.Msg) {
			p := ports[[2]graph.NodeID{id, to}]
			if p == nil {
				return
			}
			buf, err := m.Marshal()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			p.Send(&des.Packet{FlowID: -1, Bits: float64(len(buf) * 8), Control: buf})
		})
	}
	for _, l := range g.Links() {
		to := nodes[l.To]
		p := des.NewPort(eng, l, 0, func(pkt *des.Packet) {
			if pkt.IsControl() {
				to.HandleControl(pkt)
			} else {
				to.HandleData(pkt)
			}
		})
		ports[[2]graph.NodeID{l.From, l.To}] = p
		nodes[l.From].AttachPort(l.To, p)
	}
	return eng, nodes, g
}

func startAll(eng *des.Engine, nodes map[graph.NodeID]*Node, settle float64) {
	for i := 0; i < len(nodes); i++ {
		nodes[graph.NodeID(i)].Start()
	}
	eng.Run(settle)
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{ModeMP: "MP", ModeSP: "SP", ModeStatic: "STATIC", Mode(9): "mode(9)"} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := Defaults()
	if cfg.Tl != 10 || cfg.Ts != 2 || cfg.MeanPacketBits != 8000 {
		t.Fatalf("defaults changed: %+v", cfg)
	}
}

func TestProtocolConvergesThroughPorts(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	// Node 0 must know routes to 1 and 2.
	if nodes[0].Protocol().Dist(2) == math.Inf(1) {
		t.Fatal("node 0 has no distance to node 2")
	}
	if s := nodes[0].Protocol().Successors(2); len(s) != 1 || s[0] != 1 {
		t.Fatalf("successors = %v", s)
	}
}

func TestForwardAndDeliver(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	delivered := 0
	nodes[2].OnArrive = func(pkt *des.Packet) { delivered++ }
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000, Created: eng.Now()})
	eng.Run(eng.Now() + 1)
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	if nodes[0].ForwardedPackets == 0 || nodes[1].ForwardedPackets == 0 {
		t.Fatal("forwarding counters not incremented")
	}
}

func TestHopLimitDrop(t *testing.T) {
	cfg := Defaults()
	cfg.HopLimit = 1
	eng, nodes, _ := line3(t, cfg)
	startAll(eng, nodes, 5)
	delivered := 0
	nodes[2].OnArrive = func(pkt *des.Packet) { delivered++ }
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000})
	eng.Run(eng.Now() + 1)
	if delivered != 0 {
		t.Fatal("packet exceeded hop limit but was delivered")
	}
	if nodes[1].DroppedHopLimit != 1 {
		t.Fatalf("hop-limit drops = %d", nodes[1].DroppedHopLimit)
	}
}

func TestNoRouteDrop(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	nodes[0].LinkFailed(1)
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000})
	_ = eng
	if nodes[0].DroppedNoRoute != 1 {
		t.Fatalf("no-route drops = %d", nodes[0].DroppedNoRoute)
	}
}

func TestSPModeSingleNextHop(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeSP
	g := topo.NET1().Graph
	eng, nodes, _ := wire(t, g, cfg)
	startAll(eng, nodes, 5)
	phi := nodes[0].Fractions(8)
	if len(phi) != 1 {
		t.Fatalf("SP fractions = %v, want singleton", phi)
	}
	for _, v := range phi {
		if v != 1 {
			t.Fatalf("SP fraction = %v", v)
		}
	}
}

func TestMPModeMultipathFractions(t *testing.T) {
	g := topo.NET1().Graph
	eng, nodes, _ := wire(t, g, Defaults())
	startAll(eng, nodes, 5)
	// Node 0 toward 8 has successors {1,3}; MP must allocate to both.
	phi := nodes[0].Fractions(8)
	if len(phi) < 2 {
		t.Fatalf("MP fractions = %v, want multipath", phi)
	}
	sum := 0.0
	for _, v := range phi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if err := alloc.Validate(phi, nodes[0].Protocol().Successors(8)); err != nil {
		t.Fatal(err)
	}
}

func TestStaticMode(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeStatic
	cfg.Tl, cfg.Ts = 0, 0
	eng, nodes, g := line3(t, cfg)
	phi := make([]alloc.Params, g.NumNodes())
	phi[2] = alloc.Single(1)
	nodes[0].InstallStatic(phi)
	phi1 := make([]alloc.Params, g.NumNodes())
	phi1[2] = alloc.Single(2)
	nodes[1].InstallStatic(phi1)
	startAll(eng, nodes, 2)

	delivered := 0
	nodes[2].OnArrive = func(pkt *des.Packet) { delivered++ }
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000})
	eng.Run(eng.Now() + 1)
	if delivered != 1 {
		t.Fatalf("static routing delivered %d", delivered)
	}
}

func TestStaticModeWithoutInstallDrops(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeStatic
	eng, nodes, _ := line3(t, cfg)
	startAll(eng, nodes, 2)
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000})
	if nodes[0].DroppedNoRoute != 1 {
		t.Fatal("uninstalled static mode did not drop")
	}
	if nodes[0].Fractions(2) != nil {
		t.Fatal("Fractions non-nil without install")
	}
}

func TestWeightedPickDistribution(t *testing.T) {
	r := rng.New(1)
	phi := alloc.Params{1: 0.7, 2: 0.3}
	counts := map[graph.NodeID]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[weightedPick(r, phi)]++
	}
	if f := float64(counts[1]) / n; math.Abs(f-0.7) > 0.01 {
		t.Fatalf("pick fraction for 1 = %v", f)
	}
	if weightedPick(r, nil) != graph.None {
		t.Fatal("pick from empty params != None")
	}
}

func TestWeightedPickZeroWeightNeverChosen(t *testing.T) {
	r := rng.New(2)
	phi := alloc.Params{1: 1, 2: 0}
	for i := 0; i < 1000; i++ {
		if weightedPick(r, phi) == 2 {
			t.Fatal("zero-weight successor chosen")
		}
	}
}

func TestLinkRecoveryRestoresRouting(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	nodes[0].LinkFailed(1)
	nodes[1].LinkFailed(0)
	eng.Run(eng.Now() + 2)
	if !math.IsInf(nodes[0].Protocol().Dist(2), 1) {
		t.Fatal("distance survives link failure")
	}
	nodes[0].LinkRecovered(1)
	nodes[1].LinkRecovered(0)
	eng.Run(eng.Now() + 5)
	if math.IsInf(nodes[0].Protocol().Dist(2), 1) {
		t.Fatal("distance not restored after recovery")
	}
}

func TestCorruptLSUPanics(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("corrupt LSU did not panic")
		}
	}()
	nodes[0].HandleControl(&des.Packet{Control: []byte{1, 2, 3}})
}

func TestHandleControlIgnoresNonBytes(t *testing.T) {
	_, nodes, _ := line3(t, Defaults())
	nodes[0].HandleControl(&des.Packet{Control: 42}) // must not panic
}

func TestOnlineEstimatorMode(t *testing.T) {
	cfg := Defaults()
	cfg.UseOnlineEstimator = true
	eng, nodes, _ := line3(t, cfg)
	startAll(eng, nodes, 1)
	// Push some traffic and let a few Ts ticks elapse so the estimator path
	// executes end to end.
	for i := 0; i < 200; i++ {
		at := eng.Now() + float64(i)*0.01
		eng.Schedule(at, func() {
			nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000})
		})
	}
	eng.Run(eng.Now() + 10)
	if nodes[0].ForwardedPackets == 0 {
		t.Fatal("no packets forwarded in estimator mode")
	}
}

func TestSuccSignature(t *testing.T) {
	if succSignature(nil) != "" {
		t.Fatal("empty signature not empty")
	}
	a := succSignature([]graph.NodeID{1, 2})
	b := succSignature([]graph.NodeID{1, 3})
	c := succSignature([]graph.NodeID{1, 2})
	if a == b || a != c {
		t.Fatalf("signature collision/instability: %q %q %q", a, b, c)
	}
}

func TestECMPModeEqualSplit(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeECMP
	g := topo.Ring(4, 1e7, 1e-3).Clone()
	eng, nodes, _ := wire(t, g, cfg)
	startAll(eng, nodes, 5)
	// On a uniform 4-ring, node 0's two paths to node 2 are equal cost:
	// ECMP must expose both with even fractions.
	phi := nodes[0].Fractions(2)
	if len(phi) != 2 {
		t.Fatalf("ECMP fractions = %v, want two equal-cost successors", phi)
	}
	for _, v := range phi {
		if math.Abs(v-0.5) > 1e-9 {
			t.Fatalf("ECMP split = %v, want 0.5", v)
		}
	}
	// Toward an adjacent node there is a single shortest path.
	if phi := nodes[0].Fractions(1); len(phi) != 1 {
		t.Fatalf("ECMP fractions toward neighbor = %v", phi)
	}
}

func TestECMPForwardsPackets(t *testing.T) {
	cfg := Defaults()
	cfg.Mode = ModeECMP
	g := topo.Ring(4, 1e7, 1e-3)
	eng, nodes, _ := wire(t, g, cfg)
	startAll(eng, nodes, 5)
	delivered := 0
	nodes[2].OnArrive = func(pkt *des.Packet) { delivered++ }
	for i := 0; i < 50; i++ {
		nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000, Created: eng.Now()})
	}
	eng.Run(eng.Now() + 2)
	if delivered != 50 {
		t.Fatalf("ECMP delivered %d/50", delivered)
	}
}

func TestCostMeasureWindowArms(t *testing.T) {
	cfg := Defaults()
	cfg.CostMeasureWindow = 2 // < Tl = 10
	eng, nodes, _ := line3(t, cfg)
	startAll(eng, nodes, 1)
	// Drive some traffic and run long enough for two Tl rounds: the
	// windowed measurement path must execute without disturbing routing.
	for i := 0; i < 100; i++ {
		at := eng.Now() + float64(i)*0.05
		eng.Schedule(at, func() {
			nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 2, Bits: 8000, Created: eng.Now()})
		})
	}
	eng.Run(25)
	if nodes[0].Protocol().Dist(2) == math.Inf(1) {
		t.Fatal("routing lost under windowed measurement")
	}
}

func TestAdaptiveTimersStayBoundedAndRoute(t *testing.T) {
	cfg := Defaults()
	cfg.AdaptiveTimers = true
	g := topo.NET1().Graph
	eng, nodes, _ := wire(t, g, cfg)
	startAll(eng, nodes, 5)
	delivered := 0
	nodes[8].OnArrive = func(pkt *des.Packet) { delivered++ }
	// Burst of traffic creating cost churn, then quiet.
	for i := 0; i < 2000; i++ {
		at := eng.Now() + float64(i)*0.002
		eng.Schedule(at, func() {
			nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 8, Bits: 8000, Created: eng.Now()})
		})
	}
	eng.Run(60)
	if delivered != 2000 {
		t.Fatalf("adaptive timers broke delivery: %d/2000", delivered)
	}
	if nodes[0].Protocol().Dist(8) == math.Inf(1) {
		t.Fatal("routing lost under adaptive timers")
	}
}

func TestNextTsBounds(t *testing.T) {
	cfg := Defaults()
	cfg.AdaptiveTimers = true
	_, nodes, _ := line3(t, cfg)
	n := nodes[0]
	n.lastTsChurn = 1.0
	if got := n.nextTs(); got != cfg.Ts/2 {
		t.Fatalf("high churn Ts = %v, want %v", got, cfg.Ts/2)
	}
	n.lastTsChurn = 0.0
	if got := n.nextTs(); got != cfg.Ts*2 {
		t.Fatalf("quiet Ts = %v, want %v", got, cfg.Ts*2)
	}
	n.lastTsChurn = 0.1
	if got := n.nextTs(); got != cfg.Ts {
		t.Fatalf("moderate churn Ts = %v, want %v", got, cfg.Ts)
	}
	n.lastTlChurn = 1.0
	if got := n.nextTl(); got != cfg.Tl/2 {
		t.Fatalf("high churn Tl = %v", got)
	}
	cfg2 := Defaults()
	_, nodes2, _ := line3(t, cfg2)
	if got := nodes2[0].nextTs(); got != cfg2.Ts {
		t.Fatalf("static Ts = %v", got)
	}
}

func TestNodeID(t *testing.T) {
	_, nodes, _ := line3(t, Defaults())
	if nodes[1].ID() != 1 {
		t.Fatalf("ID = %v", nodes[1].ID())
	}
}

func TestFlowletPinningAndRelease(t *testing.T) {
	cfg := Defaults()
	cfg.FlowletTimeout = 0.5
	g := topo.Ring(4, 1e7, 1e-3)
	eng, nodes, _ := wire(t, g, cfg)
	startAll(eng, nodes, 5)
	// Node 0 toward 2 has two successors on the uniform ring. Back-to-back
	// packets of one flow must all take the pinned next hop.
	firstHop := map[graph.NodeID]int{}
	n0 := nodes[0]
	orig := n0.OnForward
	_ = orig
	n0.OnForward = func(pkt *des.Packet, next graph.NodeID) { firstHop[next]++ }
	for i := 0; i < 50; i++ {
		n0.HandleData(&des.Packet{FlowID: 3, Src: 0, Dst: 2, Bits: 800, Created: eng.Now()})
		eng.Run(eng.Now() + 0.001) // gaps well under the flowlet timeout
	}
	if len(firstHop) != 1 {
		t.Fatalf("flowlet used %d next hops within one burst: %v", len(firstHop), firstHop)
	}
	// After an idle gap longer than the timeout, a re-pick happens (it may
	// legitimately land on the same hop; just assert no panic and a pick).
	eng.Run(eng.Now() + 1)
	n0.HandleData(&des.Packet{FlowID: 3, Src: 0, Dst: 2, Bits: 800, Created: eng.Now()})
	total := 0
	for _, c := range firstHop {
		total += c
	}
	if total != 51 {
		t.Fatalf("forwarded %d packets, want 51", total)
	}
}

func TestFlowletFallsBackWhenPinnedHopGone(t *testing.T) {
	cfg := Defaults()
	cfg.FlowletTimeout = 10
	g := topo.Ring(4, 1e7, 1e-3)
	eng, nodes, _ := wire(t, g, cfg)
	startAll(eng, nodes, 5)
	n0 := nodes[0]
	var used []graph.NodeID
	n0.OnForward = func(pkt *des.Packet, next graph.NodeID) { used = append(used, next) }
	n0.HandleData(&des.Packet{FlowID: 1, Src: 0, Dst: 2, Bits: 800, Created: eng.Now()})
	if len(used) != 1 {
		t.Fatal("no forward")
	}
	pinned := used[0]
	// Kill the pinned neighbor's link; the next packet must take the other.
	n0.LinkFailed(pinned)
	nodes[pinned].LinkFailed(0)
	eng.Run(eng.Now() + 2)
	n0.HandleData(&des.Packet{FlowID: 1, Src: 0, Dst: 2, Bits: 800, Created: eng.Now()})
	if len(used) != 2 || used[1] == pinned {
		t.Fatalf("flowlet did not fall back: %v", used)
	}
}

func TestCostCapDisabled(t *testing.T) {
	cfg := Defaults()
	cfg.CostUtilizationCap = 0
	_, nodes, _ := line3(t, cfg)
	if !math.IsInf(nodes[0].costCap(1000, 0), 1) {
		t.Fatal("disabled cap not infinite")
	}
}

func TestHandleDataUnknownDestinationDrops(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	// Destination outside the successor tables (ID space allows it).
	nodes[0].HandleData(&des.Packet{FlowID: 0, Src: 0, Dst: 1 + 1 + 0, Bits: 800})
	_ = eng
}

func TestFractionsMPUnknownDestination(t *testing.T) {
	eng, nodes, _ := line3(t, Defaults())
	startAll(eng, nodes, 5)
	// A node has no route to itself.
	if phi := nodes[0].Fractions(0); len(phi) != 0 {
		t.Fatalf("fractions toward self = %v", phi)
	}
	_ = eng
}
